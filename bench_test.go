// Package repro's benchmark harness regenerates every table and figure of
// the paper's evaluation (see DESIGN.md's per-experiment index). Each
// benchmark times the analysis that produces one figure and attaches the
// figure's headline statistic as a custom metric, so `go test -bench . \
// -benchmem` doubles as the experiment runner: bench_output.txt carries the
// paper-vs-measured numbers recorded in EXPERIMENTS.md.
package repro

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/predict"
	"repro/internal/sharing"
	"repro/internal/slurm"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchScale sizes the shared population: 10 % of the paper (≈7.5 k jobs).
const benchScale = 0.10

var benchData struct {
	once  sync.Once
	specs []workload.JobSpec
	ds    *trace.Dataset
	users []core.UserStats
}

func benchDataset(b *testing.B) ([]workload.JobSpec, *trace.Dataset, []core.UserStats) {
	b.Helper()
	benchData.once.Do(func() {
		cfg := workload.ScaledConfig(benchScale)
		cfg.Seed = 7
		g, err := workload.NewGenerator(cfg)
		if err != nil {
			panic(err)
		}
		benchData.specs = g.GenerateSpecs()
		benchData.ds = g.BuildDataset(benchData.specs)
		benchData.users = core.AggregateUsers(benchData.ds)
	})
	return benchData.specs, benchData.ds, benchData.users
}

// --- Table I ---

func BenchmarkTableISpecs(b *testing.B) {
	var gpus int
	for i := 0; i < b.N; i++ {
		cfg := cluster.SupercloudConfig()
		gpus = cfg.TotalGPUs()
	}
	b.ReportMetric(float64(gpus), "total-gpus")
}

// --- Fig. 3 ---

func BenchmarkFig3aRuntimes(b *testing.B) {
	_, ds, _ := benchDataset(b)
	b.ResetTimer()
	var r core.RuntimeResult
	for i := 0; i < b.N; i++ {
		r = core.Runtimes(ds)
	}
	b.ReportMetric(r.GPU.P50, "gpu-run-median-min(paper:30)")
	b.ReportMetric(r.CPU.P50, "cpu-run-median-min(paper:8)")
}

func BenchmarkFig3bQueueWait(b *testing.B) {
	_, ds, _ := benchDataset(b)
	b.ResetTimer()
	var r core.WaitResult
	for i := 0; i < b.N; i++ {
		r = core.Waits(ds)
	}
	b.ReportMetric(r.GPUWaitUnder1MinFrac*100, "gpu-wait-under-1min-pct(paper:70)")
	b.ReportMetric(r.GPUWaitPctUnder2Frac*100, "gpu-wait-under-2pct-service(paper:>50)")
}

// --- Fig. 4 ---

func BenchmarkFig4aUtilization(b *testing.B) {
	_, ds, _ := benchDataset(b)
	b.ResetTimer()
	var r core.UtilizationResult
	for i := 0; i < b.N; i++ {
		r = core.Utilization(ds)
	}
	b.ReportMetric(r.SM.P50, "sm-median-pct(paper:16)")
	b.ReportMetric(r.Mem.P50, "mem-median-pct(paper:2)")
	b.ReportMetric(r.MemSize.P50, "memsize-median-pct(paper:9)")
	b.ReportMetric(r.SMOver50*100, "sm-over50-pct(paper:20)")
}

func BenchmarkFig4bPCIe(b *testing.B) {
	_, ds, _ := benchDataset(b)
	b.ResetTimer()
	var r core.PCIeResult
	for i := 0; i < b.N; i++ {
		r = core.PCIe(ds)
	}
	b.ReportMetric(r.TxUniformKS, "tx-uniform-ks(paper:~0)")
	b.ReportMetric(r.RxUniformKS, "rx-uniform-ks(paper:~0)")
}

// --- Fig. 5 ---

func BenchmarkFig5ByInterface(b *testing.B) {
	_, ds, _ := benchDataset(b)
	b.ResetTimer()
	var r core.InterfaceResult
	for i := 0; i < b.N; i++ {
		r = core.ByInterface(ds)
	}
	b.ReportMetric(r.SM[trace.Other].P50, "other-sm-median")
	b.ReportMetric(r.SM[trace.Interactive].P50, "interactive-sm-median")
}

// --- Fig. 6 ---

func BenchmarkFig6aActiveTime(b *testing.B) {
	_, ds, _ := benchDataset(b)
	b.ResetTimer()
	var r core.PhaseResult
	for i := 0; i < b.N; i++ {
		r = core.Phases(ds)
	}
	b.ReportMetric(r.ActiveTimePct.P50, "active-time-median-pct(paper:84)")
	b.ReportMetric(r.ActiveTimePct.P25, "active-time-p25-pct(paper:14)")
}

func BenchmarkFig6bIntervalCoV(b *testing.B) {
	_, ds, _ := benchDataset(b)
	b.ResetTimer()
	var r core.PhaseResult
	for i := 0; i < b.N; i++ {
		r = core.Phases(ds)
	}
	b.ReportMetric(r.IdleCoV.P50, "idle-cov-median-pct(paper:126)")
	b.ReportMetric(r.ActiveCoVLen.P50, "active-cov-median-pct(paper:169)")
}

// --- Fig. 7 ---

func BenchmarkFig7aActiveCoV(b *testing.B) {
	_, ds, _ := benchDataset(b)
	b.ResetTimer()
	var r core.ActiveVariabilityResult
	for i := 0; i < b.N; i++ {
		r = core.ActiveVariability(ds)
	}
	b.ReportMetric(r.SMCoV.P50, "sm-cov-median-pct(paper:14)")
	b.ReportMetric(r.MemCoV.P50, "mem-cov-median-pct(paper:14.6)")
	b.ReportMetric(r.MemSizeCoV.P50, "memsize-cov-median-pct(paper:8.2)")
}

func BenchmarkFig7bBottleneckRadar(b *testing.B) {
	_, ds, _ := benchDataset(b)
	b.ResetTimer()
	var r core.BottleneckResult
	for i := 0; i < b.N; i++ {
		r = core.Bottlenecks(ds)
	}
	b.ReportMetric(r.SingleFrac[metrics.SMUtil]*100, "sm-bottleneck-pct(paper:22)")
	b.ReportMetric(r.SingleFrac[metrics.MemUtil]*100, "mem-bottleneck-pct(paper:~0)")
}

// --- Fig. 8 ---

func BenchmarkFig8aSingleBottleneck(b *testing.B) {
	_, ds, _ := benchDataset(b)
	b.ResetTimer()
	var r core.BottleneckResult
	for i := 0; i < b.N; i++ {
		r = core.Bottlenecks(ds)
	}
	b.ReportMetric(r.SingleFrac[metrics.PCIeRx]*100, "rx-bottleneck-pct")
	b.ReportMetric(r.SingleFrac[metrics.PCIeTx]*100, "tx-bottleneck-pct")
}

func BenchmarkFig8bPairBottleneck(b *testing.B) {
	_, ds, _ := benchDataset(b)
	b.ResetTimer()
	var r core.BottleneckResult
	for i := 0; i < b.N; i++ {
		r = core.Bottlenecks(ds)
	}
	pair := [2]metrics.Metric{metrics.SMUtil, metrics.PCIeRx}
	b.ReportMetric(r.PairFrac[pair]*100, "sm+rx-pct(paper:~9)")
	b.ReportMetric(r.AnyTwoFrac*100, "any-two-pct(paper:<10)")
}

// --- Fig. 9 ---

func BenchmarkFig9aPower(b *testing.B) {
	_, ds, _ := benchDataset(b)
	b.ResetTimer()
	var r core.PowerResult
	for i := 0; i < b.N; i++ {
		r = core.Power(ds)
	}
	b.ReportMetric(r.Avg.P50, "avg-power-median-w(paper:45)")
	b.ReportMetric(r.Max.P50, "max-power-median-w(paper:87)")
}

func BenchmarkFig9bPowerCap(b *testing.B) {
	_, ds, _ := benchDataset(b)
	b.ResetTimer()
	var r sharing.PowerCapResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = sharing.PowerCapStudy(ds, gpu.V100(), 448, []float64{150, 200, 250})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Levels[0].UnimpactedFrac*100, "150w-unimpacted-pct(paper:>60)")
	b.ReportMetric(r.Levels[0].AvgImpactedFrac*100, "150w-avg-impacted-pct(paper:<10)")
}

// BenchmarkExtensionCapComparison runs the power-vs-frequency capping
// extension study (Patki et al., cited by the paper's related work).
func BenchmarkExtensionCapComparison(b *testing.B) {
	_, ds, _ := benchDataset(b)
	b.ResetTimer()
	var rows []sharing.CapComparison
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = sharing.CompareCapping(ds, gpu.V100(), []float64{150, 200, 250})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].PowerCapMeanSlowdown, "150w-powercap-slowdown")
	b.ReportMetric(rows[0].FreqCapMeanSlowdown, "150w-freqcap-slowdown")
	b.ReportMetric(rows[0].FreqCapImpactedFrac*100, "150w-freqcap-hit-pct")
}

// --- Figs. 10–12 ---

func BenchmarkFig10UserAverages(b *testing.B) {
	_, _, users := benchDataset(b)
	b.ResetTimer()
	var r core.UserAverageResult
	for i := 0; i < b.N; i++ {
		r = core.UserAverages(users)
	}
	b.ReportMetric(r.AvgRunMin.P50, "user-avg-run-median-min(paper:392)")
	b.ReportMetric(r.AvgSM.P50, "user-avg-sm-median-pct(paper:10.75)")
}

func BenchmarkFig11UserCoV(b *testing.B) {
	_, _, users := benchDataset(b)
	b.ResetTimer()
	var r core.UserVariabilityResult
	for i := 0; i < b.N; i++ {
		r = core.UserVariability(users)
	}
	b.ReportMetric(r.RunCoV.P50, "user-run-cov-median-pct(paper:155)")
	b.ReportMetric(r.SMCoV.P50, "user-sm-cov-median-pct(paper:121)")
}

func BenchmarkFig12Spearman(b *testing.B) {
	_, _, users := benchDataset(b)
	b.ResetTimer()
	var r core.UserTrendResult
	for i := 0; i < b.N; i++ {
		r = core.UserTrends(users)
	}
	b.ReportMetric(r.Get("jobs", "avg_sm").Rho, "rho-jobs-avgsm(paper:high+)")
	b.ReportMetric(r.Get("jobs", "cov_sm").Rho, "rho-jobs-covsm(paper:<0.5)")
}

// --- Fig. 13 / §V ---

func BenchmarkFig13GPUCounts(b *testing.B) {
	_, ds, _ := benchDataset(b)
	b.ResetTimer()
	var r core.GPUCountResult
	for i := 0; i < b.N; i++ {
		r = core.GPUCounts(ds)
	}
	b.ReportMetric(r.SingleGPUFrac*100, "single-gpu-pct(paper:84)")
	b.ReportMetric(r.MultiGPUHourShare*100, "multi-hour-share-pct(paper:50)")
}

func BenchmarkMultiGPUUsers(b *testing.B) {
	_, ds, _ := benchDataset(b)
	b.ResetTimer()
	var r core.ConcentrationResult
	for i := 0; i < b.N; i++ {
		r = core.Concentration(ds)
	}
	b.ReportMetric(r.UsersWithMultiFrac*100, "users-multi-pct(paper:60)")
	b.ReportMetric(r.UsersWith9Frac*100, "users-9plus-pct(paper:5.2)")
}

// --- Fig. 14 ---

func BenchmarkFig14MultiGPU(b *testing.B) {
	_, ds, _ := benchDataset(b)
	b.ResetTimer()
	var r core.MultiGPUResult
	for i := 0; i < b.N; i++ {
		r = core.MultiGPU(ds)
	}
	b.ReportMetric(r.HalfIdleJobFrac*100, "half-idle-pct(paper:~40)")
	b.ReportMetric(r.CoVActiveGPUs[0].P50, "active-sm-cov-median(paper:low)")
}

// --- Figs. 15–17 ---

func BenchmarkFig15Lifecycle(b *testing.B) {
	_, ds, _ := benchDataset(b)
	b.ResetTimer()
	var r core.LifecycleResult
	for i := 0; i < b.N; i++ {
		r = core.Lifecycle(ds)
	}
	b.ReportMetric(r.JobShare[trace.Mature]*100, "mature-job-pct(paper:60)")
	b.ReportMetric(r.HourShare[trace.Exploratory]*100, "expl-hour-pct(paper:34)")
	b.ReportMetric(r.HourShare[trace.IDE]*100, "ide-hour-pct(paper:18)")
}

func BenchmarkFig16CategoryBoxes(b *testing.B) {
	_, ds, _ := benchDataset(b)
	b.ResetTimer()
	var r core.LifecycleResult
	for i := 0; i < b.N; i++ {
		r = core.Lifecycle(ds)
	}
	b.ReportMetric(r.Boxes[trace.Mature][0].Median, "mature-sm-median(paper:21)")
	b.ReportMetric(r.Boxes[trace.IDE][0].Median, "ide-sm-median(paper:0)")
}

func BenchmarkFig17UserMix(b *testing.B) {
	_, ds, _ := benchDataset(b)
	b.ResetTimer()
	var r core.UserMixResult
	for i := 0; i < b.N; i++ {
		r = core.UserMix(ds)
	}
	b.ReportMetric(r.UsersUnder40PctMatureJobs*100, "users-under40-mature-pct(paper:>50)")
}

func BenchmarkUserConcentration(b *testing.B) {
	_, ds, _ := benchDataset(b)
	b.ResetTimer()
	var r core.ConcentrationResult
	for i := 0; i < b.N; i++ {
		r = core.Concentration(ds)
	}
	b.ReportMetric(r.Top5PctShare*100, "top5-share-pct(paper:44)")
	b.ReportMetric(r.Top20PctShare*100, "top20-share-pct(paper:83.2)")
}

// BenchmarkExtensionPrediction scores the lightweight user-behavior
// predictors online over the shared dataset (the paper's §IV future-work
// direction, with its negative result as the reported metrics).
func BenchmarkExtensionPrediction(b *testing.B) {
	_, ds, _ := benchDataset(b)
	b.ResetTimer()
	var scores []predict.Score
	var err error
	for i := 0; i < b.N; i++ {
		scores, err = predict.Evaluate(ds, predict.TargetRunMinutes, predict.StandardPredictors())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range scores {
		if s.Predictor == "global-median" {
			b.ReportMetric(s.MedAPE, "runtime-global-medape-pct")
		}
		if s.Predictor == "per-user-median(8)" {
			b.ReportMetric(s.MedAPE, "runtime-peruser-medape-pct")
		}
	}
}

// BenchmarkExtensionColocatedScheduling runs the queueing experiment: merge
// non-contending single-GPU jobs into shared-GPU bundles and schedule both
// variants on a deliberately saturated cluster, reporting the mean-wait cut
// co-location buys (the paper's §III takeaway turned into numbers).
func BenchmarkExtensionColocatedScheduling(b *testing.B) {
	gcfg := workload.ScaledConfig(0.01)
	gcfg.Seed = 3
	g, err := workload.NewGenerator(gcfg)
	if err != nil {
		b.Fatal(err)
	}
	specs := g.GenerateSpecs()
	// Compress arrivals to saturate the 4-node test cluster.
	for i := range specs {
		specs[i].SubmitSec *= 0.15
	}
	plan := sharing.MergeForColocation(specs, sharing.DefaultColocationConfig(), 3600)
	run := func(toRun []workload.JobSpec) float64 {
		cfg := slurm.DefaultConfig()
		cfg.Cluster.Nodes = 6
		sim, err := slurm.NewSimulator(cfg)
		if err != nil {
			b.Fatal(err)
		}
		results, _, err := sim.Run(toRun)
		if err != nil {
			b.Fatal(err)
		}
		var waits []float64
		for i := range toRun {
			if toRun[i].IsGPU() {
				waits = append(waits, results[toRun[i].ID].WaitSec)
			}
		}
		return stats.Mean(waits)
	}
	b.ResetTimer()
	var excl, colo float64
	for i := 0; i < b.N; i++ {
		excl = run(specs)
		colo = run(plan.Merged)
	}
	b.ReportMetric(excl, "exclusive-mean-wait-s")
	b.ReportMetric(colo, "colocated-mean-wait-s")
	b.ReportMetric(float64(plan.PairsFormed), "pairs")
}

// --- Replication engine ---

// BenchmarkReplications times a 16-replication batch of the full pipeline
// (generate → schedule → characterize, -scale 0.05) through the parallel
// replication engine, serial vs parallel worker pools. With ≥ 8 hardware
// threads the 8-worker variant runs ≥ 3x faster than serial — the engine's
// scaling claim; on fewer cores the speedup degrades to min(cores, 8), so
// the per-run gomaxprocs metric records the machine's ceiling. Determinism
// across worker counts is asserted on every iteration via the merged-summary
// fingerprint, so this benchmark doubles as a stress test of the engine's
// order-independence.
func BenchmarkReplications(b *testing.B) {
	const reps = 16
	gcfg := workload.ScaledConfig(0.05)
	scfg := slurm.DefaultConfig()
	scfg.Cluster.Nodes = 11 // the 224-node machine scaled with the workload
	exp := engine.Experiment{Gen: gcfg, Sim: scfg}

	var serialFP string
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var fp string
			for i := 0; i < b.N; i++ {
				batch, err := engine.Run(context.Background(),
					engine.Config{RootSeed: 7, Reps: reps, Workers: workers}, exp.Replicator())
				if err != nil {
					b.Fatal(err)
				}
				if got := batch.Completed(); got != reps {
					b.Fatalf("completed %d of %d: %v", got, reps, batch.FirstErr())
				}
				fp = batch.Merged.Fingerprint()
			}
			if workers == 1 {
				serialFP = fp
			} else if serialFP != "" && fp != serialFP {
				b.Fatalf("workers=%d merged summary diverged from serial", workers)
			}
			b.ReportMetric(float64(reps)*float64(b.N)/b.Elapsed().Seconds(), "reps/s")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
		})
	}
}

// --- Pipeline benches ---

func BenchmarkTraceGeneration(b *testing.B) {
	cfg := workload.ScaledConfig(0.02)
	cfg.Seed = 3
	for i := 0; i < b.N; i++ {
		g, err := workload.NewGenerator(cfg)
		if err != nil {
			b.Fatal(err)
		}
		specs := g.GenerateSpecs()
		ds := g.BuildDataset(specs)
		if len(ds.Jobs) == 0 {
			b.Fatal("empty dataset")
		}
	}
}

func BenchmarkDESScheduling(b *testing.B) {
	gcfg := workload.ScaledConfig(0.01)
	gcfg.Seed = 3
	g, err := workload.NewGenerator(gcfg)
	if err != nil {
		b.Fatal(err)
	}
	specs := g.GenerateSpecs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scfg := slurm.DefaultConfig()
		scfg.Cluster.Nodes = 8
		sim, err := slurm.NewSimulator(scfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := sim.Run(specs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullCharacterization(b *testing.B) {
	_, ds, _ := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := core.Characterize(ds); rep == nil {
			b.Fatal("nil report")
		}
	}
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationIIDProfiles replaces phase-structured profiles with a
// single homogeneous phase and shows the Fig. 6 structure vanish: active
// time goes to 100 % and interval CoVs become undefined (reported as 0).
func BenchmarkAblationIIDProfiles(b *testing.B) {
	cfg := workload.ScaledConfig(0.02)
	cfg.Seed = 3
	g, err := workload.NewGenerator(cfg)
	if err != nil {
		b.Fatal(err)
	}
	specs := g.GenerateSpecs()
	// Flatten every profile: one always-active phase at the mean level.
	for i := range specs {
		for gi, p := range specs[i].Profiles {
			mean := p.Summaries(gpu.V100(), gpu.DefaultPowerModel())
			flat, err := workload.NewProfile([]workload.Phase{{
				DurSec: specs[i].RunSec,
				Active: true,
				Level: gpu.Utilization{
					SMPct:      mean[metrics.SMUtil].Mean,
					MemPct:     mean[metrics.MemUtil].Mean,
					MemSizePct: mean[metrics.MemSize].Mean,
				},
			}}, 0)
			if err != nil {
				b.Fatal(err)
			}
			specs[i].Profiles[gi] = flat
		}
	}
	ds := g.BuildDataset(specs)
	b.ResetTimer()
	var r core.PhaseResult
	for i := 0; i < b.N; i++ {
		r = core.Phases(ds)
	}
	b.ReportMetric(r.ActiveTimePct.P50, "flat-active-median-pct(structured:~84)")
	b.ReportMetric(float64(r.IdleCoV.N), "jobs-with-idle-intervals(structured:many)")
}

// BenchmarkAblationExclusiveNodes stages core pressure (rolling shared CPU
// jobs over most node cores, with GPU headroom) and runs a stream of
// generated single-GPU jobs under both scheduler policies, reporting the
// GPU-wait inflation caused by exclusive-node reservations. At the paper's
// native utilization the policy never binds, so the contention is staged
// deliberately — the same construction as examples/colocation.
func BenchmarkAblationExclusiveNodes(b *testing.B) {
	gcfg := workload.ScaledConfig(0.01)
	gcfg.Seed = 3
	g, err := workload.NewGenerator(gcfg)
	if err != nil {
		b.Fatal(err)
	}
	specs := stageCorePressure(g.GenerateSpecs())
	var colo, excl float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		colo = meanGPUWait(b, specs, true)
		excl = meanGPUWait(b, specs, false)
	}
	b.ReportMetric(colo, "colocate-mean-gpu-wait-s")
	b.ReportMetric(excl, "exclusive-mean-gpu-wait-s")
	if excl <= colo {
		b.Log("warning: exclusive policy did not inflate waits under staged pressure")
	}
}

// stageCorePressure builds the demonstration workload: 30-core shared CPU
// jobs keep five of six nodes' cores busy while generated single-GPU jobs
// arrive every few minutes.
func stageCorePressure(specs []workload.JobSpec) []workload.JobSpec {
	var staged []workload.JobSpec
	for wave := 0; wave < 12; wave++ {
		for k := 0; k < 5; k++ {
			staged = append(staged, workload.JobSpec{
				Interface: trace.Batch, Exit: trace.ExitSuccess,
				SubmitSec: float64(wave) * 5000, RunSec: 5200, LimitSec: 86400,
				Cores: 30, MemGB: 64,
			})
		}
	}
	n := 0
	for i := range specs {
		sp := specs[i]
		if !sp.IsGPU() || sp.NumGPUs != 1 || sp.RunSec < 60 {
			continue
		}
		sp.SubmitSec = 600 + float64(n)*400
		if sp.RunSec > 1800 {
			sp.RunSec = 1800
		}
		staged = append(staged, sp)
		n++
		if n == 120 {
			break
		}
	}
	sort.Slice(staged, func(a, b int) bool { return staged[a].SubmitSec < staged[b].SubmitSec })
	for i := range staged {
		staged[i].ID = int64(i + 1)
	}
	return staged
}

func meanGPUWait(b *testing.B, specs []workload.JobSpec, colocate bool) float64 {
	b.Helper()
	scfg := slurm.DefaultConfig()
	scfg.Cluster.Nodes = 6
	scfg.Policy.Colocate = colocate
	sim, err := slurm.NewSimulator(scfg)
	if err != nil {
		b.Fatal(err)
	}
	results, _, err := sim.Run(specs)
	if err != nil {
		b.Fatal(err)
	}
	var waits []float64
	for i := range specs {
		if specs[i].IsGPU() {
			waits = append(waits, results[specs[i].ID].WaitSec)
		}
	}
	return stats.Mean(waits)
}

// BenchmarkAblationNoIdleGPUs regenerates the population with the idle-GPU
// pathology disabled and shows Fig. 14a's high-CoV mode disappear.
func BenchmarkAblationNoIdleGPUs(b *testing.B) {
	cfg := workload.ScaledConfig(0.05)
	cfg.Seed = 7
	cfg.Calib.IdleGPUJobFrac = 0
	g, err := workload.NewGenerator(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ds := g.BuildDataset(g.GenerateSpecs())
	b.ResetTimer()
	var r core.MultiGPUResult
	for i := 0; i < b.N; i++ {
		r = core.MultiGPU(ds)
	}
	b.ReportMetric(r.HalfIdleJobFrac*100, "half-idle-pct(with-pathology:~40)")
	b.ReportMetric(r.CoVAllGPUs[0].P75, "all-gpu-sm-cov-p75(with-pathology:high)")
}

// BenchmarkAblationPowerModel swaps the affine-with-floor power model for a
// pure linear one and shows the Fig. 9a medians collapse: without the idle
// floor, low-utilization jobs read near-zero watts instead of the paper's
// 45 W median.
func BenchmarkAblationPowerModel(b *testing.B) {
	cfg := workload.ScaledConfig(0.05)
	cfg.Seed = 7
	cfg.PowerModel = gpu.LinearPowerModel{}
	g, err := workload.NewGenerator(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ds := g.BuildDataset(g.GenerateSpecs())
	b.ResetTimer()
	var r core.PowerResult
	for i := 0; i < b.N; i++ {
		r = core.Power(ds)
	}
	b.ReportMetric(r.Avg.P50, "linear-avg-power-median-w(affine:~45)")
	// The idle floor is most visible at the quartile: low-utilization jobs
	// read near-zero watts under the linear model but ~25 W (the V100 idle
	// floor) under the affine one.
	b.ReportMetric(r.Avg.P25, "linear-avg-power-p25-w(affine:~27)")
}

// BenchmarkAblationColocationPolicies times the three GPU-sharing policies
// and reports their saved GPU-hour fractions side by side.
func BenchmarkAblationColocationPolicies(b *testing.B) {
	specs, _, _ := benchDataset(b)
	cfg := sharing.DefaultColocationConfig()
	b.ResetTimer()
	var static, phase sharing.ColocationReport
	for i := 0; i < b.N; i++ {
		static = sharing.Colocate(specs, sharing.StaticPairing, cfg)
		phase = sharing.Colocate(specs, sharing.PhaseAware, cfg)
	}
	b.ReportMetric(static.SavedFrac*100, "static-saved-pct")
	b.ReportMetric(phase.SavedFrac*100, "phase-saved-pct")
	b.ReportMetric(static.MaxSlowdown, "static-max-slowdown")
	b.ReportMetric(phase.MaxSlowdown, "phase-max-slowdown")
	ts, err := sharing.TimeSlice(specs, sharing.DefaultTimeSliceConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(ts.SavedFrac*100, "timeslice-saved-pct")
	b.ReportMetric(ts.MeanStretch, "timeslice-mean-stretch")
}
