// Package sharing implements the paper's opportunity studies — the what-if
// analyses its takeaways call for: power-capped over-provisioning (Fig. 9b),
// idle-phase-aware GPU co-location (§III/§VI takeaways, with exclusive and
// Gandiva-style time-slicing baselines), multi-tier GPU fleet economics
// (§VIII operator recommendation), and a checkpoint/restart planner for
// development/IDE state-saving (§VI takeaway).
package sharing

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// CapLevel is one row of the Fig. 9b study.
type CapLevel struct {
	CapWatts float64
	// UnimpactedFrac: neither average nor peak draw reaches the cap.
	UnimpactedFrac float64
	// PeakImpactedFrac: only the peak exceeds the cap (brief throttling).
	PeakImpactedFrac float64
	// AvgImpactedFrac: the average draw exceeds the cap (sustained
	// throttling).
	AvgImpactedFrac float64
	// ExtraGPUsSupportable is how many additional GPUs the same power budget
	// feeds at this cap (over-provisioning head-room).
	ExtraGPUsSupportable int
	// MeanSlowdown is the average run-time dilation over all jobs under the
	// cap (1.0 = unaffected), using the energy-headroom throttle model.
	MeanSlowdown float64
}

// PowerCapResult is the full Fig. 9b study.
type PowerCapResult struct {
	Levels []CapLevel
	Jobs   int
}

// PowerCapStudy evaluates the job population under each cap level. spec is
// the fleet's GPU model (V100: 300 W TDP); fleetGPUs is the installed count
// used for the over-provisioning arithmetic.
func PowerCapStudy(ds *trace.Dataset, spec gpu.Spec, fleetGPUs int, capsWatts []float64) (PowerCapResult, error) {
	jobs := ds.Columns().GPU
	res := PowerCapResult{Jobs: len(jobs)}
	if len(jobs) == 0 {
		return res, fmt.Errorf("sharing: no GPU jobs to study")
	}
	budget := spec.TDPWatts * float64(fleetGPUs)
	for _, cap := range capsWatts {
		if cap <= spec.IdleWatts || cap > spec.TDPWatts {
			return res, fmt.Errorf("sharing: cap %.0f W outside (%v, %v]", cap, spec.IdleWatts, spec.TDPWatts)
		}
		var lvl CapLevel
		lvl.CapWatts = cap
		var slowSum float64
		for _, j := range jobs {
			avg, max := j.GPU[metrics.Power].Mean, j.GPU[metrics.Power].Max
			switch gpu.ClassifyCapImpact(avg, max, cap) {
			case gpu.CapNoImpact:
				lvl.UnimpactedFrac++
			case gpu.CapImpactsPeak:
				lvl.PeakImpactedFrac++
			default:
				lvl.AvgImpactedFrac++
			}
			slowSum += gpu.ThrottleSlowdown(spec, avg, cap)
		}
		n := float64(len(jobs))
		lvl.UnimpactedFrac /= n
		lvl.PeakImpactedFrac /= n
		lvl.AvgImpactedFrac /= n
		lvl.MeanSlowdown = slowSum / n
		lvl.ExtraGPUsSupportable = int(budget/cap) - fleetGPUs
		res.Levels = append(res.Levels, lvl)
	}
	return res, nil
}
