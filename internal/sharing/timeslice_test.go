package sharing

import (
	"math"
	"testing"

	"repro/internal/gpu"
	"repro/internal/workload"
)

func mkSlicedSpec(t *testing.T, id int64, dur, activeFrac, sm float64) workload.JobSpec {
	t.Helper()
	var phases []workload.Phase
	if idle := dur * (1 - activeFrac); idle > 0 {
		phases = append(phases, workload.Phase{DurSec: idle, Active: false})
	}
	if act := dur * activeFrac; act > 0 {
		phases = append(phases, workload.Phase{DurSec: act, Active: true, Level: gpu.Utilization{SMPct: sm}})
	}
	p, err := workload.NewProfile(phases, 0)
	if err != nil {
		t.Fatal(err)
	}
	return workload.JobSpec{ID: id, NumGPUs: 1, RunSec: dur, Profiles: []*workload.Profile{p}}
}

func TestTimeSliceComplementaryJobs(t *testing.T) {
	// Two jobs each 30 % active share one GPU with almost no stretch.
	specs := []workload.JobSpec{
		mkSlicedSpec(t, 1, 10000, 0.3, 60),
		mkSlicedSpec(t, 2, 10000, 0.3, 60),
	}
	rep, err := TimeSlice(specs, DefaultTimeSliceConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.GroupsFormed != 1 || rep.Jobs != 2 {
		t.Fatalf("grouping: %+v", rep)
	}
	// Exclusive: 2 GPU × 10000 s; shared: one GPU for ~10000 s → ~50 % saved.
	if rep.SavedFrac < 0.45 {
		t.Fatalf("saved %v, want ~0.5", rep.SavedFrac)
	}
	if rep.MeanStretch > 1.05 {
		t.Fatalf("stretch %v for complementary jobs", rep.MeanStretch)
	}
}

func TestTimeSliceSaturatedGroupStretches(t *testing.T) {
	// Two fully active jobs must serialize: span ≈ 2× duration. The
	// introspection budget is lifted so the group actually forms — the
	// default config would (correctly) refuse to share between them.
	specs := []workload.JobSpec{
		mkSlicedSpec(t, 1, 10000, 1, 80),
		mkSlicedSpec(t, 2, 10000, 1, 80),
	}
	cfgSat := DefaultTimeSliceConfig()
	cfgSat.MaxGroupActiveFrac = 2.5
	rep, err := TimeSlice(specs, cfgSat)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanStretch < 1.9 {
		t.Fatalf("stretch %v, want ~2 for saturated group", rep.MeanStretch)
	}
	// No GPU hours saved: serialization replaces parallel exclusive use.
	if rep.SavedFrac > 0.05 {
		t.Fatalf("saved %v on saturated pair", rep.SavedFrac)
	}
}

func TestTimeSliceSwapOverheadAccounted(t *testing.T) {
	cfg := DefaultTimeSliceConfig()
	cfg.QuantumSec = 100
	cfg.SwapOverheadSec = 10
	specs := []workload.JobSpec{
		mkSlicedSpec(t, 1, 10000, 1, 80),
		mkSlicedSpec(t, 2, 10000, 1, 80),
	}
	rep, err := TimeSlice(specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 × (10000/100) switches × 10 s = 2000 s ≈ 0.56 h.
	if math.Abs(rep.SwapOverheadHours-2000.0/3600) > 0.01 {
		t.Fatalf("overhead hours = %v", rep.SwapOverheadHours)
	}
}

func TestTimeSliceIntrospectionRefusesHotGroups(t *testing.T) {
	// Under the default budget, two fully-active jobs run exclusively.
	specs := []workload.JobSpec{
		mkSlicedSpec(t, 1, 10000, 1, 80),
		mkSlicedSpec(t, 2, 10000, 1, 80),
	}
	rep, err := TimeSlice(specs, DefaultTimeSliceConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.GroupsFormed != 2 {
		t.Fatalf("hot jobs grouped: %+v", rep)
	}
	if rep.MeanStretch > 1.01 {
		t.Fatalf("exclusive members stretched: %v", rep.MeanStretch)
	}
}

func TestTimeSliceValidation(t *testing.T) {
	if _, err := TimeSlice(nil, TimeSliceConfig{JobsPerGPU: 0, QuantumSec: 1}); err == nil {
		t.Fatal("zero multiplexing accepted")
	}
	if _, err := TimeSlice(nil, TimeSliceConfig{JobsPerGPU: 2, QuantumSec: 0}); err == nil {
		t.Fatal("zero quantum accepted")
	}
	rep, err := TimeSlice(nil, DefaultTimeSliceConfig())
	if err != nil || rep.Jobs != 0 {
		t.Fatalf("empty input: %+v, %v", rep, err)
	}
}

func TestTimeSliceOnGeneratedPopulation(t *testing.T) {
	specs, _ := population(t)
	rep, err := TimeSlice(specs, DefaultTimeSliceConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs == 0 || rep.GroupsFormed == 0 {
		t.Fatalf("degenerate run: %+v", rep)
	}
	// The workload is mostly idle, so time-sharing should save GPU hours.
	if rep.SavedFrac <= 0 {
		t.Fatalf("time slicing saved %v", rep.SavedFrac)
	}
	if rep.MeanStretch < 1 {
		t.Fatalf("stretch %v < 1", rep.MeanStretch)
	}
	t.Logf("time-slicing: saved=%.3f stretch=%.2f overhead=%.1fh groups=%d",
		rep.SavedFrac, rep.MeanStretch, rep.SwapOverheadHours, rep.GroupsFormed)
}
