package sharing_test

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/sharing"
	"repro/internal/slurm"
	"repro/internal/stats"
	"repro/internal/workload"
)

func TestMergeForColocationPairsAdjacentCoolJobs(t *testing.T) {
	mk := func(id int64, submit float64, sm float64) workload.JobSpec {
		p, _ := workload.NewProfile([]workload.Phase{
			{DurSec: 1000, Active: true, Level: gpu.Utilization{SMPct: sm, MemPct: 3, MemSizePct: 20}},
		}, 0)
		return workload.JobSpec{
			ID: id, SubmitSec: submit, RunSec: 1000, LimitSec: 86400,
			NumGPUs: 1, CoresPerGPU: 4, MemGBPerGPU: 16,
			Profiles: []*workload.Profile{p},
		}
	}
	specs := []workload.JobSpec{mk(1, 0, 20), mk(2, 100, 25), mk(3, 99999, 20)}
	plan := sharing.MergeForColocation(specs, sharing.DefaultColocationConfig(), 3600)
	if plan.PairsFormed != 1 {
		t.Fatalf("pairs = %d, want 1 (job 3 is too far away)", plan.PairsFormed)
	}
	if plan.Partner[1] != 2 || plan.Partner[2] != 1 {
		t.Fatalf("partners: %+v", plan.Partner)
	}
	if len(plan.Merged) != 2 {
		t.Fatalf("merged list has %d entries", len(plan.Merged))
	}
	bundle := plan.Merged[0]
	if bundle.ID != 1 || bundle.NumGPUs != 1 {
		t.Fatalf("bundle: %+v", bundle)
	}
	// Span covers the later member's completion offset.
	if bundle.RunSec < 1100 {
		t.Fatalf("bundle span = %v, want >= 1100", bundle.RunSec)
	}
	// Combined host request.
	if bundle.CoresPerGPU != 8 || bundle.MemGBPerGPU != 32 {
		t.Fatalf("bundle host request: %d cores, %v GB", bundle.CoresPerGPU, bundle.MemGBPerGPU)
	}
	// Combined profile sums the levels.
	u := bundle.Profiles[0].LevelAt(500)
	if u.SMPct < 40 || u.SMPct > 50 {
		t.Fatalf("combined SM = %v, want ~45", u.SMPct)
	}
}

func TestMergeRefusesHotPairs(t *testing.T) {
	mk := func(id int64) workload.JobSpec {
		p, _ := workload.NewProfile([]workload.Phase{
			{DurSec: 1000, Active: true, Level: gpu.Utilization{SMPct: 90, MemPct: 30, MemSizePct: 60}},
		}, 0)
		return workload.JobSpec{ID: id, SubmitSec: 0, RunSec: 1000, NumGPUs: 1,
			CoresPerGPU: 4, MemGBPerGPU: 16, Profiles: []*workload.Profile{p}}
	}
	plan := sharing.MergeForColocation([]workload.JobSpec{mk(1), mk(2)}, sharing.DefaultColocationConfig(), 3600)
	if plan.PairsFormed != 0 {
		t.Fatal("hot jobs merged")
	}
	if len(plan.Merged) != 2 {
		t.Fatalf("merged = %d", len(plan.Merged))
	}
}

func TestMergePassesThroughMultiGPUJobs(t *testing.T) {
	specs := []workload.JobSpec{{ID: 1, NumGPUs: 4, RunSec: 100}}
	plan := sharing.MergeForColocation(specs, sharing.DefaultColocationConfig(), 3600)
	if plan.PairsFormed != 0 || len(plan.Merged) != 1 || plan.Merged[0].NumGPUs != 4 {
		t.Fatalf("multi-GPU job mangled: %+v", plan)
	}
}

// TestColocatedSchedulingReducesWaits is the queueing experiment: on a
// saturated cluster, scheduling merged bundles cuts GPU queue waits versus
// exclusive per-job GPUs.
func TestColocatedSchedulingReducesWaits(t *testing.T) {
	// 60 cool single-GPU jobs arriving quickly on a 2-node (4-GPU) cluster.
	var specs []workload.JobSpec
	for i := int64(1); i <= 60; i++ {
		p, _ := workload.NewProfile([]workload.Phase{
			{DurSec: 2000, Active: true, Level: gpu.Utilization{SMPct: 25, MemPct: 3, MemSizePct: 25}},
		}, 0)
		specs = append(specs, workload.JobSpec{
			ID: i, SubmitSec: float64(i) * 30, RunSec: 2000, LimitSec: 86400,
			NumGPUs: 1, CoresPerGPU: 2, MemGBPerGPU: 8,
			Profiles: []*workload.Profile{p},
		})
	}
	run := func(toRun []workload.JobSpec) float64 {
		cfg := slurm.DefaultConfig()
		cfg.Cluster.Nodes = 2
		sim, err := slurm.NewSimulator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		results, _, err := sim.Run(toRun)
		if err != nil {
			t.Fatal(err)
		}
		var waits []float64
		for _, r := range results {
			waits = append(waits, r.WaitSec)
		}
		return stats.Mean(waits)
	}
	exclusiveWait := run(specs)
	plan := sharing.MergeForColocation(specs, sharing.DefaultColocationConfig(), 1800)
	if plan.PairsFormed < 20 {
		t.Fatalf("only %d pairs formed", plan.PairsFormed)
	}
	mergedWait := run(plan.Merged)
	if mergedWait >= exclusiveWait {
		t.Fatalf("co-located scheduling did not cut waits: %v vs %v", mergedWait, exclusiveWait)
	}
	t.Logf("mean GPU wait: exclusive %.0fs vs co-located %.0fs (%d pairs)",
		exclusiveWait, mergedWait, plan.PairsFormed)
}
