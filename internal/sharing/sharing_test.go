package sharing

import (
	"math"
	"testing"

	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workload"
)

// sharedPopulation caches one generated population for the studies.
var sharedPop struct {
	specs []workload.JobSpec
	ds    *trace.Dataset
}

func population(t *testing.T) ([]workload.JobSpec, *trace.Dataset) {
	t.Helper()
	if sharedPop.ds == nil {
		cfg := workload.ScaledConfig(0.05)
		cfg.Seed = 21
		g, err := workload.NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sharedPop.specs = g.GenerateSpecs()
		sharedPop.ds = g.BuildDataset(sharedPop.specs)
	}
	return sharedPop.specs, sharedPop.ds
}

func TestPowerCapStudyFig9b(t *testing.T) {
	_, ds := population(t)
	res, err := PowerCapStudy(ds, gpu.V100(), 448, []float64{150, 200, 250})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 3 {
		t.Fatalf("levels = %d", len(res.Levels))
	}
	l150 := res.Levels[0]
	// Paper: even at 150 W over 60 % of jobs are unimpacted and under 10 %
	// are average-impacted.
	if l150.UnimpactedFrac < 0.5 {
		t.Errorf("150W unimpacted = %v, want > 0.5", l150.UnimpactedFrac)
	}
	if l150.AvgImpactedFrac > 0.15 {
		t.Errorf("150W avg-impacted = %v, want < 0.15", l150.AvgImpactedFrac)
	}
	// Monotonicity: higher caps impact fewer jobs.
	for i := 1; i < 3; i++ {
		if res.Levels[i].UnimpactedFrac < res.Levels[i-1].UnimpactedFrac {
			t.Errorf("unimpacted fraction not monotone: %+v", res.Levels)
		}
	}
	// 150 W cap on a 300 W budget supports double the fleet.
	if l150.ExtraGPUsSupportable != 448 {
		t.Errorf("extra GPUs at 150W = %d, want 448", l150.ExtraGPUsSupportable)
	}
	// Band sums to 1.
	if s := l150.UnimpactedFrac + l150.PeakImpactedFrac + l150.AvgImpactedFrac; math.Abs(s-1) > 1e-9 {
		t.Errorf("bands sum to %v", s)
	}
	if l150.MeanSlowdown < 1 {
		t.Errorf("mean slowdown = %v", l150.MeanSlowdown)
	}
}

func TestPowerCapStudyValidation(t *testing.T) {
	_, ds := population(t)
	if _, err := PowerCapStudy(ds, gpu.V100(), 448, []float64{10}); err == nil {
		t.Fatal("cap below idle accepted")
	}
	if _, err := PowerCapStudy(trace.NewDataset(1), gpu.V100(), 448, []float64{150}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestColocationPolicies(t *testing.T) {
	specs, _ := population(t)
	cfg := DefaultColocationConfig()
	excl := Colocate(specs, Exclusive, cfg)
	static := Colocate(specs, StaticPairing, cfg)
	phase := Colocate(specs, PhaseAware, cfg)

	if excl.SavedFrac != 0 || excl.PairsFormed != 0 {
		t.Fatalf("exclusive baseline saved %v with %d pairs", excl.SavedFrac, excl.PairsFormed)
	}
	if static.PairsFormed == 0 {
		t.Fatal("static pairing formed no pairs despite low average utilization")
	}
	if static.SavedFrac <= 0 {
		t.Fatalf("static pairing saved %v", static.SavedFrac)
	}
	if phase.SavedFrac <= 0 {
		t.Fatalf("phase-aware saved %v", phase.SavedFrac)
	}
	// Both sharing policies conserve the exclusive-hour accounting base.
	if math.Abs(static.GPUHoursExclusive-excl.GPUHoursExclusive) > 1e-6 {
		t.Fatal("exclusive-hour base differs between policies")
	}
	// Phase-aware slowdowns stay bounded by the contention threshold, while
	// static pairing (means only) can realize worse collisions — the reason
	// the paper asks for phase-aware co-location tools.
	maxAllowed := 1 + cfg.SlowdownAlpha*cfg.MaxMeanContention + 1e-9
	if phase.MaxSlowdown > maxAllowed {
		t.Fatalf("phase-aware max slowdown %v exceeds contention bound %v", phase.MaxSlowdown, maxAllowed)
	}
	if static.MaxSlowdown < phase.MaxSlowdown {
		t.Fatalf("static pairing should risk worse collisions: static %v < phase %v",
			static.MaxSlowdown, phase.MaxSlowdown)
	}
	t.Logf("colocation: static saved=%.3f pairs=%d; phase saved=%.3f pairs=%d",
		static.SavedFrac, static.PairsFormed, phase.SavedFrac, phase.PairsFormed)
}

func TestColocationRejectsHotPairs(t *testing.T) {
	// Two fully-busy jobs must not share a GPU.
	mk := func(id int64) workload.JobSpec {
		p, _ := workload.NewProfile([]workload.Phase{
			{DurSec: 1000, Active: true, Level: gpu.Utilization{SMPct: 90, MemPct: 40, MemSizePct: 60}},
		}, 0)
		return workload.JobSpec{ID: id, NumGPUs: 1, RunSec: 1000, Profiles: []*workload.Profile{p}}
	}
	specs := []workload.JobSpec{mk(1), mk(2)}
	rep := Colocate(specs, StaticPairing, DefaultColocationConfig())
	if rep.PairsFormed != 0 {
		t.Fatal("hot pair was co-located")
	}
}

func TestColocationPairsComplementaryJobs(t *testing.T) {
	// A compute-bound and a memory-staging job fit together.
	pA, _ := workload.NewProfile([]workload.Phase{
		{DurSec: 1000, Active: true, Level: gpu.Utilization{SMPct: 70, MemPct: 5, MemSizePct: 30}},
	}, 0)
	pB, _ := workload.NewProfile([]workload.Phase{
		{DurSec: 1000, Active: true, Level: gpu.Utilization{SMPct: 3, MemPct: 20, MemSizePct: 30}},
	}, 0)
	specs := []workload.JobSpec{
		{ID: 1, NumGPUs: 1, RunSec: 1000, Profiles: []*workload.Profile{pA}},
		{ID: 2, NumGPUs: 1, RunSec: 1000, Profiles: []*workload.Profile{pB}},
	}
	rep := Colocate(specs, StaticPairing, DefaultColocationConfig())
	if rep.PairsFormed != 1 {
		t.Fatalf("complementary pair not formed: %+v", rep)
	}
	if rep.SavedFrac < 0.45 {
		t.Fatalf("saved fraction %v, want ~0.5", rep.SavedFrac)
	}
}

func TestTwoTierStudy(t *testing.T) {
	_, ds := population(t)
	res, err := TwoTierStudy(ds, DefaultTierPlan())
	if err != nil {
		t.Fatal(err)
	}
	if res.TwoTier.SlowGPUs == 0 || res.TwoTier.FastGPUs == 0 {
		t.Fatalf("degenerate fleet: %+v", res.TwoTier)
	}
	// The recommendation's point: two tiers cost less.
	if res.CapexSavingsFrac <= 0 {
		t.Fatalf("two-tier plan saves nothing: %+v", res)
	}
	// Low-utilization categories barely slow down on T4s.
	if res.TwoTier.MeanSlowdownByCategory[trace.IDE] > 1.5 {
		t.Errorf("IDE slowdown on slow tier = %v", res.TwoTier.MeanSlowdownByCategory[trace.IDE])
	}
	if res.TwoTier.MeanSlowdownByCategory[trace.Mature] != 1 {
		t.Errorf("mature jobs should stay on the fast tier")
	}
	if res.TwoTier.MeanSlowdown < 1 {
		t.Errorf("slow-tier mean slowdown = %v", res.TwoTier.MeanSlowdown)
	}
	t.Logf("two-tier: capex %.0f -> %.0f (saved %.1f%%), slow-tier slowdown %.2f",
		res.SingleTier.CapexUSD, res.TwoTier.CapexUSD, res.CapexSavingsFrac*100, res.TwoTier.MeanSlowdown)
}

func TestTwoTierValidation(t *testing.T) {
	_, ds := population(t)
	bad := DefaultTierPlan()
	bad.UtilizationHeadroom = 0
	if _, err := TwoTierStudy(ds, bad); err == nil {
		t.Fatal("zero headroom accepted")
	}
	if _, err := TwoTierStudy(trace.NewDataset(1), DefaultTierPlan()); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestOptimalInterval(t *testing.T) {
	// Young–Daly: sqrt(2*30*43200) for a 12 h MTBF and 30 s overhead.
	want := math.Sqrt(2 * 30 * 43200)
	if got := OptimalInterval(30, 43200); math.Abs(got-want) > 1e-9 {
		t.Fatalf("interval = %v, want %v", got, want)
	}
	if !math.IsNaN(OptimalInterval(0, 100)) {
		t.Fatal("zero overhead should be NaN")
	}
}

func TestCheckpointStudy(t *testing.T) {
	_, ds := population(t)
	rep, err := CheckpointStudy(ds, DefaultCheckpointConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.JobsCovered == 0 {
		t.Fatal("no development/IDE jobs covered")
	}
	if rep.SavedGPUHours <= 0 {
		t.Fatalf("checkpointing saves %v GPU hours", rep.SavedGPUHours)
	}
	if rep.LostGPUHoursWithCkpt >= rep.LostGPUHoursNoCkpt {
		t.Fatal("checkpointing did not reduce lost work")
	}
	if rep.IntervalSec <= 0 {
		t.Fatalf("interval = %v", rep.IntervalSec)
	}
	t.Logf("checkpoint: %d jobs, lost %.0f -> %.0f GPUh (saved %.0f, interval %.0fs)",
		rep.JobsCovered, rep.LostGPUHoursNoCkpt, rep.LostGPUHoursWithCkpt, rep.SavedGPUHours, rep.IntervalSec)
}

func TestCheckpointValidation(t *testing.T) {
	if _, err := CheckpointStudy(trace.NewDataset(1), CheckpointConfig{OverheadSec: 0}); err == nil {
		t.Fatal("zero overhead accepted")
	}
	rep, err := CheckpointStudy(trace.NewDataset(1), DefaultCheckpointConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.JobsCovered != 0 || rep.SavedGPUHours != 0 {
		t.Fatal("empty dataset produced savings")
	}
}

func TestPolicyStrings(t *testing.T) {
	if Exclusive.String() != "exclusive" || PhaseAware.String() != "phase-aware" {
		t.Fatal("policy names wrong")
	}
	if ColocationPolicy(9).String() == "" {
		t.Fatal("unknown policy name empty")
	}
}

// Verify the power summary fields the cap study relies on exist in the
// generated dataset (mean <= max).
func TestPowerSummariesSane(t *testing.T) {
	_, ds := population(t)
	for _, j := range ds.GPUJobs() {
		p := j.GPU[metrics.Power]
		if !(p.Mean <= p.Max+1e-9) {
			t.Fatalf("job %d power mean %v > max %v", j.JobID, p.Mean, p.Max)
		}
	}
}
