package sharing

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// CapComparison is one row of the power-vs-frequency capping study: both
// mechanisms tuned to the same per-GPU power target, compared by the
// slowdown they inflict on the job population.
type CapComparison struct {
	TargetWatts float64
	// PowerCap side (reactive: only jobs whose demand exceeds the cap slow
	// down, and only while it does).
	PowerCapMeanSlowdown float64
	PowerCapImpactedFrac float64
	// FrequencyCap side (static: every busy cycle of every job slows, but
	// dynamic power falls cubically so caps are easier to hold).
	FreqCapMeanSlowdown float64
	FreqCapImpactedFrac float64
}

// CompareCapping evaluates both mechanisms at each power target over the
// dataset's GPU jobs — the extension study the paper's related work points
// to (Patki et al.). The busy fraction of each job is approximated by its
// mean SM utilization relative to its peak, falling back to the mean/100.
func CompareCapping(ds *trace.Dataset, spec gpu.Spec, targets []float64) ([]CapComparison, error) {
	jobs := ds.Columns().GPU
	if len(jobs) == 0 {
		return nil, fmt.Errorf("sharing: no GPU jobs to study")
	}
	var out []CapComparison
	for _, target := range targets {
		if target <= spec.IdleWatts || target > spec.TDPWatts {
			return nil, fmt.Errorf("sharing: target %.0f W outside (%v, %v]", target, spec.IdleWatts, spec.TDPWatts)
		}
		var row CapComparison
		row.TargetWatts = target
		var pcSum, fcSum float64
		var pcHit, fcHit float64
		for _, j := range jobs {
			avg := j.GPU[metrics.Power].Mean
			max := j.GPU[metrics.Power].Max
			busy := j.GPU[metrics.SMUtil].Mean / 100

			pc := gpu.ThrottleSlowdown(spec, avg, target)
			pcSum += pc
			if pc > 1 {
				pcHit++
			}
			fc := gpu.JobFrequencySlowdown(spec, avg, max, busy, target)
			fcSum += fc
			if fc > 1 {
				fcHit++
			}
		}
		n := float64(len(jobs))
		row.PowerCapMeanSlowdown = pcSum / n
		row.PowerCapImpactedFrac = pcHit / n
		row.FreqCapMeanSlowdown = fcSum / n
		row.FreqCapImpactedFrac = fcHit / n
		out = append(out, row)
	}
	return out, nil
}
