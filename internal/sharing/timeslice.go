package sharing

import (
	"fmt"
	"sort"

	"repro/internal/workload"
)

// TimeSliceConfig models Gandiva-style introspective time-sharing: several
// jobs are multiplexed on one GPU, each swapped in for its active phases and
// out during its idle phases, paying a suspend/resume cost per switch (GPU
// state must be saved and restored through host memory).
type TimeSliceConfig struct {
	// JobsPerGPU is the multiplexing degree.
	JobsPerGPU int
	// SwapOverheadSec is the suspend+resume cost charged per context switch
	// (Gandiva reports sub-second to a few seconds depending on model size).
	SwapOverheadSec float64
	// QuantumSec bounds how long a job may hold the GPU before the
	// scheduler re-evaluates, even while active.
	QuantumSec float64
	// MaxGroupActiveFrac is the introspection rule: members are grouped
	// only while the sum of their active-time fractions stays under this
	// budget (Gandiva's insight — share GPUs between jobs whose busy phases
	// can interleave). Jobs that fit no group run exclusively.
	MaxGroupActiveFrac float64
}

// DefaultTimeSliceConfig returns Gandiva-shaped defaults.
func DefaultTimeSliceConfig() TimeSliceConfig {
	return TimeSliceConfig{JobsPerGPU: 2, SwapOverheadSec: 2, QuantumSec: 600, MaxGroupActiveFrac: 1.1}
}

// TimeSliceReport summarizes a time-sharing simulation.
type TimeSliceReport struct {
	Jobs              int
	GroupsFormed      int
	GPUHoursExclusive float64
	GPUHoursUsed      float64
	SavedFrac         float64
	// MeanStretch is the mean completion-time dilation relative to running
	// alone (1.0 = no stretch).
	MeanStretch float64
	// SwapOverheadHours is the total GPU time burned in context switches.
	SwapOverheadHours float64
}

// TimeSlice simulates round-robin time-sharing of single-GPU jobs in groups
// of JobsPerGPU. Each group's GPU serves one member at a time; a member
// only needs the device during its active phases, so a group whose members'
// active demands sum below 1 finishes everyone with little stretch, while
// saturated groups stretch proportionally. This is the Gandiva-like baseline
// the co-location study compares against.
func TimeSlice(specs []workload.JobSpec, cfg TimeSliceConfig) (TimeSliceReport, error) {
	if cfg.JobsPerGPU < 1 {
		return TimeSliceReport{}, fmt.Errorf("sharing: JobsPerGPU must be >= 1")
	}
	if cfg.QuantumSec <= 0 {
		return TimeSliceReport{}, fmt.Errorf("sharing: non-positive quantum")
	}
	rep := TimeSliceReport{MeanStretch: 1}
	type member struct {
		prof       *workload.Profile
		dur        float64
		activeFrac float64
	}
	var members []member
	for i := range specs {
		s := &specs[i]
		rep.GPUHoursExclusive += float64(s.NumGPUs) * s.RunSec / 3600
		if s.NumGPUs == 1 && len(s.Profiles) == 1 {
			members = append(members, member{
				prof:       s.Profiles[0],
				dur:        s.RunSec,
				activeFrac: s.Profiles[0].ActiveFraction(),
			})
			rep.Jobs++
		} else if s.IsGPU() {
			rep.GPUHoursUsed += float64(s.NumGPUs) * s.RunSec / 3600
		}
	}
	if len(members) == 0 {
		return rep, nil
	}
	// Introspective grouping: sort by active fraction and pack greedily
	// under the group activity budget; members that fit nowhere run alone.
	sort.Slice(members, func(a, b int) bool { return members[a].activeFrac < members[b].activeFrac })
	budget := cfg.MaxGroupActiveFrac
	if budget <= 0 {
		budget = 1.1
	}
	var groups [][]member
	var current []member
	var currentFrac float64
	for _, m := range members {
		if len(current) > 0 &&
			(len(current) >= cfg.JobsPerGPU || currentFrac+m.activeFrac > budget) {
			groups = append(groups, current)
			current, currentFrac = nil, 0
		}
		current = append(current, m)
		currentFrac += m.activeFrac
	}
	if len(current) > 0 {
		groups = append(groups, current)
	}
	var stretchSum float64
	var stretched int
	for _, group := range groups {
		rep.GroupsFormed++
		// Contention model: while co-resident, the device grants each
		// member's active work at rate 1/max(1, Σ active fractions) — the
		// processor-sharing view of round-robin. A member completes after
		// its active seconds (dilated by contention, plus its own switch
		// overhead) interleaved with its idle seconds; the GPU is held
		// until the last member finishes.
		var fracSum float64
		for _, m := range group {
			fracSum += m.activeFrac
		}
		contention := fracSum
		if contention < 1 {
			contention = 1
		}
		var span float64
		for _, m := range group {
			activeSec := m.activeFrac * m.dur
			switches := activeSec / cfg.QuantumSec
			if switches < 1 && m.activeFrac > 0 {
				switches = 1
			}
			overhead := switches * cfg.SwapOverheadSec
			completion := activeSec*contention + (1-m.activeFrac)*m.dur + overhead
			rep.SwapOverheadHours += overhead / 3600
			if completion > span {
				span = completion
			}
			if m.dur > 0 {
				stretchSum += completion / m.dur
				if completion > m.dur*1.001 {
					stretched++
				}
			}
		}
		rep.GPUHoursUsed += span / 3600
	}
	_ = stretched
	rep.MeanStretch = stretchSum / float64(len(members))
	if rep.GPUHoursExclusive > 0 {
		rep.SavedFrac = 1 - rep.GPUHoursUsed/rep.GPUHoursExclusive
	}
	return rep, nil
}
