package sharing

import (
	"testing"

	"repro/internal/trace"
)

func TestIncentiveStudySelfFunding(t *testing.T) {
	specs, _ := population(t)
	res, err := IncentiveStudy(specs, DefaultIncentiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Participants == 0 {
		t.Fatal("nobody participated")
	}
	if res.SavedGPUHours <= 0 {
		t.Fatalf("saved hours = %v", res.SavedGPUHours)
	}
	// The mechanism must be self-funding at unit exchange rates: the
	// interference users absorb is far smaller than the hours saved (that
	// asymmetry is exactly why the paper recommends the incentive).
	if !res.Solvent {
		t.Fatalf("mechanism insolvent: pool %v < coupons %v", res.CouponPool, res.TotalCoupons)
	}
	// Ledger is sorted descending by coupons.
	for i := 1; i < len(res.Ledger); i++ {
		if res.Ledger[i].CouponsEarned > res.Ledger[i-1].CouponsEarned {
			t.Fatal("ledger not sorted")
		}
	}
	// Coupons track absorbed slowdown hours at the configured rate.
	for _, e := range res.Ledger {
		if e.CouponsEarned < 0 || e.SlowdownHours < 0 || e.JobsShared == 0 {
			t.Fatalf("bad ledger entry: %+v", e)
		}
	}
	t.Logf("incentive: %d users, %.0f GPUh saved, %.1f coupons granted (pool %.0f)",
		res.Participants, res.SavedGPUHours, res.TotalCoupons, res.CouponPool)
}

func TestIncentiveValidation(t *testing.T) {
	bad := DefaultIncentiveConfig()
	bad.CouponPerSlowdownHour = 0
	if _, err := IncentiveStudy(nil, bad); err == nil {
		t.Fatal("zero coupon rate accepted")
	}
}

func TestReliabilityStudy(t *testing.T) {
	_, ds := population(t)
	plan := DefaultReliabilityPlan()
	res, err := ReliabilityStudy(ds, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.CapexUSD >= res.BaselineCapexUSD {
		t.Fatalf("discounted fleet not cheaper: %v vs %v", res.CapexUSD, res.BaselineCapexUSD)
	}
	if res.ExpectedFailures <= 0 {
		t.Fatal("no failure exposure on a finite-MTBF tier")
	}
	// Checkpointing must beat the unprotected counterfactual.
	if res.LostGPUHours >= res.LostGPUHoursNoCkpt {
		t.Fatalf("checkpointing did not reduce losses: %v vs %v",
			res.LostGPUHours, res.LostGPUHoursNoCkpt)
	}
	t.Logf("reliability fleet: capex %.0f -> %.0f, %.1f expected failures, lost %.1f GPUh (vs %.1f unprotected), net %.0f USD",
		res.BaselineCapexUSD, res.CapexUSD, res.ExpectedFailures,
		res.LostGPUHours, res.LostGPUHoursNoCkpt, res.NetSavingsUSD)

	// Without checkpointing the same plan loses more work.
	unprotected := plan
	unprotected.Checkpoint = nil
	res2, err := ReliabilityStudy(ds, unprotected)
	if err != nil {
		t.Fatal(err)
	}
	if res2.NetSavingsUSD > res.NetSavingsUSD {
		t.Fatalf("unprotected plan nets more: %v vs %v", res2.NetSavingsUSD, res.NetSavingsUSD)
	}
}

func TestReliabilityValidation(t *testing.T) {
	_, ds := population(t)
	bad := DefaultReliabilityPlan()
	bad.SlowTierMTBFHours = 0
	if _, err := ReliabilityStudy(ds, bad); err == nil {
		t.Fatal("zero MTBF accepted")
	}
	bad = DefaultReliabilityPlan()
	bad.PriceDiscount = 1
	if _, err := ReliabilityStudy(ds, bad); err == nil {
		t.Fatal("full discount accepted")
	}
	if _, err := ReliabilityStudy(trace.NewDataset(1), DefaultReliabilityPlan()); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestSlowTierBusyFrac(t *testing.T) {
	_, ds := population(t)
	f := slowTierBusyFrac(ds, DefaultTierPlan())
	// Non-mature categories are the low-utilization ones.
	if f < 0 || f > 0.3 {
		t.Fatalf("slow-tier busy fraction = %v", f)
	}
}
