package sharing

import (
	"fmt"
	"math"

	"repro/internal/lifecycle"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// The paper's §VIII vendor recommendation: "it might be economical for
// vendors to produce high performance, but potentially less resilience and
// error correction support, at a lower production cost and market price."
// ReliabilityStudy evaluates that fleet: exploratory/development/IDE jobs
// move to cheaper GPUs with a finite MTBF; failures cost lost work, and the
// checkpoint planner (§VI) is the remedy that makes the economics close.

// ReliabilityPlan describes the cheap-but-flaky tier.
type ReliabilityPlan struct {
	// Tiering routes categories and sets the device specs/headroom.
	Tiering TierPlan
	// SlowTierMTBFHours is the cheap device's mean time between job-killing
	// errors (ECC-less memory, weaker screening).
	SlowTierMTBFHours float64
	// PriceDiscount is the additional discount for the reduced-reliability
	// part, applied on top of the slow device's list price.
	PriceDiscount float64
	// Checkpoint, when non-nil, protects slow-tier jobs.
	Checkpoint *CheckpointConfig
}

// DefaultReliabilityPlan routes the non-mature categories onto discounted
// low-reliability devices with a 500-hour MTBF, checkpointed.
func DefaultReliabilityPlan() ReliabilityPlan {
	ck := DefaultCheckpointConfig()
	return ReliabilityPlan{
		Tiering:           DefaultTierPlan(),
		SlowTierMTBFHours: 500,
		PriceDiscount:     0.25,
		Checkpoint:        &ck,
	}
}

// ReliabilityResult is the study outcome.
type ReliabilityResult struct {
	// CapexUSD for the two-tier fleet with the discounted flaky devices.
	CapexUSD float64
	// BaselineCapexUSD is the all-reliable single-tier fleet.
	BaselineCapexUSD float64
	// ExpectedFailures over the trace window on the flaky tier.
	ExpectedFailures float64
	// LostGPUHours is the expected work destroyed by flaky-tier failures —
	// without checkpointing, half a run per failure in expectation; with
	// checkpointing, half a checkpoint interval plus restart.
	LostGPUHours float64
	// LostGPUHoursNoCkpt is the counterfactual without checkpointing.
	LostGPUHoursNoCkpt float64
	// NetSavingsUSD = capex saved − lost work valued at the reliable tier's
	// effective hourly cost.
	NetSavingsUSD float64
	// Worthwhile reports whether the discounted fleet wins.
	Worthwhile bool
}

// ReliabilityStudy prices the §VIII reduced-reliability fleet over a
// dataset.
func ReliabilityStudy(ds *trace.Dataset, plan ReliabilityPlan) (ReliabilityResult, error) {
	if plan.SlowTierMTBFHours <= 0 {
		return ReliabilityResult{}, fmt.Errorf("sharing: non-positive MTBF")
	}
	if plan.PriceDiscount < 0 || plan.PriceDiscount >= 1 {
		return ReliabilityResult{}, fmt.Errorf("sharing: discount %v out of [0,1)", plan.PriceDiscount)
	}
	base, err := TwoTierStudy(ds, plan.Tiering)
	if err != nil {
		return ReliabilityResult{}, err
	}
	var res ReliabilityResult
	res.BaselineCapexUSD = base.SingleTier.CapexUSD
	// Re-price the slow tier with the reliability discount.
	slowUnit := plan.Tiering.Slow.PriceUSD * (1 - plan.PriceDiscount)
	res.CapexUSD = float64(base.TwoTier.FastGPUs)*plan.Tiering.Fast.PriceUSD +
		float64(base.TwoTier.SlowGPUs)*slowUnit

	// Failure exposure: every slow-tier GPU hour draws failures at 1/MTBF.
	slowSet := map[trace.Category]bool{}
	for _, c := range plan.Tiering.SlowTierCategories {
		slowSet[c] = true
	}
	var lost, lostNoCkpt float64
	var interval float64
	if plan.Checkpoint != nil {
		// Young–Daly against the failure process, not the run length.
		interval = OptimalInterval(plan.Checkpoint.OverheadSec, plan.SlowTierMTBFHours*3600)
	}
	for _, j := range ds.Columns().GPU {
		if !slowSet[lifecycle.Classify(j)] {
			continue
		}
		dilated := j.GPUHours() * slowdownOn(j, plan.Tiering.Fast, plan.Tiering.Slow)
		failures := dilated / plan.SlowTierMTBFHours
		res.ExpectedFailures += failures
		// Without checkpointing a failure destroys half the run so far in
		// expectation (bounded by the job itself).
		perFailureLossH := dilated / 2
		lostNoCkpt += failures * perFailureLossH
		if plan.Checkpoint != nil {
			residualH := math.Min(dilated, (interval/2+plan.Checkpoint.RestartSec)/3600)
			ckptsPerRun := dilated * 3600 / interval
			overheadH := ckptsPerRun * plan.Checkpoint.OverheadSec / 3600
			lost += failures*residualH + overheadH
		} else {
			lost += failures * perFailureLossH
		}
	}
	res.LostGPUHours = lost
	res.LostGPUHoursNoCkpt = lostNoCkpt

	// Value lost hours at the reliable tier's effective cost per GPU hour
	// over the window.
	windowHours := ds.DurationDays * 24
	if windowHours <= 0 {
		return res, fmt.Errorf("sharing: dataset has no observation window")
	}
	hourlyCost := plan.Tiering.Fast.PriceUSD / (windowHours * plan.Tiering.UtilizationHeadroom)
	res.NetSavingsUSD = (res.BaselineCapexUSD - res.CapexUSD) - res.LostGPUHours*hourlyCost
	res.Worthwhile = res.NetSavingsUSD > 0
	return res, nil
}

// slowTierBusyFrac is a helper kept for tests: the mean SM busy fraction of
// the routed categories.
func slowTierBusyFrac(ds *trace.Dataset, plan TierPlan) float64 {
	slowSet := map[trace.Category]bool{}
	for _, c := range plan.SlowTierCategories {
		slowSet[c] = true
	}
	var sum, n float64
	for _, j := range ds.Columns().GPU {
		if slowSet[lifecycle.Classify(j)] {
			sum += j.GPU[metrics.SMUtil].Mean / 100
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / n
}
