package sharing

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/trace"
)

func TestCompareCapping(t *testing.T) {
	_, ds := population(t)
	rows, err := CompareCapping(ds, gpu.V100(), []float64{150, 200, 250})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.PowerCapMeanSlowdown < 1 || r.FreqCapMeanSlowdown < 1 {
			t.Fatalf("row %d slowdowns below 1: %+v", i, r)
		}
		// Frequency capping is static and must hold the peak, so it touches
		// at least as many jobs as the reactive power cap.
		if r.FreqCapImpactedFrac < r.PowerCapImpactedFrac {
			t.Fatalf("row %d: freq impacts %v < power impacts %v",
				i, r.FreqCapImpactedFrac, r.PowerCapImpactedFrac)
		}
	}
	// Looser targets impact monotonically fewer jobs.
	for i := 1; i < len(rows); i++ {
		if rows[i].PowerCapImpactedFrac > rows[i-1].PowerCapImpactedFrac+1e-9 {
			t.Fatalf("power-cap impact not monotone: %+v", rows)
		}
		if rows[i].FreqCapImpactedFrac > rows[i-1].FreqCapImpactedFrac+1e-9 {
			t.Fatalf("freq-cap impact not monotone: %+v", rows)
		}
	}
	t.Logf("150W: power-cap slow %.3f (%.1f%% hit) vs freq-cap slow %.3f (%.1f%% hit)",
		rows[0].PowerCapMeanSlowdown, rows[0].PowerCapImpactedFrac*100,
		rows[0].FreqCapMeanSlowdown, rows[0].FreqCapImpactedFrac*100)
}

func TestCompareCappingValidation(t *testing.T) {
	_, ds := population(t)
	if _, err := CompareCapping(ds, gpu.V100(), []float64{10}); err == nil {
		t.Fatal("target below idle accepted")
	}
	if _, err := CompareCapping(trace.NewDataset(1), gpu.V100(), []float64{150}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}
