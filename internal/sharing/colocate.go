package sharing

import (
	"fmt"
	"sort"

	"repro/internal/workload"
)

// ColocationPolicy selects how jobs are paired onto single GPUs.
type ColocationPolicy int

// The implemented policies.
const (
	// Exclusive is the production baseline: one job per GPU, no sharing.
	Exclusive ColocationPolicy = iota
	// StaticPairing pairs by average utilization only (space-sharing à la
	// MPS/GSLICE): two jobs co-locate when their mean SM and memory demands
	// fit under capacity.
	StaticPairing
	// PhaseAware additionally inspects the jobs' active/idle phase structure
	// and prefers partners whose active phases interleave — the paper's
	// "explicit time-spaced idle phases" opportunity.
	PhaseAware
)

// String names the policy.
func (p ColocationPolicy) String() string {
	switch p {
	case Exclusive:
		return "exclusive"
	case StaticPairing:
		return "static-pairing"
	case PhaseAware:
		return "phase-aware"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ColocationConfig tunes the pairing simulation.
type ColocationConfig struct {
	// WindowSize bounds how far apart (in submission order) two jobs may be
	// to share a GPU; co-location requires temporal adjacency.
	WindowSize int
	// MaxMeanContention rejects pairs whose estimated resource contention
	// exceeds this fraction.
	MaxMeanContention float64
	// SlowdownAlpha converts contention into run-time dilation.
	SlowdownAlpha float64
	// GridPoints is the time resolution of the pairwise overlap estimate.
	GridPoints int
}

// DefaultColocationConfig returns sane defaults.
func DefaultColocationConfig() ColocationConfig {
	return ColocationConfig{
		WindowSize:        64,
		MaxMeanContention: 0.08,
		SlowdownAlpha:     2.0,
		GridPoints:        96,
	}
}

// ColocationReport is the outcome of one policy run.
type ColocationReport struct {
	Policy            ColocationPolicy
	Jobs              int
	PairsFormed       int
	GPUHoursExclusive float64
	GPUHoursUsed      float64
	SavedFrac         float64
	MeanSlowdown      float64
	MaxSlowdown       float64
}

// pairEstimate is the contention/overlap analysis of a candidate pair.
type pairEstimate struct {
	meanContention float64 // average over-capacity demand fraction
	activeOverlap  float64 // fraction of time both jobs are active
}

// meanEstimate judges a pair by average utilization only — what a static
// space-sharing controller (MPS/GSLICE-style, no phase knowledge) can see.
// It systematically underestimates contention because synchronized bursts
// vanish in the averages.
func meanEstimate(a, b *workload.Profile, gridPoints int) pairEstimate {
	var e pairEstimate
	if gridPoints < 2 {
		gridPoints = 2
	}
	var sa, sb, ma, mb, za, zb float64
	for k := 0; k < gridPoints; k++ {
		f := float64(k) / float64(gridPoints-1)
		ua := a.LevelAt(f * a.TotalSec())
		ub := b.LevelAt(f * b.TotalSec())
		sa += ua.SMPct
		sb += ub.SMPct
		ma += ua.MemPct
		mb += ub.MemPct
		za += ua.MemSizePct
		zb += ub.MemSizePct
	}
	n := float64(gridPoints)
	if over := (sa + sb - 100*n) / (100 * n); over > 0 {
		e.meanContention += over
	}
	if over := (ma + mb - 100*n) / (100 * n); over > 0 {
		e.meanContention += over
	}
	if over := (za + zb - 100*n) / (100 * n); over > 0 {
		e.meanContention += 5 * over
	}
	return e
}

// estimatePair walks both profiles on a coarse grid (both normalized to
// their own durations, modeling time-sliced progress) and accumulates
// contention when combined demand exceeds device capacity.
func estimatePair(a, b *workload.Profile, gridPoints int) pairEstimate {
	var e pairEstimate
	if gridPoints < 2 {
		gridPoints = 2
	}
	for k := 0; k < gridPoints; k++ {
		fa := float64(k) / float64(gridPoints-1)
		ua := a.LevelAt(fa * a.TotalSec())
		ub := b.LevelAt(fa * b.TotalSec())
		smOver := (ua.SMPct + ub.SMPct - 100) / 100
		memOver := (ua.MemPct + ub.MemPct - 100) / 100
		memSizeOver := (ua.MemSizePct + ub.MemSizePct - 100) / 100
		if smOver > 0 {
			e.meanContention += smOver
		}
		if memOver > 0 {
			e.meanContention += memOver
		}
		if memSizeOver > 0 {
			// Memory capacity overflow is fatal for co-location, not merely
			// slow; weight it heavily so such pairs are rejected.
			e.meanContention += 5 * memSizeOver
		}
		aActive := ua.SMPct > 1 || ua.MemPct > 1
		bActive := ub.SMPct > 1 || ub.MemPct > 1
		if aActive && bActive {
			e.activeOverlap++
		}
	}
	e.meanContention /= float64(gridPoints)
	e.activeOverlap /= float64(gridPoints)
	return e
}

// Colocate simulates pairing single-GPU jobs under the policy and reports
// GPU-hour savings and slowdowns. Multi-GPU jobs and jobs without profiles
// are carried through exclusively.
func Colocate(specs []workload.JobSpec, policy ColocationPolicy, cfg ColocationConfig) ColocationReport {
	rep := ColocationReport{Policy: policy, MeanSlowdown: 1}
	type cand struct {
		idx  int
		prof *workload.Profile
		dur  float64
	}
	var cands []cand
	for i := range specs {
		s := &specs[i]
		rep.GPUHoursExclusive += float64(s.NumGPUs) * s.RunSec / 3600
		if s.NumGPUs == 1 && len(s.Profiles) == 1 {
			cands = append(cands, cand{idx: i, prof: s.Profiles[0], dur: s.RunSec})
			rep.Jobs++
		} else if s.IsGPU() {
			rep.GPUHoursUsed += float64(s.NumGPUs) * s.RunSec / 3600
		}
	}
	if policy == Exclusive {
		for _, c := range cands {
			rep.GPUHoursUsed += c.dur / 3600
		}
		rep.SavedFrac = 0
		rep.MaxSlowdown = 1
		return rep
	}
	// Keep submission order (specs are already sorted by submit time).
	sort.Slice(cands, func(a, b int) bool { return cands[a].idx < cands[b].idx })

	paired := make([]bool, len(cands))
	var slowdowns []float64
	for i := range cands {
		if paired[i] {
			continue
		}
		bestJ := -1
		var bestScore float64
		limit := i + cfg.WindowSize
		if limit > len(cands) {
			limit = len(cands)
		}
		for j := i + 1; j < limit; j++ {
			if paired[j] {
				continue
			}
			// Static pairing can only see averages; phase-aware judges the
			// actual time-resolved overlap, so it both avoids synchronous
			// bursts and admits hot-but-interleaved partners.
			var score float64
			if policy == PhaseAware {
				e := estimatePair(cands[i].prof, cands[j].prof, cfg.GridPoints)
				if e.meanContention > cfg.MaxMeanContention {
					continue
				}
				score = e.meanContention + 0.5*e.activeOverlap
			} else {
				e := meanEstimate(cands[i].prof, cands[j].prof, cfg.GridPoints)
				if e.meanContention > cfg.MaxMeanContention {
					continue
				}
				score = e.meanContention
			}
			if bestJ == -1 || score < bestScore {
				bestJ, bestScore = j, score
			}
		}
		if bestJ == -1 {
			rep.GPUHoursUsed += cands[i].dur / 3600
			slowdowns = append(slowdowns, 1)
			continue
		}
		paired[i], paired[bestJ] = true, true
		rep.PairsFormed++
		e := estimatePair(cands[i].prof, cands[bestJ].prof, cfg.GridPoints)
		slow := 1 + cfg.SlowdownAlpha*e.meanContention
		dA := cands[i].dur * slow
		dB := cands[bestJ].dur * slow
		span := dA
		if dB > span {
			span = dB
		}
		rep.GPUHoursUsed += span / 3600
		slowdowns = append(slowdowns, slow, slow)
		if slow > rep.MaxSlowdown {
			rep.MaxSlowdown = slow
		}
	}
	if rep.GPUHoursExclusive > 0 {
		rep.SavedFrac = 1 - rep.GPUHoursUsed/rep.GPUHoursExclusive
	}
	if len(slowdowns) > 0 {
		var sum float64
		for _, s := range slowdowns {
			sum += s
			if s > rep.MaxSlowdown {
				rep.MaxSlowdown = s
			}
		}
		rep.MeanSlowdown = sum / float64(len(slowdowns))
	}
	if rep.MaxSlowdown < 1 {
		rep.MaxSlowdown = 1
	}
	return rep
}
