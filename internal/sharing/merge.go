package sharing

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/workload"
)

// MergePlan records how single-GPU jobs were fused into shared-GPU bundles
// for scheduling, so results can be attributed back to the original jobs.
type MergePlan struct {
	// Merged is the schedulable spec list: bundles plus pass-through jobs.
	Merged []workload.JobSpec
	// Partner maps an original job ID to the ID it shares a GPU with.
	Partner map[int64]int64
	// BundleOf maps an original job ID to the bundle spec's ID that carries
	// it (bundles reuse the earlier member's ID).
	BundleOf map[int64]int64
	// PairsFormed counts bundles.
	PairsFormed int
}

// MergeForColocation fuses temporally adjacent, non-contending single-GPU
// jobs into one schedulable bundle each, so the discrete-event scheduler
// needs one GPU where the exclusive policy needs two. This is how the
// paper's co-location opportunity becomes a queueing experiment: under
// contention, merged workloads wait measurably less on the same cluster.
//
// A bundle inherits the earlier member's ID and submit time, the pair's
// maximum remaining span (including interference dilation), the combined
// host request, and an element-wise-summed utilization profile. Pairing
// requires both submission adjacency (within adjacencySec) and phase-aware
// contention below the config threshold.
func MergeForColocation(specs []workload.JobSpec, cfg ColocationConfig, adjacencySec float64) MergePlan {
	plan := MergePlan{
		Partner:  map[int64]int64{},
		BundleOf: map[int64]int64{},
	}
	ordered := make([]int, 0, len(specs))
	for i := range specs {
		ordered = append(ordered, i)
	}
	sort.Slice(ordered, func(a, b int) bool { return specs[ordered[a]].SubmitSec < specs[ordered[b]].SubmitSec })

	used := make([]bool, len(specs))
	for oi, i := range ordered {
		if used[i] {
			continue
		}
		a := &specs[i]
		if a.NumGPUs != 1 || len(a.Profiles) != 1 {
			plan.Merged = append(plan.Merged, *a)
			used[i] = true
			continue
		}
		bestJ := -1
		var bestScore float64
		for oj := oi + 1; oj < len(ordered); oj++ {
			j := ordered[oj]
			if used[j] {
				continue
			}
			b := &specs[j]
			if b.SubmitSec-a.SubmitSec > adjacencySec {
				break
			}
			if b.NumGPUs != 1 || len(b.Profiles) != 1 {
				continue
			}
			e := estimatePair(a.Profiles[0], b.Profiles[0], cfg.GridPoints)
			if e.meanContention > cfg.MaxMeanContention {
				continue
			}
			score := e.meanContention + 0.5*e.activeOverlap
			if bestJ == -1 || score < bestScore {
				bestJ, bestScore = j, score
			}
		}
		if bestJ == -1 {
			plan.Merged = append(plan.Merged, *a)
			used[i] = true
			continue
		}
		b := &specs[bestJ]
		used[i], used[bestJ] = true, true
		plan.PairsFormed++
		plan.Partner[a.ID], plan.Partner[b.ID] = b.ID, a.ID
		plan.BundleOf[a.ID], plan.BundleOf[b.ID] = a.ID, a.ID

		e := estimatePair(a.Profiles[0], b.Profiles[0], cfg.GridPoints)
		slow := 1 + cfg.SlowdownAlpha*e.meanContention
		// The bundle holds the GPU from the earlier submit until the later
		// (dilated) member would finish, measured from the bundle's start.
		endA := a.RunSec * slow
		endB := (b.SubmitSec - a.SubmitSec) + b.RunSec*slow
		span := math.Max(endA, endB)
		bundle := workload.JobSpec{
			ID:          a.ID,
			User:        a.User,
			Category:    a.Category,
			Interface:   a.Interface,
			Exit:        a.Exit,
			SubmitSec:   a.SubmitSec,
			RunSec:      span,
			LimitSec:    math.Max(a.LimitSec, b.LimitSec+b.SubmitSec-a.SubmitSec),
			NumGPUs:     1,
			CoresPerGPU: a.CoresPerGPU + b.CoresPerGPU,
			MemGBPerGPU: a.MemGBPerGPU + b.MemGBPerGPU,
			Profiles:    []*workload.Profile{combineProfiles(a.Profiles[0], b.Profiles[0], span)},
		}
		plan.Merged = append(plan.Merged, bundle)
	}
	sort.Slice(plan.Merged, func(x, y int) bool { return plan.Merged[x].SubmitSec < plan.Merged[y].SubmitSec })
	return plan
}

// combineProfiles builds the bundle's observed utilization: the element-wise
// sum of both members' levels sampled on a fixed grid, clamped to capacity.
func combineProfiles(a, b *workload.Profile, spanSec float64) *workload.Profile {
	const segments = 64
	if spanSec <= 0 {
		spanSec = 1
	}
	seg := spanSec / segments
	phases := make([]workload.Phase, 0, segments)
	for k := 0; k < segments; k++ {
		t := (float64(k) + 0.5) * seg
		ua := a.LevelAt(t)
		ub := b.LevelAt(t)
		lvl := ua
		lvl.SMPct += ub.SMPct
		lvl.MemPct += ub.MemPct
		lvl.MemSizePct += ub.MemSizePct
		lvl.PCIeTxPct += ub.PCIeTxPct
		lvl.PCIeRxPct += ub.PCIeRxPct
		lvl.Clamp()
		active := lvl.SMPct > 1 || lvl.MemPct > 1
		phases = append(phases, workload.Phase{DurSec: seg, Active: active, Level: lvl})
	}
	p, err := workload.NewProfile(phases, 0)
	if err != nil {
		panic(fmt.Sprintf("sharing: combined profile invalid: %v", err))
	}
	return p
}
