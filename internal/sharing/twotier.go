package sharing

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/lifecycle"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// TierPlan routes life-cycle categories to GPU tiers, the §VIII operator
// recommendation: "it might be more cost-effective to mix [fast GPUs] with
// some less-expensive, less-powerful GPUs for exploratory and IDE jobs".
type TierPlan struct {
	Fast gpu.Spec
	Slow gpu.Spec
	// SlowTierCategories lists the categories routed to the slow tier.
	SlowTierCategories []trace.Category
	// UtilizationHeadroom converts GPU-hour demand into installed GPUs:
	// installed = demand-hours / (window-hours × headroom). Production
	// systems plan well under 100 % occupancy.
	UtilizationHeadroom float64
}

// DefaultTierPlan routes exploratory, development and IDE jobs to T4-class
// devices and keeps mature jobs on V100s.
func DefaultTierPlan() TierPlan {
	return TierPlan{
		Fast:                gpu.V100(),
		Slow:                gpu.T4(),
		SlowTierCategories:  []trace.Category{trace.Exploratory, trace.Development, trace.IDE},
		UtilizationHeadroom: 0.25,
	}
}

// TierOutcome summarizes one fleet design.
type TierOutcome struct {
	FastGPUs, SlowGPUs     int
	CapexUSD               float64
	MeanSlowdown           float64 // across slow-tier jobs
	SlowTierGPUHours       float64
	FastTierGPUHours       float64
	SlowTierJobFrac        float64
	MeanSlowdownByCategory [trace.NumCategories]float64
}

// TwoTierResult compares the single-tier fleet against the two-tier plan.
type TwoTierResult struct {
	SingleTier TierOutcome
	TwoTier    TierOutcome
	// CapexSavingsFrac is the fraction of acquisition cost saved.
	CapexSavingsFrac float64
}

// slowdownOn estimates a job's run-time dilation when moved from `from` to
// `to`: compute-bound jobs dilate with the performance ratio, idle-heavy
// jobs barely notice — exactly why the recommendation targets low-utility,
// low-utilization categories.
func slowdownOn(j *trace.JobRecord, from, to gpu.Spec) float64 {
	ratio := from.PerfScore / to.PerfScore
	if ratio < 1 {
		ratio = 1
	}
	busyFrac := j.GPU[metrics.SMUtil].Mean / 100
	return 1 + (ratio-1)*busyFrac
}

// TwoTierStudy evaluates the plan over a dataset's GPU jobs.
func TwoTierStudy(ds *trace.Dataset, plan TierPlan) (TwoTierResult, error) {
	jobs := ds.Columns().GPU
	if len(jobs) == 0 {
		return TwoTierResult{}, fmt.Errorf("sharing: no GPU jobs to study")
	}
	if plan.UtilizationHeadroom <= 0 || plan.UtilizationHeadroom > 1 {
		return TwoTierResult{}, fmt.Errorf("sharing: headroom %v out of (0,1]", plan.UtilizationHeadroom)
	}
	slowSet := map[trace.Category]bool{}
	for _, c := range plan.SlowTierCategories {
		slowSet[c] = true
	}
	windowHours := ds.DurationDays * 24
	if windowHours <= 0 {
		return TwoTierResult{}, fmt.Errorf("sharing: dataset has no observation window")
	}

	gpusFor := func(demandHours float64, spec gpu.Spec) int {
		n := int(demandHours/(windowHours*plan.UtilizationHeadroom)) + 1
		return n
	}

	var res TwoTierResult

	// Single tier: everything on the fast device.
	var totalHours float64
	for _, j := range jobs {
		totalHours += j.GPUHours()
	}
	res.SingleTier.FastTierGPUHours = totalHours
	res.SingleTier.FastGPUs = gpusFor(totalHours, plan.Fast)
	res.SingleTier.CapexUSD = float64(res.SingleTier.FastGPUs) * plan.Fast.PriceUSD
	res.SingleTier.MeanSlowdown = 1
	for c := range res.SingleTier.MeanSlowdownByCategory {
		res.SingleTier.MeanSlowdownByCategory[c] = 1
	}

	// Two tiers: slow-tier jobs dilate, which also inflates their GPU-hour
	// demand on the slow devices.
	var slowHours, fastHours float64
	var slowJobs float64
	var slowSum [trace.NumCategories]float64
	var slowCnt [trace.NumCategories]float64
	for _, j := range jobs {
		c := lifecycle.Classify(j)
		if slowSet[c] {
			s := slowdownOn(j, plan.Fast, plan.Slow)
			slowHours += j.GPUHours() * s
			slowJobs++
			slowSum[c] += s
			slowCnt[c]++
		} else {
			fastHours += j.GPUHours()
			slowSum[c]++
			slowCnt[c]++
		}
	}
	res.TwoTier.FastTierGPUHours = fastHours
	res.TwoTier.SlowTierGPUHours = slowHours
	res.TwoTier.FastGPUs = gpusFor(fastHours, plan.Fast)
	res.TwoTier.SlowGPUs = gpusFor(slowHours, plan.Slow)
	res.TwoTier.CapexUSD = float64(res.TwoTier.FastGPUs)*plan.Fast.PriceUSD +
		float64(res.TwoTier.SlowGPUs)*plan.Slow.PriceUSD
	res.TwoTier.SlowTierJobFrac = slowJobs / float64(len(jobs))
	var slowTotal, slowN float64
	for c := trace.Category(0); c < trace.NumCategories; c++ {
		if slowCnt[c] > 0 {
			res.TwoTier.MeanSlowdownByCategory[c] = slowSum[c] / slowCnt[c]
		} else {
			res.TwoTier.MeanSlowdownByCategory[c] = 1
		}
		if slowSet[c] {
			slowTotal += slowSum[c]
			slowN += slowCnt[c]
		}
	}
	if slowN > 0 {
		res.TwoTier.MeanSlowdown = slowTotal / slowN
	} else {
		res.TwoTier.MeanSlowdown = 1
	}
	if res.SingleTier.CapexUSD > 0 {
		res.CapexSavingsFrac = 1 - res.TwoTier.CapexUSD/res.SingleTier.CapexUSD
	}
	return res, nil
}
