package sharing

import (
	"fmt"
	"math"

	"repro/internal/lifecycle"
	"repro/internal/trace"
)

// CheckpointConfig models the state-saving mechanism the paper's §VI
// takeaway calls for ("low-overhead checkpoint/restart mechanisms and
// support for fast persistent storage").
type CheckpointConfig struct {
	// OverheadSec is the cost of writing one checkpoint (model state to
	// fast persistent storage).
	OverheadSec float64
	// RestartSec is the cost of resuming from a checkpoint.
	RestartSec float64
	// Categories lists which job categories are checkpointed; the paper
	// targets development and IDE jobs, which terminate by failure/timeout.
	Categories []trace.Category
}

// DefaultCheckpointConfig checkpoints development and IDE jobs with a
// 30-second write cost.
func DefaultCheckpointConfig() CheckpointConfig {
	return CheckpointConfig{
		OverheadSec: 30,
		RestartSec:  60,
		Categories:  []trace.Category{trace.Development, trace.IDE},
	}
}

// CheckpointReport quantifies the GPU-hours at stake.
type CheckpointReport struct {
	// JobsCovered is the number of jobs in the checkpointed categories that
	// ended in failure or timeout (their state is otherwise lost).
	JobsCovered int
	// LostGPUHoursNoCkpt is the work destroyed without checkpointing: the
	// entire run of every covered job.
	LostGPUHoursNoCkpt float64
	// LostGPUHoursWithCkpt is the residual loss with checkpointing: at most
	// one interval plus overheads per covered job.
	LostGPUHoursWithCkpt float64
	// OverheadGPUHours is the checkpoint-writing cost added to covered jobs.
	OverheadGPUHours float64
	// SavedGPUHours is the net benefit.
	SavedGPUHours float64
	// IntervalSec is the per-report checkpoint interval used.
	IntervalSec float64
}

// OptimalInterval returns the Young–Daly checkpoint interval for a process
// whose state is lost on average every mtbfSec: sqrt(2·overhead·MTBF).
func OptimalInterval(overheadSec, mtbfSec float64) float64 {
	if overheadSec <= 0 || mtbfSec <= 0 {
		return math.NaN()
	}
	return math.Sqrt(2 * overheadSec * mtbfSec)
}

// CheckpointStudy evaluates cfg over the dataset, choosing the Young–Daly
// interval from the covered jobs' mean run length (their "time to state
// loss", since they end in failure or timeout).
func CheckpointStudy(ds *trace.Dataset, cfg CheckpointConfig) (CheckpointReport, error) {
	if cfg.OverheadSec <= 0 {
		return CheckpointReport{}, fmt.Errorf("sharing: non-positive checkpoint overhead")
	}
	covered := map[trace.Category]bool{}
	for _, c := range cfg.Categories {
		covered[c] = true
	}
	var rep CheckpointReport
	var sumRun float64
	var jobs []*trace.JobRecord
	for _, j := range ds.Columns().GPU {
		if !covered[lifecycle.Classify(j)] {
			continue
		}
		if j.Exit != trace.ExitFailed && j.Exit != trace.ExitTimeout {
			continue
		}
		jobs = append(jobs, j)
		sumRun += j.RunSec
	}
	rep.JobsCovered = len(jobs)
	if len(jobs) == 0 {
		return rep, nil
	}
	mtbf := sumRun / float64(len(jobs))
	rep.IntervalSec = OptimalInterval(cfg.OverheadSec, mtbf)
	for _, j := range jobs {
		gpus := float64(j.NumGPUs)
		rep.LostGPUHoursNoCkpt += gpus * j.RunSec / 3600
		// With checkpointing the loss is the tail past the last checkpoint
		// (half an interval in expectation) plus the restart cost.
		residual := math.Min(j.RunSec, rep.IntervalSec/2+cfg.RestartSec)
		rep.LostGPUHoursWithCkpt += gpus * residual / 3600
		nCkpts := math.Floor(j.RunSec / rep.IntervalSec)
		rep.OverheadGPUHours += gpus * nCkpts * cfg.OverheadSec / 3600
	}
	rep.SavedGPUHours = rep.LostGPUHoursNoCkpt - rep.LostGPUHoursWithCkpt - rep.OverheadGPUHours
	return rep, nil
}
