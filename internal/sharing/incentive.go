package sharing

import (
	"fmt"
	"sort"

	"repro/internal/workload"
)

// The paper's §VIII operator recommendation: "the system operator can
// leverage the low resource utilization based on the job category to
// incentivize users for co-location, using coupon-based incentives or other
// mechanisms [GIFT]". IncentiveStudy implements that mechanism: users who
// opt their jobs into GPU sharing absorb measured interference and are
// compensated with coupons proportional to the slowdown they suffered;
// coupons convert into priority credit (modeled as future queue-wait
// reduction) funded by the GPU hours the operator saved.

// IncentiveConfig tunes the coupon mechanism.
type IncentiveConfig struct {
	// Colocation carries the pairing rules.
	Colocation ColocationConfig
	// CouponPerSlowdownHour is the coupon grant per (slowdown-1)×hour of
	// dilated run time a participant absorbs.
	CouponPerSlowdownHour float64
	// CreditPerSavedGPUHour is the operator's budget: coupons are honored
	// from the saved GPU hours, at this exchange rate.
	CreditPerSavedGPUHour float64
}

// DefaultIncentiveConfig returns a balanced mechanism.
func DefaultIncentiveConfig() IncentiveConfig {
	return IncentiveConfig{
		Colocation:            DefaultColocationConfig(),
		CouponPerSlowdownHour: 1,
		CreditPerSavedGPUHour: 1,
	}
}

// UserIncentive is one user's ledger entry.
type UserIncentive struct {
	User          int
	JobsShared    int
	SlowdownHours float64 // Σ (slowdown−1) × run hours absorbed
	CouponsEarned float64
}

// IncentiveResult is the mechanism's outcome.
type IncentiveResult struct {
	// Ledger is sorted by coupons earned, descending.
	Ledger []UserIncentive
	// SavedGPUHours funds the coupon pool.
	SavedGPUHours float64
	// CouponPool is the operator's budget at the exchange rate.
	CouponPool float64
	// TotalCoupons is the sum granted; Solvent reports whether the saved
	// hours cover the grants (the mechanism is self-funding when true).
	TotalCoupons float64
	Solvent      bool
	Participants int
}

// IncentiveStudy runs phase-aware pairing over the population, attributes
// each pair's interference to both members' owners, and settles the coupon
// ledger against the saved GPU hours.
func IncentiveStudy(specs []workload.JobSpec, cfg IncentiveConfig) (IncentiveResult, error) {
	if cfg.CouponPerSlowdownHour <= 0 || cfg.CreditPerSavedGPUHour <= 0 {
		return IncentiveResult{}, fmt.Errorf("sharing: non-positive incentive rates")
	}
	var res IncentiveResult
	type cand struct {
		idx  int
		prof *workload.Profile
	}
	var cands []cand
	for i := range specs {
		s := &specs[i]
		if s.NumGPUs == 1 && len(s.Profiles) == 1 {
			cands = append(cands, cand{idx: i, prof: s.Profiles[0]})
		}
	}
	ledger := map[int]*UserIncentive{}
	paired := make([]bool, len(cands))
	ccfg := cfg.Colocation
	for i := range cands {
		if paired[i] {
			continue
		}
		bestJ := -1
		var bestScore float64
		limit := i + ccfg.WindowSize
		if limit > len(cands) {
			limit = len(cands)
		}
		for j := i + 1; j < limit; j++ {
			if paired[j] {
				continue
			}
			e := estimatePair(cands[i].prof, cands[j].prof, ccfg.GridPoints)
			if e.meanContention > ccfg.MaxMeanContention {
				continue
			}
			score := e.meanContention + 0.5*e.activeOverlap
			if bestJ == -1 || score < bestScore {
				bestJ, bestScore = j, score
			}
		}
		if bestJ == -1 {
			continue
		}
		paired[i], paired[bestJ] = true, true
		a, b := &specs[cands[i].idx], &specs[cands[bestJ].idx]
		e := estimatePair(cands[i].prof, cands[bestJ].prof, ccfg.GridPoints)
		slow := 1 + ccfg.SlowdownAlpha*e.meanContention

		// Saved hours: two exclusive GPUs for their runs collapse onto one
		// GPU for the dilated span.
		spanH := maxFloat(a.RunSec, b.RunSec) * slow / 3600
		res.SavedGPUHours += a.RunSec/3600 + b.RunSec/3600 - spanH

		for _, sp := range []*workload.JobSpec{a, b} {
			ent := ledger[sp.User]
			if ent == nil {
				ent = &UserIncentive{User: sp.User}
				ledger[sp.User] = ent
			}
			ent.JobsShared++
			absorbed := (slow - 1) * sp.RunSec / 3600
			ent.SlowdownHours += absorbed
			ent.CouponsEarned += absorbed * cfg.CouponPerSlowdownHour
			res.TotalCoupons += absorbed * cfg.CouponPerSlowdownHour
		}
	}
	for _, ent := range ledger {
		res.Ledger = append(res.Ledger, *ent)
		res.Participants++
	}
	sort.Slice(res.Ledger, func(a, b int) bool {
		if res.Ledger[a].CouponsEarned != res.Ledger[b].CouponsEarned {
			return res.Ledger[a].CouponsEarned > res.Ledger[b].CouponsEarned
		}
		return res.Ledger[a].User < res.Ledger[b].User
	})
	res.CouponPool = res.SavedGPUHours * cfg.CreditPerSavedGPUHour
	res.Solvent = res.CouponPool >= res.TotalCoupons
	return res, nil
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
