package core

import (
	"repro/internal/stats"
	"repro/internal/trace"
)

// HostCPUResult supports the paper's §III scheduling rationale: "our system
// administrators have determined that GPU jobs do not tend to have high CPU
// resource requirements", the premise that makes CPU-slice co-location safe.
type HostCPUResult struct {
	// GPUJobs and CPUJobs are distributions of mean host-CPU utilization
	// (percent of the job's requested cores).
	GPUJobs CDFStat
	CPUJobs CDFStat
	// GPUJobsUnder50Frac is the share of GPU jobs using less than half of
	// their (already small) host-core slice.
	GPUJobsUnder50Frac float64
}

// HostCPU computes the host-CPU utilization comparison.
func HostCPU(ds *trace.Dataset) HostCPUResult {
	var gpuVals, cpuVals []float64
	for i := range ds.Jobs {
		j := &ds.Jobs[i]
		if j.IsGPU() {
			if j.RunSec >= trace.MinGPUJobRunSec {
				gpuVals = append(gpuVals, j.HostCPU.Mean)
			}
		} else {
			cpuVals = append(cpuVals, j.HostCPU.Mean)
		}
	}
	return HostCPUResult{
		GPUJobs:            NewCDFStat(gpuVals, curvePoints),
		CPUJobs:            NewCDFStat(cpuVals, curvePoints),
		GPUJobsUnder50Frac: stats.FractionBelow(gpuVals, 50),
	}
}
