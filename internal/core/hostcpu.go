package core

import (
	"repro/internal/stats"
	"repro/internal/trace"
)

// HostCPUResult supports the paper's §III scheduling rationale: "our system
// administrators have determined that GPU jobs do not tend to have high CPU
// resource requirements", the premise that makes CPU-slice co-location safe.
type HostCPUResult struct {
	// GPUJobs and CPUJobs are distributions of mean host-CPU utilization
	// (percent of the job's requested cores).
	GPUJobs CDFStat
	CPUJobs CDFStat
	// GPUJobsUnder50Frac is the share of GPU jobs using less than half of
	// their (already small) host-core slice.
	GPUJobsUnder50Frac float64
}

// HostCPU computes the host-CPU utilization comparison.
func HostCPU(ds *trace.Dataset) HostCPUResult { return HostCPUCols(ds.Columns()) }

// HostCPUCols computes the comparison from the host-CPU columns; the GPU
// column's cached sort serves both the CDF and the under-50 % fraction.
func HostCPUCols(c *trace.Columns) HostCPUResult {
	return HostCPUResult{
		GPUJobs:            colCDF(c.HostCPU),
		CPUJobs:            colCDF(c.CPUHostCPU),
		GPUJobsUnder50Frac: stats.FractionBelowSorted(c.HostCPU.Sorted(), 50),
	}
}
