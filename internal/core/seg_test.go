package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// segStoreFrom streams ds into a fresh store under the given config.
func segStoreFrom(ds *trace.Dataset, cfg trace.SegConfig) *trace.SegStore {
	cfg.DurationDays = ds.DurationDays
	st := trace.NewSegStore(cfg)
	st.AppendDataset(ds)
	return st
}

// TestCharacterizeSegMatchesBatch pins the ISSUE 8 acceptance bar at the
// figure level: the segmented suite is value-identical to the batch suite
// for every (segment size × worker count) combination, including compacted
// stores.
func TestCharacterizeSegMatchesBatch(t *testing.T) {
	ds := equivDataset(t)
	want := Characterize(ds)
	for _, cfg := range []trace.SegConfig{
		{SegmentJobs: 1 << 20}, // tail only, never seals
		{SegmentJobs: 37},
		{SegmentJobs: 512},
		{SegmentJobs: 64, MaxSegments: 3}, // heavy compaction
	} {
		st := segStoreFrom(ds, cfg)
		for _, workers := range []int{1, 2, 7} {
			label := fmt.Sprintf("seg=%d/max=%d/workers=%d", cfg.SegmentJobs, cfg.MaxSegments, workers)
			diffReports(t, label, want, CharacterizeSeg(st.Snapshot(), workers))
		}
	}
}

// TestCharacterizeSegRandomSchedules extends the executable-spec pattern to
// randomized append/seal/compact interleavings: at arbitrary prefixes the
// streaming suite must match Characterize over the same prefix.
func TestCharacterizeSegRandomSchedules(t *testing.T) {
	full := equivDataset(t)
	for trial := 0; trial < 3; trial++ {
		rng := rand.New(rand.NewSource(int64(7 + trial)))
		st := trace.NewSegStore(trace.SegConfig{
			DurationDays: full.DurationDays,
			SegmentJobs:  1 + rng.Intn(300),
		})
		i := 0
		for i < len(full.Jobs) {
			batch := 1 + rng.Intn(len(full.Jobs)/3)
			if i+batch > len(full.Jobs) {
				batch = len(full.Jobs) - i
			}
			st.AppendBatch(full.Jobs[i : i+batch])
			i += batch
			switch rng.Intn(3) {
			case 0:
				st.SealTail()
			case 1:
				st.Compact()
			}
			prefix := &trace.Dataset{Jobs: full.Jobs[:i], DurationDays: full.DurationDays}
			label := fmt.Sprintf("trial=%d/jobs=%d", trial, i)
			diffReports(t, label, Characterize(prefix), CharacterizeSeg(st.Snapshot(), 1+rng.Intn(4)))
		}
	}
}

// TestSegFigureWrappers checks the per-figure streaming wrappers and the
// generic StreamQuery path against their batch counterparts.
func TestSegFigureWrappers(t *testing.T) {
	ds := equivDataset(t)
	c := ds.Columns()
	st := segStoreFrom(ds, trace.SegConfig{SegmentJobs: 101})
	v := st.Snapshot()
	check := func(name string, want, got any) {
		t.Helper()
		ws, gs := fmt.Sprintf("%v", want), fmt.Sprintf("%v", got)
		if ws != gs {
			t.Errorf("%s differs\n want %.400s\n  got %.400s", name, ws, gs)
		}
	}
	check("Runtimes", RuntimesCols(c), RuntimesSeg(v, 3))
	check("Waits", WaitsCols(c), WaitsSeg(v, 3))
	check("Utilization", UtilizationCols(c), UtilizationSeg(v, 3))
	check("StreamQuery/Power", PowerCols(c), StreamQuery(st, 2, PowerCols))
	check("StreamQuery/Lifecycle", LifecycleCols(c), StreamQuery(st, 2, LifecycleCols))
}
