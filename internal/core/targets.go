package core

import (
	"math"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// PaperTarget is one published statistic with its extractor, so the
// reproduction gap can be computed mechanically from any report.
type PaperTarget struct {
	Figure   string
	Quantity string
	Paper    float64
	// Band is the shape-match tolerance as [lo, hi] absolute bounds; a
	// measured value inside the band counts as reproducing the finding.
	BandLo, BandHi float64
	// Extract pulls the measured value out of a report.
	Extract func(*Report) float64
}

// Comparison is one evaluated target.
type Comparison struct {
	PaperTarget
	Measured float64
	InBand   bool
}

// PaperTargets returns the published-statistics table, the machine-readable
// core of EXPERIMENTS.md. Bands are deliberately wide where the paper's own
// numbers are internally constrained (see EXPERIMENTS.md "known deviations").
func PaperTargets() []PaperTarget {
	return []PaperTarget{
		{"Fig3a", "GPU run median (min)", 30, 18, 45,
			func(r *Report) float64 { return r.Runtimes.GPU.P50 }},
		{"Fig3a", "GPU run p25 (min)", 4, 2, 10,
			func(r *Report) float64 { return r.Runtimes.GPU.P25 }},
		{"Fig3a", "GPU run p75 (min)", 300, 110, 450,
			func(r *Report) float64 { return r.Runtimes.GPU.P75 }},
		{"Fig3a", "CPU run median (min)", 8, 5, 13,
			func(r *Report) float64 { return r.Runtimes.CPU.P50 }},
		{"Fig3b", "GPU jobs waiting <1min (%)", 70, 60, 80,
			func(r *Report) float64 { return r.Waits.GPUWaitUnder1MinFrac * 100 }},
		{"Fig3b", "GPU jobs wait <2% of service (%)", 50, 45, 75,
			func(r *Report) float64 { return r.Waits.GPUWaitPctUnder2Frac * 100 }},
		{"Fig4a", "SM util median (%)", 16, 9, 22,
			func(r *Report) float64 { return r.Utilization.SM.P50 }},
		{"Fig4a", "mem util median (%)", 2, 0.5, 5,
			func(r *Report) float64 { return r.Utilization.Mem.P50 }},
		{"Fig4a", "mem size median (%)", 9, 5, 14,
			func(r *Report) float64 { return r.Utilization.MemSize.P50 }},
		{"Fig4a", "jobs >50% SM (%)", 20, 12, 28,
			func(r *Report) float64 { return r.Utilization.SMOver50 * 100 }},
		{"Fig4a", "jobs >50% mem (%)", 4, 0, 8,
			func(r *Report) float64 { return r.Utilization.MemOver50 * 100 }},
		{"Fig6a", "active time median (%)", 84, 65, 95,
			func(r *Report) float64 { return r.Phases.ActiveTimePct.P50 }},
		{"Fig6a", "active time p25 (%)", 14, 5, 35,
			func(r *Report) float64 { return r.Phases.ActiveTimePct.P25 }},
		{"Fig6b", "idle interval CoV median (%)", 126, 70, 190,
			func(r *Report) float64 { return r.Phases.IdleCoV.P50 }},
		{"Fig6b", "active interval CoV median (%)", 169, 90, 240,
			func(r *Report) float64 { return r.Phases.ActiveCoVLen.P50 }},
		{"Fig7a", "SM CoV median, active (%)", 14, 5, 40,
			func(r *Report) float64 { return r.ActiveCoV.SMCoV.P50 }},
		{"Fig7a", "mem CoV median, active (%)", 14.6, 5, 45,
			func(r *Report) float64 { return r.ActiveCoV.MemCoV.P50 }},
		{"Fig7a", "memsize CoV median, active (%)", 8.2, 2, 30,
			func(r *Report) float64 { return r.ActiveCoV.MemSizeCoV.P50 }},
		{"Fig7b", "SM bottleneck (%)", 22, 15, 30,
			func(r *Report) float64 { return r.Bottlenecks.SingleFrac[metrics.SMUtil] * 100 }},
		{"Fig7b", "mem bottleneck (%)", 0, 0, 2,
			func(r *Report) float64 { return r.Bottlenecks.SingleFrac[metrics.MemUtil] * 100 }},
		{"Fig8b", "SM+Rx bottleneck (%)", 9, 4, 15,
			func(r *Report) float64 {
				return r.Bottlenecks.PairFrac[[2]metrics.Metric{metrics.SMUtil, metrics.PCIeRx}] * 100
			}},
		{"Fig9a", "avg power median (W)", 45, 32, 62,
			func(r *Report) float64 { return r.Power.Avg.P50 }},
		{"Fig9a", "max power median (W)", 87, 60, 125,
			func(r *Report) float64 { return r.Power.Max.P50 }},
		{"Fig10", "user avg run median (min)", 392, 150, 700,
			func(r *Report) float64 { return r.UserAverages.AvgRunMin.P50 }},
		{"Fig10", "user avg SM median (%)", 10.75, 5, 19,
			func(r *Report) float64 { return r.UserAverages.AvgSM.P50 }},
		{"Fig11", "user run CoV median (%)", 155, 100, 230,
			func(r *Report) float64 { return r.UserCoV.RunCoV.P50 }},
		{"Fig11", "user SM CoV median (%)", 121, 70, 180,
			func(r *Report) float64 { return r.UserCoV.SMCoV.P50 }},
		{"Fig13", "single-GPU jobs (%)", 84, 78, 90,
			func(r *Report) float64 { return r.GPUCounts.SingleGPUFrac * 100 }},
		{"Fig13", "multi-GPU hour share (%)", 50, 35, 65,
			func(r *Report) float64 { return r.GPUCounts.MultiGPUHourShare * 100 }},
		{"SecV", "users with multi-GPU jobs (%)", 60, 45, 75,
			func(r *Report) float64 { return r.Concentration.UsersWithMultiFrac * 100 }},
		{"SecV", "users with >=9 GPU jobs (%)", 5.2, 2, 10,
			func(r *Report) float64 { return r.Concentration.UsersWith9Frac * 100 }},
		{"Fig14", "multi-GPU jobs half+ idle (%)", 40, 30, 55,
			func(r *Report) float64 { return r.MultiGPU.HalfIdleJobFrac * 100 }},
		{"Fig15a", "mature job share (%)", 60, 50, 70,
			func(r *Report) float64 { return r.Lifecycle.JobShare[trace.Mature] * 100 }},
		{"Fig15a", "exploratory job share (%)", 18, 12, 25,
			func(r *Report) float64 { return r.Lifecycle.JobShare[trace.Exploratory] * 100 }},
		{"Fig15a", "IDE job share (%)", 3.5, 2, 6,
			func(r *Report) float64 { return r.Lifecycle.JobShare[trace.IDE] * 100 }},
		{"Fig15b", "exploratory hour share (%)", 34, 20, 45,
			func(r *Report) float64 { return r.Lifecycle.HourShare[trace.Exploratory] * 100 }},
		{"Fig15b", "IDE hour share (%)", 18.2, 10, 28,
			func(r *Report) float64 { return r.Lifecycle.HourShare[trace.IDE] * 100 }},
		{"Fig16", "mature SM median (%)", 21, 10, 30,
			func(r *Report) float64 { return r.Lifecycle.Boxes[trace.Mature][0].Median }},
		{"Fig16", "IDE SM median (%)", 0, 0, 2,
			func(r *Report) float64 { return r.Lifecycle.Boxes[trace.IDE][0].Median }},
		{"Fig17a", "users <40% mature jobs (%)", 50, 30, 70,
			func(r *Report) float64 { return r.UserMix.UsersUnder40PctMatureJobs * 100 }},
		{"SecIV", "top-5% user job share (%)", 44, 30, 60,
			func(r *Report) float64 { return r.Concentration.Top5PctShare * 100 }},
		{"SecIV", "top-20% user job share (%)", 83.2, 70, 92,
			func(r *Report) float64 { return r.Concentration.Top20PctShare * 100 }},
	}
}

// ComparePaper evaluates every target against a report.
func ComparePaper(r *Report) []Comparison {
	targets := PaperTargets()
	out := make([]Comparison, len(targets))
	for i, t := range targets {
		v := t.Extract(r)
		out[i] = Comparison{
			PaperTarget: t,
			Measured:    v,
			InBand:      !math.IsNaN(v) && v >= t.BandLo && v <= t.BandHi,
		}
	}
	return out
}
