package core

import (
	"runtime"

	"repro/internal/trace"
)

// Segmented (streaming) figure entry points. A trace.SegView snapshot
// stitches per-segment columns into a Columns whose dataset-order vectors
// are the exact sequences BuildColumns would produce, so every *Cols figure
// already folds bit-identical results over it. What the *Seg variants add
// is WHERE the heavy lifting happens: the snapshot's per-segment sorted
// runs are the partial results, and segPrepare fans their materialization
// across the bounded worker pool before the figure folds them — merged in
// segment-index order inside the column, so the answer is bit-identical at
// any worker count (the per-segment sorts are independent; only the fold
// order is pinned). Re-running a *Seg figure after more appends costs one
// tail sort plus the merge: the sealed partials are cached in the segments
// and never recomputed.

// segPrepare materializes the view's per-segment sorted runs across
// workers goroutines (0 means GOMAXPROCS). Idempotent: runs already
// materialized by an earlier query are reused, so the steady-state cost of
// a fresh snapshot is the tail only. With a single effective worker it does
// nothing: eager materialization only buys parallelism, and the lazy path
// sorts exactly the columns the figure touches — strictly less serial work.
func segPrepare(v *trace.SegView, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 {
		return
	}
	if tasks := v.SortTasks(); len(tasks) > 0 {
		runTasks(workers, tasks)
	}
}

// CharacterizeSeg runs the complete suite over a segmented-store snapshot:
// per-segment sort partials fan across the pool first, then the figure
// tasks themselves. The Report is bit-identical to Characterize over a
// Dataset holding the same job sequence, for any segment size, compaction
// history, or worker count.
func CharacterizeSeg(v *trace.SegView, workers int) *Report {
	segPrepare(v, workers)
	return CharacterizeCols(v.Cols, workers)
}

// RuntimesSeg is the streaming form of RuntimesCols.
func RuntimesSeg(v *trace.SegView, workers int) RuntimeResult {
	segPrepare(v, workers)
	return RuntimesCols(v.Cols)
}

// WaitsSeg is the streaming form of WaitsCols.
func WaitsSeg(v *trace.SegView, workers int) WaitResult {
	segPrepare(v, workers)
	return WaitsCols(v.Cols)
}

// UtilizationSeg is the streaming form of UtilizationCols.
func UtilizationSeg(v *trace.SegView, workers int) UtilizationResult {
	segPrepare(v, workers)
	return UtilizationCols(v.Cols)
}

// StreamQuery answers one live figure query against a store: snapshot (O(1)
// when nothing changed since the last query), fan the uncached segment
// partials, fold. This is simcloudd's query path and the benchmarked
// incremental hot path — between appends it degenerates to a memoized
// snapshot plus already-cached sorted runs.
func StreamQuery[T any](st *trace.SegStore, workers int, fig func(*trace.Columns) T) T {
	v := st.Snapshot()
	segPrepare(v, workers)
	return fig(v.Cols)
}
