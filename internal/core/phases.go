package core

import (
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/trace"
)

// activeSampleThresholdPct is the utilization above which a sample counts as
// GPU activity; idle GPUs read 0 in nvidia-smi, so any compute or bandwidth
// reading above noise means the GPU is in use.
const activeSampleThresholdPct = 1.0

// Interval is one contiguous active or idle stretch detected in a job's
// time series.
type Interval struct {
	Active   bool
	StartSec float64
	DurSec   float64
}

// SegmentSeries turns a job's time series into alternating intervals: a
// sample is active when any GPU shows SM or memory-bandwidth activity. This
// is the segmentation behind Fig. 6.
func SegmentSeries(ts *trace.TimeSeries) []Interval {
	if ts == nil || len(ts.PerGPU) == 0 || len(ts.PerGPU[0]) == 0 {
		return nil
	}
	n := len(ts.PerGPU[0])
	var out []Interval
	for k := 0; k < n; k++ {
		active := false
		for _, stream := range ts.PerGPU {
			if k >= len(stream) {
				continue
			}
			v := stream[k].Values
			if v[metrics.SMUtil] > activeSampleThresholdPct || v[metrics.MemUtil] > activeSampleThresholdPct {
				active = true
				break
			}
		}
		t := float64(k) * ts.IntervalSec
		if len(out) > 0 && out[len(out)-1].Active == active {
			out[len(out)-1].DurSec += ts.IntervalSec
			continue
		}
		out = append(out, Interval{Active: active, StartSec: t, DurSec: ts.IntervalSec})
	}
	return out
}

// PhaseResult is Fig. 6: the distribution of active-time fractions (6a) and
// of the CoV of interval lengths (6b) over the detailed-monitoring subset.
type PhaseResult struct {
	ActiveTimePct CDFStat // Fig. 6a, percent of run time spent active
	IdleCoV       CDFStat // Fig. 6b, CoV of idle-interval lengths, percent
	ActiveCoVLen  CDFStat // Fig. 6b, CoV of active-interval lengths, percent
	JobsAnalyzed  int
}

// Phases computes Fig. 6 over the dataset's time-series subset.
func Phases(ds *trace.Dataset) PhaseResult {
	var activePct, idleCoVs, actCoVs []float64
	for _, ts := range ds.Series {
		iv := SegmentSeries(ts)
		if len(iv) == 0 {
			continue
		}
		var activeDur, totalDur float64
		var idleLens, actLens []float64
		for _, seg := range iv {
			totalDur += seg.DurSec
			if seg.Active {
				activeDur += seg.DurSec
				actLens = append(actLens, seg.DurSec)
			} else {
				idleLens = append(idleLens, seg.DurSec)
			}
		}
		activePct = append(activePct, activeDur/totalDur*100)
		if len(idleLens) >= 2 {
			if c := stats.CoV(idleLens); !isNaN(c) {
				idleCoVs = append(idleCoVs, c)
			}
		}
		if len(actLens) >= 2 {
			if c := stats.CoV(actLens); !isNaN(c) {
				actCoVs = append(actCoVs, c)
			}
		}
	}
	return PhaseResult{
		ActiveTimePct: NewCDFStat(activePct, curvePoints),
		IdleCoV:       NewCDFStat(idleCoVs, curvePoints),
		ActiveCoVLen:  NewCDFStat(actCoVs, curvePoints),
		JobsAnalyzed:  len(activePct),
	}
}

// ActiveVariabilityResult is Fig. 7a: the CoV of each utilization metric
// across a job's active samples.
type ActiveVariabilityResult struct {
	SMCoV, MemCoV, MemSizeCoV CDFStat
	// Over23Frac is the paper's "over 25 % of all jobs have SM utilization
	// CoV of 23 % or higher during their active phases".
	Over23Frac float64
}

// ActiveVariability computes Fig. 7a over the time-series subset.
func ActiveVariability(ds *trace.Dataset) ActiveVariabilityResult {
	var smC, memC, mszC []float64
	for _, ts := range ds.Series {
		var sm, mem, msz []float64
		for _, stream := range ts.PerGPU {
			for _, s := range stream {
				if s.Values[metrics.SMUtil] > activeSampleThresholdPct ||
					s.Values[metrics.MemUtil] > activeSampleThresholdPct {
					sm = append(sm, s.Values[metrics.SMUtil])
					mem = append(mem, s.Values[metrics.MemUtil])
					msz = append(msz, s.Values[metrics.MemSize])
				}
			}
		}
		if len(sm) < 2 {
			continue
		}
		if c := stats.CoV(sm); !isNaN(c) {
			smC = append(smC, c)
		}
		if c := stats.CoV(mem); !isNaN(c) {
			memC = append(memC, c)
		}
		if c := stats.CoV(msz); !isNaN(c) {
			mszC = append(mszC, c)
		}
	}
	return ActiveVariabilityResult{
		SMCoV:      NewCDFStat(smC, curvePoints),
		MemCoV:     NewCDFStat(memC, curvePoints),
		MemSizeCoV: NewCDFStat(mszC, curvePoints),
		Over23Frac: stats.FractionAbove(smC, 23),
	}
}

// bottleneckThresholdPct: a job is bottlenecked on a metric when its
// recorded maximum reaches the capacity (the paper's definition); 99 %
// tolerates sampling discretization.
const bottleneckThresholdPct = 99

// BottleneckResult is Figs. 7b/8: per-resource and pairwise bottleneck
// fractions over the full GPU-job population (max utilization is recorded
// for every job, not only the detailed subset).
type BottleneckResult struct {
	// SingleFrac[m] is the fraction of jobs whose metric m hit capacity
	// (Fig. 7b radar / Fig. 8a bars).
	SingleFrac map[metrics.Metric]float64
	// PairFrac[{a,b}] is the fraction bottlenecked on both a and b during
	// the same run (Fig. 8b).
	PairFrac map[[2]metrics.Metric]float64
	// AnyTwoFrac is the fraction of jobs with two or more simultaneous
	// bottlenecks (paper: < 10 %).
	AnyTwoFrac float64
	Jobs       int
}

// Bottlenecks computes Figs. 7b/8.
func Bottlenecks(ds *trace.Dataset) BottleneckResult {
	jobs := ds.GPUJobs()
	r := BottleneckResult{
		SingleFrac: map[metrics.Metric]float64{},
		PairFrac:   map[[2]metrics.Metric]float64{},
		Jobs:       len(jobs),
	}
	if len(jobs) == 0 {
		return r
	}
	hit := func(j *trace.JobRecord, m metrics.Metric) bool {
		if len(j.PerGPU) > 0 {
			for _, g := range j.PerGPU {
				if g[m].Max >= bottleneckThresholdPct {
					return true
				}
			}
			return false
		}
		return j.GPU[m].Max >= bottleneckThresholdPct
	}
	var anyTwo float64
	for _, j := range jobs {
		count := 0
		var hits []metrics.Metric
		for _, m := range metrics.BottleneckMetrics {
			if hit(j, m) {
				r.SingleFrac[m]++
				hits = append(hits, m)
				count++
			}
		}
		for a := 0; a < len(hits); a++ {
			for b := a + 1; b < len(hits); b++ {
				key := [2]metrics.Metric{hits[a], hits[b]}
				if key[0] > key[1] {
					key[0], key[1] = key[1], key[0]
				}
				r.PairFrac[key]++
			}
		}
		if count >= 2 {
			anyTwo++
		}
	}
	n := float64(len(jobs))
	for m := range r.SingleFrac {
		r.SingleFrac[m] /= n
	}
	for k := range r.PairFrac {
		r.PairFrac[k] /= n
	}
	r.AnyTwoFrac = anyTwo / n
	return r
}
