package core

import (
	"math"
	"sort"

	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/trace"
)

// activeSampleThresholdPct is the utilization above which a sample counts as
// GPU activity; idle GPUs read 0 in nvidia-smi, so any compute or bandwidth
// reading above noise means the GPU is in use.
const activeSampleThresholdPct = 1.0

// Interval is one contiguous active or idle stretch detected in a job's
// time series.
type Interval struct {
	Active   bool
	StartSec float64
	DurSec   float64
}

// SegmentSeries turns a job's time series into alternating intervals: a
// sample is active when any GPU shows SM or memory-bandwidth activity. This
// is the segmentation behind Fig. 6.
func SegmentSeries(ts *trace.TimeSeries) []Interval {
	if ts == nil || len(ts.PerGPU) == 0 || len(ts.PerGPU[0]) == 0 {
		return nil
	}
	n := len(ts.PerGPU[0])
	var out []Interval
	for k := 0; k < n; k++ {
		active := sampleActive(ts, k)
		t := float64(k) * ts.IntervalSec
		if len(out) > 0 && out[len(out)-1].Active == active {
			out[len(out)-1].DurSec += ts.IntervalSec
			continue
		}
		out = append(out, Interval{Active: active, StartSec: t, DurSec: ts.IntervalSec})
	}
	return out
}

// sampleActive reports whether sample k of any GPU stream shows activity.
func sampleActive(ts *trace.TimeSeries, k int) bool {
	for _, stream := range ts.PerGPU {
		if k >= len(stream) {
			continue
		}
		v := stream[k].Values
		if v[metrics.SMUtil] > activeSampleThresholdPct || v[metrics.MemUtil] > activeSampleThresholdPct {
			return true
		}
	}
	return false
}

// welford is a streaming mean/variance accumulator replicating
// stats.MeanVariance update for update, so a fused scan produces the same
// bits as collecting values into a slice and calling stats.CoV.
type welford struct {
	n  int
	m  float64
	m2 float64
}

func (w *welford) add(x float64) {
	delta := x - w.m
	w.n++
	w.m += delta / float64(w.n)
	w.m2 += delta * (x - w.m)
}

// covPct finishes the accumulator exactly as stats.CoV does for n >= 2:
// population variance, NaN on zero mean, stddev/|mean|×100 otherwise.
func (w *welford) covPct() float64 {
	v := w.m2 / float64(w.n)
	if w.m == 0 {
		return math.NaN()
	}
	return math.Sqrt(v) / math.Abs(w.m) * 100
}

// PhaseResult is Fig. 6: the distribution of active-time fractions (6a) and
// of the CoV of interval lengths (6b) over the detailed-monitoring subset.
type PhaseResult struct {
	ActiveTimePct CDFStat // Fig. 6a, percent of run time spent active
	IdleCoV       CDFStat // Fig. 6b, CoV of idle-interval lengths, percent
	ActiveCoVLen  CDFStat // Fig. 6b, CoV of active-interval lengths, percent
	JobsAnalyzed  int
}

// phaseAgg accumulates Fig. 6 across series without materializing intervals:
// segmentation state is carried inline and each closed segment feeds the
// duration totals and the per-kind length accumulators in segment order,
// reproducing the SegmentSeries walk bit for bit.
type phaseAgg struct {
	activePct []float64
	idleCoVs  []float64
	actCoVs   []float64
}

func (a *phaseAgg) addSeries(ts *trace.TimeSeries) {
	if ts == nil || len(ts.PerGPU) == 0 || len(ts.PerGPU[0]) == 0 {
		return
	}
	n := len(ts.PerGPU[0])
	var totalDur, activeDur float64
	var idleW, actW welford
	curActive := false
	curDur := 0.0
	flush := func() {
		totalDur += curDur
		if curActive {
			activeDur += curDur
			actW.add(curDur)
		} else {
			idleW.add(curDur)
		}
	}
	for k := 0; k < n; k++ {
		active := sampleActive(ts, k)
		if k > 0 && curActive == active {
			curDur += ts.IntervalSec
			continue
		}
		if k > 0 {
			flush()
		}
		curActive = active
		curDur = ts.IntervalSec
	}
	flush()
	a.activePct = append(a.activePct, activeDur/totalDur*100)
	if idleW.n >= 2 {
		if c := idleW.covPct(); !isNaN(c) {
			a.idleCoVs = append(a.idleCoVs, c)
		}
	}
	if actW.n >= 2 {
		if c := actW.covPct(); !isNaN(c) {
			a.actCoVs = append(a.actCoVs, c)
		}
	}
}

func (a *phaseAgg) result() PhaseResult {
	return PhaseResult{
		ActiveTimePct: ownedCDF(a.activePct),
		IdleCoV:       ownedCDF(a.idleCoVs),
		ActiveCoVLen:  ownedCDF(a.actCoVs),
		JobsAnalyzed:  len(a.activePct),
	}
}

// Phases computes Fig. 6 over the dataset's time-series subset.
func Phases(ds *trace.Dataset) PhaseResult { return PhasesCols(ds.Columns()) }

// PhasesCols computes Fig. 6 by streaming each series through the fused
// segmentation accumulator, in sorted-series order.
func PhasesCols(c *trace.Columns) PhaseResult {
	var a phaseAgg
	for _, id := range c.SeriesIDs {
		a.addSeries(c.Series(id))
	}
	return a.result()
}

// ActiveVariabilityResult is Fig. 7a: the CoV of each utilization metric
// across a job's active samples.
type ActiveVariabilityResult struct {
	SMCoV, MemCoV, MemSizeCoV CDFStat
	// Over23Frac is the paper's "over 25 % of all jobs have SM utilization
	// CoV of 23 % or higher during their active phases".
	Over23Frac float64
}

// activeAgg accumulates Fig. 7a: per series, one Welford accumulator per
// metric over the active samples (stream-major, the order the row-walking
// implementation collected them in) instead of three slices re-read by CoV.
type activeAgg struct {
	smC, memC, mszC []float64
}

func (a *activeAgg) addSeries(ts *trace.TimeSeries) {
	var smW, memW, mszW welford
	for _, stream := range ts.PerGPU {
		for i := range stream {
			v := &stream[i].Values
			if v[metrics.SMUtil] > activeSampleThresholdPct ||
				v[metrics.MemUtil] > activeSampleThresholdPct {
				smW.add(v[metrics.SMUtil])
				memW.add(v[metrics.MemUtil])
				mszW.add(v[metrics.MemSize])
			}
		}
	}
	if smW.n < 2 {
		return
	}
	if c := smW.covPct(); !isNaN(c) {
		a.smC = append(a.smC, c)
	}
	if c := memW.covPct(); !isNaN(c) {
		a.memC = append(a.memC, c)
	}
	if c := mszW.covPct(); !isNaN(c) {
		a.mszC = append(a.mszC, c)
	}
}

func (a *activeAgg) result() ActiveVariabilityResult {
	sort.Float64s(a.smC)
	return ActiveVariabilityResult{
		SMCoV:      cdfFromECDF(stats.NewECDFSorted(a.smC)),
		MemCoV:     ownedCDF(a.memC),
		MemSizeCoV: ownedCDF(a.mszC),
		Over23Frac: stats.FractionAboveSorted(a.smC, 23),
	}
}

// ActiveVariability computes Fig. 7a over the time-series subset.
func ActiveVariability(ds *trace.Dataset) ActiveVariabilityResult {
	return ActiveVariabilityCols(ds.Columns())
}

// ActiveVariabilityCols computes Fig. 7a in sorted-series order.
func ActiveVariabilityCols(c *trace.Columns) ActiveVariabilityResult {
	var a activeAgg
	for _, id := range c.SeriesIDs {
		a.addSeries(c.Series(id))
	}
	return a.result()
}

// phasesAndActivity computes Figs. 6 and 7a in a single pass over the
// detailed-monitoring subset: both analyses visit every sample of every
// series, so Characterize runs them as one task touching each series once.
func phasesAndActivity(c *trace.Columns) (PhaseResult, ActiveVariabilityResult) {
	var pa phaseAgg
	var aa activeAgg
	for _, id := range c.SeriesIDs {
		ts := c.Series(id)
		pa.addSeries(ts)
		aa.addSeries(ts)
	}
	return pa.result(), aa.result()
}

// bottleneckThresholdPct: a job is bottlenecked on a metric when its
// recorded maximum reaches the capacity (the paper's definition); 99 %
// tolerates sampling discretization.
const bottleneckThresholdPct = 99

// BottleneckResult is Figs. 7b/8: per-resource and pairwise bottleneck
// fractions over the full GPU-job population (max utilization is recorded
// for every job, not only the detailed subset).
type BottleneckResult struct {
	// SingleFrac[m] is the fraction of jobs whose metric m hit capacity
	// (Fig. 7b radar / Fig. 8a bars).
	SingleFrac map[metrics.Metric]float64
	// PairFrac[{a,b}] is the fraction bottlenecked on both a and b during
	// the same run (Fig. 8b).
	PairFrac map[[2]metrics.Metric]float64
	// AnyTwoFrac is the fraction of jobs with two or more simultaneous
	// bottlenecks (paper: < 10 %).
	AnyTwoFrac float64
	Jobs       int
}

// Bottlenecks computes Figs. 7b/8.
func Bottlenecks(ds *trace.Dataset) BottleneckResult { return BottlenecksCols(ds.Columns()) }

// BottlenecksCols computes Figs. 7b/8 over the columnar GPU population.
func BottlenecksCols(c *trace.Columns) BottleneckResult {
	jobs := c.GPU
	r := BottleneckResult{
		SingleFrac: map[metrics.Metric]float64{},
		PairFrac:   map[[2]metrics.Metric]float64{},
		Jobs:       len(jobs),
	}
	if len(jobs) == 0 {
		return r
	}
	hit := func(j *trace.JobRecord, m metrics.Metric) bool {
		if len(j.PerGPU) > 0 {
			for _, g := range j.PerGPU {
				if g[m].Max >= bottleneckThresholdPct {
					return true
				}
			}
			return false
		}
		return j.GPU[m].Max >= bottleneckThresholdPct
	}
	var anyTwo float64
	hits := make([]metrics.Metric, 0, len(metrics.BottleneckMetrics))
	for _, j := range jobs {
		hits = hits[:0]
		for _, m := range metrics.BottleneckMetrics {
			if hit(j, m) {
				r.SingleFrac[m]++
				hits = append(hits, m)
			}
		}
		for a := 0; a < len(hits); a++ {
			for b := a + 1; b < len(hits); b++ {
				key := [2]metrics.Metric{hits[a], hits[b]}
				if key[0] > key[1] {
					key[0], key[1] = key[1], key[0]
				}
				r.PairFrac[key]++
			}
		}
		if len(hits) >= 2 {
			anyTwo++
		}
	}
	n := float64(len(jobs))
	for m := range r.SingleFrac {
		r.SingleFrac[m] /= n
	}
	for k := range r.PairFrac {
		r.PairFrac[k] /= n
	}
	r.AnyTwoFrac = anyTwo / n
	return r
}
