package core

import (
	"math"
	"sort"

	"repro/internal/lifecycle"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/trace"
)

// This file preserves the pre-columnar figure implementations verbatim as an
// executable specification, mirroring internal/cluster/naive.go from the
// scheduler index PR: every analysis walks the row-oriented Dataset directly
// and re-derives its own slices. The columnar implementations in the sibling
// files must produce reports identical to these (see naive_equiv_test.go);
// none of this is on the hot path.

// naiveCharacterize is the serial row-walking Characterize.
func naiveCharacterize(ds *trace.Dataset) *Report {
	users := naiveAggregateUsers(ds)
	return &Report{
		Runtimes:      naiveRuntimes(ds),
		Waits:         naiveWaits(ds),
		Utilization:   naiveUtilization(ds),
		PCIe:          naivePCIe(ds),
		ByInterface:   naiveByInterface(ds),
		Phases:        naivePhases(ds),
		ActiveCoV:     naiveActiveVariability(ds),
		Bottlenecks:   naiveBottlenecks(ds),
		Power:         naivePower(ds),
		UserAverages:  UserAverages(users),
		UserCoV:       UserVariability(users),
		UserTrends:    UserTrends(users),
		GPUCounts:     naiveGPUCounts(ds),
		MultiGPU:      naiveMultiGPU(ds),
		Lifecycle:     naiveLifecycle(ds),
		UserMix:       naiveUserMix(ds),
		Concentration: naiveConcentration(ds),
		HostCPUUse:    naiveHostCPU(ds),
	}
}

func naiveRuntimes(ds *trace.Dataset) RuntimeResult {
	return RuntimeResult{
		GPU: NewCDFStat(trace.RunMinutes(ds.GPUJobs()), curvePoints),
		CPU: NewCDFStat(trace.RunMinutes(ds.CPUJobs()), curvePoints),
	}
}

func naiveWaits(ds *trace.Dataset) WaitResult {
	gpuJobs, cpuJobs := ds.GPUJobs(), ds.CPUJobs()
	var r WaitResult

	gpuPct := make([]float64, len(gpuJobs))
	var bySize [4][]float64
	var gpuUnderMin, gpuUnder2 float64
	for i, j := range gpuJobs {
		gpuPct[i] = j.WaitFraction()
		if j.WaitSec < 60 {
			gpuUnderMin++
		}
		if j.WaitFraction() < 2 {
			gpuUnder2++
		}
		c := SizeClass(j.NumGPUs)
		bySize[c] = append(bySize[c], j.WaitSec)
	}
	cpuPct := make([]float64, len(cpuJobs))
	var cpuOverMin float64
	for i, j := range cpuJobs {
		cpuPct[i] = j.WaitFraction()
		if j.WaitSec > 60 {
			cpuOverMin++
		}
	}
	r.GPUWaitPct = NewCDFStat(gpuPct, curvePoints)
	r.CPUWaitPct = NewCDFStat(cpuPct, curvePoints)
	if n := float64(len(gpuJobs)); n > 0 {
		r.GPUWaitUnder1MinFrac = gpuUnderMin / n
		r.GPUWaitPctUnder2Frac = gpuUnder2 / n
	}
	if n := float64(len(cpuJobs)); n > 0 {
		r.CPUWaitOver1MinFrac = cpuOverMin / n
	}
	for c := range bySize {
		r.MedianWaitBySize[c] = stats.Median(bySize[c])
	}
	return r
}

func naiveUtilization(ds *trace.Dataset) UtilizationResult {
	jobs := ds.GPUJobs()
	sm := trace.MeanValues(jobs, metrics.SMUtil)
	mem := trace.MeanValues(jobs, metrics.MemUtil)
	msz := trace.MeanValues(jobs, metrics.MemSize)
	return UtilizationResult{
		SM:             NewCDFStat(sm, curvePoints),
		Mem:            NewCDFStat(mem, curvePoints),
		MemSize:        NewCDFStat(msz, curvePoints),
		SMOver50:       stats.FractionAbove(sm, 50),
		MemOver50:      stats.FractionAbove(mem, 50),
		SizeOver50:     stats.FractionAbove(msz, 50),
		NearZeroSMFrac: stats.FractionBelow(sm, 5),
	}
}

func naivePCIe(ds *trace.Dataset) PCIeResult {
	jobs := ds.GPUJobs()
	tx := trace.MeanValues(jobs, metrics.PCIeTx)
	rx := trace.MeanValues(jobs, metrics.PCIeRx)
	txE, rxE := stats.NewECDF(tx), stats.NewECDF(rx)
	return PCIeResult{
		Tx:          NewCDFStat(tx, curvePoints),
		Rx:          NewCDFStat(rx, curvePoints),
		TxUniformKS: txE.UniformityDistance(txE.Min(), txE.Max()),
		RxUniformKS: rxE.UniformityDistance(rxE.Min(), rxE.Max()),
	}
}

func naiveByInterface(ds *trace.Dataset) InterfaceResult {
	var r InterfaceResult
	groups := ds.ByInterface()
	total := len(ds.GPUJobs())
	for iface := trace.Interface(0); iface < trace.NumInterfaces; iface++ {
		jobs := groups[iface]
		if total > 0 {
			r.Share[iface] = float64(len(jobs)) / float64(total)
		}
		r.SM[iface] = NewCDFStat(trace.MeanValues(jobs, metrics.SMUtil), curvePoints)
		r.Mem[iface] = NewCDFStat(trace.MeanValues(jobs, metrics.MemUtil), curvePoints)
	}
	return r
}

// sortedSeriesIDs returns the monitored job ids in ascending order. The spec
// iterates maps in sorted-key order so its determinism is visible on the
// page (and to simlint's maporder analyzer) rather than resting on the
// downstream CDF constructors happening to sort.
func sortedSeriesIDs(ds *trace.Dataset) []int64 {
	ids := make([]int64, 0, len(ds.Series))
	for id := range ds.Series {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

// sortedUsers returns byUser's keys in ascending order; see sortedSeriesIDs.
func sortedUsers(byUser map[int][]*trace.JobRecord) []int {
	users := make([]int, 0, len(byUser))
	for u := range byUser {
		users = append(users, u)
	}
	sort.Ints(users)
	return users
}

func naivePhases(ds *trace.Dataset) PhaseResult {
	var activePct, idleCoVs, actCoVs []float64
	for _, id := range sortedSeriesIDs(ds) {
		ts := ds.Series[id]
		iv := SegmentSeries(ts)
		if len(iv) == 0 {
			continue
		}
		var activeDur, totalDur float64
		var idleLens, actLens []float64
		for _, seg := range iv {
			totalDur += seg.DurSec
			if seg.Active {
				activeDur += seg.DurSec
				actLens = append(actLens, seg.DurSec)
			} else {
				idleLens = append(idleLens, seg.DurSec)
			}
		}
		activePct = append(activePct, activeDur/totalDur*100)
		if len(idleLens) >= 2 {
			if c := stats.CoV(idleLens); !isNaN(c) {
				idleCoVs = append(idleCoVs, c)
			}
		}
		if len(actLens) >= 2 {
			if c := stats.CoV(actLens); !isNaN(c) {
				actCoVs = append(actCoVs, c)
			}
		}
	}
	return PhaseResult{
		ActiveTimePct: NewCDFStat(activePct, curvePoints),
		IdleCoV:       NewCDFStat(idleCoVs, curvePoints),
		ActiveCoVLen:  NewCDFStat(actCoVs, curvePoints),
		JobsAnalyzed:  len(activePct),
	}
}

func naiveActiveVariability(ds *trace.Dataset) ActiveVariabilityResult {
	var smC, memC, mszC []float64
	for _, id := range sortedSeriesIDs(ds) {
		ts := ds.Series[id]
		var sm, mem, msz []float64
		for _, stream := range ts.PerGPU {
			for _, s := range stream {
				if s.Values[metrics.SMUtil] > activeSampleThresholdPct ||
					s.Values[metrics.MemUtil] > activeSampleThresholdPct {
					sm = append(sm, s.Values[metrics.SMUtil])
					mem = append(mem, s.Values[metrics.MemUtil])
					msz = append(msz, s.Values[metrics.MemSize])
				}
			}
		}
		if len(sm) < 2 {
			continue
		}
		if c := stats.CoV(sm); !isNaN(c) {
			smC = append(smC, c)
		}
		if c := stats.CoV(mem); !isNaN(c) {
			memC = append(memC, c)
		}
		if c := stats.CoV(msz); !isNaN(c) {
			mszC = append(mszC, c)
		}
	}
	return ActiveVariabilityResult{
		SMCoV:      NewCDFStat(smC, curvePoints),
		MemCoV:     NewCDFStat(memC, curvePoints),
		MemSizeCoV: NewCDFStat(mszC, curvePoints),
		Over23Frac: stats.FractionAbove(smC, 23),
	}
}

func naiveBottlenecks(ds *trace.Dataset) BottleneckResult {
	jobs := ds.GPUJobs()
	r := BottleneckResult{
		SingleFrac: map[metrics.Metric]float64{},
		PairFrac:   map[[2]metrics.Metric]float64{},
		Jobs:       len(jobs),
	}
	if len(jobs) == 0 {
		return r
	}
	hit := func(j *trace.JobRecord, m metrics.Metric) bool {
		if len(j.PerGPU) > 0 {
			for _, g := range j.PerGPU {
				if g[m].Max >= bottleneckThresholdPct {
					return true
				}
			}
			return false
		}
		return j.GPU[m].Max >= bottleneckThresholdPct
	}
	var anyTwo float64
	for _, j := range jobs {
		count := 0
		var hits []metrics.Metric
		for _, m := range metrics.BottleneckMetrics {
			if hit(j, m) {
				r.SingleFrac[m]++
				hits = append(hits, m)
				count++
			}
		}
		for a := 0; a < len(hits); a++ {
			for b := a + 1; b < len(hits); b++ {
				key := [2]metrics.Metric{hits[a], hits[b]}
				if key[0] > key[1] {
					key[0], key[1] = key[1], key[0]
				}
				r.PairFrac[key]++
			}
		}
		if count >= 2 {
			anyTwo++
		}
	}
	n := float64(len(jobs))
	for m := range r.SingleFrac {
		r.SingleFrac[m] /= n
	}
	for k := range r.PairFrac {
		r.PairFrac[k] /= n
	}
	r.AnyTwoFrac = anyTwo / n
	return r
}

func naivePower(ds *trace.Dataset) PowerResult {
	jobs := ds.GPUJobs()
	return PowerResult{
		Avg:      NewCDFStat(trace.MeanValues(jobs, metrics.Power), curvePoints),
		Max:      NewCDFStat(trace.MaxValues(jobs, metrics.Power), curvePoints),
		TDPWatts: 300,
	}
}

func naiveGPUCounts(ds *trace.Dataset) GPUCountResult {
	jobs := ds.GPUJobs()
	r := GPUCountResult{FracByCount: map[int]float64{}}
	if len(jobs) == 0 {
		return r
	}
	var hours [4]float64
	var total, multiHours float64
	for _, j := range jobs {
		r.FracByCount[j.NumGPUs]++
		h := j.GPUHours()
		hours[SizeClass(j.NumGPUs)] += h
		total += h
		switch {
		case j.NumGPUs == 1:
			r.SingleGPUFrac++
		default:
			r.MultiGPUFrac++
			multiHours += h
		}
		if j.NumGPUs > 2 {
			r.Over2Frac++
		}
		if j.NumGPUs >= 9 {
			r.NinePlusFrac++
		}
	}
	n := float64(len(jobs))
	for k := range r.FracByCount {
		r.FracByCount[k] /= n
	}
	r.SingleGPUFrac /= n
	r.MultiGPUFrac /= n
	r.Over2Frac /= n
	r.NinePlusFrac /= n
	if total > 0 {
		for c := range hours {
			r.HourShareBySizeClass[c] = hours[c] / total
		}
		r.MultiGPUHourShare = multiHours / total
	}
	return r
}

func naiveMultiGPU(ds *trace.Dataset) MultiGPUResult {
	var r MultiGPUResult
	jobs := ds.MultiGPUJobs()
	var all, active [3][]float64
	var withIdle, halfIdle, considered float64
	for _, j := range jobs {
		if len(j.PerGPU) < 2 {
			continue
		}
		considered++
		idle := 0
		for _, g := range j.PerGPU {
			if g[metrics.SMUtil].Mean < idleGPUMeanSM && g[metrics.MemUtil].Mean < idleGPUMeanSM {
				idle++
			}
		}
		if idle > 0 {
			withIdle++
		}
		if idle*2 >= len(j.PerGPU) {
			halfIdle++
		}
		for mi, m := range multiGPUMetrics {
			var vals, act []float64
			for _, g := range j.PerGPU {
				vals = append(vals, g[m].Mean)
				if g[metrics.SMUtil].Mean >= idleGPUMeanSM || g[metrics.MemUtil].Mean >= idleGPUMeanSM {
					act = append(act, g[m].Mean)
				}
			}
			if cov := stats.CoV(vals); !isNaN(cov) {
				all[mi] = append(all[mi], cov)
			}
			if len(act) >= 2 {
				if cov := stats.CoV(act); !isNaN(cov) {
					active[mi] = append(active[mi], cov)
				}
			} else if len(act) == 1 {
				// One active GPU: no cross-GPU variability among active GPUs.
				active[mi] = append(active[mi], 0)
			}
		}
	}
	for mi := range multiGPUMetrics {
		r.CoVAllGPUs[mi] = NewCDFStat(all[mi], curvePoints)
		r.CoVActiveGPUs[mi] = NewCDFStat(active[mi], curvePoints)
	}
	if considered > 0 {
		r.IdleGPUJobFrac = withIdle / considered
		r.HalfIdleJobFrac = halfIdle / considered
	} else if len(jobs) > 0 {
		// Multi-GPU jobs exist but carry no per-GPU digests (the CSV path
		// flattens them): the idle-GPU question is unanswerable, not zero.
		r.IdleGPUJobFrac = math.NaN()
		r.HalfIdleJobFrac = math.NaN()
	}
	return r
}

func naiveLifecycle(ds *trace.Dataset) LifecycleResult {
	jobs := ds.GPUJobs()
	b := lifecycle.Account(jobs)
	groups := lifecycle.GroupByCategory(jobs)
	var r LifecycleResult
	r.Total = b.Total
	for c := trace.Category(0); c < trace.NumCategories; c++ {
		r.JobShare[c] = b.JobShare(c)
		r.HourShare[c] = b.HourShare(c)
		r.MedianRunMin[c] = stats.Median(trace.RunMinutes(groups[c]))
		for mi, m := range multiGPUMetrics {
			r.Boxes[c][mi] = stats.Box(trace.MeanValues(groups[c], m))
		}
	}
	return r
}

func naiveUserMix(ds *trace.Dataset) UserMixResult {
	byUser := ds.ByUser()
	rows := make([]UserMixRow, 0, len(byUser))
	for _, u := range sortedUsers(byUser) {
		jobs := byUser[u]
		row := UserMixRow{User: u, Jobs: len(jobs)}
		var hours [trace.NumCategories]float64
		var counts [trace.NumCategories]float64
		for _, j := range jobs {
			c := lifecycle.Classify(j)
			counts[c]++
			h := j.GPUHours()
			hours[c] += h
			row.GPUHours += h
		}
		for c := trace.Category(0); c < trace.NumCategories; c++ {
			row.JobFrac[c] = counts[c] / float64(row.Jobs)
			if row.GPUHours > 0 {
				row.HourFrac[c] = hours[c] / row.GPUHours
			}
		}
		rows = append(rows, row)
	}
	return finishUserMix(rows)
}

func naiveConcentration(ds *trace.Dataset) ConcentrationResult {
	byUser := ds.ByUser()
	var counts []float64
	maxGPUs := map[int]int{}
	for _, u := range sortedUsers(byUser) {
		jobs := byUser[u]
		counts = append(counts, float64(len(jobs)))
		for _, j := range jobs {
			if j.NumGPUs > maxGPUs[u] {
				maxGPUs[u] = j.NumGPUs
			}
		}
	}
	conc := stats.NewConcentration(counts)
	r := ConcentrationResult{
		Users:          len(counts),
		MedianUserJobs: stats.Median(counts),
		Top5PctShare:   conc.TopShare(0.05),
		Top20PctShare:  conc.TopShare(0.20),
		Gini:           conc.Gini(),
		Lorenz:         conc.LorenzCurve(),
	}
	if len(counts) == 0 {
		return r
	}
	var m2, m3, m9 float64
	for _, m := range maxGPUs {
		if m >= 2 {
			m2++
		}
		if m >= 3 {
			m3++
		}
		if m >= 9 {
			m9++
		}
	}
	n := float64(len(counts))
	r.UsersWithMultiFrac = m2 / n
	r.UsersWith3Frac = m3 / n
	r.UsersWith9Frac = m9 / n
	return r
}

func naiveHostCPU(ds *trace.Dataset) HostCPUResult {
	var gpuVals, cpuVals []float64
	for i := range ds.Jobs {
		j := &ds.Jobs[i]
		if j.IsGPU() {
			if j.RunSec >= trace.MinGPUJobRunSec {
				gpuVals = append(gpuVals, j.HostCPU.Mean)
			}
		} else {
			cpuVals = append(cpuVals, j.HostCPU.Mean)
		}
	}
	return HostCPUResult{
		GPUJobs:            NewCDFStat(gpuVals, curvePoints),
		CPUJobs:            NewCDFStat(cpuVals, curvePoints),
		GPUJobsUnder50Frac: stats.FractionBelow(gpuVals, 50),
	}
}

func naiveAggregateUsers(ds *trace.Dataset) []UserStats {
	byUser := ds.ByUser()
	users := make([]int, 0, len(byUser))
	for u := range byUser {
		users = append(users, u)
	}
	sort.Ints(users)
	out := make([]UserStats, 0, len(users))
	for _, u := range users {
		jobs := byUser[u]
		st := UserStats{User: u, Jobs: len(jobs)}
		var runs, sm, mem, msz []float64
		for _, j := range jobs {
			st.GPUHours += j.GPUHours()
			runs = append(runs, j.RunSec/60)
			sm = append(sm, j.GPU[metrics.SMUtil].Mean)
			mem = append(mem, j.GPU[metrics.MemUtil].Mean)
			msz = append(msz, j.GPU[metrics.MemSize].Mean)
		}
		st.AvgRunMin = stats.Mean(runs)
		st.RunCoVPct = stats.CoV(runs)
		st.AvgSM, st.AvgMem, st.AvgMemSize = stats.Mean(sm), stats.Mean(mem), stats.Mean(msz)
		st.CoVSM, st.CoVMem, st.CoVMemSize = stats.CoV(sm), stats.CoV(mem), stats.CoV(msz)
		out = append(out, st)
	}
	return out
}
