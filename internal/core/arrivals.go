package core

import (
	"math"

	"repro/internal/stats"
	"repro/internal/trace"
)

// ArrivalResult characterizes the submission process: daily load, weekday
// structure, and elevated windows — the paper's §II observation that "usage
// of the system often increases closer to the deadlines of popular deep
// learning conferences".
type ArrivalResult struct {
	// DailyCounts[d] is the number of submissions on day d.
	DailyCounts []int
	// WeekdayMean and WeekendMean are mean submissions per day by day type.
	WeekdayMean, WeekendMean float64
	// SurgeWindows are maximal runs of consecutive days whose load exceeds
	// SurgeThreshold × the trace-wide daily median.
	SurgeWindows []SurgeWindow
	// SurgeThreshold is the detection multiplier used.
	SurgeThreshold float64
	// PeakDay is the busiest day index.
	PeakDay int
}

// SurgeWindow is one detected high-load stretch.
type SurgeWindow struct {
	StartDay, EndDay int     // inclusive day indices
	MeanLoadFactor   float64 // mean daily load over the window ÷ median daily load
}

// Days returns the window length in days.
func (w SurgeWindow) Days() int { return w.EndDay - w.StartDay + 1 }

// Arrivals computes the submission-process characterization over ALL jobs
// (the arrival pattern is a property of user behavior, not of the GPU
// filter). surgeThreshold <= 1 selects the default of 1.35.
func Arrivals(ds *trace.Dataset, surgeThreshold float64) ArrivalResult {
	if surgeThreshold <= 1 {
		surgeThreshold = 1.35
	}
	r := ArrivalResult{SurgeThreshold: surgeThreshold}
	days := int(math.Ceil(ds.DurationDays))
	if days < 1 || len(ds.Jobs) == 0 {
		return r
	}
	r.DailyCounts = make([]int, days)
	for i := range ds.Jobs {
		d := int(ds.Jobs[i].SubmitSec / 86400)
		if d < 0 {
			d = 0
		}
		if d >= days {
			d = days - 1
		}
		r.DailyCounts[d]++
	}
	var wk, we, wkDays, weDays float64
	counts := make([]float64, days)
	for d, c := range r.DailyCounts {
		counts[d] = float64(c)
		if d%7 >= 5 {
			we += float64(c)
			weDays++
		} else {
			wk += float64(c)
			wkDays++
		}
		if c > r.DailyCounts[r.PeakDay] {
			r.PeakDay = d
		}
	}
	if wkDays > 0 {
		r.WeekdayMean = wk / wkDays
	}
	if weDays > 0 {
		r.WeekendMean = we / weDays
	}
	median := stats.Median(counts)
	if median <= 0 {
		return r
	}
	// Smooth over a 3-day window before thresholding so single spiky days do
	// not fragment a surge.
	smooth := make([]float64, days)
	for d := range counts {
		var sum, n float64
		for k := d - 1; k <= d+1; k++ {
			if k >= 0 && k < days {
				sum += counts[k]
				n++
			}
		}
		smooth[d] = sum / n
	}
	inSurge := false
	var start int
	flush := func(end int) {
		if !inSurge {
			return
		}
		inSurge = false
		var sum float64
		for d := start; d <= end; d++ {
			sum += counts[d]
		}
		factor := sum / float64(end-start+1) / median
		// Smoothing can pull an ordinary neighbor day over the threshold;
		// only genuinely elevated windows are surges.
		if factor < 1.1 {
			return
		}
		r.SurgeWindows = append(r.SurgeWindows, SurgeWindow{
			StartDay:       start,
			EndDay:         end,
			MeanLoadFactor: factor,
		})
	}
	for d := 0; d < days; d++ {
		if smooth[d] > surgeThreshold*median {
			if !inSurge {
				inSurge = true
				start = d
			}
		} else {
			flush(d - 1)
		}
	}
	flush(days - 1)
	return r
}
