package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// randomDataset builds a structurally valid dataset from fuzz bytes: every
// byte stream maps to some population, exercising edge shapes (all-CPU,
// all-multi-GPU, single user, zero-length series) the generated traces never
// produce.
func randomDataset(raw []byte) *trace.Dataset {
	ds := trace.NewDataset(1 + float64(len(raw)%100))
	id := int64(1)
	for i := 0; i+4 <= len(raw); i += 4 {
		b0, b1, b2, b3 := raw[i], raw[i+1], raw[i+2], raw[i+3]
		j := trace.JobRecord{
			JobID:     id,
			User:      int(b0 % 7),
			Interface: trace.Interface(b1 % 4),
			Exit:      trace.ExitStatus(b1 / 4 % 4),
			SubmitSec: float64(b2) * 1000,
			WaitSec:   float64(b3 % 64),
			RunSec:    float64(b2)*60 + 1,
			LimitSec:  86400,
		}
		if b0%3 != 0 { // GPU job
			j.NumGPUs = 1 + int(b3%4)
			for g := 0; g < j.NumGPUs; g++ {
				var s metrics.MetricSummaries
				level := float64((int(b1) + g*13) % 101)
				s[metrics.SMUtil] = metrics.SummaryRecord{Min: 0, Mean: level / 2, Max: level}
				s[metrics.MemUtil] = metrics.SummaryRecord{Min: 0, Mean: level / 8, Max: level / 2}
				s[metrics.MemSize] = metrics.SummaryRecord{Min: level / 4, Mean: level / 3, Max: level / 2}
				s[metrics.PCIeTx] = metrics.SummaryRecord{Min: 0, Mean: float64(b2 % 90), Max: float64(b2%90) + 5}
				s[metrics.PCIeRx] = metrics.SummaryRecord{Min: 0, Mean: float64(b3 % 90), Max: float64(b3%90) + 5}
				s[metrics.Power] = metrics.SummaryRecord{Min: 25, Mean: 25 + level, Max: 25 + 2*level}
				j.PerGPU = append(j.PerGPU, s)
			}
			j.FinalizeGPUSummary()
		} else {
			j.Cores = 1 + int(b3%40)
			j.MemGB = 4
		}
		ds.Add(j)
		id++
	}
	return ds
}

// Property: Characterize never panics and produces internally consistent
// results on arbitrary datasets.
func TestCharacterizeInvariantsProperty(t *testing.T) {
	f := func(raw []byte) bool {
		ds := randomDataset(raw)
		if err := ds.Validate(); err != nil {
			return false
		}
		rep := Characterize(ds)

		// CDF curves are monotone in both coordinates with F in [0, 1].
		for _, c := range []CDFStat{
			rep.Runtimes.GPU, rep.Runtimes.CPU,
			rep.Utilization.SM, rep.Utilization.Mem, rep.Utilization.MemSize,
			rep.PCIe.Tx, rep.PCIe.Rx,
			rep.Power.Avg, rep.Power.Max,
		} {
			for i, p := range c.Curve {
				if p.F < 0 || p.F > 1 {
					return false
				}
				if i > 0 && (p.X < c.Curve[i-1].X || p.F < c.Curve[i-1].F) {
					return false
				}
			}
			if c.N > 0 && !(c.P25 <= c.P50+1e-9 && c.P50 <= c.P75+1e-9) {
				return false
			}
		}

		// Fractions live in [0, 1].
		for _, v := range []float64{
			rep.GPUCounts.SingleGPUFrac, rep.GPUCounts.MultiGPUFrac,
			rep.GPUCounts.Over2Frac, rep.GPUCounts.NinePlusFrac,
			rep.Utilization.SMOver50, rep.Bottlenecks.AnyTwoFrac,
			rep.MultiGPU.HalfIdleJobFrac,
			rep.UserMix.UsersUnder40PctMatureJobs,
		} {
			if v < -1e-9 || v > 1+1e-9 {
				return false
			}
		}

		// Lifecycle shares sum to 1 (or all zero on empty populations).
		var jobSum float64
		for c := trace.Category(0); c < trace.NumCategories; c++ {
			jobSum += rep.Lifecycle.JobShare[c]
		}
		if rep.Lifecycle.Total > 0 && math.Abs(jobSum-1) > 1e-9 {
			return false
		}
		if rep.Lifecycle.Total == 0 && jobSum != 0 {
			return false
		}

		// Single + multi = 1 when jobs exist.
		if rep.Lifecycle.Total > 0 {
			if math.Abs(rep.GPUCounts.SingleGPUFrac+rep.GPUCounts.MultiGPUFrac-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: bottleneck fractions per metric are bounded by 1 and pairwise
// fractions never exceed their constituents' singles.
func TestBottleneckConsistencyProperty(t *testing.T) {
	f := func(raw []byte) bool {
		ds := randomDataset(raw)
		r := Bottlenecks(ds)
		for _, v := range r.SingleFrac {
			if v < 0 || v > 1 {
				return false
			}
		}
		for pair, v := range r.PairFrac {
			if v < 0 || v > 1 {
				return false
			}
			if v > r.SingleFrac[pair[0]]+1e-9 || v > r.SingleFrac[pair[1]]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: SegmentSeries intervals tile the sampled duration exactly and
// alternate strictly.
func TestSegmentSeriesProperty(t *testing.T) {
	f := func(raw []byte, intervalRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		interval := float64(intervalRaw%20)/10 + 0.1
		ts := &trace.TimeSeries{JobID: 1, IntervalSec: interval}
		stream := make([]metrics.Sample, len(raw))
		for i, b := range raw {
			stream[i].TimeSec = float64(i) * interval
			if b%2 == 1 {
				stream[i].Values[metrics.SMUtil] = 50
			}
		}
		ts.PerGPU = [][]metrics.Sample{stream}
		iv := SegmentSeries(ts)
		var total float64
		for i, seg := range iv {
			total += seg.DurSec
			if i > 0 && iv[i-1].Active == seg.Active {
				return false // must alternate
			}
			if i > 0 && math.Abs(iv[i-1].StartSec+iv[i-1].DurSec-seg.StartSec) > 1e-9 {
				return false // must tile without gaps
			}
		}
		want := float64(len(raw)) * interval
		return math.Abs(total-want) < 1e-6*want+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
