package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// equivDataset generates the shared mid-size dataset for equivalence runs.
func equivDataset(t *testing.T) *trace.Dataset {
	t.Helper()
	cfg := workload.ScaledConfig(0.12)
	cfg.Seed = 11
	g, err := workload.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g.BuildDataset(g.GenerateSpecs())
}

// diffReports compares two reports field by field through fmt's %v rendering:
// maps print in sorted key order and NaN renders stably, so equal strings
// mean value-identical results (and unequal strings name the figure).
func diffReports(t *testing.T, label string, want, got *Report) {
	t.Helper()
	wv, gv := reflect.ValueOf(*want), reflect.ValueOf(*got)
	for i := 0; i < wv.NumField(); i++ {
		name := wv.Type().Field(i).Name
		ws := fmt.Sprintf("%v", wv.Field(i).Interface())
		gs := fmt.Sprintf("%v", gv.Field(i).Interface())
		if ws != gs {
			t.Errorf("%s: field %s differs\n want %.400s\n  got %.400s", label, name, ws, gs)
		}
	}
}

// TestColumnarMatchesNaive checks the tentpole invariant: the columnar
// implementations produce a Report value-identical to the preserved
// row-walking implementations in naive.go.
func TestColumnarMatchesNaive(t *testing.T) {
	ds := equivDataset(t)
	want := naiveCharacterize(ds)
	diffReports(t, "columnar vs naive", want, Characterize(ds))
}

// TestColumnarFigureWrappers checks each exported per-figure entry point
// against its naive counterpart individually, so a regression names the
// figure rather than the whole report.
func TestColumnarFigureWrappers(t *testing.T) {
	ds := equivDataset(t)
	check := func(name string, want, got any) {
		t.Helper()
		ws, gs := fmt.Sprintf("%v", want), fmt.Sprintf("%v", got)
		if ws != gs {
			t.Errorf("%s differs\n want %.400s\n  got %.400s", name, ws, gs)
		}
	}
	check("Runtimes", naiveRuntimes(ds), Runtimes(ds))
	check("Waits", naiveWaits(ds), Waits(ds))
	check("Utilization", naiveUtilization(ds), Utilization(ds))
	check("PCIe", naivePCIe(ds), PCIe(ds))
	check("ByInterface", naiveByInterface(ds), ByInterface(ds))
	check("Phases", naivePhases(ds), Phases(ds))
	check("ActiveVariability", naiveActiveVariability(ds), ActiveVariability(ds))
	check("Bottlenecks", naiveBottlenecks(ds), Bottlenecks(ds))
	check("Power", naivePower(ds), Power(ds))
	check("GPUCounts", naiveGPUCounts(ds), GPUCounts(ds))
	check("MultiGPU", naiveMultiGPU(ds), MultiGPU(ds))
	check("Lifecycle", naiveLifecycle(ds), Lifecycle(ds))
	check("UserMix", naiveUserMix(ds), UserMix(ds))
	check("Concentration", naiveConcentration(ds), Concentration(ds))
	check("HostCPU", naiveHostCPU(ds), HostCPU(ds))
	check("AggregateUsers", naiveAggregateUsers(ds), AggregateUsers(ds))
}

// TestParallelWorkerEquivalence checks that Characterize is bit-identical
// for any worker count: the serial path and pools of 2 and 8 workers must
// assemble the same Report. The race-analyze make target runs this under
// the race detector.
func TestParallelWorkerEquivalence(t *testing.T) {
	ds := equivDataset(t)
	want := CharacterizeParallel(ds, 1)
	for _, workers := range []int{2, 8} {
		diffReports(t, fmt.Sprintf("workers=%d vs serial", workers), want,
			CharacterizeParallel(ds, workers))
	}
	diffReports(t, "workers=default vs serial", want, Characterize(ds))
}

// TestRunTasksPanic pins the pool's failure contract: a panicking task does
// not wedge the pool, later tasks still run, and the panic resurfaces.
func TestRunTasksPanic(t *testing.T) {
	ran := make([]bool, 6)
	tasks := make([]func(), 6)
	for i := range tasks {
		i := i
		tasks[i] = func() {
			ran[i] = true
			if i == 2 {
				panic("boom")
			}
		}
	}
	defer func() {
		if p := recover(); p != "boom" {
			t.Fatalf("recovered %v, want boom", p)
		}
		for i, ok := range ran {
			if !ok {
				t.Errorf("task %d never ran", i)
			}
		}
	}()
	runTasks(3, tasks)
}
