package core

import (
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/trace"
)

// UserStats aggregates one user's GPU jobs: the per-user quantities behind
// Figs. 10–12 and 17.
type UserStats struct {
	User     int
	Jobs     int
	GPUHours float64

	AvgRunMin float64
	RunCoVPct float64

	AvgSM, AvgMem, AvgMemSize float64
	CoVSM, CoVMem, CoVMemSize float64
}

// AggregateUsers computes per-user statistics over the GPU-job population,
// sorted by user index.
func AggregateUsers(ds *trace.Dataset) []UserStats { return AggregateUsersCols(ds.Columns()) }

// AggregateUsersCols computes per-user statistics by gathering the run-time
// and utilization columns through the per-user row index, reusing scratch
// vectors across users.
func AggregateUsersCols(c *trace.Columns) []UserStats {
	out := make([]UserStats, 0, len(c.Users))
	hourVals := c.GPUHours.Values()
	runVals := c.RunMin.Values()
	smVals := c.Mean[metrics.SMUtil].Values()
	memVals := c.Mean[metrics.MemUtil].Values()
	mszVals := c.Mean[metrics.MemSize].Values()
	var runs, sm, mem, msz []float64
	for _, u := range c.Users {
		idx := c.ByUser[u]
		st := UserStats{User: u, Jobs: len(idx)}
		runs, sm, mem, msz = runs[:0], sm[:0], mem[:0], msz[:0]
		for _, k := range idx {
			st.GPUHours += hourVals[k]
			runs = append(runs, runVals[k])
			sm = append(sm, smVals[k])
			mem = append(mem, memVals[k])
			msz = append(msz, mszVals[k])
		}
		st.AvgRunMin = stats.Mean(runs)
		st.RunCoVPct = stats.CoV(runs)
		st.AvgSM, st.AvgMem, st.AvgMemSize = stats.Mean(sm), stats.Mean(mem), stats.Mean(msz)
		st.CoVSM, st.CoVMem, st.CoVMemSize = stats.CoV(sm), stats.CoV(mem), stats.CoV(msz)
		out = append(out, st)
	}
	return out
}

// UserAverageResult is Fig. 10: CDFs across users of average job run time
// and average utilization.
type UserAverageResult struct {
	AvgRunMin  CDFStat
	AvgSM      CDFStat
	AvgMem     CDFStat
	AvgMemSize CDFStat
}

// UserAverages computes Fig. 10.
func UserAverages(users []UserStats) UserAverageResult {
	var run, sm, mem, msz []float64
	for _, u := range users {
		run = append(run, u.AvgRunMin)
		sm = append(sm, u.AvgSM)
		mem = append(mem, u.AvgMem)
		msz = append(msz, u.AvgMemSize)
	}
	return UserAverageResult{
		AvgRunMin:  NewCDFStat(run, curvePoints),
		AvgSM:      NewCDFStat(sm, curvePoints),
		AvgMem:     NewCDFStat(mem, curvePoints),
		AvgMemSize: NewCDFStat(msz, curvePoints),
	}
}

// UserVariabilityResult is Fig. 11: CDFs across users of the CoV of run
// times and utilization over each user's own jobs.
type UserVariabilityResult struct {
	RunCoV     CDFStat
	SMCoV      CDFStat
	MemCoV     CDFStat
	MemSizeCoV CDFStat
}

// UserVariability computes Fig. 11. Users with fewer than two jobs carry no
// dispersion information and are skipped.
func UserVariability(users []UserStats) UserVariabilityResult {
	var run, sm, mem, msz []float64
	for _, u := range users {
		if u.Jobs < 2 {
			continue
		}
		appendValid(&run, u.RunCoVPct)
		appendValid(&sm, u.CoVSM)
		appendValid(&mem, u.CoVMem)
		appendValid(&msz, u.CoVMemSize)
	}
	return UserVariabilityResult{
		RunCoV:     NewCDFStat(run, curvePoints),
		SMCoV:      NewCDFStat(sm, curvePoints),
		MemCoV:     NewCDFStat(mem, curvePoints),
		MemSizeCoV: NewCDFStat(msz, curvePoints),
	}
}

func appendValid(dst *[]float64, v float64) {
	if !isNaN(v) {
		*dst = append(*dst, v)
	}
}

// TrendPair is one Fig. 12 correlation: a user-activity measure against a
// user-behavior measure.
type TrendPair struct {
	Activity string // "jobs" or "gpu_hours"
	Behavior string // e.g. "avg_sm"
	Result   stats.SpearmanResult
}

// UserTrendResult is Fig. 12: the Spearman correlation grid.
type UserTrendResult struct {
	Pairs []TrendPair
}

// Get returns the correlation for (activity, behavior), or a zero result.
func (r UserTrendResult) Get(activity, behavior string) stats.SpearmanResult {
	for _, p := range r.Pairs {
		if p.Activity == activity && p.Behavior == behavior {
			return p.Result
		}
	}
	return stats.SpearmanResult{}
}

// UserTrends computes Fig. 12: correlations of user activity (job count,
// GPU hours) with average behavior and its variance.
func UserTrends(users []UserStats) UserTrendResult {
	var jobs, hours []float64
	behaviors := map[string][]float64{}
	names := []string{"avg_run", "avg_sm", "avg_mem", "cov_run", "cov_sm", "cov_mem"}
	for _, u := range users {
		if u.Jobs < 2 {
			continue
		}
		jobs = append(jobs, float64(u.Jobs))
		hours = append(hours, u.GPUHours)
		behaviors["avg_run"] = append(behaviors["avg_run"], u.AvgRunMin)
		behaviors["avg_sm"] = append(behaviors["avg_sm"], u.AvgSM)
		behaviors["avg_mem"] = append(behaviors["avg_mem"], u.AvgMem)
		behaviors["cov_run"] = append(behaviors["cov_run"], nanToZero(u.RunCoVPct))
		behaviors["cov_sm"] = append(behaviors["cov_sm"], nanToZero(u.CoVSM))
		behaviors["cov_mem"] = append(behaviors["cov_mem"], nanToZero(u.CoVMem))
	}
	var r UserTrendResult
	for _, name := range names {
		r.Pairs = append(r.Pairs,
			TrendPair{Activity: "jobs", Behavior: name, Result: stats.Spearman(jobs, behaviors[name])},
			TrendPair{Activity: "gpu_hours", Behavior: name, Result: stats.Spearman(hours, behaviors[name])},
		)
	}
	return r
}

func nanToZero(v float64) float64 {
	if isNaN(v) {
		return 0
	}
	return v
}

// ConcentrationResult is §IV's Pareto statistics plus §V's user-level
// multi-GPU reach.
type ConcentrationResult struct {
	Users          int
	MedianUserJobs float64
	Top5PctShare   float64
	Top20PctShare  float64
	Gini           float64
	Lorenz         []stats.Point

	// Multi-GPU reach (§V): fraction of users whose largest job used ≥2,
	// ≥3 and ≥9 GPUs.
	UsersWithMultiFrac float64
	UsersWith3Frac     float64
	UsersWith9Frac     float64
}

// Concentration computes the §IV/§V user-population statistics.
func Concentration(ds *trace.Dataset) ConcentrationResult { return ConcentrationCols(ds.Columns()) }

// ConcentrationCols computes the §IV/§V statistics from the per-user row
// index; every output is either sorted internally or an order-independent
// count, so iterating users in ascending order changes nothing.
func ConcentrationCols(c *trace.Columns) ConcentrationResult {
	counts := make([]float64, 0, len(c.Users))
	var m2, m3, m9 float64
	for _, u := range c.Users {
		idx := c.ByUser[u]
		counts = append(counts, float64(len(idx)))
		maxGPUs := 0
		for _, k := range idx {
			if g := c.NumGPUs[k]; g > maxGPUs {
				maxGPUs = g
			}
		}
		if maxGPUs >= 2 {
			m2++
		}
		if maxGPUs >= 3 {
			m3++
		}
		if maxGPUs >= 9 {
			m9++
		}
	}
	conc := stats.NewConcentration(counts)
	r := ConcentrationResult{
		Users:          len(counts),
		MedianUserJobs: stats.Median(counts),
		Top5PctShare:   conc.TopShare(0.05),
		Top20PctShare:  conc.TopShare(0.20),
		Gini:           conc.Gini(),
		Lorenz:         conc.LorenzCurve(),
	}
	if len(counts) == 0 {
		return r
	}
	n := float64(len(counts))
	r.UsersWithMultiFrac = m2 / n
	r.UsersWith3Frac = m3 / n
	r.UsersWith9Frac = m9 / n
	return r
}
