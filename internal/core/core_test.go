package core

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workload"
)

// reportCache shares one generated dataset and report across tests.
var reportCache struct {
	ds  *trace.Dataset
	rep *Report
}

func testReport(t *testing.T) (*trace.Dataset, *Report) {
	t.Helper()
	if reportCache.rep == nil {
		cfg := workload.ScaledConfig(0.12)
		cfg.Seed = 7
		g, err := workload.NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		specs := g.GenerateSpecs()
		reportCache.ds = g.BuildDataset(specs)
		reportCache.rep = Characterize(reportCache.ds)
	}
	return reportCache.ds, reportCache.rep
}

func checkBand(t *testing.T, name string, got, lo, hi float64) {
	t.Helper()
	t.Logf("%-42s %10.3f   band [%g, %g]", name, got, lo, hi)
	if math.IsNaN(got) || got < lo || got > hi {
		t.Errorf("%s = %v outside [%v, %v]", name, got, lo, hi)
	}
}

func TestFig3aRuntimes(t *testing.T) {
	_, r := testReport(t)
	checkBand(t, "Fig3a GPU run median (min)", r.Runtimes.GPU.P50, 18, 45)
	checkBand(t, "Fig3a CPU run median (min)", r.Runtimes.CPU.P50, 5, 13)
	if r.Runtimes.GPU.P50 <= r.Runtimes.CPU.P50 {
		t.Error("Fig3a shape: GPU jobs should run longer than CPU jobs")
	}
	if len(r.Runtimes.GPU.Curve) == 0 {
		t.Error("Fig3a curve empty")
	}
}

func TestFig3bWaits(t *testing.T) {
	_, r := testReport(t)
	checkBand(t, "Fig3b GPU wait <1min frac", r.Waits.GPUWaitUnder1MinFrac, 0.6, 0.8)
	checkBand(t, "Fig3b GPU wait <2% of service", r.Waits.GPUWaitPctUnder2Frac, 0.45, 0.75)
	checkBand(t, "Fig3b CPU wait >1min frac", r.Waits.CPUWaitOver1MinFrac, 0.6, 0.85)
	// §V: no size class should wait dramatically longer than single-GPU.
	for c := 1; c < 4; c++ {
		if w := r.Waits.MedianWaitBySize[c]; !math.IsNaN(w) && w > r.Waits.MedianWaitBySize[0]*3+60 {
			t.Errorf("size class %s median wait %v much larger than single-GPU %v",
				SizeClassLabel(c), w, r.Waits.MedianWaitBySize[0])
		}
	}
}

func TestFig4aUtilization(t *testing.T) {
	_, r := testReport(t)
	checkBand(t, "Fig4a SM median", r.Utilization.SM.P50, 10, 22)
	checkBand(t, "Fig4a mem median", r.Utilization.Mem.P50, 0.5, 5)
	checkBand(t, "Fig4a memsize median", r.Utilization.MemSize.P50, 5, 14)
	checkBand(t, "Fig4a SM >50%", r.Utilization.SMOver50, 0.12, 0.28)
	checkBand(t, "Fig4a mem >50%", r.Utilization.MemOver50, 0, 0.08)
	checkBand(t, "Fig4a near-zero SM", r.Utilization.NearZeroSMFrac, 0.2, 0.45)
	// Ordering: SM more utilized than memory bandwidth.
	if r.Utilization.SM.P50 <= r.Utilization.Mem.P50 {
		t.Error("Fig4a shape: SM should dominate memory bandwidth")
	}
}

func TestFig4bPCIeUniform(t *testing.T) {
	_, r := testReport(t)
	// "Linearly increasing empirical CDF": small KS distance to uniform.
	checkBand(t, "Fig4b Tx uniform KS", r.PCIe.TxUniformKS, 0, 0.12)
	checkBand(t, "Fig4b Rx uniform KS", r.PCIe.RxUniformKS, 0, 0.12)
}

func TestFig5Interfaces(t *testing.T) {
	_, r := testReport(t)
	checkBand(t, "Fig5 map-reduce share", r.ByInterface.Share[trace.MapReduce], 0.002, 0.03)
	checkBand(t, "Fig5 batch share", r.ByInterface.Share[trace.Batch], 0.2, 0.4)
	checkBand(t, "Fig5 interactive share", r.ByInterface.Share[trace.Interactive], 0.02, 0.07)
	checkBand(t, "Fig5 other share", r.ByInterface.Share[trace.Other], 0.55, 0.75)
	// Ordering: other > batch > interactive in median SM.
	if !(r.ByInterface.SM[trace.Other].P50 >= r.ByInterface.SM[trace.Batch].P50 &&
		r.ByInterface.SM[trace.Batch].P50 >= r.ByInterface.SM[trace.Interactive].P50) {
		t.Errorf("Fig5 SM ordering broken: other=%v batch=%v interactive=%v",
			r.ByInterface.SM[trace.Other].P50, r.ByInterface.SM[trace.Batch].P50,
			r.ByInterface.SM[trace.Interactive].P50)
	}
}

func TestFig6Phases(t *testing.T) {
	_, r := testReport(t)
	if r.Phases.JobsAnalyzed < 100 {
		t.Fatalf("phase analysis covered %d jobs", r.Phases.JobsAnalyzed)
	}
	checkBand(t, "Fig6a active time median (%)", r.Phases.ActiveTimePct.P50, 65, 95)
	checkBand(t, "Fig6a active time p25 (%)", r.Phases.ActiveTimePct.P25, 5, 35)
	checkBand(t, "Fig6a active time p75 (%)", r.Phases.ActiveTimePct.P75, 85, 100)
	checkBand(t, "Fig6b idle CoV median (%)", r.Phases.IdleCoV.P50, 70, 190)
	checkBand(t, "Fig6b active CoV median (%)", r.Phases.ActiveCoVLen.P50, 90, 240)
}

func TestFig7aActiveVariability(t *testing.T) {
	_, r := testReport(t)
	checkBand(t, "Fig7a SM CoV median (%)", r.ActiveCoV.SMCoV.P50, 5, 40)
	checkBand(t, "Fig7a mem CoV median (%)", r.ActiveCoV.MemCoV.P50, 5, 45)
	checkBand(t, "Fig7a memsize CoV median (%)", r.ActiveCoV.MemSizeCoV.P50, 2, 30)
	checkBand(t, "Fig7a SM CoV >23% frac", r.ActiveCoV.Over23Frac, 0.1, 0.6)
}

func TestFig7b8Bottlenecks(t *testing.T) {
	_, r := testReport(t)
	checkBand(t, "Fig8a SM bottleneck frac", r.Bottlenecks.SingleFrac[metrics.SMUtil], 0.15, 0.3)
	checkBand(t, "Fig8a mem bottleneck frac", r.Bottlenecks.SingleFrac[metrics.MemUtil], 0, 0.02)
	checkBand(t, "Fig8a PCIe Rx bottleneck frac", r.Bottlenecks.SingleFrac[metrics.PCIeRx], 0.08, 0.25)
	pair := [2]metrics.Metric{metrics.SMUtil, metrics.PCIeRx}
	checkBand(t, "Fig8b SM∧Rx frac", r.Bottlenecks.PairFrac[pair], 0.04, 0.15)
	checkBand(t, "Fig8b any-two frac", r.Bottlenecks.AnyTwoFrac, 0.02, 0.2)
}

func TestFig9aPower(t *testing.T) {
	_, r := testReport(t)
	checkBand(t, "Fig9a avg power median (W)", r.Power.Avg.P50, 32, 62)
	checkBand(t, "Fig9a max power median (W)", r.Power.Max.P50, 60, 125)
	if r.Power.Max.P50 <= r.Power.Avg.P50 {
		t.Error("Fig9a shape: max power must exceed average")
	}
	if r.Power.Avg.P50 > r.Power.TDPWatts/3 {
		t.Error("Fig9a shape: median average draw should be under a third of TDP")
	}
}

func TestFig10UserAverages(t *testing.T) {
	_, r := testReport(t)
	checkBand(t, "Fig10 user avg run median (min)", r.UserAverages.AvgRunMin.P50, 150, 700)
	checkBand(t, "Fig10 user avg SM median (%)", r.UserAverages.AvgSM.P50, 5, 19)
	checkBand(t, "Fig10 user avg mem median (%)", r.UserAverages.AvgMem.P50, 0.3, 5)
	// Shape: user-level run medians far exceed job-level (Fig. 10 vs 3a).
	if r.UserAverages.AvgRunMin.P50 < r.Runtimes.GPU.P50*2 {
		t.Error("Fig10 shape: user-average run times should dwarf job medians")
	}
}

func TestFig11UserVariability(t *testing.T) {
	_, r := testReport(t)
	checkBand(t, "Fig11 run CoV median (%)", r.UserCoV.RunCoV.P50, 100, 230)
	checkBand(t, "Fig11 SM CoV median (%)", r.UserCoV.SMCoV.P50, 70, 180)
	checkBand(t, "Fig11 mem CoV median (%)", r.UserCoV.MemCoV.P50, 80, 260)
}

func TestFig12Trends(t *testing.T) {
	_, r := testReport(t)
	avgSM := r.UserTrends.Get("jobs", "avg_sm")
	checkBand(t, "Fig12 rho(jobs, avg SM)", avgSM.Rho, 0.3, 0.95)
	if avgSM.PValue >= 0.05 {
		t.Errorf("Fig12 rho(jobs, avg SM) p = %v, want significance", avgSM.PValue)
	}
	hoursSM := r.UserTrends.Get("gpu_hours", "avg_sm")
	checkBand(t, "Fig12 rho(hours, avg SM)", hoursSM.Rho, 0.2, 0.95)
	covSM := r.UserTrends.Get("jobs", "cov_sm")
	checkBand(t, "Fig12 |rho(jobs, cov SM)|", math.Abs(covSM.Rho), 0, 0.5)
	if got := r.UserTrends.Get("jobs", "nonexistent"); got.N != 0 {
		t.Error("Get on unknown pair should be zero")
	}
}

func TestFig13GPUCounts(t *testing.T) {
	_, r := testReport(t)
	checkBand(t, "Fig13 single-GPU frac", r.GPUCounts.SingleGPUFrac, 0.78, 0.9)
	checkBand(t, "Fig13 multi-GPU frac", r.GPUCounts.MultiGPUFrac, 0.1, 0.22)
	checkBand(t, "Fig13 >2 GPU frac", r.GPUCounts.Over2Frac, 0.01, 0.05)
	checkBand(t, "Fig13 multi hour share", r.GPUCounts.MultiGPUHourShare, 0.35, 0.65)
	var sum float64
	for _, f := range r.GPUCounts.FracByCount {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Fig13 count fractions sum to %v", sum)
	}
}

func TestFig14MultiGPU(t *testing.T) {
	_, r := testReport(t)
	checkBand(t, "Fig14 half-idle multi-GPU frac", r.MultiGPU.HalfIdleJobFrac, 0.3, 0.5)
	// Removing idle GPUs collapses the CoV (Fig. 14b vs 14a).
	for mi := range r.MultiGPU.CoVAllGPUs {
		all, act := r.MultiGPU.CoVAllGPUs[mi].P75, r.MultiGPU.CoVActiveGPUs[mi].P75
		if !math.IsNaN(all) && !math.IsNaN(act) && act > all {
			t.Errorf("Fig14 metric %d: active-only CoV p75 %v exceeds all-GPU %v", mi, act, all)
		}
	}
	if r.MultiGPU.CoVActiveGPUs[0].P50 > 20 {
		t.Errorf("Fig14b: active GPUs should be near-uniform, median CoV %v", r.MultiGPU.CoVActiveGPUs[0].P50)
	}
}

func TestFig15_16Lifecycle(t *testing.T) {
	_, r := testReport(t)
	checkBand(t, "Fig15a mature job share", r.Lifecycle.JobShare[trace.Mature], 0.5, 0.7)
	checkBand(t, "Fig15a exploratory job share", r.Lifecycle.JobShare[trace.Exploratory], 0.12, 0.25)
	checkBand(t, "Fig15a development job share", r.Lifecycle.JobShare[trace.Development], 0.12, 0.26)
	checkBand(t, "Fig15a IDE job share", r.Lifecycle.JobShare[trace.IDE], 0.02, 0.06)
	checkBand(t, "Fig15b mature hour share", r.Lifecycle.HourShare[trace.Mature], 0.28, 0.52)
	checkBand(t, "Fig15b exploratory hour share", r.Lifecycle.HourShare[trace.Exploratory], 0.22, 0.45)
	checkBand(t, "Fig15b IDE hour share", r.Lifecycle.HourShare[trace.IDE], 0.1, 0.28)
	// §VI medians: exploratory jobs run longer than mature.
	if r.Lifecycle.MedianRunMin[trace.Exploratory] <= r.Lifecycle.MedianRunMin[trace.Mature] {
		t.Error("Fig15 shape: exploratory median run should exceed mature")
	}
	// Fig. 16: development/IDE boxes sit at ~0 SM; mature well above.
	if r.Lifecycle.Boxes[trace.IDE][0].Median > 2 {
		t.Errorf("Fig16: IDE median SM = %v, want ~0", r.Lifecycle.Boxes[trace.IDE][0].Median)
	}
	if r.Lifecycle.Boxes[trace.Mature][0].Median < 10 {
		t.Errorf("Fig16: mature median SM = %v", r.Lifecycle.Boxes[trace.Mature][0].Median)
	}
	var jobSum, hourSum float64
	for c := trace.Category(0); c < trace.NumCategories; c++ {
		jobSum += r.Lifecycle.JobShare[c]
		hourSum += r.Lifecycle.HourShare[c]
	}
	if math.Abs(jobSum-1) > 1e-9 || math.Abs(hourSum-1) > 1e-9 {
		t.Errorf("Fig15 shares do not sum to 1: %v, %v", jobSum, hourSum)
	}
}

func TestFig17UserMix(t *testing.T) {
	_, r := testReport(t)
	checkBand(t, "Fig17a users <40% mature jobs", r.UserMix.UsersUnder40PctMatureJobs, 0.3, 0.7)
	checkBand(t, "Fig17b users >60% non-mature hours", r.UserMix.UsersOver60PctNonMatureHours, 0.2, 0.9)
	// Sortedness of the stacked-area x-axis.
	for i := 1; i < len(r.UserMix.ByJobs); i++ {
		if r.UserMix.ByJobs[i].JobFrac[trace.Mature] < r.UserMix.ByJobs[i-1].JobFrac[trace.Mature] {
			t.Fatal("Fig17a rows not sorted by mature share")
		}
	}
	// Each row's fractions sum to 1.
	for _, row := range r.UserMix.ByJobs {
		var sum float64
		for c := trace.Category(0); c < trace.NumCategories; c++ {
			sum += row.JobFrac[c]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("user %d job fractions sum to %v", row.User, sum)
		}
	}
}

func TestHostCPUSupportsColocation(t *testing.T) {
	_, r := testReport(t)
	// §III ordering: GPU jobs are CPU-light, CPU jobs saturate their cores.
	if r.HostCPUUse.GPUJobs.P50 >= r.HostCPUUse.CPUJobs.P50 {
		t.Fatalf("GPU jobs not CPU-light: %v vs %v",
			r.HostCPUUse.GPUJobs.P50, r.HostCPUUse.CPUJobs.P50)
	}
	checkBand(t, "SecIII CPU-job host util median (%)", r.HostCPUUse.CPUJobs.P50, 80, 95)
	if r.HostCPUUse.GPUJobsUnder50Frac < 0.3 {
		t.Errorf("only %v of GPU jobs under 50%% host CPU", r.HostCPUUse.GPUJobsUnder50Frac)
	}
}

func TestConcentrationStats(t *testing.T) {
	_, r := testReport(t)
	checkBand(t, "§IV top-5% share", r.Concentration.Top5PctShare, 0.3, 0.6)
	checkBand(t, "§IV top-20% share", r.Concentration.Top20PctShare, 0.7, 0.92)
	checkBand(t, "§V users with multi-GPU", r.Concentration.UsersWithMultiFrac, 0.45, 0.75)
	checkBand(t, "§V users with >=9 GPUs", r.Concentration.UsersWith9Frac, 0.02, 0.1)
	if r.Concentration.Gini <= 0 || r.Concentration.Gini >= 1 {
		t.Errorf("Gini = %v", r.Concentration.Gini)
	}
	if len(r.Concentration.Lorenz) != r.Concentration.Users {
		t.Error("Lorenz curve length mismatch")
	}
}

func TestSegmentSeries(t *testing.T) {
	mk := func(vals ...float64) *trace.TimeSeries {
		ts := &trace.TimeSeries{JobID: 1, IntervalSec: 2}
		stream := make([]metrics.Sample, len(vals))
		for i, v := range vals {
			stream[i].TimeSec = float64(i) * 2
			stream[i].Values[metrics.SMUtil] = v
		}
		ts.PerGPU = [][]metrics.Sample{stream}
		return ts
	}
	iv := SegmentSeries(mk(0, 0, 50, 50, 50, 0, 40))
	want := []Interval{
		{Active: false, StartSec: 0, DurSec: 4},
		{Active: true, StartSec: 4, DurSec: 6},
		{Active: false, StartSec: 10, DurSec: 2},
		{Active: true, StartSec: 12, DurSec: 2},
	}
	if len(iv) != len(want) {
		t.Fatalf("intervals = %+v", iv)
	}
	for i := range want {
		if iv[i] != want[i] {
			t.Fatalf("interval %d = %+v, want %+v", i, iv[i], want[i])
		}
	}
	if SegmentSeries(nil) != nil {
		t.Fatal("nil series should yield nil")
	}
}

func TestSizeClass(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 8: 2, 9: 3, 32: 3}
	for g, want := range cases {
		if got := SizeClass(g); got != want {
			t.Errorf("SizeClass(%d) = %d, want %d", g, got, want)
		}
	}
	if SizeClassLabel(0) != "1 GPU" || SizeClassLabel(3) != ">8 GPUs" {
		t.Error("size class labels wrong")
	}
}

func TestEmptyDataset(t *testing.T) {
	ds := trace.NewDataset(1)
	rep := Characterize(ds)
	if rep.GPUCounts.SingleGPUFrac != 0 {
		t.Error("empty dataset should produce zero fractions")
	}
	if rep.Lifecycle.Total != 0 {
		t.Error("empty dataset lifecycle total")
	}
}
