package core

import (
	"runtime"
	"sync"

	"repro/internal/trace"
)

// CharacterizeCols runs the complete suite over a pre-built column index,
// fanning the figures across workers goroutines (0 means GOMAXPROCS, 1 is
// fully serial). Each task writes a disjoint set of Report fields and shared
// inputs are either immutable columns or computed once behind sync.Once, so
// the assembled Report is bit-identical for every worker count.
func CharacterizeCols(c *trace.Columns, workers int) *Report {
	rep := &Report{}
	users := sync.OnceValue(func() []UserStats { return AggregateUsersCols(c) })
	tasks := []func(){
		func() { rep.Runtimes = RuntimesCols(c) },
		func() { rep.Waits = WaitsCols(c) },
		func() { rep.Utilization = UtilizationCols(c) },
		func() { rep.PCIe = PCIeCols(c) },
		func() { rep.ByInterface = ByInterfaceCols(c) },
		func() { rep.Phases, rep.ActiveCoV = phasesAndActivity(c) },
		func() { rep.Bottlenecks = BottlenecksCols(c) },
		func() { rep.Power = PowerCols(c) },
		func() { rep.UserAverages = UserAverages(users()) },
		func() { rep.UserCoV = UserVariability(users()) },
		func() { rep.UserTrends = UserTrends(users()) },
		func() { rep.GPUCounts = GPUCountsCols(c) },
		func() { rep.MultiGPU = MultiGPUCols(c) },
		func() { rep.Lifecycle = LifecycleCols(c) },
		func() { rep.UserMix = UserMixCols(c) },
		func() { rep.Concentration = ConcentrationCols(c) },
		func() { rep.HostCPUUse = HostCPUCols(c) },
	}
	runTasks(workers, tasks)
	return rep
}

// runTasks executes tasks over a bounded pool of workers goroutines. A panic
// inside a task does not wedge the pool: every task still runs to a verdict,
// and the lowest-indexed panic is re-raised on the caller once the pool has
// drained, keeping failure behavior deterministic.
func runTasks(workers int, tasks []func()) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	panics := make([]any, len(tasks))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				func() {
					defer func() {
						if p := recover(); p != nil {
							panics[i] = p
						}
					}()
					tasks[i]()
				}()
			}
		}()
	}
	for i := range tasks {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}
