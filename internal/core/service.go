package core

import (
	"repro/internal/stats"
	"repro/internal/trace"
)

// RuntimeResult is Fig. 3a: run-time CDFs of GPU and CPU jobs, in minutes.
type RuntimeResult struct {
	GPU CDFStat
	CPU CDFStat
}

// Runtimes computes Fig. 3a.
func Runtimes(ds *trace.Dataset) RuntimeResult {
	return RuntimeResult{
		GPU: NewCDFStat(trace.RunMinutes(ds.GPUJobs()), curvePoints),
		CPU: NewCDFStat(trace.RunMinutes(ds.CPUJobs()), curvePoints),
	}
}

// WaitResult is Fig. 3b plus §V's waits by job size: queue waits as raw
// seconds and as percentages of service time.
type WaitResult struct {
	GPUWaitPct CDFStat // wait as % of service time, GPU jobs
	CPUWaitPct CDFStat // wait as % of service time, CPU jobs

	GPUWaitUnder1MinFrac float64 // "70 % of the GPU jobs spend less than one minute in the queue"
	CPUWaitOver1MinFrac  float64 // "70 % of the CPU jobs spend more than one minute"
	GPUWaitPctUnder2Frac float64 // ">50 % of the GPU jobs spend less than 2 % of their service times waiting"

	// MedianWaitBySize indexes §V's size classes: 1 GPU, 2 GPUs, 3–8 GPUs,
	// and 9+ GPUs; values are median waits in seconds.
	MedianWaitBySize [4]float64
}

// SizeClass maps a GPU count onto §V's four size classes.
func SizeClass(numGPUs int) int {
	switch {
	case numGPUs <= 1:
		return 0
	case numGPUs == 2:
		return 1
	case numGPUs <= 8:
		return 2
	default:
		return 3
	}
}

// SizeClassLabel names a §V size class.
func SizeClassLabel(class int) string {
	return [...]string{"1 GPU", "2 GPUs", "3-8 GPUs", ">8 GPUs"}[class]
}

// Waits computes Fig. 3b and the §V wait-by-size medians.
func Waits(ds *trace.Dataset) WaitResult {
	gpuJobs, cpuJobs := ds.GPUJobs(), ds.CPUJobs()
	var r WaitResult

	gpuPct := make([]float64, len(gpuJobs))
	var bySize [4][]float64
	var gpuUnderMin, gpuUnder2 float64
	for i, j := range gpuJobs {
		gpuPct[i] = j.WaitFraction()
		if j.WaitSec < 60 {
			gpuUnderMin++
		}
		if j.WaitFraction() < 2 {
			gpuUnder2++
		}
		c := SizeClass(j.NumGPUs)
		bySize[c] = append(bySize[c], j.WaitSec)
	}
	cpuPct := make([]float64, len(cpuJobs))
	var cpuOverMin float64
	for i, j := range cpuJobs {
		cpuPct[i] = j.WaitFraction()
		if j.WaitSec > 60 {
			cpuOverMin++
		}
	}
	r.GPUWaitPct = NewCDFStat(gpuPct, curvePoints)
	r.CPUWaitPct = NewCDFStat(cpuPct, curvePoints)
	if n := float64(len(gpuJobs)); n > 0 {
		r.GPUWaitUnder1MinFrac = gpuUnderMin / n
		r.GPUWaitPctUnder2Frac = gpuUnder2 / n
	}
	if n := float64(len(cpuJobs)); n > 0 {
		r.CPUWaitOver1MinFrac = cpuOverMin / n
	}
	for c := range bySize {
		r.MedianWaitBySize[c] = stats.Median(bySize[c])
	}
	return r
}
