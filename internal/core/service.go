package core

import (
	"repro/internal/trace"
)

// RuntimeResult is Fig. 3a: run-time CDFs of GPU and CPU jobs, in minutes.
type RuntimeResult struct {
	GPU CDFStat
	CPU CDFStat
}

// Runtimes computes Fig. 3a.
func Runtimes(ds *trace.Dataset) RuntimeResult { return RuntimesCols(ds.Columns()) }

// RuntimesCols computes Fig. 3a from the shared columnar index.
func RuntimesCols(c *trace.Columns) RuntimeResult {
	return RuntimeResult{
		GPU: colCDF(c.RunMin),
		CPU: colCDF(c.CPURunMin),
	}
}

// WaitResult is Fig. 3b plus §V's waits by job size: queue waits as raw
// seconds and as percentages of service time.
type WaitResult struct {
	GPUWaitPct CDFStat // wait as % of service time, GPU jobs
	CPUWaitPct CDFStat // wait as % of service time, CPU jobs

	GPUWaitUnder1MinFrac float64 // "70 % of the GPU jobs spend less than one minute in the queue"
	CPUWaitOver1MinFrac  float64 // "70 % of the CPU jobs spend more than one minute"
	GPUWaitPctUnder2Frac float64 // ">50 % of the GPU jobs spend less than 2 % of their service times waiting"

	// MedianWaitBySize indexes §V's size classes: 1 GPU, 2 GPUs, 3–8 GPUs,
	// and 9+ GPUs; values are median waits in seconds.
	MedianWaitBySize [4]float64
}

// SizeClass maps a GPU count onto §V's four size classes.
func SizeClass(numGPUs int) int { return trace.SizeClass(numGPUs) }

// SizeClassLabel names a §V size class.
func SizeClassLabel(class int) string {
	return [...]string{"1 GPU", "2 GPUs", "3-8 GPUs", ">8 GPUs"}[class]
}

// Waits computes Fig. 3b and the §V wait-by-size medians.
func Waits(ds *trace.Dataset) WaitResult { return WaitsCols(ds.Columns()) }

// WaitsCols computes Fig. 3b from the shared wait columns: the threshold
// fractions become binary searches over the cached sorted views (counts, and
// hence the divisions, match the row scan exactly).
func WaitsCols(c *trace.Columns) WaitResult {
	var r WaitResult
	r.GPUWaitPct = colCDF(c.WaitPct)
	r.CPUWaitPct = colCDF(c.CPUWaitPct)
	if c.WaitSec.N() > 0 {
		r.GPUWaitUnder1MinFrac = c.WaitSec.Stats().FractionBelow(60)
		r.GPUWaitPctUnder2Frac = c.WaitPct.Stats().FractionBelow(2)
	}
	if c.CPUWaitSec.N() > 0 {
		r.CPUWaitOver1MinFrac = c.CPUWaitSec.Stats().FractionAbove(60)
	}
	for s := range c.WaitBySize {
		r.MedianWaitBySize[s] = c.WaitBySize[s].Stats().Quantile(0.5)
	}
	return r
}
