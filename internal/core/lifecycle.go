package core

import (
	"sort"

	"repro/internal/lifecycle"
	"repro/internal/stats"
	"repro/internal/trace"
)

// LifecycleResult is Figs. 15 and 16: the life-cycle breakdown of jobs and
// GPU hours, category medians of run time, and per-category utilization box
// plots.
type LifecycleResult struct {
	// JobShare and HourShare index by trace.Category (Fig. 15a/b).
	JobShare  [trace.NumCategories]float64
	HourShare [trace.NumCategories]float64
	// MedianRunMin per category (§VI: mature 36 min, exploratory 62 min).
	MedianRunMin [trace.NumCategories]float64
	// Boxes[c][k] is the Fig. 16 box plot of category c for metric k
	// (0 = SM, 1 = memory bandwidth, 2 = memory size).
	Boxes [trace.NumCategories][3]stats.BoxStats
	Total int
}

// Lifecycle computes Figs. 15–16 by classifying every GPU job.
func Lifecycle(ds *trace.Dataset) LifecycleResult { return LifecycleCols(ds.Columns()) }

// LifecycleCols computes Figs. 15–16 over the columnar GPU population.
func LifecycleCols(c *trace.Columns) LifecycleResult {
	jobs := c.GPU
	b := lifecycle.Account(jobs)
	groups := lifecycle.GroupByCategory(jobs)
	var r LifecycleResult
	r.Total = b.Total
	for cat := trace.Category(0); cat < trace.NumCategories; cat++ {
		r.JobShare[cat] = b.JobShare(cat)
		r.HourShare[cat] = b.HourShare(cat)
		r.MedianRunMin[cat] = stats.Median(trace.RunMinutes(groups[cat]))
		for mi, m := range multiGPUMetrics {
			r.Boxes[cat][mi] = stats.Box(trace.MeanValues(groups[cat], m))
		}
	}
	return r
}

// UserMixRow is one user's life-cycle composition (one x-position of
// Fig. 17).
type UserMixRow struct {
	User     int
	JobFrac  [trace.NumCategories]float64 // Fig. 17a: share of the user's jobs
	HourFrac [trace.NumCategories]float64 // Fig. 17b: share of the user's GPU hours
	Jobs     int
	GPUHours float64
}

// UserMixResult is Fig. 17: per-user life-cycle mixes sorted by mature
// share, plus the quoted aggregate fractions.
type UserMixResult struct {
	// ByJobs is sorted ascending by mature job share (Fig. 17a's x-axis);
	// ByHours by mature hour share (Fig. 17b).
	ByJobs  []UserMixRow
	ByHours []UserMixRow
	// UsersUnder40PctMatureJobs: ">50 % of the users have <40 % mature jobs".
	UsersUnder40PctMatureJobs float64
	// UsersOver60PctNonMatureHours: "for more than 25 % of the users,
	// exploratory, development, and IDE jobs constitute over 60 % of all of
	// their GPU hours".
	UsersOver60PctNonMatureHours float64
}

// UserMix computes Fig. 17.
func UserMix(ds *trace.Dataset) UserMixResult { return UserMixCols(ds.Columns()) }

// UserMixCols computes Fig. 17 from the per-user row index.
func UserMixCols(c *trace.Columns) UserMixResult {
	hourVals := c.GPUHours.Values()
	rows := make([]UserMixRow, 0, len(c.Users))
	for _, u := range c.Users {
		idx := c.ByUser[u]
		row := UserMixRow{User: u, Jobs: len(idx)}
		var hours [trace.NumCategories]float64
		var counts [trace.NumCategories]float64
		for _, k := range idx {
			cat := lifecycle.Classify(c.GPU[k])
			counts[cat]++
			h := hourVals[k]
			hours[cat] += h
			row.GPUHours += h
		}
		for cat := trace.Category(0); cat < trace.NumCategories; cat++ {
			row.JobFrac[cat] = counts[cat] / float64(row.Jobs)
			if row.GPUHours > 0 {
				row.HourFrac[cat] = hours[cat] / row.GPUHours
			}
		}
		rows = append(rows, row)
	}
	return finishUserMix(rows)
}

// finishUserMix sorts the per-user rows into the two Fig. 17 orderings and
// derives the aggregate fractions; shared by the naive and columnar paths.
func finishUserMix(rows []UserMixRow) UserMixResult {
	var r UserMixResult
	r.ByJobs = append([]UserMixRow(nil), rows...)
	sort.Slice(r.ByJobs, func(a, b int) bool {
		if r.ByJobs[a].JobFrac[trace.Mature] != r.ByJobs[b].JobFrac[trace.Mature] {
			return r.ByJobs[a].JobFrac[trace.Mature] < r.ByJobs[b].JobFrac[trace.Mature]
		}
		return r.ByJobs[a].User < r.ByJobs[b].User
	})
	r.ByHours = append([]UserMixRow(nil), rows...)
	sort.Slice(r.ByHours, func(a, b int) bool {
		if r.ByHours[a].HourFrac[trace.Mature] != r.ByHours[b].HourFrac[trace.Mature] {
			return r.ByHours[a].HourFrac[trace.Mature] < r.ByHours[b].HourFrac[trace.Mature]
		}
		return r.ByHours[a].User < r.ByHours[b].User
	})
	if len(rows) > 0 {
		var under40, over60 float64
		for _, row := range rows {
			if row.JobFrac[trace.Mature] < 0.40 {
				under40++
			}
			if 1-row.HourFrac[trace.Mature] > 0.60 {
				over60++
			}
		}
		n := float64(len(rows))
		r.UsersUnder40PctMatureJobs = under40 / n
		r.UsersOver60PctNonMatureHours = over60 / n
	}
	return r
}
