package core

import (
	"math"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

func TestArrivalsDetectsDeadlineSurges(t *testing.T) {
	ds, _ := testReport(t)
	a := Arrivals(ds, 0)
	if len(a.DailyCounts) != 125 {
		t.Fatalf("daily counts cover %d days", len(a.DailyCounts))
	}
	// Weekday load exceeds weekend load (calibrated factor 0.55).
	if a.WeekdayMean <= a.WeekendMean {
		t.Fatalf("weekday %v <= weekend %v", a.WeekdayMean, a.WeekendMean)
	}
	// The generator injects surges before deadline days 45 and 105; at
	// least one detected window must overlap each pre-deadline stretch.
	overlaps := func(lo, hi int) bool {
		for _, w := range a.SurgeWindows {
			if w.EndDay >= lo && w.StartDay <= hi {
				return true
			}
		}
		return false
	}
	if !overlaps(35, 45) {
		t.Errorf("no surge detected before deadline day 45: %+v", a.SurgeWindows)
	}
	if !overlaps(95, 105) {
		t.Errorf("no surge detected before deadline day 105: %+v", a.SurgeWindows)
	}
	for _, w := range a.SurgeWindows {
		if w.MeanLoadFactor < 1.1 {
			t.Errorf("sub-threshold window reported: %+v", w)
		}
		if w.Days() < 1 {
			t.Errorf("empty window: %+v", w)
		}
	}
}

func TestArrivalsNoFalseSurgesOnFlatLoad(t *testing.T) {
	ds := trace.NewDataset(30)
	id := int64(1)
	for d := 0; d < 30; d++ {
		for k := 0; k < 10; k++ {
			ds.Add(trace.JobRecord{JobID: id, SubmitSec: float64(d)*86400 + float64(k)*1000, RunSec: 60, NumGPUs: 1})
			id++
		}
	}
	a := Arrivals(ds, 0)
	if len(a.SurgeWindows) != 0 {
		t.Fatalf("flat load produced surges: %+v", a.SurgeWindows)
	}
	if math.Abs(a.WeekdayMean-10) > 1e-9 || math.Abs(a.WeekendMean-10) > 1e-9 {
		t.Fatalf("flat means: %v / %v", a.WeekdayMean, a.WeekendMean)
	}
}

func TestArrivalsEmpty(t *testing.T) {
	a := Arrivals(trace.NewDataset(0), 0)
	if len(a.DailyCounts) != 0 || len(a.SurgeWindows) != 0 {
		t.Fatalf("empty dataset: %+v", a)
	}
}

func TestComparePaperAllExtractorsRun(t *testing.T) {
	_, r := testReport(t)
	comps := ComparePaper(r)
	if len(comps) < 40 {
		t.Fatalf("only %d targets", len(comps))
	}
	inBand := 0
	for _, c := range comps {
		if math.IsNaN(c.Measured) {
			t.Errorf("%s / %s measured NaN", c.Figure, c.Quantity)
		}
		if c.BandLo > c.Paper || c.Paper > c.BandHi {
			// Bands are shape-tolerances around the paper value except where
			// EXPERIMENTS.md documents a known deviation (p75, Fig10 run).
			if c.Quantity != "GPU run p75 (min)" && c.Quantity != "user avg run median (min)" {
				t.Errorf("%s / %s: paper value %v outside its own band [%v, %v]",
					c.Figure, c.Quantity, c.Paper, c.BandLo, c.BandHi)
			}
		}
		if c.InBand {
			inBand++
		}
	}
	// The reproduction contract: at least 90% of targets in band.
	if frac := float64(inBand) / float64(len(comps)); frac < 0.9 {
		t.Errorf("only %.0f%% of paper targets in band", frac*100)
	}
	t.Logf("%d/%d paper targets in band", inBand, len(comps))
}

func TestPaperTargetsOnGeneratedDefaults(t *testing.T) {
	// A different seed at a different scale must still satisfy the contract
	// (guards against calibrating to one lucky seed).
	cfg := workload.ScaledConfig(0.08)
	cfg.Seed = 99
	g, err := workload.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := Characterize(g.BuildDataset(g.GenerateSpecs()))
	comps := ComparePaper(rep)
	inBand := 0
	for _, c := range comps {
		if c.InBand {
			inBand++
		}
	}
	if frac := float64(inBand) / float64(len(comps)); frac < 0.85 {
		for _, c := range comps {
			if !c.InBand {
				t.Logf("MISS %s / %s: %v not in [%v, %v]", c.Figure, c.Quantity, c.Measured, c.BandLo, c.BandHi)
			}
		}
		t.Errorf("seed 99: only %.0f%% of targets in band", frac*100)
	}
}
