package core

import (
	"math"

	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/trace"
)

// UtilizationResult is Fig. 4a: CDFs of average SM, memory-bandwidth and
// memory-size utilization, plus the >50 % fractions the paper quotes.
type UtilizationResult struct {
	SM, Mem, MemSize                CDFStat
	SMOver50, MemOver50, SizeOver50 float64
	// NearZeroSMFrac is §III's "a large portion of the jobs (≈30 %) have
	// close to zero GPU SM utilization" (mean SM below 5 %).
	NearZeroSMFrac float64
}

// Utilization computes Fig. 4a over the GPU-job population.
func Utilization(ds *trace.Dataset) UtilizationResult { return UtilizationCols(ds.Columns()) }

// UtilizationCols computes Fig. 4a from the shared mean-utilization columns:
// one cached sort per metric serves the CDF and all threshold fractions.
func UtilizationCols(c *trace.Columns) UtilizationResult {
	sm := c.Mean[metrics.SMUtil].Sorted()
	mem := c.Mean[metrics.MemUtil].Sorted()
	msz := c.Mean[metrics.MemSize].Sorted()
	return UtilizationResult{
		SM:             cdfFromECDF(stats.NewECDFSorted(sm)),
		Mem:            cdfFromECDF(stats.NewECDFSorted(mem)),
		MemSize:        cdfFromECDF(stats.NewECDFSorted(msz)),
		SMOver50:       stats.FractionAboveSorted(sm, 50),
		MemOver50:      stats.FractionAboveSorted(mem, 50),
		SizeOver50:     stats.FractionAboveSorted(msz, 50),
		NearZeroSMFrac: stats.FractionBelowSorted(sm, 5),
	}
}

// PCIeResult is Fig. 4b: PCIe Tx/Rx bandwidth-utilization CDFs with the
// Kolmogorov–Smirnov distance to a uniform law quantifying the paper's
// "linearly increasing empirical CDF" observation.
type PCIeResult struct {
	Tx, Rx                   CDFStat
	TxUniformKS, RxUniformKS float64
}

// PCIe computes Fig. 4b.
func PCIe(ds *trace.Dataset) PCIeResult { return PCIeCols(ds.Columns()) }

// PCIeCols computes Fig. 4b from the shared PCIe columns: one ECDF per
// direction serves both the curve digest and the KS distance.
func PCIeCols(c *trace.Columns) PCIeResult {
	txE := stats.NewECDFSorted(c.Mean[metrics.PCIeTx].Sorted())
	rxE := stats.NewECDFSorted(c.Mean[metrics.PCIeRx].Sorted())
	return PCIeResult{
		Tx:          cdfFromECDF(txE),
		Rx:          cdfFromECDF(rxE),
		TxUniformKS: txE.UniformityDistance(txE.Min(), txE.Max()),
		RxUniformKS: rxE.UniformityDistance(rxE.Min(), rxE.Max()),
	}
}

// InterfaceResult is Fig. 5: utilization by submission interface.
type InterfaceResult struct {
	// Share is each interface's fraction of GPU jobs (paper: map-reduce 1 %,
	// batch 30 %, interactive 4 %, other 65 %).
	Share [trace.NumInterfaces]float64
	// SM and Mem hold per-interface distributions of job-average
	// utilization.
	SM  [trace.NumInterfaces]CDFStat
	Mem [trace.NumInterfaces]CDFStat
}

// ByInterface computes Fig. 5.
func ByInterface(ds *trace.Dataset) InterfaceResult { return ByInterfaceCols(ds.Columns()) }

// ByInterfaceCols computes Fig. 5 by gathering the mean-utilization columns
// through the per-interface row index.
func ByInterfaceCols(c *trace.Columns) InterfaceResult {
	var r InterfaceResult
	total := len(c.GPU)
	for iface := range c.ByIface {
		idx := c.ByIface[iface]
		if total > 0 {
			r.Share[iface] = float64(len(idx)) / float64(total)
		}
		r.SM[iface] = ownedCDF(trace.Gather(c.Mean[metrics.SMUtil], idx))
		r.Mem[iface] = ownedCDF(trace.Gather(c.Mean[metrics.MemUtil], idx))
	}
	return r
}

// PowerResult is Fig. 9a: CDFs of average and maximum GPU power draw.
type PowerResult struct {
	Avg, Max CDFStat
	// TDPWatts is the device limit for context (V100: 300 W).
	TDPWatts float64
}

// Power computes Fig. 9a. The TDP reported is the maximum observed device
// capability; with a single-GPU-model fleet it is the V100's 300 W.
func Power(ds *trace.Dataset) PowerResult { return PowerCols(ds.Columns()) }

// PowerCols computes Fig. 9a from the power columns.
func PowerCols(c *trace.Columns) PowerResult {
	return PowerResult{
		Avg:      colCDF(c.Mean[metrics.Power]),
		Max:      colCDF(c.Max[metrics.Power]),
		TDPWatts: 300,
	}
}

// GPUCountResult is Fig. 13: the job-size distribution and GPU-hour shares.
type GPUCountResult struct {
	// FracByCount[k] is the fraction of jobs using exactly k GPUs
	// (index 0 unused).
	FracByCount map[int]float64
	// SingleGPUFrac, MultiGPUFrac, Over2Frac, NinePlusFrac are the quoted
	// fractions (84 %, 16 %, 2.4 %, <1 %).
	SingleGPUFrac, MultiGPUFrac, Over2Frac, NinePlusFrac float64
	// HourShareBySizeClass splits total GPU hours over §V size classes.
	HourShareBySizeClass [4]float64
	// MultiGPUHourShare is the multi-GPU jobs' share of all GPU hours
	// (paper: ≈50 %).
	MultiGPUHourShare float64
}

// GPUCounts computes Fig. 13.
func GPUCounts(ds *trace.Dataset) GPUCountResult { return GPUCountsCols(ds.Columns()) }

// GPUCountsCols computes Fig. 13 from the GPU-count and GPU-hour columns,
// accumulating in dataset order so the hour shares match the row scan.
func GPUCountsCols(c *trace.Columns) GPUCountResult {
	r := GPUCountResult{FracByCount: map[int]float64{}}
	if len(c.GPU) == 0 {
		return r
	}
	var hours [4]float64
	var total, multiHours float64
	hourVals := c.GPUHours.Values()
	for i, g := range c.NumGPUs {
		r.FracByCount[g]++
		h := hourVals[i]
		hours[trace.SizeClass(g)] += h
		total += h
		switch {
		case g == 1:
			r.SingleGPUFrac++
		default:
			r.MultiGPUFrac++
			multiHours += h
		}
		if g > 2 {
			r.Over2Frac++
		}
		if g >= 9 {
			r.NinePlusFrac++
		}
	}
	n := float64(len(c.GPU))
	for k := range r.FracByCount {
		r.FracByCount[k] /= n
	}
	r.SingleGPUFrac /= n
	r.MultiGPUFrac /= n
	r.Over2Frac /= n
	r.NinePlusFrac /= n
	if total > 0 {
		for sc := range hours {
			r.HourShareBySizeClass[sc] = hours[sc] / total
		}
		r.MultiGPUHourShare = multiHours / total
	}
	return r
}

// MultiGPUResult is Fig. 14: variability of utilization across the GPUs of
// multi-GPU jobs, with and without idle GPUs.
type MultiGPUResult struct {
	// CoVAllGPUs and CoVActiveGPUs are distributions of the per-job CoV of
	// mean utilization across GPUs, for SM, memory and memory size.
	CoVAllGPUs    [3]CDFStat
	CoVActiveGPUs [3]CDFStat
	// IdleGPUJobFrac is the share of multi-GPU jobs with at least one idle
	// GPU (paper: ≈40 % have half or more idle).
	IdleGPUJobFrac float64
	// HalfIdleJobFrac is the share with half or more GPUs idle.
	HalfIdleJobFrac float64
}

// multiGPUMetrics are the three Fig. 14 metrics.
var multiGPUMetrics = [3]metrics.Metric{metrics.SMUtil, metrics.MemUtil, metrics.MemSize}

// idleGPUMeanSM is the threshold below which a GPU counts as idle for the
// whole job ("average utilization of close to zero for all resources").
const idleGPUMeanSM = 1.0

// MultiGPU computes Fig. 14 from per-GPU summaries.
func MultiGPU(ds *trace.Dataset) MultiGPUResult { return MultiGPUCols(ds.Columns()) }

// MultiGPUCols computes Fig. 14 over the pre-filtered multi-GPU population,
// reusing two scratch vectors across jobs instead of allocating per metric.
func MultiGPUCols(c *trace.Columns) MultiGPUResult {
	var r MultiGPUResult
	jobs := c.Multi
	var all, active [3][]float64
	var withIdle, halfIdle, considered float64
	var vals, act []float64
	for _, j := range jobs {
		if len(j.PerGPU) < 2 {
			continue
		}
		considered++
		idle := 0
		for _, g := range j.PerGPU {
			if g[metrics.SMUtil].Mean < idleGPUMeanSM && g[metrics.MemUtil].Mean < idleGPUMeanSM {
				idle++
			}
		}
		if idle > 0 {
			withIdle++
		}
		if idle*2 >= len(j.PerGPU) {
			halfIdle++
		}
		for mi, m := range multiGPUMetrics {
			vals, act = vals[:0], act[:0]
			for _, g := range j.PerGPU {
				vals = append(vals, g[m].Mean)
				if g[metrics.SMUtil].Mean >= idleGPUMeanSM || g[metrics.MemUtil].Mean >= idleGPUMeanSM {
					act = append(act, g[m].Mean)
				}
			}
			if cov := stats.CoV(vals); !isNaN(cov) {
				all[mi] = append(all[mi], cov)
			}
			if len(act) >= 2 {
				if cov := stats.CoV(act); !isNaN(cov) {
					active[mi] = append(active[mi], cov)
				}
			} else if len(act) == 1 {
				// One active GPU: no cross-GPU variability among active GPUs.
				active[mi] = append(active[mi], 0)
			}
		}
	}
	for mi := range multiGPUMetrics {
		r.CoVAllGPUs[mi] = ownedCDF(all[mi])
		r.CoVActiveGPUs[mi] = ownedCDF(active[mi])
	}
	if considered > 0 {
		r.IdleGPUJobFrac = withIdle / considered
		r.HalfIdleJobFrac = halfIdle / considered
	} else if len(jobs) > 0 {
		// Multi-GPU jobs exist but carry no per-GPU digests (the CSV path
		// flattens them): the idle-GPU question is unanswerable, not zero.
		r.IdleGPUJobFrac = math.NaN()
		r.HalfIdleJobFrac = math.NaN()
	}
	return r
}

func isNaN(v float64) bool { return v != v }
