package slurm

import (
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TelemetryPoint is one sample of cluster state, recorded at every
// scheduling event.
type TelemetryPoint struct {
	TimeSec  float64
	BusyGPUs int
	QueueLen int
	// DownGPUs is the capacity lost to node outages at this instant (always
	// zero without a fault plan).
	DownGPUs int
}

// Telemetry accumulates the cluster-state series of a run when enabled via
// EnableTelemetry. The series is event-driven (one point per event batch),
// which captures every transition without a polling cadence.
type Telemetry struct {
	Points []TelemetryPoint
	// maxPoints caps memory; after the cap, points are thinned by dropping
	// every other sample (retaining the envelope shape).
	maxPoints int
}

// EnableTelemetry attaches an event-driven state recorder to the simulator.
// maxPoints bounds memory (minimum 1024; 0 selects the default 65536).
func (s *Simulator) EnableTelemetry(maxPoints int) *Telemetry {
	if maxPoints <= 0 {
		maxPoints = 65536
	}
	if maxPoints < 1024 {
		maxPoints = 1024
	}
	s.telemetry = &Telemetry{maxPoints: maxPoints}
	return s.telemetry
}

// record appends a state sample, thinning when over budget.
func (t *Telemetry) record(timeSec float64, busyGPUs, queueLen, downGPUs int) {
	if n := len(t.Points); n > 0 && t.Points[n-1].TimeSec == timeSec {
		// Collapse same-instant event batches into their final state.
		t.Points[n-1].BusyGPUs = busyGPUs
		t.Points[n-1].QueueLen = queueLen
		t.Points[n-1].DownGPUs = downGPUs
		return
	}
	t.Points = append(t.Points, TelemetryPoint{TimeSec: timeSec, BusyGPUs: busyGPUs, QueueLen: queueLen, DownGPUs: downGPUs})
	if len(t.Points) >= t.maxPoints {
		kept := t.Points[:0]
		for i := 0; i < len(t.Points); i += 2 {
			kept = append(kept, t.Points[i])
		}
		t.Points = kept
	}
}

// AvailabilityMean returns the time-weighted mean fraction of GPU capacity
// in service over the recorded window.
func (t *Telemetry) AvailabilityMean(totalGPUs int) float64 {
	if len(t.Points) < 2 || totalGPUs == 0 {
		return 1
	}
	var weighted, total float64
	for i := 1; i < len(t.Points); i++ {
		dur := t.Points[i].TimeSec - t.Points[i-1].TimeSec
		if dur <= 0 {
			continue
		}
		weighted += dur * float64(totalGPUs-t.Points[i-1].DownGPUs)
		total += dur
	}
	if total == 0 {
		return 1
	}
	return weighted / (total * float64(totalGPUs))
}

// PeakQueueLen returns the largest observed queue depth.
func (t *Telemetry) PeakQueueLen() int {
	peak := 0
	for _, p := range t.Points {
		if p.QueueLen > peak {
			peak = p.QueueLen
		}
	}
	return peak
}

// OccupancyQuantiles returns the time-weighted busy-GPU distribution at the
// given probabilities.
func (t *Telemetry) OccupancyQuantiles(totalGPUs int, ps ...float64) []float64 {
	if len(t.Points) < 2 || totalGPUs == 0 {
		out := make([]float64, len(ps))
		for i := range out {
			out[i] = 0
		}
		return out
	}
	// Expand into duration-weighted samples of occupancy fraction.
	var vals []float64
	for i := 1; i < len(t.Points); i++ {
		dur := t.Points[i].TimeSec - t.Points[i-1].TimeSec
		if dur <= 0 {
			continue
		}
		// Weight by duration in whole "ticks" of the mean gap to keep the
		// sample count bounded.
		frac := float64(t.Points[i-1].BusyGPUs) / float64(totalGPUs)
		vals = append(vals, frac)
		_ = dur
	}
	return stats.Quantiles(vals, ps...)
}

// WaitBySize groups DES-measured queue waits by §V size class and returns
// the per-class medians — the discrete-event counterpart of the analytic
// path's core.Waits medians.
func WaitBySize(specs []workload.JobSpec, results map[int64]*Result) [4]float64 {
	var bySize [4][]float64
	for i := range specs {
		sp := &specs[i]
		if !sp.IsGPU() {
			continue
		}
		res := results[sp.ID]
		if res == nil {
			continue
		}
		c := core.SizeClass(sp.NumGPUs)
		bySize[c] = append(bySize[c], res.WaitSec)
	}
	var out [4]float64
	for c := range bySize {
		out[c] = stats.Median(bySize[c])
	}
	return out
}
