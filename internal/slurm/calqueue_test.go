package slurm

import (
	"math/rand"
	"testing"
)

// popBoth pops both queues and asserts they agree exactly.
func popBoth(t *testing.T, cal *calQueue, spec *heapEventQueue) (event, bool) {
	t.Helper()
	ec, okc := cal.Pop()
	es, oks := spec.Pop()
	if okc != oks || ec != es {
		t.Fatalf("queues diverged: calendar %+v (ok=%v), heap %+v (ok=%v)", ec, okc, es, oks)
	}
	if cal.Len() != spec.Len() {
		t.Fatalf("length diverged: calendar %d, heap %d", cal.Len(), spec.Len())
	}
	return ec, okc
}

// drainBoth empties both queues in lockstep.
func drainBoth(t *testing.T, cal *calQueue, spec *heapEventQueue) {
	t.Helper()
	for {
		if _, ok := popBoth(t, cal, spec); !ok {
			return
		}
	}
}

// TestCalQueueRandomizedVsHeap interleaves random pushes and pops on the
// calendar queue and the heap spec, with heavy same-timestamp collisions
// (quantized times) and occasional far-future outliers, and checks every pop
// agrees. Deterministic seeds; the fuzz target explores beyond them.
func TestCalQueueRandomizedVsHeap(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		rng := rand.New(rand.NewSource(seed))
		cal := newCalQueue(nil)
		spec := naiveNewEventQueue(nil)
		seq := 0
		push := func(tsec float64) {
			e := event{
				timeSec: tsec,
				kind:    eventKind(rng.Intn(6)),
				idx:     rng.Intn(64),
				seq:     seq,
			}
			seq++
			cal.Push(e)
			spec.Push(e)
		}
		now := 0.0
		for op := 0; op < 20000; op++ {
			switch r := rng.Intn(10); {
			case r < 5:
				// Quantized times: 1-in-8 land on an existing instant.
				push(now + float64(rng.Intn(256))*37.5)
			case r == 5:
				// Far-future outlier, deep past the live window.
				push(now + 1e6 + float64(rng.Intn(1000))*1e4)
			case r == 6:
				// Exactly "now": collides with the last popped instant.
				push(now)
			default:
				if e, ok := popBoth(t, cal, spec); ok {
					now = e.timeSec
				}
			}
		}
		drainBoth(t, cal, spec)
	}
}

// TestCalQueueSparseJump exercises the direct-search fallback: a handful of
// events separated by gaps far wider than one ring revolution.
func TestCalQueueSparseJump(t *testing.T) {
	cal := newCalQueue(nil)
	spec := naiveNewEventQueue(nil)
	for i := 0; i < 10; i++ {
		e := event{timeSec: float64(i) * 1e8, kind: evFinish, seq: i}
		cal.Push(e)
		spec.Push(e)
	}
	drainBoth(t, cal, spec)
}

// TestCalQueueResizeChurn drives the queue through both resize directions:
// grow far past the initial geometry, then drain to force shrink rebuilds.
func TestCalQueueResizeChurn(t *testing.T) {
	initial := make([]event, 128)
	for i := range initial {
		initial[i] = event{timeSec: float64(i), kind: evSubmit, seq: i}
	}
	cal := newCalQueue(initial)
	spec := naiveNewEventQueue(initial)
	for i := 0; i < 30000; i++ {
		e := event{timeSec: float64(128 + i%4096), kind: evFinish, seq: 128 + i}
		cal.Push(e)
		spec.Push(e)
	}
	for i := 0; i < 25000; i++ {
		popBoth(t, cal, spec)
	}
	for i := 0; i < 1000; i++ {
		e := event{timeSec: 5000 + float64(i)*0.25, kind: evRequeue, seq: 40000 + i}
		cal.Push(e)
		spec.Push(e)
	}
	drainBoth(t, cal, spec)
}

// TestCalQueueInitialOrder checks the constructor path alone: a batch of
// initial events (duplicated instants included) pops in exactly the
// event.before order.
func TestCalQueueInitialOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	initial := make([]event, 5000)
	for i := range initial {
		initial[i] = event{
			timeSec: float64(rng.Intn(500)) * 61.7,
			kind:    eventKind(rng.Intn(6)),
			seq:     i,
		}
	}
	cal := newCalQueue(initial)
	spec := naiveNewEventQueue(initial)
	if cal.Len() != len(initial) {
		t.Fatalf("Len = %d after init, want %d", cal.Len(), len(initial))
	}
	var prev event
	first := true
	for {
		e, ok := popBoth(t, cal, spec)
		if !ok {
			break
		}
		if !first && e.before(prev) {
			t.Fatalf("order violation: %+v popped after %+v", e, prev)
		}
		prev, first = e, false
	}
}
