//go:build race

package slurm

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
