package slurm

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// smallCluster returns a 8-node test machine.
func smallCluster() cluster.Config {
	cfg := cluster.SupercloudConfig()
	cfg.Nodes = 8
	return cfg
}

// mkGPUSpec builds a minimal GPU job spec with an always-active profile.
func mkGPUSpec(t *testing.T, id int64, submit, run float64, gpus int) workload.JobSpec {
	t.Helper()
	sp := workload.JobSpec{
		ID: id, User: 0, Interface: trace.Other, Exit: trace.ExitSuccess,
		SubmitSec: submit, RunSec: run, LimitSec: 86400,
		NumGPUs: gpus, CoresPerGPU: 4, MemGBPerGPU: 32,
	}
	for g := 0; g < gpus; g++ {
		p, err := workload.NewProfile([]workload.Phase{
			{DurSec: run, Active: true, Level: gpu.Utilization{SMPct: 50, MemPct: 10, MemSizePct: 20}},
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		sp.Profiles = append(sp.Profiles, p)
	}
	return sp
}

func mkCPUSpec(id int64, submit, run float64, cores int, exclusive bool) workload.JobSpec {
	return workload.JobSpec{
		ID: id, User: 1, Interface: trace.Batch, Exit: trace.ExitSuccess,
		SubmitSec: submit, RunSec: run, LimitSec: 86400,
		Cores: cores, MemGB: 64, Exclusive: exclusive,
	}
}

func runSim(t *testing.T, cfg Config, specs []workload.JobSpec) (*Simulator, map[int64]*Result, Stats) {
	t.Helper()
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, st, err := sim.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	return sim, res, st
}

func TestImmediateStartOnIdleCluster(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster = smallCluster()
	specs := []workload.JobSpec{mkGPUSpec(t, 1, 100, 600, 2)}
	_, res, st := runSim(t, cfg, specs)
	r := res[1]
	if r.WaitSec != 0 {
		t.Fatalf("wait = %v on idle cluster", r.WaitSec)
	}
	if r.EndSec != 700 {
		t.Fatalf("end = %v", r.EndSec)
	}
	if st.Completed != 1 {
		t.Fatalf("completed = %d", st.Completed)
	}
	// 2 GPU × 600 s busy.
	if math.Abs(st.GPUBusyHours-2*600.0/3600) > 1e-9 {
		t.Fatalf("busy hours = %v", st.GPUBusyHours)
	}
}

func TestQueueingWhenGPUsExhausted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster = smallCluster() // 16 GPUs
	var specs []workload.JobSpec
	// 17 single-GPU jobs of 1000 s submitted together: one must wait.
	for i := int64(1); i <= 17; i++ {
		specs = append(specs, mkGPUSpec(t, i, 0, 1000, 1))
	}
	_, res, _ := runSim(t, cfg, specs)
	var waits []float64
	for _, r := range res {
		waits = append(waits, r.WaitSec)
	}
	sum := stats.Sum(waits)
	if math.Abs(sum-1000) > 1e-6 {
		t.Fatalf("total wait = %v, want exactly one 1000s wait", sum)
	}
}

func TestColocationKeepsGPUWaitsLow(t *testing.T) {
	// A stream of CPU-light GPU jobs plus node-hungry CPU jobs: with
	// co-location, GPU jobs squeeze in beside CPU slices; the exclusive-node
	// ablation forces them to wait. This is the Fig. 3b mechanism.
	build := func() []workload.JobSpec {
		var specs []workload.JobSpec
		id := int64(1)
		// Six shared 30-core CPU jobs drain the cores of nodes 0–4.
		for i := 0; i < 6; i++ {
			specs = append(specs, mkCPUSpec(id, 0, 50000, 30, false))
			id++
		}
		// 8 single-GPU jobs (4 cores each) arrive shortly after.
		for i := 0; i < 8; i++ {
			specs = append(specs, mkGPUSpec(t, id, 10, 2000, 1))
			id++
		}
		return specs
	}
	colo := DefaultConfig()
	colo.Cluster = smallCluster()
	_, resColo, _ := runSim(t, colo, build())

	excl := DefaultConfig()
	excl.Cluster = smallCluster()
	excl.Policy.Colocate = false
	_, resExcl, _ := runSim(t, excl, build())

	var coloWait, exclWait float64
	for id := int64(7); id <= 14; id++ {
		coloWait += resColo[id].WaitSec
		exclWait += resExcl[id].WaitSec
	}
	if coloWait != 0 {
		t.Fatalf("co-located GPU jobs waited %v s; enough GPUs reachable beside CPU slices", coloWait)
	}
	if exclWait <= coloWait {
		t.Fatalf("exclusive ablation should inflate waits: colo=%v excl=%v", coloWait, exclWait)
	}
}

func TestMultiGPUPriority(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster = smallCluster() // 16 GPUs
	var specs []workload.JobSpec
	// Fill the machine.
	specs = append(specs, mkGPUSpec(t, 1, 0, 1000, 16))
	// A single-GPU job queues first, then a 4-GPU job.
	specs = append(specs, mkGPUSpec(t, 2, 1, 500, 1))
	specs = append(specs, mkGPUSpec(t, 3, 2, 500, 4))
	_, res, _ := runSim(t, cfg, specs)
	// Both start when the filler ends, but the multi-GPU job must not start
	// later than the single-GPU job despite submitting later.
	if res[3].StartSec > res[2].StartSec {
		t.Fatalf("multi-GPU start %v after single-GPU start %v", res[3].StartSec, res[2].StartSec)
	}
}

func TestBackfillFillsGaps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster = smallCluster()
	var specs []workload.JobSpec
	// Leave one free GPU: a 15-GPU filler.
	specs = append(specs, mkGPUSpec(t, 1, 0, 10000, 15))
	// A 16-GPU job cannot start; a later 1-GPU job can backfill.
	specs = append(specs, mkGPUSpec(t, 2, 1, 1000, 16))
	specs = append(specs, mkGPUSpec(t, 3, 2, 100, 1))
	_, res, _ := runSim(t, cfg, specs)
	if res[3].WaitSec != 0 {
		t.Fatalf("backfill job waited %v", res[3].WaitSec)
	}
	if res[2].StartSec < 10000 {
		t.Fatalf("16-GPU job started at %v before filler ended", res[2].StartSec)
	}

	// Without backfill, the blocked head stalls the 1-GPU job too.
	strict := cfg
	strict.Policy.BackfillDepth = 0
	var specs2 []workload.JobSpec
	specs2 = append(specs2, mkGPUSpec(t, 1, 0, 10000, 15))
	specs2 = append(specs2, mkGPUSpec(t, 2, 1, 1000, 16))
	specs2 = append(specs2, mkGPUSpec(t, 3, 2, 100, 1))
	_, res2, _ := runSim(t, strict, specs2)
	if res2[3].WaitSec == 0 {
		t.Fatal("strict FIFO should have blocked the small job")
	}
}

func TestDensePlacementOfMultiGPUJobs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster = smallCluster()
	specs := []workload.JobSpec{mkGPUSpec(t, 1, 0, 100, 4)}
	_, res, _ := runSim(t, cfg, specs)
	if res[1].NodeSpan != 2 {
		t.Fatalf("4-GPU job spans %d nodes, want 2 (dense)", res[1].NodeSpan)
	}
}

func TestMonitoringIntegration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster = smallCluster()
	mc := monitor.DefaultConfig()
	mc.GPUIntervalSec = 5
	cfg.Monitor = &mc
	cfg.MonitorSeed = 3
	cfg.DetailedJobs = map[int64]bool{2: true}
	specs := []workload.JobSpec{
		mkGPUSpec(t, 1, 0, 600, 1),
		mkGPUSpec(t, 2, 0, 600, 2),
		mkCPUSpec(3, 0, 600, 20, false),
	}
	sim, res, _ := runSim(t, cfg, specs)
	ds := sim.BuildDataset(specs, res, 1)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if n := len(ds.GPUJobs()); n != 2 {
		t.Fatalf("GPU jobs in dataset = %d", n)
	}
	// Monitored summaries close to the profile's 50 % SM.
	j := ds.GPUJobs()[0]
	if math.Abs(j.GPU[metrics.SMUtil].Mean-50) > 3 {
		t.Fatalf("monitored SM mean = %v", j.GPU[metrics.SMUtil].Mean)
	}
	// Only the detailed job carries a series.
	if ds.Series[2] == nil || ds.Series[1] != nil {
		t.Fatalf("series retention wrong: %v", ds.Series)
	}
	if len(ds.Series[2].PerGPU) != 2 {
		t.Fatalf("detailed job series has %d GPU streams", len(ds.Series[2].PerGPU))
	}
}

func TestDatasetWithoutMonitorUsesAnalyticSummaries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster = smallCluster()
	specs := []workload.JobSpec{mkGPUSpec(t, 1, 0, 600, 1)}
	sim, res, _ := runSim(t, cfg, specs)
	ds := sim.BuildDataset(specs, res, 1)
	j := ds.GPUJobs()[0]
	if j.GPU[metrics.SMUtil].Mean != 50 {
		t.Fatalf("analytic SM mean = %v", j.GPU[metrics.SMUtil].Mean)
	}
}

func TestEndToEndGeneratedWorkload(t *testing.T) {
	// Run a small generated population through the scheduler and check the
	// Fig. 3b ordering emerges: GPU jobs wait less than CPU jobs.
	gcfg := workload.ScaledConfig(0.01)
	gcfg.Seed = 5
	gen, err := workload.NewGenerator(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	specs := gen.GenerateSpecs()

	cfg := DefaultConfig()
	// Shrink the cluster so contention exists at 1 % workload scale.
	cfg.Cluster.Nodes = 6
	sim, res, st, err := func() (*Simulator, map[int64]*Result, Stats, error) {
		sim, err := NewSimulator(cfg)
		if err != nil {
			return nil, nil, Stats{}, err
		}
		r, s, err := sim.Run(specs)
		return sim, r, s, err
	}()
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != len(specs) {
		t.Fatalf("completed %d of %d", st.Completed, len(specs))
	}
	ds := sim.BuildDataset(specs, res, gcfg.DurationDays)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	var gpuWaits, cpuWaits []float64
	for _, j := range ds.GPUJobs() {
		gpuWaits = append(gpuWaits, j.WaitSec)
	}
	for _, j := range ds.CPUJobs() {
		cpuWaits = append(cpuWaits, j.WaitSec)
	}
	if stats.Mean(gpuWaits) > stats.Mean(cpuWaits) {
		t.Fatalf("GPU jobs wait more than CPU jobs: %v vs %v (Fig. 3b ordering broken)",
			stats.Mean(gpuWaits), stats.Mean(cpuWaits))
	}
	if occ := st.MeanGPUOccupancy(); occ <= 0 || occ > 1 {
		t.Fatalf("occupancy = %v", occ)
	}
}

func TestSimulatorDeterminism(t *testing.T) {
	gcfg := workload.ScaledConfig(0.005)
	gcfg.Seed = 11
	gen, _ := workload.NewGenerator(gcfg)
	specs := gen.GenerateSpecs()
	run := func() map[int64]*Result {
		cfg := DefaultConfig()
		cfg.Cluster.Nodes = 10
		_, res, _ := runSim(t, cfg, specs)
		return res
	}
	a, b := run(), run()
	for id, ra := range a {
		rb := b[id]
		if ra.StartSec != rb.StartSec || ra.WaitSec != rb.WaitSec {
			t.Fatalf("job %d differs across runs", id)
		}
	}
}

func TestReservationPreventsBackfillStarvation(t *testing.T) {
	// A 16-GPU job arrives behind a continuous stream of 1-GPU jobs that
	// would otherwise recycle every freed device forever. With the
	// reservation guard, the big job eventually runs; without it, it
	// starves until the stream dries up.
	build := func() []workload.JobSpec {
		var specs []workload.JobSpec
		id := int64(1)
		// Initial fill: 16 one-GPU jobs.
		for i := 0; i < 16; i++ {
			specs = append(specs, mkGPUSpec(t, id, 0, 2000, 1))
			id++
		}
		// The big job arrives.
		specs = append(specs, mkGPUSpec(t, id, 10, 1000, 16))
		bigID := id
		id++
		// A long stream of small jobs arriving faster than they finish.
		for i := 0; i < 300; i++ {
			specs = append(specs, mkGPUSpec(t, id, 20+float64(i)*100, 2000, 1))
			id++
		}
		_ = bigID
		return specs
	}
	run := func(reservationAge float64) float64 {
		cfg := DefaultConfig()
		cfg.Cluster = smallCluster()
		cfg.Policy.ReservationAgeSec = reservationAge
		_, res, _ := runSim(t, cfg, build())
		return res[17].WaitSec // the 16-GPU job
	}
	guarded := run(3600)
	unguarded := run(0)
	if guarded >= unguarded {
		t.Fatalf("reservation did not help: guarded %v vs unguarded %v", guarded, unguarded)
	}
	t.Logf("16-GPU job wait: guarded %.0fs vs unguarded %.0fs", guarded, unguarded)
}
