package slurm

// The calendar queue: the simulator's production event structure. A classic
// Brown calendar queue — a ring of time-bucketed event lists with a moving
// cursor — giving O(1) amortized enqueue and dequeue against the binary
// heap's O(log n), with no interface boxing on either operation (the heap
// spec pays one allocation per Push and one per Pop just converting events
// to and from `any`).
//
// Correctness does not depend on the bucket geometry: events carry a unique
// sequence number, so the order `event.before` defines is total, and any
// correct priority queue — this one, the heap spec in naive.go — pops the
// exact same sequence. The differential harness (differential_test.go) and
// the fuzz target (FuzzCalQueue) prove that equivalence; Config.AuditEvents
// re-checks it pop-by-pop at runtime.
//
// Geometry: nbuckets is a power of two near half the event count (about two
// events per bucket) and the bucket width spreads the live time span over
// one ring revolution. An event's bucket is its virtual index — the integer
// floor(t/width) — masked into the ring; the cursor advances through virtual
// indices, so the "same bucket, future year" test is an exact integer
// comparison with no floating-point boundary cases. Buckets are kept sorted
// (descending, next-to-pop last) so dequeue from the current bucket is O(1);
// the insert memmove touches about bucket-occupancy events. When a full ring
// revolution finds nothing (a sparse far-future tail, e.g. a lone node-
// repair event hours ahead), a direct search over bucket minima jumps the
// cursor instead of spinning. Resizes re-spread the queue when the size
// drifts a factor of two from the geometry; all of it is a pure function of
// the push/pop sequence, so runs stay deterministic.

import "sort"

const (
	// calMinBuckets floors the ring so small queues don't thrash resizes.
	calMinBuckets = 64
	// calMaxBuckets caps ring memory (2^21 bucket headers ≈ 48 MB).
	calMaxBuckets = 1 << 21
	// calVidxCap bounds the virtual index so extreme timestamps cannot
	// overflow the float→int conversion; events past the cap share one
	// far-future bucket and still sort correctly inside it.
	calVidxCap = int64(1) << 60
)

// calQueue is the calendar-queue implementation of eventQueue.
type calQueue struct {
	buckets  [][]event // ring; each bucket sorted descending (next pop last)
	mask     int64     // len(buckets)-1
	invWidth float64   // 1/bucket width
	size     int
	curVidx  int64   // cursor: virtual bucket index of the last pop
	lastTime float64 // time of the last pop (width estimation only)
	maxTime  float64 // max time ever enqueued (width estimation only)
}

// newCalQueue builds a queue over the initial events (read, not retained).
func newCalQueue(events []event) *calQueue {
	q := &calQueue{}
	q.init(events)
	return q
}

// Len returns the number of queued events.
func (q *calQueue) Len() int { return q.size }

// vidx maps a timestamp to its virtual bucket index.
func (q *calQueue) vidx(t float64) int64 {
	if t <= 0 {
		return 0
	}
	v := t * q.invWidth
	if v >= float64(calVidxCap) {
		return calVidxCap
	}
	return int64(v)
}

// Push enqueues an event.
func (q *calQueue) Push(e event) {
	if e.timeSec > q.maxTime {
		q.maxTime = e.timeSec
	}
	v := q.vidx(e.timeSec)
	if v < q.curVidx {
		// A push behind the cursor. The DES never does this (every push is
		// at or after the current simulation instant), but the fuzz harness
		// may; rewinding the cursor keeps the scan exact for any input.
		q.curVidx = v
	}
	b := int(v & q.mask)
	q.buckets[b] = insertEventDesc(q.buckets[b], e)
	q.size++
	if q.size > 2*len(q.buckets) && len(q.buckets) < calMaxBuckets {
		q.rebuild()
	}
}

// Pop dequeues the minimum event under the event.before order.
func (q *calQueue) Pop() (event, bool) {
	if q.size == 0 {
		return event{}, false
	}
	n := len(q.buckets)
	v := q.curVidx
	for scanned := 0; scanned < n; scanned++ {
		b := q.buckets[int(v&q.mask)]
		if k := len(b); k > 0 {
			e := b[k-1]
			if q.vidx(e.timeSec) <= v {
				q.buckets[int(v&q.mask)] = b[:k-1]
				q.take(e, v)
				return e, true
			}
		}
		v++
	}
	// A full revolution found only future-year events: the queue is sparse
	// relative to its span. Direct-search the bucket minima (each bucket's
	// tail) and jump the cursor to the winner.
	best := -1
	var bestE event
	for i := range q.buckets {
		if k := len(q.buckets[i]); k > 0 {
			if e := q.buckets[i][k-1]; best < 0 || e.before(bestE) {
				best, bestE = i, e
			}
		}
	}
	q.buckets[best] = q.buckets[best][:len(q.buckets[best])-1]
	q.take(bestE, q.vidx(bestE.timeSec))
	return bestE, true
}

// take commits a dequeue: cursor, width-estimation state, size, shrink.
func (q *calQueue) take(e event, v int64) {
	q.curVidx = v
	q.lastTime = e.timeSec
	q.size--
	if 8*q.size < len(q.buckets) && len(q.buckets) > calMinBuckets {
		q.rebuild()
	}
}

// rebuild re-spreads the queue into fresh geometry for its current size.
func (q *calQueue) rebuild() {
	all := make([]event, 0, q.size)
	for _, b := range q.buckets {
		all = append(all, b...)
	}
	q.init(all)
}

// init distributes events into a ring sized and widthed for them. It is the
// only place geometry is chosen: nbuckets ≈ size/2 (power of two) and width
// spreads the live span over one revolution, targeting about two events per
// bucket. Both inputs — the event set and the cursor — are pure functions
// of the push/pop history, so identical runs build identical rings.
func (q *calQueue) init(all []event) {
	nb := nextPow2(len(all) / 2)
	if nb < calMinBuckets {
		nb = calMinBuckets
	}
	if nb > calMaxBuckets {
		nb = calMaxBuckets
	}
	q.buckets = make([][]event, nb)
	q.mask = int64(nb - 1)
	q.size = len(all)

	var minT, maxT float64
	for i := range all {
		t := all[i].timeSec
		if i == 0 || t < minT {
			minT = t
		}
		if i == 0 || t > maxT {
			maxT = t
		}
	}
	q.maxTime = maxT
	width := (maxT - minT) / float64(nb)
	if width <= 1e-9 {
		width = 1
	}
	q.invWidth = 1 / width
	q.curVidx = q.vidx(minT)
	q.lastTime = minT

	// Counting-sort the events into one flat backing array and slice it into
	// buckets with cap==len, so distribution costs two passes and a single
	// allocation instead of an append per event. The full-slice caps mean the
	// first later insert into a bucket reallocates it — after which pops free
	// tail capacity and steady-state inserts stay in place.
	counts := make([]int, nb)
	for i := range all {
		counts[int(q.vidx(all[i].timeSec)&q.mask)]++
	}
	flat := make([]event, len(all))
	off := 0
	for b, c := range counts {
		if c == 0 {
			continue
		}
		q.buckets[b] = flat[off : off : off+c]
		off += c
	}
	for i := range all {
		b := int(q.vidx(all[i].timeSec) & q.mask)
		n := len(q.buckets[b])
		q.buckets[b] = q.buckets[b][:n+1]
		q.buckets[b][n] = all[i]
	}
	for b := range q.buckets {
		sortEventsDesc(q.buckets[b])
	}
}

// insertEventDesc places e into a descending-sorted bucket (binary search
// plus a memmove of, on average, half the bucket — a handful of events at
// the target occupancy).
func insertEventDesc(b []event, e event) []event {
	lo, hi := 0, len(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b[mid].before(e) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	b = append(b, event{})
	copy(b[lo+1:], b[lo:])
	b[lo] = e
	return b
}

// sortEventsDesc sorts a bucket descending (next pop last): insertion sort
// for the common tiny bucket, sort.Slice for pathological pile-ups.
func sortEventsDesc(b []event) {
	if len(b) <= 48 {
		for i := 1; i < len(b); i++ {
			for j := i; j > 0 && b[j-1].before(b[j]); j-- {
				b[j], b[j-1] = b[j-1], b[j]
			}
		}
		return
	}
	sort.Slice(b, func(i, j int) bool { return b[j].before(b[i]) })
}

// nextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
