//go:build !race

package slurm

// raceEnabled reports whether the race detector instruments this build.
// The allocation-count guards skip under -race: the detector's shadow
// allocations make testing.AllocsPerRun meaningless.
const raceEnabled = false
