package slurm

// Prediction-aware backfill (ISSUE 7 tentpole). The default reservation guard
// is deliberately blunt: once a blocked GPU job ages past
// ReservationAgeSec, every GPU job behind it is skipped so freed devices
// accumulate for the reservation. That fence costs short jobs hours of
// avoidable queueing — the paper's §IV observation is that requested
// wall-clock limits are too uninformative to do better, and its implication
// is that predicted runtimes could. This file acts on that implication:
//
//   - Every started job gets a runtime estimate from a streaming
//     predict.RuntimeForecaster (per-user median → exit-history class mix →
//     global median, QSSF-style), or its requested limit under the
//     UseRequestedLimit baseline / while the forecaster is cold.
//   - While a reservation is armed, a GPU candidate is admitted anyway when
//     its predicted completion lands at or before the reservation's shadow
//     time — the earliest instant enough GPUs are projected free — so a
//     correct prediction cannot delay the reserved start (EASY backfill's
//     invariant, with predictions in place of limits).
//   - Mispredict safety is layered: a running job that overruns its estimate
//     is re-projected at its requested limit (the bound real Slurm enforces
//     by killing), and once the reserved job has waited 2×ReservationAgeSec
//     the starvation brake stops all predictive admissions, restoring the
//     conservative fence.
//   - Running GPU jobs past their first k monitor samples are re-classified
//     from prefix telemetry (monitor.PrefixDigest → predict.OnlineClassifier)
//     and re-estimated from their class median — the partial-telemetry task
//     of the Supercloud challenge, used online.
//
// All state updates ride existing events (start/finish/kill), so the
// predictor is a pure function of the event order and both event-queue
// implementations (calendar production queue and the heap spec in naive.go)
// produce byte-identical prediction-aware runs — the differential matrix
// pins that down.

import (
	"math"
	"sort"

	"repro/internal/lifecycle"
	"repro/internal/monitor"
	"repro/internal/predict"
	"repro/internal/trace"
	"repro/internal/workload"
)

// PredictPolicy configures prediction-aware backfill. The zero value disables
// it entirely: no predictor is allocated and the scheduler's default path —
// including its zero-allocation steady state — is untouched. Prediction only
// changes behavior while a reservation is armed, so it also requires
// Policy.ReservationAgeSec > 0 to have any effect.
type PredictPolicy struct {
	// Enabled turns the prediction layer on.
	Enabled bool
	// UseRequestedLimit is the uninformative baseline the paper's §IV
	// measures: backfill feasibility uses the requested wall-clock limit as
	// the runtime estimate instead of a forecast. With the generator's
	// long padded limits it almost never admits — which is the point.
	UseRequestedLimit bool
	// PrefixSamples (k) and PrefixIntervalSec configure running-job
	// refinement: once a running GPU job is k·interval old, its first-k
	// monitor-grid samples are digested, classified, and its estimate
	// replaced by its class median. Either value <= 0 disables refinement.
	PrefixSamples     int
	PrefixIntervalSec float64
	// MinUserObs, ObsScale, and FreezeAfterObs pass through to the
	// RuntimeForecaster; ObsScale and FreezeAfterObs are the
	// mispredict-robustness knobs (biased users, stale priors).
	MinUserObs     int
	ObsScale       float64
	FreezeAfterObs int
}

// DefaultPredictPolicy returns the production prediction-aware configuration:
// forecasts on, refinement from the first 8 minutes of telemetry.
func DefaultPredictPolicy() PredictPolicy {
	return PredictPolicy{Enabled: true, PrefixSamples: 8, PrefixIntervalSec: 60}
}

// schedPredictor is the scheduler's online prediction state: one forecaster,
// one prefix classifier, and per-job estimate bookkeeping. All of it is
// slice-indexed by spec index, so updates are O(1) and iteration order never
// touches a map.
type schedPredictor struct {
	pol PredictPolicy
	fc  *predict.RuntimeForecaster
	cls predict.OnlineClassifier

	estSec  []float64 // active runtime estimate per started spec index
	refined []bool    // prefix refinement already attempted for this attempt
	// runningGPU holds the spec indices of currently running GPU jobs (the
	// jobs whose projected releases define shadow times); runPos is the
	// inverse index, -1 when absent, so kills remove in O(1).
	runningGPU []int32
	runPos     []int32
	ends       []runningEnd // scratch for shadow projection

	monitorSeed uint64
}

// runningEnd is one running job's projected release for the shadow scan.
type runningEnd struct {
	endSec float64
	idx    int32
	gpus   int32
}

// newSchedPredictor allocates prediction state for an n-spec run.
func newSchedPredictor(pol PredictPolicy, n int, monitorSeed uint64) *schedPredictor {
	fc := predict.NewRuntimeForecaster()
	if pol.MinUserObs > 0 {
		fc.MinUserObs = pol.MinUserObs
	}
	fc.ObsScale = pol.ObsScale
	fc.FreezeAfterObs = pol.FreezeAfterObs
	p := &schedPredictor{
		pol:         pol,
		fc:          fc,
		estSec:      make([]float64, n),
		refined:     make([]bool, n),
		runPos:      make([]int32, n),
		monitorSeed: monitorSeed,
	}
	for i := range p.runPos {
		p.runPos[i] = -1
	}
	return p
}

// refinementOn reports whether prefix refinement is configured; the
// requested-limit baseline never refines (it models a predictor-free Slurm).
func (p *schedPredictor) refinementOn() bool {
	return !p.pol.UseRequestedLimit && p.pol.PrefixSamples > 0 && p.pol.PrefixIntervalSec > 0
}

// estimate forecasts sp's runtime for an admission decision. The cold
// forecaster and the UseRequestedLimit baseline both answer the requested
// limit — the conservative bound.
func (p *schedPredictor) estimate(sp *workload.JobSpec) float64 {
	if !p.pol.UseRequestedLimit {
		if est, ok := p.fc.Predict(sp.User, sp.LimitSec); ok {
			return est
		}
	}
	return sp.LimitSec
}

// features digests sp's first-k monitor-grid samples into the classifier's
// feature vector. The digest draws from its own salted stream, so it never
// perturbs the monitoring pipeline's noise sequence.
func (p *schedPredictor) features(sp *workload.JobSpec) predict.Features {
	var d monitor.PrefixDigest
	rng := monitor.PrefixRNG(p.monitorSeed, sp.ID)
	for _, prof := range sp.Profiles {
		d.Accumulate(prof, p.pol.PrefixSamples, p.pol.PrefixIntervalSec, rng)
	}
	return predict.MakeFeatures(d.SMMean(), d.MemMean(), d.MemSizeMean(), d.ActiveFrac(),
		sp.Interface == trace.Interactive, sp.NumGPUs > 1, sp.LimitSec/3600)
}

// onStart records the estimate the admission used and tracks GPU attempts in
// the running set. Requeued attempts re-enter with a fresh estimate.
func (p *schedPredictor) onStart(idx int, sp *workload.JobSpec) {
	p.estSec[idx] = p.estimate(sp)
	p.refined[idx] = false
	if sp.IsGPU() && p.runPos[idx] < 0 {
		p.runPos[idx] = int32(len(p.runningGPU))
		p.runningGPU = append(p.runningGPU, int32(idx))
	}
}

// onFinish scores the completed attempt against the estimate the scheduler
// last used for it, then feeds the predictor the ground truth: the true
// runtime and life-cycle class enter the forecaster, and (when refinement is
// configured) the prefix features enter the classifier. Predict → observe,
// in event order — the no-leakage discipline.
func (p *schedPredictor) onFinish(idx int, sp *workload.JobSpec, res *Result, now float64, st *Stats) {
	est := p.estSec[idx]
	actual := now - res.StartSec
	if actual <= est {
		st.PredictHits++
	} else {
		st.PredictMisses++
	}
	st.PredictAbsErrSec += math.Abs(actual - est)
	cat := lifecycle.ClassifyParts(sp.Exit, sp.Interface)
	p.fc.Observe(sp.User, cat, sp.RunSec)
	if p.refinementOn() && sp.IsGPU() && len(sp.Profiles) > 0 {
		p.cls.Observe(p.features(sp), cat)
	}
	p.remove(idx)
}

// onKill drops a killed attempt from the running set without scoring it; the
// next attempt re-registers through onStart.
func (p *schedPredictor) onKill(idx int) { p.remove(idx) }

// remove swap-deletes idx from the running-GPU set.
func (p *schedPredictor) remove(idx int) {
	pos := p.runPos[idx]
	if pos < 0 {
		return
	}
	last := int32(len(p.runningGPU) - 1)
	moved := p.runningGPU[last]
	p.runningGPU[pos] = moved
	p.runPos[moved] = pos
	p.runningGPU = p.runningGPU[:last]
	p.runPos[idx] = -1
}

// refineRunning re-estimates running GPU jobs whose prefix window has fully
// elapsed: classify the first-k samples, adopt the class median. Attempted
// once per attempt; the no-future-leakage contract holds because the digest
// stops at k·interval ≤ elapsed.
func (s *Simulator) refineRunning() {
	p := s.pred
	if !p.refinementOn() {
		return
	}
	prefixDur := float64(p.pol.PrefixSamples) * p.pol.PrefixIntervalSec
	for _, idx := range p.runningGPU {
		if p.refined[idx] {
			continue
		}
		sp := &s.specs[idx]
		res := s.results[sp.ID]
		if s.now-res.StartSec < prefixDur {
			continue // prefix not fully observed yet
		}
		p.refined[idx] = true
		if len(sp.Profiles) == 0 {
			continue
		}
		cat, ok := p.cls.Classify(p.features(sp))
		if !ok {
			continue // classifier still cold
		}
		if est, ok := p.fc.PredictClass(cat, sp.LimitSec); ok {
			p.estSec[idx] = est
		}
	}
}

// shadowTime projects the earliest instant at which need GPUs are free,
// given the running jobs' current estimates. A job that has overrun its
// estimate is re-projected at its requested limit (mispredict safety); past
// even the limit it is projected to release "now", which keeps the shadow at
// s.now and so admits nothing — the conservative degenerate. Down capacity
// that never returns yields +Inf (no admission).
func (s *Simulator) shadowTime(need int) float64 {
	p := s.pred
	free := s.cfg.Cluster.TotalGPUs() - s.busyGPUs - s.downGPUs
	if free >= need {
		// The reservation is blocked by fragmentation, not by device count;
		// no projected release helps, and now+est <= now never admits.
		return s.now
	}
	p.ends = p.ends[:0]
	for _, idx := range p.runningGPU {
		sp := &s.specs[idx]
		res := s.results[sp.ID]
		end := res.StartSec + p.estSec[idx]
		if end <= s.now {
			end = res.StartSec + sp.LimitSec
			if end <= s.now {
				end = s.now
			}
		}
		p.ends = append(p.ends, runningEnd{endSec: end, idx: idx, gpus: int32(len(res.GPUs))})
	}
	sort.Slice(p.ends, func(a, b int) bool {
		if p.ends[a].endSec != p.ends[b].endSec {
			return p.ends[a].endSec < p.ends[b].endSec
		}
		return p.ends[a].idx < p.ends[b].idx
	})
	for _, re := range p.ends {
		free += int(re.gpus)
		if free >= need {
			return re.endSec
		}
	}
	return math.Inf(1)
}

// predictiveAdmit decides whether a GPU candidate may backfill past an armed
// reservation: only while the reserved job is inside the starvation brake
// (waited less than 2×ReservationAgeSec), and only when the candidate's
// predicted completion lands at or before the reservation's shadow time. The
// shadow is computed once per scheduling pass: a candidate admitted under it
// returns its GPUs before the shadow instant, so the projection stays valid
// for the rest of the pass.
func (s *Simulator) predictiveAdmit(sp *workload.JobSpec, reservedIdx int, shadow *float64, shadowValid *bool) bool {
	rsp := &s.specs[reservedIdx]
	if s.now-rsp.SubmitSec >= 2*s.cfg.Policy.ReservationAgeSec {
		return false // starvation brake: restore the conservative fence
	}
	if !*shadowValid {
		s.refineRunning()
		*shadow = s.shadowTime(requestFor(s.cfg, rsp).GPUs)
		*shadowValid = true
	}
	return s.now+s.pred.estimate(sp) <= *shadow
}
