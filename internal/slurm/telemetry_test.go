package slurm

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func TestTelemetryRecordsTransitions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster = smallCluster()
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tel := sim.EnableTelemetry(0)
	// Three staggered 2-GPU jobs: occupancy steps up to 6 then drains.
	specs := []workload.JobSpec{
		mkGPUSpec(t, 1, 0, 1000, 2),
		mkGPUSpec(t, 2, 100, 1000, 2),
		mkGPUSpec(t, 3, 200, 1000, 2),
	}
	if _, _, err := sim.Run(specs); err != nil {
		t.Fatal(err)
	}
	if len(tel.Points) < 4 {
		t.Fatalf("telemetry has %d points", len(tel.Points))
	}
	peakBusy := 0
	for _, p := range tel.Points {
		if p.BusyGPUs > peakBusy {
			peakBusy = p.BusyGPUs
		}
	}
	if peakBusy != 6 {
		t.Fatalf("peak busy = %d, want 6", peakBusy)
	}
	if last := tel.Points[len(tel.Points)-1]; last.BusyGPUs != 0 || last.QueueLen != 0 {
		t.Fatalf("final state not drained: %+v", last)
	}
	q := tel.OccupancyQuantiles(16, 0.5)
	if math.IsNaN(q[0]) || q[0] < 0 || q[0] > 1 {
		t.Fatalf("occupancy median = %v", q[0])
	}
}

func TestTelemetryQueueDepth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster = smallCluster() // 16 GPUs
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tel := sim.EnableTelemetry(0)
	// 20 simultaneous single-GPU jobs: 4 must queue.
	var specs []workload.JobSpec
	for i := int64(1); i <= 20; i++ {
		specs = append(specs, mkGPUSpec(t, i, 0, 500, 1))
	}
	if _, _, err := sim.Run(specs); err != nil {
		t.Fatal(err)
	}
	if peak := tel.PeakQueueLen(); peak != 4 {
		t.Fatalf("peak queue = %d, want 4", peak)
	}
}

func TestTelemetryThinning(t *testing.T) {
	tel := &Telemetry{maxPoints: 1024}
	for i := 0; i < 5000; i++ {
		tel.record(float64(i), i%16, 0, 0)
	}
	if len(tel.Points) >= 1024 {
		t.Fatalf("thinning failed: %d points", len(tel.Points))
	}
	// Points remain time-ordered after thinning.
	for i := 1; i < len(tel.Points); i++ {
		if tel.Points[i].TimeSec <= tel.Points[i-1].TimeSec {
			t.Fatal("points out of order after thinning")
		}
	}
}

func TestTelemetrySameInstantCollapse(t *testing.T) {
	tel := &Telemetry{maxPoints: 1024}
	tel.record(10, 1, 5, 0)
	tel.record(10, 3, 2, 0)
	if len(tel.Points) != 1 {
		t.Fatalf("same-instant events not collapsed: %d points", len(tel.Points))
	}
	if tel.Points[0].BusyGPUs != 3 || tel.Points[0].QueueLen != 2 {
		t.Fatalf("collapsed point holds stale state: %+v", tel.Points[0])
	}
}

func TestWaitBySizeDES(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster = smallCluster()
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	specs := []workload.JobSpec{
		mkGPUSpec(t, 1, 0, 600, 1),
		mkGPUSpec(t, 2, 0, 600, 2),
		mkGPUSpec(t, 3, 0, 600, 4),
		mkCPUSpec(4, 0, 600, 20, false),
	}
	results, _, err := sim.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	waits := WaitBySize(specs, results)
	// Idle cluster: all classes start immediately.
	for c := 0; c < 3; c++ {
		if waits[c] != 0 {
			t.Fatalf("class %d wait = %v on idle cluster", c, waits[c])
		}
	}
	if !math.IsNaN(waits[3]) {
		t.Fatalf("empty class should be NaN, got %v", waits[3])
	}
}
