package slurm

// This file preserves the pre-calendar-queue event structure — the global
// container/heap the simulator ran on through PR 5 — as a read-only
// executable specification, following the naive.go convention from
// internal/cluster and internal/core. Config.SpecEventQueue runs a whole
// simulation on it (the differential harness drives heap and calendar runs
// over randomized workloads and asserts byte-identical stats, results and
// trace output), Config.AuditEvents shadows the calendar queue with it at
// runtime, and FuzzCalQueue cross-checks the two under adversarial
// push/pop interleavings. The ordering contract both implementations must
// honor is event.before: time, then kind rank (capacity returns before
// capacity leaves before queue growth), then sequence number.

import (
	"container/heap"
	"fmt"
)

// eventHeap orders events by event.before; see rank() for the same-instant
// contract.
type eventHeap []event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(a, b int) bool { return h[a].before(h[b]) }
func (h eventHeap) Swap(a, b int)      { h[a], h[b] = h[b], h[a] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// heapEventQueue adapts the heap to the eventQueue interface. It is the
// spec: obviously correct, O(log n) per operation, one boxing allocation on
// every Push and Pop — exactly what the calendar queue exists to avoid.
type heapEventQueue struct{ h eventHeap }

// naiveNewEventQueue builds the reference queue over the initial events
// (read, not retained).
//
// Mirrors: newCalQueue.
func naiveNewEventQueue(events []event) *heapEventQueue {
	q := &heapEventQueue{h: append(eventHeap(nil), events...)}
	heap.Init(&q.h)
	return q
}

// Len returns the number of queued events.
func (q *heapEventQueue) Len() int { return q.h.Len() }

// Push enqueues an event.
func (q *heapEventQueue) Push(e event) { heap.Push(&q.h, e) }

// Pop dequeues the minimum event under the event.before order.
func (q *heapEventQueue) Pop() (event, bool) {
	if q.h.Len() == 0 {
		return event{}, false
	}
	return heap.Pop(&q.h).(event), true
}

// eventAudit runs the calendar queue shadowed by the heap spec, cross-
// checking every dequeue. Test/debug only (it doubles all queue work, like
// cluster.EnableAudit restores the full node scan): a divergence panics
// with both events, since it means the optimized queue would have replayed
// history in a different order.
type eventAudit struct {
	fast eventQueue
	spec eventQueue
}

// newEventAudit pairs the optimized queue with the reference queue.
func newEventAudit(fast, spec eventQueue) *eventAudit {
	return &eventAudit{fast: fast, spec: spec}
}

// Len returns the number of queued events.
func (a *eventAudit) Len() int { return a.fast.Len() }

// Push enqueues into both queues.
func (a *eventAudit) Push(e event) {
	a.fast.Push(e)
	a.spec.Push(e)
}

// Pop dequeues from both queues and asserts they agree.
func (a *eventAudit) Pop() (event, bool) {
	ef, okf := a.fast.Pop()
	es, oks := a.spec.Pop()
	if okf != oks || ef != es {
		panic(fmt.Sprintf("slurm: event queue audit: calendar queue popped %+v (ok=%v) but heap spec popped %+v (ok=%v)",
			ef, okf, es, oks))
	}
	return ef, okf
}
