package slurm

import (
	"context"
	"testing"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/trace"
	"repro/internal/workload"
)

// predTestCluster is a single 4-GPU node: small enough that every admission
// decision in the scenarios below can be traced by hand.
func predTestCluster() cluster.Config {
	return cluster.Config{
		Nodes:        1,
		CoresPerNode: 40,
		MemGBPerNode: 384,
		GPUsPerNode:  4,
		GPUSpec:      gpu.V100(),
		NodesPerRack: 1,
	}
}

func predGPUSpec(id int64, user int, submit, run, limit float64, gpus int) workload.JobSpec {
	return workload.JobSpec{
		ID:          id,
		User:        user,
		Interface:   trace.Batch,
		Exit:        trace.ExitSuccess,
		SubmitSec:   submit,
		RunSec:      run,
		LimitSec:    limit,
		NumGPUs:     gpus,
		CoresPerGPU: 2,
		MemGBPerGPU: 16,
	}
}

// predScenario is the hand-traceable reservation scenario shared by the
// prediction tests:
//
//	A        2 GPUs, runs 0→20000 (its limit), pinning half the node.
//	w1..w5   user 1 warm-up jobs: 1 GPU, 50 s each, long 24 h limits — they
//	         complete early and give the forecaster user 1's runtime prior.
//	R        4-GPU job submitted at t=100: blocked behind A, its reservation
//	         arms at t=1100 (age 1000) and the brake lands at t=2100.
//	b1, b2   user 1 short jobs inside the armed window (t=1200, 1300).
//	late     user 1 short job after the brake (t=3300).
//
// Under the conservative fence b1/b2/late all wait ~19000 s for R to clear;
// under prediction b1/b2 backfill immediately (predicted 50 s ≪ the t=20000
// shadow) while `late` still waits — and R starts at t=20000 in every
// policy, which is the no-starvation pin.
func predScenario() []workload.JobSpec {
	return []workload.JobSpec{
		predGPUSpec(1, 2, 0, 20000, 20000, 2),  // A
		predGPUSpec(2, 1, 0, 50, 86400, 1),     // w1
		predGPUSpec(3, 1, 1, 50, 86400, 1),     // w2
		predGPUSpec(4, 1, 2, 50, 86400, 1),     // w3
		predGPUSpec(5, 1, 3, 50, 86400, 1),     // w4
		predGPUSpec(6, 1, 4, 50, 86400, 1),     // w5
		predGPUSpec(7, 3, 100, 1000, 2000, 4),  // R (reserved)
		predGPUSpec(8, 1, 1200, 50, 86400, 1),  // b1
		predGPUSpec(9, 1, 1300, 50, 86400, 1),  // b2
		predGPUSpec(10, 1, 3300, 50, 86400, 1), // late (after the brake)
	}
}

func predScenarioConfig(p PredictPolicy) Config {
	cfg := DefaultConfig()
	cfg.Cluster = predTestCluster()
	cfg.Policy.ReservationAgeSec = 1000
	cfg.Policy.Predict = p
	return cfg
}

func runPredScenario(t *testing.T, p PredictPolicy, specs []workload.JobSpec) (map[int64]*Result, Stats) {
	t.Helper()
	res, st, err := Simulate(predScenarioConfig(p), specs)
	if err != nil {
		t.Fatal(err)
	}
	return res, st
}

// TestPredictBackfillAdmitsShortJobs: with accurate user priors, short jobs
// backfill through an armed reservation that would otherwise hold them for
// hours, the reserved job starts at exactly the same instant as under the
// conservative fence, and the brake still fences jobs arriving after
// 2×ReservationAgeSec.
func TestPredictBackfillAdmitsShortJobs(t *testing.T) {
	specs := predScenario()
	consRes, consSt := runPredScenario(t, PredictPolicy{}, specs)
	predRes, predSt := runPredScenario(t, PredictPolicy{Enabled: true}, specs)

	if consSt.PredictedBackfills != 0 || consSt.PredictHits+consSt.PredictMisses != 0 {
		t.Fatalf("conservative run recorded prediction stats: %+v", consSt)
	}
	// The reservation holds b1/b2 under the conservative fence until R clears.
	if consRes[8].StartSec < 20000 || consRes[9].StartSec < 20000 {
		t.Fatalf("conservative fence leaked backfill: b1 %v b2 %v",
			consRes[8].StartSec, consRes[9].StartSec)
	}
	// Prediction admits them at submit: user 1's median is 50 s, far inside
	// the t=20000 shadow.
	if predRes[8].StartSec != 1200 || predRes[9].StartSec != 1300 {
		t.Fatalf("predicted backfill: b1 started %v (want 1200), b2 %v (want 1300)",
			predRes[8].StartSec, predRes[9].StartSec)
	}
	if predSt.PredictedBackfills != 2 {
		t.Fatalf("PredictedBackfills = %d, want 2", predSt.PredictedBackfills)
	}
	if predSt.PredictedBackfillWaitSec != 0 {
		t.Fatalf("backfilled jobs waited %v s, want 0", predSt.PredictedBackfillWaitSec)
	}
	// The no-starvation pin: the reserved job starts at the same instant.
	if predRes[7].StartSec != consRes[7].StartSec {
		t.Fatalf("reserved start moved: predict %v, conservative %v",
			predRes[7].StartSec, consRes[7].StartSec)
	}
	// The brake: a candidate arriving past 2×age waits exactly as the
	// conservative fence would make it.
	if predRes[10].StartSec != consRes[10].StartSec {
		t.Fatalf("post-brake job moved: predict %v, conservative %v",
			predRes[10].StartSec, consRes[10].StartSec)
	}
	if predSt.PredictHits == 0 || predSt.PredictMisses == 0 {
		// Warm-ups and backfills hit their 50 s estimates; R (forecast from
		// the short-job global median) overruns — both counters must move.
		t.Fatalf("hit/miss accounting: %d hits, %d misses", predSt.PredictHits, predSt.PredictMisses)
	}
}

// TestPredictRequestedLimitBaselineRefuses: the §IV baseline — estimates are
// the requested wall-clock limits — admits nothing here (24 h limits cannot
// fit before the t=20000 shadow), reproducing the paper's point that
// requested limits are too uninformative to drive backfill.
func TestPredictRequestedLimitBaselineRefuses(t *testing.T) {
	specs := predScenario()
	res, st := runPredScenario(t, PredictPolicy{Enabled: true, UseRequestedLimit: true}, specs)
	if st.PredictedBackfills != 0 {
		t.Fatalf("requested-limit baseline admitted %d backfills", st.PredictedBackfills)
	}
	if res[8].StartSec < 20000 || res[9].StartSec < 20000 {
		t.Fatalf("baseline leaked backfill: b1 %v b2 %v", res[8].StartSec, res[9].StartSec)
	}
	if res[7].StartSec != 20000 {
		t.Fatalf("reserved start = %v, want 20000", res[7].StartSec)
	}
}

// TestPredictMispredictFallback: a job that overruns its estimate 160× is
// re-projected at its requested limit, the scheduler keeps admitting
// correct candidates against the honest shadow, the overrun is scored as a
// miss — and the reserved job still starts at the conservative instant.
func TestPredictMispredictFallback(t *testing.T) {
	specs := predScenario()
	// X: user 1 history says 50 s, but it actually runs 8000 s (limit 9000).
	// Submitted at t=1150 inside the armed window, it is admitted on its
	// (wrong) 50 s estimate and then overruns.
	x := predGPUSpec(11, 1, 1150, 8000, 9000, 1)
	withX := make([]workload.JobSpec, 0, len(specs)+1)
	for _, sp := range specs {
		if sp.SubmitSec > x.SubmitSec && len(withX) > 0 && withX[len(withX)-1].SubmitSec <= x.SubmitSec {
			withX = append(withX, x)
		}
		withX = append(withX, sp)
	}

	consRes, _ := runPredScenario(t, PredictPolicy{}, withX)
	predRes, predSt := runPredScenario(t, PredictPolicy{Enabled: true}, withX)

	// X was admitted predictively and overran: at least one miss.
	if predRes[11].StartSec != 1150 {
		t.Fatalf("mispredicted job started %v, want 1150", predRes[11].StartSec)
	}
	if predSt.PredictMisses == 0 {
		t.Fatal("overrunning job not scored as a miss")
	}
	// After X overruns (from t=1200 on), the shadow re-projects it at its
	// limit; b1/b2 still fit before t=20000 and are still admitted.
	if predRes[8].StartSec != 1200 || predRes[9].StartSec != 1300 {
		t.Fatalf("post-overrun admissions: b1 %v (want 1200), b2 %v (want 1300)",
			predRes[8].StartSec, predRes[9].StartSec)
	}
	// No starvation regression even under the mispredict.
	if predRes[7].StartSec != consRes[7].StartSec {
		t.Fatalf("reserved start moved under mispredict: predict %v, conservative %v",
			predRes[7].StartSec, consRes[7].StartSec)
	}
}

// TestPredictNoStarvationOnGeneratedWorkload is the acceptance regression on
// a synthesized population: under an adversarially under-estimating
// forecaster (ObsScale=0.25) with stale priors (frozen after 50
// observations), the worst multi-GPU wait must stay within the brake bound
// of the requested-limit policy's worst wait — the prediction layer may
// reorder backfill, but the brake caps how long any reserved job can be
// held beyond the conservative fence.
func TestPredictNoStarvationOnGeneratedWorkload(t *testing.T) {
	gcfg := workload.ScaledConfig(0.02)
	gcfg.Seed = 9
	gen, err := workload.NewGenerator(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	specs := gen.GenerateSpecs()

	const age = 1800.0
	run := func(p PredictPolicy) (map[int64]*Result, Stats) {
		cfg := DefaultConfig()
		cfg.Cluster.Nodes = 8
		cfg.Policy.ReservationAgeSec = age
		cfg.Policy.Predict = p
		ok, _ := Feasible(cfg, specs)
		res, st, err := Simulate(cfg, ok)
		if err != nil {
			t.Fatal(err)
		}
		return res, st
	}

	maxMultiWait := func(res map[int64]*Result) float64 {
		worst := 0.0
		for i := range specs {
			if specs[i].NumGPUs <= 1 {
				continue
			}
			if r, ok := res[specs[i].ID]; ok && r.WaitSec > worst {
				worst = r.WaitSec
			}
		}
		return worst
	}

	baseRes, _ := run(PredictPolicy{Enabled: true, UseRequestedLimit: true})
	advRes, advSt := run(PredictPolicy{
		Enabled:           true,
		PrefixSamples:     8,
		PrefixIntervalSec: 60,
		ObsScale:          0.25,
		FreezeAfterObs:    50,
	})
	if advSt.PredictHits+advSt.PredictMisses == 0 {
		t.Fatal("adversarial run scored nothing; scenario is vacuous")
	}
	base, adv := maxMultiWait(baseRes), maxMultiWait(advRes)
	if adv > base+2*age {
		t.Fatalf("adversarial prediction starved a reserved job: worst multi-GPU wait %v s vs baseline %v s (+ brake bound %v)",
			adv, base, 2*age)
	}
}

// TestPredictShardedDeterminism: a prediction-aware sharded run is
// bit-identical across worker counts, Shards=1 matches the unsharded run
// byte for byte, and the shard merge folds the prediction counters.
func TestPredictShardedDeterminism(t *testing.T) {
	gcfg := workload.ScaledConfig(0.02)
	gcfg.Seed = 5
	gen, err := workload.NewGenerator(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Cluster.Nodes = 8
	cfg.Policy.ReservationAgeSec = 900
	cfg.Policy.Predict = PredictPolicy{Enabled: true, PrefixSamples: 8, PrefixIntervalSec: 60}
	specs, _ := Feasible(cfg, gen.GenerateSpecs())

	ctx := context.Background()
	ref, err := SimulateSharded(ctx, cfg, specs, Sharding{Shards: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Merged.PredictHits+ref.Merged.PredictMisses == 0 {
		t.Fatal("sharded predict run scored nothing")
	}
	for _, workers := range []int{2, 4} {
		got, err := SimulateSharded(ctx, cfg, specs, Sharding{Shards: 2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got.Merged != ref.Merged {
			t.Fatalf("workers=%d merged stats diverged:\n ref %+v\n got %+v", workers, ref.Merged, got.Merged)
		}
		ra, ga := ref.WaitAgg(), got.WaitAgg()
		if ra.N() != ga.N() || ra.Mean() != ga.Mean() || ra.StdDev() != ga.StdDev() ||
			ra.Min() != ga.Min() || ra.Max() != ga.Max() {
			t.Fatalf("workers=%d wait aggregate diverged", workers)
		}
	}

	// Shards=1 is byte-identical to the plain simulator.
	one, err := SimulateSharded(ctx, cfg, specs, Sharding{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	plainRes, plainSt, err := Simulate(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	if one.Merged != plainSt {
		t.Fatalf("shards=1 stats diverged from unsharded:\n sharded %+v\n plain   %+v", one.Merged, plainSt)
	}
	assertResultsEqual(t, plainRes, one.Results[0])
}
