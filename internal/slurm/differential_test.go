package slurm

// The differential equivalence harness: every simulation is run twice, once
// on the calendar queue (production) and once on the container/heap spec in
// naive.go, over a matrix of seeds × workload scales × fault plans, and the
// two runs must agree byte for byte — identical Stats (including the event
// count), identical per-job results down to GPU device lists, and identical
// serialized datasets. Because event sequence numbers make the event order
// total, ANY divergence means one of the queues violated the ordering
// contract; this harness is what makes the calendar queue's speedup
// trustworthy.

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/workload"
)

// diffCase is one cell of the equivalence matrix.
type diffCase struct {
	name  string
	seed  uint64
	scale float64
	nodes int
	plan  faults.Plan
	// predict, when enabled, runs the cell under prediction-aware backfill;
	// ageSec then overrides ReservationAgeSec so reservations actually arm
	// inside the short synthetic horizon. Zero values keep legacy cells
	// byte-identical.
	predict PredictPolicy
	ageSec  float64
}

func diffMatrix() []diffCase {
	crashPlan := faults.Plan{
		NodeCrashMTBFHours: 200,
		NodeDrainMTBFHours: 400,
		GPUFatalMTBFHours:  800,
		MeanRepairHours:    2,
	}
	var cases []diffCase
	for _, seed := range []uint64{1, 7, 42} {
		for _, sc := range []struct {
			name  string
			scale float64
			nodes int
		}{
			{"tiny", 0.005, 4},
			{"small", 0.02, 8},
		} {
			base := fmt.Sprintf("seed%d/%s", seed, sc.name)
			cases = append(cases,
				diffCase{name: base + "/fault-free", seed: seed, scale: sc.scale, nodes: sc.nodes},
				diffCase{name: base + "/faults", seed: seed, scale: sc.scale, nodes: sc.nodes, plan: crashPlan},
			)
		}
	}
	// Prediction-aware cells: the predictor's estimate/shadow/refinement
	// state must be a pure function of the event order on BOTH queue
	// implementations. One cell per policy mode — forecasts with prefix
	// refinement, the requested-limit baseline, an adversarial
	// under-estimator with stale priors (the mispredict-fallback path), and
	// forecasts under a fault plan (the kill/requeue bookkeeping).
	refine := PredictPolicy{Enabled: true, PrefixSamples: 8, PrefixIntervalSec: 60}
	cases = append(cases,
		diffCase{name: "seed7/small/predict", seed: 7, scale: 0.02, nodes: 8,
			predict: refine, ageSec: 1800},
		diffCase{name: "seed7/small/predict-limit", seed: 7, scale: 0.02, nodes: 8,
			predict: PredictPolicy{Enabled: true, UseRequestedLimit: true}, ageSec: 1800},
		diffCase{name: "seed42/small/predict-mispredict", seed: 42, scale: 0.02, nodes: 8,
			predict: PredictPolicy{Enabled: true, PrefixSamples: 8, PrefixIntervalSec: 60,
				ObsScale: 0.25, FreezeAfterObs: 100}, ageSec: 900},
		diffCase{name: "seed1/tiny/predict-faults", seed: 1, scale: 0.005, nodes: 4,
			plan: crashPlan, predict: refine, ageSec: 900},
	)
	return cases
}

// diffPopulation synthesizes the case's workload.
func diffPopulation(t *testing.T, c diffCase) []workload.JobSpec {
	t.Helper()
	gcfg := workload.ScaledConfig(c.scale)
	gcfg.Seed = c.seed
	gen, err := workload.NewGenerator(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	return gen.GenerateSpecs()
}

// runQueue executes one full run on the given queue implementation and
// returns everything the comparison needs, including the serialized dataset.
func runQueue(t *testing.T, cfg Config, specs []workload.JobSpec) (map[int64]*Result, Stats, []byte) {
	t.Helper()
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, st, err := sim.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	ds := sim.BuildDataset(specs, res, 125)
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return res, st, buf.Bytes()
}

// assertResultsEqual deep-compares two result maps.
func assertResultsEqual(t *testing.T, spec, cal map[int64]*Result) {
	t.Helper()
	if len(spec) != len(cal) {
		t.Fatalf("result count: heap spec %d, calendar %d", len(spec), len(cal))
	}
	for id, rs := range spec {
		rc := cal[id]
		if rc == nil {
			t.Fatalf("job %d present on heap spec, missing on calendar queue", id)
		}
		if rs.JobID != rc.JobID || rs.StartSec != rc.StartSec || rs.EndSec != rc.EndSec ||
			rs.WaitSec != rc.WaitSec || rs.NodeSpan != rc.NodeSpan ||
			rs.Requeues != rc.Requeues || rs.LostSec != rc.LostSec {
			t.Fatalf("job %d diverged:\n heap spec %+v\n calendar  %+v", id, rs, rc)
		}
		if len(rs.GPUs) != len(rc.GPUs) {
			t.Fatalf("job %d GPU count: %d vs %d", id, len(rs.GPUs), len(rc.GPUs))
		}
		for i := range rs.GPUs {
			if rs.GPUs[i] != rc.GPUs[i] {
				t.Fatalf("job %d GPU[%d]: %v vs %v", id, i, rs.GPUs[i], rc.GPUs[i])
			}
		}
		if len(rs.Shares) != len(rc.Shares) {
			t.Fatalf("job %d share count: %d vs %d", id, len(rs.Shares), len(rc.Shares))
		}
		for i := range rs.Shares {
			a, b := rs.Shares[i], rc.Shares[i]
			if a.Node != b.Node || a.Cores != b.Cores || a.MemGB != b.MemGB || len(a.GPUIDs) != len(b.GPUIDs) {
				t.Fatalf("job %d share[%d]: %+v vs %+v", id, i, a, b)
			}
			for j := range a.GPUIDs {
				if a.GPUIDs[j] != b.GPUIDs[j] {
					t.Fatalf("job %d share[%d] GPU[%d]: %v vs %v", id, i, j, a.GPUIDs[j], b.GPUIDs[j])
				}
			}
		}
	}
}

// TestDifferentialHeapVsCalendar is the equivalence matrix: for every cell,
// the heap-spec run and the calendar-queue run must produce identical stats
// (event counts included), identical per-job results, and byte-identical
// dataset serializations.
func TestDifferentialHeapVsCalendar(t *testing.T) {
	if testing.Short() {
		t.Skip("differential matrix is the long equivalence proof")
	}
	for _, c := range diffMatrix() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Cluster.Nodes = c.nodes
			cfg.Faults = c.plan
			cfg.FaultSeed = c.seed
			cfg.Policy.Predict = c.predict
			if c.ageSec > 0 {
				cfg.Policy.ReservationAgeSec = c.ageSec
			}
			specs := diffPopulation(t, c)
			specs, _ = Feasible(cfg, specs)

			specCfg := cfg
			specCfg.SpecEventQueue = true
			specRes, specSt, specJSON := runQueue(t, specCfg, specs)
			calRes, calSt, calJSON := runQueue(t, cfg, specs)

			if specSt != calSt {
				t.Errorf("stats diverged:\n heap spec %+v\n calendar  %+v", specSt, calSt)
			}
			if specSt.EventsProcessed == 0 {
				t.Error("heap spec processed zero events; matrix cell is vacuous")
			}
			assertResultsEqual(t, specRes, calRes)
			if !bytes.Equal(specJSON, calJSON) {
				t.Errorf("dataset serialization diverged (%d vs %d bytes)", len(specJSON), len(calJSON))
			}
		})
	}
}

// TestAuditEventsRunsClean runs the lockstep audit queue — calendar shadowed
// by the heap spec, every dequeue cross-checked — over a faulted workload.
// A divergence panics inside eventAudit.Pop.
func TestAuditEventsRunsClean(t *testing.T) {
	c := diffCase{seed: 11, scale: 0.01, nodes: 6, plan: faults.Plan{
		NodeCrashMTBFHours: 150, GPUFatalMTBFHours: 500, MeanRepairHours: 1,
	}}
	cfg := DefaultConfig()
	cfg.Cluster.Nodes = c.nodes
	cfg.Faults = c.plan
	cfg.FaultSeed = c.seed
	cfg.AuditEvents = true
	specs := diffPopulation(t, c)
	specs, _ = Feasible(cfg, specs)
	if _, st, err := Simulate(cfg, specs); err != nil {
		t.Fatal(err)
	} else if st.EventsProcessed == 0 {
		t.Fatal("audit run processed zero events")
	}
}

// TestOutageAtFinishInstantOrdersIdentically is the setupFaults-era ordering
// regression: a node outage scheduled at exactly the same timestamp as a job
// finish must process in the same relative order (finish first — capacity
// returns before capacity leaves) on both queue implementations, whatever
// order the events were pushed in.
func TestOutageAtFinishInstantOrdersIdentically(t *testing.T) {
	const instant = 4096.0
	mk := func(pushFaultFirst bool) []event {
		finish := event{timeSec: instant, kind: evFinish, idx: 1, seq: 2}
		fault := event{timeSec: instant, kind: evNodeFault, idx: 0, seq: 1}
		if pushFaultFirst {
			return []event{fault, finish}
		}
		return []event{finish, fault}
	}
	for _, pushFaultFirst := range []bool{false, true} {
		for _, q := range []eventQueue{
			newCalQueue(nil),
			naiveNewEventQueue(nil),
		} {
			for _, e := range mk(pushFaultFirst) {
				q.Push(e)
			}
			first, ok := q.Pop()
			if !ok || first.kind != evFinish {
				t.Fatalf("%T (faultFirst=%v): first pop = %+v, want the finish event",
					q, pushFaultFirst, first)
			}
			second, ok := q.Pop()
			if !ok || second.kind != evNodeFault {
				t.Fatalf("%T (faultFirst=%v): second pop = %+v, want the outage event",
					q, pushFaultFirst, second)
			}
		}
	}
	// And end to end: a faulted run on both queues agrees event for event —
	// the lockstep audit panics if any same-instant pair ever swaps.
	cfg := DefaultConfig()
	cfg.Cluster.Nodes = 4
	cfg.Faults = faults.Plan{NodeCrashMTBFHours: 100, MeanRepairHours: 1}
	cfg.FaultSeed = 3
	cfg.AuditEvents = true
	specs := diffPopulation(t, diffCase{seed: 3, scale: 0.005})
	specs, _ = Feasible(cfg, specs)
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sim.RunContext(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
}
