package slurm

import (
	"fmt"
	"testing"

	"repro/internal/workload"
)

// Regression tests pinning the two scheduler policy fixes: the BackfillDepth
// off-by-one (a pass must stop once depth jobs are blocked, not depth+1) and
// the reservation starvation hole (the guard must arm for an aged GPU job
// anywhere in the queue, and while it holds, CPU jobs must not take
// resources on nodes whose freed GPUs are being accumulated).

// TestBackfillDepthSemantics pins the documented meaning of BackfillDepth N:
// a scheduling pass stops as soon as N jobs have been found blocked. With
// two blocked GPU jobs ahead of a small CPU job, the CPU job backfills only
// when the depth lets the pass scan past both blocked jobs.
func TestBackfillDepthSemantics(t *testing.T) {
	cases := []struct {
		depth        int
		wantCPUStart float64
	}{
		{0, 1000}, // strict FIFO: nothing backfills
		{1, 1000}, // pass stops at the first blocked job
		{2, 1000}, // pass stops at the second blocked job — the old off-by-one let the CPU job through here
		{3, 3},    // pass scans past both blocked jobs; CPU job backfills at submit
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("depth=%d", tc.depth), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Cluster = smallCluster()
			cfg.Cluster.Nodes = 1 // 2 GPUs, 40 cores
			cfg.Policy = Policy{Colocate: true, BackfillDepth: tc.depth}
			cfg.AuditPlacement = true
			specs := []workload.JobSpec{
				mkGPUSpec(t, 1, 0, 1000, 2), // occupies both GPUs until t=1000
				mkGPUSpec(t, 2, 1, 500, 1),  // blocked behind it
				mkGPUSpec(t, 3, 2, 500, 1),  // blocked behind it
				mkCPUSpec(4, 3, 100, 4, false),
			}
			_, res, st := runSim(t, cfg, specs)
			if st.Completed != len(specs) {
				t.Fatalf("completed %d of %d", st.Completed, len(specs))
			}
			for _, gpuJob := range []int64{2, 3} {
				if got := res[gpuJob].StartSec; got != 1000 {
					t.Fatalf("blocked GPU job %d started at %v, want 1000", gpuJob, got)
				}
			}
			if got := res[4].StartSec; got != tc.wantCPUStart {
				t.Fatalf("CPU job started at %v, want %v", got, tc.wantCPUStart)
			}
		})
	}
}

// TestReservationArmsBehindBlockedCPUJob pins the arming fix: the guard must
// arm for an aged blocked GPU job even when it is not the first blocked job
// in the pass. A blocked exclusive CPU job sits ahead of a 14-GPU job in the
// queue; under the old blocked==1 condition the guard never armed and a
// steady stream of single-GPU arrivals backfilled every freed device,
// starving the large job until the stream drained (t >= 10000). With the
// fix, the stream is held off and the large job starts as soon as the
// initial occupants have finished.
func TestReservationArmsBehindBlockedCPUJob(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster = smallCluster() // 8 nodes, 16 GPUs
	cfg.Policy = Policy{Colocate: true, MultiGPUPriority: false, BackfillDepth: 256, ReservationAgeSec: 600}
	cfg.AuditPlacement = true

	var specs []workload.JobSpec
	// Sixteen 1-GPU occupants fill the machine, finishing one by one from
	// t=2000 to t=3500 (two per node: node k drains at 2000+200k+100).
	for i := int64(0); i < 16; i++ {
		specs = append(specs, mkGPUSpec(t, 1+i, 0, 2000+100*float64(i), 1))
	}
	// A whole-node CPU job that stays blocked until some node is fully idle.
	specs = append(specs, mkCPUSpec(100, 5, 20000, 40, true))
	// The large GPU job: needs 14 of the 16 GPUs, ages past the guard at
	// t=610 while sitting behind the blocked CPU job.
	specs = append(specs, mkGPUSpec(t, 200, 10, 1000, 14))
	// Backfill pressure: single-GPU arrivals every 100 s through t=10000.
	for i := int64(0); i < 100; i++ {
		specs = append(specs, mkGPUSpec(t, 300+i, 100+100*float64(i), 2000, 1))
	}

	_, res, st := runSim(t, cfg, specs)
	if st.Completed != len(specs) {
		t.Fatalf("completed %d of %d", st.Completed, len(specs))
	}
	// The CPU job takes the first fully drained node (node 0 at t=2100); the
	// reservation then accumulates the remaining 14 GPUs for the large job,
	// which starts the moment the last occupant finishes.
	if got := res[100].StartSec; got != 2100 {
		t.Fatalf("exclusive CPU job started at %v, want 2100", got)
	}
	if got := res[200].StartSec; got != 3500 {
		t.Fatalf("large GPU job started at %v, want 3500 (reservation failed to arm)", got)
	}
}

// TestReservationHoldsCoresAgainstSharedCPUJob pins the second half of the
// starvation fix: while a reservation is accumulating freed GPUs, a shared
// CPU job must not drain the cores of the nodes being held. Node 0 frees its
// GPUs at t=3600 for an aged 4-GPU job that also needs 18 cores per GPU;
// without the fix, a 34-core CPU job submitted at t=4000 lands on node 0 and
// the GPU job cannot start until it finishes (t=24000).
func TestReservationHoldsCoresAgainstSharedCPUJob(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster = smallCluster()
	cfg.Cluster.Nodes = 2 // 4 GPUs, 80 cores
	cfg.Policy = Policy{Colocate: true, MultiGPUPriority: true, BackfillDepth: 256, ReservationAgeSec: 600}
	cfg.AuditPlacement = true

	bigGPU := mkGPUSpec(t, 3, 1, 1000, 4)
	bigGPU.CoresPerGPU = 18 // 36 cores per node: needs nearly whole nodes
	specs := []workload.JobSpec{
		mkGPUSpec(t, 1, 0, 3600, 2), // node 0, frees its GPUs early
		mkGPUSpec(t, 2, 0, 7200, 2), // node 1
		bigGPU,                      // blocked, aged at t=601
		mkCPUSpec(4, 4000, 20000, 34, false),
	}
	_, res, st := runSim(t, cfg, specs)
	if st.Completed != len(specs) {
		t.Fatalf("completed %d of %d", st.Completed, len(specs))
	}
	if got := res[3].StartSec; got != 7200 {
		t.Fatalf("reserved GPU job started at %v, want 7200 (CPU job took reserved cores)", got)
	}
	if got := res[4].StartSec; got != 8200 {
		t.Fatalf("shared CPU job started at %v, want 8200", got)
	}
}

// TestReservationBlocksExclusiveCPUJob covers the exclusive-CPU variant of
// the same hole: while a reservation holds, a whole-node CPU job must not
// take an idle node — on a GPU machine every idle node has free GPUs the
// reservation is counting on. Without the fix the CPU job grabs the one idle
// node at t=650 and the aged 4-GPU job waits for it to finish (t=10650).
func TestReservationBlocksExclusiveCPUJob(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster = smallCluster()
	cfg.Cluster.Nodes = 2
	cfg.Policy = Policy{Colocate: true, MultiGPUPriority: true, BackfillDepth: 256, ReservationAgeSec: 600}
	cfg.AuditPlacement = true

	specs := []workload.JobSpec{
		mkGPUSpec(t, 1, 0, 5000, 2), // node 0; node 1 stays idle
		mkGPUSpec(t, 2, 1, 1000, 4), // blocked (needs both nodes), aged at t=601
		mkCPUSpec(3, 650, 10000, 40, true),
	}
	_, res, st := runSim(t, cfg, specs)
	if st.Completed != len(specs) {
		t.Fatalf("completed %d of %d", st.Completed, len(specs))
	}
	if got := res[2].StartSec; got != 5000 {
		t.Fatalf("reserved GPU job started at %v, want 5000 (exclusive CPU job took the idle node)", got)
	}
	if got := res[3].StartSec; got != 6000 {
		t.Fatalf("exclusive CPU job started at %v, want 6000", got)
	}
}
