package slurm

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/sharing"
)

// RequeuePolicy governs recovery of jobs killed by injected failures — the
// Slurm requeue-and-hold behavior the paper's operations sections assume.
type RequeuePolicy struct {
	// MaxRetries bounds how many times a killed job is requeued before it is
	// abandoned (3 allows up to four attempts).
	MaxRetries int
	// HoldSec is the hold before a killed job re-enters the queue.
	HoldSec float64
	// HoldBackoff multiplies the hold per additional requeue (exponential
	// backoff); values below 1 are treated as 1.
	HoldBackoff float64
	// Checkpoint, when non-nil, credits completed work across attempts for
	// the listed categories, using the Young–Daly interval against the fault
	// plan's MTBF; a restarted attempt pays RestartSec and replays from its
	// last checkpoint instead of from scratch.
	Checkpoint *sharing.CheckpointConfig
}

// DefaultRequeuePolicy matches a production requeue configuration: three
// retries with a one-minute doubling hold, no checkpointing.
func DefaultRequeuePolicy() RequeuePolicy {
	return RequeuePolicy{MaxRetries: 3, HoldSec: 60, HoldBackoff: 2}
}

// Validate reports parameterization errors.
func (p RequeuePolicy) Validate() error {
	if p.MaxRetries < 0 || p.HoldSec < 0 || p.HoldBackoff < 0 {
		return fmt.Errorf("slurm: negative requeue parameter %+v", p)
	}
	return nil
}

// jobRun tracks one job's recovery state across attempts.
type jobRun struct {
	attempt  int     // stamps events so kills invalidate in-flight finishes
	running  bool    // an attempt currently holds resources
	doneSec  float64 // checkpointed progress carried into the next attempt
	busySec  float64 // wall time consumed by failed attempts
	lostSec  float64 // busySec minus checkpoint credit — destroyed work
	requeues int
}

// setupFaults validates the fault configuration and allocates the recovery
// state. With an empty plan nothing is allocated and no fault code runs: the
// simulation is byte-identical to a fault-free build.
func (s *Simulator) setupFaults() error {
	if err := s.cfg.Faults.Validate(); err != nil {
		return err
	}
	if err := s.cfg.Requeue.Validate(); err != nil {
		return err
	}
	s.liveJobs = len(s.specs)
	if s.cfg.Faults.Empty() {
		return nil
	}
	s.faultsOn = true
	s.runState = make([]jobRun, len(s.specs))
	s.specIdx = make(map[int64]int, len(s.specs))
	for i := range s.specs {
		s.specIdx[s.specs[i].ID] = i
	}
	if ck := s.cfg.Requeue.Checkpoint; ck != nil && ck.OverheadSec > 0 {
		// Young–Daly against the failure process the plan actually runs.
		mtbf := s.cfg.Faults.GPUFatalMTBFHours
		if mtbf <= 0 {
			mtbf = s.cfg.Faults.NodeCrashMTBFHours
		}
		if mtbf > 0 {
			s.ckptEvery = sharing.OptimalInterval(ck.OverheadSec, mtbf*3600)
		}
		for _, c := range ck.Categories {
			s.ckptCats[c] = true
		}
	}
	if s.cfg.Faults.NodeOutages() {
		s.injector = faults.NewInjector(s.cfg.Faults, s.cfg.Cluster.Nodes, s.cfg.FaultSeed)
		s.nodeFault = make([]faults.NodeEvent, s.cfg.Cluster.Nodes)
		for n := 0; n < s.cfg.Cluster.Nodes; n++ {
			s.scheduleNodeFault(n)
		}
	}
	return nil
}

// scheduleNodeFault draws the node's next outage from its private stream and
// queues it. Each node has at most one outstanding outage.
func (s *Simulator) scheduleNodeFault(node int) {
	ev, ok := s.injector.Next(node, s.now)
	if !ok {
		return
	}
	s.nodeFault[node] = ev
	s.push(event{timeSec: ev.TimeSec, kind: evNodeFault, idx: node})
}

// onNodeFault applies a node's scheduled outage: a crash kills every resident
// job before draining; a scheduled drain stops new placements and lets
// residents finish. Once the workload is fully drained the failure process
// stops so the run can terminate.
func (s *Simulator) onNodeFault(node int) error {
	if s.liveJobs == 0 {
		return nil
	}
	ev := s.nodeFault[node]
	if err := s.cluster.BeginDrain(node); err != nil {
		return err
	}
	if ev.Kind == faults.Crash {
		s.stats.NodeCrashes++
		for _, id := range s.cluster.JobsOnNode(node) {
			if err := s.kill(s.specIdx[id]); err != nil {
				return err
			}
		}
	} else {
		s.stats.NodeDrains++
	}
	return s.completeDrain(node)
}

// completeDrain downs a draining node once its last allocation is gone and
// schedules the repair. Safe to call speculatively; it no-ops unless the
// node is draining and empty.
func (s *Simulator) completeDrain(node int) error {
	if s.cluster.NodeState(node) != cluster.NodeDraining || s.cluster.NodeAllocations(node) != 0 {
		return nil
	}
	if err := s.cluster.SetDown(node); err != nil {
		return err
	}
	s.downGPUs = s.cluster.DownGPUs()
	s.push(event{timeSec: s.now + s.nodeFault[node].RepairSec, kind: evNodeRepair, idx: node})
	return nil
}

// onNodeRepair returns a repaired node to service and, while jobs remain,
// draws its next outage.
func (s *Simulator) onNodeRepair(node int) error {
	if err := s.cluster.SetUp(node); err != nil {
		return err
	}
	s.downGPUs = s.cluster.DownGPUs()
	s.stats.NodeRepairs++
	// Capacity grew: cached blocked verdicts are stale from here on.
	s.epoch++
	if s.liveJobs > 0 {
		s.scheduleNodeFault(node)
	}
	return nil
}

// onJobFatal handles a per-GPU fatal error scheduled against one attempt.
// The attempt stamp invalidates fatals whose attempt already ended.
func (s *Simulator) onJobFatal(e event) error {
	rs := &s.runState[e.idx]
	if !rs.running || rs.attempt != e.arg {
		return nil
	}
	s.stats.GPUFatals++
	return s.kill(e.idx)
}

// kill force-terminates a running attempt: resources are released, checkpoint
// credit (if any) is banked, destroyed work is accounted, and the job is
// either requeued after its backoff hold or abandoned once retries are
// exhausted.
func (s *Simulator) kill(idx int) error {
	sp := &s.specs[idx]
	rs := &s.runState[idx]
	res := s.results[sp.ID]
	elapsed := s.now - res.StartSec
	s.busyGPUs -= len(res.GPUs)
	shares := res.Shares
	if err := s.cluster.Release(sp.ID); err != nil {
		return err
	}
	s.epoch++
	// A killed attempt never reaches the epilog; drop its monitor. Prolog
	// registers nothing in the pipeline's shared maps, so a fresh monitor on
	// the next attempt finalizes cleanly.
	delete(s.monitors, sp.ID)
	credit := 0.0
	if s.ckptEvery > 0 && s.ckptCats[sp.Category] {
		replay := 0.0
		if rs.doneSec > 0 {
			replay = s.cfg.Requeue.Checkpoint.RestartSec
		}
		if prog := elapsed - replay; prog > 0 {
			credit = math.Floor(prog/s.ckptEvery) * s.ckptEvery
		}
		if maxCredit := sp.RunSec - rs.doneSec; credit > maxCredit {
			credit = maxCredit
		}
		rs.doneSec += credit
	}
	lost := elapsed - credit
	rs.busySec += elapsed
	rs.lostSec += lost
	s.stats.LostGPUHours += float64(len(res.GPUs)) * lost / 3600
	s.stats.RecoveredGPUHours += float64(len(res.GPUs)) * credit / 3600
	rs.running = false
	rs.attempt++
	if s.pred != nil {
		// The killed attempt never completes: drop it from the running set
		// unscored; the next attempt re-registers with a fresh estimate.
		s.pred.onKill(idx)
	}
	if rs.requeues >= s.cfg.Requeue.MaxRetries {
		s.stats.JobsAbandoned++
		delete(s.results, sp.ID)
		s.liveJobs--
	} else {
		rs.requeues++
		s.stats.Requeues++
		hold := s.cfg.Requeue.HoldSec
		if backoff := s.cfg.Requeue.HoldBackoff; backoff > 1 {
			hold *= math.Pow(backoff, float64(rs.requeues-1))
		}
		s.push(event{timeSec: s.now + hold, kind: evRequeue, idx: idx})
	}
	return s.afterRelease(shares)
}

// afterRelease completes any drains the freed shares were blocking.
func (s *Simulator) afterRelease(shares []cluster.NodeShare) error {
	for _, sh := range shares {
		if err := s.completeDrain(sh.Node); err != nil {
			return err
		}
	}
	return nil
}

// onRequeue returns a held job to its pending queue after the backoff hold.
func (s *Simulator) onRequeue(idx int) {
	if s.cfg.Policy.MultiGPUPriority && s.specs[idx].NumGPUs > 1 {
		s.pendMulti = append(s.pendMulti, idx)
	} else {
		s.pendSingle = append(s.pendSingle, idx)
	}
	s.pendingN++
	if s.pendingN > s.stats.MaxQueueLen {
		s.stats.MaxQueueLen = s.pendingN
	}
	// The cached blocked verdict (if any) belongs to the previous attempt.
	s.blockedEpoch[idx] = 0
}
