package slurm

import "testing"

// FuzzCalQueue cross-checks the calendar queue against the container/heap
// spec under adversarial push/pop interleavings decoded from the fuzz input.
// Each operation consumes two bytes: an opcode byte and a time byte. Opcode
// b%4==0 pops (both queues must agree exactly); anything else pushes an
// event whose timestamp is decoded to force same-instant collisions (coarse
// quantization), pushes behind the cursor (absolute times, not offsets from
// "now" — something the DES never does but the queue must survive), and
// far-future outliers that trip the direct-search fallback.
//
// Seed corpus lives in testdata/fuzz/FuzzCalQueue; run `make fuzz` (or
// `go test -fuzz FuzzCalQueue ./internal/slurm`) to explore further.
func FuzzCalQueue(f *testing.F) {
	// Collision-heavy interleaving: pushes at a few quantized instants with
	// pops mixed in.
	f.Add([]byte{1, 10, 2, 10, 3, 10, 0, 0, 1, 200, 0, 0, 0, 0, 0, 0})
	// Far-future outliers around steady pops.
	f.Add([]byte{1, 255, 1, 254, 0, 0, 1, 1, 0, 0, 0, 0})
	// Pop-from-empty and immediate refill.
	f.Add([]byte{0, 0, 0, 0, 1, 7, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		cal := newCalQueue(nil)
		spec := naiveNewEventQueue(nil)
		seq := 0
		for i := 0; i+1 < len(data); i += 2 {
			op, tb := data[i], data[i+1]
			if op%4 == 0 {
				ec, okc := cal.Pop()
				es, oks := spec.Pop()
				if okc != oks || ec != es {
					t.Fatalf("pop diverged: calendar %+v (ok=%v), heap %+v (ok=%v)",
						ec, okc, es, oks)
				}
				continue
			}
			var tsec float64
			switch {
			case tb >= 250:
				// Outlier far past the live window: forces the fallback scan.
				tsec = float64(tb) * 1e7
			case tb >= 128:
				// Fine-grained: distinct instants stressing bucket inserts.
				tsec = float64(tb) * 3.140625
			default:
				// Coarse quantization: heavy same-instant collisions.
				tsec = float64(tb/8) * 512
			}
			e := event{
				timeSec: tsec,
				kind:    eventKind(op % 6),
				idx:     int(op),
				seq:     seq,
			}
			seq++
			cal.Push(e)
			spec.Push(e)
		}
		for {
			ec, okc := cal.Pop()
			es, oks := spec.Pop()
			if okc != oks || ec != es {
				t.Fatalf("drain diverged: calendar %+v (ok=%v), heap %+v (ok=%v)",
					ec, okc, es, oks)
			}
			if !okc {
				break
			}
		}
		if cal.Len() != 0 {
			t.Fatalf("calendar queue reports %d events after drain", cal.Len())
		}
	})
}
