// Package slurm is a discrete-event simulation of the Supercloud workload
// manager: a single queue for all job shapes (the system's §II
// configuration), greedy FIFO scheduling with skip-ahead backfill, high
// priority and dense placement for multi-GPU jobs (§V), CPU-slice
// co-location of GPU jobs on shared nodes (§III's explanation for the short
// GPU queue waits), exclusive whole-node grants for CPU jobs, and
// prolog/epilog hooks that drive the monitoring pipeline.
//
// The simulator exists to show that the paper's scheduling findings emerge
// from the policy rather than from calibration: the same job specs fed
// through this scheduler reproduce the Fig. 3b ordering (GPU jobs wait far
// less than CPU jobs) and §V's size-independent multi-GPU waits, and an
// ablation that forces exclusive nodes for GPU jobs destroys both.
package slurm

import (
	"context"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/monitor"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Policy selects scheduler behavior variants.
type Policy struct {
	// Colocate lets GPU jobs share node CPUs (the production policy). When
	// false — the ablation — every GPU job demands exclusive nodes like a
	// traditional HPC scheduler.
	Colocate bool
	// MultiGPUPriority schedules multi-GPU jobs ahead of the queue (§V).
	MultiGPUPriority bool
	// BackfillDepth bounds how much queue a scheduling pass examines once
	// jobs start blocking: the pass stops as soon as BackfillDepth jobs have
	// been found blocked, so at most that many blocked jobs are skipped over
	// in search of backfill. 0 disables backfill entirely — a blocked queue
	// head blocks everything behind it (strict FIFO).
	BackfillDepth int
	// ReservationAgeSec protects large jobs from backfill starvation: once
	// any blocked GPU job has waited this long, backfill pauses for GPU jobs
	// behind it so freed devices accumulate for it, and CPU jobs are kept
	// off nodes with free GPUs so they cannot strand the reserved devices.
	// 0 disables the guard.
	ReservationAgeSec float64
	// Predict, when enabled, softens the reservation fence with predicted
	// runtimes: GPU candidates whose forecast completion lands before the
	// reservation's shadow time still backfill (see predsched.go). The zero
	// value keeps the default conservative path byte-identical.
	Predict PredictPolicy
}

// DefaultPolicy returns the production Supercloud policy.
func DefaultPolicy() Policy {
	return Policy{Colocate: true, MultiGPUPriority: true, BackfillDepth: 256, ReservationAgeSec: 6 * 3600}
}

// Config parameterizes a simulation run.
type Config struct {
	Cluster cluster.Config
	Policy  Policy
	// Monitor, when non-nil, is driven by the prolog/epilog hooks.
	Monitor *monitor.Config
	// MonitorSeed seeds the sampling noise streams.
	MonitorSeed uint64
	// PowerModel evaluates GPU power for monitoring.
	PowerModel gpu.PowerModel
	// DetailedJobs marks jobs whose full time series is retained.
	DetailedJobs map[int64]bool
	// AuditPlacement cross-checks every allocation against the naive
	// full-scan reference placement (cluster.EnableAudit) and re-verifies
	// the cluster invariants after each grant. Test/debug only — it restores
	// the full node scan the capacity index exists to avoid.
	AuditPlacement bool
	// Faults injects seeded failures (node crashes, drains, per-GPU fatal
	// errors). The zero plan disables injection entirely and leaves every
	// simulation byte-identical to a fault-free run.
	Faults faults.Plan
	// FaultSeed seeds the failure streams, independently of MonitorSeed.
	FaultSeed uint64
	// Requeue governs recovery of jobs killed by injected failures.
	Requeue RequeuePolicy
	// MonitorFaults degrades the collectors on the listed nodes (requires
	// Monitor), so collector faults and cluster faults can run in the same
	// experiment.
	MonitorFaults monitor.FaultPlan
	// SpecEventQueue runs the simulation on the container/heap reference
	// event queue (the executable spec in naive.go) instead of the calendar
	// queue. The differential equivalence harness drives both and asserts
	// byte-identical output; production runs never set it.
	SpecEventQueue bool
	// AuditEvents shadows the calendar queue with the heap spec and cross-
	// checks every dequeue at runtime. Test/debug only — it doubles the
	// queue work the calendar queue exists to avoid.
	AuditEvents bool
}

// DefaultConfig returns a paper-shaped configuration without monitoring.
func DefaultConfig() Config {
	return Config{
		Cluster:    cluster.SupercloudConfig(),
		Policy:     DefaultPolicy(),
		PowerModel: gpu.DefaultPowerModel(),
		Requeue:    DefaultRequeuePolicy(),
	}
}

// Result is one job's scheduling outcome.
type Result struct {
	JobID    int64
	StartSec float64
	EndSec   float64
	WaitSec  float64
	NodeSpan int
	GPUs     []gpu.DeviceID
	// Shares records the node slices the job held while running, so
	// post-hoc audits (the scheduler-invariant property tests) can verify
	// capacity conservation from results alone.
	Shares []cluster.NodeShare
	// Requeues counts how many times injected failures killed and requeued
	// the job before the final successful attempt.
	Requeues int
	// LostSec is the wall time its failed attempts destroyed (after
	// checkpoint credit).
	LostSec float64
}

// Stats aggregates a run.
type Stats struct {
	Completed       int
	MaxQueueLen     int
	GPUBusyHours    float64 // integral of busy GPUs over time
	HorizonSec      float64 // makespan of the simulation
	TotalGPUs       int
	MonitorOverflow int
	// Scheduler hot-path counters (perf observability, not figures).
	SchedulePasses  int64 // queue scans triggered by events
	AllocAttempts   int64 // TryAllocate calls issued by the policy loop
	AllocCacheHits  int64 // pending jobs skipped via the blocked-verdict cache
	EventsProcessed int64 // events popped off the queue by the hot loop
	// Fault-injection and recovery outcomes (all zero without a fault plan).
	NodeCrashes       int
	NodeDrains        int
	NodeRepairs       int
	GPUFatals         int
	Requeues          int
	JobsAbandoned     int     // jobs dropped after exhausting retries
	LostGPUHours      float64 // work destroyed by kills, after checkpoint credit
	RecoveredGPUHours float64 // checkpointed work carried across attempts
	DownGPUHours      float64 // integral of down-node GPU capacity over time
	// Collector-fault outcomes from the monitoring pipeline.
	MonitorDropped int64
	MonitorStalled int
	// Prediction-aware backfill outcomes (all zero unless Policy.Predict is
	// enabled). Hits/misses score each completed attempt against the
	// estimate the scheduler last used for it; a miss means the job overran
	// its prediction and the mispredict fallback re-projected it at its
	// requested limit.
	PredictHits   int
	PredictMisses int
	// PredictedBackfills counts GPU jobs admitted past an armed reservation
	// on the strength of a prediction; PredictedBackfillWaitSec sums their
	// queue waits (the wait-time delta against the conservative fence, which
	// would have held them until the reserved job started).
	PredictedBackfills       int64
	PredictedBackfillWaitSec float64
	// PredictAbsErrSec sums |actual − estimated| runtime over scored
	// completions; divide by Completed for the run's mean absolute error.
	PredictAbsErrSec float64
}

// MeanGPUOccupancy returns busy-GPU-hours over capacity-hours.
func (s Stats) MeanGPUOccupancy() float64 {
	if s.HorizonSec <= 0 || s.TotalGPUs == 0 {
		return 0
	}
	return s.GPUBusyHours / (s.HorizonSec / 3600 * float64(s.TotalGPUs))
}

// Availability returns the mean fraction of GPU capacity in service over the
// run: 1 − down-GPU-hours over capacity-hours.
func (s Stats) Availability() float64 {
	if s.HorizonSec <= 0 || s.TotalGPUs == 0 {
		return 1
	}
	return 1 - s.DownGPUHours/(s.HorizonSec/3600*float64(s.TotalGPUs))
}

// GoodputFraction returns the fraction of busy GPU-hours that survived as
// retained work: 1 − destroyed work over busy time.
func (s Stats) GoodputFraction() float64 {
	if s.GPUBusyHours <= 0 {
		return 1
	}
	return 1 - s.LostGPUHours/s.GPUBusyHours
}

// event is a simulation event.
type event struct {
	timeSec float64
	kind    eventKind
	idx     int // spec index (submit/finish/fatal/requeue) or node index
	seq     int // tie-break for determinism
	arg     int // attempt stamp: kills invalidate in-flight finish/fatal events
}

type eventKind int

const (
	evSubmit eventKind = iota
	evFinish
	evNodeFault
	evNodeRepair
	evJobFatal
	evRequeue
)

// before reports whether e precedes o in the global event order: time, then
// kind rank, then sequence. Sequence numbers are unique, so the order is
// total — every correct priority queue (the calendar queue, the heap spec)
// pops the exact same event sequence, which is what makes the differential
// harness's byte-identity claim meaningful.
func (e event) before(o event) bool {
	if e.timeSec != o.timeSec {
		return e.timeSec < o.timeSec
	}
	if ra, rb := e.kind.rank(), o.kind.rank(); ra != rb {
		return ra < rb
	}
	return e.seq < o.seq
}

// eventQueue is the simulator's future-event set. Implementations must
// dequeue in exactly the total order event.before defines; the calendar
// queue is the production structure, the heap in naive.go the spec, and
// eventAudit the lockstep cross-check of the two.
type eventQueue interface {
	Len() int
	Push(event)
	Pop() (event, bool)
}

// rank orders same-instant events: capacity returns (finishes, repairs)
// before capacity leaves (node faults, job kills), and both before the queue
// grows (requeues, submits) — so each scheduling pass sees settled cluster
// state. For the fault-free kinds this reduces to the original
// finishes-before-submits rule, keeping fault-free runs byte-identical.
func (k eventKind) rank() int {
	switch k {
	case evFinish:
		return 0
	case evNodeRepair:
		return 1
	case evNodeFault:
		return 2
	case evJobFatal:
		return 3
	case evRequeue:
		return 4
	default: // evSubmit
		return 5
	}
}

// Simulator runs job specs through the scheduler.
type Simulator struct {
	cfg     Config
	cluster *cluster.Cluster
	pipe    *monitor.Pipeline

	specs []workload.JobSpec
	// The pending queue, split by priority class: when MultiGPUPriority is
	// on, multi-GPU jobs scan before everything else. Each queue holds spec
	// indices in submit order, so the pair is equivalent to the stable
	// multi-first sort the scheduler used to apply — without re-sorting a
	// copy of the queue on every pass.
	pendMulti  []int
	pendSingle []int
	pendingN   int
	// startedMark flags spec indices started during the current pass so the
	// queues compact in place afterwards.
	startedMark []bool
	// Blocked-verdict cache. Within one epoch (no release since the verdict)
	// cluster capacity only shrinks, so a job seen blocked stays blocked and
	// TryAllocate need not be retried. blockedRestricted records whether the
	// verdict was computed under the reservation's AvoidGPUNodes restriction;
	// such a verdict only remains valid while the restriction is active. A
	// saturated cluster thus short-circuits the whole scan.
	epoch             uint64
	blockedEpoch      []uint64
	blockedRestricted []bool

	events eventQueue
	// next buffers one popped-but-unprocessed event so the sharded window
	// scheduler can peek the next event time without an extra queue API.
	next      event
	hasNext   bool
	seq       int
	processed int64
	now       float64
	results   map[int64]*Result
	// resArena backs every *Result in results with one per-run allocation;
	// start() reuses each slot's GPU/share slices across fault-requeue
	// attempts instead of reallocating them.
	resArena []Result
	// Slab allocators for the result slices: per-job GPU and share lists are
	// cut from large chunks, so a run performs a handful of allocations
	// instead of two per started job — and the chunks are pointer-dense
	// regions the GC scans once instead of half a million tiny objects.
	gpuSlab   []gpu.DeviceID
	shareSlab []cluster.NodeShare
	monitors  map[int64]*monitor.JobMonitor
	stats     Stats
	busyGPUs  int
	lastTick  float64
	telemetry *Telemetry
	// pred holds the online prediction state; nil unless Policy.Predict is
	// enabled, so the default path pays nothing.
	pred *schedPredictor

	// Fault-injection state, allocated only when cfg.Faults is non-empty so
	// the fault-free hot path carries no extra work. faultsOn sits next to
	// the ckptCats byte array so the booleans share one padded word.
	injector  *faults.Injector
	nodeFault []faults.NodeEvent // the one outstanding outage per node
	runState  []jobRun
	specIdx   map[int64]int
	liveJobs  int // jobs not yet completed or abandoned
	downGPUs  int // mirrors cluster.DownGPUs for the time integral
	ckptEvery float64
	ckptCats  [trace.NumCategories]bool
	faultsOn  bool
}

// NewSimulator builds a simulator.
func NewSimulator(cfg Config) (*Simulator, error) {
	cl, err := cluster.New(cfg.Cluster)
	if err != nil {
		return nil, err
	}
	if cfg.AuditPlacement {
		cl.EnableAudit()
	}
	s := &Simulator{
		cfg:      cfg,
		cluster:  cl,
		epoch:    1,
		results:  make(map[int64]*Result),
		monitors: make(map[int64]*monitor.JobMonitor),
	}
	if cfg.Monitor != nil {
		if cfg.PowerModel == nil {
			return nil, fmt.Errorf("slurm: monitoring requires a power model")
		}
		s.pipe, err = monitor.NewPipeline(*cfg.Monitor, cfg.MonitorSeed)
		if err != nil {
			return nil, err
		}
	}
	if len(cfg.MonitorFaults) > 0 {
		if s.pipe == nil {
			return nil, fmt.Errorf("slurm: monitor faults require monitoring")
		}
		s.pipe.InjectFaults(cfg.MonitorFaults)
	}
	return s, nil
}

// Run schedules every spec to completion and returns per-job results plus
// aggregate stats. Specs must be sorted by SubmitSec (as GenerateSpecs
// produces them).
func (s *Simulator) Run(specs []workload.JobSpec) (map[int64]*Result, Stats, error) {
	return s.RunContext(context.Background(), specs)
}

// ctxCheckInterval is how many events RunContext processes between context
// checks — frequent enough that cancellation lands promptly, cheap enough
// that the hot loop doesn't feel it.
const ctxCheckInterval = 1024

// RunContext is Run with cooperative cancellation: the event loop polls
// ctx.Err() every ctxCheckInterval events, so engine.Run's cancellation stops
// an in-flight simulation instead of only skipping future replicates.
func (s *Simulator) RunContext(ctx context.Context, specs []workload.JobSpec) (map[int64]*Result, Stats, error) {
	if err := s.prepare(specs); err != nil {
		return nil, s.stats, err
	}
	if _, err := s.runUntil(ctx, math.Inf(1)); err != nil {
		return nil, s.stats, err
	}
	return s.finalize()
}

// prepare stages a run: per-job state, the initial submit events, the event
// queue (calendar by default, heap spec or lockstep audit under the test
// configs), and the fault machinery — which pushes each node's first outage
// once the queue exists.
func (s *Simulator) prepare(specs []workload.JobSpec) error {
	s.specs = specs
	n := len(specs)
	s.results = make(map[int64]*Result, n)
	s.resArena = make([]Result, n)
	s.startedMark = make([]bool, n)
	s.blockedEpoch = make([]uint64, n)
	s.blockedRestricted = make([]bool, n)
	initial := make([]event, n)
	for i := range specs {
		initial[i] = event{timeSec: specs[i].SubmitSec, kind: evSubmit, idx: i, seq: s.seq}
		s.seq++
	}
	switch {
	case s.cfg.AuditEvents:
		s.events = newEventAudit(newCalQueue(initial), naiveNewEventQueue(initial))
	case s.cfg.SpecEventQueue:
		s.events = naiveNewEventQueue(initial)
	default:
		s.events = newCalQueue(initial)
	}
	if s.cfg.Policy.Predict.Enabled {
		s.pred = newSchedPredictor(s.cfg.Policy.Predict, n, s.cfg.MonitorSeed)
	}
	return s.setupFaults()
}

// peekNext exposes the next event without consuming it, buffering it in
// s.next. The sharded window scheduler uses it to find the barrier time.
func (s *Simulator) peekNext() (event, bool) {
	if !s.hasNext {
		e, ok := s.events.Pop()
		if !ok {
			return event{}, false
		}
		s.next, s.hasNext = e, true
	}
	return s.next, true
}

// nextEventTime reports the timestamp of the next queued event, if any.
func (s *Simulator) nextEventTime() (float64, bool) {
	e, ok := s.peekNext()
	return e.timeSec, ok
}

// runUntil processes events with timestamps strictly below limit and reports
// whether the queue drained. With limit=+Inf it is the whole event loop; the
// sharded mode calls it with successive window boundaries so shards never run
// ahead of a synchronization barrier.
func (s *Simulator) runUntil(ctx context.Context, limit float64) (bool, error) {
	for {
		e, ok := s.peekNext()
		if !ok {
			return true, nil
		}
		if e.timeSec >= limit {
			return false, nil
		}
		s.hasNext = false
		if s.processed%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return false, fmt.Errorf("slurm: run canceled after %d events: %w", s.processed, err)
			}
		}
		s.processed++
		s.advance(e.timeSec)
		switch e.kind {
		case evSubmit:
			if s.cfg.Policy.MultiGPUPriority && s.specs[e.idx].NumGPUs > 1 {
				s.pendMulti = append(s.pendMulti, e.idx)
			} else {
				s.pendSingle = append(s.pendSingle, e.idx)
			}
			s.pendingN++
			if s.pendingN > s.stats.MaxQueueLen {
				s.stats.MaxQueueLen = s.pendingN
			}
		case evFinish:
			if err := s.finish(e); err != nil {
				return false, err
			}
		case evNodeFault:
			if err := s.onNodeFault(e.idx); err != nil {
				return false, err
			}
		case evNodeRepair:
			if err := s.onNodeRepair(e.idx); err != nil {
				return false, err
			}
		case evJobFatal:
			if err := s.onJobFatal(e); err != nil {
				return false, err
			}
		case evRequeue:
			s.onRequeue(e.idx)
		}
		if err := s.schedule(); err != nil {
			return false, err
		}
		if s.telemetry != nil {
			s.telemetry.record(s.now, s.busyGPUs, s.pendingN, s.downGPUs)
		}
	}
}

// finalize checks the drain and closes out the run's aggregate stats.
func (s *Simulator) finalize() (map[int64]*Result, Stats, error) {
	if s.pendingN > 0 {
		return nil, s.stats, fmt.Errorf("slurm: %d jobs still pending at drain", s.pendingN)
	}
	s.stats.Completed = len(s.results)
	s.stats.HorizonSec = s.now
	s.stats.TotalGPUs = s.cfg.Cluster.TotalGPUs()
	s.stats.EventsProcessed = s.processed
	if s.pipe != nil {
		s.stats.MonitorOverflow = s.pipe.Overflows()
		s.stats.MonitorDropped = s.pipe.DroppedSamples()
		s.stats.MonitorStalled = s.pipe.StalledJobs()
	}
	return s.results, s.stats, nil
}

// Feasible partitions specs into jobs the cluster can ever satisfy under
// cfg's policy and jobs whose requests exceed total capacity — the ones real
// Slurm rejects at submit with "exceeds partition limits". Without this gate
// a down-scaled cluster deadlocks the drain: an infeasible job sits at the
// queue head forever. The replicated experiment engine and cmd/simcloud
// filter through it and report the rejection count.
func Feasible(cfg Config, specs []workload.JobSpec) (ok, rejected []workload.JobSpec) {
	ok = make([]workload.JobSpec, 0, len(specs))
	for i := range specs {
		sp := specs[i]
		if feasible(cfg, &sp) {
			ok = append(ok, sp)
		} else {
			rejected = append(rejected, sp)
		}
	}
	return ok, rejected
}

// feasible reports whether an idle cluster could grant the spec's effective
// request (the same transform the scheduler applies).
func feasible(cfg Config, sp *workload.JobSpec) bool {
	req := requestFor(cfg, sp)
	cl := cfg.Cluster
	if sp.IsGPU() {
		// Per idle node, the grantable GPU count is bounded by the device
		// count and by the accompanying CPU/memory slices.
		g := cl.GPUsPerNode
		if g < 1 {
			g = 1
		}
		if req.CoresPerGPU > 0 {
			if byCores := cl.CoresPerNode / req.CoresPerGPU; byCores < g {
				g = byCores
			}
		}
		if req.MemGBPerGPU > 0 {
			if byMem := int(cl.MemGBPerNode / req.MemGBPerGPU); byMem < g {
				g = byMem
			}
		}
		return g >= 1 && req.GPUs <= cl.Nodes*g
	}
	if req.Exclusive {
		nodesNeeded := (req.Cores + cl.CoresPerNode - 1) / cl.CoresPerNode
		if nodesNeeded < 1 {
			nodesNeeded = 1
		}
		return nodesNeeded <= cl.Nodes
	}
	return req.Cores <= cl.TotalCores() && req.MemGB <= float64(cl.Nodes)*cl.MemGBPerNode
}

// Simulate is the one-shot convenience the replication engine fans out:
// build a simulator for cfg and run specs to completion.
func Simulate(cfg Config, specs []workload.JobSpec) (map[int64]*Result, Stats, error) {
	sim, err := NewSimulator(cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	return sim.Run(specs)
}

// push adds an event with a deterministic sequence number.
func (s *Simulator) push(e event) {
	e.seq = s.seq
	s.seq++
	if s.hasNext {
		// A peeked event is parked outside the queue; return it so the new
		// event cannot jump ahead of the ordering contract.
		s.events.Push(s.next)
		s.hasNext = false
	}
	s.events.Push(e)
}

// advance moves simulated time forward, integrating GPU busy time and
// down-node capacity loss.
func (s *Simulator) advance(t float64) {
	if t < s.now {
		t = s.now
	}
	s.stats.GPUBusyHours += float64(s.busyGPUs) * (t - s.lastTick) / 3600
	if s.downGPUs > 0 {
		s.stats.DownGPUHours += float64(s.downGPUs) * (t - s.lastTick) / 3600
	}
	s.lastTick = t
	s.now = t
}

// request converts a spec into a cluster request under the active policy.
func (s *Simulator) request(sp *workload.JobSpec) cluster.Request {
	return requestFor(s.cfg, sp)
}

// requestFor is the policy transform shared by the scheduler and the
// submit-time feasibility gate.
func requestFor(cfg Config, sp *workload.JobSpec) cluster.Request {
	if sp.IsGPU() {
		if cfg.Policy.Colocate {
			return cluster.Request{
				JobID:       sp.ID,
				GPUs:        sp.NumGPUs,
				CoresPerGPU: sp.CoresPerGPU,
				MemGBPerGPU: sp.MemGBPerGPU,
			}
		}
		// Ablation: GPU jobs reserve whole idle nodes, like classic HPC
		// exclusive reservations — no other job may share their nodes.
		return cluster.Request{
			JobID:     sp.ID,
			GPUs:      sp.NumGPUs,
			Exclusive: true,
		}
	}
	return cluster.Request{
		JobID:     sp.ID,
		Cores:     sp.Cores,
		MemGB:     sp.MemGB,
		Exclusive: sp.Exclusive,
	}
}

// schedule makes a pass over the queue in priority order (multi-GPU jobs
// first when MultiGPUPriority is on, submit order within each class),
// starting everything that fits. The pass stops once BackfillDepth jobs have
// been found blocked. Jobs already known to be blocked in the current epoch
// are skipped without re-asking the cluster — capacity only shrinks between
// releases, so the verdict cannot have improved.
func (s *Simulator) schedule() error {
	if s.pendingN == 0 {
		return nil
	}
	s.stats.SchedulePasses++
	depth := s.cfg.Policy.BackfillDepth
	ageSec := s.cfg.Policy.ReservationAgeSec
	blocked := 0
	reserving := false
	stop := false
	startedAny := false
	// arm grants the pass's reservation to a blocked GPU job once it has
	// aged past the guard threshold — whatever its position in the queue,
	// not just at the head. Everything scanned after it backfills only
	// around the hold: GPU jobs are skipped (or, under Policy.Predict,
	// admitted when their forecast completion beats the reservation's shadow
	// time), and CPU jobs must avoid nodes with free GPUs.
	reservedIdx := -1
	var shadow float64
	shadowValid := false
	arm := func(idx int, sp *workload.JobSpec) {
		if !reserving && ageSec > 0 && s.now-sp.SubmitSec >= ageSec {
			reserving = true
			reservedIdx = idx
		}
	}
	for _, queue := range [2][]int{s.pendMulti, s.pendSingle} {
		for _, idx := range queue {
			if depth > 0 && blocked >= depth {
				stop = true
			}
			if stop {
				break
			}
			sp := &s.specs[idx]
			isGPU := sp.IsGPU()
			predAdmit := false
			if reserving && isGPU {
				// An aged blocked GPU job holds a reservation: freed GPUs
				// accumulate for it instead of leaking to backfill — unless
				// prediction projects this candidate done before the shadow.
				if s.pred == nil || !s.predictiveAdmit(sp, reservedIdx, &shadow, &shadowValid) {
					continue
				}
				predAdmit = true
			}
			if s.blockedEpoch[idx] == s.epoch && (!s.blockedRestricted[idx] || reserving) {
				s.stats.AllocCacheHits++
				blocked++
				if depth == 0 {
					stop = true // strict FIFO: a blocked head blocks the queue
				} else if isGPU {
					arm(idx, sp)
				}
				continue
			}
			req := s.request(sp)
			if reserving && !isGPU {
				// Keep CPU jobs off the nodes whose GPUs are being reserved.
				req.AvoidGPUNodes = true
			}
			s.stats.AllocAttempts++
			alloc, err := s.cluster.TryAllocate(req)
			if err != nil {
				if _, soft := err.(cluster.ErrInsufficient); soft {
					blocked++
					s.blockedEpoch[idx] = s.epoch
					s.blockedRestricted[idx] = req.AvoidGPUNodes
					if depth == 0 {
						stop = true
					} else if isGPU {
						arm(idx, sp)
					}
					continue
				}
				return err
			}
			s.startedMark[idx] = true
			startedAny = true
			s.start(idx, alloc)
			if predAdmit {
				s.stats.PredictedBackfills++
				s.stats.PredictedBackfillWaitSec += s.now - sp.SubmitSec
			}
		}
		if stop {
			break
		}
	}
	if startedAny {
		s.pendMulti = s.compactQueue(s.pendMulti)
		s.pendSingle = s.compactQueue(s.pendSingle)
	}
	return nil
}

// compactQueue removes started jobs from a pending queue in place, clearing
// their marks and the pending count as it goes.
func (s *Simulator) compactQueue(q []int) []int {
	out := q[:0]
	for _, idx := range q {
		if s.startedMark[idx] {
			s.startedMark[idx] = false
			s.pendingN--
			continue
		}
		out = append(out, idx)
	}
	return out
}

// start begins execution of a granted job attempt: records the result, runs
// the prolog, and schedules the finish event — plus, under a fault plan, any
// fatal error drawn against the attempt.
func (s *Simulator) start(idx int, alloc *cluster.Allocation) {
	sp := &s.specs[idx]
	// The result lives in the per-run arena; requeued attempts reuse the
	// slot's GPU and share slices, and first attempts cut them from slabs.
	res := &s.resArena[idx]
	ngpus := 0
	for i := range alloc.Shares {
		ngpus += len(alloc.Shares[i].GPUIDs)
	}
	shares := res.Shares[:0]
	if cap(shares) < len(alloc.Shares) {
		shares = s.allocShares(len(alloc.Shares))
	}
	shares = append(shares, alloc.Shares...)
	gpus := res.GPUs[:0]
	if cap(gpus) < ngpus {
		gpus = s.allocGPUs(ngpus)
	}
	for i := range alloc.Shares {
		gpus = append(gpus, alloc.Shares[i].GPUIDs...)
	}
	*res = Result{
		JobID:    sp.ID,
		StartSec: s.now,
		EndSec:   s.now + sp.RunSec,
		WaitSec:  s.now - sp.SubmitSec,
		NodeSpan: alloc.NodeSpan(),
		GPUs:     gpus,
		Shares:   shares,
	}
	finishEv := event{timeSec: res.EndSec, kind: evFinish, idx: idx}
	if s.faultsOn {
		rs := &s.runState[idx]
		rs.running = true
		// Queue wait excludes wall time consumed by earlier failed attempts.
		res.WaitSec -= rs.busySec
		dur := sp.RunSec - rs.doneSec
		if rs.doneSec > 0 {
			dur += s.cfg.Requeue.Checkpoint.RestartSec
		}
		res.EndSec = s.now + dur
		finishEv.timeSec = res.EndSec
		finishEv.arg = rs.attempt
		if off, ok := faults.AttemptFatal(s.cfg.Faults, s.cfg.FaultSeed, sp.ID, rs.attempt, len(res.GPUs), dur); ok {
			s.push(event{timeSec: s.now + off, kind: evJobFatal, idx: idx, arg: rs.attempt})
		}
	}
	s.results[sp.ID] = res
	s.busyGPUs += len(res.GPUs)
	if s.pred != nil {
		s.pred.onStart(idx, sp)
	}
	if s.pipe != nil && sp.IsGPU() {
		sources := make([]monitor.Source, len(sp.Profiles))
		for i, p := range sp.Profiles {
			sources[i] = p
		}
		node := 0
		if len(alloc.Shares) > 0 {
			node = alloc.Shares[0].Node
		}
		s.monitors[sp.ID] = s.pipe.Prolog(sp.ID, node, s.cfg.Cluster.GPUSpec,
			s.cfg.PowerModel, sources, s.cfg.DetailedJobs[sp.ID])
	}
	s.push(finishEv)
}

// allocGPUs cuts an n-capacity GPU list from the slab, growing it by chunk.
func (s *Simulator) allocGPUs(n int) []gpu.DeviceID {
	if cap(s.gpuSlab)-len(s.gpuSlab) < n {
		c := 1 << 14
		if n > c {
			c = n
		}
		s.gpuSlab = make([]gpu.DeviceID, 0, c)
	}
	off := len(s.gpuSlab)
	s.gpuSlab = s.gpuSlab[:off+n]
	return s.gpuSlab[off : off : off+n]
}

// allocShares cuts an n-capacity share list from the slab, growing it by
// chunk.
func (s *Simulator) allocShares(n int) []cluster.NodeShare {
	if cap(s.shareSlab)-len(s.shareSlab) < n {
		c := 1 << 13
		if n > c {
			c = n
		}
		s.shareSlab = make([]cluster.NodeShare, 0, c)
	}
	off := len(s.shareSlab)
	s.shareSlab = s.shareSlab[:off+n]
	return s.shareSlab[off : off : off+n]
}

// finish releases a completed job and runs the epilog. Under a fault plan it
// drops stale finish events (the attempt was killed first) and completes any
// node drain the release unblocks.
func (s *Simulator) finish(e event) error {
	idx := e.idx
	sp := &s.specs[idx]
	if s.faultsOn {
		rs := &s.runState[idx]
		if !rs.running || rs.attempt != e.arg {
			return nil // stale: this attempt was killed before it finished
		}
		rs.running = false
		res := s.results[sp.ID]
		res.Requeues = rs.requeues
		res.LostSec = rs.lostSec
	}
	s.liveJobs--
	res := s.results[sp.ID]
	s.busyGPUs -= len(res.GPUs)
	if s.pred != nil {
		s.pred.onFinish(idx, sp, res, s.now, &s.stats)
	}
	if err := s.cluster.Release(sp.ID); err != nil {
		return err
	}
	// Capacity grew: cached blocked verdicts are stale from here on.
	s.epoch++
	if m, ok := s.monitors[sp.ID]; ok {
		if err := s.pipe.Epilog(m); err != nil {
			return err
		}
		delete(s.monitors, sp.ID)
	}
	if s.faultsOn {
		return s.afterRelease(res.Shares)
	}
	return nil
}

// BuildDataset assembles the joined dataset from a finished run: scheduler-
// side fields from the results, GPU-side summaries from the monitoring
// pipeline (or analytically from profiles when monitoring was off) — the
// §II join on job IDs.
func (s *Simulator) BuildDataset(specs []workload.JobSpec, results map[int64]*Result, durationDays float64) *trace.Dataset {
	ds := trace.NewDataset(durationDays)
	s.appendDataset(ds, specs, results)
	return ds
}

// appendDataset adds one run's records to an existing dataset, so the sharded
// runner can merge per-shard simulators into a single dataset in shard order.
func (s *Simulator) appendDataset(ds *trace.Dataset, specs []workload.JobSpec, results map[int64]*Result) {
	hostModel := workload.DefaultHostLoadModel()
	for i := range specs {
		sp := &specs[i]
		res := results[sp.ID]
		if res == nil {
			continue
		}
		rec := trace.JobRecord{
			JobID:       sp.ID,
			User:        sp.User,
			Interface:   sp.Interface,
			Exit:        sp.Exit,
			SubmitSec:   sp.SubmitSec,
			WaitSec:     res.WaitSec,
			RunSec:      sp.RunSec,
			LimitSec:    sp.LimitSec,
			NumGPUs:     sp.NumGPUs,
			CoresPerGPU: sp.CoresPerGPU,
			Cores:       sp.Cores,
			MemGB:       sp.MemGB,

			Requeues:       res.Requeues,
			FailureLossSec: res.LostSec,
		}
		rec.HostCPU = hostModel.HostLoadDigest(sp)
		if sp.IsGPU() {
			if s.pipe != nil {
				rec.PerGPU = s.pipe.Summaries(sp.ID)
			}
			if rec.PerGPU == nil {
				for _, p := range sp.Profiles {
					rec.PerGPU = append(rec.PerGPU, p.Summaries(s.cfg.Cluster.GPUSpec, s.cfg.PowerModel))
				}
			}
			rec.FinalizeGPUSummary()
		}
		ds.Add(rec)
		if s.pipe != nil {
			if ts := s.pipe.Series(sp.ID); ts != nil {
				ds.AttachSeries(ts)
			}
		}
	}
}
