package slurm

// Allocation-count guards on the event hot path, wired into `make check`
// (the alloc-guard target). The heap spec pays two boxing allocations per
// event just moving events through `any`; the calendar queue exists to pay
// zero. These tests pin that property so a regression (a future `any`
// boundary, an accidental per-event copy) fails CI rather than silently
// eating the PR's speedup.

import (
	"testing"

	"repro/internal/workload"
)

// TestCalQueueSteadyStateAllocFree: once a bucket has capacity, a
// pop-then-push cycle at the live instant must not allocate at all.
func TestCalQueueSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is not meaningful under the race detector")
	}
	initial := make([]event, 1024)
	for i := range initial {
		initial[i] = event{timeSec: float64(i) * 50, kind: evSubmit, seq: i}
	}
	q := newCalQueue(initial)
	seq := len(initial)
	// Warm up: one full cycle reallocates any cap==len init bucket touched.
	for i := 0; i < 64; i++ {
		e, ok := q.Pop()
		if !ok {
			t.Fatal("queue drained during warm-up")
		}
		q.Push(event{timeSec: e.timeSec, kind: evFinish, seq: seq})
		seq++
	}
	allocs := testing.AllocsPerRun(500, func() {
		e, ok := q.Pop()
		if !ok {
			t.Fatal("queue drained during measurement")
		}
		q.Push(event{timeSec: e.timeSec, kind: evFinish, seq: seq})
		seq++
	})
	if allocs != 0 {
		t.Fatalf("steady-state pop+push allocates %.1f objects per cycle, want 0", allocs)
	}
}

// TestHeapSpecBoxesPerEvent documents why the calendar queue exists: the
// container/heap spec allocates on every push/pop cycle (interface boxing).
// If Go ever devirtualizes this away, the comparison benchmark claims in
// EXPERIMENTS.md need re-deriving — this test is the tripwire.
func TestHeapSpecBoxesPerEvent(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is not meaningful under the race detector")
	}
	initial := make([]event, 1024)
	for i := range initial {
		initial[i] = event{timeSec: float64(i) * 50, kind: evSubmit, seq: i}
	}
	q := naiveNewEventQueue(initial)
	seq := len(initial)
	allocs := testing.AllocsPerRun(500, func() {
		e, _ := q.Pop()
		q.Push(event{timeSec: e.timeSec, kind: evFinish, seq: seq})
		seq++
	})
	if allocs < 1 {
		t.Logf("heap spec now allocates %.1f per cycle; boxing cost may have changed", allocs)
	}
}

// TestSimulatePerJobAllocBudget bounds end-to-end allocation on the
// fault-free DES hot path: a whole run must stay under a small per-job
// budget (queue traffic is allocation-free, results live in arenas/slabs,
// so what remains is cluster allocation state and pending-queue growth).
func TestSimulatePerJobAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is not meaningful under the race detector")
	}
	if testing.Short() {
		t.Skip("allocation budget run in -short mode")
	}
	gcfg := workload.ScaledConfig(0.05)
	gcfg.Seed = 3
	gen, err := workload.NewGenerator(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Cluster.Nodes = 12
	specs, _ := Feasible(cfg, gen.GenerateSpecs())
	if len(specs) < 1000 {
		t.Fatalf("population too small for a stable budget: %d jobs", len(specs))
	}
	allocs := testing.AllocsPerRun(2, func() {
		if _, _, err := Simulate(cfg, specs); err != nil {
			t.Fatal(err)
		}
	})
	perJob := allocs / float64(len(specs))
	// Budget: ~6 allocations/job measured post-optimization (cluster share
	// bookkeeping, pending-queue growth, map growth), with 2x headroom
	// against noise. The pre-calendar-queue loop sat near 8/job from event
	// boxing alone, so 12 still catches a wholesale regression.
	const budget = 12.0
	if perJob > budget {
		t.Fatalf("Simulate allocates %.1f objects/job (%.0f total for %d jobs), budget %.0f",
			perJob, allocs, len(specs), budget)
	}
	t.Logf("Simulate: %.2f allocs/job over %d jobs", perJob, len(specs))
}
