package slurm

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/monitor"
	"repro/internal/sharing"
	"repro/internal/trace"
	"repro/internal/workload"
)

// fatalOnlyPlan injects per-GPU fatal errors with no node outages.
func fatalOnlyPlan(mtbfHours float64) faults.Plan {
	return faults.Plan{GPUFatalMTBFHours: mtbfHours}
}

// TestGPUFatalTimeline exploits the purity of faults.AttemptFatal: the full
// kill/hold/requeue/finish timeline of a single job on an idle cluster is
// predictable outside the simulator, so every recovery accounting field can be
// asserted exactly rather than statistically.
func TestGPUFatalTimeline(t *testing.T) {
	const (
		seed    = uint64(7)
		run     = 600.0
		hold    = 120.0
		backoff = 2.0
	)
	cfg := DefaultConfig()
	cfg.Cluster = smallCluster()
	cfg.Faults = fatalOnlyPlan(0.1) // 360 s MTBF: several kills before survival
	cfg.FaultSeed = seed
	cfg.Requeue = RequeuePolicy{MaxRetries: 50, HoldSec: hold, HoldBackoff: backoff}

	// Predict the timeline attempt by attempt. Without checkpointing every
	// attempt re-runs the full duration, so the fatal draw for attempt a is
	// AttemptFatal(plan, seed, id, a, 1, run).
	var (
		kills    int
		lostSec  float64
		holdSec  float64
		startAt  = 0.0 // each attempt starts as soon as its requeue lands
		predEnd  float64
		predWait float64
	)
	for a := 0; ; a++ {
		if a > 60 {
			t.Fatal("seed never survives 60 attempts; pick another seed")
		}
		off, killed := faults.AttemptFatal(cfg.Faults, seed, 1, a, 1, run)
		if !killed {
			predEnd = startAt + run
			break
		}
		kills++
		lostSec += off
		h := hold * math.Pow(backoff, float64(kills-1))
		holdSec += h
		startAt += off + h
	}
	if kills == 0 {
		t.Fatal("seed draws no fatal at all; the timeline test needs kills")
	}
	predWait = holdSec // queue wait excludes the failed attempts' busy time

	specs := []workload.JobSpec{mkGPUSpec(t, 1, 0, run, 1)}
	_, res, st := runSim(t, cfg, specs)
	r := res[1]
	const eps = 1e-9
	if r.Requeues != kills {
		t.Fatalf("requeues = %d, predicted %d", r.Requeues, kills)
	}
	if math.Abs(r.LostSec-lostSec) > eps {
		t.Fatalf("lost = %v, predicted %v", r.LostSec, lostSec)
	}
	if math.Abs(r.WaitSec-predWait) > eps {
		t.Fatalf("wait = %v, predicted hold total %v", r.WaitSec, predWait)
	}
	if math.Abs(r.EndSec-predEnd) > eps {
		t.Fatalf("end = %v, predicted %v", r.EndSec, predEnd)
	}
	if st.GPUFatals != kills || st.Requeues != kills {
		t.Fatalf("stats fatals/requeues = %d/%d, predicted %d", st.GPUFatals, st.Requeues, kills)
	}
	if math.Abs(st.LostGPUHours-lostSec/3600) > eps {
		t.Fatalf("lost GPU-hours = %v, predicted %v", st.LostGPUHours, lostSec/3600)
	}
	if math.Abs(st.GPUBusyHours-(lostSec+run)/3600) > eps {
		t.Fatalf("busy GPU-hours = %v, predicted %v", st.GPUBusyHours, (lostSec+run)/3600)
	}
	if st.JobsAbandoned != 0 || st.Completed != 1 {
		t.Fatalf("completed/abandoned = %d/%d", st.Completed, st.JobsAbandoned)
	}

	// The recovery fields survive the dataset join.
	sim, _ := NewSimulator(cfg)
	results, _, err := sim.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	ds := sim.BuildDataset(specs, results, 1)
	rec := &ds.Jobs[0]
	if rec.Requeues != kills || math.Abs(rec.FailureLossSec-lostSec) > eps {
		t.Fatalf("dataset record requeues/loss = %d/%v, want %d/%v",
			rec.Requeues, rec.FailureLossSec, kills, lostSec)
	}
}

// TestRequeueExhaustionAbandons pins the retry limit: a job whose every
// attempt dies must be dropped after MaxRetries requeues, not retried forever
// and not left pending at drain.
func TestRequeueExhaustionAbandons(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster = smallCluster()
	// 3.6 s MTBF against a 6000 s run: every attempt dies almost surely.
	cfg.Faults = fatalOnlyPlan(0.001)
	cfg.FaultSeed = 3
	cfg.Requeue = RequeuePolicy{MaxRetries: 2, HoldSec: 10, HoldBackoff: 2}
	specs := []workload.JobSpec{mkGPUSpec(t, 1, 0, 6000, 1)}
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, st, err := sim.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	if st.JobsAbandoned != 1 || st.Completed != 0 {
		t.Fatalf("abandoned/completed = %d/%d, want 1/0", st.JobsAbandoned, st.Completed)
	}
	if st.Requeues != cfg.Requeue.MaxRetries {
		t.Fatalf("requeues = %d, want %d", st.Requeues, cfg.Requeue.MaxRetries)
	}
	if st.GPUFatals != cfg.Requeue.MaxRetries+1 {
		t.Fatalf("fatals = %d, want %d", st.GPUFatals, cfg.Requeue.MaxRetries+1)
	}
	if res[1] != nil {
		t.Fatalf("abandoned job still has a result: %+v", res[1])
	}
	if sim.cluster.FreeGPUs() != cfg.Cluster.TotalGPUs() {
		t.Fatalf("abandoned job leaked capacity: free %d of %d",
			sim.cluster.FreeGPUs(), cfg.Cluster.TotalGPUs())
	}
}

// TestCheckpointReducesLostWork compares the same seeded failure process with
// and without checkpoint credit: checkpointing must recover work, reduce the
// loss, and never stop the job from completing.
func TestCheckpointReducesLostWork(t *testing.T) {
	base := DefaultConfig()
	base.Cluster = smallCluster()
	base.Faults = fatalOnlyPlan(0.3) // 1080 s MTBF against a 3600 s run
	base.FaultSeed = 11
	base.Requeue = RequeuePolicy{MaxRetries: 5000, HoldSec: 1, HoldBackoff: 1}
	specs := []workload.JobSpec{mkGPUSpec(t, 1, 0, 3600, 1)}

	_, resNo, stNo := runSim(t, base, specs)

	ck := base
	ck.Requeue.Checkpoint = &sharing.CheckpointConfig{
		OverheadSec: 10,
		RestartSec:  30,
		Categories:  []trace.Category{trace.Mature, trace.Exploratory, trace.Development, trace.IDE},
	}
	_, resCk, stCk := runSim(t, ck, specs)

	if stNo.Completed != 1 || stCk.Completed != 1 {
		t.Fatalf("completed without/with ckpt = %d/%d", stNo.Completed, stCk.Completed)
	}
	if stNo.GPUFatals == 0 {
		t.Fatal("failure process never fired; the comparison is vacuous")
	}
	if stCk.RecoveredGPUHours <= 0 {
		t.Fatalf("checkpointing recovered nothing (fatals=%d)", stCk.GPUFatals)
	}
	if stNo.RecoveredGPUHours != 0 {
		t.Fatalf("recovered %v GPU-hours without a checkpoint config", stNo.RecoveredGPUHours)
	}
	if stCk.LostGPUHours >= stNo.LostGPUHours {
		t.Fatalf("checkpointing did not reduce loss: %v >= %v", stCk.LostGPUHours, stNo.LostGPUHours)
	}
	if resCk[1].LostSec >= resNo[1].LostSec {
		t.Fatalf("per-job loss did not shrink: %v >= %v", resCk[1].LostSec, resNo[1].LostSec)
	}
}

// TestNodeCrashAvailability drives a crash/repair process under real load and
// checks the capacity accounting: crashes and repairs balance, down time is
// integrated, and the event-driven telemetry reproduces the stats-side
// availability integral.
func TestNodeCrashAvailability(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster = smallCluster()
	cfg.AuditPlacement = true
	cfg.Faults = faults.Plan{NodeCrashMTBFHours: 6, MeanRepairHours: 1}
	cfg.FaultSeed = 5
	cfg.Requeue = RequeuePolicy{MaxRetries: 100, HoldSec: 30, HoldBackoff: 2}

	var specs []workload.JobSpec
	for i := 0; i < 24; i++ {
		specs = append(specs, mkGPUSpec(t, int64(i+1), float64(i)*60, 4*3600, 1+i%2))
	}
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tel := sim.EnableTelemetry(0)
	res, st, err := sim.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	if st.NodeCrashes == 0 {
		t.Fatal("no crashes fired; pick a different seed or rate")
	}
	if st.DownGPUHours <= 0 || st.Availability() >= 1 {
		t.Fatalf("down hours %v, availability %v", st.DownGPUHours, st.Availability())
	}
	if st.LostGPUHours <= 0 {
		t.Fatal("crashes killed jobs but destroyed no work")
	}
	if st.Completed+st.JobsAbandoned != len(specs) {
		t.Fatalf("completed %d + abandoned %d != %d jobs", st.Completed, st.JobsAbandoned, len(specs))
	}
	if got := st.Completed; got != len(res) {
		t.Fatalf("stats completed %d != %d results", got, len(res))
	}
	// Every outage that fired during the workload was repaired: the cluster
	// ends whole, with every node back up and capacity conserved.
	for n := 0; n < cfg.Cluster.Nodes; n++ {
		if s := sim.cluster.NodeState(n); s != cluster.NodeUp {
			t.Fatalf("node %d ends in state %v", n, s)
		}
	}
	if sim.cluster.FreeGPUs() != cfg.Cluster.TotalGPUs() {
		t.Fatalf("free GPUs %d != total %d after full repair",
			sim.cluster.FreeGPUs(), cfg.Cluster.TotalGPUs())
	}
	if err := sim.cluster.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The telemetry series and the stats integral are two independent
	// accountings of the same down time.
	if got, want := tel.AvailabilityMean(st.TotalGPUs), st.Availability(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("telemetry availability %v != stats availability %v", got, want)
	}
}

// TestNodeDrainIsGraceful pins the drain semantics: scheduled drains let
// residents finish, so a drain-only plan kills nothing and loses no work —
// it only removes capacity for the repair window.
func TestNodeDrainIsGraceful(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster = smallCluster()
	cfg.AuditPlacement = true
	cfg.Faults = faults.Plan{NodeDrainMTBFHours: 8, MeanRepairHours: 0.5}
	cfg.FaultSeed = 2
	var specs []workload.JobSpec
	for i := 0; i < 16; i++ {
		specs = append(specs, mkGPUSpec(t, int64(i+1), float64(i)*300, 2*3600, 1))
	}
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, st, err := sim.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	if st.NodeDrains == 0 {
		t.Fatal("no drains fired; pick a different seed or rate")
	}
	if st.NodeCrashes != 0 || st.GPUFatals != 0 || st.Requeues != 0 || st.JobsAbandoned != 0 {
		t.Fatalf("drain-only plan produced kills: %+v", st)
	}
	if st.LostGPUHours != 0 || st.RecoveredGPUHours != 0 {
		t.Fatalf("drain-only plan lost work: %v/%v", st.LostGPUHours, st.RecoveredGPUHours)
	}
	if st.DownGPUHours <= 0 {
		t.Fatal("drains never took capacity down")
	}
	if st.Completed != len(specs) {
		t.Fatalf("completed %d of %d", st.Completed, len(specs))
	}
	for _, r := range res {
		if r.Requeues != 0 || r.LostSec != 0 {
			t.Fatalf("job %d shows recovery activity under a drain-only plan: %+v", r.JobID, r)
		}
	}
	if err := sim.cluster.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultRunDeterministic locks the reproducibility contract: the same
// (config, specs, seed) triple replays bit-identically, and a different fault
// seed actually changes the failure process.
func TestFaultRunDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster = smallCluster()
	cfg.Faults = faults.Plan{
		NodeCrashMTBFHours: 12,
		NodeDrainMTBFHours: 24,
		MeanRepairHours:    1,
		GPUFatalMTBFHours:  24,
	}
	cfg.FaultSeed = 9
	specs := contended(t, 42, cfg)

	_, res1, st1 := runSim(t, cfg, specs)
	_, res2, st2 := runSim(t, cfg, specs)
	if st1 != st2 {
		t.Fatalf("stats diverge on replay:\n%+v\n%+v", st1, st2)
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Fatal("results diverge on replay")
	}
	if st1.Completed+st1.JobsAbandoned != len(specs) {
		t.Fatalf("completed %d + abandoned %d != %d", st1.Completed, st1.JobsAbandoned, len(specs))
	}

	cfg.FaultSeed = 10
	_, res3, st3 := runSim(t, cfg, specs)
	if st3 == st1 && reflect.DeepEqual(res3, res1) {
		t.Fatal("changing FaultSeed changed nothing")
	}
}

// cancelAfter is a context whose Err flips to Canceled after a fixed number of
// polls — a deterministic stand-in for a user canceling mid-run.
type cancelAfter struct {
	context.Context
	remaining int
}

func (c *cancelAfter) Err() error {
	if c.remaining <= 0 {
		return context.Canceled
	}
	c.remaining--
	return nil
}

// TestRunContextCancellation covers the satellite contract: a canceled context
// stops an in-flight simulation promptly instead of running it to completion.
func TestRunContextCancellation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster = smallCluster()
	specs := contended(t, 1, cfg)

	t.Run("pre-canceled", func(t *testing.T) {
		sim, err := NewSimulator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, _, err := sim.RunContext(ctx, specs); !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	})

	t.Run("mid-run", func(t *testing.T) {
		if len(specs)*2 <= ctxCheckInterval {
			t.Fatalf("workload too small to reach the %d-event context check", ctxCheckInterval)
		}
		sim, err := NewSimulator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// The first poll (event 0) passes; the second (event 1024) cancels.
		ctx := &cancelAfter{Context: context.Background(), remaining: 1}
		_, _, err = sim.RunContext(ctx, specs)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	})

	t.Run("uncanceled-matches-run", func(t *testing.T) {
		sim1, _ := NewSimulator(cfg)
		res1, st1, err := sim1.RunContext(context.Background(), specs)
		if err != nil {
			t.Fatal(err)
		}
		sim2, _ := NewSimulator(cfg)
		res2, st2, err := sim2.Run(specs)
		if err != nil {
			t.Fatal(err)
		}
		if st1 != st2 || !reflect.DeepEqual(res1, res2) {
			t.Fatal("RunContext with a background context diverges from Run")
		}
	})
}

// TestMonitorFaultsRequireMonitoring pins the config validation: a collector
// fault plan without a monitoring pipeline is a configuration error, not a
// silent no-op.
func TestMonitorFaultsRequireMonitoring(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster = smallCluster()
	cfg.MonitorFaults = monitor.FaultPlan{0: {DropRate: 0.5}}
	if _, err := NewSimulator(cfg); err == nil {
		t.Fatal("monitor faults without monitoring must be rejected")
	}
}

// TestSimulatedLossMatchesAnalyticReliability is the acceptance cross-check:
// running the DES with the per-GPU fatal process at SlowTierMTBFHours=500 must
// reproduce sharing.ReliabilityStudy's analytic lost-work estimate within 10%,
// pooled across ten seeds.
//
// The analytic model is first-order — expected loss per job (G·R_h)²/(2·MTBF),
// valid when the per-job exposure x = G·R_h/MTBF is small (the exact
// expectation is MTBF·(eˣ−1−x), a +x/3 relative bias). The comparison
// population is therefore capped at 10 exposure GPU-hours per job (x ≤ 0.02,
// bias ≤ 0.7%), which also matches the §VIII setting: the flaky tier hosts
// the short exploratory/development work, not the largest runs. Ten pooled
// seeds put the sampling noise near 4%, well inside the 10% band.
func TestSimulatedLossMatchesAnalyticReliability(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed DES cross-check is slow")
	}
	const (
		mtbfHours   = 500.0
		maxExposure = 10.0 // GPU-hours per job, keeps the analytic model in regime
	)
	allCats := []trace.Category{trace.Mature, trace.Exploratory, trace.Development, trace.IDE}
	v100 := gpu.V100()
	plan := sharing.ReliabilityPlan{
		Tiering: sharing.TierPlan{
			Fast:                v100,
			Slow:                v100, // slowdown 1: loss differences isolate the failure model
			SlowTierCategories:  allCats,
			UtilizationHeadroom: 0.25,
		},
		SlowTierMTBFHours: mtbfHours,
	}

	var simLost, analyticLost float64
	var fatals int
	for seed := uint64(1); seed <= 10; seed++ {
		gcfg := workload.ScaledConfig(1)
		gcfg.Seed = seed
		gen, err := workload.NewGenerator(gcfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Faults = fatalOnlyPlan(mtbfHours)
		cfg.FaultSeed = seed
		// Effectively unbounded retries with a flat negligible hold: every
		// job completes, so the DES loss is comparable to the analytic model,
		// which assumes eventual completion.
		cfg.Requeue = RequeuePolicy{MaxRetries: 1 << 20, HoldSec: 1, HoldBackoff: 1}

		specs := gen.GenerateSpecs()
		kept := specs[:0]
		for _, sp := range specs {
			if float64(sp.NumGPUs)*sp.RunSec/3600 <= maxExposure {
				kept = append(kept, sp)
			}
		}
		specs, _ = Feasible(cfg, kept)

		res, st, err := Simulate(cfg, specs)
		if err != nil {
			t.Fatal(err)
		}
		if st.JobsAbandoned != 0 {
			t.Fatalf("seed %d: %d jobs abandoned; loss is not comparable", seed, st.JobsAbandoned)
		}
		fatals += st.GPUFatals
		// Pool only the population the analytic study prices: GPU jobs above
		// the trace's run-length floor.
		for i := range specs {
			sp := &specs[i]
			if sp.NumGPUs == 0 || sp.RunSec < trace.MinGPUJobRunSec {
				continue
			}
			if r := res[sp.ID]; r != nil {
				simLost += float64(sp.NumGPUs) * r.LostSec / 3600
			}
		}
		rel, err := sharing.ReliabilityStudy(gen.BuildDataset(specs), plan)
		if err != nil {
			t.Fatal(err)
		}
		analyticLost += rel.LostGPUHours
	}
	if fatals < 50 {
		t.Fatalf("only %d fatal errors pooled; the comparison lacks power", fatals)
	}
	ratio := simLost / analyticLost
	t.Logf("simulated %.1f vs analytic %.1f lost GPU-hours (ratio %.3f, %d fatals)",
		simLost, analyticLost, ratio, fatals)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("simulated/analytic lost-work ratio %.3f outside [0.9, 1.1] (sim %.1f, analytic %.1f)",
			ratio, simLost, analyticLost)
	}
}
