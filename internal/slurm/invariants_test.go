package slurm

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/workload"
)

// The scheduler-invariant property tests: across randomized seeds and every
// policy combination, the completed schedule must conserve resources. The
// audits work purely from Results (StartSec/EndSec/GPUs/Shares), so they
// would catch a scheduler that books resources it never owned, not just one
// that crashes.

// interval is one job's tenancy of a resource.
type interval struct {
	jobID      int64
	start, end float64
}

// auditResults runs every schedule-wide invariant: non-negative waits,
// consistent timestamps, no GPU double-booking, and per-node core/memory
// capacity conservation.
func auditResults(t *testing.T, cfg Config, specs []workload.JobSpec, results map[int64]*Result) {
	t.Helper()
	const eps = 1e-9

	byDevice := map[gpu.DeviceID][]interval{}
	type usage struct {
		at    float64
		cores int
		mem   float64
		// release events sort before acquires at equal time, matching the
		// scheduler's finish-before-submit event order.
		release bool
	}
	byNode := map[int][]usage{}

	for i := range specs {
		sp := &specs[i]
		res := results[sp.ID]
		if res == nil {
			t.Fatalf("job %d has no result", sp.ID)
		}
		if res.WaitSec < 0 {
			t.Fatalf("job %d: negative wait %v", sp.ID, res.WaitSec)
		}
		if diff := res.StartSec - sp.SubmitSec - res.WaitSec; diff > eps || diff < -eps {
			t.Fatalf("job %d: WaitSec %v != StartSec %v - SubmitSec %v",
				sp.ID, res.WaitSec, res.StartSec, sp.SubmitSec)
		}
		if diff := res.EndSec - res.StartSec - sp.RunSec; diff > eps || diff < -eps {
			t.Fatalf("job %d: EndSec %v != StartSec %v + RunSec %v",
				sp.ID, res.EndSec, res.StartSec, sp.RunSec)
		}
		if sp.IsGPU() && len(res.GPUs) != sp.NumGPUs {
			t.Fatalf("job %d: granted %d GPUs, requested %d", sp.ID, len(res.GPUs), sp.NumGPUs)
		}
		for _, id := range res.GPUs {
			byDevice[id] = append(byDevice[id], interval{sp.ID, res.StartSec, res.EndSec})
		}
		for _, sh := range res.Shares {
			byNode[sh.Node] = append(byNode[sh.Node],
				usage{at: res.StartSec, cores: sh.Cores, mem: sh.MemGB},
				usage{at: res.EndSec, cores: -sh.Cores, mem: -sh.MemGB, release: true})
		}
	}

	// No GPU serves two concurrent jobs: back-to-back tenancy (end == next
	// start) is legal, overlap is not.
	for id, ivs := range byDevice {
		sort.Slice(ivs, func(a, b int) bool { return ivs[a].start < ivs[b].start })
		for i := 1; i < len(ivs); i++ {
			if ivs[i].start < ivs[i-1].end-eps {
				t.Fatalf("device %s double-booked: job %d [%v,%v) overlaps job %d [%v,%v)",
					id, ivs[i-1].jobID, ivs[i-1].start, ivs[i-1].end,
					ivs[i].jobID, ivs[i].start, ivs[i].end)
			}
		}
	}

	// Node capacity sweep: running core/memory occupancy must never exceed
	// the node, with releases applied before same-instant acquires.
	for node, events := range byNode {
		sort.Slice(events, func(a, b int) bool {
			if events[a].at != events[b].at {
				return events[a].at < events[b].at
			}
			return events[a].release && !events[b].release
		})
		cores, mem := 0, 0.0
		for _, e := range events {
			cores += e.cores
			mem += e.mem
			if cores > cfg.Cluster.CoresPerNode {
				t.Fatalf("node %d over capacity at t=%v: %d cores > %d",
					node, e.at, cores, cfg.Cluster.CoresPerNode)
			}
			if mem > cfg.Cluster.MemGBPerNode+eps {
				t.Fatalf("node %d over capacity at t=%v: %v GB > %v",
					node, e.at, mem, cfg.Cluster.MemGBPerNode)
			}
			if cores < 0 || mem < -eps {
				t.Fatalf("node %d released more than it held at t=%v", node, e.at)
			}
		}
	}
}

// contended builds a randomized population that actually queues on the test
// cluster: a generated mix with arrivals compressed so jobs contend for the
// 6-node machine.
func contended(t *testing.T, seed uint64, cfg Config) []workload.JobSpec {
	t.Helper()
	gcfg := workload.ScaledConfig(0.01)
	gcfg.Seed = seed
	gen, err := workload.NewGenerator(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	specs := gen.GenerateSpecs()
	for i := range specs {
		specs[i].SubmitSec *= 0.05
	}
	specs, _ = Feasible(cfg, specs)
	return specs
}

func TestSchedulerInvariantsRandomized(t *testing.T) {
	policies := []Policy{
		DefaultPolicy(),
		{Colocate: true, MultiGPUPriority: false, BackfillDepth: 0},
		{Colocate: false, MultiGPUPriority: true, BackfillDepth: 256},
		{Colocate: true, MultiGPUPriority: true, BackfillDepth: 4, ReservationAgeSec: 600},
	}
	seeds := []uint64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		for pi, pol := range policies {
			t.Run(fmt.Sprintf("seed=%d/policy=%d", seed, pi), func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.Cluster.Nodes = 6
				cfg.Policy = pol
				// Every allocation the scheduler makes is cross-checked
				// against the pre-index full-scan placement (node-for-node)
				// and the cluster invariants — the allocation-equivalence
				// guarantee that keeps golden figures pinned.
				cfg.AuditPlacement = true
				specs := contended(t, seed, cfg)
				_, results, st := runSim(t, cfg, specs)
				if st.Completed != len(specs) {
					t.Fatalf("completed %d of %d feasible jobs", st.Completed, len(specs))
				}
				auditResults(t, cfg, specs, results)
			})
		}
	}
}

// TestAblationNeverSharesNodes pins the -colocate=false contract: every GPU
// job reserves whole idle nodes, so no other job's share — GPU or CPU —
// overlaps its tenancy on any of its nodes.
func TestAblationNeverSharesNodes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster.Nodes = 6
	cfg.Policy.Colocate = false

	for _, seed := range []uint64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			specs := contended(t, seed, cfg)
			_, results, _ := runSim(t, cfg, specs)
			auditResults(t, cfg, specs, results)

			type tenancy struct {
				jobID      int64
				gpu        bool
				start, end float64
			}
			byNode := map[int][]tenancy{}
			for i := range specs {
				res := results[specs[i].ID]
				for _, sh := range res.Shares {
					byNode[sh.Node] = append(byNode[sh.Node],
						tenancy{specs[i].ID, specs[i].IsGPU(), res.StartSec, res.EndSec})
				}
			}
			for node, ts := range byNode {
				for _, a := range ts {
					if !a.gpu {
						continue
					}
					for _, b := range ts {
						if a.jobID == b.jobID {
							continue
						}
						if b.start < a.end-1e-9 && a.start < b.end-1e-9 {
							t.Fatalf("node %d shared under ablation: GPU job %d [%v,%v) with job %d [%v,%v)",
								node, a.jobID, a.start, a.end, b.jobID, b.start, b.end)
						}
					}
				}
			}
		})
	}
}

// TestFeasibleGate pins the submit-time rejection behavior: oversized
// requests are rejected rather than deadlocking the drain, and every
// accepted job completes.
func TestFeasibleGate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster.Nodes = 4 // 8 GPUs, 160 cores
	specs := []workload.JobSpec{
		mkGPUSpec(t, 1, 0, 100, 2),
		mkGPUSpec(t, 2, 0, 100, 9),       // exceeds total GPUs
		mkCPUSpec(3, 0, 100, 200, false), // exceeds total cores
		mkCPUSpec(4, 0, 100, 40, true),   // exactly one node: fine
		mkCPUSpec(5, 0, 100, 161, true),  // exceeds exclusive capacity
		mkGPUSpec(t, 6, 0, 100, 8),       // exactly the whole machine
	}
	ok, rejected := Feasible(cfg, specs)
	if len(rejected) != 3 {
		t.Fatalf("rejected %d jobs, want 3: %v", len(rejected), rejected)
	}
	for _, r := range rejected {
		if r.ID != 2 && r.ID != 3 && r.ID != 5 {
			t.Fatalf("wrongly rejected job %d", r.ID)
		}
	}
	_, results, st := runSim(t, cfg, ok)
	if st.Completed != len(ok) {
		t.Fatalf("completed %d of %d accepted jobs", st.Completed, len(ok))
	}
	auditResults(t, cfg, ok, results)
}

// TestSchedulerInvariantsUnderFailureStorms runs randomized crash/drain/repair
// storms over a contended workload and checks conservation end to end: no
// double-free (any Release error aborts the run), no lost capacity after the
// final repair, and drain completion — the run never ends with jobs pending
// while retries remain. The per-interval WaitSec/EndSec identities of
// auditResults do not hold for requeued jobs, so the storm audit works from
// the cluster's own invariant checker plus the completion accounting.
func TestSchedulerInvariantsUnderFailureStorms(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Cluster.Nodes = 6
			cfg.AuditPlacement = true
			cfg.Faults = faults.Plan{
				NodeCrashMTBFHours: 24,
				NodeDrainMTBFHours: 48,
				MeanRepairHours:    2,
				GPUFatalMTBFHours:  50,
			}
			cfg.FaultSeed = seed
			cfg.Requeue = RequeuePolicy{MaxRetries: 20, HoldSec: 60, HoldBackoff: 2}
			specs := contended(t, seed, cfg)

			sim, err := NewSimulator(cfg)
			if err != nil {
				t.Fatal(err)
			}
			results, st, err := sim.Run(specs)
			if err != nil {
				t.Fatalf("storm run failed (drain did not complete): %v", err)
			}
			if st.NodeCrashes == 0 || st.NodeDrains == 0 || st.GPUFatals == 0 {
				t.Fatalf("storm too quiet: %d crashes, %d drains, %d fatals",
					st.NodeCrashes, st.NodeDrains, st.GPUFatals)
			}
			// Every job is accounted for: completed or abandoned, never lost.
			if st.Completed+st.JobsAbandoned != len(specs) {
				t.Fatalf("completed %d + abandoned %d != %d jobs",
					st.Completed, st.JobsAbandoned, len(specs))
			}
			if st.Completed != len(results) {
				t.Fatalf("stats completed %d != %d results", st.Completed, len(results))
			}
			// Capacity conservation after the storm: every outage that fired
			// was repaired, every node is back up, and the free pool equals
			// the full machine — nothing double-freed, nothing leaked.
			for n := 0; n < cfg.Cluster.Nodes; n++ {
				if s := sim.cluster.NodeState(n); s != cluster.NodeUp {
					t.Fatalf("node %d still %v after drain", n, s)
				}
			}
			if free, total := sim.cluster.FreeGPUs(), cfg.Cluster.TotalGPUs(); free != total {
				t.Fatalf("free GPUs %d != total %d after full repair", free, total)
			}
			if sim.cluster.LiveAllocations() != 0 {
				t.Fatalf("%d allocations survive the drain", sim.cluster.LiveAllocations())
			}
			if err := sim.cluster.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			// Requeued jobs still satisfy the weak result identities: waits
			// non-negative and every completed job's interval well-formed.
			for _, res := range results {
				if res.WaitSec < 0 || res.EndSec <= res.StartSec {
					t.Fatalf("job %d: malformed result %+v", res.JobID, res)
				}
			}
		})
	}
}
