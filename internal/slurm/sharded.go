package slurm

// Sharded simulation: the cluster is partitioned into independent node-group
// sub-clusters and the workload is spread across them, so one huge run
// becomes several smaller runs that execute concurrently. Shards advance
// through conservative time windows — every shard finishes processing all
// events below a window boundary before any shard crosses it — the classic
// conservative-synchronization discipline of parallel DES. Because shards
// here share no state (disjoint nodes, disjoint jobs, private RNG streams),
// the barrier never changes any shard's event order; it is what makes the
// mode's central guarantee trivial to prove and cheap to test: output is
// bit-identical for ANY worker count and ANY window size, because each
// shard's trajectory is fixed at assignment time and the merge folds shard
// results in shard-index order, never in completion order.
//
// With Shards==1 the partition is the whole cluster, seeds are left
// untouched, and the run is byte-identical to Simulate — the differential
// harness pins that down.

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// DefaultShardWindowSec is the conservative synchronization window used when
// Sharding.WindowSec is unset: one simulated hour per barrier round.
const DefaultShardWindowSec = 3600

// Sharding configures the sharded simulation mode.
type Sharding struct {
	// Shards is the number of node-group partitions; 1 (or 0) degenerates to
	// the ordinary single-simulator run.
	Shards int
	// Workers bounds how many shards execute concurrently inside one window
	// round; <=0 uses GOMAXPROCS. Output is bit-identical for any value.
	Workers int
	// WindowSec is the conservative synchronization window; <=0 uses
	// DefaultShardWindowSec.
	WindowSec float64
}

func (sh Sharding) workers(shards int) int {
	w := sh.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > shards {
		w = shards
	}
	return w
}

func (sh Sharding) window() float64 {
	if sh.WindowSec > 0 {
		return sh.WindowSec
	}
	return DefaultShardWindowSec
}

// ShardedRun is a completed sharded simulation.
type ShardedRun struct {
	// Specs holds each shard's assigned (and shard-feasible) specs in the
	// deterministic round-robin order; Results and ShardStats line up with it.
	Specs      [][]workload.JobSpec
	Results    []map[int64]*Result
	ShardStats []Stats
	// Merged folds the shard stats in shard-index order.
	Merged Stats
	// Rejected are specs no shard could ever satisfy — jobs whose request
	// exceeds a sub-cluster's capacity even though the unsharded cluster
	// could hold them. Callers report them with the submit-time rejections.
	Rejected []workload.JobSpec
	// Windows counts the synchronization rounds the run executed.
	Windows int

	sims []*Simulator
}

// SimulateSharded partitions cfg.Cluster into sh.Shards node groups, assigns
// specs round-robin (falling back to the next shard that can satisfy a job's
// request, rejecting jobs no shard can hold), and runs the shard simulators
// through conservative time windows on a bounded worker pool.
//
// Shard seeds: with Shards>1 each shard salts MonitorSeed and FaultSeed with
// its index via dist.StreamSeed, so shards draw independent noise and failure
// streams; with Shards==1 seeds pass through untouched and the run is
// byte-identical to Simulate(cfg, specs).
func SimulateSharded(ctx context.Context, cfg Config, specs []workload.JobSpec, sh Sharding) (*ShardedRun, error) {
	nshards := sh.Shards
	if nshards < 1 {
		nshards = 1
	}
	subClusters, err := cluster.PartitionNodes(cfg.Cluster, nshards)
	if err != nil {
		return nil, err
	}
	shardCfgs := make([]Config, nshards)
	for i := range shardCfgs {
		scfg := cfg
		scfg.Cluster = subClusters[i]
		if nshards > 1 {
			scfg.MonitorSeed = dist.StreamSeed(cfg.MonitorSeed, uint64(i))
			scfg.FaultSeed = dist.StreamSeed(cfg.FaultSeed, uint64(i))
		}
		shardCfgs[i] = scfg
	}

	run := &ShardedRun{
		Specs:      make([][]workload.JobSpec, nshards),
		Results:    make([]map[int64]*Result, nshards),
		ShardStats: make([]Stats, nshards),
		sims:       make([]*Simulator, nshards),
	}
	// Deterministic round-robin assignment with feasibility fallback: spec i
	// starts at shard i%n and scans forward for the first shard whose
	// sub-cluster can ever grant its request. Two passes: placements first,
	// then exact-capacity fills — JobSpec is a fat struct, and growing the
	// shard slices by appending would memmove the population log(n) times.
	placement := make([]int32, len(specs))
	counts := make([]int, nshards)
	rejected := 0
	for i := range specs {
		placement[i] = -1
		for probe := 0; probe < nshards; probe++ {
			shard := (i + probe) % nshards
			if feasible(shardCfgs[shard], &specs[i]) {
				placement[i] = int32(shard)
				counts[shard]++
				break
			}
		}
		if placement[i] < 0 {
			rejected++
		}
	}
	for shard, c := range counts {
		run.Specs[shard] = make([]workload.JobSpec, 0, c)
	}
	if rejected > 0 {
		run.Rejected = make([]workload.JobSpec, 0, rejected)
	}
	for i := range specs {
		if shard := placement[i]; shard >= 0 {
			run.Specs[shard] = append(run.Specs[shard], specs[i])
		} else {
			run.Rejected = append(run.Rejected, specs[i])
		}
	}

	for i := range run.sims {
		sim, err := NewSimulator(shardCfgs[i])
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if err := sim.prepare(run.Specs[i]); err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		run.sims[i] = sim
	}

	window := sh.window()
	workers := sh.workers(nshards)
	sem := make(chan struct{}, workers)
	errs := make([]error, nshards)
	for {
		// The conservative barrier: the boundary is the next window edge past
		// the globally earliest pending event, so empty windows are skipped
		// in one step rather than iterated.
		minNext := math.Inf(1)
		for _, sim := range run.sims {
			if t, ok := sim.nextEventTime(); ok && t < minNext {
				minNext = t
			}
		}
		if math.IsInf(minNext, 1) {
			break
		}
		boundary := (math.Floor(minNext/window) + 1) * window
		for boundary <= minNext {
			// Float guard: an event exactly on (or rounded onto) the edge
			// must land strictly inside the next window.
			boundary += window
		}
		var wg sync.WaitGroup
		for i, sim := range run.sims {
			if t, ok := sim.nextEventTime(); !ok || t >= boundary {
				continue // nothing for this shard below the barrier
			}
			wg.Add(1)
			go func(i int, sim *Simulator) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				_, errs[i] = sim.runUntil(ctx, boundary)
			}(i, sim)
		}
		wg.Wait()
		run.Windows++
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
		}
	}

	for i, sim := range run.sims {
		results, st, err := sim.finalize()
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		run.Results[i] = results
		run.ShardStats[i] = st
		run.Merged.Merge(st)
	}
	return run, nil
}

// Merge folds another shard's stats into s. Counters add; MaxQueueLen is the
// max over shards (per-shard queues are disjoint, so the true cluster-wide
// instantaneous maximum is not recoverable — this is the conservative lower
// bound); HorizonSec is the latest shard drain. Callers must fold shards in
// shard-index order so the float sums are bit-identical across runs.
func (s *Stats) Merge(o Stats) {
	s.Completed += o.Completed
	if o.MaxQueueLen > s.MaxQueueLen {
		s.MaxQueueLen = o.MaxQueueLen
	}
	s.GPUBusyHours += o.GPUBusyHours
	if o.HorizonSec > s.HorizonSec {
		s.HorizonSec = o.HorizonSec
	}
	s.TotalGPUs += o.TotalGPUs
	s.MonitorOverflow += o.MonitorOverflow
	s.SchedulePasses += o.SchedulePasses
	s.AllocAttempts += o.AllocAttempts
	s.AllocCacheHits += o.AllocCacheHits
	s.EventsProcessed += o.EventsProcessed
	s.NodeCrashes += o.NodeCrashes
	s.NodeDrains += o.NodeDrains
	s.NodeRepairs += o.NodeRepairs
	s.GPUFatals += o.GPUFatals
	s.Requeues += o.Requeues
	s.JobsAbandoned += o.JobsAbandoned
	s.LostGPUHours += o.LostGPUHours
	s.RecoveredGPUHours += o.RecoveredGPUHours
	s.DownGPUHours += o.DownGPUHours
	s.MonitorDropped += o.MonitorDropped
	s.MonitorStalled += o.MonitorStalled
	s.PredictHits += o.PredictHits
	s.PredictMisses += o.PredictMisses
	s.PredictedBackfills += o.PredictedBackfills
	s.PredictedBackfillWaitSec += o.PredictedBackfillWaitSec
	s.PredictAbsErrSec += o.PredictAbsErrSec
}

// WaitAgg aggregates every completed job's queue wait across shards in
// shard-index order (submit order within a shard): the stats.Agg merge
// discipline the replication engine established, here proving the sharded
// run's output is bit-identical for any worker count.
func (r *ShardedRun) WaitAgg() stats.Agg {
	var agg stats.Agg
	for i := range r.Specs {
		for j := range r.Specs[i] {
			if res, ok := r.Results[i][r.Specs[i][j].ID]; ok {
				agg.Add(res.WaitSec)
			}
		}
	}
	return agg
}

// BuildDataset assembles the joined dataset across shards in shard-index
// order, so downstream characterization sees one deterministic record stream
// regardless of how many workers executed the run.
func (r *ShardedRun) BuildDataset(durationDays float64) *trace.Dataset {
	ds := trace.NewDataset(durationDays)
	for i, sim := range r.sims {
		sim.appendDataset(ds, r.Specs[i], r.Results[i])
	}
	return ds
}
