package slurm

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/faults"
	"repro/internal/workload"
)

// shardedPopulation builds a generated workload plus the config the sharded
// tests share.
func shardedPopulation(t *testing.T, seed uint64, nodes int, plan faults.Plan) (Config, []workload.JobSpec) {
	t.Helper()
	gcfg := workload.ScaledConfig(0.02)
	gcfg.Seed = seed
	gen, err := workload.NewGenerator(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Cluster.Nodes = nodes
	cfg.Faults = plan
	cfg.FaultSeed = seed
	specs, _ := Feasible(cfg, gen.GenerateSpecs())
	return cfg, specs
}

// shardedJSON serializes a sharded run's merged dataset.
func shardedJSON(t *testing.T, run *ShardedRun) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := run.BuildDataset(125).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardedSingleShardMatchesSimulate pins the degenerate case: one shard
// is the whole cluster with untouched seeds, so the sharded runner must be
// byte-identical to the plain Simulate path — stats, per-job results, and
// serialized dataset.
func TestShardedSingleShardMatchesSimulate(t *testing.T) {
	cfg, specs := shardedPopulation(t, 5, 8, faults.Plan{
		NodeCrashMTBFHours: 200, GPUFatalMTBFHours: 600, MeanRepairHours: 2,
	})

	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plainRes, plainSt, err := sim.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	var plainBuf bytes.Buffer
	if err := sim.BuildDataset(specs, plainRes, 125).WriteJSON(&plainBuf); err != nil {
		t.Fatal(err)
	}

	run, err := SimulateSharded(context.Background(), cfg, specs, Sharding{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Rejected) != 0 {
		t.Fatalf("single shard rejected %d pre-gated jobs", len(run.Rejected))
	}
	if run.Merged != plainSt {
		t.Errorf("stats diverged:\n plain   %+v\n sharded %+v", plainSt, run.Merged)
	}
	assertResultsEqual(t, plainRes, run.Results[0])
	if !bytes.Equal(plainBuf.Bytes(), shardedJSON(t, run)) {
		t.Error("dataset serialization diverged between Simulate and single-shard run")
	}
}

// waitAggFingerprint reduces a run's wait aggregate to comparable scalars.
type waitAggFingerprint struct {
	n                        int
	mean, stddev, min, max   float64
	completed                int
	events                   int64
	gpuBusyHours, horizonSec float64
}

func fingerprintRun(run *ShardedRun) waitAggFingerprint {
	agg := run.WaitAgg()
	return waitAggFingerprint{
		n: agg.N(), mean: agg.Mean(), stddev: agg.StdDev(), min: agg.Min(), max: agg.Max(),
		completed:    run.Merged.Completed,
		events:       run.Merged.EventsProcessed,
		gpuBusyHours: run.Merged.GPUBusyHours,
		horizonSec:   run.Merged.HorizonSec,
	}
}

// TestShardedWorkerCountBitIdentity is the PR's central parallelism claim:
// 1, 2, 4 and 8 workers (and different window sizes) produce bit-identical
// merged stats, wait aggregates, and dataset bytes for the same shard count.
func TestShardedWorkerCountBitIdentity(t *testing.T) {
	for _, plan := range []faults.Plan{
		{},
		{NodeCrashMTBFHours: 150, NodeDrainMTBFHours: 300, GPUFatalMTBFHours: 500, MeanRepairHours: 2},
	} {
		cfg, specs := shardedPopulation(t, 9, 8, plan)
		var (
			refFP   waitAggFingerprint
			refJSON []byte
			refSt   Stats
		)
		for i, variant := range []Sharding{
			{Shards: 4, Workers: 1},
			{Shards: 4, Workers: 2},
			{Shards: 4, Workers: 4},
			{Shards: 4, Workers: 8},
			{Shards: 4, Workers: 2, WindowSec: 600},
			{Shards: 4, Workers: 8, WindowSec: 7 * 3600},
		} {
			run, err := SimulateSharded(context.Background(), cfg, specs, variant)
			if err != nil {
				t.Fatal(err)
			}
			fp := fingerprintRun(run)
			js := shardedJSON(t, run)
			if i == 0 {
				refFP, refJSON, refSt = fp, js, run.Merged
				continue
			}
			if fp != refFP {
				t.Errorf("variant %+v fingerprint diverged:\n ref %+v\n got %+v", variant, refFP, fp)
			}
			if run.Merged != refSt {
				t.Errorf("variant %+v merged stats diverged", variant)
			}
			if !bytes.Equal(js, refJSON) {
				t.Errorf("variant %+v dataset bytes diverged", variant)
			}
		}
	}
}

// TestShardedAssignmentDeterministic re-runs the same sharded simulation and
// expects identical shard spec assignment and identical per-shard stats.
func TestShardedAssignmentDeterministic(t *testing.T) {
	cfg, specs := shardedPopulation(t, 13, 8, faults.Plan{})
	a, err := SimulateSharded(context.Background(), cfg, specs, Sharding{Shards: 3, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateSharded(context.Background(), cfg, specs, Sharding{Shards: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Specs {
		if len(a.Specs[i]) != len(b.Specs[i]) {
			t.Fatalf("shard %d: %d vs %d specs", i, len(a.Specs[i]), len(b.Specs[i]))
		}
		for j := range a.Specs[i] {
			if a.Specs[i][j].ID != b.Specs[i][j].ID {
				t.Fatalf("shard %d spec %d: job %d vs %d", i, j, a.Specs[i][j].ID, b.Specs[i][j].ID)
			}
		}
		if a.ShardStats[i] != b.ShardStats[i] {
			t.Fatalf("shard %d stats diverged", i)
		}
	}
}

// TestShardedRejectsOversizeJobs: a job feasible on the whole cluster but too
// large for any sub-cluster is rejected, not deadlocked.
func TestShardedRejectsOversizeJobs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster.Nodes = 8 // 16 GPUs total, 4 per 2-node shard
	big := mkGPUSpec(t, 900, 0, 600, 10)
	small := mkGPUSpec(t, 901, 0, 600, 2)
	specs, rejected := Feasible(cfg, []workload.JobSpec{big, small})
	if len(rejected) != 0 {
		t.Fatalf("submit-time gate rejected %d jobs; the whole cluster fits both", len(rejected))
	}
	run, err := SimulateSharded(context.Background(), cfg, specs, Sharding{Shards: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Rejected) != 1 || run.Rejected[0].ID != 900 {
		t.Fatalf("rejected = %+v, want exactly the 10-GPU job", run.Rejected)
	}
	if run.Merged.Completed != 1 {
		t.Fatalf("completed = %d, want the 2-GPU job", run.Merged.Completed)
	}
}

// TestShardedSaltsShardSeeds: with more than one shard, fault streams must
// differ per shard (salted via dist.StreamSeed), not replay shard 0's
// failures everywhere.
func TestShardedSaltsShardSeeds(t *testing.T) {
	plan := faults.Plan{NodeCrashMTBFHours: 50, MeanRepairHours: 1}
	cfg, specs := shardedPopulation(t, 21, 8, plan)
	run, err := SimulateSharded(context.Background(), cfg, specs, Sharding{Shards: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if run.ShardStats[0].NodeCrashes+run.ShardStats[1].NodeCrashes == 0 {
		t.Skip("no crashes drawn; plan too mild for this population")
	}
	// Same sub-cluster size, same workload shape — identical crash *times*
	// would mean the streams were not salted. Stats can't see times, but
	// identical crash counts AND identical horizons on both shards would be
	// an (astronomically unlikely) coincidence under independent streams.
	if run.ShardStats[0] == run.ShardStats[1] {
		t.Fatal("shard stats are identical; per-shard fault streams look unsalted")
	}
}
