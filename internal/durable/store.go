package durable

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Store wraps a trace.SegStore with write-ahead logging, snapshots and an
// idempotency ledger. Every mutation follows the same protocol under one
// mutex: validate and admit, append the operation to the WAL (fsync in sync
// mode), then apply it to the in-memory store. The WAL append is the commit
// point — an operation whose record reached disk replays on recovery even
// if the process died before applying it; one that didn't is as if it never
// happened, and the client's retry covers it.
//
// Reads go straight to the SegStore (via Seg) under its own lock; queries
// never wait on the WAL.
type Store struct {
	mu sync.Mutex
	// seg is written once in Open and read lock-free afterwards (Seg,
	// Backlog): the pointer never changes and SegStore has its own lock.
	seg     *trace.SegStore
	cfg     trace.SegConfig
	w       *wal // guarded by mu
	dir     string
	opts    Options
	applied map[string]Outcome // guarded by mu
	dirty   int                // guarded by mu; jobs applied since the last snapshot
	closed  bool               // guarded by mu
}

// Options configures durability behavior.
type Options struct {
	// Sync fsyncs every WAL append before acking — ack-implies-durable.
	// Off, the OS flushes on its schedule: a process kill loses nothing
	// (the page cache survives), a machine crash can lose the unsynced
	// suffix. The chaos harness runs with Sync on.
	Sync bool
	// RotateBytes is the WAL file rotation threshold; 0 means
	// DefaultRotateBytes.
	RotateBytes int64
	// SnapshotJobs triggers an automatic snapshot after this many applied
	// jobs; 0 disables automatic snapshots (Close still writes one).
	SnapshotJobs int
	// MaxJobs bounds the total stored jobs; 0 means unbounded. Batches
	// that would exceed it are rejected with *trace.CapacityError before
	// anything is logged.
	MaxJobs int
	// Chaos arms failure injection; nil in production.
	Chaos *Chaos
}

// Outcome is what an ingest batch produced — returned verbatim when the
// same batch ID is submitted again.
type Outcome struct {
	Seq  uint64 // WAL sequence that committed the batch
	Jobs int    // jobs the batch added
}

// DecodeError marks a malformed ingest body: the request is at fault, not
// the server, and retrying it unchanged cannot succeed.
type DecodeError struct{ Err error }

func (e *DecodeError) Error() string { return e.Err.Error() }
func (e *DecodeError) Unwrap() error { return e.Err }

// telemetryRecord is the WAL payload of KindTelemetry.
type telemetryRecord struct {
	JobID  int64                     `json:"job_id"`
	PerGPU []metrics.MetricSummaries `json:"per_gpu,omitempty"`
	Series *trace.TimeSeries         `json:"series,omitempty"`
}

// Open recovers (or initializes) a durable store in dir: load the newest
// readable snapshot, rebuild the SegStore from it, replay the WAL suffix,
// and position the log for appending. The returned store is exactly the
// store that would exist had every acked operation been applied to a fresh
// server in order — the property the chaos harness verifies bit-for-bit.
func Open(dir string, cfg trace.SegConfig, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{cfg: cfg, dir: dir, opts: opts, applied: make(map[string]Outcome)}

	snap, err := loadLatestSnapshot(dir)
	if err != nil {
		return nil, err
	}
	fromSeq := uint64(0)
	var fromChain Chain
	if snap != nil {
		got := trace.SegConfig(snap.Seg)
		if got != cfg {
			return nil, fmt.Errorf("durable: data dir was written with config %+v, not %+v — refusing to resume", got, cfg)
		}
		s.seg, err = trace.RestoreSegStore(cfg, snap.State)
		if err != nil {
			return nil, err
		}
		for _, ab := range snap.Applied {
			s.applied[ab.ID] = Outcome{Seq: ab.Seq, Jobs: ab.Jobs}
		}
		fromSeq = snap.NextSeq
		fromChain, _ = decodeChain(snap.Chain) // validated by readSnapshot
	} else {
		s.seg = trace.NewSegStore(cfg)
	}

	state, err := replayWAL(dir, fromSeq, fromChain, s.applyRecord)
	if err != nil {
		return nil, err
	}
	s.w, err = openWALForAppend(dir, state.tail, state.validBytes, state.nextSeq, state.chain, opts.Sync, opts.RotateBytes, opts.Chaos)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// applyRecord replays one WAL record into the store during recovery. Every
// record was admitted before it was logged, so replay applies
// unconditionally — re-checking MaxJobs here would turn a lowered bound
// into silent data loss.
func (s *Store) applyRecord(rec Record) error {
	switch rec.Kind {
	case KindBatch:
		id, body, err := decodeBatchPayload(rec.Payload)
		if err != nil {
			return err
		}
		ds, err := trace.ReadJSON(bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("durable: acked batch no longer decodes: %w", err)
		}
		s.seg.AppendDataset(ds)
		//lint:allow lockguard recovery replay runs before the store is published; Open holds exclusive ownership
		s.applied[id] = Outcome{Seq: rec.Seq, Jobs: len(ds.Jobs)}
		//lint:allow lockguard recovery replay runs before the store is published; Open holds exclusive ownership
		s.dirty += len(ds.Jobs)
	case KindTelemetry:
		var tr telemetryRecord
		if err := json.Unmarshal(rec.Payload, &tr); err != nil {
			return fmt.Errorf("durable: acked telemetry no longer decodes: %w", err)
		}
		s.seg.StageTelemetry(tr.JobID, tr.PerGPU, tr.Series)
	case KindSeal:
		s.seg.SealTail()
	case KindCompact:
		s.seg.Compact()
	default:
		return fmt.Errorf("durable: unknown WAL record kind %d", rec.Kind)
	}
	return nil
}

// encodeBatchPayload frames a KindBatch payload: u16 batch-ID length, the
// ID, then the raw JSON body exactly as received.
func encodeBatchPayload(id string, body []byte) ([]byte, error) {
	if len(id) > 1<<16-1 {
		return nil, &DecodeError{Err: fmt.Errorf("durable: batch ID longer than %d bytes", 1<<16-1)}
	}
	p := make([]byte, 0, 2+len(id)+len(body))
	p = binary.BigEndian.AppendUint16(p, uint16(len(id)))
	p = append(p, id...)
	p = append(p, body...)
	return p, nil
}

func decodeBatchPayload(p []byte) (string, []byte, error) {
	if len(p) < 2 {
		return "", nil, fmt.Errorf("durable: short batch payload")
	}
	n := int(binary.BigEndian.Uint16(p))
	if len(p) < 2+n {
		return "", nil, fmt.Errorf("durable: batch payload shorter than its ID")
	}
	return string(p[2 : 2+n]), p[2+n:], nil
}

// IngestBatch commits one ingest batch: decode, admit against MaxJobs, log,
// apply. The batch ID makes it idempotent — a replayed ID returns the
// recorded outcome with duplicate=true and changes nothing, which is what
// lets the client retry blindly after an ambiguous failure. Decode failures
// return *DecodeError (HTTP 400); admission failures *trace.CapacityError
// (HTTP 507); neither is logged.
func (s *Store) IngestBatch(id string, body []byte) (Outcome, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Outcome{}, false, fmt.Errorf("durable: store is closed")
	}
	if out, ok := s.applied[id]; ok {
		return out, true, nil
	}
	ds, err := trace.ReadJSON(bytes.NewReader(body))
	if err != nil {
		return Outcome{}, false, &DecodeError{Err: err}
	}
	if s.opts.MaxJobs > 0 {
		if stored := s.seg.Len(); stored+len(ds.Jobs) > s.opts.MaxJobs {
			return Outcome{}, false, &trace.CapacityError{Stored: stored, Batch: len(ds.Jobs), Max: s.opts.MaxJobs}
		}
	}
	payload, err := encodeBatchPayload(id, body)
	if err != nil {
		return Outcome{}, false, err
	}
	seq, err := s.w.Append(KindBatch, payload)
	if err != nil {
		return Outcome{}, false, err
	}
	s.opts.Chaos.hit("apply")
	s.seg.AppendDataset(ds)
	out := Outcome{Seq: seq, Jobs: len(ds.Jobs)}
	s.applied[id] = out
	s.dirty += len(ds.Jobs)
	if s.opts.SnapshotJobs > 0 && s.dirty >= s.opts.SnapshotJobs {
		if err := s.snapshotLocked(); err != nil {
			return out, false, err
		}
	}
	return out, false, nil
}

// StageTelemetry logs and stages one monitoring-epilog record (the
// nvidia-smi side of the §II join) so parked telemetry survives a crash
// just like ingested jobs do.
func (s *Store) StageTelemetry(jobID int64, perGPU []metrics.MetricSummaries, ts *trace.TimeSeries) error {
	payload, err := json.Marshal(telemetryRecord{JobID: jobID, PerGPU: perGPU, Series: ts})
	if err != nil {
		return &DecodeError{Err: err}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("durable: store is closed")
	}
	if _, err := s.w.Append(KindTelemetry, payload); err != nil {
		return err
	}
	s.opts.Chaos.hit("apply")
	s.seg.StageTelemetry(jobID, perGPU, ts)
	return nil
}

// SealTail logs and applies a manual tail seal. Geometry is part of
// recovered state (summary moments are merge-order sensitive), so admin
// operations go through the WAL like everything else.
func (s *Store) SealTail() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("durable: store is closed")
	}
	if _, err := s.w.Append(KindSeal, nil); err != nil {
		return err
	}
	s.opts.Chaos.hit("sealapply")
	s.seg.SealTail()
	return nil
}

// Compact logs and applies a manual compaction.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("durable: store is closed")
	}
	if _, err := s.w.Append(KindCompact, nil); err != nil {
		return err
	}
	s.opts.Chaos.hit("compactapply")
	s.seg.Compact()
	return nil
}

// Snapshot forces a checkpoint now.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("durable: store is closed")
	}
	return s.snapshotLocked()
}

func (s *Store) snapshotLocked() error {
	applied := make([]AppliedBatch, 0, len(s.applied))
	for id, out := range s.applied {
		applied = append(applied, AppliedBatch{ID: id, Seq: out.Seq, Jobs: out.Jobs})
	}
	sort.Slice(applied, func(a, b int) bool { return applied[a].ID < applied[b].ID })
	snap := &snapshotFile{
		Format:  snapshotFormat,
		Seg:     snapConfig(s.cfg),
		NextSeq: s.w.nextSeq,
		Chain:   encodeChain(s.w.chain),
		Applied: applied,
		State:   s.seg.ExportState(),
	}
	// The snapshot claims coverage of every seq below NextSeq; those
	// records must not be lost from the page cache after their files are
	// pruned, so flush the WAL first even in no-sync mode.
	if err := s.w.Sync(); err != nil {
		return err
	}
	if err := writeSnapshot(s.dir, snap, s.opts.Chaos); err != nil {
		return err
	}
	s.dirty = 0
	return nil
}

// Close drains the store: flush the WAL, write a final snapshot (making the
// next Open a pure snapshot load), and close the log. Close never compacts
// or seals — compaction changes summary merge order, and a drain must not
// change any query result.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	snapErr := s.snapshotLocked()
	closeErr := s.w.Close()
	if snapErr != nil {
		return snapErr
	}
	return closeErr
}

// CloseNoSnapshot flushes and closes the WAL without writing a checkpoint,
// leaving recovery to replay the log. A clean shutdown wants Close; this
// exists so recovery tests and benchmarks can manufacture replay-heavy data
// dirs without killing a process.
func (s *Store) CloseNoSnapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.w.Close()
}

// Seg exposes the underlying SegStore for queries. Callers must not mutate
// it directly — mutations that bypass the WAL are invisible to recovery.
func (s *Store) Seg() *trace.SegStore { return s.seg }

// Backlog returns the unsealed work the server is carrying: tail jobs not
// yet folded into a sealed segment plus parked telemetry awaiting its join.
// The ingest handler sheds load (HTTP 429) when this exceeds its bound.
func (s *Store) Backlog() int {
	return s.seg.TailJobs() + s.seg.StagedJobs()
}

// WALBytes reports cumulative record bytes appended by this process — the
// denominator of the durability-overhead numbers in EXPERIMENTS.md.
func (s *Store) WALBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.totalBytes
}

// ChainHead returns the current hash-chain value — the commitment a
// verifier would hold to audit the log (ROADMAP item 2).
func (s *Store) ChainHead() Chain {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.chain
}
