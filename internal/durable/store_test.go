package durable

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// chaosDeath is the panic value the test Exit hook throws: an in-process
// stand-in for the process dying at a failpoint. Recovering it and
// reopening the data directory is exactly what a restart does.
type chaosDeath struct{ point string }

func testChaos(t *testing.T, spec string) *Chaos {
	t.Helper()
	c, err := ParseChaos(spec)
	if err != nil {
		t.Fatal(err)
	}
	c.Exit = func(point string) { panic(chaosDeath{point}) }
	return c
}

// batchDS builds a small deterministic dataset; batchBody is its JSON wire
// form — the exact bytes a client would POST.
func batchDS(base int64, n int) *trace.Dataset {
	ds := trace.NewDataset(7)
	for k := 0; k < n; k++ {
		id := base + int64(k)
		j := trace.JobRecord{
			JobID:     id,
			User:      int(id % 17),
			SubmitSec: float64(id%1000) * 3.5,
			WaitSec:   float64(id%50) * 2.25,
			RunSec:    60 + float64(id%700),
			LimitSec:  3600,
		}
		if id%3 == 0 {
			j.NumGPUs = 1 + int(id%4)
			j.CoresPerGPU = 6
			for m := range j.GPU {
				j.GPU[m] = metrics.SummaryRecord{Min: 1, Mean: float64(10 + id%60), Max: 99}
			}
		} else {
			j.Cores = 4
		}
		ds.Add(j)
	}
	return ds
}

func batchBody(t *testing.T, base int64, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := batchDS(base, n).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fingerprint hashes a SegStore's complete exported state — jobs in order,
// series, staged telemetry, segment geometry and verbatim digests. Two
// stores with equal fingerprints answer every query identically.
func fingerprint(t *testing.T, st *trace.SegStore) string {
	t.Helper()
	b, err := json.Marshal(st.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%x", sha256.Sum256(b))
}

var testSegCfg = trace.SegConfig{DurationDays: 7, SegmentJobs: 64, MaxSegments: 4}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	st, err := Open(dir, testSegCfg, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return st
}

// TestStoreRecoveryAcrossRestarts: a store closed and reopened repeatedly,
// with telemetry and snapshots interleaved, must stay bit-identical to an
// in-memory reference fed the same operations once each.
func TestStoreRecoveryAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Sync: true, SnapshotJobs: 150, RotateBytes: 1 << 12}
	st := mustOpen(t, dir, opts)
	ref := trace.NewSegStore(testSegCfg)

	for i := 0; i < 10; i++ {
		body := batchBody(t, int64(i)*1000, 40+i)
		if _, dup, err := st.IngestBatch(fmt.Sprintf("batch-%d", i), body); err != nil || dup {
			t.Fatalf("ingest %d: dup=%v err=%v", i, dup, err)
		}
		ds, err := trace.ReadJSON(bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		ref.AppendDataset(ds)
		if i%3 == 0 {
			jobID := int64(1<<40 + i)
			per := []metrics.MetricSummaries{{metrics.SMUtil: {Min: 1, Mean: 2, Max: 3}}}
			ts := &trace.TimeSeries{JobID: jobID, IntervalSec: 0.1}
			if err := st.StageTelemetry(jobID, per, ts); err != nil {
				t.Fatal(err)
			}
			ref.StageTelemetry(jobID, per, ts)
		}
		if i%4 == 3 {
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			st = mustOpen(t, dir, opts)
		}
	}
	if a, b := fingerprint(t, st.Seg()), fingerprint(t, ref); a != b {
		t.Fatal("recovered store diverged from reference")
	}

	// Idempotency across restarts: a duplicate batch ID returns the
	// recorded outcome and changes nothing.
	before := fingerprint(t, st.Seg())
	out, dup, err := st.IngestBatch("batch-0", batchBody(t, 0, 40))
	if err != nil || !dup || out.Jobs != 40 {
		t.Fatalf("duplicate replay: out=%+v dup=%v err=%v", out, dup, err)
	}
	if fingerprint(t, st.Seg()) != before {
		t.Fatal("duplicate batch mutated the store")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreChaosKillMatrix is the in-process half of the chaos harness: 60
// randomized kill points — torn WAL writes at random byte offsets, deaths
// between commit and apply, deaths inside snapshot writing — each followed
// by a restart and a blind client retry. Every trial must converge to the
// exact state of an uninterrupted reference.
func TestStoreChaosKillMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	const trials = 60
	const nBatches = 6
	for trial := 0; trial < trials; trial++ {
		dir := t.TempDir()
		killOp := rng.Intn(nBatches)
		jobs := 10 + rng.Intn(30)

		// Pick the failure mode; wal:<off> dominates so torn-write offsets
		// get dense coverage, including offset 0 (nothing written) and the
		// full frame (record durable, death before apply-equivalent).
		var spec string
		switch k := rng.Intn(10); {
		case k < 6:
			body := batchBody(t, int64(killOp)*1000, jobs)
			frameLen := recHdrSize + 2 + len(fmt.Sprintf("batch-%d", killOp)) + len(body)
			spec = fmt.Sprintf("wal:%d", rng.Intn(frameLen+1))
		case k < 7:
			spec = "apply:1"
		case k < 8:
			spec = "snaptmp:1"
		case k < 9:
			spec = "snaprename:1"
		default:
			spec = "snapprune:1"
		}
		// A small snapshot threshold makes the snapshot failpoints reachable
		// mid-run and exercises pruning under the WAL kill modes too.
		opts := Options{Sync: true, SnapshotJobs: 50, RotateBytes: 1 << 11}

		st := mustOpen(t, dir, opts)
		ref := trace.NewSegStore(testSegCfg)
		sawDeath := false
		for op := 0; op < nBatches; op++ {
			id := fmt.Sprintf("batch-%d", op)
			body := batchBody(t, int64(op)*1000, jobs)
			if op == killOp {
				armed := opts
				armed.Chaos = testChaos(t, spec)
				if err := st.Close(); err != nil {
					t.Fatalf("trial %d: close before arming: %v", trial, err)
				}
				st = mustOpen(t, dir, armed)
			}
			died := func() (died bool) {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(chaosDeath); !ok {
							panic(r)
						}
						died = true
					}
				}()
				_, dup, err := st.IngestBatch(id, body)
				if err != nil {
					t.Fatalf("trial %d op %d: %v", trial, op, err)
				}
				if dup {
					t.Fatalf("trial %d op %d: fresh batch reported duplicate", trial, op)
				}
				return false
			}()
			if died {
				sawDeath = true
				// "Restart": reopen the data directory and retry blindly —
				// the idempotency ledger decides whether the killed attempt
				// committed.
				st = mustOpen(t, dir, opts)
				if _, _, err := st.IngestBatch(id, body); err != nil {
					t.Fatalf("trial %d op %d: retry after death at %s: %v", trial, op, spec, err)
				}
			}
			ds, err := trace.ReadJSON(bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			ref.AppendDataset(ds)
		}
		if !sawDeath {
			// The snapshot failpoints only trip when a snapshot runs; if the
			// auto-threshold never did, force one now and die there.
			died := func() (died bool) {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(chaosDeath); !ok {
							panic(r)
						}
						died = true
					}
				}()
				if err := st.Snapshot(); err != nil {
					t.Fatalf("trial %d: forced snapshot: %v", trial, err)
				}
				return false
			}()
			if !died {
				t.Fatalf("trial %d: failpoint %s never fired", trial, spec)
			}
			st = mustOpen(t, dir, opts)
		}
		// One more restart, then the recovered store must match the
		// uninterrupted reference exactly.
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		st = mustOpen(t, dir, opts)
		if a, b := fingerprint(t, st.Seg()), fingerprint(t, ref); a != b {
			t.Fatalf("trial %d (kill %s at op %d): recovered state diverged", trial, spec, killOp)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStoreChaosAdminOps: deaths between logging and applying a seal or
// compaction. The operation committed (it reached the WAL), so recovery
// must apply it — geometry is recovered state.
func TestStoreChaosAdminOps(t *testing.T) {
	for _, op := range []string{"sealapply", "compactapply"} {
		t.Run(op, func(t *testing.T) {
			dir := t.TempDir()
			opts := Options{Sync: true}
			armed := opts
			armed.Chaos = testChaos(t, op+":1")
			st := mustOpen(t, dir, armed)
			ref := trace.NewSegStore(testSegCfg)
			for i := 0; i < 3; i++ {
				body := batchBody(t, int64(i)*1000, 50)
				if _, _, err := st.IngestBatch(fmt.Sprintf("b%d", i), body); err != nil {
					t.Fatal(err)
				}
				ds, err := trace.ReadJSON(bytes.NewReader(body))
				if err != nil {
					t.Fatal(err)
				}
				ref.AppendDataset(ds)
			}
			died := func() (died bool) {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(chaosDeath); !ok {
							panic(r)
						}
						died = true
					}
				}()
				var err error
				if op == "sealapply" {
					err = st.SealTail()
				} else {
					err = st.Compact()
				}
				if err != nil {
					t.Fatal(err)
				}
				return false
			}()
			if !died {
				t.Fatalf("%s failpoint never fired", op)
			}
			if op == "sealapply" {
				ref.SealTail()
			} else {
				ref.Compact()
			}
			st = mustOpen(t, dir, opts)
			if a, b := fingerprint(t, st.Seg()), fingerprint(t, ref); a != b {
				t.Fatalf("%s: recovered geometry diverged from reference", op)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStoreSnapshotFallback: recovery must survive the newest snapshot
// being unreadable by falling back to the previous one plus a longer WAL
// replay — which is why pruning retains two snapshots.
func TestStoreSnapshotFallback(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Sync: true}
	st := mustOpen(t, dir, opts)
	ref := trace.NewSegStore(testSegCfg)
	for i := 0; i < 4; i++ {
		body := batchBody(t, int64(i)*1000, 30)
		if _, _, err := st.IngestBatch(fmt.Sprintf("b%d", i), body); err != nil {
			t.Fatal(err)
		}
		ds, err := trace.ReadJSON(bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		ref.AppendDataset(ds)
		if err := st.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt the newest snapshot in place.
	snap, err := loadLatestSnapshot(dir)
	if err != nil || snap == nil {
		t.Fatalf("no snapshot to corrupt: %v", err)
	}
	if err := corruptNewestSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	if err := st.w.Close(); err != nil { // release, bypassing Close's final snapshot
		t.Fatal(err)
	}
	st = mustOpen(t, dir, opts)
	if a, b := fingerprint(t, st.Seg()), fingerprint(t, ref); a != b {
		t.Fatal("fallback recovery diverged from reference")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreRejectsWrongConfig: resuming a data directory under different
// store geometry must fail instead of silently corrupting digests.
func TestStoreRejectsWrongConfig(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{Sync: true})
	if _, _, err := st.IngestBatch("b", batchBody(t, 0, 10)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	other := testSegCfg
	other.SegmentJobs = 128
	if _, err := Open(dir, other, Options{Sync: true}); err == nil {
		t.Fatal("Open accepted a data dir written under different geometry")
	}
}

// TestStoreErrorsAreTypedAndUnlogged: rejected requests must map to their
// typed errors and leave no trace in the WAL (a rejection must not replay).
func TestStoreErrorsAreTypedAndUnlogged(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Sync: true, MaxJobs: 25}
	st := mustOpen(t, dir, opts)
	if _, _, err := st.IngestBatch("ok", batchBody(t, 0, 20)); err != nil {
		t.Fatal(err)
	}
	var de *DecodeError
	if _, _, err := st.IngestBatch("bad", []byte(`{"jobs": [`)); !errors.As(err, &de) {
		t.Fatalf("malformed JSON: got %v, want *DecodeError", err)
	}
	de = nil
	if _, _, err := st.IngestBatch("bad", []byte(`{"jobs": [{"JobID": -5}]}`)); !errors.As(err, &de) {
		t.Fatalf("invalid record: got %v, want *DecodeError", err)
	}
	var ce *trace.CapacityError
	if _, _, err := st.IngestBatch("big", batchBody(t, 5000, 10)); !errors.As(err, &ce) {
		t.Fatalf("overflow: got %v, want *trace.CapacityError", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st = mustOpen(t, dir, opts)
	if got := st.Seg().Len(); got != 20 {
		t.Fatalf("after recovery: %d jobs, want 20 (rejections must not be logged)", got)
	}
	if _, dup, _ := st.IngestBatch("bad", batchBody(t, 9000, 1)); dup {
		t.Fatal("rejected batch ID was recorded as applied")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// corruptNewestSnapshot truncates the newest snapshot file so it no longer
// decodes.
func corruptNewestSnapshot(dir string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var newest string
	var newestSeq uint64
	for _, e := range ents {
		if seq, ok := parseSnapName(e.Name()); ok && (newest == "" || seq > newestSeq) {
			newest, newestSeq = e.Name(), seq
		}
	}
	if newest == "" {
		return fmt.Errorf("no snapshots")
	}
	return os.Truncate(filepath.Join(dir, newest), 10)
}
