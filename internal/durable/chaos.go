package durable

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Chaos is the failure-injection harness behind `simcloudd -chaos` and the
// package's own crash-recovery tests. A spec names a failpoint inside the
// durability layer; when execution reaches it the process dies — by default
// via os.Exit, exactly like a SIGKILL from the harness's point of view. The
// interesting property is byte precision: `wal:<n>` kills the process after
// exactly n bytes of the next WAL record have reached the file, which is how
// the chaos tests cover every torn-write shape (mid length field, mid CRC,
// mid payload) rather than only whole-record boundaries.
//
// Specs (comma-separated):
//
//	wal:<n>          die after writing n bytes of the next WAL record
//	apply:<k>        die after the k-th WAL append, before applying to the store
//	sealapply:<k>    die after logging the k-th seal, before sealing the store
//	compactapply:<k> die after logging the k-th compaction, before compacting
//	snaptmp:<k>      die after writing the k-th snapshot temp file, before rename
//	snaprename:<k>   die after renaming the k-th snapshot, before pruning
//	snapprune:<k>    die after pruning for the k-th snapshot, before dir sync
//
// A Chaos value is used by one Store goroutine at a time (the Store holds its
// mutex across every failpoint), so no internal locking is needed. The nil
// *Chaos is inert: every hook is nil-safe and production code passes nil.
type Chaos struct {
	// Exit terminates the process at a tripped failpoint. Defaults to
	// os.Exit(13); in-process tests override it with a panic to simulate
	// death without leaving the test binary.
	Exit func(point string)

	walBytes int64 // >=0: partial-write budget for the next WAL record
	counts   map[string]int
}

// Failpoint names accepted as `<point>:<count>` specs.
var chaosPoints = map[string]bool{
	"apply":        true,
	"sealapply":    true,
	"compactapply": true,
	"snaptmp":      true,
	"snaprename":   true,
	"snapprune":    true,
}

// ParseChaos parses a comma-separated failpoint spec. An empty spec returns
// nil — the inert chaos.
func ParseChaos(spec string) (*Chaos, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	c := &Chaos{walBytes: -1, counts: map[string]int{}}
	for _, part := range strings.Split(spec, ",") {
		name, arg, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("durable: chaos spec %q: want <point>:<count>", part)
		}
		n, err := strconv.ParseInt(arg, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("durable: chaos spec %q: bad count", part)
		}
		switch {
		case name == "wal":
			c.walBytes = n
		case chaosPoints[name]:
			c.counts[name] = int(n)
		default:
			return nil, fmt.Errorf("durable: chaos spec %q: unknown failpoint", part)
		}
	}
	return c, nil
}

// exit fires the configured termination. Never returns.
func (c *Chaos) exit(point string) {
	if c.Exit != nil {
		c.Exit(point)
		// A test Exit hook must not return normally; panicking here would
		// hide the bug behind a confusing secondary failure message.
	}
	fmt.Fprintf(os.Stderr, "chaos: dying at failpoint %s\n", point)
	os.Exit(13)
}

// hit decrements a named failpoint counter and dies when it reaches zero.
// Nil-safe; unknown or unarmed points are free.
func (c *Chaos) hit(point string) {
	if c == nil {
		return
	}
	n, ok := c.counts[point]
	if !ok {
		return
	}
	if n > 1 {
		c.counts[point] = n - 1
		return
	}
	delete(c.counts, point)
	c.exit(point)
}

// walWrite writes one framed record to the WAL file, honoring an armed
// `wal:<n>` failpoint by writing only the first n bytes — synced so the torn
// prefix is really on disk — and dying. With no chaos armed it is a plain
// Write.
func (c *Chaos) walWrite(f *os.File, p []byte) error {
	if c == nil || c.walBytes < 0 {
		_, err := f.Write(p)
		return err
	}
	n := c.walBytes
	if n > int64(len(p)) {
		n = int64(len(p))
	}
	if _, err := f.Write(p[:n]); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	c.walBytes = -1
	c.exit(fmt.Sprintf("wal:%d", n))
	return fmt.Errorf("durable: chaos exit returned") // unreachable with a conforming Exit
}
