package durable

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// appendTestWAL writes records 0..n-1 (payload "payload-<i>") into dir and
// returns the expected payloads.
func appendTestWAL(t *testing.T, dir string, n int, rotateBytes int64) [][]byte {
	t.Helper()
	w, err := openWALForAppend(dir, "", 0, 0, Chain{}, true, rotateBytes, nil)
	if err != nil {
		t.Fatal(err)
	}
	var payloads [][]byte
	for i := 0; i < n; i++ {
		p := []byte(fmt.Sprintf("payload-%03d", i))
		if _, err := w.Append(KindBatch, p); err != nil {
			t.Fatal(err)
		}
		payloads = append(payloads, p)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return payloads
}

func collectReplay(t *testing.T, dir string, fromSeq uint64, fromChain Chain) ([]Record, walState) {
	t.Helper()
	var recs []Record
	st, err := replayWAL(dir, fromSeq, fromChain, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return recs, st
}

func TestRecordRoundTrip(t *testing.T) {
	var chain Chain
	var buf []byte
	payloads := [][]byte{[]byte("a"), {}, bytes.Repeat([]byte{0xAB}, 3000)}
	for i, p := range payloads {
		next := chain.Next(KindBatch, uint64(i), p)
		buf = AppendRecord(buf, KindBatch, uint64(i), next, p)
		chain = next
	}
	chain = Chain{}
	off := 0
	for i, p := range payloads {
		rec, n, err := DecodeRecord(buf[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.Seq != uint64(i) || rec.Kind != KindBatch || !bytes.Equal(rec.Payload, p) {
			t.Fatalf("record %d decoded wrong: %+v", i, rec)
		}
		if want := chain.Next(rec.Kind, rec.Seq, rec.Payload); want != rec.Chain {
			t.Fatalf("record %d: chain mismatch", i)
		}
		chain = rec.Chain
		off += n
	}
	if off != len(buf) {
		t.Fatalf("consumed %d of %d bytes", off, len(buf))
	}
}

// TestDecodeRecordNeverAcceptsCorruption flips every byte of a valid frame
// one at a time; each corruption must be rejected (a flip in the length
// field may instead report truncation, which is equally a rejection).
func TestDecodeRecordNeverAcceptsCorruption(t *testing.T) {
	var chain Chain
	p := []byte("the payload under test")
	frame := AppendRecord(nil, KindBatch, 5, chain.Next(KindBatch, 5, p), p)
	for i := range frame {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), frame...)
			mut[i] ^= 1 << bit
			if _, _, err := DecodeRecord(mut); err == nil {
				t.Fatalf("flip byte %d bit %d: corruption accepted", i, bit)
			}
		}
	}
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := DecodeRecord(frame[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// TestWALTornTailEveryOffset is the truncation matrix: a WAL cut at EVERY
// byte offset must recover exactly the records whose frames are complete,
// and the log must accept appends from that point on.
func TestWALTornTailEveryOffset(t *testing.T) {
	master := t.TempDir()
	payloads := appendTestWAL(t, master, 5, 0)
	name := walFileName(0)
	data, err := os.ReadFile(filepath.Join(master, name))
	if err != nil {
		t.Fatal(err)
	}

	// Frame boundaries, to predict how many records survive each cut.
	bounds := []int{headerSize}
	off := headerSize
	for off < len(data) {
		_, n, err := DecodeRecord(data[off:])
		if err != nil {
			t.Fatal(err)
		}
		off += n
		bounds = append(bounds, off)
	}

	for cut := headerSize; cut <= len(data); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, name), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantRecs := 0
		for _, b := range bounds[1:] {
			if b <= cut {
				wantRecs++
			}
		}
		recs, st := collectReplay(t, dir, 0, Chain{})
		if len(recs) != wantRecs {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(recs), wantRecs)
		}
		for i, r := range recs {
			if !bytes.Equal(r.Payload, payloads[i]) {
				t.Fatalf("cut %d: record %d payload mismatch", cut, i)
			}
		}
		if st.validBytes != int64(bounds[wantRecs]) {
			t.Fatalf("cut %d: validBytes %d, want %d", cut, st.validBytes, bounds[wantRecs])
		}
		// The log must keep working after truncating the torn suffix.
		w, err := openWALForAppend(dir, st.tail, st.validBytes, st.nextSeq, st.chain, true, 0, nil)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if _, err := w.Append(KindSeal, nil); err != nil {
			t.Fatalf("cut %d: append after reopen: %v", cut, err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		recs, _ = collectReplay(t, dir, 0, Chain{})
		if len(recs) != wantRecs+1 || recs[len(recs)-1].Kind != KindSeal {
			t.Fatalf("cut %d: post-reopen replay got %d records", cut, len(recs))
		}
	}
}

// TestWALRotationAndReplay pins that rotation produces independently
// verifiable files that replay seamlessly across boundaries.
func TestWALRotationAndReplay(t *testing.T) {
	dir := t.TempDir()
	payloads := appendTestWAL(t, dir, 40, 256) // tiny threshold: many files
	files, err := listWALFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("rotation produced %d files, want several", len(files))
	}
	recs, st := collectReplay(t, dir, 0, Chain{})
	if len(recs) != len(payloads) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(payloads))
	}
	if st.nextSeq != uint64(len(payloads)) {
		t.Fatalf("nextSeq %d, want %d", st.nextSeq, len(payloads))
	}
	// Replay from a mid-log snapshot point: only the suffix applies.
	mid := recs[17]
	suffix, _ := collectReplay(t, dir, mid.Seq+1, mid.Chain)
	if len(suffix) != len(payloads)-18 {
		t.Fatalf("suffix replay got %d records, want %d", len(suffix), len(payloads)-18)
	}
	if suffix[0].Seq != 18 {
		t.Fatalf("suffix starts at seq %d, want 18", suffix[0].Seq)
	}
}

// TestWALTamperIsHardError: corruption anywhere but the tail must fail
// recovery loudly — those records were acked.
func TestWALTamperIsHardError(t *testing.T) {
	dir := t.TempDir()
	appendTestWAL(t, dir, 40, 256)
	files, err := listWALFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("want several files, got %d", len(files))
	}
	victim := filepath.Join(dir, files[1]) // a middle file
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+recHdrSize] ^= 0x40 // flip a payload bit in its first record
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := replayWAL(dir, 0, Chain{}, func(Record) error { return nil }); err == nil {
		t.Fatal("replay accepted a corrupt non-tail file")
	}
}

// TestWALSnapshotChainMismatch: a snapshot whose chain disagrees with the
// WAL at its coverage point must be rejected, not silently trusted.
func TestWALSnapshotChainMismatch(t *testing.T) {
	dir := t.TempDir()
	appendTestWAL(t, dir, 10, 0)
	recs, _ := collectReplay(t, dir, 0, Chain{})
	bogus := recs[4].Chain
	bogus[0] ^= 0xFF
	if _, err := replayWAL(dir, 5, bogus, func(Record) error { return nil }); err == nil {
		t.Fatal("replay accepted a snapshot chain that does not match the WAL")
	}
}

// TestWALHeaderlessLeftover: a crash between file create and header write
// leaves a short final file; recovery must drop it and resume cleanly.
func TestWALHeaderlessLeftover(t *testing.T) {
	dir := t.TempDir()
	appendTestWAL(t, dir, 5, 0)
	_, st := collectReplay(t, dir, 0, Chain{})
	for _, junk := range [][]byte{nil, []byte("SCW")} {
		leftover := filepath.Join(dir, walFileName(st.nextSeq))
		if err := os.WriteFile(leftover, junk, 0o644); err != nil {
			t.Fatal(err)
		}
		recs, st2 := collectReplay(t, dir, 0, Chain{})
		if len(recs) != 5 || st2.nextSeq != st.nextSeq {
			t.Fatalf("headerless leftover changed replay: %d records, nextSeq %d", len(recs), st2.nextSeq)
		}
		if _, err := os.Stat(leftover); !os.IsNotExist(err) {
			t.Fatal("headerless leftover not removed")
		}
	}
}

// TestWALGapIsHardError: a missing oldest file (records acked, then lost)
// must fail recovery.
func TestWALGapIsHardError(t *testing.T) {
	dir := t.TempDir()
	appendTestWAL(t, dir, 40, 256)
	files, err := listWALFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, files[0])); err != nil {
		t.Fatal(err)
	}
	if _, err := replayWAL(dir, 0, Chain{}, func(Record) error { return nil }); err == nil {
		t.Fatal("replay accepted a WAL with its oldest file missing")
	}
}
