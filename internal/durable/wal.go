// Package durable is the crash-safety layer under simcloudd: a
// length-prefixed, CRC-framed, hash-chained write-ahead log of ingest
// operations plus sealed-state snapshots, so a killed server recovers by
// loading the latest snapshot and replaying the WAL suffix — with the
// recovered store bit-identical to one that never crashed. The hash chain
// (each record commits to every record before it) doubles as the first step
// toward the tamper-evident result ledger of ROADMAP item 2: a verifier
// holding the final chain value can prove no logged batch was altered,
// dropped or reordered.
//
// Layout of a data directory:
//
//	wal-<firstSeq%016x>.log   append-only record files, rotated by size
//	snap-<nextSeq%016x>.snap  gzip+JSON snapshots (atomic tmp+rename)
//
// Every WAL file starts with a 48-byte header — magic, the sequence number
// of its first record, and the chain value BEFORE that record — so each
// file is independently verifiable and files wholly covered by a snapshot
// can be deleted without breaking the chain.
package durable

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Record kinds. The WAL logs logical operations, not bytes of store state:
// replaying the same operations through the same store code reproduces the
// state bit-for-bit, and the log stays readable as an audit trail.
const (
	// KindBatch is one ingest batch: a client batch ID plus the raw JSON
	// body exactly as received (replay re-decodes it through the same
	// codec, so a record that applied once applies identically again).
	KindBatch byte = 1
	// KindTelemetry is one staged monitoring-epilog record (the §II join's
	// nvidia-smi side arriving before its Slurm side).
	KindTelemetry byte = 2
	// KindSeal and KindCompact are the admin operations; logging them makes
	// manual segment geometry survive restarts (summary moments are
	// merge-order sensitive, so geometry is part of recovered state).
	KindSeal    byte = 3
	KindCompact byte = 4
)

const (
	walMagic   = "SCWALv1\n"
	walPrefix  = "wal-"
	walSuffix  = ".log"
	headerSize = len(walMagic) + 8 + chainSize // magic + firstSeq + prevChain

	chainSize  = sha256.Size
	recHdrSize = 4 + 4 + 1 + 8 + chainSize // len + crc + kind + seq + chain

	// MaxPayload bounds one record. The decoder rejects larger length
	// fields before allocating, so a corrupt length cannot OOM recovery.
	MaxPayload = 64 << 20

	// DefaultRotateBytes is the WAL file rotation threshold.
	DefaultRotateBytes = 4 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Chain is a position in the hash chain: the SHA-256 commitment to every
// record up to and including some sequence number. The zero value is the
// genesis chain (before record 0).
type Chain [chainSize]byte

// Next returns the chain advanced over one record.
func (c Chain) Next(kind byte, seq uint64, payload []byte) Chain {
	h := sha256.New()
	h.Write(c[:])
	var hdr [9]byte
	hdr[0] = kind
	binary.BigEndian.PutUint64(hdr[1:], seq)
	h.Write(hdr[:])
	h.Write(payload)
	var out Chain
	h.Sum(out[:0])
	return out
}

// Record is one decoded WAL entry.
type Record struct {
	Seq     uint64
	Kind    byte
	Chain   Chain // chain value AFTER this record
	Payload []byte
}

// AppendRecord encodes one framed record onto buf: a 4-byte big-endian
// payload length, a CRC-32C over everything after the CRC field, then kind,
// sequence, chain and payload. The CRC catches torn writes and bit rot
// record-locally; the chain catches anything the CRC is too small to — and
// ties each record to the whole prefix.
func AppendRecord(buf []byte, kind byte, seq uint64, chain Chain, payload []byte) []byte {
	off := len(buf)
	buf = append(buf, make([]byte, recHdrSize)...)
	buf = append(buf, payload...)
	frame := buf[off:]
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	frame[8] = kind
	binary.BigEndian.PutUint64(frame[9:17], seq)
	copy(frame[17:17+chainSize], chain[:])
	binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(frame[8:], castagnoli))
	return buf
}

// DecodeRecord decodes one framed record from the front of b, returning the
// record and the number of bytes consumed. It never panics and never
// allocates proportionally to a corrupt length field; any framing or CRC
// problem is an error, so a caller can distinguish "valid record", "torn or
// corrupt bytes" and nothing else.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < recHdrSize {
		return Record{}, 0, fmt.Errorf("durable: short record header: %d bytes", len(b))
	}
	n := binary.BigEndian.Uint32(b[0:4])
	if n > MaxPayload {
		return Record{}, 0, fmt.Errorf("durable: record length %d exceeds %d", n, MaxPayload)
	}
	total := recHdrSize + int(n)
	if len(b) < total {
		return Record{}, 0, fmt.Errorf("durable: record truncated: have %d of %d bytes", len(b), total)
	}
	if want, got := binary.BigEndian.Uint32(b[4:8]), crc32.Checksum(b[8:total], castagnoli); want != got {
		return Record{}, 0, fmt.Errorf("durable: record CRC mismatch: %08x != %08x", got, want)
	}
	rec := Record{Kind: b[8], Seq: binary.BigEndian.Uint64(b[9:17])}
	copy(rec.Chain[:], b[17:17+chainSize])
	rec.Payload = b[recHdrSize:total:total]
	return rec, total, nil
}

// wal is the append side of the log. Not safe for concurrent use; the
// Store serializes access (WAL order must match apply order anyway).
type wal struct {
	dir         string
	f           *os.File
	path        string
	sync        bool
	rotateBytes int64
	fileBytes   int64 // bytes in the current file, header included
	nextSeq     uint64
	chain       Chain
	totalBytes  int64 // cumulative record bytes ever appended by this process
	chaos       *Chaos
	scratch     []byte
}

// walFileName returns the file name for a file whose first record is seq.
func walFileName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", walPrefix, seq, walSuffix)
}

// parseWALName extracts the first-record sequence from a WAL file name.
func parseWALName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, walPrefix) || !strings.HasSuffix(name, walSuffix) {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, walPrefix), walSuffix), 16, 64)
	return seq, err == nil
}

// openWALForAppend positions the log for appending at seq with the given
// chain: either reopening tail (a replayed file, truncated to validBytes to
// drop a torn record) or creating a fresh file when the directory holds no
// replayable tail.
func openWALForAppend(dir, tail string, validBytes int64, seq uint64, chain Chain, syncEvery bool, rotateBytes int64, chaos *Chaos) (*wal, error) {
	if rotateBytes <= 0 {
		rotateBytes = DefaultRotateBytes
	}
	w := &wal{dir: dir, sync: syncEvery, rotateBytes: rotateBytes, nextSeq: seq, chain: chain, chaos: chaos}
	if tail == "" {
		return w, w.rotate()
	}
	path := filepath.Join(dir, tail)
	if err := os.Truncate(path, validBytes); err != nil {
		return nil, fmt.Errorf("durable: truncating torn WAL tail: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(validBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	w.f, w.path, w.fileBytes = f, path, validBytes
	return w, nil
}

// rotate closes the current file and starts a new one whose header chains
// off the current position, then syncs the directory so the file survives a
// crash of the machine, not just the process.
func (w *wal) rotate() error {
	if w.f != nil {
		if err := w.f.Sync(); err != nil {
			return err
		}
		if err := w.f.Close(); err != nil {
			return err
		}
	}
	path := filepath.Join(w.dir, walFileName(w.nextSeq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("durable: creating WAL file: %w", err)
	}
	hdr := make([]byte, 0, headerSize)
	hdr = append(hdr, walMagic...)
	hdr = binary.BigEndian.AppendUint64(hdr, w.nextSeq)
	hdr = append(hdr, w.chain[:]...)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.f, w.path, w.fileBytes = f, path, int64(headerSize)
	return nil
}

// Append frames and writes one record, advancing the chain. With sync mode
// on, the record is fsynced before Append returns — the ack-implies-durable
// contract the retrying client builds on.
func (w *wal) Append(kind byte, payload []byte) (uint64, error) {
	if int64(w.fileBytes) > int64(headerSize) && w.fileBytes+int64(recHdrSize+len(payload)) > w.rotateBytes {
		if err := w.rotate(); err != nil {
			return 0, err
		}
	}
	seq := w.nextSeq
	next := w.chain.Next(kind, seq, payload)
	w.scratch = AppendRecord(w.scratch[:0], kind, seq, next, payload)
	if err := w.chaos.walWrite(w.f, w.scratch); err != nil {
		return 0, fmt.Errorf("durable: WAL write: %w", err)
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return 0, fmt.Errorf("durable: WAL fsync: %w", err)
		}
	}
	w.fileBytes += int64(len(w.scratch))
	w.totalBytes += int64(len(w.scratch))
	w.nextSeq = seq + 1
	w.chain = next
	return seq, nil
}

// Sync flushes the current file.
func (w *wal) Sync() error {
	if w.f == nil {
		return nil
	}
	return w.f.Sync()
}

// Close syncs and closes the current file.
func (w *wal) Close() error {
	if w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// walState is where replay left the log: the next sequence to append, the
// chain at that point, and the tail file with its last valid byte offset
// (tail == "" when the directory has no WAL files).
type walState struct {
	nextSeq    uint64
	chain      Chain
	tail       string
	validBytes int64
}

// listWALFiles returns the directory's WAL file names sorted by first
// sequence, verifying the name encodes a parseable sequence.
func listWALFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if _, ok := parseWALName(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	sort.Slice(names, func(a, b int) bool {
		sa, _ := parseWALName(names[a])
		sb, _ := parseWALName(names[b])
		return sa < sb
	})
	return names, nil
}

// replayWAL scans the directory's WAL files and calls apply for every
// record with seq >= fromSeq, verifying sequence continuity, per-record
// CRCs and the hash chain from fromChain onward (records below fromSeq are
// chain-verified but not applied — they are covered by the snapshot).
//
// Torn-tail policy: a framing or CRC error in the LAST file ends replay
// there and the bad suffix is truncated on reopen — that is what an
// interrupted write leaves behind, and the client's retry contract covers
// the unacked record. The same error in any earlier file, or any sequence
// or chain mismatch anywhere, is a hard error: acked records are missing
// or altered, and recovery must not silently drop them.
func replayWAL(dir string, fromSeq uint64, fromChain Chain, apply func(Record) error) (walState, error) {
	names, err := listWALFiles(dir)
	if err != nil {
		return walState{}, err
	}
	// Drop files wholly below fromSeq (already covered by the snapshot and
	// kept only until the next prune).
	start := 0
	for i := range names {
		seq, _ := parseWALName(names[i])
		if seq <= fromSeq {
			start = i
		}
	}
	names = names[start:]

	// A crash during rotation can leave a newest file with a torn (short)
	// header; no record in it was ever acked, so drop it and resume on the
	// file before it (or on a fresh file). Only a SHORT header qualifies —
	// a full-size header with bad magic is corruption of a real file and
	// fails loudly in the verification loop below.
	for len(names) > 0 {
		lastPath := filepath.Join(dir, names[len(names)-1])
		data, err := os.ReadFile(lastPath)
		if err != nil {
			return walState{}, err
		}
		if len(data) >= headerSize {
			break
		}
		if err := os.Remove(lastPath); err != nil {
			return walState{}, fmt.Errorf("durable: removing headerless WAL file: %w", err)
		}
		names = names[:len(names)-1]
	}
	if len(names) == 0 {
		return walState{nextSeq: fromSeq, chain: fromChain}, nil
	}
	if first, _ := parseWALName(names[0]); first > fromSeq {
		return walState{}, fmt.Errorf("durable: WAL gap: snapshot covers through seq %d but oldest file starts at %d", fromSeq, first)
	}

	expectSeq := uint64(0)
	var chain Chain
	for i, name := range names {
		nameSeq, _ := parseWALName(name)
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return walState{}, err
		}
		last := i == len(names)-1
		if len(data) < headerSize || string(data[:len(walMagic)]) != walMagic {
			return walState{}, fmt.Errorf("durable: %s: bad WAL header", name)
		}
		hdrSeq := binary.BigEndian.Uint64(data[len(walMagic) : len(walMagic)+8])
		var hdrChain Chain
		copy(hdrChain[:], data[len(walMagic)+8:headerSize])
		if hdrSeq != nameSeq {
			return walState{}, fmt.Errorf("durable: %s: header seq %d does not match name", name, hdrSeq)
		}
		if i == 0 {
			expectSeq, chain = hdrSeq, hdrChain
		} else if hdrSeq != expectSeq || hdrChain != chain {
			return walState{}, fmt.Errorf("durable: %s: chain break at file boundary (seq %d, want %d)", name, hdrSeq, expectSeq)
		}
		off := headerSize
		for off < len(data) {
			rec, n, derr := DecodeRecord(data[off:])
			if derr != nil {
				if last {
					// Torn tail: truncate here on reopen.
					return walState{nextSeq: expectSeq, chain: chain, tail: name, validBytes: int64(off)}, nil
				}
				return walState{}, fmt.Errorf("durable: %s at offset %d: %w", name, off, derr)
			}
			if rec.Seq != expectSeq {
				return walState{}, fmt.Errorf("durable: %s at offset %d: seq %d, want %d", name, off, rec.Seq, expectSeq)
			}
			if want := chain.Next(rec.Kind, rec.Seq, rec.Payload); want != rec.Chain {
				return walState{}, fmt.Errorf("durable: %s at offset %d: hash chain mismatch at seq %d", name, off, rec.Seq)
			}
			if rec.Seq == fromSeq && chain != fromChain {
				return walState{}, fmt.Errorf("durable: snapshot chain does not match WAL at seq %d", fromSeq)
			}
			chain = rec.Chain
			if rec.Seq >= fromSeq {
				if err := apply(rec); err != nil {
					return walState{}, fmt.Errorf("durable: applying WAL seq %d: %w", rec.Seq, err)
				}
			}
			expectSeq = rec.Seq + 1
			off += n
		}
	}
	if expectSeq < fromSeq {
		return walState{}, fmt.Errorf("durable: WAL ends at seq %d before snapshot coverage %d", expectSeq, fromSeq)
	}
	last := names[len(names)-1]
	fi, err := os.Stat(filepath.Join(dir, last))
	if err != nil {
		return walState{}, err
	}
	return walState{nextSeq: expectSeq, chain: chain, tail: last, validBytes: fi.Size()}, nil
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
