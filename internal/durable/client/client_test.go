package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// scriptedServer answers each request according to a script of status
// codes; 0 means "succeed with a canned ingest ack".
type scriptedServer struct {
	t      *testing.T
	script []int
	calls  atomic.Int64
	hdr    map[string]string // extra headers on error responses
}

func (s *scriptedServer) handler(w http.ResponseWriter, r *http.Request) {
	n := int(s.calls.Add(1)) - 1
	code := 0
	if n < len(s.script) {
		code = s.script[n]
	}
	if code == 0 {
		if err := json.NewEncoder(w).Encode(Result{Seq: uint64(n), Jobs: 3, TotalJobs: 3}); err != nil {
			s.t.Error(err)
		}
		return
	}
	for k, v := range s.hdr {
		w.Header().Set(k, v)
	}
	http.Error(w, http.StatusText(code), code)
}

func newTestClient(srv *httptest.Server, opts Options) (*Client, *[]time.Duration) {
	sleeps := &[]time.Duration{}
	opts.Sleep = func(d time.Duration) { *sleeps = append(*sleeps, d) }
	if opts.BaseDelay == 0 {
		opts.BaseDelay = time.Millisecond
	}
	return New(srv.URL, opts), sleeps
}

func TestClientRetriesUntilSuccess(t *testing.T) {
	ss := &scriptedServer{t: t, script: []int{500, 503, 429}}
	srv := httptest.NewServer(http.HandlerFunc(ss.handler))
	defer srv.Close()
	c, sleeps := newTestClient(srv, Options{})
	res, err := c.IngestBody([]byte(`{"jobs":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != 3 {
		t.Fatalf("res = %+v", res)
	}
	if got := ss.calls.Load(); got != 4 {
		t.Fatalf("server saw %d calls, want 4", got)
	}
	if len(*sleeps) != 3 {
		t.Fatalf("client slept %d times, want 3", len(*sleeps))
	}
}

func TestClientPermanentErrorsDoNotRetry(t *testing.T) {
	for _, code := range []int{400, 404, 405, 413, 507} {
		ss := &scriptedServer{t: t, script: []int{code, code, code}}
		srv := httptest.NewServer(http.HandlerFunc(ss.handler))
		c, _ := newTestClient(srv, Options{})
		_, err := c.IngestBody([]byte(`x`))
		srv.Close()
		var se *StatusError
		if !errors.As(err, &se) || se.Status != code {
			t.Fatalf("code %d: err = %v", code, err)
		}
		if got := ss.calls.Load(); got != 1 {
			t.Fatalf("code %d: server saw %d calls, want 1 (no retry)", code, got)
		}
	}
}

func TestClientHonorsRetryAfter(t *testing.T) {
	ss := &scriptedServer{t: t, script: []int{429}, hdr: map[string]string{"Retry-After": "2"}}
	srv := httptest.NewServer(http.HandlerFunc(ss.handler))
	defer srv.Close()
	c, sleeps := newTestClient(srv, Options{MaxDelay: 10 * time.Second})
	if _, err := c.IngestBody([]byte(`{"jobs":[]}`)); err != nil {
		t.Fatal(err)
	}
	if len(*sleeps) != 1 || (*sleeps)[0] < 2*time.Second {
		t.Fatalf("sleeps = %v; Retry-After: 2 not honored", *sleeps)
	}
}

func TestClientAttemptCap(t *testing.T) {
	ss := &scriptedServer{t: t, script: []int{500, 500, 500, 500, 500, 500}}
	srv := httptest.NewServer(http.HandlerFunc(ss.handler))
	defer srv.Close()
	c, _ := newTestClient(srv, Options{MaxAttempts: 3})
	_, err := c.IngestBody([]byte(`x`))
	if err == nil || !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("err = %v", err)
	}
	if got := ss.calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
}

func TestClientSleepBudget(t *testing.T) {
	ss := &scriptedServer{t: t, script: []int{503, 503, 503, 503, 503, 503}, hdr: map[string]string{"Retry-After": "60"}}
	srv := httptest.NewServer(http.HandlerFunc(ss.handler))
	defer srv.Close()
	c, _ := newTestClient(srv, Options{MaxDelay: 2 * time.Minute, SleepBudget: 90 * time.Second})
	_, err := c.IngestBody([]byte(`x`))
	if err == nil || !strings.Contains(err.Error(), "retry budget") {
		t.Fatalf("err = %v", err)
	}
	// 60s + 60s would blow the 90s budget: exactly one sleep happens.
	if got := ss.calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
}

func TestClientNetworkErrorRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // all connections refused
	c := New(srv.URL, Options{MaxAttempts: 3, BaseDelay: time.Millisecond, Sleep: func(time.Duration) {}})
	_, err := c.IngestBody([]byte(`x`))
	if err == nil || !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("err = %v", err)
	}
}

func TestBatchIDStable(t *testing.T) {
	a, b := BatchID([]byte("hello")), BatchID([]byte("hello"))
	if a != b || len(a) != 64 {
		t.Fatalf("BatchID unstable or malformed: %q vs %q", a, b)
	}
	if BatchID([]byte("other")) == a {
		t.Fatal("distinct bodies share an ID")
	}
}

func TestClientSendsBatchIDHeader(t *testing.T) {
	var gotID atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotID.Store(r.Header.Get("X-Batch-ID"))
		if err := json.NewEncoder(w).Encode(Result{}); err != nil {
			t.Error(err)
		}
	}))
	defer srv.Close()
	c := New(srv.URL, Options{})
	body := []byte(`{"jobs":[]}`)
	if _, err := c.IngestBody(body); err != nil {
		t.Fatal(err)
	}
	if got := gotID.Load(); got != BatchID(body) {
		t.Fatalf("X-Batch-ID = %v, want content hash", got)
	}
}

func TestTelemetrySinkCollectsErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasSuffix(r.URL.Path, "/v1/telemetry") {
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		http.Error(w, "bad", http.StatusBadRequest)
	}))
	defer srv.Close()
	sink := &TelemetrySink{C: New(srv.URL, Options{Sleep: func(time.Duration) {}})}
	per := []metrics.MetricSummaries{{metrics.SMUtil: {Mean: 50}}}
	for i := 0; i < 3; i++ {
		sink.StageTelemetry(int64(i), per, &trace.TimeSeries{JobID: int64(i), IntervalSec: 1})
	}
	err := sink.Err()
	if err == nil || !strings.Contains(err.Error(), "3 telemetry records undelivered") {
		t.Fatalf("sink.Err() = %v", err)
	}
}

func TestTelemetrySinkDelivers(t *testing.T) {
	var bodies atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var wire telemetryWire
		if err := json.NewDecoder(r.Body).Decode(&wire); err != nil {
			t.Error(err)
		}
		if wire.JobID != 42 || wire.Series == nil {
			t.Errorf("wire = %+v", wire)
		}
		bodies.Add(1)
		fmt.Fprint(w, "{}")
	}))
	defer srv.Close()
	sink := &TelemetrySink{C: New(srv.URL, Options{})}
	sink.StageTelemetry(42, nil, &trace.TimeSeries{JobID: 42, IntervalSec: 0.1})
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	if bodies.Load() != 1 {
		t.Fatal("telemetry never reached the server")
	}
}
