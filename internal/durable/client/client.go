// Package client is the ingest side of the durability contract: a retrying
// HTTP client for simcloudd whose every request is safe to repeat. Batches
// carry content-derived IDs (SHA-256 of the body), so a retry after an
// ambiguous failure — connection dropped mid-response, server killed after
// commit — lands on the server's idempotency ledger and is applied exactly
// once. Backoff is full-jitter exponential with two independent brakes: an
// attempt cap and a cumulative sleep budget. 429 responses carrying
// Retry-After (the server's backpressure signal) are obeyed.
//
// The client implements engine.StreamSink (stream whole replications into a
// remote store) and, via TelemetrySink, monitor.EpilogSink (stream epilog
// telemetry), making a remote simcloudd a drop-in for a local SegStore.
package client

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Result is the server's ingest acknowledgment.
type Result struct {
	Seq       uint64 `json:"seq"`        // WAL sequence that committed the batch
	Jobs      int    `json:"jobs"`       // jobs the batch added
	TotalJobs int    `json:"total_jobs"` // store size after the batch
	Duplicate bool   `json:"duplicate"`  // batch ID was already applied
}

// StatusError is a non-2xx server response. Temporary reports whether a
// retry could help: overload (429) and server-side trouble (5xx, including
// a draining server's 503) are temporary; client mistakes (400, 405, 413)
// and a full store (507) are not.
type StatusError struct {
	Status int
	Msg    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.Status, e.Msg)
}

func (e *StatusError) Temporary() bool {
	if e.Status == http.StatusInsufficientStorage {
		return false // the store is full by policy; retrying cannot help
	}
	return e.Status == http.StatusTooManyRequests || e.Status >= 500
}

// Options configures a Client. The zero value of every field has a usable
// default.
type Options struct {
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// MaxAttempts caps tries per request (first attempt included).
	// Default 8.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 50ms); MaxDelay
	// caps a single sleep (default 5s).
	BaseDelay, MaxDelay time.Duration
	// SleepBudget caps cumulative backoff sleep per request (default 2m):
	// a request that cannot get through inside it fails even with
	// attempts to spare.
	SleepBudget time.Duration
	// Seed feeds the jitter RNG; requests are deterministic given a seed
	// and a server behavior sequence.
	Seed uint64
	// Sleep is the backoff clock, injectable for tests. Default
	// time.Sleep.
	Sleep func(time.Duration)
}

// Client is a retrying simcloudd client. Safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
	opts Options

	mu  sync.Mutex
	rng *dist.RNG
}

// New returns a client for the server at baseURL (e.g. "http://host:8080").
func New(baseURL string, opts Options) *Client {
	if opts.HTTPClient == nil {
		opts.HTTPClient = http.DefaultClient
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 8
	}
	if opts.BaseDelay <= 0 {
		opts.BaseDelay = 50 * time.Millisecond
	}
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = 5 * time.Second
	}
	if opts.SleepBudget <= 0 {
		opts.SleepBudget = 2 * time.Minute
	}
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep
	}
	return &Client{base: baseURL, hc: opts.HTTPClient, opts: opts, rng: dist.New(opts.Seed)}
}

// BatchID derives the canonical content-hash batch ID for a body. Two
// submissions of byte-identical bodies share an ID — which is exactly the
// dedup a blind retry needs.
func BatchID(body []byte) string {
	return fmt.Sprintf("%x", sha256.Sum256(body))
}

// IngestDataset encodes ds and ingests it as one batch.
func (c *Client) IngestDataset(ds *trace.Dataset) (Result, error) {
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		return Result{}, err
	}
	return c.IngestBody(buf.Bytes())
}

// IngestBody ingests a pre-encoded dataset body under its content-hash ID.
func (c *Client) IngestBody(body []byte) (Result, error) {
	return c.IngestBodyID(BatchID(body), body)
}

// IngestBodyID ingests body under an explicit batch ID.
func (c *Client) IngestBodyID(id string, body []byte) (Result, error) {
	var res Result
	err := c.do("/v1/ingest", map[string]string{"X-Batch-ID": id}, body, &res)
	return res, err
}

// AppendStreamDataset implements engine.StreamSink: each replication's
// dataset becomes one idempotent ingest batch.
func (c *Client) AppendStreamDataset(ds *trace.Dataset) error {
	_, err := c.IngestDataset(ds)
	return err
}

// telemetryWire mirrors the server's /v1/telemetry request body.
type telemetryWire struct {
	JobID  int64                     `json:"job_id"`
	PerGPU []metrics.MetricSummaries `json:"per_gpu,omitempty"`
	Series *trace.TimeSeries         `json:"series,omitempty"`
}

// StageTelemetry sends one monitoring-epilog record. Staging is naturally
// idempotent (same job ID, same payload), so retries need no batch ID.
func (c *Client) StageTelemetry(jobID int64, perGPU []metrics.MetricSummaries, ts *trace.TimeSeries) error {
	body, err := json.Marshal(telemetryWire{JobID: jobID, PerGPU: perGPU, Series: ts})
	if err != nil {
		return err
	}
	return c.do("/v1/telemetry", nil, body, nil)
}

// do POSTs body to path with retries. A nil out skips response decoding.
func (c *Client) do(path string, headers map[string]string, body []byte, out any) error {
	var slept time.Duration
	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			d := c.backoff(attempt, lastErr)
			if slept+d > c.opts.SleepBudget {
				return fmt.Errorf("client: retry budget %v exhausted after %d attempts: %w",
					c.opts.SleepBudget, attempt, lastErr)
			}
			c.opts.Sleep(d)
			slept += d
		}
		err := c.post(path, headers, body, out)
		if err == nil {
			return nil
		}
		var se *StatusError
		if errors.As(err, &se) && !se.Temporary() {
			return err // the request is at fault; repeating it cannot help
		}
		lastErr = err
	}
	return fmt.Errorf("client: giving up after %d attempts: %w", c.opts.MaxAttempts, lastErr)
}

// post performs one attempt.
func (c *Client) post(path string, headers map[string]string, body []byte, out any) error {
	req, err := http.NewRequest(http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err // transport errors are always retryable
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		se := &StatusError{Status: resp.StatusCode, Msg: string(bytes.TrimSpace(data))}
		if ra := retryAfterSeconds(resp); ra > 0 && se.Temporary() {
			return &retryAfterError{StatusError: se, after: ra}
		}
		return se
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// retryAfterError carries the server's requested delay alongside the status.
type retryAfterError struct {
	*StatusError
	after time.Duration
}

func (e *retryAfterError) Unwrap() error { return e.StatusError }

func retryAfterSeconds(resp *http.Response) time.Duration {
	sec, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || sec <= 0 {
		return 0
	}
	return time.Duration(sec) * time.Second
}

// backoff returns the sleep before the attempt-th retry: full jitter over
// an exponentially growing cap, floored by any server-requested Retry-After
// (which knows the backlog better than our exponent does).
func (c *Client) backoff(attempt int, lastErr error) time.Duration {
	ceil := c.opts.BaseDelay << (attempt - 1)
	if ceil > c.opts.MaxDelay || ceil <= 0 {
		ceil = c.opts.MaxDelay
	}
	c.mu.Lock()
	d := time.Duration(c.rng.Float64() * float64(ceil))
	c.mu.Unlock()
	if d < time.Millisecond {
		d = time.Millisecond
	}
	var rae *retryAfterError
	if e, ok := lastErr.(*retryAfterError); ok {
		rae = e
	}
	if rae != nil && rae.after > d {
		d = rae.after
	}
	if d > c.opts.MaxDelay {
		d = c.opts.MaxDelay
	}
	return d
}

// TelemetrySink adapts Client to monitor.EpilogSink, whose StageTelemetry
// returns nothing — the pipeline fires epilogs without waiting on storage.
// Errors are collected instead of lost; check Err after the run.
type TelemetrySink struct {
	C *Client

	mu      sync.Mutex
	errs    []error
	dropped int
}

// StageTelemetry implements monitor.EpilogSink.
func (s *TelemetrySink) StageTelemetry(jobID int64, perGPU []metrics.MetricSummaries, ts *trace.TimeSeries) {
	if err := s.C.StageTelemetry(jobID, perGPU, ts); err != nil {
		s.mu.Lock()
		if len(s.errs) < 8 {
			s.errs = append(s.errs, fmt.Errorf("job %d: %w", jobID, err))
		}
		s.dropped++
		s.mu.Unlock()
	}
}

// Err reports the first delivery errors and the total count, or nil if
// every record was delivered.
func (s *TelemetrySink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dropped == 0 {
		return nil
	}
	return fmt.Errorf("client: %d telemetry records undelivered; first: %w", s.dropped, s.errs[0])
}
