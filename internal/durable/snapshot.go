package durable

import (
	"compress/gzip"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/trace"
)

// Snapshots are the checkpoint side of recovery: the complete logical store
// state (see trace.SegStoreState) plus everything needed to resume the WAL —
// the next sequence number, the chain value at that point, and the applied
// batch-ID ledger for idempotency. A snapshot at nextSeq N makes every WAL
// record with seq < N redundant; recovery loads the newest readable snapshot
// and replays only the suffix.
//
// Snapshots are written to a temp file, fsynced, renamed into place and the
// directory synced — a torn snapshot is either invisible (tmp never renamed)
// or detectably corrupt (gzip checksums fail), and recovery falls back to
// the previous snapshot plus a longer WAL replay.

const (
	snapPrefix = "snap-"
	snapSuffix = ".snap"
	tmpSuffix  = ".tmp"

	snapshotFormat = 1
)

// AppliedBatch is one entry of the idempotency ledger: a client batch ID,
// the WAL sequence that committed it, and the job count it added (the
// outcome a duplicate submission gets back).
type AppliedBatch struct {
	ID   string `json:"id"`
	Seq  uint64 `json:"seq"`
	Jobs int    `json:"jobs"`
}

// snapConfig mirrors trace.SegConfig with tags; recovery refuses to resume a
// data directory under a different store geometry (summary digests are
// geometry-dependent, so a silent config change would corrupt them).
type snapConfig struct {
	DurationDays float64 `json:"duration_days"`
	SegmentJobs  int     `json:"segment_jobs"`
	MaxSegments  int     `json:"max_segments"`
}

type snapshotFile struct {
	Format  int                  `json:"format"`
	Seg     snapConfig           `json:"seg"`
	NextSeq uint64               `json:"next_seq"`
	Chain   string               `json:"chain"` // hex of the chain value at NextSeq
	Applied []AppliedBatch       `json:"applied,omitempty"`
	State   *trace.SegStoreState `json:"state"`
}

func snapFileName(nextSeq uint64) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, nextSeq, snapSuffix)
}

func parseSnapName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix), 16, 64)
	return seq, err == nil
}

// writeSnapshot persists snap atomically and prunes files it supersedes:
// older snapshots and WAL files whose every record is below snap.NextSeq.
// Ordering is crash-safe — the new snapshot is durable (renamed + dir
// synced) before anything is deleted, so every intermediate state recovers.
func writeSnapshot(dir string, snap *snapshotFile, chaos *Chaos) error {
	name := snapFileName(snap.NextSeq)
	tmp := filepath.Join(dir, name+tmpSuffix)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	zw := gzip.NewWriter(f)
	if err := json.NewEncoder(zw).Encode(snap); err != nil {
		f.Close()
		return fmt.Errorf("durable: encoding snapshot: %w", err)
	}
	if err := zw.Close(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	chaos.hit("snaptmp")
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	chaos.hit("snaprename")
	if err := pruneObsolete(dir); err != nil {
		return err
	}
	chaos.hit("snapprune")
	return syncDir(dir)
}

// pruneObsolete deletes files recovery can no longer need. The two newest
// snapshots are retained — keeping the previous one means a snapshot that
// turns out to be unreadable is not a single point of failure — and WAL
// files are deleted only when wholly below the OLDEST retained snapshot's
// coverage (a WAL file is wholly below seq S when the next file's first
// sequence is <= S: all its records are then < S).
func pruneObsolete(dir string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var snapNames, walNames []string
	for _, e := range ents {
		n := e.Name()
		if _, ok := parseSnapName(n); ok {
			snapNames = append(snapNames, n)
		} else if _, ok := parseWALName(n); ok {
			walNames = append(walNames, n)
		}
	}
	sort.Slice(snapNames, func(a, b int) bool {
		sa, _ := parseSnapName(snapNames[a])
		sb, _ := parseSnapName(snapNames[b])
		return sa > sb // newest first
	})
	const retain = 2
	for _, n := range snapNames[min(retain, len(snapNames)):] {
		if err := os.Remove(filepath.Join(dir, n)); err != nil {
			return err
		}
	}
	if len(snapNames) == 0 {
		return nil
	}
	coveredSeq, _ := parseSnapName(snapNames[min(retain, len(snapNames))-1])
	sort.Slice(walNames, func(a, b int) bool {
		sa, _ := parseWALName(walNames[a])
		sb, _ := parseWALName(walNames[b])
		return sa < sb
	})
	for i := 0; i+1 < len(walNames); i++ {
		next, _ := parseWALName(walNames[i+1])
		if next <= coveredSeq {
			if err := os.Remove(filepath.Join(dir, walNames[i])); err != nil {
				return err
			}
		}
	}
	return nil
}

// loadLatestSnapshot returns the newest readable snapshot in dir, or nil if
// none exists. Unreadable snapshots (torn by a crash mid-write that somehow
// survived the atomic rename discipline, or bit-rotted) are skipped with a
// fallback to the next-newest; leftover temp files are removed.
func loadLatestSnapshot(dir string) (*snapshotFile, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if strings.HasSuffix(n, tmpSuffix) {
			if err := os.Remove(filepath.Join(dir, n)); err != nil {
				return nil, err
			}
			continue
		}
		if _, ok := parseSnapName(n); ok {
			names = append(names, n)
		}
	}
	sort.Slice(names, func(a, b int) bool {
		sa, _ := parseSnapName(names[a])
		sb, _ := parseSnapName(names[b])
		return sa > sb // newest first
	})
	for _, name := range names {
		snap, err := readSnapshot(filepath.Join(dir, name))
		if err == nil {
			return snap, nil
		}
	}
	return nil, nil
}

func readSnapshot(path string) (*snapshotFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	var snap snapshotFile
	if err := json.NewDecoder(zr).Decode(&snap); err != nil {
		return nil, err
	}
	// The gzip trailer CRC only verifies once the stream is fully consumed.
	if _, err := io.Copy(io.Discard, zr); err != nil {
		return nil, err
	}
	if err := zr.Close(); err != nil {
		return nil, err
	}
	if snap.Format != snapshotFormat {
		return nil, fmt.Errorf("durable: snapshot format %d, want %d", snap.Format, snapshotFormat)
	}
	if snap.State == nil {
		return nil, fmt.Errorf("durable: snapshot has no store state")
	}
	if _, err := decodeChain(snap.Chain); err != nil {
		return nil, err
	}
	return &snap, nil
}

func encodeChain(c Chain) string { return hex.EncodeToString(c[:]) }

func decodeChain(s string) (Chain, error) {
	var c Chain
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != chainSize {
		return c, fmt.Errorf("durable: bad chain encoding %q", s)
	}
	copy(c[:], b)
	return c, nil
}
