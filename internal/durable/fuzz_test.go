package durable

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzWALRecord throws arbitrary bytes at the WAL record decoder. The
// decoder sits on the recovery path — it reads whatever a crash left on
// disk — so the contract is absolute: truncations, bit flips, hostile
// length fields and random noise must all come back as errors, never as a
// panic, an over-allocation, or a silently wrong record. Accepted inputs
// must re-encode to exactly the consumed bytes (the codec is bijective on
// valid frames, so a decode cannot "repair" anything).
func FuzzWALRecord(f *testing.F) {
	var chain Chain
	payload := []byte("fuzz seed payload")
	valid := AppendRecord(nil, KindBatch, 7, chain.Next(KindBatch, 7, payload), payload)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                         // truncated payload
	f.Add(valid[:recHdrSize-1])                         // truncated header
	f.Add([]byte{})                                     // empty
	f.Add(AppendRecord(nil, KindSeal, 0, Chain{}, nil)) // empty payload record
	hostile := make([]byte, recHdrSize)
	binary.BigEndian.PutUint32(hostile, 1<<31) // length far beyond MaxPayload
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, b []byte) {
		rec, n, err := DecodeRecord(b)
		if err != nil {
			if n != 0 {
				t.Fatalf("error with %d bytes consumed", n)
			}
			return
		}
		if n < recHdrSize || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		if len(rec.Payload) > MaxPayload {
			t.Fatalf("payload %d exceeds MaxPayload", len(rec.Payload))
		}
		re := AppendRecord(nil, rec.Kind, rec.Seq, rec.Chain, rec.Payload)
		if !bytes.Equal(re, b[:n]) {
			t.Fatal("decode/encode round-trip altered the frame")
		}
	})
}
