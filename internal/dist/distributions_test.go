package dist

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func sampleMany(s Sampler, n int, seed uint64) []float64 {
	r := New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = s.Sample(r)
	}
	return out
}

func empiricalQuantile(vals []float64, p float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	idx := int(p * float64(len(s)-1))
	return s[idx]
}

func TestUniformQuantileAndSample(t *testing.T) {
	u := Uniform{Low: 2, High: 10}
	if got := u.Quantile(0.5); math.Abs(got-6) > 1e-12 {
		t.Fatalf("uniform median = %v, want 6", got)
	}
	vals := sampleMany(u, 50000, 1)
	for _, v := range vals {
		if v < 2 || v > 10 {
			t.Fatalf("uniform sample %v out of [2,10]", v)
		}
	}
	if med := empiricalQuantile(vals, 0.5); math.Abs(med-6) > 0.1 {
		t.Fatalf("uniform empirical median %v", med)
	}
}

func TestLognormalCalibration(t *testing.T) {
	// Calibrate to the paper's GPU run times: median 30 min, p75 300 min.
	l := LognormalFromMedianQuartile(30, 300)
	if med := l.Median(); math.Abs(med-30) > 1e-9 {
		t.Fatalf("median = %v, want 30", med)
	}
	if q := l.Quantile(0.75); math.Abs(q-300) > 1e-6 {
		t.Fatalf("q75 = %v, want 300", q)
	}
	vals := sampleMany(l, 200000, 2)
	if med := empiricalQuantile(vals, 0.5); math.Abs(med-30)/30 > 0.05 {
		t.Fatalf("empirical median %v, want ~30", med)
	}
	if q75 := empiricalQuantile(vals, 0.75); math.Abs(q75-300)/300 > 0.08 {
		t.Fatalf("empirical q75 %v, want ~300", q75)
	}
}

func TestLognormalCalibrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for q75 <= median")
		}
	}()
	LognormalFromMedianQuartile(30, 30)
}

func TestExponentialQuantile(t *testing.T) {
	e := Exponential{Mean: 5}
	// Median of exponential is mean*ln(2).
	want := 5 * math.Ln2
	if got := e.Quantile(0.5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("exp median = %v, want %v", got, want)
	}
	vals := sampleMany(e, 100000, 3)
	var sum float64
	for _, v := range vals {
		sum += v
	}
	if mean := sum / float64(len(vals)); math.Abs(mean-5)/5 > 0.03 {
		t.Fatalf("exp empirical mean %v, want ~5", mean)
	}
}

func TestBoundedParetoRange(t *testing.T) {
	b := BoundedPareto{Low: 1, High: 1000, Alpha: 1.1}
	vals := sampleMany(b, 50000, 4)
	for _, v := range vals {
		if v < 1 || v > 1000 {
			t.Fatalf("bounded pareto sample %v out of range", v)
		}
	}
	// Heavy tail: the top decile should hold a disproportionate mass share.
	sort.Float64s(vals)
	var total, top float64
	for i, v := range vals {
		total += v
		if i >= len(vals)*9/10 {
			top += v
		}
	}
	if share := top / total; share < 0.4 {
		t.Fatalf("top-decile mass share %.3f; expected heavy tail > 0.4", share)
	}
}

func TestBoundedParetoQuantileMonotone(t *testing.T) {
	b := BoundedPareto{Low: 2, High: 500, Alpha: 1.5}
	prev := -math.MaxFloat64
	for p := 0.0; p <= 1.0; p += 0.01 {
		q := b.Quantile(p)
		if q < prev-1e-9 {
			t.Fatalf("quantile not monotone at p=%v: %v < %v", p, q, prev)
		}
		prev = q
	}
	if q0 := b.Quantile(0); math.Abs(q0-2) > 1e-6 {
		t.Fatalf("Quantile(0) = %v, want Low=2", q0)
	}
	if q1 := b.Quantile(1); math.Abs(q1-500) > 1e-6 {
		t.Fatalf("Quantile(1) = %v, want High=500", q1)
	}
}

func TestTriangular(t *testing.T) {
	tr := Triangular{Low: 0, Mode: 20, High: 100}
	vals := sampleMany(tr, 50000, 5)
	for _, v := range vals {
		if v < 0 || v > 100 {
			t.Fatalf("triangular sample %v out of range", v)
		}
	}
	// Mean of triangular = (a+b+c)/3 = 40.
	var sum float64
	for _, v := range vals {
		sum += v
	}
	if mean := sum / float64(len(vals)); math.Abs(mean-40) > 1 {
		t.Fatalf("triangular mean %v, want ~40", mean)
	}
}

func TestBetaShapes(t *testing.T) {
	// Beta(0.5, 3) piles near zero; Beta(5, 2) has a body near 0.7.
	low := sampleMany(Beta{A: 0.5, B: 3}, 50000, 6)
	hi := sampleMany(Beta{A: 5, B: 2}, 50000, 7)
	for _, v := range append(append([]float64{}, low...), hi...) {
		if v < 0 || v > 1 {
			t.Fatalf("beta sample %v out of [0,1]", v)
		}
	}
	if med := empiricalQuantile(low, 0.5); med > 0.2 {
		t.Fatalf("Beta(0.5,3) median %v; expected near-zero pile", med)
	}
	if med := empiricalQuantile(hi, 0.5); med < 0.6 || med > 0.8 {
		t.Fatalf("Beta(5,2) median %v; expected ~0.71", med)
	}
}

func TestTruncated(t *testing.T) {
	base := Lognormal{Mu: 0, Sigma: 3}
	tr := Truncated{Base: base, Low: 0.5, High: 4}
	vals := sampleMany(tr, 20000, 8)
	for _, v := range vals {
		if v < 0.5 || v > 4 {
			t.Fatalf("truncated sample %v out of [0.5,4]", v)
		}
	}
}

func TestMixtureWeights(t *testing.T) {
	m := NewMixture(
		Component{Weight: 0.3, Dist: Constant{Value: 0}},
		Component{Weight: 0.7, Dist: Constant{Value: 1}},
	)
	vals := sampleMany(m, 100000, 9)
	ones := 0
	for _, v := range vals {
		if v == 1 {
			ones++
		}
	}
	if frac := float64(ones) / float64(len(vals)); math.Abs(frac-0.7) > 0.01 {
		t.Fatalf("mixture drew component 1 at rate %.4f, want 0.7", frac)
	}
}

func TestMixturePanicsOnEmptyWeights(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero-weight mixture")
		}
	}()
	NewMixture(Component{Weight: 0, Dist: Constant{}})
}

func TestCategorical(t *testing.T) {
	c := NewCategorical(1, 30, 4, 65)
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	if p := c.Prob(3); math.Abs(p-0.65) > 1e-12 {
		t.Fatalf("Prob(3) = %v, want 0.65", p)
	}
	r := New(10)
	counts := make([]int, 4)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[c.Draw(r)]++
	}
	wants := []float64{0.01, 0.30, 0.04, 0.65}
	for i, w := range wants {
		if got := float64(counts[i]) / n; math.Abs(got-w) > 0.01 {
			t.Fatalf("category %d rate %.4f, want %.2f", i, got, w)
		}
	}
}

func TestScaled(t *testing.T) {
	s := Scaled{Base: Constant{Value: 2}, Factor: 3, Offset: 1}
	if got := s.Sample(New(1)); got != 7 {
		t.Fatalf("scaled sample = %v, want 7", got)
	}
}

func TestNormQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.025, 0.25, 0.5, 0.75, 0.975, 0.99, 0.999} {
		x := NormQuantile(p)
		back := NormCDF(x)
		if math.Abs(back-p) > 1e-6 {
			t.Fatalf("NormCDF(NormQuantile(%v)) = %v", p, back)
		}
	}
	if q := NormQuantile(0.5); math.Abs(q) > 1e-9 {
		t.Fatalf("NormQuantile(0.5) = %v, want 0", q)
	}
	if !math.IsInf(NormQuantile(0), -1) || !math.IsInf(NormQuantile(1), 1) {
		t.Fatal("NormQuantile boundary values not infinite")
	}
}

// Property: every QuantileSampler's Quantile is monotone non-decreasing.
func TestQuantileMonotoneProperty(t *testing.T) {
	samplers := []QuantileSampler{
		Uniform{Low: -3, High: 9},
		Lognormal{Mu: 1, Sigma: 2},
		Exponential{Mean: 4},
		BoundedPareto{Low: 1, High: 100, Alpha: 1.2},
		Triangular{Low: 0, Mode: 5, High: 10},
	}
	f := func(a, b float64) bool {
		pa, pb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if pa > pb {
			pa, pb = pb, pa
		}
		for _, s := range samplers {
			if s.Quantile(pa) > s.Quantile(pb)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: samples from bounded distributions stay in bounds for any seed.
func TestBoundedSamplesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		u := Uniform{Low: 1, High: 2}
		b := BoundedPareto{Low: 3, High: 30, Alpha: 2}
		tri := Triangular{Low: -1, Mode: 0, High: 1}
		for i := 0; i < 50; i++ {
			if v := u.Sample(r); v < 1 || v > 2 {
				return false
			}
			if v := b.Sample(r); v < 3 || v > 30 {
				return false
			}
			if v := tri.Sample(r); v < -1 || v > 1 {
				return false
			}
			if v := (Beta{A: 2, B: 2}).Sample(r); v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
