package dist

import (
	"fmt"
	"math"
	"sort"
)

// Sampler is a one-dimensional distribution that can draw variates from an
// RNG stream. Implementations are immutable and safe for concurrent use with
// distinct RNGs.
type Sampler interface {
	// Sample draws a single variate.
	Sample(r *RNG) float64
}

// QuantileSampler is a Sampler that also exposes its inverse CDF. The
// workload calibrator uses quantiles to verify that configured distributions
// hit the paper's published percentiles before any data is generated.
type QuantileSampler interface {
	Sampler
	// Quantile returns the value at probability p in [0, 1].
	Quantile(p float64) float64
}

// ---------------------------------------------------------------------------
// Uniform
// ---------------------------------------------------------------------------

// Uniform is the continuous uniform distribution on [Low, High].
type Uniform struct {
	Low, High float64
}

// Sample draws a uniform variate.
func (u Uniform) Sample(r *RNG) float64 { return u.Low + (u.High-u.Low)*r.Float64() }

// Quantile returns Low + p*(High-Low).
func (u Uniform) Quantile(p float64) float64 { return u.Low + (u.High-u.Low)*clamp01(p) }

// Mean returns the distribution mean.
func (u Uniform) Mean() float64 { return (u.Low + u.High) / 2 }

// ---------------------------------------------------------------------------
// Lognormal
// ---------------------------------------------------------------------------

// Lognormal is the lognormal distribution: exp(N(Mu, Sigma²)). It is the
// primary model for job run times: the paper's Fig. 3a run-time CDF spans
// nearly four decades with a straight-ish middle on a log axis, the signature
// of a lognormal body.
type Lognormal struct {
	Mu    float64 // mean of the underlying normal (log-space)
	Sigma float64 // stddev of the underlying normal (log-space)
}

// LognormalFromMedianQuartile constructs a lognormal whose median equals
// median and whose 75th percentile equals q75. This mirrors how the paper
// reports run times (median plus quartiles), letting the calibration be
// written directly in the paper's published numbers.
func LognormalFromMedianQuartile(median, q75 float64) Lognormal {
	if median <= 0 || q75 <= median {
		panic(fmt.Sprintf("dist: invalid lognormal calibration median=%v q75=%v", median, q75))
	}
	// For lognormal: Q(p) = exp(mu + sigma*z_p); z_0.75 = 0.6744897501960817.
	const z75 = 0.6744897501960817
	mu := math.Log(median)
	sigma := (math.Log(q75) - mu) / z75
	return Lognormal{Mu: mu, Sigma: sigma}
}

// Sample draws a lognormal variate.
func (l Lognormal) Sample(r *RNG) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Quantile returns the inverse CDF at p.
func (l Lognormal) Quantile(p float64) float64 {
	return math.Exp(l.Mu + l.Sigma*NormQuantile(clamp01(p)))
}

// Median returns exp(Mu).
func (l Lognormal) Median() float64 { return math.Exp(l.Mu) }

// Mean returns exp(Mu + Sigma²/2).
func (l Lognormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// ---------------------------------------------------------------------------
// Exponential
// ---------------------------------------------------------------------------

// Exponential is the exponential distribution with the given Mean. It models
// inter-arrival gaps and phase durations.
type Exponential struct {
	Mean float64
}

// Sample draws an exponential variate.
func (e Exponential) Sample(r *RNG) float64 { return e.Mean * r.ExpFloat64() }

// Quantile returns -Mean * ln(1-p).
func (e Exponential) Quantile(p float64) float64 { return -e.Mean * math.Log(1-clamp01p(p)) }

// ---------------------------------------------------------------------------
// Bounded Pareto
// ---------------------------------------------------------------------------

// BoundedPareto is a Pareto distribution truncated to [Low, High] with shape
// Alpha. It models per-user job counts: the paper reports that the top 5 % of
// users submit 44 % of all jobs and the top 20 % submit 83.2 % — a classic
// heavy-tailed concentration that a bounded Pareto reproduces while keeping
// the maximum finite.
type BoundedPareto struct {
	Low, High float64
	Alpha     float64
}

// Sample draws a bounded-Pareto variate by inverse transform.
func (b BoundedPareto) Sample(r *RNG) float64 { return b.Quantile(r.Float64()) }

// Quantile returns the inverse CDF at p.
func (b BoundedPareto) Quantile(p float64) float64 {
	p = clamp01(p)
	la := math.Pow(b.Low, b.Alpha)
	ha := math.Pow(b.High, b.Alpha)
	// CDF(x) = (1 - L^a x^-a) / (1 - (L/H)^a)
	x := math.Pow(-(p*ha-p*la-ha)/(la*ha), -1/b.Alpha)
	if x < b.Low {
		x = b.Low
	}
	if x > b.High {
		x = b.High
	}
	return x
}

// ---------------------------------------------------------------------------
// Triangular
// ---------------------------------------------------------------------------

// Triangular is the triangular distribution on [Low, High] with the given
// Mode. It models bounded quantities with a soft peak, such as per-phase
// utilization levels.
type Triangular struct {
	Low, Mode, High float64
}

// Sample draws a triangular variate by inverse transform.
func (t Triangular) Sample(r *RNG) float64 { return t.Quantile(r.Float64()) }

// Quantile returns the inverse CDF at p.
func (t Triangular) Quantile(p float64) float64 {
	p = clamp01(p)
	span := t.High - t.Low
	if span <= 0 {
		return t.Low
	}
	fc := (t.Mode - t.Low) / span
	if p < fc {
		return t.Low + math.Sqrt(p*span*(t.Mode-t.Low))
	}
	return t.High - math.Sqrt((1-p)*span*(t.High-t.Mode))
}

// ---------------------------------------------------------------------------
// Beta (via Jöhnk / gamma-ratio)
// ---------------------------------------------------------------------------

// Beta is the Beta(A, B) distribution on [0, 1]. It models utilization
// fractions; its two shape parameters express both "piled near zero"
// (development/IDE jobs) and "spread with a body" (mature jobs).
type Beta struct {
	A, B float64
}

// Sample draws a Beta variate as the normalized ratio of two gamma variates.
func (b Beta) Sample(r *RNG) float64 {
	x := sampleGamma(r, b.A)
	y := sampleGamma(r, b.B)
	if x+y == 0 {
		return 0
	}
	return x / (x + y)
}

// sampleGamma draws from Gamma(shape, 1) using Marsaglia-Tsang for shape>=1
// and the boost trick for shape<1.
func sampleGamma(r *RNG, shape float64) float64 {
	if shape <= 0 {
		panic("dist: gamma shape must be positive")
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a)
		u := r.Float64Open()
		return sampleGamma(r, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64Open()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// ---------------------------------------------------------------------------
// Constant, Truncated, Mixture, Scaled
// ---------------------------------------------------------------------------

// Constant is a degenerate distribution that always returns Value.
type Constant struct {
	Value float64
}

// Sample returns the constant.
func (c Constant) Sample(*RNG) float64 { return c.Value }

// Quantile returns the constant for any p.
func (c Constant) Quantile(float64) float64 { return c.Value }

// Truncated clamps another sampler's output to [Low, High] by resampling up
// to a bounded number of times and clamping afterwards. Resampling keeps the
// interior shape; the final clamp guarantees termination.
type Truncated struct {
	Base      Sampler
	Low, High float64
}

// Sample draws from Base, rejecting out-of-range variates.
func (t Truncated) Sample(r *RNG) float64 {
	const maxTries = 64
	for i := 0; i < maxTries; i++ {
		v := t.Base.Sample(r)
		if v >= t.Low && v <= t.High {
			return v
		}
	}
	v := t.Base.Sample(r)
	if v < t.Low {
		return t.Low
	}
	if v > t.High {
		return t.High
	}
	return v
}

// Component is one branch of a Mixture.
type Component struct {
	Weight float64
	Dist   Sampler
}

// Mixture samples from one of its components with probability proportional
// to the component weight. Mixtures let the calibration express "30 % of
// jobs have near-zero SM utilization, the rest follow a body distribution"
// exactly as the paper describes Fig. 4a.
type Mixture struct {
	components []Component
	cum        []float64
	total      float64
}

// NewMixture builds a mixture from components. It panics if no component has
// positive weight, because a mixture that cannot sample is a configuration
// bug, not a runtime condition.
func NewMixture(components ...Component) *Mixture {
	m := &Mixture{components: components}
	for _, c := range components {
		if c.Weight < 0 {
			panic("dist: negative mixture weight")
		}
		m.total += c.Weight
		m.cum = append(m.cum, m.total)
	}
	if m.total <= 0 {
		panic("dist: mixture has no positive-weight component")
	}
	return m
}

// Sample picks a component by weight and samples it.
func (m *Mixture) Sample(r *RNG) float64 {
	u := r.Float64() * m.total
	i := sort.SearchFloat64s(m.cum, u)
	if i >= len(m.components) {
		i = len(m.components) - 1
	}
	return m.components[i].Dist.Sample(r)
}

// Scaled multiplies a base sampler's output by Factor and adds Offset.
type Scaled struct {
	Base   Sampler
	Factor float64
	Offset float64
}

// Sample returns Offset + Factor*Base.Sample(r).
func (s Scaled) Sample(r *RNG) float64 { return s.Offset + s.Factor*s.Base.Sample(r) }

// ---------------------------------------------------------------------------
// Categorical
// ---------------------------------------------------------------------------

// Categorical draws integer category indices with configured weights. It
// backs every "fraction of jobs are X" statement in the calibration (job
// categories, submission interfaces, GPU counts).
type Categorical struct {
	weights []float64
	cum     []float64
	total   float64
}

// NewCategorical builds a categorical distribution over len(weights)
// categories. It panics on negative weights or an all-zero weight vector.
func NewCategorical(weights ...float64) *Categorical {
	c := &Categorical{weights: append([]float64(nil), weights...)}
	for _, w := range weights {
		if w < 0 {
			panic("dist: negative categorical weight")
		}
		c.total += w
		c.cum = append(c.cum, c.total)
	}
	if c.total <= 0 {
		panic("dist: categorical has zero total weight")
	}
	return c
}

// Draw returns a category index in [0, len(weights)).
func (c *Categorical) Draw(r *RNG) int {
	u := r.Float64() * c.total
	i := sort.SearchFloat64s(c.cum, u)
	if i >= len(c.weights) {
		i = len(c.weights) - 1
	}
	return i
}

// Prob returns the normalized probability of category i.
func (c *Categorical) Prob(i int) float64 { return c.weights[i] / c.total }

// Len returns the number of categories.
func (c *Categorical) Len() int { return len(c.weights) }

// ---------------------------------------------------------------------------
// Normal quantile (Acklam's inverse-CDF approximation)
// ---------------------------------------------------------------------------

// NormQuantile returns the standard normal inverse CDF at p using Peter
// Acklam's rational approximation (relative error < 1.15e-9), sufficient for
// calibration and for Spearman p-values.
func NormQuantile(p float64) float64 {
	switch {
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow, pHigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		t := q * q
		x = (((((a[0]*t+a[1])*t+a[2])*t+a[3])*t+a[4])*t + a[5]) * q /
			(((((b[0]*t+b[1])*t+b[2])*t+b[3])*t+b[4])*t + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	return x
}

// NormCDF returns the standard normal CDF at x.
func NormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// clamp01p clamps to [0, 1) so that log(1-p) stays finite.
func clamp01p(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p >= 1 {
		return math.Nextafter(1, 0)
	}
	return p
}
