// Package dist provides the deterministic random-number substrate used by
// every stochastic component in the repository: the workload generator, the
// utilization-profile synthesizer, and the scheduler's tie-breaking.
//
// All randomness flows through RNG, a SplitMix64 generator. SplitMix64 is
// chosen over math/rand because (a) its state is a single uint64 that can be
// split into independent child streams, letting each simulated user, job, and
// GPU own a private stream that does not perturb its siblings when the
// workload mix changes, and (b) it is trivially reproducible across Go
// versions, which math/rand's global source is not.
//
// On top of RNG the package implements the parametric distributions the
// workload calibration needs: lognormal (run times), bounded Pareto (per-user
// job counts), exponential (inter-arrival gaps, phase durations), uniform
// (PCIe bandwidths), triangular, categorical, and truncated/mixture
// combinators.
package dist

import "math"

// RNG is a deterministic SplitMix64 pseudo-random generator. The zero value
// is a valid generator seeded with 0; use New to seed explicitly and Split to
// derive independent child streams.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed. Two generators with the same seed
// produce identical streams.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// golden gamma constant used by SplitMix64.
const splitMixGamma = 0x9E3779B97F4A7C15

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += splitMixGamma
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Split derives an independent child generator. The child's stream is
// statistically independent of the parent's subsequent output, so a component
// can hand sub-streams to its parts without coupling their consumption.
func (r *RNG) Split() *RNG {
	// Mix the next output through a second round so that parent and child
	// never share raw state.
	s := r.Uint64()
	s = (s ^ (s >> 33)) * 0xFF51AFD7ED558CCD
	s ^= s >> 33
	return &RNG{state: s}
}

// StreamSeed derives the seed of the index-th independent substream of a
// root seed without consuming any generator state. Unlike Split, which
// advances the parent and therefore depends on call order, StreamSeed is a
// pure function of (root, index): stream i is the same no matter how many
// other streams were derived before it or on which goroutine. The parallel
// replication engine leans on this to make results bit-identical regardless
// of worker count — replication i always draws from Stream(root, i).
//
// The derivation runs the SplitMix64 finalizer twice over root offset by
// (index+1) gammas, the same double-mix construction Split uses, so sibling
// streams are statistically independent of each other and of a generator
// seeded directly with root.
func StreamSeed(root, index uint64) uint64 {
	s := root + (index+1)*splitMixGamma
	s = (s ^ (s >> 30)) * 0xBF58476D1CE4E5B9
	s = (s ^ (s >> 27)) * 0x94D049BB133111EB
	s ^= s >> 31
	s = (s ^ (s >> 33)) * 0xFF51AFD7ED558CCD
	s ^= s >> 33
	return s
}

// Stream returns a generator over the index-th independent substream of
// root; see StreamSeed for the determinism contract.
func Stream(root, index uint64) *RNG {
	return New(StreamSeed(root, index))
}

// SplitN derives n independent child generators.
func (r *RNG) SplitN(n int) []*RNG {
	out := make([]*RNG, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	// Use the top 53 bits for a dyadic rational in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform value in (0, 1); it never returns 0, which
// makes it safe to pass to log or inverse-CDF transforms.
func (r *RNG) Float64Open() float64 {
	for {
		v := r.Float64()
		if v > 0 {
			return v
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("dist: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased without divisions in
	// the common case.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aLo * bLo
	lo = t & mask32
	carry := t >> 32
	t = aHi*bLo + carry
	mid1 := t & mask32
	hi = t >> 32
	t = aLo*bHi + mid1
	lo |= (t & mask32) << 32
	hi += aHi*bHi + t>>32
	return hi, lo
}

// NormFloat64 returns a standard normal variate (mean 0, stddev 1) using the
// Marsaglia polar method. Polar is preferred over Box-Muller here because it
// avoids trigonometric calls in the hot workload-generation path.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1).
func (r *RNG) ExpFloat64() float64 {
	return -math.Log(r.Float64Open())
}

// Shuffle pseudo-randomly permutes the order of n elements using the provided
// swap function (Fisher-Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}
