package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %d != %d", i, av, bv)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child continuing must not equal parent continuing.
	if child.Uint64() == parent.Uint64() {
		t.Fatal("split child mirrors parent stream")
	}
	// Splitting twice from identical parents is reproducible.
	p1, p2 := New(99), New(99)
	c1, c2 := p1.Split(), p2.Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("split is not deterministic")
		}
	}
}

func TestSplitN(t *testing.T) {
	kids := New(5).SplitN(8)
	if len(kids) != 8 {
		t.Fatalf("SplitN returned %d streams, want 8", len(kids))
	}
	seen := map[uint64]bool{}
	for _, k := range kids {
		v := k.Uint64()
		if seen[v] {
			t.Fatal("two child streams emitted the same first value")
		}
		seen[v] = true
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64OpenNeverZero(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		if r.Float64Open() == 0 {
			t.Fatal("Float64Open returned 0")
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(17)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %.4f too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(23)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn bucket %d count %d not near uniform 10000", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(31)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %.4f too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %.4f too far from 1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(37)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %.4f too far from 1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(41)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(43)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %.4f", frac)
	}
}

// Property: mul64 agrees with big-integer multiplication for the low 64 bits
// and the product is monotone in each operand's high bits.
func TestMul64Property(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Check lo against native wrap-around multiplication.
		if lo != a*b {
			return false
		}
		// Check hi using 32-bit decomposition reference.
		refHi := refMulHi(a, b)
		return hi == refHi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func refMulHi(a, b uint64) uint64 {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	carry := (aLo*bLo)>>32 + (aHi*bLo)&mask + (aLo*bHi)&mask
	return aHi*bHi + (aHi*bLo)>>32 + (aLo*bHi)>>32 + carry>>32
}

// Property: Shuffle preserves the multiset of elements.
func TestShuffleProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%64) + 1
		vals := make([]int, size)
		for i := range vals {
			vals[i] = i * 3
		}
		r := New(seed)
		r.Shuffle(size, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		seen := map[int]bool{}
		for _, v := range vals {
			if v%3 != 0 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(seen) == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamSeedOrderIndependence(t *testing.T) {
	// Stream i is a pure function of (root, index): deriving streams in any
	// order, interleaved or not, yields the same seeds.
	forward := make([]uint64, 16)
	for i := range forward {
		forward[i] = StreamSeed(123, uint64(i))
	}
	for i := len(forward) - 1; i >= 0; i-- {
		if got := StreamSeed(123, uint64(i)); got != forward[i] {
			t.Fatalf("stream %d seed changed with derivation order: %d != %d", i, got, forward[i])
		}
	}
}

func TestStreamSeedsDistinct(t *testing.T) {
	seen := map[uint64]uint64{}
	for root := uint64(0); root < 4; root++ {
		for i := uint64(0); i < 1024; i++ {
			s := StreamSeed(root, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: StreamSeed(%d,%d) == earlier stream %d", root, i, prev)
			}
			seen[s] = i
		}
	}
}

func TestStreamIndependentOfRootGenerator(t *testing.T) {
	// A stream must not mirror a generator seeded directly with the root,
	// and sibling streams must not mirror each other.
	root := uint64(77)
	direct := New(root)
	s0, s1 := Stream(root, 0), Stream(root, 1)
	for i := 0; i < 100; i++ {
		d, a, b := direct.Uint64(), s0.Uint64(), s1.Uint64()
		if a == d || b == d || a == b {
			t.Fatalf("correlated streams at step %d", i)
		}
	}
}
