package stats

import (
	"math"
	"testing"
)

func TestAggMomentsMatchBatch(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	var a Agg
	for _, x := range xs {
		a.Add(x)
	}
	if a.N() != len(xs) || a.Defined() != len(xs) {
		t.Fatalf("counts: N=%d Defined=%d want %d", a.N(), a.Defined(), len(xs))
	}
	if got, want := a.Mean(), Mean(xs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean %v want %v", got, want)
	}
	if got, want := a.Median(), Median(xs); got != want {
		t.Fatalf("median %v want %v", got, want)
	}
	if a.Min() != 1 || a.Max() != 9 {
		t.Fatalf("min/max %v/%v want 1/9", a.Min(), a.Max())
	}
}

func TestAggNaNExcludedFromMoments(t *testing.T) {
	var a Agg
	a.Add(2)
	a.Add(math.NaN())
	a.Add(4)
	if a.N() != 3 || a.Defined() != 2 {
		t.Fatalf("N=%d Defined=%d want 3/2", a.N(), a.Defined())
	}
	if a.Mean() != 3 {
		t.Fatalf("mean %v want 3", a.Mean())
	}
	if a.Median() != 3 {
		t.Fatalf("median %v want 3", a.Median())
	}
}

func TestAggMergeEqualsSequential(t *testing.T) {
	xs := []float64{0.5, 2.25, -1, 7, 3.5, math.NaN(), 4}
	var whole Agg
	for _, x := range xs {
		whole.Add(x)
	}
	var left, right Agg
	for _, x := range xs[:3] {
		left.Add(x)
	}
	for _, x := range xs[3:] {
		right.Add(x)
	}
	left.Merge(&right)
	if left.N() != whole.N() || left.Defined() != whole.Defined() {
		t.Fatalf("merged counts differ: %d/%d vs %d/%d", left.N(), left.Defined(), whole.N(), whole.Defined())
	}
	if math.Abs(left.Mean()-whole.Mean()) > 1e-12 {
		t.Fatalf("merged mean %v vs sequential %v", left.Mean(), whole.Mean())
	}
	if math.Abs(left.StdDev()-whole.StdDev()) > 1e-12 {
		t.Fatalf("merged stddev %v vs sequential %v", left.StdDev(), whole.StdDev())
	}
	for i, v := range whole.Values() {
		lv := left.Values()[i]
		if lv != v && !(math.IsNaN(lv) && math.IsNaN(v)) {
			t.Fatalf("value order changed at %d: %v vs %v", i, lv, v)
		}
	}
}

func TestAggStdErr(t *testing.T) {
	var a Agg
	for _, x := range []float64{1, 2, 3, 4} {
		a.Add(x)
	}
	// Sample variance of 1..4 is 5/3; stderr = sqrt(5/3/4).
	want := math.Sqrt(5.0 / 3.0 / 4.0)
	if got := a.StdErr(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("stderr %v want %v", got, want)
	}
	var single Agg
	single.Add(1)
	if !math.IsNaN(single.StdErr()) {
		t.Fatal("stderr of one value should be NaN")
	}
}

func TestAggMeanCIDeterministic(t *testing.T) {
	build := func() *Agg {
		var a Agg
		for _, x := range []float64{5, 8, 2, 9, 4, 7, 6, 3} {
			a.Add(x)
		}
		return &a
	}
	c1 := build().MeanCI(200, 0.95, 11)
	c2 := build().MeanCI(200, 0.95, 11)
	if c1 != c2 {
		t.Fatalf("bootstrap CI not deterministic: %+v vs %+v", c1, c2)
	}
	if !(c1.Lo <= c1.Point && c1.Point <= c1.Hi) {
		t.Fatalf("CI does not bracket point: %+v", c1)
	}
}

func TestAggEmpty(t *testing.T) {
	var a Agg
	if !math.IsNaN(a.Mean()) || !math.IsNaN(a.Median()) || !math.IsNaN(a.Min()) {
		t.Fatal("empty aggregate should report NaN statistics")
	}
	if a.N() != 0 {
		t.Fatalf("empty N = %d", a.N())
	}
}
