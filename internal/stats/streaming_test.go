package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamingMatchesBatch(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var s Streaming
	for _, x := range xs {
		s.Add(x)
	}
	if s.N() != len(xs) {
		t.Fatalf("N = %d", s.N())
	}
	if !almost(s.Mean(), Mean(xs), 1e-12) {
		t.Fatalf("mean = %v", s.Mean())
	}
	if !almost(s.Variance(), Variance(xs), 1e-12) {
		t.Fatalf("variance = %v", s.Variance())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if !almost(s.CoVPct(), 40, 1e-9) {
		t.Fatalf("CoV = %v", s.CoVPct())
	}
}

func TestStreamingEmpty(t *testing.T) {
	var s Streaming
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) ||
		!math.IsNaN(s.Variance()) || !math.IsNaN(s.CoVPct()) {
		t.Fatal("empty streaming accumulator should return NaN")
	}
}

func TestStreamingMerge(t *testing.T) {
	xs := []float64{1, 5, 2, 8, 3, 9, 4, 4, 7}
	var whole, left, right Streaming
	for i, x := range xs {
		whole.Add(x)
		if i < 4 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(&right)
	if left.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", left.N(), whole.N())
	}
	if !almost(left.Mean(), whole.Mean(), 1e-12) {
		t.Fatalf("merged mean = %v, want %v", left.Mean(), whole.Mean())
	}
	if !almost(left.Variance(), whole.Variance(), 1e-9) {
		t.Fatalf("merged variance = %v, want %v", left.Variance(), whole.Variance())
	}
	if left.Min() != whole.Min() || left.Max() != whole.Max() {
		t.Fatal("merged min/max mismatch")
	}
}

func TestStreamingMergeWithEmpty(t *testing.T) {
	var a, b Streaming
	a.Add(3)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 1 || a.Mean() != 3 {
		t.Fatalf("merge with empty changed state: %+v", a)
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 3 {
		t.Fatalf("merge into empty: %+v", b)
	}
}

// Property: streaming moments match batch moments for any input split.
func TestStreamingMergeProperty(t *testing.T) {
	f := func(raw []float64, splitRaw uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e8 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		split := int(splitRaw) % (len(xs) + 1)
		var a, b Streaming
		for _, x := range xs[:split] {
			a.Add(x)
		}
		for _, x := range xs[split:] {
			b.Add(x)
		}
		a.Merge(&b)
		tol := 1e-6 * (1 + math.Abs(Mean(xs)))
		vtol := 1e-6 * (1 + Variance(xs))
		return a.N() == len(xs) &&
			almost(a.Mean(), Mean(xs), tol) &&
			almost(a.Variance(), Variance(xs), vtol)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConcentrationTopShare(t *testing.T) {
	// 10 users: one submits 91, the rest submit 1 each.
	contrib := []float64{91, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	c := NewConcentration(contrib)
	if c.N() != 10 {
		t.Fatalf("N = %d", c.N())
	}
	if share := c.TopShare(0.1); !almost(share, 0.91, 1e-12) {
		t.Fatalf("top-10%% share = %v, want 0.91", share)
	}
	if share := c.TopShare(1.0); !almost(share, 1, 1e-12) {
		t.Fatalf("top-100%% share = %v, want 1", share)
	}
}

func TestConcentrationGini(t *testing.T) {
	equal := NewConcentration([]float64{5, 5, 5, 5})
	if g := equal.Gini(); !almost(g, 0, 1e-12) {
		t.Fatalf("equal Gini = %v, want 0", g)
	}
	skewed := NewConcentration([]float64{100, 0, 0, 0})
	if g := skewed.Gini(); g < 0.7 {
		t.Fatalf("skewed Gini = %v, want high", g)
	}
}

func TestLorenzCurve(t *testing.T) {
	c := NewConcentration([]float64{3, 1})
	pts := c.LorenzCurve()
	if len(pts) != 2 {
		t.Fatalf("curve has %d points", len(pts))
	}
	if !almost(pts[0].F, 0.75, 1e-12) || !almost(pts[1].F, 1, 1e-12) {
		t.Fatalf("curve = %v", pts)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	h.AddAll([]float64{5, 15, 15, 95, 100, -3, math.NaN()})
	// 100 clamps into last bin; -3 clamps into first; NaN dropped.
	if h.Total() != 6 {
		t.Fatalf("total = %d, want 6", h.Total())
	}
	if h.Counts[0] != 2 { // 5 and -3
		t.Fatalf("bin0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 2 {
		t.Fatalf("bin1 = %d, want 2", h.Counts[1])
	}
	if h.Counts[9] != 2 { // 95 and 100
		t.Fatalf("bin9 = %d, want 2", h.Counts[9])
	}
	fr := h.Fractions()
	var sum float64
	for _, f := range fr {
		sum += f
	}
	if !almost(sum, 1, 1e-12) {
		t.Fatalf("fractions sum to %v", sum)
	}
	if c := h.BinCenter(0); !almost(c, 5, 1e-12) {
		t.Fatalf("bin center = %v", c)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
