package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// mergedRef flattens and sorts the runs — the reference the view must match
// bit for bit.
func mergedRef(runs [][]float64) []float64 {
	var all []float64
	for _, r := range runs {
		all = append(all, r...)
	}
	sort.Float64s(all)
	return all
}

func bitsEq(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestRunsViewMatchesMerged is the selection-equivalence property: every
// RunsView query over random run decompositions (including heavy ties, empty
// runs, and >2 runs) returns the same bits as the single-slice helper over
// the merged data.
func TestRunsViewMatchesMerged(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		nRuns := rng.Intn(4) + 1
		runs := make([][]float64, nRuns)
		for i := range runs {
			m := rng.Intn(40)
			r := make([]float64, m)
			for j := range r {
				// Coarse grid to force cross-run ties.
				r[j] = float64(rng.Intn(12)) + float64(rng.Intn(4))/4
			}
			sort.Float64s(r)
			runs[i] = r
		}
		ref := mergedRef(runs)
		v := NewRunsView(runs...)

		if v.N() != len(ref) {
			t.Fatalf("trial %d: N = %d, want %d", trial, v.N(), len(ref))
		}
		if len(ref) == 0 {
			if !math.IsNaN(v.Min()) || !math.IsNaN(v.Max()) || !math.IsNaN(v.Quantile(0.5)) ||
				!math.IsNaN(v.FractionBelow(1)) || !math.IsNaN(v.FractionAbove(1)) || v.Points(8) != nil {
				t.Fatalf("trial %d: empty view should answer NaN/nil", trial)
			}
			continue
		}
		if !bitsEq(v.Min(), ref[0]) || !bitsEq(v.Max(), ref[len(ref)-1]) {
			t.Fatalf("trial %d: Min/Max = %v/%v, want %v/%v", trial, v.Min(), v.Max(), ref[0], ref[len(ref)-1])
		}
		for k := range ref {
			if got := v.AtRank(k); !bitsEq(got, ref[k]) {
				t.Fatalf("trial %d: AtRank(%d) = %v, want %v", trial, k, got, ref[k])
			}
		}
		for _, p := range []float64{-1, 0, 0.01, 0.25, 0.5, 0.75, 0.99, 1, 2} {
			if got, want := v.Quantile(p), QuantileSorted(ref, p); !bitsEq(got, want) {
				t.Fatalf("trial %d: Quantile(%v) = %v, want %v", trial, p, got, want)
			}
		}
		for _, th := range []float64{-1, 0, 2, 5.5, 11, 20} {
			if got, want := v.FractionBelow(th), FractionBelowSorted(ref, th); !bitsEq(got, want) {
				t.Fatalf("trial %d: FractionBelow(%v) = %v, want %v", trial, th, got, want)
			}
			if got, want := v.FractionAbove(th), FractionAboveSorted(ref, th); !bitsEq(got, want) {
				t.Fatalf("trial %d: FractionAbove(%v) = %v, want %v", trial, th, got, want)
			}
		}
		for _, mp := range []int{0, 1, 7, 64, len(ref), len(ref) * 2} {
			got := v.Points(mp)
			want := NewECDFSorted(ref).Points(mp)
			if len(got) != len(want) {
				t.Fatalf("trial %d: Points(%d) len %d, want %d", trial, mp, len(got), len(want))
			}
			for i := range got {
				if !bitsEq(got[i].X, want[i].X) || !bitsEq(got[i].F, want[i].F) {
					t.Fatalf("trial %d: Points(%d)[%d] = %+v, want %+v", trial, mp, i, got[i], want[i])
				}
			}
		}
	}
}

// TestRunsViewRankBounds pins the panic contract on out-of-range ranks.
func TestRunsViewRankBounds(t *testing.T) {
	v := NewRunsView([]float64{1, 2}, []float64{3})
	for _, k := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AtRank(%d) should panic", k)
				}
			}()
			v.AtRank(k)
		}()
	}
}
