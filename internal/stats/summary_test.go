package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol
}

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5, 1e-12) {
		t.Fatalf("mean = %v, want 5", m)
	}
	if v := Variance(xs); !almost(v, 4, 1e-12) {
		t.Fatalf("variance = %v, want 4", v)
	}
	if s := StdDev(xs); !almost(s, 2, 1e-12) {
		t.Fatalf("stddev = %v, want 2", s)
	}
}

func TestEmptyInputsReturnNaN(t *testing.T) {
	var empty []float64
	for name, v := range map[string]float64{
		"Mean":     Mean(empty),
		"Variance": Variance(empty),
		"CoV":      CoV(empty),
		"Min":      Min(empty),
		"Max":      Max(empty),
		"Quantile": Quantile(empty, 0.5),
	} {
		if !math.IsNaN(v) {
			t.Errorf("%s(empty) = %v, want NaN", name, v)
		}
	}
}

func TestCoV(t *testing.T) {
	// stddev 2, mean 5 -> 40%.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if c := CoV(xs); !almost(c, 40, 1e-9) {
		t.Fatalf("CoV = %v, want 40", c)
	}
	if c := CoV([]float64{7}); c != 0 {
		t.Fatalf("CoV of singleton = %v, want 0", c)
	}
	if c := CoV([]float64{-1, 1}); !math.IsNaN(c) {
		t.Fatalf("CoV with zero mean = %v, want NaN", c)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	// NumPy linear: q(0.5) of [1,2,3,4] = 2.5.
	if q := Quantile(xs, 0.5); !almost(q, 2.5, 1e-12) {
		t.Fatalf("median = %v, want 2.5", q)
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v, want 1", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Fatalf("q1 = %v, want 4", q)
	}
	if q := Quantile(xs, 0.25); !almost(q, 1.75, 1e-12) {
		t.Fatalf("q25 = %v, want 1.75", q)
	}
}

func TestQuantilesBatch(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	qs := Quantiles(xs, 0, 0.5, 1)
	if qs[0] != 1 || qs[1] != 3 || qs[2] != 5 {
		t.Fatalf("Quantiles = %v", qs)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s := Summarize(xs)
	if s.N != 8 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("bad N/min/max: %+v", s)
	}
	if !almost(s.Mean, 5, 1e-12) || !almost(s.StdDev, 2, 1e-12) || !almost(s.CoVPct, 40, 1e-9) {
		t.Fatalf("bad moments: %+v", s)
	}
	if !almost(s.P50, 4.5, 1e-12) {
		t.Fatalf("P50 = %v, want 4.5", s.P50)
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Mean) {
		t.Fatalf("empty summary: %+v", empty)
	}
}

func TestBoxStats(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	b := Box(xs)
	if b.N != 10 {
		t.Fatalf("N = %d", b.N)
	}
	if !almost(b.Median, 5.5, 1e-12) {
		t.Fatalf("median = %v", b.Median)
	}
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Fatalf("outliers = %v, want [100]", b.Outliers)
	}
	if b.WhiskerHigh != 9 {
		t.Fatalf("whisker high = %v, want 9", b.WhiskerHigh)
	}
	if b.WhiskerLow != 1 {
		t.Fatalf("whisker low = %v, want 1", b.WhiskerLow)
	}
}

func TestFractions(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if f := FractionAbove(xs, 30); !almost(f, 0.4, 1e-12) {
		t.Fatalf("FractionAbove = %v, want 0.4", f)
	}
	if f := FractionBelow(xs, 30); !almost(f, 0.4, 1e-12) {
		t.Fatalf("FractionBelow = %v, want 0.4", f)
	}
}

// Property: quantile is monotone in p and bounded by min/max.
func TestQuantileProperty(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := math.Abs(math.Mod(p1, 1))
		b := math.Abs(math.Mod(p2, 1))
		if a > b {
			a, b = b, a
		}
		qa, qb := Quantile(xs, a), Quantile(xs, b)
		return qa <= qb+1e-9 && qa >= Min(xs)-1e-9 && qb <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Summarize agrees with the direct estimators.
func TestSummarizeConsistencyProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		tol := 1e-6 * (1 + math.Abs(s.Mean))
		return almost(s.Mean, Mean(xs), tol) &&
			almost(s.StdDev, StdDev(xs), tol) &&
			s.Min == Min(xs) && s.Max == Max(xs) &&
			almost(s.P50, Median(xs), tol)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
