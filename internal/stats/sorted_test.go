package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestQuantileAgainstNumPy cross-checks Quantile, QuantileSorted and
// ECDF.Quantile against values computed with NumPy's default "linear"
// interpolation (np.quantile(v, p, method="linear")), including tie-heavy
// vectors and the n=1 / n=2 edges, so the sorted fast paths cannot drift
// from the paper's SciPy conventions.
func TestQuantileAgainstNumPy(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		p    float64
		want float64
	}{
		{"n1-p0", []float64{42}, 0, 42},
		{"n1-p50", []float64{42}, 0.5, 42},
		{"n1-p100", []float64{42}, 1, 42},
		{"n2-p25", []float64{1, 2}, 0.25, 1.25},
		{"n2-p50", []float64{1, 2}, 0.5, 1.5},
		{"n2-p75", []float64{1, 2}, 0.75, 1.75},
		{"n2-p90", []float64{2, 1}, 0.9, 1.9},
		{"n3-p10", []float64{3, 1, 2}, 0.1, 1.2},
		{"n3-p25", []float64{3, 1, 2}, 0.25, 1.5},
		{"n3-p50", []float64{3, 1, 2}, 0.5, 2},
		{"n3-p75", []float64{3, 1, 2}, 0.75, 2.5},
		{"ties-p25", []float64{1, 2, 2, 2, 3}, 0.25, 2},
		{"ties-p50", []float64{1, 2, 2, 2, 3}, 0.5, 2},
		{"ties-p75", []float64{1, 2, 2, 2, 3}, 0.75, 2},
		{"ties-p90", []float64{1, 2, 2, 2, 3}, 0.9, 2.6},
		{"bimodal-p33", []float64{10, 0, 10, 0}, 1.0 / 3, 0},
		{"bimodal-p50", []float64{10, 0, 10, 0}, 0.5, 5},
		{"bimodal-p90", []float64{10, 0, 10, 0}, 0.9, 10},
		{"ref-p25", []float64{2, 4, 4, 4, 5, 5, 7, 9}, 0.25, 4},
		{"ref-p50", []float64{2, 4, 4, 4, 5, 5, 7, 9}, 0.5, 4.5},
		{"ref-p75", []float64{2, 4, 4, 4, 5, 5, 7, 9}, 0.75, 5.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Quantile(tc.xs, tc.p); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Quantile(%v, %v) = %v, numpy linear = %v", tc.xs, tc.p, got, tc.want)
			}
			s := append([]float64(nil), tc.xs...)
			sort.Float64s(s)
			if got := QuantileSorted(s, tc.p); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("QuantileSorted(%v, %v) = %v, numpy linear = %v", s, tc.p, got, tc.want)
			}
			if got := NewECDF(tc.xs).Quantile(tc.p); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("ECDF.Quantile(%v, %v) = %v, numpy linear = %v", tc.xs, tc.p, got, tc.want)
			}
		})
	}
	if !math.IsNaN(QuantileSorted(nil, 0.5)) {
		t.Error("QuantileSorted(nil) should be NaN")
	}
}

// TestMeanVarianceWelford pins the fused single-pass mean/variance on the
// reference vector the textbook two-pass values are known for, and checks
// the CoV edge-case contract (empty → NaN, singleton → 0 even at zero mean,
// zero mean → NaN) survived the fusion.
func TestMeanVarianceWelford(t *testing.T) {
	ref := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, v := MeanVariance(ref)
	if math.Abs(m-5) > 1e-12 || math.Abs(v-4) > 1e-12 {
		t.Errorf("MeanVariance(ref) = (%v, %v), want (5, 4)", m, v)
	}
	if got := StdDev(ref); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev(ref) = %v, want 2", got)
	}
	if got := CoV(ref); math.Abs(got-40) > 1e-9 {
		t.Errorf("CoV(ref) = %v, want 40", got)
	}

	if m, v := MeanVariance(nil); !math.IsNaN(m) || !math.IsNaN(v) {
		t.Errorf("MeanVariance(nil) = (%v, %v), want NaNs", m, v)
	}
	if m, v := MeanVariance([]float64{3}); m != 3 || v != 0 {
		t.Errorf("MeanVariance({3}) = (%v, %v), want (3, 0)", m, v)
	}
	if got := CoV([]float64{0}); got != 0 {
		t.Errorf("CoV({0}) = %v, want 0 (singleton precedes zero-mean check)", got)
	}
	if got := CoV([]float64{-1, 1}); !math.IsNaN(got) {
		t.Errorf("CoV({-1,1}) = %v, want NaN (zero mean)", got)
	}

	// Fused pass must agree with the naive two-pass moments to float
	// precision on arbitrary data.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		xs := make([]float64, 1+rng.Intn(200))
		for i := range xs {
			xs[i] = rng.NormFloat64()*50 + 100
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		nm := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			d := x - nm
			ss += d * d
		}
		nv := ss / float64(len(xs))
		m, v := MeanVariance(xs)
		if math.Abs(m-nm) > 1e-9*math.Abs(nm) || math.Abs(v-nv) > 1e-9*math.Max(nv, 1) {
			t.Fatalf("trial %d: welford (%v, %v) vs two-pass (%v, %v)", trial, m, v, nm, nv)
		}
	}
}

// reverseSortedConcentration reproduces the pre-PR3 reverse-sorted
// formulation as an executable spec for the byte-identity claim.
type reverseSortedConcentration struct {
	sortedDesc []float64
	total      float64
}

func newReverseSortedConcentration(contributions []float64) *reverseSortedConcentration {
	c := &reverseSortedConcentration{}
	for _, v := range contributions {
		if v >= 0 && !math.IsNaN(v) {
			c.sortedDesc = append(c.sortedDesc, v)
			c.total += v
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(c.sortedDesc)))
	return c
}

func (c *reverseSortedConcentration) topShare(topFrac float64) float64 {
	if len(c.sortedDesc) == 0 || c.total == 0 {
		return math.NaN()
	}
	k := int(math.Ceil(topFrac * float64(len(c.sortedDesc))))
	if k < 1 {
		k = 1
	}
	if k > len(c.sortedDesc) {
		k = len(c.sortedDesc)
	}
	var s float64
	for _, v := range c.sortedDesc[:k] {
		s += v
	}
	return s / c.total
}

func (c *reverseSortedConcentration) gini() float64 {
	n := len(c.sortedDesc)
	if n == 0 || c.total == 0 {
		return math.NaN()
	}
	var weighted float64
	for i, v := range c.sortedDesc {
		weighted += float64(n-i) * v
	}
	return (2*weighted/c.total - float64(n+1)) / float64(n)
}

func (c *reverseSortedConcentration) lorenz() []Point {
	n := len(c.sortedDesc)
	if n == 0 || c.total == 0 {
		return nil
	}
	pts := make([]Point, n)
	var cum float64
	for i, v := range c.sortedDesc {
		cum += v
		pts[i] = Point{X: float64(i+1) / float64(n), F: cum / c.total}
	}
	return pts
}

// TestConcentrationByteIdentical checks the ascending-sort Concentration
// against the reverse-sorted spec with exact (==) float comparison: same
// accumulation order, same divisions, bit-for-bit the same outputs.
func TestConcentrationByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	fracs := []float64{0.01, 0.05, 0.2, 0.5, 1}
	for trial := 0; trial < 100; trial++ {
		xs := make([]float64, rng.Intn(60))
		for i := range xs {
			switch rng.Intn(5) {
			case 0:
				xs[i] = float64(rng.Intn(4)) // force ties, zeros
			case 1:
				xs[i] = -rng.Float64() // dropped as invalid
			default:
				xs[i] = rng.ExpFloat64() * 1000
			}
		}
		got, want := NewConcentration(xs), newReverseSortedConcentration(xs)
		if got.N() != len(want.sortedDesc) {
			t.Fatalf("trial %d: N %d vs %d", trial, got.N(), len(want.sortedDesc))
		}
		for _, f := range fracs {
			g, w := got.TopShare(f), want.topShare(f)
			if g != w && !(math.IsNaN(g) && math.IsNaN(w)) {
				t.Fatalf("trial %d: TopShare(%v) %v != %v", trial, f, g, w)
			}
		}
		g, w := got.Gini(), want.gini()
		if g != w && !(math.IsNaN(g) && math.IsNaN(w)) {
			t.Fatalf("trial %d: Gini %v != %v", trial, g, w)
		}
		gl, wl := got.LorenzCurve(), want.lorenz()
		if len(gl) != len(wl) {
			t.Fatalf("trial %d: Lorenz len %d vs %d", trial, len(gl), len(wl))
		}
		for i := range gl {
			if gl[i] != wl[i] {
				t.Fatalf("trial %d: Lorenz[%d] %v != %v", trial, i, gl[i], wl[i])
			}
		}
	}
}

// TestSortedFastPathEquivalence checks every sorted-input fast path against
// its copying counterpart on random data: identical values (exact for the
// counting paths, which share the same division).
func TestSortedFastPathEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		xs := make([]float64, 1+rng.Intn(150))
		for i := range xs {
			xs[i] = math.Round(rng.NormFloat64()*25+50) / 2 // plenty of ties
		}
		s := append([]float64(nil), xs...)
		sort.Float64s(s)

		for _, p := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
			if got, want := QuantileSorted(s, p), Quantile(xs, p); got != want {
				t.Fatalf("trial %d: QuantileSorted(%v) %v != Quantile %v", trial, p, got, want)
			}
		}
		for _, th := range []float64{0, 25, 50, 50.5, 100} {
			if got, want := FractionAboveSorted(s, th), FractionAbove(xs, th); got != want {
				t.Fatalf("trial %d: FractionAboveSorted(%v) %v != %v", trial, th, got, want)
			}
			if got, want := FractionBelowSorted(s, th), FractionBelow(xs, th); got != want {
				t.Fatalf("trial %d: FractionBelowSorted(%v) %v != %v", trial, th, got, want)
			}
		}

		gb, wb := BoxStatsSorted(s), Box(xs)
		if gb.N != wb.N || gb.Median != wb.Median || gb.Q1 != wb.Q1 || gb.Q3 != wb.Q3 ||
			gb.WhiskerLow != wb.WhiskerLow || gb.WhiskerHigh != wb.WhiskerHigh ||
			len(gb.Outliers) != len(wb.Outliers) {
			t.Fatalf("trial %d: BoxStatsSorted %+v != Box %+v", trial, gb, wb)
		}

		ge, we := NewECDFSorted(s), NewECDF(xs)
		if ge.N() != we.N() || ge.Min() != we.Min() || ge.Max() != we.Max() {
			t.Fatalf("trial %d: ECDF bounds differ", trial)
		}
		for _, p := range []float64{0.05, 0.5, 0.95} {
			if ge.Quantile(p) != we.Quantile(p) {
				t.Fatalf("trial %d: ECDF quantile(%v) differs", trial, p)
			}
		}
	}

	empty := BoxStatsSorted(nil)
	if empty.N != 0 || !math.IsNaN(empty.Median) {
		t.Errorf("BoxStatsSorted(nil) = %+v, want N=0 with NaN stats", empty)
	}
	if !math.IsNaN(FractionAboveSorted(nil, 1)) || !math.IsNaN(FractionBelowSorted(nil, 1)) {
		t.Error("Fraction*Sorted(nil) should be NaN")
	}
}
