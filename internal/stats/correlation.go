package stats

import (
	"math"
	"sort"
)

// SpearmanResult holds a Spearman rank correlation and the two-sided p-value
// of the null hypothesis ρ = 0, as used by the paper's Fig. 12 user-trend
// analysis ("all correlations are statistically significant: p-value <0.05").
type SpearmanResult struct {
	Rho    float64 // rank correlation coefficient in [-1, 1]
	PValue float64 // two-sided p-value under the t approximation
	N      int     // number of paired observations
}

// Spearman computes the Spearman rank correlation between xs and ys, handling
// ties by fractional (average) ranks, then applying Pearson correlation to
// the ranks — the same procedure as scipy.stats.spearmanr. It returns NaNs
// when fewer than 3 pairs are available or either side is constant.
func Spearman(xs, ys []float64) SpearmanResult {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	res := SpearmanResult{N: n, Rho: math.NaN(), PValue: math.NaN()}
	if n < 3 {
		return res
	}
	rx := FractionalRanks(xs[:n])
	ry := FractionalRanks(ys[:n])
	rho := pearson(rx, ry)
	if math.IsNaN(rho) {
		return res
	}
	res.Rho = rho
	// t-statistic approximation: t = rho * sqrt((n-2)/(1-rho^2)), df = n-2.
	if math.Abs(rho) >= 1 {
		res.PValue = 0
		return res
	}
	t := rho * math.Sqrt(float64(n-2)/(1-rho*rho))
	res.PValue = 2 * studentTSF(math.Abs(t), float64(n-2))
	return res
}

// FractionalRanks assigns average ranks (1-based) to xs, averaging ranks
// within tie groups.
func FractionalRanks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average of ranks i+1 .. j+1.
		avg := float64(i+j+2) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// pearson returns the Pearson correlation of xs and ys, or NaN if either
// side has zero variance.
func pearson(xs, ys []float64) float64 {
	n := len(xs)
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Pearson returns the Pearson linear correlation of xs and ys (exported for
// the ablation benches that contrast rank vs. linear correlation).
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	if n < 2 {
		return math.NaN()
	}
	return pearson(xs[:n], ys[:n])
}

// studentTSF returns the survival function P(T > t) of Student's t with df
// degrees of freedom, via the regularized incomplete beta function.
func studentTSF(t, df float64) float64 {
	if t <= 0 {
		return 0.5
	}
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes betacf).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(math.Log(x)*a + math.Log(1-x)*b + lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

// betacf evaluates the continued fraction for the incomplete beta function.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 200
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		fm := float64(m)
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
