package stats

import (
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function over a fixed sample,
// the workhorse presentation device of the paper (Figs. 3, 4, 6, 7, 9, 10,
// 11, 14 are all empirical CDFs). It supports evaluation at arbitrary points,
// inverse evaluation (quantiles), and export as plotted (x, F(x)) series.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF over xs. The input is copied and sorted; NaNs are
// dropped because they carry no ordering information.
func NewECDF(xs []float64) *ECDF {
	s := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			s = append(s, x)
		}
	}
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// NewECDFSorted adopts data that is already sorted ascending and NaN-free
// without copying, the zero-allocation path for shared sorted column views.
// The caller must not mutate the slice afterwards; the ECDF never does.
func NewECDFSorted(sorted []float64) *ECDF {
	return &ECDF{sorted: sorted}
}

// N returns the number of observations.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns F(x) = P(X <= x), the fraction of observations at or below x.
// It returns NaN for an empty ECDF.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	// Index of the first element strictly greater than x.
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the p-quantile with linear interpolation, consistent with
// stats.Quantile.
func (e *ECDF) Quantile(p float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	return quantileSorted(e.sorted, p)
}

// Median returns the 0.5 quantile.
func (e *ECDF) Median() float64 { return e.Quantile(0.5) }

// Min returns the smallest observation, or NaN when empty.
func (e *ECDF) Min() float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	return e.sorted[0]
}

// Max returns the largest observation, or NaN when empty.
func (e *ECDF) Max() float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	return e.sorted[len(e.sorted)-1]
}

// Point is one (X, F) vertex of a plotted CDF curve.
type Point struct {
	X float64 // observation value
	F float64 // cumulative probability P(X <= x)
}

// Points returns up to maxPoints evenly spaced (by rank) vertices of the
// step function, suitable for rendering. maxPoints <= 0 returns every
// distinct observation.
func (e *ECDF) Points(maxPoints int) []Point {
	n := len(e.sorted)
	if n == 0 {
		return nil
	}
	stride := 1
	if maxPoints > 0 && n > maxPoints {
		stride = (n + maxPoints - 1) / maxPoints
	}
	var pts []Point
	for i := 0; i < n; i += stride {
		pts = append(pts, Point{X: e.sorted[i], F: float64(i+1) / float64(n)})
	}
	if last := e.sorted[n-1]; len(pts) == 0 || pts[len(pts)-1].X != last {
		pts = append(pts, Point{X: last, F: 1})
	}
	return pts
}

// KolmogorovDistance returns the Kolmogorov–Smirnov statistic between this
// ECDF and other: sup_x |F1(x) - F2(x)|. The calibration tests use it to
// check that generated marginals track their target distributions, and the
// Fig. 4b analysis uses it to quantify "approximately uniform".
func (e *ECDF) KolmogorovDistance(other *ECDF) float64 {
	if e.N() == 0 || other.N() == 0 {
		return math.NaN()
	}
	var d float64
	for _, x := range e.sorted {
		if diff := math.Abs(e.At(x) - other.At(x)); diff > d {
			d = diff
		}
	}
	for _, x := range other.sorted {
		if diff := math.Abs(e.At(x) - other.At(x)); diff > d {
			d = diff
		}
	}
	return d
}

// UniformityDistance returns the KS statistic between this ECDF and the
// continuous uniform distribution on [lo, hi]. A value near zero certifies
// the "linearly increasing empirical CDF" the paper observes for PCIe
// bandwidths in Fig. 4b.
func (e *ECDF) UniformityDistance(lo, hi float64) float64 {
	if e.N() == 0 || hi <= lo {
		return math.NaN()
	}
	var d float64
	for i, x := range e.sorted {
		u := (x - lo) / (hi - lo)
		if u < 0 {
			u = 0
		}
		if u > 1 {
			u = 1
		}
		// Compare against both step edges, per the one-sample KS definition.
		fHi := float64(i+1) / float64(len(e.sorted))
		fLo := float64(i) / float64(len(e.sorted))
		if diff := math.Abs(fHi - u); diff > d {
			d = diff
		}
		if diff := math.Abs(fLo - u); diff > d {
			d = diff
		}
	}
	return d
}
