package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{3, 1, 2, math.NaN(), 4})
	if e.N() != 4 {
		t.Fatalf("N = %d, want 4 (NaN dropped)", e.N())
	}
	if f := e.At(0); f != 0 {
		t.Fatalf("At(0) = %v, want 0", f)
	}
	if f := e.At(2); f != 0.5 {
		t.Fatalf("At(2) = %v, want 0.5", f)
	}
	if f := e.At(4); f != 1 {
		t.Fatalf("At(4) = %v, want 1", f)
	}
	if f := e.At(2.5); f != 0.5 {
		t.Fatalf("At(2.5) = %v, want 0.5", f)
	}
	if e.Min() != 1 || e.Max() != 4 {
		t.Fatalf("min/max = %v/%v", e.Min(), e.Max())
	}
	if m := e.Median(); !almost(m, 2.5, 1e-12) {
		t.Fatalf("median = %v, want 2.5", m)
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if !math.IsNaN(e.At(1)) || !math.IsNaN(e.Quantile(0.5)) {
		t.Fatal("empty ECDF should return NaN")
	}
	if pts := e.Points(10); pts != nil {
		t.Fatalf("empty ECDF points = %v", pts)
	}
}

func TestECDFPoints(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	e := NewECDF(xs)
	pts := e.Points(50)
	if len(pts) > 55 {
		t.Fatalf("Points(50) returned %d points", len(pts))
	}
	// Monotone in both coordinates and ends at F=1.
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].F < pts[i-1].F {
			t.Fatalf("points not monotone at %d: %+v %+v", i, pts[i-1], pts[i])
		}
	}
	if last := pts[len(pts)-1]; last.F != 1 {
		t.Fatalf("last point F = %v, want 1", last.F)
	}
}

func TestUniformityDistance(t *testing.T) {
	// Perfectly spread points have small KS distance to uniform.
	n := 1000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = (float64(i) + 0.5) / float64(n)
	}
	e := NewECDF(xs)
	if d := e.UniformityDistance(0, 1); d > 0.01 {
		t.Fatalf("uniform grid KS distance = %v, want ~0", d)
	}
	// All-mass-at-a-point is maximally non-uniform.
	point := NewECDF([]float64{0.5, 0.5, 0.5, 0.5})
	if d := point.UniformityDistance(0, 1); d < 0.45 {
		t.Fatalf("degenerate KS distance = %v, want ~0.5", d)
	}
}

func TestKolmogorovDistance(t *testing.T) {
	a := NewECDF([]float64{1, 2, 3, 4, 5})
	b := NewECDF([]float64{1, 2, 3, 4, 5})
	if d := a.KolmogorovDistance(b); d != 0 {
		t.Fatalf("identical ECDFs KS = %v", d)
	}
	c := NewECDF([]float64{11, 12, 13})
	if d := a.KolmogorovDistance(c); d != 1 {
		t.Fatalf("disjoint ECDFs KS = %v, want 1", d)
	}
}

// Property: At is a valid CDF — monotone, in [0,1], 0 below min, 1 at max.
func TestECDFProperty(t *testing.T) {
	f := func(raw []float64, probe float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		e := NewECDF(xs)
		fv := e.At(probe)
		if math.IsNaN(probe) {
			return true
		}
		if fv < 0 || fv > 1 {
			return false
		}
		if probe < e.Min() && fv != 0 {
			return false
		}
		if probe >= e.Max() && fv != 1 {
			return false
		}
		return e.At(probe) <= e.At(probe+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
