package stats

import (
	"math"
	"sort"
)

// RunsView answers order-statistic queries over the multiset union of a
// small number of ascending, NaN-free runs WITHOUT materializing the merged
// slice. This is the live-query engine of the segmented store: a snapshot
// column holds two cached runs (the merged sealed prefix and the sorted
// tail), and a dashboard query needs a handful of quantiles and threshold
// fractions from their union. Merging first costs O(n) time and memory per
// query; selecting across the runs costs O(log n) per statistic.
//
// Every method returns a value bit-identical to calling the corresponding
// single-slice helper (QuantileSorted, FractionBelowSorted, ECDF.Points, …)
// on the fully merged slice: a selection at rank k yields the k-th smallest
// VALUE of the union, which is tie-insensitive, and the interpolation
// arithmetic is copied verbatim from the single-slice implementations.
type RunsView struct {
	a, b []float64 // ascending NaN-free runs; b may be empty
	n    int
}

// NewRunsView builds a view over ascending NaN-free runs. Empty runs are
// dropped; more than two non-empty runs are folded down by merging, so the
// selection fast path always sees at most two.
func NewRunsView(runs ...[]float64) *RunsView {
	live := make([][]float64, 0, len(runs))
	for _, r := range runs {
		if len(r) > 0 {
			live = append(live, r)
		}
	}
	v := &RunsView{}
	switch len(live) {
	case 0:
	case 1:
		v.a = live[0]
	case 2:
		v.a, v.b = live[0], live[1]
	default:
		// Rare fallback: fold everything past the first run into one merged
		// second run. Callers in the hot path always pass one or two.
		n := 0
		for _, r := range live[1:] {
			n += len(r)
		}
		m := make([]float64, 0, n)
		for _, r := range live[1:] {
			m = append(m, r...)
		}
		sort.Float64s(m)
		v.a, v.b = live[0], m
	}
	v.n = len(v.a) + len(v.b)
	return v
}

// N returns the number of observations in the union.
func (v *RunsView) N() int { return v.n }

// Min returns the smallest observation, or NaN when empty.
func (v *RunsView) Min() float64 {
	switch {
	case v.n == 0:
		return math.NaN()
	case len(v.b) == 0:
		return v.a[0]
	case len(v.a) == 0:
		return v.b[0]
	}
	return math.Min(v.a[0], v.b[0])
}

// Max returns the largest observation, or NaN when empty.
func (v *RunsView) Max() float64 {
	switch {
	case v.n == 0:
		return math.NaN()
	case len(v.b) == 0:
		return v.a[len(v.a)-1]
	case len(v.a) == 0:
		return v.b[len(v.b)-1]
	}
	return math.Max(v.a[len(v.a)-1], v.b[len(v.b)-1])
}

// AtRank returns the k-th smallest observation (0-based) of the union — the
// value merged[k] would hold. It panics if k is out of range, matching a
// slice index.
func (v *RunsView) AtRank(k int) float64 {
	if k < 0 || k >= v.n {
		panic("stats: RunsView rank out of range")
	}
	if len(v.b) == 0 {
		return v.a[k]
	}
	if len(v.a) == 0 {
		return v.b[k]
	}
	return kthOfTwo(v.a, v.b, k)
}

// kthOfTwo selects the k-th smallest (0-based) of the union of two ascending
// runs by binary-searching the partition point: i elements from a and
// j = k+1-i from b form the k+1 smallest iff neither prefix's last element
// exceeds the other suffix's first. Ties make several partitions valid, but
// all yield the same value. O(log(len(a))).
func kthOfTwo(a, b []float64, k int) float64 {
	lo, hi := k+1-len(b), k+1
	if lo < 0 {
		lo = 0
	}
	if hi > len(a) {
		hi = len(a)
	}
	for {
		i := int(uint(lo+hi) >> 1)
		j := k + 1 - i
		switch {
		case i > 0 && j < len(b) && a[i-1] > b[j]:
			hi = i - 1 // a contributes too many
		case j > 0 && i < len(a) && b[j-1] > a[i]:
			lo = i + 1 // a contributes too few
		case i == 0:
			return b[j-1]
		case j == 0:
			return a[i-1]
		default:
			return math.Max(a[i-1], b[j-1])
		}
	}
}

// Quantile returns the linear-interpolated p-quantile, bit-identical to
// QuantileSorted over the merged slice (the arithmetic mirrors
// quantileSorted exactly).
func (v *RunsView) Quantile(p float64) float64 {
	if v.n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return v.AtRank(0)
	}
	if p >= 1 {
		return v.AtRank(v.n - 1)
	}
	pos := p * float64(v.n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return v.AtRank(lo)
	}
	frac := pos - float64(lo)
	return v.AtRank(lo)*(1-frac) + v.AtRank(hi)*frac
}

// FractionBelow returns the fraction of observations strictly below
// threshold, bit-identical to FractionBelowSorted over the merged slice.
func (v *RunsView) FractionBelow(threshold float64) float64 {
	if v.n == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(v.a, threshold) + sort.SearchFloat64s(v.b, threshold)
	return float64(i) / float64(v.n)
}

// FractionAbove returns the fraction of observations strictly above
// threshold, bit-identical to FractionAboveSorted over the merged slice.
func (v *RunsView) FractionAbove(threshold float64) float64 {
	if v.n == 0 {
		return math.NaN()
	}
	i := sort.Search(len(v.a), func(i int) bool { return v.a[i] > threshold }) +
		sort.Search(len(v.b), func(i int) bool { return v.b[i] > threshold })
	return float64(v.n-i) / float64(v.n)
}

// Points returns up to maxPoints evenly spaced (by rank) CDF vertices,
// bit-identical to ECDF.Points over the merged slice.
func (v *RunsView) Points(maxPoints int) []Point {
	if v.n == 0 {
		return nil
	}
	stride := 1
	if maxPoints > 0 && v.n > maxPoints {
		stride = (v.n + maxPoints - 1) / maxPoints
	}
	var pts []Point
	for i := 0; i < v.n; i += stride {
		pts = append(pts, Point{X: v.AtRank(i), F: float64(i+1) / float64(v.n)})
	}
	if last := v.AtRank(v.n - 1); len(pts) == 0 || pts[len(pts)-1].X != last {
		pts = append(pts, Point{X: last, F: 1})
	}
	return pts
}
