package stats

import "math"

// Streaming accumulates count, mean, variance (Welford's algorithm), min and
// max in O(1) memory. The monitoring pipeline uses it to compute per-job
// metric summaries without holding the 100 ms sample stream resident — the
// same engineering constraint the paper cites for only recording min/mean/max
// per job in production.
type Streaming struct {
	n          int
	mean, m2   float64
	min, max   float64
	sum        float64
	hasSamples bool
}

// Add folds one observation into the accumulator.
func (s *Streaming) Add(x float64) {
	if !s.hasSamples {
		s.min, s.max = x, x
		s.hasSamples = true
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	s.sum += x
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations folded in.
func (s *Streaming) N() int { return s.n }

// Mean returns the running mean, or NaN before any observation.
func (s *Streaming) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.mean
}

// Sum returns the running sum.
func (s *Streaming) Sum() float64 { return s.sum }

// Variance returns the running population variance, or NaN before any
// observation.
func (s *Streaming) Variance() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.m2 / float64(s.n)
}

// StdDev returns the running population standard deviation.
func (s *Streaming) StdDev() float64 { return math.Sqrt(s.Variance()) }

// CoVPct returns the running coefficient of variation in percent, NaN when
// undefined (no data or zero mean).
func (s *Streaming) CoVPct() float64 {
	if s.n == 0 || s.mean == 0 {
		return math.NaN()
	}
	if s.n == 1 {
		return 0
	}
	return s.StdDev() / math.Abs(s.mean) * 100
}

// Min returns the smallest observation, or NaN before any observation.
func (s *Streaming) Min() float64 {
	if !s.hasSamples {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest observation, or NaN before any observation.
func (s *Streaming) Max() float64 {
	if !s.hasSamples {
		return math.NaN()
	}
	return s.max
}

// Merge folds another accumulator into this one (parallel variance merge by
// Chan et al.), letting per-node accumulators combine in the epilog.
func (s *Streaming) Merge(o *Streaming) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	delta := o.mean - s.mean
	total := float64(s.n + o.n)
	s.m2 += o.m2 + delta*delta*float64(s.n)*float64(o.n)/total
	s.mean += delta * float64(o.n) / total
	s.sum += o.sum
	s.n += o.n
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// StreamingState is the exact wire form of a Streaming accumulator: every
// internal field, bit for bit. A snapshot/restore cycle through it yields an
// accumulator whose future Adds and Merges produce byte-identical results —
// the property the durable store's recovery contract rests on. All fields
// are finite for any accumulator built from finite observations, so the
// state is JSON-safe.
type StreamingState struct {
	N          int     `json:"n"`
	Mean       float64 `json:"mean"`
	M2         float64 `json:"m2"`
	Min        float64 `json:"min"`
	Max        float64 `json:"max"`
	Sum        float64 `json:"sum"`
	HasSamples bool    `json:"has_samples,omitempty"`
}

// State exports the accumulator's internal state.
func (s *Streaming) State() StreamingState {
	return StreamingState{
		N: s.n, Mean: s.mean, M2: s.m2,
		Min: s.min, Max: s.max, Sum: s.sum,
		HasSamples: s.hasSamples,
	}
}

// FromState reconstructs the accumulator an earlier State call exported.
func FromState(st StreamingState) Streaming {
	return Streaming{
		n: st.N, mean: st.Mean, m2: st.M2,
		min: st.Min, max: st.Max, sum: st.Sum,
		hasSamples: st.HasSamples,
	}
}
