package stats

import (
	"math"
	"testing"

	"repro/internal/dist"
)

func TestFractionalRanks(t *testing.T) {
	ranks := FractionalRanks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if !almost(ranks[i], want[i], 1e-12) {
			t.Fatalf("ranks = %v, want %v", ranks, want)
		}
	}
}

func TestSpearmanPerfectMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	ys := []float64{1, 4, 9, 16, 25, 36, 49, 64} // monotone, nonlinear
	r := Spearman(xs, ys)
	if !almost(r.Rho, 1, 1e-12) {
		t.Fatalf("rho = %v, want 1", r.Rho)
	}
	if r.PValue > 0.001 {
		t.Fatalf("p-value = %v for perfect correlation", r.PValue)
	}
	inv := Spearman(xs, []float64{8, 7, 6, 5, 4, 3, 2, 1})
	if !almost(inv.Rho, -1, 1e-12) {
		t.Fatalf("inverse rho = %v, want -1", inv.Rho)
	}
}

func TestSpearmanKnownValue(t *testing.T) {
	// Classic example with one discordant pair.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 2, 3, 5, 4}
	r := Spearman(xs, ys)
	if !almost(r.Rho, 0.9, 1e-9) {
		t.Fatalf("rho = %v, want 0.9", r.Rho)
	}
}

func TestSpearmanIndependent(t *testing.T) {
	rng := dist.New(77)
	n := 2000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	r := Spearman(xs, ys)
	if math.Abs(r.Rho) > 0.06 {
		t.Fatalf("independent rho = %v, want ~0", r.Rho)
	}
	if r.PValue < 0.01 {
		t.Fatalf("independent p-value = %v, unexpectedly significant", r.PValue)
	}
}

func TestSpearmanDegenerate(t *testing.T) {
	if r := Spearman([]float64{1, 2}, []float64{3, 4}); !math.IsNaN(r.Rho) {
		t.Fatalf("n<3 rho = %v, want NaN", r.Rho)
	}
	if r := Spearman([]float64{5, 5, 5, 5}, []float64{1, 2, 3, 4}); !math.IsNaN(r.Rho) {
		t.Fatalf("constant side rho = %v, want NaN", r.Rho)
	}
}

func TestSpearmanSignificanceAtModerateCorrelation(t *testing.T) {
	// Monotone signal plus noise over n=200 should be significant (p<0.05),
	// mirroring the paper's Fig. 12 claim for its 191 users.
	rng := dist.New(13)
	n := 200
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64(i) + 400*rng.NormFloat64()
	}
	r := Spearman(xs, ys)
	if r.Rho <= 0 {
		t.Fatalf("rho = %v, want positive", r.Rho)
	}
	if r.PValue >= 0.05 {
		t.Fatalf("p = %v, want < 0.05", r.PValue)
	}
}

func TestPearsonKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if r := Pearson(xs, ys); !almost(r, 1, 1e-12) {
		t.Fatalf("pearson = %v, want 1", r)
	}
	if r := Pearson(xs, nil); !math.IsNaN(r) {
		t.Fatalf("pearson of empty = %v, want NaN", r)
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if v := regIncBeta(2, 3, 0); v != 0 {
		t.Fatalf("I_0 = %v", v)
	}
	if v := regIncBeta(2, 3, 1); v != 1 {
		t.Fatalf("I_1 = %v", v)
	}
	// I_x(1,1) is the identity.
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if v := regIncBeta(1, 1, x); !almost(v, x, 1e-9) {
			t.Fatalf("I_%v(1,1) = %v", x, v)
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	for _, x := range []float64{0.2, 0.4, 0.7} {
		lhs := regIncBeta(2.5, 4, x)
		rhs := 1 - regIncBeta(4, 2.5, 1-x)
		if !almost(lhs, rhs, 1e-9) {
			t.Fatalf("symmetry broken at %v: %v vs %v", x, lhs, rhs)
		}
	}
}

func TestStudentTSF(t *testing.T) {
	// For df -> large, t SF approaches normal SF. SF(1.96, df=1000) ~ 0.025.
	if v := studentTSF(1.96, 1000); math.Abs(v-0.025) > 0.002 {
		t.Fatalf("SF(1.96, 1000) = %v, want ~0.025", v)
	}
	if v := studentTSF(0, 10); v != 0.5 {
		t.Fatalf("SF(0) = %v, want 0.5", v)
	}
}
