package stats

import (
	"math"
	"sort"
)

// Agg accumulates one scalar metric across simulation replications. It keeps
// both O(1) streaming moments (so huge batches stay cheap to merge) and the
// raw per-replication values in fold order (so quantiles, ECDFs and
// bootstrap confidence intervals over the replication distribution remain
// available). Folding the same values in the same order always produces the
// same state, which is what lets the replication engine promise bit-
// identical summaries regardless of how many workers computed the values.
type Agg struct {
	moments Streaming
	values  []float64
}

// Add folds one replication's value into the aggregate. NaNs are recorded in
// the moments-bypassing value list so N() still counts them, but they are
// excluded from moments and quantiles (a NaN metric means "undefined for
// this replication", e.g. a CoV over an empty group).
func (a *Agg) Add(v float64) {
	a.values = append(a.values, v)
	if !math.IsNaN(v) {
		a.moments.Add(v)
	}
}

// Merge folds another aggregate's values after this one's, preserving fold
// order (this's replications first, then o's). The replication engine always
// merges in replication-index order, so the result is independent of which
// worker produced which piece.
func (a *Agg) Merge(o *Agg) {
	a.values = append(a.values, o.values...)
	a.moments.Merge(&o.moments)
}

// N returns the number of replications folded in, including NaNs.
func (a *Agg) N() int { return len(a.values) }

// Defined returns the number of non-NaN replication values.
func (a *Agg) Defined() int { return a.moments.N() }

// Mean returns the across-replication mean (NaN before any defined value).
func (a *Agg) Mean() float64 { return a.moments.Mean() }

// StdDev returns the across-replication population standard deviation.
func (a *Agg) StdDev() float64 { return a.moments.StdDev() }

// Min returns the smallest defined value, or NaN.
func (a *Agg) Min() float64 { return a.moments.Min() }

// Max returns the largest defined value, or NaN.
func (a *Agg) Max() float64 { return a.moments.Max() }

// Values returns the per-replication values in fold order. The slice is the
// aggregate's backing store; callers must not mutate it.
func (a *Agg) Values() []float64 { return a.values }

// defined returns the non-NaN values, freshly allocated.
func (a *Agg) defined() []float64 {
	out := make([]float64, 0, len(a.values))
	for _, v := range a.values {
		if !math.IsNaN(v) {
			out = append(out, v)
		}
	}
	return out
}

// Quantile returns the p-quantile of the replication distribution.
func (a *Agg) Quantile(p float64) float64 {
	d := a.defined()
	if len(d) == 0 {
		return math.NaN()
	}
	sort.Float64s(d)
	return quantileSorted(d, p)
}

// Median returns the across-replication median.
func (a *Agg) Median() float64 { return a.Quantile(0.5) }

// ECDF returns the empirical CDF of the replication distribution.
func (a *Agg) ECDF() *ECDF { return NewECDF(a.values) }

// MeanCI bootstraps a confidence interval for the across-replication mean.
// Deterministic for a fixed seed.
func (a *Agg) MeanCI(resamples int, level float64, seed uint64) CI {
	return BootstrapCI(a.defined(), Mean, resamples, level, seed)
}

// StdErr returns the standard error of the across-replication mean using the
// sample (n−1) variance, the usual headline uncertainty for a replicated
// simulation experiment. NaN with fewer than two defined values.
func (a *Agg) StdErr() float64 {
	n := a.moments.N()
	if n < 2 {
		return math.NaN()
	}
	sampleVar := a.moments.Variance() * float64(n) / float64(n-1)
	return math.Sqrt(sampleVar / float64(n))
}
