package stats

import (
	"math"
	"sort"

	"repro/internal/dist"
)

// CI is a two-sided confidence interval for a statistic.
type CI struct {
	Lo, Hi float64
	// Point is the statistic on the original sample.
	Point float64
	// Level is the nominal coverage, e.g. 0.95.
	Level float64
}

// Contains reports whether v lies inside the interval.
func (c CI) Contains(v float64) bool { return v >= c.Lo && v <= c.Hi }

// Width returns Hi − Lo.
func (c CI) Width() float64 { return c.Hi - c.Lo }

// BootstrapCI estimates a percentile-bootstrap confidence interval for
// stat(xs) using resamples resampling rounds at the given level (e.g. 0.95).
// It is deterministic for a fixed seed. Inputs with fewer than two values
// yield a degenerate interval at the point estimate. The characterization
// uses it to attach uncertainty to the medians EXPERIMENTS.md reports —
// necessary because several paper statistics ride band edges.
func BootstrapCI(xs []float64, stat func([]float64) float64, resamples int, level float64, seed uint64) CI {
	point := stat(xs)
	out := CI{Lo: point, Hi: point, Point: point, Level: level}
	if len(xs) < 2 || resamples < 2 || level <= 0 || level >= 1 {
		return out
	}
	rng := dist.New(seed)
	buf := make([]float64, len(xs))
	vals := make([]float64, 0, resamples)
	for b := 0; b < resamples; b++ {
		for i := range buf {
			buf[i] = xs[rng.Intn(len(xs))]
		}
		v := stat(buf)
		if !math.IsNaN(v) {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return out
	}
	sort.Float64s(vals)
	alpha := (1 - level) / 2
	out.Lo = quantileSorted(vals, alpha)
	out.Hi = quantileSorted(vals, 1-alpha)
	return out
}

// MedianCI is a convenience wrapper bootstrapping the median.
func MedianCI(xs []float64, resamples int, level float64, seed uint64) CI {
	return BootstrapCI(xs, Median, resamples, level, seed)
}
