// Package stats reimplements, on the standard library alone, the estimators
// the paper's analysis pipeline takes from SciPy/Pandas: empirical CDFs,
// quantiles, coefficients of variation, Spearman rank correlation with
// p-values, box-plot statistics, histograms, Lorenz/Gini concentration, and
// streaming moments for datasets too large to hold resident.
//
// Conventions: quantiles use linear interpolation between closest ranks
// (NumPy's default "linear" method) so that numbers are directly comparable
// to the paper's SciPy-derived values. Functions that cannot produce a
// defined result on their input (empty slices, zero means) return NaN rather
// than panicking, because missing strata are routine in trace analysis.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanVariance returns the mean and population variance of xs (divide by n)
// in one fused Welford pass, so CoV-style consumers never scan the data
// twice. Population variance matches how the paper computes CoV over the
// complete set of intervals of a run, which is a census, not a sample. Both
// results are NaN for empty input.
func MeanVariance(xs []float64) (mean, variance float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	var m, m2 float64
	for i, x := range xs {
		delta := x - m
		m += delta / float64(i+1)
		m2 += delta * (x - m)
	}
	return m, m2 / float64(len(xs))
}

// Variance returns the population variance of xs, or NaN if xs is empty.
func Variance(xs []float64) float64 {
	_, v := MeanVariance(xs)
	return v
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	_, v := MeanVariance(xs)
	return math.Sqrt(v)
}

// CoV returns the coefficient of variation of xs expressed as a percentage
// (stddev/mean × 100), the unit used throughout the paper's Figs. 6b, 7a, 11
// and 14. It returns NaN for empty input or zero mean, and 0 for a single
// observation (no dispersion is observable).
func CoV(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if len(xs) == 1 {
		return 0
	}
	m, v := MeanVariance(xs)
	if m == 0 {
		return math.NaN()
	}
	return math.Sqrt(v) / math.Abs(m) * 100
}

// Min returns the minimum of xs, or NaN if xs is empty.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or NaN if xs is empty.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Quantile returns the p-quantile of xs (p in [0,1]) using linear
// interpolation between closest ranks. It sorts a copy; use Quantiles or an
// ECDF when many quantiles of the same data are needed.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, p)
}

// Quantiles returns the quantiles of xs at each probability in ps, sorting
// the data only once.
func Quantiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	for i, p := range ps {
		out[i] = quantileSorted(s, p)
	}
	return out
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// QuantileSorted returns the p-quantile of data that is already sorted
// ascending and NaN-free — the fast path for shared sorted column views,
// which would otherwise be re-copied and re-sorted per quantile. It is
// value-identical to Quantile on the same multiset.
func QuantileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	return quantileSorted(sorted, p)
}

// quantileSorted computes the linear-interpolated quantile of sorted data.
func quantileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	pos := p * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Summary bundles the descriptive statistics reported for each metric in the
// trace dataset (the paper collects min/mean/max per job, and the analyses
// add quartiles and CoV).
type Summary struct {
	N             int
	Min, Max      float64
	Mean          float64
	StdDev        float64
	P25, P50, P75 float64
	CoVPct        float64 // coefficient of variation, percent
	Sum           float64
}

// Summarize computes a Summary of xs. An empty input yields a Summary with
// N=0 and NaN statistics.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		nan := math.NaN()
		s.Min, s.Max, s.Mean, s.StdDev = nan, nan, nan, nan
		s.P25, s.P50, s.P75, s.CoVPct, s.Sum = nan, nan, nan, nan, 0
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.Sum = Sum(xs)
	s.Mean = s.Sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(len(xs)))
	s.P25 = quantileSorted(sorted, 0.25)
	s.P50 = quantileSorted(sorted, 0.50)
	s.P75 = quantileSorted(sorted, 0.75)
	if s.Mean != 0 && len(xs) > 1 {
		s.CoVPct = s.StdDev / math.Abs(s.Mean) * 100
	} else if len(xs) == 1 {
		s.CoVPct = 0
	} else {
		s.CoVPct = math.NaN()
	}
	return s
}

// BoxStats holds the five-number summary backing a box plot (paper Fig. 16),
// with Tukey 1.5×IQR whiskers.
type BoxStats struct {
	N                       int
	Median, Q1, Q3          float64
	WhiskerLow, WhiskerHigh float64
	Outliers                []float64
}

// Box computes box-plot statistics of xs. It sorts a copy; use
// BoxStatsSorted when a shared sorted view of the data already exists.
func Box(xs []float64) BoxStats {
	if len(xs) == 0 {
		return BoxStatsSorted(nil)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return BoxStatsSorted(s)
}

// BoxStatsSorted computes box-plot statistics of data that is already sorted
// ascending and NaN-free, without copying. The returned Outliers slice (if
// any) is freshly allocated; the input is never retained.
func BoxStatsSorted(s []float64) BoxStats {
	b := BoxStats{N: len(s)}
	if len(s) == 0 {
		nan := math.NaN()
		b.Median, b.Q1, b.Q3, b.WhiskerLow, b.WhiskerHigh = nan, nan, nan, nan, nan
		return b
	}
	b.Q1 = quantileSorted(s, 0.25)
	b.Median = quantileSorted(s, 0.50)
	b.Q3 = quantileSorted(s, 0.75)
	iqr := b.Q3 - b.Q1
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr
	b.WhiskerLow, b.WhiskerHigh = math.NaN(), math.NaN()
	for _, v := range s {
		if v >= loFence {
			b.WhiskerLow = v
			break
		}
	}
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] <= hiFence {
			b.WhiskerHigh = s[i]
			break
		}
	}
	for _, v := range s {
		if v < loFence || v > hiFence {
			b.Outliers = append(b.Outliers, v)
		}
	}
	return b
}

// FractionAbove returns the fraction of xs strictly greater than threshold,
// used for statements like "only 20 % of the jobs have more than 50 % SM
// utilization" (paper §III).
func FractionAbove(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	n := 0
	for _, x := range xs {
		if x > threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// FractionBelow returns the fraction of xs strictly less than threshold.
func FractionBelow(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	n := 0
	for _, x := range xs {
		if x < threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// FractionAboveSorted is FractionAbove on data already sorted ascending and
// NaN-free: a binary search replaces the linear count. The count (and hence
// the exact division) matches the scan on the same multiset.
func FractionAboveSorted(sorted []float64, threshold float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] > threshold })
	return float64(len(sorted)-i) / float64(len(sorted))
}

// FractionBelowSorted is FractionBelow on data already sorted ascending and
// NaN-free.
func FractionBelowSorted(sorted []float64, threshold float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= threshold })
	return float64(i) / float64(len(sorted))
}
