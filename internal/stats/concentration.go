package stats

import (
	"math"
	"sort"
)

// Concentration quantifies how unevenly a quantity (jobs, GPU hours) is
// spread across contributors (users). It backs the paper's §IV Pareto
// statements: "top 5 % of the users submit 44 % of the jobs, and top 20 % of
// the users submit 83.2 % of the jobs".
type Concentration struct {
	sortedDesc []float64 // contributions, largest first
	total      float64
}

// NewConcentration builds a Concentration over per-contributor totals.
// Negative contributions are invalid and dropped.
func NewConcentration(contributions []float64) *Concentration {
	c := &Concentration{}
	for _, v := range contributions {
		if v >= 0 && !math.IsNaN(v) {
			c.sortedDesc = append(c.sortedDesc, v)
			c.total += v
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(c.sortedDesc)))
	return c
}

// N returns the number of contributors.
func (c *Concentration) N() int { return len(c.sortedDesc) }

// TopShare returns the fraction of the total contributed by the top
// topFrac (in (0,1]) of contributors. TopShare(0.05) answers "what share do
// the top 5 % of users hold".
func (c *Concentration) TopShare(topFrac float64) float64 {
	if len(c.sortedDesc) == 0 || c.total == 0 {
		return math.NaN()
	}
	k := int(math.Ceil(topFrac * float64(len(c.sortedDesc))))
	if k < 1 {
		k = 1
	}
	if k > len(c.sortedDesc) {
		k = len(c.sortedDesc)
	}
	var s float64
	for _, v := range c.sortedDesc[:k] {
		s += v
	}
	return s / c.total
}

// Gini returns the Gini coefficient of the contributions: 0 for perfect
// equality, approaching 1 as one contributor dominates.
func (c *Concentration) Gini() float64 {
	n := len(c.sortedDesc)
	if n == 0 || c.total == 0 {
		return math.NaN()
	}
	// Standard rank formula G = 2*sum_i(i*x_(i))/(n*total) - (n+1)/n over
	// ascending order; the ascending rank of descending position i is n-i.
	var weighted float64
	for i, v := range c.sortedDesc { // i=0 is largest
		weighted += float64(n-i) * v
	}
	return (2*weighted/c.total - float64(n+1)) / float64(n)
}

// LorenzCurve returns points of the Lorenz curve: for each contributor count
// k (largest first), the cumulative share of the total. Point k has
// X = k/n (fraction of contributors) and F = cumulative share.
func (c *Concentration) LorenzCurve() []Point {
	n := len(c.sortedDesc)
	if n == 0 || c.total == 0 {
		return nil
	}
	pts := make([]Point, n)
	var cum float64
	for i, v := range c.sortedDesc {
		cum += v
		pts[i] = Point{X: float64(i+1) / float64(n), F: cum / c.total}
	}
	return pts
}
