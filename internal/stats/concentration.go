package stats

import (
	"math"
	"sort"
)

// Concentration quantifies how unevenly a quantity (jobs, GPU hours) is
// spread across contributors (users). It backs the paper's §IV Pareto
// statements: "top 5 % of the users submit 44 % of the jobs, and top 20 % of
// the users submit 83.2 % of the jobs".
type Concentration struct {
	sortedAsc []float64 // contributions, ascending; consumers walk from the tail
	total     float64
}

// NewConcentration builds a Concentration over per-contributor totals.
// Negative contributions are invalid and dropped. The contributions are
// sorted ascending once; every consumer indexes from the tail, visiting
// values in exactly the descending sequence a reverse sort would give, so
// TopShare/Gini/LorenzCurve results are byte-identical to the reverse-sorted
// formulation without the extra interface-boxed sort pass.
func NewConcentration(contributions []float64) *Concentration {
	c := &Concentration{}
	for _, v := range contributions {
		if v >= 0 && !math.IsNaN(v) {
			c.sortedAsc = append(c.sortedAsc, v)
			c.total += v
		}
	}
	sort.Float64s(c.sortedAsc)
	return c
}

// N returns the number of contributors.
func (c *Concentration) N() int { return len(c.sortedAsc) }

// TopShare returns the fraction of the total contributed by the top
// topFrac (in (0,1]) of contributors. TopShare(0.05) answers "what share do
// the top 5 % of users hold".
func (c *Concentration) TopShare(topFrac float64) float64 {
	n := len(c.sortedAsc)
	if n == 0 || c.total == 0 {
		return math.NaN()
	}
	k := int(math.Ceil(topFrac * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	var s float64
	for i := n - 1; i >= n-k; i-- { // largest first
		s += c.sortedAsc[i]
	}
	return s / c.total
}

// Gini returns the Gini coefficient of the contributions: 0 for perfect
// equality, approaching 1 as one contributor dominates.
func (c *Concentration) Gini() float64 {
	n := len(c.sortedAsc)
	if n == 0 || c.total == 0 {
		return math.NaN()
	}
	// Standard rank formula G = 2*sum_i(i*x_(i))/(n*total) - (n+1)/n over
	// ascending order; walking the tail first keeps the accumulation order
	// of the descending formulation (weight n for the largest value).
	var weighted float64
	for i := n - 1; i >= 0; i-- {
		weighted += float64(i+1) * c.sortedAsc[i]
	}
	return (2*weighted/c.total - float64(n+1)) / float64(n)
}

// LorenzCurve returns points of the Lorenz curve: for each contributor count
// k (largest first), the cumulative share of the total. Point k has
// X = k/n (fraction of contributors) and F = cumulative share.
func (c *Concentration) LorenzCurve() []Point {
	n := len(c.sortedAsc)
	if n == 0 || c.total == 0 {
		return nil
	}
	pts := make([]Point, n)
	var cum float64
	for k, i := 0, n-1; i >= 0; k, i = k+1, i-1 {
		cum += c.sortedAsc[i]
		pts[k] = Point{X: float64(k+1) / float64(n), F: cum / c.total}
	}
	return pts
}
