package stats

import "math"

// Histogram is a fixed-width-bin histogram over [Low, High). Values outside
// the range are clamped into the edge bins so that no observation is lost,
// which matters when binning percentages that can touch exactly 100.
type Histogram struct {
	Low, High float64
	Counts    []int
	total     int
}

// NewHistogram creates a histogram with bins equal-width bins over
// [low, high). It panics if bins < 1 or high <= low — both are configuration
// errors.
func NewHistogram(low, high float64, bins int) *Histogram {
	if bins < 1 {
		panic("stats: histogram needs at least one bin")
	}
	if high <= low {
		panic("stats: histogram range is empty")
	}
	return &Histogram{Low: low, High: high, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	i := int((x - h.Low) / (h.High - h.Low) * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// AddAll records every observation in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// Fractions returns each bin's share of the total, or nil when empty.
func (h *Histogram) Fractions() []float64 {
	if h.total == 0 {
		return nil
	}
	out := make([]float64, len(h.Counts))
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.High - h.Low) / float64(len(h.Counts))
	return h.Low + w*(float64(i)+0.5)
}
