package stats

import (
	"math"
	"testing"

	"repro/internal/dist"
)

func TestBootstrapCIBracketsTruth(t *testing.T) {
	// Median of a lognormal sample: the CI should bracket the true median
	// (1.0 for sigma=1, mu=0) in the vast majority of trials.
	rng := dist.New(7)
	hits := 0
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 300)
		for i := range xs {
			xs[i] = math.Exp(rng.NormFloat64())
		}
		ci := MedianCI(xs, 400, 0.95, uint64(trial+1))
		if ci.Lo > ci.Hi {
			t.Fatalf("inverted CI: %+v", ci)
		}
		if !ci.Contains(ci.Point) {
			t.Fatalf("CI excludes its own point estimate: %+v", ci)
		}
		if ci.Contains(1.0) {
			hits++
		}
	}
	if hits < trials*80/100 {
		t.Fatalf("true median covered in only %d/%d trials", hits, trials)
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	a := MedianCI(xs, 200, 0.9, 42)
	b := MedianCI(xs, 200, 0.9, 42)
	if a != b {
		t.Fatalf("bootstrap not deterministic: %+v vs %+v", a, b)
	}
	c := MedianCI(xs, 200, 0.9, 43)
	if a == c {
		t.Fatal("different seeds gave identical CI (suspicious)")
	}
}

func TestBootstrapCIDegenerate(t *testing.T) {
	ci := MedianCI([]float64{5}, 100, 0.95, 1)
	if ci.Lo != 5 || ci.Hi != 5 || ci.Point != 5 {
		t.Fatalf("singleton CI: %+v", ci)
	}
	if w := ci.Width(); w != 0 {
		t.Fatalf("width = %v", w)
	}
	empty := MedianCI(nil, 100, 0.95, 1)
	if !math.IsNaN(empty.Point) {
		t.Fatalf("empty point = %v", empty.Point)
	}
}

func TestBootstrapCIWidensWithLevel(t *testing.T) {
	rng := dist.New(9)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	narrow := MedianCI(xs, 500, 0.5, 2)
	wide := MedianCI(xs, 500, 0.99, 2)
	if wide.Width() <= narrow.Width() {
		t.Fatalf("99%% CI (%v) not wider than 50%% CI (%v)", wide.Width(), narrow.Width())
	}
}
