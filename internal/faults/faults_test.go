package faults

import (
	"math"
	"testing"
)

func TestPlanEmptyAndValidate(t *testing.T) {
	if !(Plan{}).Empty() {
		t.Fatal("zero plan should be empty")
	}
	if (Plan{GPUFatalMTBFHours: 500}).Empty() {
		t.Fatal("GPU-fatal plan should not be empty")
	}
	if err := (Plan{GPUFatalMTBFHours: 500}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Plan{NodeCrashMTBFHours: 100}).Validate(); err == nil {
		t.Fatal("crash plan without repair time should fail validation")
	}
	if err := (Plan{NodeCrashMTBFHours: -1, MeanRepairHours: 1}).Validate(); err == nil {
		t.Fatal("negative rate should fail validation")
	}
	if err := (Plan{NodeCrashMTBFHours: 100, MeanRepairHours: 2}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInjectorDeterministic(t *testing.T) {
	plan := Plan{NodeCrashMTBFHours: 50, NodeDrainMTBFHours: 200, MeanRepairHours: 4}
	a := Generate(plan, 8, 30*86400, 7)
	b := Generate(plan, 8, 30*86400, 7)
	if len(a) == 0 {
		t.Fatal("expected events over a 30-day horizon at 50h MTBF")
	}
	if len(a) != len(b) {
		t.Fatalf("replay length diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := Generate(plan, 8, 30*86400, 8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestInjectorStreamsIndependent pins the per-node stream isolation: node 3's
// events are identical whether or not other nodes consumed their streams.
func TestInjectorStreamsIndependent(t *testing.T) {
	plan := Plan{NodeCrashMTBFHours: 20, MeanRepairHours: 1}
	solo := NewInjector(plan, 8, 42)
	busy := NewInjector(plan, 8, 42)
	// Exhaust other nodes' streams on the busy injector first.
	for n := 0; n < 8; n++ {
		if n == 3 {
			continue
		}
		for i := 0; i < 10; i++ {
			busy.Next(n, float64(i))
		}
	}
	for i := 0; i < 5; i++ {
		a, okA := solo.Next(3, float64(i)*1000)
		b, okB := busy.Next(3, float64(i)*1000)
		if okA != okB || a != b {
			t.Fatalf("node 3 stream depends on sibling consumption: %+v vs %+v", a, b)
		}
	}
}

func TestInjectorRepairAndOrdering(t *testing.T) {
	plan := Plan{NodeCrashMTBFHours: 10, MeanRepairHours: 2}
	evs := Generate(plan, 4, 20*86400, 1)
	for i, ev := range evs {
		if ev.RepairSec <= 0 {
			t.Fatalf("event %d: non-positive repair %v", i, ev.RepairSec)
		}
		if ev.Kind != Crash {
			t.Fatalf("event %d: drain from a crash-only plan", i)
		}
		if i > 0 && ev.TimeSec < evs[i-1].TimeSec {
			t.Fatalf("events out of order at %d", i)
		}
	}
}

func TestInjectorDrainOnly(t *testing.T) {
	plan := Plan{NodeDrainMTBFHours: 10, MeanRepairHours: 1}
	for _, ev := range Generate(plan, 4, 20*86400, 1) {
		if ev.Kind != Drain {
			t.Fatal("crash from a drain-only plan")
		}
	}
	in := NewInjector(Plan{GPUFatalMTBFHours: 500}, 4, 1)
	if _, ok := in.Next(0, 0); ok {
		t.Fatal("GPU-only plan should produce no node events")
	}
}

func TestAttemptFatalPure(t *testing.T) {
	plan := Plan{GPUFatalMTBFHours: 500}
	off1, ok1 := AttemptFatal(plan, 7, 1234, 2, 4, 1e9)
	off2, ok2 := AttemptFatal(plan, 7, 1234, 2, 4, 1e9)
	if ok1 != ok2 || off1 != off2 {
		t.Fatal("AttemptFatal is not a pure function of its inputs")
	}
	if !ok1 {
		t.Fatal("a 1e9-second attempt at 500h MTBF must fail")
	}
	// Different attempts of the same job re-roll.
	off3, _ := AttemptFatal(plan, 7, 1234, 3, 4, 1e9)
	if off3 == off1 {
		t.Fatal("attempts share a fatal draw")
	}
	if _, ok := AttemptFatal(plan, 7, 1, 0, 0, 1e9); ok {
		t.Fatal("zero-GPU attempt cannot draw a GPU fatal")
	}
	if _, ok := AttemptFatal(Plan{}, 7, 1, 0, 4, 1e9); ok {
		t.Fatal("disabled process produced a fatal")
	}
}

// TestAttemptFatalRate checks the empirical kill probability of short
// attempts against 1-exp(-G·t/MTBF).
func TestAttemptFatalRate(t *testing.T) {
	plan := Plan{GPUFatalMTBFHours: 500}
	const (
		gpus       = 2
		attemptSec = 100 * 3600 // 100h wall on 2 GPUs
		n          = 20000
	)
	kills := 0
	for j := int64(0); j < n; j++ {
		if _, ok := AttemptFatal(plan, 99, j, 0, gpus, attemptSec); ok {
			kills++
		}
	}
	want := 1 - math.Exp(-float64(gpus)*100/500)
	got := float64(kills) / n
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("empirical kill probability %.4f, want %.4f ± 0.01", got, want)
	}
}

func TestCrashDrainMix(t *testing.T) {
	plan := Plan{NodeCrashMTBFHours: 20, NodeDrainMTBFHours: 20, MeanRepairHours: 1}
	crashes, drains := 0, 0
	for _, ev := range Generate(plan, 16, 60*86400, 5) {
		if ev.Kind == Crash {
			crashes++
		} else {
			drains++
		}
	}
	if crashes == 0 || drains == 0 {
		t.Fatalf("equal-rate mix produced crashes=%d drains=%d", crashes, drains)
	}
}
