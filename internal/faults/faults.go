// Package faults generates the seeded, deterministic failure event streams
// the cluster simulation injects: whole-node crashes, scheduled node drains
// with a repair-time distribution, and per-GPU ECC/Xid-style fatal errors.
// Rates are parameterized as MTBF hours — the same parameterization
// sharing.ReliabilityPlan uses for its analytic lost-work model — so a DES
// run and the analytic study can be driven from one number and cross-checked.
//
// Determinism contract: every stream is a pure function of (Plan, seed,
// identity). Node outage streams are private per node (dist.Stream of a
// salted seed), so node i's failures do not depend on how many events other
// nodes drew; GPU fatal draws are a pure function of (seed, job ID, attempt),
// so they do not depend on event ordering at all. This is what keeps fault
// runs bit-identical per seed and per engine worker count.
package faults

import (
	"fmt"
	"math"

	"repro/internal/dist"
)

// Salts keep the fault streams disjoint from the workload generator's
// streams, which may be derived from the same replication seed.
const (
	nodeSalt  = 0xFA17ED_0D15EA5E
	fatalSalt = 0xFA17ED_ECC0FF5E
)

// Plan parameterizes the failure processes. All rates are mean-time-between-
// failures in hours; a zero rate disables that process. The zero Plan injects
// nothing (Empty reports true) and is the production default.
type Plan struct {
	// NodeCrashMTBFHours is the per-node rate of hard crashes: every job on
	// the node is killed, the node goes down and repairs after a random
	// repair time.
	NodeCrashMTBFHours float64
	// NodeDrainMTBFHours is the per-node rate of scheduled drains
	// (maintenance): the node stops accepting work, running jobs finish,
	// then the node goes down for the repair time.
	NodeDrainMTBFHours float64
	// MeanRepairHours is the mean of the exponential down-time distribution.
	// Required positive when either node rate is set.
	MeanRepairHours float64
	// GPUFatalMTBFHours is the per-busy-GPU rate of job-killing device errors
	// (ECC double-bit, Xid). Each GPU a running job holds draws failures
	// independently at this rate — a G-GPU job fails G times as often, the
	// exposure model sharing.ReliabilityStudy prices analytically.
	GPUFatalMTBFHours float64
}

// Empty reports whether the plan injects no faults at all.
func (p Plan) Empty() bool {
	return p.NodeCrashMTBFHours == 0 && p.NodeDrainMTBFHours == 0 && p.GPUFatalMTBFHours == 0
}

// NodeOutages reports whether the plan generates whole-node events.
func (p Plan) NodeOutages() bool {
	return p.NodeCrashMTBFHours > 0 || p.NodeDrainMTBFHours > 0
}

// Validate reports parameterization errors.
func (p Plan) Validate() error {
	switch {
	case p.NodeCrashMTBFHours < 0 || p.NodeDrainMTBFHours < 0 ||
		p.GPUFatalMTBFHours < 0 || p.MeanRepairHours < 0:
		return fmt.Errorf("faults: negative rate in plan %+v", p)
	case p.NodeOutages() && p.MeanRepairHours <= 0:
		return fmt.Errorf("faults: node outages need a positive MeanRepairHours")
	}
	return nil
}

// NodeEventKind distinguishes the whole-node failure modes.
type NodeEventKind int

// The node event kinds.
const (
	// Crash kills every job on the node immediately.
	Crash NodeEventKind = iota
	// Drain stops new placements; running jobs finish before the down time.
	Drain
)

// String returns the kind name.
func (k NodeEventKind) String() string {
	if k == Crash {
		return "crash"
	}
	return "drain"
}

// NodeEvent is one scheduled whole-node outage.
type NodeEvent struct {
	Node    int
	Kind    NodeEventKind
	TimeSec float64
	// RepairSec is the down time once the node reaches the down state.
	RepairSec float64
}

// Injector produces each node's private outage stream lazily. A node has at
// most one outstanding outage: the scheduler asks for the next one only after
// the previous repair completes, so the per-node stream position is a
// deterministic function of that node's own history.
type Injector struct {
	plan Plan
	rngs []*dist.RNG
}

// NewInjector builds an injector for a cluster of the given size. The plan
// must be validated by the caller; a plan without node outages yields an
// injector whose Next always reports ok=false.
func NewInjector(plan Plan, nodes int, seed uint64) *Injector {
	in := &Injector{plan: plan, rngs: make([]*dist.RNG, nodes)}
	for i := range in.rngs {
		in.rngs[i] = dist.Stream(seed^nodeSalt, uint64(i))
	}
	return in
}

// Next samples the node's next outage strictly after nowSec, advancing the
// node's private stream. ok is false when the plan generates no node outages.
func (in *Injector) Next(node int, nowSec float64) (NodeEvent, bool) {
	if !in.plan.NodeOutages() {
		return NodeEvent{}, false
	}
	rng := in.rngs[node]
	// Draw both processes in a fixed order so the stream advances identically
	// regardless of which one wins the race.
	tCrash, tDrain := math.Inf(1), math.Inf(1)
	if in.plan.NodeCrashMTBFHours > 0 {
		tCrash = rng.ExpFloat64() * in.plan.NodeCrashMTBFHours * 3600
	}
	if in.plan.NodeDrainMTBFHours > 0 {
		tDrain = rng.ExpFloat64() * in.plan.NodeDrainMTBFHours * 3600
	}
	ev := NodeEvent{Node: node, Kind: Crash, TimeSec: nowSec + tCrash}
	if tDrain < tCrash {
		ev.Kind = Drain
		ev.TimeSec = nowSec + tDrain
	}
	ev.RepairSec = rng.ExpFloat64() * in.plan.MeanRepairHours * 3600
	return ev, true
}

// AttemptFatal samples the per-GPU fatal-error process for one job attempt:
// each of the attempt's gpus draws an exponential time-to-fatal with mean
// GPUFatalMTBFHours, and the earliest one kills the attempt. It returns the
// kill offset in seconds from attempt start and ok=true when that offset
// falls inside the attempt's run time; ok=false when every device outlives
// the attempt (or the process is disabled).
//
// The draw is a pure function of (plan, seed, jobID, attempt) — independent
// of simulation event ordering — so requeued attempts re-roll fresh failures
// deterministically.
func AttemptFatal(p Plan, seed uint64, jobID int64, attempt, gpus int, attemptSec float64) (float64, bool) {
	if p.GPUFatalMTBFHours <= 0 || gpus <= 0 || attemptSec <= 0 {
		return 0, false
	}
	rng := dist.Stream(dist.StreamSeed(seed^fatalSalt, uint64(jobID)), uint64(attempt))
	mtbfSec := p.GPUFatalMTBFHours * 3600
	first := math.Inf(1)
	for g := 0; g < gpus; g++ {
		if t := rng.ExpFloat64() * mtbfSec; t < first {
			first = t
		}
	}
	if first >= attemptSec {
		return 0, false
	}
	return first, true
}

// Generate materializes every node outage up to horizonSec as a single
// time-sorted stream, assuming each outage repairs before the next is drawn —
// the convenience form for tests and offline inspection; the simulator uses
// the lazy Injector directly.
func Generate(p Plan, nodes int, horizonSec float64, seed uint64) []NodeEvent {
	in := NewInjector(p, nodes, seed)
	var out []NodeEvent
	for node := 0; node < nodes; node++ {
		now := 0.0
		for {
			ev, ok := in.Next(node, now)
			if !ok || ev.TimeSec > horizonSec {
				break
			}
			out = append(out, ev)
			now = ev.TimeSec + ev.RepairSec
		}
	}
	// Stable order: time, then node (a node's own events are already sorted).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && (out[j].TimeSec < out[j-1].TimeSec ||
			(out[j].TimeSec == out[j-1].TimeSec && out[j].Node < out[j-1].Node)); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
