// Package lifecycle implements the paper's §VI contribution: classifying
// jobs by their position in the algorithm-development life-cycle from
// observable scheduler facts alone. Mature jobs complete with a zero exit
// code; exploratory jobs are killed by their user mid-flight (abandoned
// hyper-parameter settings); IDE jobs are interactive sessions that ride
// their wall-clock limit into a timeout; development jobs crash, or time out
// non-interactively while under debug.
package lifecycle

import "repro/internal/trace"

// classifyTable is the paper's §VI decision table, spelled out over every
// (ExitStatus × Interface) pair so the mapping is auditable at a glance and
// the exhaustiveness test can sweep it cell by cell. Only one cell depends on
// the interface: a timeout in an interactive session is an IDE job riding its
// wall-clock limit; every other timeout — and every crash, interactive or not
// (the paper's development jobs fail under debug regardless of how they were
// launched) — is Development.
var classifyTable = [trace.NumExitStatuses][trace.NumInterfaces]trace.Category{
	trace.ExitSuccess: {
		trace.MapReduce:   trace.Mature,
		trace.Batch:       trace.Mature,
		trace.Interactive: trace.Mature,
		trace.Other:       trace.Mature,
	},
	trace.ExitCancelled: {
		trace.MapReduce:   trace.Exploratory,
		trace.Batch:       trace.Exploratory,
		trace.Interactive: trace.Exploratory,
		trace.Other:       trace.Exploratory,
	},
	trace.ExitTimeout: {
		trace.MapReduce:   trace.Development,
		trace.Batch:       trace.Development,
		trace.Interactive: trace.IDE,
		trace.Other:       trace.Development,
	},
	trace.ExitFailed: {
		trace.MapReduce:   trace.Development,
		trace.Batch:       trace.Development,
		trace.Interactive: trace.Development,
		trace.Other:       trace.Development,
	},
}

// Classify returns the life-cycle category of a job record. The mapping is
// total: every (exit status, interface) combination has a category.
func Classify(j *trace.JobRecord) trace.Category {
	return ClassifyParts(j.Exit, j.Interface)
}

// ClassifyParts classifies from the two observables directly, so callers that
// have no JobRecord in hand (the scheduler's online prediction layer works
// from JobSpecs) share the exact decision table. Out-of-range statuses are
// code in an unknown terminal state — still under debug, so Development; an
// out-of-range interface is simply not an interactive session, preserving the
// totality the original switch had.
func ClassifyParts(exit trace.ExitStatus, iface trace.Interface) trace.Category {
	if exit < 0 || exit >= trace.NumExitStatuses {
		return trace.Development
	}
	if iface < 0 || iface >= trace.NumInterfaces {
		iface = trace.Other
	}
	return classifyTable[exit][iface]
}

// Breakdown is the per-category tally of a job population (Fig. 15).
type Breakdown struct {
	Jobs          [trace.NumCategories]int
	GPUHours      [trace.NumCategories]float64
	Total         int
	TotalGPUHours float64
}

// Account classifies every job and accumulates counts and GPU hours.
func Account(jobs []*trace.JobRecord) Breakdown {
	var b Breakdown
	for _, j := range jobs {
		c := Classify(j)
		b.Jobs[c]++
		h := j.GPUHours()
		b.GPUHours[c] += h
		b.Total++
		b.TotalGPUHours += h
	}
	return b
}

// JobShare returns category c's fraction of jobs, or 0 for an empty
// population.
func (b Breakdown) JobShare(c trace.Category) float64 {
	if b.Total == 0 {
		return 0
	}
	return float64(b.Jobs[c]) / float64(b.Total)
}

// HourShare returns category c's fraction of GPU hours.
func (b Breakdown) HourShare(c trace.Category) float64 {
	if b.TotalGPUHours == 0 {
		return 0
	}
	return b.GPUHours[c] / b.TotalGPUHours
}

// GroupByCategory splits a job population by classified category.
func GroupByCategory(jobs []*trace.JobRecord) [trace.NumCategories][]*trace.JobRecord {
	var out [trace.NumCategories][]*trace.JobRecord
	for _, j := range jobs {
		c := Classify(j)
		out[c] = append(out[c], j)
	}
	return out
}
