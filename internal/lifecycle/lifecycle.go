// Package lifecycle implements the paper's §VI contribution: classifying
// jobs by their position in the algorithm-development life-cycle from
// observable scheduler facts alone. Mature jobs complete with a zero exit
// code; exploratory jobs are killed by their user mid-flight (abandoned
// hyper-parameter settings); IDE jobs are interactive sessions that ride
// their wall-clock limit into a timeout; development jobs crash, or time out
// non-interactively while under debug.
package lifecycle

import "repro/internal/trace"

// Classify returns the life-cycle category of a job record. The mapping is
// total: every (exit status, interface) combination has a category.
func Classify(j *trace.JobRecord) trace.Category {
	switch j.Exit {
	case trace.ExitSuccess:
		return trace.Mature
	case trace.ExitCancelled:
		return trace.Exploratory
	case trace.ExitTimeout:
		if j.Interface == trace.Interactive {
			return trace.IDE
		}
		return trace.Development
	default: // ExitFailed and anything unknown: code still under debug
		return trace.Development
	}
}

// Breakdown is the per-category tally of a job population (Fig. 15).
type Breakdown struct {
	Jobs          [trace.NumCategories]int
	GPUHours      [trace.NumCategories]float64
	Total         int
	TotalGPUHours float64
}

// Account classifies every job and accumulates counts and GPU hours.
func Account(jobs []*trace.JobRecord) Breakdown {
	var b Breakdown
	for _, j := range jobs {
		c := Classify(j)
		b.Jobs[c]++
		h := j.GPUHours()
		b.GPUHours[c] += h
		b.Total++
		b.TotalGPUHours += h
	}
	return b
}

// JobShare returns category c's fraction of jobs, or 0 for an empty
// population.
func (b Breakdown) JobShare(c trace.Category) float64 {
	if b.Total == 0 {
		return 0
	}
	return float64(b.Jobs[c]) / float64(b.Total)
}

// HourShare returns category c's fraction of GPU hours.
func (b Breakdown) HourShare(c trace.Category) float64 {
	if b.TotalGPUHours == 0 {
		return 0
	}
	return b.GPUHours[c] / b.TotalGPUHours
}

// GroupByCategory splits a job population by classified category.
func GroupByCategory(jobs []*trace.JobRecord) [trace.NumCategories][]*trace.JobRecord {
	var out [trace.NumCategories][]*trace.JobRecord
	for _, j := range jobs {
		c := Classify(j)
		out[c] = append(out[c], j)
	}
	return out
}
