package lifecycle

import (
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func rec(exit trace.ExitStatus, iface trace.Interface, gpus int, runSec float64) *trace.JobRecord {
	return &trace.JobRecord{Exit: exit, Interface: iface, NumGPUs: gpus, RunSec: runSec}
}

func TestClassifyMapping(t *testing.T) {
	cases := []struct {
		exit  trace.ExitStatus
		iface trace.Interface
		want  trace.Category
	}{
		{trace.ExitSuccess, trace.Other, trace.Mature},
		{trace.ExitSuccess, trace.Interactive, trace.Mature},
		{trace.ExitCancelled, trace.Batch, trace.Exploratory},
		{trace.ExitCancelled, trace.Interactive, trace.Exploratory},
		{trace.ExitTimeout, trace.Interactive, trace.IDE},
		{trace.ExitTimeout, trace.Batch, trace.Development},
		{trace.ExitTimeout, trace.Other, trace.Development},
		{trace.ExitFailed, trace.Other, trace.Development},
		{trace.ExitFailed, trace.MapReduce, trace.Development},
	}
	for _, c := range cases {
		if got := Classify(rec(c.exit, c.iface, 1, 60)); got != c.want {
			t.Errorf("Classify(%v, %v) = %v, want %v", c.exit, c.iface, got, c.want)
		}
	}
}

// specClassify is a verbatim transcription of the paper's §VI prose mapping
// (the pre-table switch): mature jobs complete with a zero exit code,
// exploratory jobs are user-cancelled, IDE jobs are interactive sessions that
// ride their limit into a timeout, and development jobs crash — interactively
// or not — or time out non-interactively. The exhaustiveness test checks the
// decision table against this spec cell by cell.
func specClassify(exit trace.ExitStatus, iface trace.Interface) trace.Category {
	switch exit {
	case trace.ExitSuccess:
		return trace.Mature
	case trace.ExitCancelled:
		return trace.Exploratory
	case trace.ExitTimeout:
		if iface == trace.Interactive {
			return trace.IDE
		}
		return trace.Development
	default: // ExitFailed and anything unknown: code still under debug
		return trace.Development
	}
}

// TestClassifyExhaustive sweeps every in-range (ExitStatus × Interface) pair:
// the table must agree with the §VI spec everywhere — in particular,
// interactive ExitFailed stays Development (an interactive session whose code
// crashed is under debug; only riding the limit into a timeout marks an IDE
// session), so no golden figure moves. It also probes out-of-range values on
// both axes, which must behave exactly as the original switch did.
func TestClassifyExhaustive(t *testing.T) {
	for exit := trace.ExitStatus(0); exit < trace.NumExitStatuses; exit++ {
		for iface := trace.Interface(0); iface < trace.NumInterfaces; iface++ {
			got := ClassifyParts(exit, iface)
			if want := specClassify(exit, iface); got != want {
				t.Errorf("ClassifyParts(%v, %v) = %v, want %v (paper §VI)", exit, iface, got, want)
			}
			if got < 0 || got >= trace.NumCategories {
				t.Errorf("ClassifyParts(%v, %v) = %v out of range", exit, iface, got)
			}
			if byRec := Classify(rec(exit, iface, 1, 60)); byRec != got {
				t.Errorf("Classify record path diverges from ClassifyParts at (%v, %v): %v vs %v",
					exit, iface, byRec, got)
			}
		}
	}
	// The §VI pin the issue asks about by name.
	if got := ClassifyParts(trace.ExitFailed, trace.Interactive); got != trace.Development {
		t.Errorf("interactive ExitFailed = %v, want Development", got)
	}
	// Out-of-range probes: unknown exit is Development whatever the
	// interface; unknown interface only matters for the timeout row.
	for _, iface := range []trace.Interface{-1, trace.NumInterfaces, 99} {
		if got := ClassifyParts(trace.ExitSuccess, iface); got != trace.Mature {
			t.Errorf("success with out-of-range interface %d = %v, want Mature", iface, got)
		}
		if got := ClassifyParts(trace.ExitTimeout, iface); got != trace.Development {
			t.Errorf("timeout with out-of-range interface %d = %v, want Development", iface, got)
		}
	}
	for _, exit := range []trace.ExitStatus{-1, trace.NumExitStatuses, 99} {
		for iface := trace.Interface(0); iface < trace.NumInterfaces; iface++ {
			if got := ClassifyParts(exit, iface); got != trace.Development {
				t.Errorf("out-of-range exit %d with %v = %v, want Development", exit, iface, got)
			}
		}
	}
}

// Property: the classifier is total — any combination yields a valid
// category.
func TestClassifyTotalProperty(t *testing.T) {
	f := func(exit uint8, iface uint8) bool {
		j := rec(trace.ExitStatus(exit%8), trace.Interface(iface%8), 1, 1)
		c := Classify(j)
		return c >= 0 && c < trace.NumCategories
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAccount(t *testing.T) {
	jobs := []*trace.JobRecord{
		rec(trace.ExitSuccess, trace.Other, 1, 3600),        // mature, 1 GPUh
		rec(trace.ExitSuccess, trace.Other, 2, 3600),        // mature, 2 GPUh
		rec(trace.ExitCancelled, trace.Other, 1, 7200),      // exploratory, 2 GPUh
		rec(trace.ExitTimeout, trace.Interactive, 1, 43200), // IDE, 12 GPUh
		rec(trace.ExitFailed, trace.Batch, 1, 1800),         // development, 0.5 GPUh
	}
	b := Account(jobs)
	if b.Total != 5 {
		t.Fatalf("total = %d", b.Total)
	}
	if b.Jobs[trace.Mature] != 2 || b.Jobs[trace.IDE] != 1 {
		t.Fatalf("jobs = %v", b.Jobs)
	}
	if b.JobShare(trace.Mature) != 0.4 {
		t.Fatalf("mature share = %v", b.JobShare(trace.Mature))
	}
	wantTotal := 1.0 + 2 + 2 + 12 + 0.5
	if b.TotalGPUHours != wantTotal {
		t.Fatalf("total hours = %v", b.TotalGPUHours)
	}
	if got := b.HourShare(trace.IDE); got != 12/wantTotal {
		t.Fatalf("IDE hour share = %v", got)
	}
}

func TestAccountEmpty(t *testing.T) {
	b := Account(nil)
	if b.JobShare(trace.Mature) != 0 || b.HourShare(trace.IDE) != 0 {
		t.Fatal("empty breakdown shares not zero")
	}
}

func TestGroupByCategory(t *testing.T) {
	jobs := []*trace.JobRecord{
		rec(trace.ExitSuccess, trace.Other, 1, 60),
		rec(trace.ExitFailed, trace.Other, 1, 60),
		rec(trace.ExitFailed, trace.Batch, 1, 60),
	}
	g := GroupByCategory(jobs)
	if len(g[trace.Mature]) != 1 || len(g[trace.Development]) != 2 {
		t.Fatalf("groups: mature=%d dev=%d", len(g[trace.Mature]), len(g[trace.Development]))
	}
}

// Property: Account conserves jobs and hours across categories.
func TestAccountConservationProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		var jobs []*trace.JobRecord
		for _, v := range raw {
			jobs = append(jobs, rec(trace.ExitStatus(v%4), trace.Interface(v/4%4), int(v%3)+1, float64(v)*10))
		}
		b := Account(jobs)
		if b.Total != len(jobs) {
			return false
		}
		sumJobs := 0
		var sumHours float64
		for c := trace.Category(0); c < trace.NumCategories; c++ {
			sumJobs += b.Jobs[c]
			sumHours += b.GPUHours[c]
		}
		return sumJobs == b.Total && sumHours-b.TotalGPUHours < 1e-9 && b.TotalGPUHours-sumHours < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
