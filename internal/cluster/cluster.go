// Package cluster models the Supercloud hardware inventory (Table I of the
// paper): 224 dual-socket Xeon nodes with two V100 GPUs each, 384 GB of node
// RAM, local plus shared storage, and a two-layer partial fat-tree
// interconnect. It exposes the resource accounting the scheduler needs —
// per-node free cores/memory/GPUs, allocation and release with hard
// conservation invariants, and density-aware placement for multi-GPU jobs.
//
// Placement is backed by a free-capacity index: per-node free-GPU buckets,
// an idle-node set, a shared-CPU set, and cluster-wide aggregate counters.
// TryAllocate rejects infeasible requests in O(1) against the aggregates and
// places feasible ones by walking only the nodes that can contribute, in
// exactly the order the original full-scan algorithm visited them — the
// indexed and naive placements are node-for-node identical (enforced by
// EnableAudit and the allocation-equivalence tests), so scheduling outcomes
// and golden figures are unchanged by the index.
package cluster

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/gpu"
)

// Config describes a cluster to build. The zero value is not useful; use
// SupercloudConfig for the paper's system or construct explicitly for tests.
type Config struct {
	Nodes        int
	CoresPerNode int
	MemGBPerNode float64
	GPUsPerNode  int
	GPUSpec      gpu.Spec
	// NodesPerRack controls the topology distance metric used by dense
	// placement; nodes in one rack are "neighbors".
	NodesPerRack int
	// Interconnect and network are descriptive (Table I rendering).
	Interconnect string
	Network      string
	LocalSSDTB   float64
	LocalHDDTB   float64
	SharedSSDTB  float64
}

// SupercloudConfig returns the paper's Table I configuration.
func SupercloudConfig() Config {
	return Config{
		Nodes:        224,
		CoresPerNode: 40, // two Xeon Gold 6248, 20 cores each
		MemGBPerNode: 384,
		GPUsPerNode:  2,
		GPUSpec:      gpu.V100(),
		NodesPerRack: 16,
		Interconnect: "100 Gb/s Omnipath two-layer partial fat-tree",
		Network:      "25 Gb/s Ethernet CX-4",
		LocalSSDTB:   1,
		LocalHDDTB:   3.8,
		SharedSSDTB:  873,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 1:
		return fmt.Errorf("cluster: need at least one node, got %d", c.Nodes)
	case c.CoresPerNode < 1:
		return fmt.Errorf("cluster: need at least one core per node, got %d", c.CoresPerNode)
	case c.MemGBPerNode <= 0:
		return fmt.Errorf("cluster: node memory must be positive, got %v", c.MemGBPerNode)
	case c.GPUsPerNode < 0:
		return fmt.Errorf("cluster: negative GPUs per node: %d", c.GPUsPerNode)
	}
	return nil
}

// TotalGPUs returns Nodes × GPUsPerNode.
func (c Config) TotalGPUs() int { return c.Nodes * c.GPUsPerNode }

// TotalCores returns Nodes × CoresPerNode.
func (c Config) TotalCores() int { return c.Nodes * c.CoresPerNode }

// memEps absorbs the floating-point drift of releasing memory by addition
// when deciding whether a node is back to fully idle.
const memEps = 1e-9

// NodeState is the availability state of a node: the fault-injection
// machinery moves nodes Up → Draining → Down → Up, and only Up nodes are
// visible to placement.
type NodeState int

// The node availability states.
const (
	// NodeUp is the normal serving state.
	NodeUp NodeState = iota
	// NodeDraining no longer accepts placements; existing allocations may
	// still be running (scheduled drain) or being force-released (crash).
	NodeDraining
	// NodeDown is out of service entirely; the node must be empty.
	NodeDown
)

// String returns the state name.
func (s NodeState) String() string {
	switch s {
	case NodeUp:
		return "up"
	case NodeDraining:
		return "draining"
	case NodeDown:
		return "down"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Node is one compute node's live resource state.
type Node struct {
	Index     int
	freeCores int
	freeMemGB float64
	freeGPUs  int // unallocated devices; kept in lockstep with devices
	devices   []*gpu.Device
	exclusive int64     // job holding the node exclusively, or none
	state     NodeState // availability; non-Up nodes leave the index entirely
	allocN    int       // live shares on this node (drain-completion tracking)

	// Index membership caches, owned by Cluster.reindex.
	bucket int // gpuBuckets slot currently holding this node; 0 = none
	inIdle bool
	inCPU  bool
}

// noExclusive is the sentinel for Node.exclusive.
const noExclusive int64 = -1

// FreeCores returns the unallocated core count.
func (n *Node) FreeCores() int { return n.freeCores }

// FreeMemGB returns the unallocated memory.
func (n *Node) FreeMemGB() float64 { return n.freeMemGB }

// FreeGPUs returns the number of unallocated GPUs (O(1), maintained as a
// counter alongside the device states).
func (n *Node) FreeGPUs() int { return n.freeGPUs }

// Exclusive reports whether a job holds the node exclusively.
func (n *Node) Exclusive() bool { return n.exclusive != noExclusive }

// State returns the node's availability state.
func (n *Node) State() NodeState { return n.state }

// shared reports whether the node participates in the shared aggregates:
// up and not exclusively held.
func (n *Node) shared() bool { return n.state == NodeUp && !n.Exclusive() }

// nodeSet is an ordered set of node indices backed by a bitmap: O(1) add,
// remove and membership, ascending-index iteration at ~64 nodes per word.
// Ascending order matters — it is the tie-break the placement algorithms
// share with the pre-index full scan.
type nodeSet struct {
	words []uint64
	n     int
}

func newNodeSet(capacity int) nodeSet {
	return nodeSet{words: make([]uint64, (capacity+63)/64)}
}

func (s *nodeSet) add(i int) {
	w, b := i>>6, uint64(1)<<(uint(i)&63)
	if s.words[w]&b == 0 {
		s.words[w] |= b
		s.n++
	}
}

func (s *nodeSet) remove(i int) {
	w, b := i>>6, uint64(1)<<(uint(i)&63)
	if s.words[w]&b != 0 {
		s.words[w] &^= b
		s.n--
	}
}

func (s *nodeSet) contains(i int) bool {
	return s.words[i>>6]&(uint64(1)<<(uint(i)&63)) != 0
}

// each calls fn for every member in ascending index order until fn returns
// false.
func (s *nodeSet) each(fn func(i int) bool) {
	for w, word := range s.words {
		for word != 0 {
			i := w<<6 + bits.TrailingZeros64(word)
			if !fn(i) {
				return
			}
			word &= word - 1
		}
	}
}

// Cluster is the full machine. It is not safe for concurrent mutation; the
// discrete-event scheduler drives it single-threaded, mirroring a Slurm
// controller.
type Cluster struct {
	cfg   Config
	nodes []*Node
	// allocations tracks live grants by job ID so Release can be total.
	allocations map[int64]*Allocation

	// Free-capacity index. The aggregates cover non-exclusive nodes only
	// (exclusive nodes are invisible to every placement path), so they give
	// O(1) upper-bound rejection; the sets give scan-free enumeration in the
	// exact visit order of the pre-index algorithm.
	freeGPUsShared  int       // free devices on non-exclusive nodes
	freeCoresShared int       // free cores on non-exclusive nodes
	gpuBuckets      []nodeSet // [g]: non-exclusive nodes with exactly g free GPUs, g >= 1
	idleSet         nodeSet   // fully idle nodes (exclusive grants draw from here)
	cpuSet          nodeSet   // non-exclusive nodes with freeCores > 0

	// Availability accounting (fault injection): nodes and devices currently
	// in the Down state.
	downNodes int
	downGPUs  int

	// planBuf is reusable scratch for the plan-then-commit allocation paths.
	planBuf []planShare
	// audit cross-checks every allocation against the naive full-scan
	// reference; see EnableAudit.
	audit bool
}

// planShare is one node's contribution in a not-yet-committed placement.
type planShare struct {
	node  *Node
	gpus  int
	cores int
	mem   float64
}

// New builds a cluster from cfg.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, allocations: make(map[int64]*Allocation)}
	c.gpuBuckets = make([]nodeSet, cfg.GPUsPerNode+1)
	for g := range c.gpuBuckets {
		c.gpuBuckets[g] = newNodeSet(cfg.Nodes)
	}
	c.idleSet = newNodeSet(cfg.Nodes)
	c.cpuSet = newNodeSet(cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		n := &Node{
			Index:     i,
			freeCores: cfg.CoresPerNode,
			freeMemGB: cfg.MemGBPerNode,
			freeGPUs:  cfg.GPUsPerNode,
			exclusive: noExclusive,
		}
		for g := 0; g < cfg.GPUsPerNode; g++ {
			n.devices = append(n.devices, gpu.NewDevice(gpu.DeviceID{Node: i, Index: g}, cfg.GPUSpec))
		}
		c.nodes = append(c.nodes, n)
		c.freeGPUsShared += n.freeGPUs
		c.freeCoresShared += n.freeCores
		c.reindex(n)
	}
	return c, nil
}

// EnableAudit makes every TryAllocate cross-check the indexed placement
// against the naive full-scan reference implementation (and the cluster
// invariants) before committing, turning any divergence into a hard error.
// The scheduler property tests run with this on; production runs leave it
// off — the audit re-scans every node per allocation.
func (c *Cluster) EnableAudit() { c.audit = true }

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Nodes returns the live node list (shared, not copied; callers must not
// mutate).
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Request is a resource ask, in Slurm terms.
type Request struct {
	JobID int64
	// GPUs requested across the whole job.
	GPUs int
	// CoresPerGPU is the host-CPU slice accompanying each GPU (GPU jobs
	// "request fewer CPU cores and memory"; the paper's co-location insight).
	// For CPU-only jobs, Cores below is used instead.
	CoresPerGPU int
	MemGBPerGPU float64
	// Cores and MemGB are the totals for CPU-only jobs (GPUs == 0).
	Cores int
	MemGB float64
	// Exclusive requests whole nodes (typical of the paper's CPU jobs, which
	// "usually request all cores and full memory of the nodes"). Combined
	// with GPUs > 0 it reserves ceil(GPUs/GPUsPerNode) idle nodes outright —
	// the non-colocated ablation.
	Exclusive bool
	// AvoidGPUNodes keeps a CPU request off nodes that currently have free
	// GPUs. The scheduler sets it while a reservation is accumulating freed
	// devices for an aged GPU job, so CPU jobs cannot strand the reserved
	// GPUs by draining those nodes' cores and memory. Exclusive CPU requests
	// are refused outright while it is set (on a machine with GPUs, every
	// fully idle node has free GPUs). Ignored for GPU requests.
	AvoidGPUNodes bool
}

// NodeShare is the slice of one node granted to a job.
type NodeShare struct {
	Node   int
	Cores  int
	MemGB  float64
	GPUIDs []gpu.DeviceID
}

// Allocation is a granted request.
type Allocation struct {
	JobID  int64
	Shares []NodeShare
}

// GPUs returns every granted device ID.
func (a *Allocation) GPUs() []gpu.DeviceID {
	var ids []gpu.DeviceID
	for _, s := range a.Shares {
		ids = append(ids, s.GPUIDs...)
	}
	return ids
}

// NodeSpan returns the number of distinct nodes in the allocation.
func (a *Allocation) NodeSpan() int { return len(a.Shares) }

// ErrInsufficient is returned by TryAllocate when the request cannot be
// satisfied right now; the scheduler keeps the job queued.
type ErrInsufficient struct{ Req Request }

// Error implements error.
func (e ErrInsufficient) Error() string {
	return fmt.Sprintf("cluster: insufficient resources for job %d (gpus=%d cores=%d excl=%v)",
		e.Req.JobID, e.Req.GPUs, e.Req.Cores, e.Req.Exclusive)
}

// TryAllocate attempts to grant req. GPU jobs are placed as densely as
// possible — nodes with the most free GPUs first, then rack-adjacent nodes —
// matching the paper's §V observation that multi-GPU jobs are "placed as
// densely as possible, either on the same node or on neighboring nodes".
// CPU-only exclusive jobs take whole free nodes. On success the allocation
// is recorded and returned; on resource shortage it returns ErrInsufficient.
func (c *Cluster) TryAllocate(req Request) (*Allocation, error) {
	if _, dup := c.allocations[req.JobID]; dup {
		return nil, fmt.Errorf("cluster: job %d already holds an allocation", req.JobID)
	}
	if req.GPUs < 0 || req.Cores < 0 || req.CoresPerGPU < 0 {
		return nil, fmt.Errorf("cluster: negative resource in request %+v", req)
	}
	if c.audit {
		return c.auditAllocate(req)
	}
	return c.tryAllocate(req)
}

// tryAllocate dispatches to the four placement paths and records the grant.
func (c *Cluster) tryAllocate(req Request) (*Allocation, error) {
	var alloc *Allocation
	var err error
	if req.GPUs > 0 && req.Exclusive {
		alloc, err = c.allocateExclusiveGPUJob(req)
	} else if req.GPUs > 0 {
		alloc, err = c.allocateGPUJob(req)
	} else if req.Exclusive {
		alloc, err = c.allocateExclusiveCPUJob(req)
	} else {
		alloc, err = c.allocateSharedCPUJob(req)
	}
	if err != nil {
		return nil, err
	}
	c.allocations[req.JobID] = alloc
	return alloc, nil
}

// auditAllocate runs the naive full-scan planner, then the indexed path, and
// fails hard on any divergence in outcome or placement.
func (c *Cluster) auditAllocate(req Request) (*Allocation, error) {
	wantShares, wantErr := c.naivePlan(req)
	alloc, err := c.tryAllocate(req)
	if (err == nil) != (wantErr == nil) {
		return nil, fmt.Errorf("cluster: audit divergence for job %d: indexed err=%v, naive err=%v",
			req.JobID, err, wantErr)
	}
	if err != nil {
		return nil, err
	}
	if !sharesEqual(alloc.Shares, wantShares) {
		return nil, fmt.Errorf("cluster: audit divergence for job %d:\nindexed: %+v\nnaive:   %+v",
			req.JobID, alloc.Shares, wantShares)
	}
	if ierr := c.CheckInvariants(); ierr != nil {
		return nil, fmt.Errorf("cluster: audit after job %d: %w", req.JobID, ierr)
	}
	return alloc, nil
}

// sharesEqual compares two placements node-for-node, device-for-device.
func sharesEqual(a, b []NodeShare) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Node != b[i].Node || a[i].Cores != b[i].Cores || a[i].MemGB != b[i].MemGB ||
			len(a[i].GPUIDs) != len(b[i].GPUIDs) {
			return false
		}
		for j := range a[i].GPUIDs {
			if a[i].GPUIDs[j] != b[i].GPUIDs[j] {
				return false
			}
		}
	}
	return true
}

// allocateGPUJob grants a GPU job with dense placement, enumerating only
// nodes with free devices via the GPU buckets. The visit order reproduces
// the pre-index sort exactly: if the whole job fits on one candidate node,
// best-fit (fullest fitting nodes first: buckets req..G ascending, then the
// too-small buckets ascending); otherwise widest-first (buckets G..1
// descending). Ties break toward lower node index — the buckets iterate
// ascending natively. Placement is planned read-only and committed only when
// complete, so shortage needs no rollback.
func (c *Cluster) allocateGPUJob(req Request) (*Allocation, error) {
	if req.GPUs > c.freeGPUsShared {
		return nil, ErrInsufficient{Req: req} // O(1): not enough devices exist
	}
	ok := func(n *Node) bool {
		// The node must be able to host at least one GPU's CPU slice.
		return n.freeCores >= req.CoresPerGPU && n.freeMemGB >= req.MemGBPerGPU
	}
	maxG := c.cfg.GPUsPerNode
	fitsOneNode := false
	if req.GPUs <= maxG {
		for g := req.GPUs; g <= maxG && !fitsOneNode; g++ {
			c.gpuBuckets[g].each(func(i int) bool {
				if ok(c.nodes[i]) {
					fitsOneNode = true
					return false
				}
				return true
			})
		}
	}
	plan := c.planBuf[:0]
	remaining := req.GPUs
	visit := func(i int) bool {
		n := c.nodes[i]
		if !ok(n) {
			return true
		}
		take := remaining
		if take > n.freeGPUs {
			take = n.freeGPUs
		}
		// Respect the per-GPU CPU slice on this node.
		if req.CoresPerGPU > 0 {
			if m := n.freeCores / req.CoresPerGPU; take > m {
				take = m
			}
		}
		if req.MemGBPerGPU > 0 {
			if m := int(n.freeMemGB / req.MemGBPerGPU); take > m {
				take = m
			}
		}
		if take <= 0 {
			return true
		}
		plan = append(plan, planShare{node: n, gpus: take, cores: take * req.CoresPerGPU,
			mem: float64(take) * req.MemGBPerGPU})
		remaining -= take
		return remaining > 0
	}
	if fitsOneNode {
		for g := req.GPUs; g <= maxG && remaining > 0; g++ {
			c.gpuBuckets[g].each(visit)
		}
		for g := 1; g < req.GPUs && remaining > 0; g++ {
			c.gpuBuckets[g].each(visit)
		}
	} else {
		for g := maxG; g >= 1 && remaining > 0; g-- {
			c.gpuBuckets[g].each(visit)
		}
	}
	c.planBuf = plan[:0] // retain grown capacity for the next request
	if remaining > 0 {
		return nil, ErrInsufficient{Req: req}
	}
	alloc := &Allocation{JobID: req.JobID, Shares: make([]NodeShare, 0, len(plan))}
	for _, p := range plan {
		share := NodeShare{Node: p.node.Index, Cores: p.cores, MemGB: p.mem,
			GPUIDs: make([]gpu.DeviceID, 0, p.gpus)}
		granted := 0
		for _, d := range p.node.devices {
			if granted == p.gpus {
				break
			}
			if d.Free() {
				if err := d.Allocate(req.JobID); err != nil {
					return nil, err
				}
				share.GPUIDs = append(share.GPUIDs, d.ID)
				granted++
			}
		}
		c.book(p.node, p.cores, p.mem, p.gpus)
		p.node.allocN++
		alloc.Shares = append(alloc.Shares, share)
	}
	return alloc, nil
}

// allocateExclusiveCPUJob grants whole free nodes until cores are covered,
// drawing from the idle-node set.
func (c *Cluster) allocateExclusiveCPUJob(req Request) (*Allocation, error) {
	if req.AvoidGPUNodes && c.cfg.GPUsPerNode > 0 {
		// A reservation is holding freed GPUs; every fully idle node has
		// free GPUs, so whole-node grants would strand them.
		return nil, ErrInsufficient{Req: req}
	}
	nodesNeeded := (req.Cores + c.cfg.CoresPerNode - 1) / c.cfg.CoresPerNode
	if nodesNeeded < 1 {
		nodesNeeded = 1
	}
	if c.idleSet.n < nodesNeeded {
		return nil, ErrInsufficient{Req: req}
	}
	free := c.takeIdleNodes(nodesNeeded)
	alloc := &Allocation{JobID: req.JobID, Shares: make([]NodeShare, 0, nodesNeeded)}
	for _, n := range free {
		c.markExclusive(n, req.JobID)
		n.allocN++
		alloc.Shares = append(alloc.Shares, NodeShare{Node: n.Index, Cores: c.cfg.CoresPerNode, MemGB: c.cfg.MemGBPerNode})
	}
	return alloc, nil
}

// takeIdleNodes snapshots the first want members of the idle set in index
// order. A snapshot, not a live iteration: callers mutate membership while
// consuming the result.
func (c *Cluster) takeIdleNodes(want int) []*Node {
	free := make([]*Node, 0, want)
	c.idleSet.each(func(i int) bool {
		free = append(free, c.nodes[i])
		return len(free) < want
	})
	return free
}

// allocateExclusiveGPUJob grants whole idle nodes for a GPU job — the
// -colocate=false ablation, where GPU jobs reserve nodes outright like a
// traditional HPC scheduler. The job is handed exactly req.GPUs devices; any
// further devices on its nodes are reserved but idle.
func (c *Cluster) allocateExclusiveGPUJob(req Request) (*Allocation, error) {
	perNode := c.cfg.GPUsPerNode
	if perNode < 1 {
		return nil, ErrInsufficient{Req: req}
	}
	nodesNeeded := (req.GPUs + perNode - 1) / perNode
	if c.idleSet.n < nodesNeeded {
		return nil, ErrInsufficient{Req: req}
	}
	free := c.takeIdleNodes(nodesNeeded)
	alloc := &Allocation{JobID: req.JobID, Shares: make([]NodeShare, 0, nodesNeeded)}
	remaining := req.GPUs
	for _, n := range free {
		c.markExclusive(n, req.JobID)
		share := NodeShare{Node: n.Index, Cores: c.cfg.CoresPerNode, MemGB: c.cfg.MemGBPerNode}
		take := 0
		for _, d := range n.devices {
			if remaining == 0 {
				break
			}
			if err := d.Allocate(req.JobID); err != nil {
				return nil, err
			}
			share.GPUIDs = append(share.GPUIDs, d.ID)
			remaining--
			take++
		}
		c.book(n, 0, 0, take)
		n.allocN++
		alloc.Shares = append(alloc.Shares, share)
	}
	return alloc, nil
}

// allocateSharedCPUJob grants core/memory slices on shared nodes, first-fit
// over the shared-CPU set (non-exclusive nodes with free cores, ascending
// index — the pre-index scan order). Planned read-only, committed when
// covered; shortage needs no rollback.
func (c *Cluster) allocateSharedCPUJob(req Request) (*Allocation, error) {
	if req.Cores > c.freeCoresShared {
		return nil, ErrInsufficient{Req: req} // O(1): not enough cores exist
	}
	plan := c.planBuf[:0]
	coresLeft, memLeft := req.Cores, req.MemGB
	c.cpuSet.each(func(i int) bool {
		n := c.nodes[i]
		if req.AvoidGPUNodes && n.freeGPUs > 0 {
			return true
		}
		takeCores := coresLeft
		if takeCores > n.freeCores {
			takeCores = n.freeCores
		}
		takeMem := memLeft
		if takeMem > n.freeMemGB {
			takeMem = n.freeMemGB
		}
		if takeCores <= 0 && takeMem <= 0 {
			return true
		}
		if takeCores < 0 {
			takeCores = 0
		}
		if takeMem < 0 {
			takeMem = 0
		}
		plan = append(plan, planShare{node: n, cores: takeCores, mem: takeMem})
		coresLeft -= takeCores
		memLeft -= takeMem
		return coresLeft > 0 || memLeft > 0
	})
	c.planBuf = plan[:0]
	if coresLeft > 0 || memLeft > 0 {
		return nil, ErrInsufficient{Req: req}
	}
	alloc := &Allocation{JobID: req.JobID, Shares: make([]NodeShare, 0, len(plan))}
	for _, p := range plan {
		c.book(p.node, p.cores, p.mem, 0)
		p.node.allocN++
		alloc.Shares = append(alloc.Shares, NodeShare{Node: p.node.Index, Cores: p.cores, MemGB: p.mem})
	}
	return alloc, nil
}

// book debits (or, with negative deltas, credits) a node's free resources
// and keeps the capacity index coherent. Exclusive and non-up nodes are
// outside the shared aggregates, so only their per-node counters move.
func (c *Cluster) book(n *Node, cores int, mem float64, gpus int) {
	n.freeCores -= cores
	n.freeMemGB -= mem
	n.freeGPUs -= gpus
	if n.shared() {
		c.freeCoresShared -= cores
		c.freeGPUsShared -= gpus
	}
	c.reindex(n)
}

// markExclusive hands the whole node to jobID: its remaining free capacity
// leaves the shared aggregates and the node drains to zero. Only reachable
// for idle (hence up) nodes.
func (c *Cluster) markExclusive(n *Node, jobID int64) {
	if n.state == NodeUp {
		c.freeCoresShared -= n.freeCores
		c.freeGPUsShared -= n.freeGPUs
	}
	n.exclusive = jobID
	n.freeCores = 0
	n.freeMemGB = 0
	c.reindex(n)
}

// reindex recomputes the node's index memberships from its raw state. Nodes
// that are not up belong to no set — they are invisible to placement.
func (c *Cluster) reindex(n *Node) {
	bucket := 0
	if n.shared() && n.freeGPUs > 0 {
		bucket = n.freeGPUs
	}
	if bucket != n.bucket {
		if n.bucket > 0 {
			c.gpuBuckets[n.bucket].remove(n.Index)
		}
		if bucket > 0 {
			c.gpuBuckets[bucket].add(n.Index)
		}
		n.bucket = bucket
	}
	idle := n.shared() && n.freeCores == c.cfg.CoresPerNode &&
		n.freeMemGB >= c.cfg.MemGBPerNode-memEps && n.freeGPUs == len(n.devices)
	if idle != n.inIdle {
		if idle {
			c.idleSet.add(n.Index)
		} else {
			c.idleSet.remove(n.Index)
		}
		n.inIdle = idle
	}
	cpu := n.shared() && n.freeCores > 0
	if cpu != n.inCPU {
		if cpu {
			c.cpuSet.add(n.Index)
		} else {
			c.cpuSet.remove(n.Index)
		}
		n.inCPU = cpu
	}
}

// BeginDrain moves an up node to draining: it leaves the capacity index and
// the shared aggregates immediately, so no further placements land on it.
// Existing allocations keep running (scheduled drain) or are force-released
// by the caller (crash).
func (c *Cluster) BeginDrain(i int) error {
	n := c.nodes[i]
	if n.state != NodeUp {
		return fmt.Errorf("cluster: cannot drain node %d from state %s", i, n.state)
	}
	if !n.Exclusive() {
		c.freeCoresShared -= n.freeCores
		c.freeGPUsShared -= n.freeGPUs
	}
	n.state = NodeDraining
	c.reindex(n)
	return nil
}

// SetDown completes a drain: the node must hold no allocations (every job
// finished or was force-released). Its capacity is counted as lost until
// SetUp returns it to service.
func (c *Cluster) SetDown(i int) error {
	n := c.nodes[i]
	if n.state != NodeDraining {
		return fmt.Errorf("cluster: cannot down node %d from state %s", i, n.state)
	}
	if n.allocN != 0 || n.Exclusive() {
		return fmt.Errorf("cluster: node %d still holds %d allocations", i, n.allocN)
	}
	if n.freeCores != c.cfg.CoresPerNode || n.freeGPUs != len(n.devices) {
		return fmt.Errorf("cluster: node %d not fully free at down transition", i)
	}
	n.state = NodeDown
	c.downNodes++
	c.downGPUs += len(n.devices)
	c.reindex(n)
	return nil
}

// SetUp returns a repaired node to service: its (full) free capacity rejoins
// the shared aggregates and the index.
func (c *Cluster) SetUp(i int) error {
	n := c.nodes[i]
	if n.state != NodeDown {
		return fmt.Errorf("cluster: cannot restore node %d from state %s", i, n.state)
	}
	n.state = NodeUp
	c.downNodes--
	c.downGPUs -= len(n.devices)
	c.freeCoresShared += n.freeCores
	c.freeGPUsShared += n.freeGPUs
	c.reindex(n)
	return nil
}

// NodeState returns node i's availability state.
func (c *Cluster) NodeState(i int) NodeState { return c.nodes[i].state }

// NodeAllocations returns the number of live shares on node i.
func (c *Cluster) NodeAllocations(i int) int { return c.nodes[i].allocN }

// DownNodes returns the number of nodes currently down.
func (c *Cluster) DownNodes() int { return c.downNodes }

// DownGPUs returns the number of devices on down nodes — capacity currently
// lost to failures.
func (c *Cluster) DownGPUs() int { return c.downGPUs }

// JobsOnNode returns the IDs of every job holding a share on node i, in
// ascending order — the deterministic kill order for a node crash.
func (c *Cluster) JobsOnNode(i int) []int64 {
	var ids []int64
	for id, alloc := range c.allocations {
		for _, s := range alloc.Shares {
			if s.Node == i {
				ids = append(ids, id)
				break
			}
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

// Release returns a job's resources. It errors if the job holds nothing —
// a double release means the scheduler lost track of state.
func (c *Cluster) Release(jobID int64) error {
	alloc, ok := c.allocations[jobID]
	if !ok {
		return fmt.Errorf("cluster: job %d holds no allocation", jobID)
	}
	for _, s := range alloc.Shares {
		n := c.nodes[s.Node]
		n.allocN--
		if n.exclusive == jobID {
			for _, id := range s.GPUIDs {
				if err := n.devices[id.Index].Release(); err != nil {
					return err
				}
			}
			n.freeGPUs += len(s.GPUIDs)
			n.exclusive = noExclusive
			n.freeCores = c.cfg.CoresPerNode
			n.freeMemGB = c.cfg.MemGBPerNode
			if n.state == NodeUp {
				c.freeCoresShared += n.freeCores
				c.freeGPUsShared += n.freeGPUs
			}
			c.reindex(n)
			continue
		}
		for _, id := range s.GPUIDs {
			if err := n.devices[id.Index].Release(); err != nil {
				return err
			}
		}
		c.book(n, -s.Cores, -s.MemGB, -len(s.GPUIDs))
	}
	delete(c.allocations, jobID)
	return nil
}

// Device returns the device with the given ID.
func (c *Cluster) Device(id gpu.DeviceID) *gpu.Device {
	return c.nodes[id.Node].devices[id.Index]
}

// FreeGPUs returns the cluster-wide count of unallocated GPUs on
// non-exclusive nodes — the devices a colocated GPU job could reach.
func (c *Cluster) FreeGPUs() int { return c.freeGPUsShared }

// LiveAllocations returns the number of outstanding allocations.
func (c *Cluster) LiveAllocations() int { return len(c.allocations) }

// CheckInvariants verifies resource conservation — free counts within
// bounds, no device allocated to an unknown job, exclusive nodes fully
// drained, down nodes empty — and that the capacity index (per-node
// counters, bucket/set memberships, shared aggregates, availability
// counters) matches a from-scratch recomputation. It is called by tests and,
// under EnableAudit, after every allocation.
func (c *Cluster) CheckInvariants() error {
	wantGPUs, wantCores := 0, 0
	wantDownNodes, wantDownGPUs := 0, 0
	shareCount := make(map[int]int)
	for _, alloc := range c.allocations {
		for _, s := range alloc.Shares {
			shareCount[s.Node]++
		}
	}
	for _, n := range c.nodes {
		if n.freeCores < 0 || n.freeCores > c.cfg.CoresPerNode {
			return fmt.Errorf("cluster: node %d free cores %d out of range", n.Index, n.freeCores)
		}
		if n.freeMemGB < -memEps || n.freeMemGB > c.cfg.MemGBPerNode+memEps {
			return fmt.Errorf("cluster: node %d free mem %v out of range", n.Index, n.freeMemGB)
		}
		fg := 0
		for _, d := range n.devices {
			if d.Free() {
				fg++
				continue
			}
			if _, ok := c.allocations[d.AllocatedTo()]; !ok {
				return fmt.Errorf("cluster: device %s allocated to unknown job %d", d.ID, d.AllocatedTo())
			}
		}
		if fg != n.freeGPUs {
			return fmt.Errorf("cluster: node %d free-GPU counter %d, devices say %d", n.Index, n.freeGPUs, fg)
		}
		if n.Exclusive() && (n.freeCores != 0 || n.freeMemGB != 0) {
			return fmt.Errorf("cluster: exclusive node %d not fully drained", n.Index)
		}
		if n.allocN != shareCount[n.Index] {
			return fmt.Errorf("cluster: node %d share counter %d, allocations say %d",
				n.Index, n.allocN, shareCount[n.Index])
		}
		if n.state == NodeDown {
			wantDownNodes++
			wantDownGPUs += len(n.devices)
			if n.allocN != 0 || n.Exclusive() || n.freeCores != c.cfg.CoresPerNode || n.freeGPUs != len(n.devices) {
				return fmt.Errorf("cluster: down node %d is not empty", n.Index)
			}
		}
		if n.shared() {
			wantGPUs += n.freeGPUs
			wantCores += n.freeCores
		}
		wantBucket := 0
		if n.shared() && n.freeGPUs > 0 {
			wantBucket = n.freeGPUs
		}
		if n.bucket != wantBucket || (wantBucket > 0 && !c.gpuBuckets[wantBucket].contains(n.Index)) {
			return fmt.Errorf("cluster: node %d in GPU bucket %d, want %d", n.Index, n.bucket, wantBucket)
		}
		wantIdle := n.shared() && n.freeCores == c.cfg.CoresPerNode &&
			n.freeMemGB >= c.cfg.MemGBPerNode-memEps && n.freeGPUs == len(n.devices)
		if n.inIdle != wantIdle || c.idleSet.contains(n.Index) != wantIdle {
			return fmt.Errorf("cluster: node %d idle-set membership %v, want %v", n.Index, n.inIdle, wantIdle)
		}
		wantCPU := n.shared() && n.freeCores > 0
		if n.inCPU != wantCPU || c.cpuSet.contains(n.Index) != wantCPU {
			return fmt.Errorf("cluster: node %d cpu-set membership %v, want %v", n.Index, n.inCPU, wantCPU)
		}
	}
	if wantGPUs != c.freeGPUsShared {
		return fmt.Errorf("cluster: shared free-GPU aggregate %d, nodes say %d", c.freeGPUsShared, wantGPUs)
	}
	if wantCores != c.freeCoresShared {
		return fmt.Errorf("cluster: shared free-core aggregate %d, nodes say %d", c.freeCoresShared, wantCores)
	}
	if wantDownNodes != c.downNodes || wantDownGPUs != c.downGPUs {
		return fmt.Errorf("cluster: down counters nodes=%d gpus=%d, states say nodes=%d gpus=%d",
			c.downNodes, c.downGPUs, wantDownNodes, wantDownGPUs)
	}
	return nil
}
