// Package cluster models the Supercloud hardware inventory (Table I of the
// paper): 224 dual-socket Xeon nodes with two V100 GPUs each, 384 GB of node
// RAM, local plus shared storage, and a two-layer partial fat-tree
// interconnect. It exposes the resource accounting the scheduler needs —
// per-node free cores/memory/GPUs, allocation and release with hard
// conservation invariants, and density-aware placement for multi-GPU jobs.
package cluster

import (
	"fmt"

	"repro/internal/gpu"
)

// Config describes a cluster to build. The zero value is not useful; use
// SupercloudConfig for the paper's system or construct explicitly for tests.
type Config struct {
	Nodes        int
	CoresPerNode int
	MemGBPerNode float64
	GPUsPerNode  int
	GPUSpec      gpu.Spec
	// NodesPerRack controls the topology distance metric used by dense
	// placement; nodes in one rack are "neighbors".
	NodesPerRack int
	// Interconnect and network are descriptive (Table I rendering).
	Interconnect string
	Network      string
	LocalSSDTB   float64
	LocalHDDTB   float64
	SharedSSDTB  float64
}

// SupercloudConfig returns the paper's Table I configuration.
func SupercloudConfig() Config {
	return Config{
		Nodes:        224,
		CoresPerNode: 40, // two Xeon Gold 6248, 20 cores each
		MemGBPerNode: 384,
		GPUsPerNode:  2,
		GPUSpec:      gpu.V100(),
		NodesPerRack: 16,
		Interconnect: "100 Gb/s Omnipath two-layer partial fat-tree",
		Network:      "25 Gb/s Ethernet CX-4",
		LocalSSDTB:   1,
		LocalHDDTB:   3.8,
		SharedSSDTB:  873,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 1:
		return fmt.Errorf("cluster: need at least one node, got %d", c.Nodes)
	case c.CoresPerNode < 1:
		return fmt.Errorf("cluster: need at least one core per node, got %d", c.CoresPerNode)
	case c.MemGBPerNode <= 0:
		return fmt.Errorf("cluster: node memory must be positive, got %v", c.MemGBPerNode)
	case c.GPUsPerNode < 0:
		return fmt.Errorf("cluster: negative GPUs per node: %d", c.GPUsPerNode)
	}
	return nil
}

// TotalGPUs returns Nodes × GPUsPerNode.
func (c Config) TotalGPUs() int { return c.Nodes * c.GPUsPerNode }

// TotalCores returns Nodes × CoresPerNode.
func (c Config) TotalCores() int { return c.Nodes * c.CoresPerNode }

// Node is one compute node's live resource state.
type Node struct {
	Index     int
	freeCores int
	freeMemGB float64
	devices   []*gpu.Device
	exclusive int64 // job holding the node exclusively, or none
}

// noExclusive is the sentinel for Node.exclusive.
const noExclusive int64 = -1

// FreeCores returns the unallocated core count.
func (n *Node) FreeCores() int { return n.freeCores }

// FreeMemGB returns the unallocated memory.
func (n *Node) FreeMemGB() float64 { return n.freeMemGB }

// FreeGPUs returns the number of unallocated GPUs.
func (n *Node) FreeGPUs() int {
	k := 0
	for _, d := range n.devices {
		if d.Free() {
			k++
		}
	}
	return k
}

// Exclusive reports whether a job holds the node exclusively.
func (n *Node) Exclusive() bool { return n.exclusive != noExclusive }

// Cluster is the full machine. It is not safe for concurrent mutation; the
// discrete-event scheduler drives it single-threaded, mirroring a Slurm
// controller.
type Cluster struct {
	cfg   Config
	nodes []*Node
	// allocations tracks live grants by job ID so Release can be total.
	allocations map[int64]*Allocation
}

// New builds a cluster from cfg.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, allocations: make(map[int64]*Allocation)}
	for i := 0; i < cfg.Nodes; i++ {
		n := &Node{
			Index:     i,
			freeCores: cfg.CoresPerNode,
			freeMemGB: cfg.MemGBPerNode,
			exclusive: noExclusive,
		}
		for g := 0; g < cfg.GPUsPerNode; g++ {
			n.devices = append(n.devices, gpu.NewDevice(gpu.DeviceID{Node: i, Index: g}, cfg.GPUSpec))
		}
		c.nodes = append(c.nodes, n)
	}
	return c, nil
}

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Nodes returns the live node list (shared, not copied; callers must not
// mutate).
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Request is a resource ask, in Slurm terms.
type Request struct {
	JobID int64
	// GPUs requested across the whole job.
	GPUs int
	// CoresPerGPU is the host-CPU slice accompanying each GPU (GPU jobs
	// "request fewer CPU cores and memory"; the paper's co-location insight).
	// For CPU-only jobs, Cores below is used instead.
	CoresPerGPU int
	MemGBPerGPU float64
	// Cores and MemGB are the totals for CPU-only jobs (GPUs == 0).
	Cores int
	MemGB float64
	// Exclusive requests whole nodes (typical of the paper's CPU jobs, which
	// "usually request all cores and full memory of the nodes"). Combined
	// with GPUs > 0 it reserves ceil(GPUs/GPUsPerNode) idle nodes outright —
	// the non-colocated ablation.
	Exclusive bool
}

// NodeShare is the slice of one node granted to a job.
type NodeShare struct {
	Node   int
	Cores  int
	MemGB  float64
	GPUIDs []gpu.DeviceID
}

// Allocation is a granted request.
type Allocation struct {
	JobID  int64
	Shares []NodeShare
}

// GPUs returns every granted device ID.
func (a *Allocation) GPUs() []gpu.DeviceID {
	var ids []gpu.DeviceID
	for _, s := range a.Shares {
		ids = append(ids, s.GPUIDs...)
	}
	return ids
}

// NodeSpan returns the number of distinct nodes in the allocation.
func (a *Allocation) NodeSpan() int { return len(a.Shares) }

// ErrInsufficient is returned by TryAllocate when the request cannot be
// satisfied right now; the scheduler keeps the job queued.
type ErrInsufficient struct{ Req Request }

// Error implements error.
func (e ErrInsufficient) Error() string {
	return fmt.Sprintf("cluster: insufficient resources for job %d (gpus=%d cores=%d excl=%v)",
		e.Req.JobID, e.Req.GPUs, e.Req.Cores, e.Req.Exclusive)
}

// TryAllocate attempts to grant req. GPU jobs are placed as densely as
// possible — nodes with the most free GPUs first, then rack-adjacent nodes —
// matching the paper's §V observation that multi-GPU jobs are "placed as
// densely as possible, either on the same node or on neighboring nodes".
// CPU-only exclusive jobs take whole free nodes. On success the allocation
// is recorded and returned; on resource shortage it returns ErrInsufficient.
func (c *Cluster) TryAllocate(req Request) (*Allocation, error) {
	if _, dup := c.allocations[req.JobID]; dup {
		return nil, fmt.Errorf("cluster: job %d already holds an allocation", req.JobID)
	}
	if req.GPUs < 0 || req.Cores < 0 || req.CoresPerGPU < 0 {
		return nil, fmt.Errorf("cluster: negative resource in request %+v", req)
	}
	var alloc *Allocation
	var err error
	if req.GPUs > 0 && req.Exclusive {
		alloc, err = c.allocateExclusiveGPUJob(req)
	} else if req.GPUs > 0 {
		alloc, err = c.allocateGPUJob(req)
	} else if req.Exclusive {
		alloc, err = c.allocateExclusiveCPUJob(req)
	} else {
		alloc, err = c.allocateSharedCPUJob(req)
	}
	if err != nil {
		return nil, err
	}
	c.allocations[req.JobID] = alloc
	return alloc, nil
}

// allocateGPUJob grants a GPU job with dense placement.
func (c *Cluster) allocateGPUJob(req Request) (*Allocation, error) {
	type candidate struct {
		node     *Node
		freeGPUs int
	}
	var cands []candidate
	totalFree := 0
	for _, n := range c.nodes {
		if n.Exclusive() {
			continue
		}
		fg := n.FreeGPUs()
		if fg == 0 {
			continue
		}
		// The node must be able to host at least one GPU's CPU slice.
		if n.freeCores < req.CoresPerGPU || n.freeMemGB < req.MemGBPerGPU {
			continue
		}
		cands = append(cands, candidate{node: n, freeGPUs: fg})
		totalFree += fg
	}
	if totalFree < req.GPUs {
		return nil, ErrInsufficient{Req: req}
	}
	// Dense placement. If the whole job fits on one node, best-fit: prefer
	// the fullest node that still fits, keeping whole nodes free for larger
	// jobs. If the job must span nodes, widest-first: prefer nodes with the
	// most free GPUs to minimize the span. Ties break toward lower index
	// (rack adjacency via contiguous indices). Insertion-sort is fine:
	// candidate lists are a few hundred entries.
	fitsOneNode := false
	for _, cand := range cands {
		if cand.freeGPUs >= req.GPUs {
			fitsOneNode = true
			break
		}
	}
	better := func(a, b candidate) bool {
		if a.freeGPUs != b.freeGPUs {
			if fitsOneNode {
				// Best-fit: fewest free GPUs that still cover the request.
				aFits, bFits := a.freeGPUs >= req.GPUs, b.freeGPUs >= req.GPUs
				if aFits != bFits {
					return aFits
				}
				return a.freeGPUs < b.freeGPUs
			}
			return a.freeGPUs > b.freeGPUs
		}
		return a.node.Index < b.node.Index
	}
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && better(cands[j], cands[j-1]); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	alloc := &Allocation{JobID: req.JobID}
	remaining := req.GPUs
	for _, cand := range cands {
		if remaining == 0 {
			break
		}
		n := cand.node
		take := remaining
		if take > cand.freeGPUs {
			take = cand.freeGPUs
		}
		// Respect the per-GPU CPU slice on this node.
		maxByCores := take
		if req.CoresPerGPU > 0 {
			maxByCores = n.freeCores / req.CoresPerGPU
		}
		maxByMem := take
		if req.MemGBPerGPU > 0 {
			maxByMem = int(n.freeMemGB / req.MemGBPerGPU)
		}
		if take > maxByCores {
			take = maxByCores
		}
		if take > maxByMem {
			take = maxByMem
		}
		if take == 0 {
			continue
		}
		share := NodeShare{Node: n.Index, Cores: take * req.CoresPerGPU, MemGB: float64(take) * req.MemGBPerGPU}
		granted := 0
		for _, d := range n.devices {
			if granted == take {
				break
			}
			if d.Free() {
				if err := d.Allocate(req.JobID); err != nil {
					return nil, err
				}
				share.GPUIDs = append(share.GPUIDs, d.ID)
				granted++
			}
		}
		n.freeCores -= share.Cores
		n.freeMemGB -= share.MemGB
		alloc.Shares = append(alloc.Shares, share)
		remaining -= take
	}
	if remaining > 0 {
		// Roll back partial grants; the per-node CPU constraints blocked us.
		c.rollback(alloc)
		return nil, ErrInsufficient{Req: req}
	}
	return alloc, nil
}

// allocateExclusiveCPUJob grants whole free nodes until cores are covered.
func (c *Cluster) allocateExclusiveCPUJob(req Request) (*Allocation, error) {
	nodesNeeded := (req.Cores + c.cfg.CoresPerNode - 1) / c.cfg.CoresPerNode
	if nodesNeeded < 1 {
		nodesNeeded = 1
	}
	free := c.idleNodes(nodesNeeded)
	if len(free) < nodesNeeded {
		return nil, ErrInsufficient{Req: req}
	}
	alloc := &Allocation{JobID: req.JobID}
	for _, n := range free {
		n.exclusive = req.JobID
		n.freeCores = 0
		n.freeMemGB = 0
		alloc.Shares = append(alloc.Shares, NodeShare{Node: n.Index, Cores: c.cfg.CoresPerNode, MemGB: c.cfg.MemGBPerNode})
	}
	return alloc, nil
}

// idleNodes returns up to want fully idle nodes: no exclusive owner, every
// core, every byte of memory and every device free. Exclusive grants book the
// whole node, so a node that has leased even a memory-only slice to a shared
// job must not qualify — treating it as idle double-books the leased memory.
// Memory is compared with a tolerance because release restores it by
// floating-point addition.
func (c *Cluster) idleNodes(want int) []*Node {
	var free []*Node
	for _, n := range c.nodes {
		if n.Exclusive() || n.freeCores != c.cfg.CoresPerNode ||
			n.freeMemGB < c.cfg.MemGBPerNode-1e-9 || n.FreeGPUs() != len(n.devices) {
			continue
		}
		free = append(free, n)
		if len(free) == want {
			break
		}
	}
	return free
}

// allocateExclusiveGPUJob grants whole idle nodes for a GPU job — the
// -colocate=false ablation, where GPU jobs reserve nodes outright like a
// traditional HPC scheduler. The job is handed exactly req.GPUs devices; any
// further devices on its nodes are reserved but idle.
func (c *Cluster) allocateExclusiveGPUJob(req Request) (*Allocation, error) {
	perNode := c.cfg.GPUsPerNode
	if perNode < 1 {
		return nil, ErrInsufficient{Req: req}
	}
	nodesNeeded := (req.GPUs + perNode - 1) / perNode
	free := c.idleNodes(nodesNeeded)
	if len(free) < nodesNeeded {
		return nil, ErrInsufficient{Req: req}
	}
	alloc := &Allocation{JobID: req.JobID}
	remaining := req.GPUs
	for _, n := range free {
		n.exclusive = req.JobID
		n.freeCores = 0
		n.freeMemGB = 0
		share := NodeShare{Node: n.Index, Cores: c.cfg.CoresPerNode, MemGB: c.cfg.MemGBPerNode}
		for _, d := range n.devices {
			if remaining == 0 {
				break
			}
			if err := d.Allocate(req.JobID); err != nil {
				return nil, err
			}
			share.GPUIDs = append(share.GPUIDs, d.ID)
			remaining--
		}
		alloc.Shares = append(alloc.Shares, share)
	}
	return alloc, nil
}

// allocateSharedCPUJob grants core/memory slices on shared nodes, first-fit.
func (c *Cluster) allocateSharedCPUJob(req Request) (*Allocation, error) {
	alloc := &Allocation{JobID: req.JobID}
	coresLeft, memLeft := req.Cores, req.MemGB
	for _, n := range c.nodes {
		if coresLeft <= 0 && memLeft <= 0 {
			break
		}
		if n.Exclusive() || n.freeCores == 0 {
			continue
		}
		takeCores := coresLeft
		if takeCores > n.freeCores {
			takeCores = n.freeCores
		}
		takeMem := memLeft
		if takeMem > n.freeMemGB {
			takeMem = n.freeMemGB
		}
		if takeCores <= 0 && takeMem <= 0 {
			continue
		}
		if takeCores < 0 {
			takeCores = 0
		}
		if takeMem < 0 {
			takeMem = 0
		}
		n.freeCores -= takeCores
		n.freeMemGB -= takeMem
		alloc.Shares = append(alloc.Shares, NodeShare{Node: n.Index, Cores: takeCores, MemGB: takeMem})
		coresLeft -= takeCores
		memLeft -= takeMem
	}
	if coresLeft > 0 || memLeft > 0 {
		c.rollback(alloc)
		return nil, ErrInsufficient{Req: req}
	}
	return alloc, nil
}

// rollback returns a partially granted allocation's resources.
func (c *Cluster) rollback(alloc *Allocation) {
	for _, s := range alloc.Shares {
		n := c.nodes[s.Node]
		n.freeCores += s.Cores
		n.freeMemGB += s.MemGB
		for _, id := range s.GPUIDs {
			// Best effort: the device was allocated moments ago.
			_ = n.devices[id.Index].Release()
		}
	}
	alloc.Shares = nil
}

// Release returns a job's resources. It errors if the job holds nothing —
// a double release means the scheduler lost track of state.
func (c *Cluster) Release(jobID int64) error {
	alloc, ok := c.allocations[jobID]
	if !ok {
		return fmt.Errorf("cluster: job %d holds no allocation", jobID)
	}
	for _, s := range alloc.Shares {
		n := c.nodes[s.Node]
		if n.exclusive == jobID {
			n.exclusive = noExclusive
			n.freeCores = c.cfg.CoresPerNode
			n.freeMemGB = c.cfg.MemGBPerNode
			for _, id := range s.GPUIDs {
				if err := n.devices[id.Index].Release(); err != nil {
					return err
				}
			}
			continue
		}
		n.freeCores += s.Cores
		n.freeMemGB += s.MemGB
		for _, id := range s.GPUIDs {
			if err := n.devices[id.Index].Release(); err != nil {
				return err
			}
		}
	}
	delete(c.allocations, jobID)
	return nil
}

// Device returns the device with the given ID.
func (c *Cluster) Device(id gpu.DeviceID) *gpu.Device {
	return c.nodes[id.Node].devices[id.Index]
}

// FreeGPUs returns the cluster-wide count of unallocated GPUs.
func (c *Cluster) FreeGPUs() int {
	k := 0
	for _, n := range c.nodes {
		if !n.Exclusive() {
			k += n.FreeGPUs()
		}
	}
	return k
}

// LiveAllocations returns the number of outstanding allocations.
func (c *Cluster) LiveAllocations() int { return len(c.allocations) }

// CheckInvariants verifies resource conservation: free counts within bounds,
// no device allocated to an unknown job, exclusive nodes fully drained. It
// is called by tests and by the simulator in debug mode.
func (c *Cluster) CheckInvariants() error {
	for _, n := range c.nodes {
		if n.freeCores < 0 || n.freeCores > c.cfg.CoresPerNode {
			return fmt.Errorf("cluster: node %d free cores %d out of range", n.Index, n.freeCores)
		}
		if n.freeMemGB < -1e-9 || n.freeMemGB > c.cfg.MemGBPerNode+1e-9 {
			return fmt.Errorf("cluster: node %d free mem %v out of range", n.Index, n.freeMemGB)
		}
		for _, d := range n.devices {
			if d.Free() {
				continue
			}
			if _, ok := c.allocations[d.AllocatedTo()]; !ok {
				return fmt.Errorf("cluster: device %s allocated to unknown job %d", d.ID, d.AllocatedTo())
			}
		}
		if n.Exclusive() && (n.freeCores != 0 || n.freeMemGB != 0) {
			return fmt.Errorf("cluster: exclusive node %d not fully drained", n.Index)
		}
	}
	return nil
}
