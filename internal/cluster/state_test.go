package cluster

import (
	"math/rand"
	"testing"
)

// TestNodeStateMachine pins the legal transition graph: Up -> Draining ->
// Down -> Up, with every other edge rejected.
func TestNodeStateMachine(t *testing.T) {
	c, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.NodeState(0) != NodeUp {
		t.Fatalf("fresh node state = %s, want up", c.NodeState(0))
	}
	if err := c.SetDown(0); err == nil {
		t.Fatal("SetDown from up should fail")
	}
	if err := c.SetUp(0); err == nil {
		t.Fatal("SetUp from up should fail")
	}
	if err := c.BeginDrain(0); err != nil {
		t.Fatal(err)
	}
	if c.NodeState(0) != NodeDraining {
		t.Fatalf("state after drain = %s", c.NodeState(0))
	}
	if err := c.BeginDrain(0); err == nil {
		t.Fatal("double drain should fail")
	}
	if err := c.SetUp(0); err == nil {
		t.Fatal("SetUp from draining should fail")
	}
	if err := c.SetDown(0); err != nil {
		t.Fatal(err)
	}
	if c.NodeState(0) != NodeDown || c.DownNodes() != 1 || c.DownGPUs() != 2 {
		t.Fatalf("down bookkeeping: state=%s nodes=%d gpus=%d",
			c.NodeState(0), c.DownNodes(), c.DownGPUs())
	}
	if err := c.BeginDrain(0); err == nil {
		t.Fatal("drain from down should fail")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := c.SetUp(0); err != nil {
		t.Fatal(err)
	}
	if c.NodeState(0) != NodeUp || c.DownNodes() != 0 || c.DownGPUs() != 0 {
		t.Fatal("repair did not restore up state")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDrainEvictsCapacity verifies a draining node leaves the placement index
// immediately — no new work lands on it, but its running job keeps its
// resources until released — and that repair restores full capacity.
func TestDrainEvictsCapacity(t *testing.T) {
	cfg := testConfig() // 4 nodes x 2 GPUs
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Pin a job to node 0 by filling it first (dense placement).
	alloc, err := c.TryAllocate(Request{JobID: 1, GPUs: 2, CoresPerGPU: 4, MemGBPerGPU: 32})
	if err != nil {
		t.Fatal(err)
	}
	node := alloc.Shares[0].Node
	if err := c.BeginDrain(node); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := c.NodeAllocations(node); got != 1 {
		t.Fatalf("allocations on draining node = %d, want 1", got)
	}
	if ids := c.JobsOnNode(node); len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("JobsOnNode = %v, want [1]", ids)
	}
	// Draining: not eligible for down yet while the job holds shares.
	if err := c.SetDown(node); err == nil {
		t.Fatal("SetDown with a live allocation should fail")
	}
	// Saturate the remaining GPUs; the draining node must receive nothing.
	for id := int64(2); ; id++ {
		a, err := c.TryAllocate(Request{JobID: id, GPUs: 1, CoresPerGPU: 1, MemGBPerGPU: 1})
		if err != nil {
			if _, ok := err.(ErrInsufficient); !ok {
				t.Fatal(err)
			}
			if id != 8 { // 3 up nodes x 2 GPUs + job 1's pair already placed
				t.Fatalf("saturated after %d single-GPU grants, want 6", id-2)
			}
			break
		}
		for _, s := range a.Shares {
			if s.Node == node {
				t.Fatalf("job %d placed on draining node %d", id, node)
			}
		}
	}
	// Release completes the picture: node is empty, can go down, and after
	// repair its capacity is placeable again.
	if err := c.Release(1); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.TryAllocate(Request{JobID: 100, GPUs: 1}); err == nil {
		t.Fatal("draining node's freed GPUs must stay unplaceable")
	}
	if err := c.SetDown(node); err != nil {
		t.Fatal(err)
	}
	if err := c.SetUp(node); err != nil {
		t.Fatal(err)
	}
	a, err := c.TryAllocate(Request{JobID: 101, GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Shares[0].Node != node {
		t.Fatalf("post-repair placement on node %d, want repaired node %d", a.Shares[0].Node, node)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestStateEquivalenceRandomized extends the audited randomized stream with
// drain/down/repair churn: every placement still cross-checks against the
// naive full-scan planner (which skips non-up nodes), and invariants hold at
// every step.
func TestStateEquivalenceRandomized(t *testing.T) {
	cfg := Config{Nodes: 8, CoresPerNode: 16, MemGBPerNode: 64, GPUsPerNode: 2, NodesPerRack: 4}
	for seed := int64(1); seed <= 4; seed++ {
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.EnableAudit()
		rng := rand.New(rand.NewSource(seed))
		var live []int64
		nextID := int64(1)
		for step := 0; step < 1500; step++ {
			switch {
			case rng.Intn(100) < 8:
				// Node churn: advance a random node one legal transition.
				node := rng.Intn(cfg.Nodes)
				switch c.NodeState(node) {
				case NodeUp:
					if err := c.BeginDrain(node); err != nil {
						t.Fatalf("seed %d step %d: drain: %v", seed, step, err)
					}
				case NodeDraining:
					if c.NodeAllocations(node) == 0 {
						if err := c.SetDown(node); err != nil {
							t.Fatalf("seed %d step %d: down: %v", seed, step, err)
						}
					}
				case NodeDown:
					if err := c.SetUp(node); err != nil {
						t.Fatalf("seed %d step %d: up: %v", seed, step, err)
					}
				}
			case len(live) > 0 && rng.Intn(100) < 35:
				i := rng.Intn(len(live))
				if err := c.Release(live[i]); err != nil {
					t.Fatalf("seed %d step %d: release: %v", seed, step, err)
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			default:
				req := randomRequest(rng, cfg, nextID)
				nextID++
				_, err := c.TryAllocate(req)
				switch err.(type) {
				case nil:
					live = append(live, req.JobID)
				case ErrInsufficient:
				default:
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
			}
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: final invariants: %v", seed, err)
		}
		// Repair everything; full capacity must come back.
		for _, id := range append([]int64(nil), live...) {
			if err := c.Release(id); err != nil {
				t.Fatal(err)
			}
		}
		for n := 0; n < cfg.Nodes; n++ {
			if c.NodeState(n) == NodeDraining {
				if err := c.SetDown(n); err != nil {
					t.Fatal(err)
				}
			}
			if c.NodeState(n) == NodeDown {
				if err := c.SetUp(n); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: post-repair invariants: %v", seed, err)
		}
		if c.FreeGPUs() != cfg.Nodes*cfg.GPUsPerNode {
			t.Fatalf("seed %d: capacity lost after full repair: free=%d want=%d",
				seed, c.FreeGPUs(), cfg.Nodes*cfg.GPUsPerNode)
		}
	}
}
