package cluster

import "fmt"

// PartitionNodes splits a cluster configuration into shard sub-clusters for
// the sharded simulation mode: node counts differ by at most one (the first
// nodes%shards shards take the extra node) and every other parameter is
// inherited, so the shards jointly cover exactly the original inventory.
// The split is a pure function of (cfg, shards) — the same partition every
// run, whatever worker count executes it.
func PartitionNodes(cfg Config, shards int) ([]Config, error) {
	if shards < 1 {
		return nil, fmt.Errorf("cluster: need at least one shard, got %d", shards)
	}
	if shards > cfg.Nodes {
		return nil, fmt.Errorf("cluster: cannot split %d nodes into %d shards", cfg.Nodes, shards)
	}
	base := cfg.Nodes / shards
	extra := cfg.Nodes % shards
	out := make([]Config, shards)
	for i := range out {
		sub := cfg
		sub.Nodes = base
		if i < extra {
			sub.Nodes++
		}
		out[i] = sub
	}
	return out, nil
}
