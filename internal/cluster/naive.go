package cluster

// This file preserves the pre-index placement algorithm as a read-only
// executable specification: a full scan over every node, with the candidate
// sort and take rules exactly as they were before the free-capacity index.
// EnableAudit compares every indexed placement against it at runtime, and
// the allocation-equivalence tests drive both against randomized request
// streams. Free-GPU counts are recomputed from raw device state here, so the
// audit is independent of the counters the index maintains.

// naivePlan computes the shares the pre-index algorithm would grant for req,
// or the error it would return, without mutating any cluster state.
//
// Mirrors: tryAllocate.
func (c *Cluster) naivePlan(req Request) ([]NodeShare, error) {
	if req.GPUs > 0 && req.Exclusive {
		return c.naivePlanExclusiveGPU(req)
	}
	if req.GPUs > 0 {
		return c.naivePlanGPU(req)
	}
	if req.Exclusive {
		return c.naivePlanExclusiveCPU(req)
	}
	return c.naivePlanSharedCPU(req)
}

// deviceFreeGPUs counts free devices by scanning raw device state.
func deviceFreeGPUs(n *Node) int {
	fg := 0
	for _, d := range n.devices {
		if d.Free() {
			fg++
		}
	}
	return fg
}

// naivePlanGPU is the pre-index allocateGPUJob: collect candidates over all
// nodes, insertion-sort best-fit (job fits one node) or widest-first (job
// spans nodes), then walk taking the per-node clamp of GPUs, cores and
// memory.
//
// Mirrors: allocateGPUJob.
func (c *Cluster) naivePlanGPU(req Request) ([]NodeShare, error) {
	type candidate struct {
		node     *Node
		freeGPUs int
	}
	var cands []candidate
	totalFree := 0
	for _, n := range c.nodes {
		if n.state != NodeUp || n.Exclusive() {
			continue
		}
		fg := deviceFreeGPUs(n)
		if fg == 0 {
			continue
		}
		if n.freeCores < req.CoresPerGPU || n.freeMemGB < req.MemGBPerGPU {
			continue
		}
		cands = append(cands, candidate{node: n, freeGPUs: fg})
		totalFree += fg
	}
	if totalFree < req.GPUs {
		return nil, ErrInsufficient{Req: req}
	}
	fitsOneNode := false
	for _, cand := range cands {
		if cand.freeGPUs >= req.GPUs {
			fitsOneNode = true
			break
		}
	}
	better := func(a, b candidate) bool {
		if a.freeGPUs != b.freeGPUs {
			if fitsOneNode {
				aFits, bFits := a.freeGPUs >= req.GPUs, b.freeGPUs >= req.GPUs
				if aFits != bFits {
					return aFits
				}
				return a.freeGPUs < b.freeGPUs
			}
			return a.freeGPUs > b.freeGPUs
		}
		return a.node.Index < b.node.Index
	}
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && better(cands[j], cands[j-1]); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	var shares []NodeShare
	remaining := req.GPUs
	for _, cand := range cands {
		if remaining == 0 {
			break
		}
		n := cand.node
		take := remaining
		if take > cand.freeGPUs {
			take = cand.freeGPUs
		}
		maxByCores := take
		if req.CoresPerGPU > 0 {
			maxByCores = n.freeCores / req.CoresPerGPU
		}
		maxByMem := take
		if req.MemGBPerGPU > 0 {
			maxByMem = int(n.freeMemGB / req.MemGBPerGPU)
		}
		if take > maxByCores {
			take = maxByCores
		}
		if take > maxByMem {
			take = maxByMem
		}
		if take == 0 {
			continue
		}
		share := NodeShare{Node: n.Index, Cores: take * req.CoresPerGPU, MemGB: float64(take) * req.MemGBPerGPU}
		granted := 0
		for _, d := range n.devices {
			if granted == take {
				break
			}
			if d.Free() {
				share.GPUIDs = append(share.GPUIDs, d.ID)
				granted++
			}
		}
		shares = append(shares, share)
		remaining -= take
	}
	if remaining > 0 {
		return nil, ErrInsufficient{Req: req}
	}
	return shares, nil
}

// naiveIdleNodes is the pre-index idleNodes scan: up to want fully idle
// nodes in ascending index order.
//
// Mirrors: takeIdleNodes.
func (c *Cluster) naiveIdleNodes(want int) []*Node {
	var free []*Node
	for _, n := range c.nodes {
		if n.state != NodeUp || n.Exclusive() || n.freeCores != c.cfg.CoresPerNode ||
			n.freeMemGB < c.cfg.MemGBPerNode-memEps || deviceFreeGPUs(n) != len(n.devices) {
			continue
		}
		free = append(free, n)
		if len(free) == want {
			break
		}
	}
	return free
}

// naivePlanExclusiveCPU is the pre-index allocateExclusiveCPUJob plus the
// AvoidGPUNodes reservation guard.
//
// Mirrors: allocateExclusiveCPUJob.
func (c *Cluster) naivePlanExclusiveCPU(req Request) ([]NodeShare, error) {
	if req.AvoidGPUNodes && c.cfg.GPUsPerNode > 0 {
		return nil, ErrInsufficient{Req: req}
	}
	nodesNeeded := (req.Cores + c.cfg.CoresPerNode - 1) / c.cfg.CoresPerNode
	if nodesNeeded < 1 {
		nodesNeeded = 1
	}
	free := c.naiveIdleNodes(nodesNeeded)
	if len(free) < nodesNeeded {
		return nil, ErrInsufficient{Req: req}
	}
	var shares []NodeShare
	for _, n := range free {
		shares = append(shares, NodeShare{Node: n.Index, Cores: c.cfg.CoresPerNode, MemGB: c.cfg.MemGBPerNode})
	}
	return shares, nil
}

// naivePlanExclusiveGPU is the pre-index allocateExclusiveGPUJob.
//
// Mirrors: allocateExclusiveGPUJob.
func (c *Cluster) naivePlanExclusiveGPU(req Request) ([]NodeShare, error) {
	perNode := c.cfg.GPUsPerNode
	if perNode < 1 {
		return nil, ErrInsufficient{Req: req}
	}
	nodesNeeded := (req.GPUs + perNode - 1) / perNode
	free := c.naiveIdleNodes(nodesNeeded)
	if len(free) < nodesNeeded {
		return nil, ErrInsufficient{Req: req}
	}
	var shares []NodeShare
	remaining := req.GPUs
	for _, n := range free {
		share := NodeShare{Node: n.Index, Cores: c.cfg.CoresPerNode, MemGB: c.cfg.MemGBPerNode}
		for _, d := range n.devices {
			if remaining == 0 {
				break
			}
			share.GPUIDs = append(share.GPUIDs, d.ID)
			remaining--
		}
		shares = append(shares, share)
	}
	return shares, nil
}

// naivePlanSharedCPU is the pre-index allocateSharedCPUJob (first-fit over
// all nodes in index order) plus the AvoidGPUNodes reservation guard.
//
// Mirrors: allocateSharedCPUJob.
func (c *Cluster) naivePlanSharedCPU(req Request) ([]NodeShare, error) {
	var shares []NodeShare
	coresLeft, memLeft := req.Cores, req.MemGB
	for _, n := range c.nodes {
		if coresLeft <= 0 && memLeft <= 0 {
			break
		}
		if n.state != NodeUp || n.Exclusive() || n.freeCores == 0 {
			continue
		}
		if req.AvoidGPUNodes && deviceFreeGPUs(n) > 0 {
			continue
		}
		takeCores := coresLeft
		if takeCores > n.freeCores {
			takeCores = n.freeCores
		}
		takeMem := memLeft
		if takeMem > n.freeMemGB {
			takeMem = n.freeMemGB
		}
		if takeCores <= 0 && takeMem <= 0 {
			continue
		}
		if takeCores < 0 {
			takeCores = 0
		}
		if takeMem < 0 {
			takeMem = 0
		}
		shares = append(shares, NodeShare{Node: n.Index, Cores: takeCores, MemGB: takeMem})
		coresLeft -= takeCores
		memLeft -= takeMem
	}
	if coresLeft > 0 || memLeft > 0 {
		return nil, ErrInsufficient{Req: req}
	}
	return shares, nil
}
