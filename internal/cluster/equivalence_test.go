package cluster

import (
	"math/rand"
	"testing"
)

// TestAllocationEquivalenceRandomized drives an audited cluster (every
// TryAllocate cross-checks the indexed placement against the pre-index
// full-scan planner and re-verifies all invariants) through randomized
// request/release streams. Any node-for-node divergence between the indexed
// and naive placements — or any index drift — surfaces as a hard error.
func TestAllocationEquivalenceRandomized(t *testing.T) {
	cfgs := []Config{
		{Nodes: 6, CoresPerNode: 40, MemGBPerNode: 384, GPUsPerNode: 2, NodesPerRack: 4},
		{Nodes: 9, CoresPerNode: 16, MemGBPerNode: 64, GPUsPerNode: 4, NodesPerRack: 3},
		{Nodes: 70, CoresPerNode: 40, MemGBPerNode: 384, GPUsPerNode: 2, NodesPerRack: 16},
	}
	for seed := int64(1); seed <= 6; seed++ {
		for ci, cfg := range cfgs {
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			c.EnableAudit()
			rng := rand.New(rand.NewSource(seed*100 + int64(ci)))
			var live []int64
			nextID := int64(1)
			for step := 0; step < 2000; step++ {
				// Bias toward allocation so the cluster spends time saturated,
				// where placement order and rejections matter most.
				if len(live) > 0 && rng.Intn(100) < 35 {
					i := rng.Intn(len(live))
					if err := c.Release(live[i]); err != nil {
						t.Fatalf("cfg %d seed %d step %d: release: %v", ci, seed, step, err)
					}
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
					continue
				}
				req := randomRequest(rng, cfg, nextID)
				nextID++
				_, err := c.TryAllocate(req)
				switch err.(type) {
				case nil:
					live = append(live, req.JobID)
				case ErrInsufficient:
					// Queued; nothing granted.
				default:
					t.Fatalf("cfg %d seed %d step %d: %v", ci, seed, step, err)
				}
			}
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("cfg %d seed %d: final invariants: %v", ci, seed, err)
			}
		}
	}
}

// randomRequest produces the workload-shaped request mix the scheduler
// issues: mostly small GPU jobs with CPU slices, some spanning multi-GPU
// jobs, shared and exclusive CPU jobs, and the occasional AvoidGPUNodes
// request the reservation path sets.
func randomRequest(rng *rand.Rand, cfg Config, id int64) Request {
	switch rng.Intn(10) {
	case 0, 1, 2, 3, 4: // GPU job, fits-one-node sizes through spanning sizes
		gpus := 1 + rng.Intn(cfg.GPUsPerNode*3)
		return Request{
			JobID:       id,
			GPUs:        gpus,
			CoresPerGPU: rng.Intn(cfg.CoresPerNode/2 + 1),
			MemGBPerGPU: float64(rng.Intn(int(cfg.MemGBPerNode)/2 + 1)),
		}
	case 5: // exclusive GPU job (ablation path)
		return Request{JobID: id, GPUs: 1 + rng.Intn(cfg.GPUsPerNode*2), Exclusive: true}
	case 6: // exclusive CPU job
		return Request{
			JobID:         id,
			Cores:         1 + rng.Intn(cfg.CoresPerNode*2),
			MemGB:         float64(rng.Intn(int(cfg.MemGBPerNode))),
			Exclusive:     true,
			AvoidGPUNodes: rng.Intn(8) == 0,
		}
	default: // shared CPU job
		return Request{
			JobID:         id,
			Cores:         rng.Intn(cfg.CoresPerNode * 2),
			MemGB:         float64(rng.Intn(int(cfg.MemGBPerNode) * 2)),
			AvoidGPUNodes: rng.Intn(8) == 0,
		}
	}
}
