package cluster

import "testing"

func TestPartitionNodesCoversInventory(t *testing.T) {
	cfg := SupercloudConfig() // 224 nodes
	for _, shards := range []int{1, 2, 3, 4, 7, 8, 16, 224} {
		subs, err := PartitionNodes(cfg, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if len(subs) != shards {
			t.Fatalf("shards=%d: got %d configs", shards, len(subs))
		}
		total := 0
		minN, maxN := subs[0].Nodes, subs[0].Nodes
		for _, sub := range subs {
			total += sub.Nodes
			if sub.Nodes < minN {
				minN = sub.Nodes
			}
			if sub.Nodes > maxN {
				maxN = sub.Nodes
			}
			if sub.GPUsPerNode != cfg.GPUsPerNode || sub.CoresPerNode != cfg.CoresPerNode ||
				sub.MemGBPerNode != cfg.MemGBPerNode || sub.NodesPerRack != cfg.NodesPerRack {
				t.Fatalf("shards=%d: per-node parameters not inherited: %+v", shards, sub)
			}
			if err := sub.Validate(); err != nil {
				t.Fatalf("shards=%d: invalid sub-config: %v", shards, err)
			}
		}
		if total != cfg.Nodes {
			t.Fatalf("shards=%d: partition covers %d of %d nodes", shards, total, cfg.Nodes)
		}
		if maxN-minN > 1 {
			t.Fatalf("shards=%d: unbalanced partition, node counts span [%d, %d]", shards, minN, maxN)
		}
	}
}

func TestPartitionNodesDeterministic(t *testing.T) {
	cfg := SupercloudConfig()
	a, err := PartitionNodes(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PartitionNodes(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shard %d differs between identical calls", i)
		}
	}
}

func TestPartitionNodesErrors(t *testing.T) {
	cfg := SupercloudConfig()
	if _, err := PartitionNodes(cfg, 0); err == nil {
		t.Error("shards=0 accepted")
	}
	if _, err := PartitionNodes(cfg, -1); err == nil {
		t.Error("shards=-1 accepted")
	}
	if _, err := PartitionNodes(cfg, cfg.Nodes+1); err == nil {
		t.Error("more shards than nodes accepted")
	}
}
