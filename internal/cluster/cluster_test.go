package cluster

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/gpu"
)

func testConfig() Config {
	return Config{
		Nodes:        4,
		CoresPerNode: 40,
		MemGBPerNode: 384,
		GPUsPerNode:  2,
		GPUSpec:      gpu.V100(),
		NodesPerRack: 2,
	}
}

func TestSupercloudConfig(t *testing.T) {
	cfg := SupercloudConfig()
	if cfg.TotalGPUs() != 448 {
		t.Fatalf("total GPUs = %d, want 448", cfg.TotalGPUs())
	}
	if cfg.TotalCores() != 8960 {
		t.Fatalf("total cores = %d, want 8960", cfg.TotalCores())
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Nodes: 0, CoresPerNode: 1, MemGBPerNode: 1},
		{Nodes: 1, CoresPerNode: 0, MemGBPerNode: 1},
		{Nodes: 1, CoresPerNode: 1, MemGBPerNode: 0},
		{Nodes: 1, CoresPerNode: 1, MemGBPerNode: 1, GPUsPerNode: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
		if _, err := New(cfg); err == nil {
			t.Fatalf("New accepted bad config %d", i)
		}
	}
}

func TestSingleGPUJobColocation(t *testing.T) {
	c, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Four single-GPU jobs with small CPU slices co-locate on two nodes
	// (dense placement fills a node's 2 GPUs first).
	for id := int64(1); id <= 4; id++ {
		alloc, err := c.TryAllocate(Request{JobID: id, GPUs: 1, CoresPerGPU: 4, MemGBPerGPU: 32})
		if err != nil {
			t.Fatalf("job %d: %v", id, err)
		}
		if alloc.NodeSpan() != 1 || len(alloc.GPUs()) != 1 {
			t.Fatalf("job %d allocation: %+v", id, alloc)
		}
	}
	if free := c.FreeGPUs(); free != 4 {
		t.Fatalf("free GPUs = %d, want 4", free)
	}
	// Jobs 1 and 2 should share node 0 (dense-first placement).
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	usedNodes := map[int]int{}
	for id := int64(1); id <= 4; id++ {
		for _, s := range c.allocations[id].Shares {
			usedNodes[s.Node]++
		}
	}
	if len(usedNodes) != 2 {
		t.Fatalf("4 single-GPU jobs spread over %d nodes, want 2 (dense)", len(usedNodes))
	}
}

func TestMultiGPUJobSpansNodes(t *testing.T) {
	c, _ := New(testConfig())
	alloc, err := c.TryAllocate(Request{JobID: 1, GPUs: 6, CoresPerGPU: 2, MemGBPerGPU: 16})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(alloc.GPUs()); got != 6 {
		t.Fatalf("granted %d GPUs, want 6", got)
	}
	if alloc.NodeSpan() != 3 {
		t.Fatalf("span = %d nodes, want 3", alloc.NodeSpan())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGPUExhaustion(t *testing.T) {
	c, _ := New(testConfig())
	if _, err := c.TryAllocate(Request{JobID: 1, GPUs: 8, CoresPerGPU: 1, MemGBPerGPU: 1}); err != nil {
		t.Fatal(err)
	}
	_, err := c.TryAllocate(Request{JobID: 2, GPUs: 1, CoresPerGPU: 1, MemGBPerGPU: 1})
	if _, ok := err.(ErrInsufficient); !ok {
		t.Fatalf("expected ErrInsufficient, got %v", err)
	}
	if err := c.Release(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.TryAllocate(Request{JobID: 2, GPUs: 1, CoresPerGPU: 1, MemGBPerGPU: 1}); err != nil {
		t.Fatalf("allocation after release failed: %v", err)
	}
}

func TestCPUSliceBlocksGPUGrant(t *testing.T) {
	c, _ := New(testConfig())
	// A shared CPU job eats most cores of every node.
	if _, err := c.TryAllocate(Request{JobID: 1, Cores: 150, MemGB: 100}); err != nil {
		t.Fatal(err)
	}
	// Now a GPU job demanding 20 cores per GPU cannot fit anywhere.
	_, err := c.TryAllocate(Request{JobID: 2, GPUs: 1, CoresPerGPU: 20, MemGBPerGPU: 1})
	if _, ok := err.(ErrInsufficient); !ok {
		t.Fatalf("expected ErrInsufficient, got %v", err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestExclusiveCPUJob(t *testing.T) {
	c, _ := New(testConfig())
	alloc, err := c.TryAllocate(Request{JobID: 1, Cores: 80, Exclusive: true})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.NodeSpan() != 2 {
		t.Fatalf("exclusive span = %d, want 2 nodes", alloc.NodeSpan())
	}
	// GPU jobs cannot land on exclusive nodes; only 4 GPUs remain reachable.
	if free := c.FreeGPUs(); free != 4 {
		t.Fatalf("reachable free GPUs = %d, want 4", free)
	}
	if _, err := c.TryAllocate(Request{JobID: 2, GPUs: 5, CoresPerGPU: 1, MemGBPerGPU: 1}); err == nil {
		t.Fatal("5-GPU job granted with only 4 reachable GPUs")
	}
	if err := c.Release(1); err != nil {
		t.Fatal(err)
	}
	if free := c.FreeGPUs(); free != 8 {
		t.Fatalf("free GPUs after release = %d", free)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestExclusiveNeedsWholeFreeNodes(t *testing.T) {
	c, _ := New(testConfig())
	// Occupy one GPU on every node.
	for id := int64(1); id <= 4; id++ {
		if _, err := c.TryAllocate(Request{JobID: id, GPUs: 2, CoresPerGPU: 1, MemGBPerGPU: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// No node is fully free, so an exclusive job must be refused.
	if _, err := c.TryAllocate(Request{JobID: 9, Cores: 40, Exclusive: true}); err == nil {
		t.Fatal("exclusive job granted on busy cluster")
	}
}

func TestDoubleAllocateAndRelease(t *testing.T) {
	c, _ := New(testConfig())
	if _, err := c.TryAllocate(Request{JobID: 1, GPUs: 1, CoresPerGPU: 1, MemGBPerGPU: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.TryAllocate(Request{JobID: 1, GPUs: 1, CoresPerGPU: 1, MemGBPerGPU: 1}); err == nil {
		t.Fatal("duplicate job id accepted")
	}
	if err := c.Release(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Release(1); err == nil {
		t.Fatal("double release accepted")
	}
	if err := c.Release(99); err == nil {
		t.Fatal("release of unknown job accepted")
	}
}

func TestNegativeRequestRejected(t *testing.T) {
	c, _ := New(testConfig())
	if _, err := c.TryAllocate(Request{JobID: 1, GPUs: -1}); err == nil {
		t.Fatal("negative GPUs accepted")
	}
}

func TestDeviceLookup(t *testing.T) {
	c, _ := New(testConfig())
	d := c.Device(gpu.DeviceID{Node: 2, Index: 1})
	if d.ID.Node != 2 || d.ID.Index != 1 {
		t.Fatalf("device lookup returned %v", d.ID)
	}
}

// Property: any sequence of allocations and releases preserves resource
// conservation (total GPUs constant, invariants hold).
func TestConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		c, err := New(testConfig())
		if err != nil {
			return false
		}
		live := map[int64]bool{}
		next := int64(1)
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				// Release an arbitrary live job.
				for id := range live {
					if c.Release(id) != nil {
						return false
					}
					delete(live, id)
					break
				}
				continue
			}
			gpus := int(op%4) + 1
			_, err := c.TryAllocate(Request{JobID: next, GPUs: gpus, CoresPerGPU: 2, MemGBPerGPU: 8})
			if err == nil {
				live[next] = true
			} else if _, ok := err.(ErrInsufficient); !ok {
				return false
			}
			next++
			if c.CheckInvariants() != nil {
				return false
			}
		}
		// Drain and verify everything comes back.
		for id := range live {
			if c.Release(id) != nil {
				return false
			}
		}
		return c.FreeGPUs() == 8 && c.LiveAllocations() == 0 && c.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAccessors(t *testing.T) {
	c, _ := New(testConfig())
	if c.Config().Nodes != 4 {
		t.Fatalf("Config() = %+v", c.Config())
	}
	nodes := c.Nodes()
	if len(nodes) != 4 {
		t.Fatalf("Nodes() = %d", len(nodes))
	}
	if nodes[0].FreeCores() != 40 || nodes[0].FreeMemGB() != 384 {
		t.Fatalf("fresh node state: %d cores, %v GB", nodes[0].FreeCores(), nodes[0].FreeMemGB())
	}
	if _, err := c.TryAllocate(Request{JobID: 1, GPUs: 1, CoresPerGPU: 8, MemGBPerGPU: 64}); err != nil {
		t.Fatal(err)
	}
	if nodes[0].FreeCores() != 32 || nodes[0].FreeMemGB() != 320 {
		t.Fatalf("post-grant node state: %d cores, %v GB", nodes[0].FreeCores(), nodes[0].FreeMemGB())
	}
}

func TestErrInsufficientMessage(t *testing.T) {
	err := ErrInsufficient{Req: Request{JobID: 7, GPUs: 3, Exclusive: true}}
	msg := err.Error()
	if msg == "" || !strings.Contains(msg, "job 7") {
		t.Fatalf("error message: %q", msg)
	}
}

func TestSharedCPUJobRollbackOnShortage(t *testing.T) {
	c, _ := New(testConfig())
	// Ask for more cores than the whole cluster has: the partial grant must
	// roll back completely.
	_, err := c.TryAllocate(Request{JobID: 1, Cores: 4*40 + 1, MemGB: 1})
	if _, ok := err.(ErrInsufficient); !ok {
		t.Fatalf("expected ErrInsufficient, got %v", err)
	}
	for _, n := range c.Nodes() {
		if n.FreeCores() != 40 {
			t.Fatalf("rollback leaked cores on node %d: %d free", n.Index, n.FreeCores())
		}
	}
	if c.LiveAllocations() != 0 {
		t.Fatal("failed allocation recorded")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSharedCPUJobMemoryOnly(t *testing.T) {
	c, _ := New(testConfig())
	// A memory-dominant shared request spanning nodes.
	alloc, err := c.TryAllocate(Request{JobID: 1, Cores: 4, MemGB: 500})
	if err != nil {
		t.Fatal(err)
	}
	var mem float64
	for _, s := range alloc.Shares {
		mem += s.MemGB
	}
	if mem < 500 {
		t.Fatalf("granted %v GB, want >= 500", mem)
	}
	if err := c.Release(1); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
