package gpu

import "math"

// PowerModel converts an instantaneous utilization state into board power
// draw for a given device spec. Two implementations exist: the default
// affine model with an idle floor, and a purely linear model kept for the
// ablation bench that shows the floor is required to reproduce the paper's
// Fig. 9a (median average power 45 W on a 300 W part).
type PowerModel interface {
	// Watts returns the instantaneous power draw for spec at utilization u.
	Watts(spec Spec, u Utilization) float64
}

// AffinePowerModel is the default model:
//
//	P = idle + (TDP − idle) × min(1, wSM·sm + wMem·mem + wIO·pcie)^γ
//
// The compute term dominates (deep-learning kernels burn power in the SMs),
// memory traffic contributes, and PCIe adds a small I/O term. γ slightly
// below 1 captures that even moderate SM activity lights up much of the
// board (clock gating is coarse), which is what pushes a 16 %-SM-median
// workload to a 45 W median draw above the 25 W idle floor.
type AffinePowerModel struct {
	WSM, WMem, WIO float64
	Gamma          float64
}

// DefaultPowerModel returns the calibrated affine model. Weights were chosen
// so that the paper's published utilization marginals map onto its published
// power marginals (median average 45 W, median max 87 W; see EXPERIMENTS.md).
func DefaultPowerModel() AffinePowerModel {
	return AffinePowerModel{WSM: 0.75, WMem: 0.30, WIO: 0.03, Gamma: 1.45}
}

// Watts implements PowerModel.
func (m AffinePowerModel) Watts(spec Spec, u Utilization) float64 {
	load := m.WSM*u.SMPct/100 + m.WMem*u.MemPct/100 + m.WIO*(u.PCIeTxPct+u.PCIeRxPct)/200
	if load > 1 {
		load = 1
	}
	if load < 0 {
		load = 0
	}
	gamma := m.Gamma
	if gamma <= 0 {
		gamma = 1
	}
	return spec.IdleWatts + (spec.TDPWatts-spec.IdleWatts)*math.Pow(load, gamma)
}

// LinearPowerModel is the ablation alternative: P = TDP × sm/100, no idle
// floor and no memory/IO contribution. It systematically under-predicts
// low-utilization power and is used only to demonstrate the floor's
// necessity (BenchmarkAblationPowerModel).
type LinearPowerModel struct{}

// Watts implements PowerModel.
func (LinearPowerModel) Watts(spec Spec, u Utilization) float64 {
	return spec.TDPWatts * u.SMPct / 100
}

// CapImpact classifies how a job would be affected by a power cap, given its
// power summary. This is the unit of the paper's Fig. 9b analysis.
type CapImpact int

// The three Fig. 9b bands.
const (
	// CapNoImpact: the job's maximum draw never reaches the cap.
	CapNoImpact CapImpact = iota
	// CapImpactsPeak: only the job's peak draw exceeds the cap — it would
	// see brief clock throttling at its bursts.
	CapImpactsPeak
	// CapImpactsAverage: the job's average draw exceeds the cap — it would
	// be throttled persistently.
	CapImpactsAverage
)

// String names the impact band.
func (c CapImpact) String() string {
	switch c {
	case CapNoImpact:
		return "unimpacted"
	case CapImpactsPeak:
		return "peak-impacted"
	case CapImpactsAverage:
		return "average-impacted"
	default:
		return "unknown"
	}
}

// ClassifyCapImpact returns the Fig. 9b band of a job whose average and
// maximum power draw are given, under a cap of capWatts.
func ClassifyCapImpact(avgWatts, maxWatts, capWatts float64) CapImpact {
	switch {
	case avgWatts > capWatts:
		return CapImpactsAverage
	case maxWatts > capWatts:
		return CapImpactsPeak
	default:
		return CapNoImpact
	}
}

// ThrottleSlowdown estimates the run-time dilation factor (>= 1) a job
// suffers under a cap, using the simple energy-conservation argument that
// compute throughput tracks the power head-room above idle. A job whose
// demand never exceeds the cap is unaffected.
func ThrottleSlowdown(spec Spec, demandWatts, capWatts float64) float64 {
	if demandWatts <= capWatts || capWatts <= spec.IdleWatts {
		if capWatts <= spec.IdleWatts && demandWatts > capWatts {
			return math.Inf(1)
		}
		return 1
	}
	return (demandWatts - spec.IdleWatts) / (capWatts - spec.IdleWatts)
}
