package gpu

import "testing"

func TestMIGRequiresCapableDevice(t *testing.T) {
	if _, err := NewMIGPartitioner(V100()); err == nil {
		t.Fatal("V100 accepted for MIG")
	}
	if _, err := NewMIGPartitioner(A100()); err != nil {
		t.Fatal(err)
	}
}

func TestMIGRepartitionAndPlace(t *testing.T) {
	p, err := NewMIGPartitioner(A100())
	if err != nil {
		t.Fatal(err)
	}
	cost, err := p.Repartition([]MIGProfile{
		{Name: "3g.40gb", ComputeSlices: 3, MemoryGB: 40},
		{Name: "2g.20gb", ComputeSlices: 2, MemoryGB: 20},
		{Name: "1g.10gb", ComputeSlices: 1, MemoryGB: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatalf("repartition cost = %v, want positive", cost)
	}
	if p.Resets() != 1 {
		t.Fatalf("resets = %d", p.Resets())
	}
	// Smallest-fit placement: a 1-slice job should land on the 1g instance.
	idx, err := p.Place(7, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Instances()[idx].Profile.ComputeSlices; got != 1 {
		t.Fatalf("placed on %d-slice instance, want 1", got)
	}
	if !p.Busy() {
		t.Fatal("partitioner not busy after placement")
	}
	// Repartition while busy is the hardware constraint from §VIII.
	if _, err := p.Repartition(nil); err == nil {
		t.Fatal("repartition allowed while busy")
	}
	if err := p.Evict(7); err != nil {
		t.Fatal(err)
	}
	if err := p.Evict(7); err == nil {
		t.Fatal("double evict allowed")
	}
}

func TestMIGRepartitionValidation(t *testing.T) {
	p, _ := NewMIGPartitioner(A100())
	// 8 compute slices on a 7-slice part.
	if _, err := p.Repartition([]MIGProfile{
		{Name: "7g", ComputeSlices: 7, MemoryGB: 40},
		{Name: "1g", ComputeSlices: 1, MemoryGB: 10},
	}); err == nil {
		t.Fatal("over-sliced layout accepted")
	}
	// 120 GB memory on an 80 GB part.
	if _, err := p.Repartition([]MIGProfile{
		{Name: "a", ComputeSlices: 3, MemoryGB: 60},
		{Name: "b", ComputeSlices: 3, MemoryGB: 60},
	}); err == nil {
		t.Fatal("over-memory layout accepted")
	}
	if _, err := p.Repartition([]MIGProfile{{Name: "zero", ComputeSlices: 0}}); err == nil {
		t.Fatal("zero-slice profile accepted")
	}
}

func TestMIGPlaceNoFit(t *testing.T) {
	p, _ := NewMIGPartitioner(A100())
	if _, err := p.Repartition([]MIGProfile{{Name: "1g.10gb", ComputeSlices: 1, MemoryGB: 10}}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Place(1, 4, 10); err == nil {
		t.Fatal("oversized job placed")
	}
	if _, err := p.Place(1, 1, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Place(2, 1, 10); err == nil {
		t.Fatal("placement on occupied slice allowed")
	}
}

func TestPackLayout(t *testing.T) {
	layout, err := PackLayout(A100(), []int{3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	var slices int
	for _, pr := range layout {
		slices += pr.ComputeSlices
	}
	if slices > 7 {
		t.Fatalf("layout uses %d slices", slices)
	}
	if len(layout) != 3 {
		t.Fatalf("layout has %d profiles, want 3", len(layout))
	}
	if _, err := PackLayout(A100(), []int{7, 1}); err == nil {
		t.Fatal("over-demand accepted")
	}
	if _, err := PackLayout(V100(), []int{1}); err == nil {
		t.Fatal("non-MIG device accepted")
	}
	if _, err := PackLayout(A100(), []int{0}); err == nil {
		t.Fatal("zero demand accepted")
	}
}
