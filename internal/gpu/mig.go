package gpu

import (
	"fmt"
	"sort"
)

// MIGProfile is one Multi-Instance-GPU slice shape: a number of compute
// slices and a memory share. On an A100 the compute dimension has 7 slices.
type MIGProfile struct {
	Name          string
	ComputeSlices int
	MemoryGB      float64
}

// StandardMIGProfiles returns the A100-80GB slice catalogue.
func StandardMIGProfiles() []MIGProfile {
	return []MIGProfile{
		{Name: "1g.10gb", ComputeSlices: 1, MemoryGB: 10},
		{Name: "2g.20gb", ComputeSlices: 2, MemoryGB: 20},
		{Name: "3g.40gb", ComputeSlices: 3, MemoryGB: 40},
		{Name: "4g.40gb", ComputeSlices: 4, MemoryGB: 40},
		{Name: "7g.80gb", ComputeSlices: 7, MemoryGB: 80},
	}
}

// MIGInstance is a carved slice that may hold one tenant job.
type MIGInstance struct {
	Profile MIGProfile
	JobID   int64 // FreeDevice when vacant
}

// MIGPartitioner manages the slice layout of one MIG-capable device. It
// models the operational friction the paper's §VIII highlights: the device
// must be idle to repartition, and each reconfiguration costs wall-clock
// seconds (checkpoint + reset + restore).
type MIGPartitioner struct {
	spec      Spec
	instances []MIGInstance
	// ResetCostSec is charged by Repartition; the paper reports "up to a few
	// seconds with user intervention".
	ResetCostSec float64
	// totalResets counts repartitions, exposed for the what-if study.
	totalResets int
}

// NewMIGPartitioner creates a partitioner for a MIG-capable device spec. It
// returns an error for non-MIG devices.
func NewMIGPartitioner(spec Spec) (*MIGPartitioner, error) {
	if !spec.MIGCapable {
		return nil, fmt.Errorf("gpu: %s is not MIG-capable", spec.Name)
	}
	return &MIGPartitioner{spec: spec, ResetCostSec: 3}, nil
}

// Instances returns the current slice layout.
func (p *MIGPartitioner) Instances() []MIGInstance {
	return append([]MIGInstance(nil), p.instances...)
}

// Resets returns how many repartitions have occurred.
func (p *MIGPartitioner) Resets() int { return p.totalResets }

// Busy reports whether any slice currently hosts a job.
func (p *MIGPartitioner) Busy() bool {
	for _, in := range p.instances {
		if in.JobID != FreeDevice {
			return true
		}
	}
	return false
}

// Repartition replaces the slice layout. It fails when any slice is occupied
// (hardware constraint: "resetting MIG configurations require GPUs to be
// idle") or when the requested profiles exceed the device's compute slices
// or memory. It returns the reset cost charged, in seconds.
func (p *MIGPartitioner) Repartition(profiles []MIGProfile) (costSec float64, err error) {
	if p.Busy() {
		return 0, fmt.Errorf("gpu: cannot repartition %s while slices are occupied", p.spec.Name)
	}
	var slices int
	var mem float64
	for _, pr := range profiles {
		if pr.ComputeSlices < 1 {
			return 0, fmt.Errorf("gpu: profile %s has no compute slices", pr.Name)
		}
		slices += pr.ComputeSlices
		mem += pr.MemoryGB
	}
	if slices > p.spec.MaxMIGSlice {
		return 0, fmt.Errorf("gpu: layout needs %d compute slices, device has %d", slices, p.spec.MaxMIGSlice)
	}
	if mem > p.spec.MemoryGB {
		return 0, fmt.Errorf("gpu: layout needs %.0f GB, device has %.0f GB", mem, p.spec.MemoryGB)
	}
	p.instances = make([]MIGInstance, len(profiles))
	for i, pr := range profiles {
		p.instances[i] = MIGInstance{Profile: pr, JobID: FreeDevice}
	}
	p.totalResets++
	return p.ResetCostSec, nil
}

// Place assigns a job to the smallest vacant slice satisfying its demands.
// It returns the slice index, or an error when nothing fits.
func (p *MIGPartitioner) Place(jobID int64, computeSlices int, memoryGB float64) (int, error) {
	best := -1
	for i, in := range p.instances {
		if in.JobID != FreeDevice {
			continue
		}
		if in.Profile.ComputeSlices < computeSlices || in.Profile.MemoryGB < memoryGB {
			continue
		}
		if best == -1 || p.instances[i].Profile.ComputeSlices < p.instances[best].Profile.ComputeSlices {
			best = i
		}
	}
	if best == -1 {
		return 0, fmt.Errorf("gpu: no vacant MIG slice fits %dc/%.0fGB", computeSlices, memoryGB)
	}
	p.instances[best].JobID = jobID
	return best, nil
}

// Evict frees the slice holding jobID. It is an error if the job is absent.
func (p *MIGPartitioner) Evict(jobID int64) error {
	for i := range p.instances {
		if p.instances[i].JobID == jobID {
			p.instances[i].JobID = FreeDevice
			return nil
		}
	}
	return fmt.Errorf("gpu: job %d not placed on this device", jobID)
}

// PackLayout chooses a slice layout covering demands (each demand is a
// compute-slice count) with minimal waste, by first-fit-decreasing over the
// standard profile catalogue. It returns the chosen profiles, or an error if
// the total demand exceeds the device.
func PackLayout(spec Spec, demands []int) ([]MIGProfile, error) {
	if !spec.MIGCapable {
		return nil, fmt.Errorf("gpu: %s is not MIG-capable", spec.Name)
	}
	total := 0
	for _, d := range demands {
		if d < 1 {
			return nil, fmt.Errorf("gpu: demand %d invalid", d)
		}
		total += d
	}
	if total > spec.MaxMIGSlice {
		return nil, fmt.Errorf("gpu: demands need %d slices, device has %d", total, spec.MaxMIGSlice)
	}
	catalogue := StandardMIGProfiles()
	sorted := append([]int(nil), demands...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	var layout []MIGProfile
	memLeft := spec.MemoryGB
	for _, d := range sorted {
		// Smallest catalogue profile with >= d compute slices and memory
		// still available.
		placed := false
		for _, pr := range catalogue {
			if pr.ComputeSlices >= d && pr.MemoryGB <= memLeft {
				layout = append(layout, pr)
				memLeft -= pr.MemoryGB
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("gpu: cannot fit demand %d within remaining %.0f GB", d, memLeft)
		}
	}
	return layout, nil
}
