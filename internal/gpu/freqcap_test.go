package gpu

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFrequencyCapEffect(t *testing.T) {
	spec := V100()
	pm := DefaultPowerModel()
	u := Utilization{SMPct: 80, MemPct: 10}
	nominal := pm.Watts(spec, u)

	// Full clock: nominal power, no slowdown.
	w, s := FrequencyCapEffect(spec, pm, u, 1)
	if math.Abs(w-nominal) > 1e-9 || s != 1 {
		t.Fatalf("f=1: watts %v slowdown %v", w, s)
	}
	// Half clock: dynamic power falls to 1/8, kernel takes 2×.
	w, s = FrequencyCapEffect(spec, pm, u, 0.5)
	wantW := spec.IdleWatts + (nominal-spec.IdleWatts)/8
	if math.Abs(w-wantW) > 1e-9 {
		t.Fatalf("f=0.5: watts %v, want %v", w, wantW)
	}
	if s != 2 {
		t.Fatalf("f=0.5: slowdown %v, want 2", s)
	}
	// Zero clock is a stall.
	if _, s := FrequencyCapEffect(spec, pm, u, 0); !math.IsInf(s, 1) {
		t.Fatalf("f=0 slowdown %v", s)
	}
	// f>1 clamps to nominal.
	if w, _ := FrequencyCapEffect(spec, pm, u, 2); math.Abs(w-nominal) > 1e-9 {
		t.Fatalf("f=2: watts %v", w)
	}
}

func TestFrequencyForPower(t *testing.T) {
	spec := V100()
	// No cap needed when already under target.
	if f := FrequencyForPower(spec, 100, 150); f != 1 {
		t.Fatalf("f = %v, want 1", f)
	}
	// Unreachable target.
	if f := FrequencyForPower(spec, 200, 20); f != 0 {
		t.Fatalf("f = %v, want 0", f)
	}
	// Round trip: capping nominal 225 W to 50 W.
	f := FrequencyForPower(spec, 225, 50)
	got := spec.IdleWatts + (225-spec.IdleWatts)*f*f*f
	if math.Abs(got-50) > 1e-9 {
		t.Fatalf("round trip: %v W at f=%v", got, f)
	}
}

func TestJobFrequencySlowdown(t *testing.T) {
	spec := V100()
	// Job never exceeding the target is untouched.
	if s := JobFrequencySlowdown(spec, 40, 80, 0.5, 150); s != 1 {
		t.Fatalf("slowdown %v, want 1", s)
	}
	// Busy job over target slows; idle-heavy job slows less.
	busy := JobFrequencySlowdown(spec, 150, 280, 0.9, 150)
	idle := JobFrequencySlowdown(spec, 150, 280, 0.1, 150)
	if busy <= idle || idle <= 1 {
		t.Fatalf("busy %v vs idle %v", busy, idle)
	}
	// Unreachable target stalls.
	if s := JobFrequencySlowdown(spec, 100, 200, 0.5, 10); !math.IsInf(s, 1) {
		t.Fatalf("slowdown %v, want +Inf", s)
	}
}

// Property: FrequencyForPower always yields a power at or below the target
// (when reachable), and frequency in [0, 1].
func TestFrequencyForPowerProperty(t *testing.T) {
	spec := V100()
	f := func(nomRaw, targetRaw float64) bool {
		nominal := spec.IdleWatts + math.Abs(math.Mod(nomRaw, spec.TDPWatts-spec.IdleWatts))
		target := spec.IdleWatts + math.Abs(math.Mod(targetRaw, spec.TDPWatts-spec.IdleWatts))
		fr := FrequencyForPower(spec, nominal, target)
		if fr < 0 || fr > 1 {
			return false
		}
		if fr == 0 {
			return target <= spec.IdleWatts
		}
		achieved := spec.IdleWatts + (nominal-spec.IdleWatts)*fr*fr*fr
		return achieved <= math.Max(target, nominal)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
