package gpu

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/metrics"
)

func TestSpecs(t *testing.T) {
	v := V100()
	if v.MemoryGB != 32 || v.TDPWatts != 300 {
		t.Fatalf("V100 spec wrong: %+v", v)
	}
	if a := A100(); !a.MIGCapable || a.MaxMIGSlice != 7 {
		t.Fatalf("A100 spec wrong: %+v", a)
	}
	if tt := T4(); tt.PerfScore >= v.PerfScore {
		t.Fatal("T4 should be slower than V100")
	}
}

func TestDeviceAllocationLifecycle(t *testing.T) {
	d := NewDevice(DeviceID{Node: 3, Index: 1}, V100())
	if !d.Free() {
		t.Fatal("new device not free")
	}
	if err := d.Allocate(42); err != nil {
		t.Fatal(err)
	}
	if d.Free() || d.AllocatedTo() != 42 {
		t.Fatal("allocation not recorded")
	}
	if err := d.Allocate(43); err == nil {
		t.Fatal("double allocation allowed")
	}
	if err := d.Release(); err != nil {
		t.Fatal(err)
	}
	if err := d.Release(); err == nil {
		t.Fatal("double release allowed")
	}
	if err := d.Allocate(-1); err == nil {
		t.Fatal("negative job id allowed")
	}
}

func TestDeviceIDString(t *testing.T) {
	if s := (DeviceID{Node: 2, Index: 0}).String(); s != "n2:g0" {
		t.Fatalf("DeviceID string = %q", s)
	}
}

func TestPowerCap(t *testing.T) {
	d := NewDevice(DeviceID{}, V100())
	if lim := d.EffectiveLimit(); lim != 300 {
		t.Fatalf("uncapped limit = %v", lim)
	}
	if err := d.SetPowerCap(150); err != nil {
		t.Fatal(err)
	}
	if lim := d.EffectiveLimit(); lim != 150 {
		t.Fatalf("capped limit = %v", lim)
	}
	if err := d.SetPowerCap(10); err == nil {
		t.Fatal("cap below idle accepted")
	}
	if err := d.SetPowerCap(0); err != nil {
		t.Fatal(err)
	}
	if lim := d.EffectiveLimit(); lim != 300 {
		t.Fatalf("uncap failed: %v", lim)
	}
}

func TestConversions(t *testing.T) {
	d := NewDevice(DeviceID{}, V100())
	if gb := d.MemoryUsedGB(50); gb != 16 {
		t.Fatalf("MemoryUsedGB(50) = %v", gb)
	}
	if bw := d.PCIeUsedGBps(25); bw != 4 {
		t.Fatalf("PCIeUsedGBps(25) = %v", bw)
	}
}

func TestAffinePowerModel(t *testing.T) {
	m := DefaultPowerModel()
	spec := V100()
	idle := m.Watts(spec, Utilization{})
	if idle != spec.IdleWatts {
		t.Fatalf("idle power = %v, want %v", idle, spec.IdleWatts)
	}
	full := m.Watts(spec, Utilization{SMPct: 100, MemPct: 100, PCIeTxPct: 100, PCIeRxPct: 100})
	if full != spec.TDPWatts {
		t.Fatalf("full power = %v, want %v", full, spec.TDPWatts)
	}
	mid := m.Watts(spec, Utilization{SMPct: 50})
	if mid <= idle || mid >= full {
		t.Fatalf("mid power = %v out of (idle, tdp)", mid)
	}
}

func TestPowerModelMonotoneProperty(t *testing.T) {
	m := DefaultPowerModel()
	spec := V100()
	f := func(a, b float64) bool {
		ua := math.Abs(math.Mod(a, 100))
		ub := math.Abs(math.Mod(b, 100))
		if ua > ub {
			ua, ub = ub, ua
		}
		pa := m.Watts(spec, Utilization{SMPct: ua})
		pb := m.Watts(spec, Utilization{SMPct: ub})
		return pa <= pb+1e-9 && pa >= spec.IdleWatts-1e-9 && pb <= spec.TDPWatts+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearPowerModel(t *testing.T) {
	m := LinearPowerModel{}
	spec := V100()
	if p := m.Watts(spec, Utilization{}); p != 0 {
		t.Fatalf("linear idle power = %v, want 0 (no floor)", p)
	}
	if p := m.Watts(spec, Utilization{SMPct: 100}); p != 300 {
		t.Fatalf("linear full power = %v", p)
	}
}

func TestObserveAppliesCap(t *testing.T) {
	d := NewDevice(DeviceID{}, V100())
	if err := d.SetPowerCap(100); err != nil {
		t.Fatal(err)
	}
	obs := d.Observe(DefaultPowerModel(), Utilization{SMPct: 100, MemPct: 100})
	if obs[metrics.Power] > 100 {
		t.Fatalf("observed power %v exceeds cap", obs[metrics.Power])
	}
	if obs[metrics.SMUtil] != 100 {
		t.Fatalf("observed SM = %v", obs[metrics.SMUtil])
	}
}

func TestUtilizationClamp(t *testing.T) {
	u := Utilization{SMPct: 150, MemPct: -5, MemSizePct: 50}
	u.Clamp()
	if u.SMPct != 100 || u.MemPct != 0 || u.MemSizePct != 50 {
		t.Fatalf("clamp failed: %+v", u)
	}
}

func TestClassifyCapImpact(t *testing.T) {
	cases := []struct {
		avg, max, cap float64
		want          CapImpact
	}{
		{40, 80, 150, CapNoImpact},
		{40, 200, 150, CapImpactsPeak},
		{180, 280, 150, CapImpactsAverage},
		{150, 150, 150, CapNoImpact}, // boundary: at the cap is not over it
	}
	for _, c := range cases {
		if got := ClassifyCapImpact(c.avg, c.max, c.cap); got != c.want {
			t.Fatalf("ClassifyCapImpact(%v,%v,%v) = %v, want %v", c.avg, c.max, c.cap, got, c.want)
		}
	}
	if s := CapImpactsPeak.String(); s != "peak-impacted" {
		t.Fatalf("impact string = %q", s)
	}
}

func TestThrottleSlowdown(t *testing.T) {
	spec := V100()
	if s := ThrottleSlowdown(spec, 100, 150); s != 1 {
		t.Fatalf("under-cap slowdown = %v", s)
	}
	// Demand 275W under 150W cap: (275-25)/(150-25) = 2.
	if s := ThrottleSlowdown(spec, 275, 150); math.Abs(s-2) > 1e-12 {
		t.Fatalf("slowdown = %v, want 2", s)
	}
	if s := ThrottleSlowdown(spec, 100, 20); !math.IsInf(s, 1) {
		t.Fatalf("cap at/below idle with demand: slowdown = %v, want +Inf", s)
	}
}

func TestMetricsAveraged(t *testing.T) {
	a := metrics.MetricSummaries{}
	a[metrics.SMUtil] = metrics.SummaryRecord{Min: 0, Mean: 20, Max: 100}
	b := metrics.MetricSummaries{}
	b[metrics.SMUtil] = metrics.SummaryRecord{Min: 0, Mean: 40, Max: 60}
	avg := metrics.Averaged([]metrics.MetricSummaries{a, b})
	if avg[metrics.SMUtil].Mean != 30 || avg[metrics.SMUtil].Max != 80 {
		t.Fatalf("averaged = %+v", avg[metrics.SMUtil])
	}
	zero := metrics.Averaged(nil)
	if zero[metrics.SMUtil].Mean != 0 {
		t.Fatal("empty average not zero value")
	}
}

func TestSummaryRecordValid(t *testing.T) {
	if !(metrics.SummaryRecord{Min: 1, Mean: 2, Max: 3}).Valid() {
		t.Fatal("valid record rejected")
	}
	if (metrics.SummaryRecord{Min: 3, Mean: 2, Max: 1}).Valid() {
		t.Fatal("inverted record accepted")
	}
	if (metrics.SummaryRecord{Min: math.NaN()}).Valid() {
		t.Fatal("NaN record accepted")
	}
}

func TestMetricStringsAndCapacity(t *testing.T) {
	if metrics.SMUtil.String() != "sm" || metrics.Power.String() != "power" {
		t.Fatal("metric names wrong")
	}
	if metrics.Power.Unit() != "W" || metrics.SMUtil.Unit() != "%" {
		t.Fatal("metric units wrong")
	}
	if metrics.SMUtil.Capacity(300) != 100 || metrics.Power.Capacity(300) != 300 {
		t.Fatal("capacities wrong")
	}
	if metrics.Metric(99).String() == "" {
		t.Fatal("unknown metric string empty")
	}
}
