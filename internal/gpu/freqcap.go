package gpu

import "math"

// Frequency capping is the alternative knob to power capping for fitting a
// GPU fleet under a power budget (the trade-off studied by Patki et al.,
// "Comparing GPU Power and Frequency Capping", cited by the paper). A
// frequency cap slows every kernel deterministically but cuts dynamic power
// cubically (P_dyn ∝ f·V², with V tracking f); a power cap only bites when
// demand exceeds it.

// FrequencyCapEffect returns the instantaneous board power and the kernel
// slowdown factor when the device runs at clock fraction f (0 < f <= 1) of
// its maximum, for a workload at utilization u under power model pm.
//
// Power: the dynamic component (everything above the idle floor) scales
// with f³; the idle floor is clock-independent. Slowdown: compute progress
// scales with f, so a kernel needs 1/f of its nominal time; utilization as
// observed stays the same (the busy fraction stretches with the run).
func FrequencyCapEffect(spec Spec, pm PowerModel, u Utilization, f float64) (watts, slowdown float64) {
	if f <= 0 {
		return spec.IdleWatts, math.Inf(1)
	}
	if f > 1 {
		f = 1
	}
	nominal := pm.Watts(spec, u)
	dynamic := nominal - spec.IdleWatts
	if dynamic < 0 {
		dynamic = 0
	}
	watts = spec.IdleWatts + dynamic*f*f*f
	slowdown = 1 / f
	return watts, slowdown
}

// FrequencyForPower returns the clock fraction that brings a workload with
// the given nominal power draw under targetWatts, or 1 if no cap is needed.
// It returns 0 when the target is unreachable (at or below the idle floor).
func FrequencyForPower(spec Spec, nominalWatts, targetWatts float64) float64 {
	if nominalWatts <= targetWatts {
		return 1
	}
	if targetWatts <= spec.IdleWatts {
		return 0
	}
	dynamic := nominalWatts - spec.IdleWatts
	f := math.Cbrt((targetWatts - spec.IdleWatts) / dynamic)
	if f > 1 {
		f = 1
	}
	return f
}

// JobFrequencySlowdown estimates a job's run-time dilation when its GPU is
// frequency-capped to keep the job's draw under targetWatts. Only the busy
// share of the run dilates: idle phases do not care about the clock.
func JobFrequencySlowdown(spec Spec, avgWatts, maxWatts, busyFrac, targetWatts float64) float64 {
	// Cap against the peak draw: frequency is a static setting, so it must
	// hold the worst phase under the target.
	f := FrequencyForPower(spec, maxWatts, targetWatts)
	if f <= 0 {
		return math.Inf(1)
	}
	if f >= 1 {
		return 1
	}
	if busyFrac < 0 {
		busyFrac = 0
	}
	if busyFrac > 1 {
		busyFrac = 1
	}
	_ = avgWatts
	return 1 + busyFrac*(1/f-1)
}
