// Package gpu models the GPU hardware substrate of the Supercloud system:
// device specifications (Nvidia Volta V100), per-device allocation state,
// the utilization→power model used to synthesize realistic power draws, power
// capping, and a MIG-style partitioner for the co-location discussion in the
// paper's §VIII.
//
// The model is deliberately behavioral, not microarchitectural: the paper's
// analyses consume utilization percentages and watts, so the device exposes
// exactly those observables.
package gpu

import (
	"fmt"

	"repro/internal/metrics"
)

// Spec describes a GPU model. All bandwidth figures are theoretical peaks;
// utilization percentages in the monitoring stream are relative to these.
type Spec struct {
	Name        string
	SMCount     int     // number of streaming multiprocessors
	MemoryGB    float64 // HBM capacity
	MemBWGBps   float64 // peak memory bandwidth
	PCIeGBps    float64 // peak PCIe bandwidth per direction
	TDPWatts    float64 // maximum board power
	IdleWatts   float64 // idle board power
	PerfScore   float64 // relative throughput score (V100 = 1.0), used by the two-tier study
	PriceUSD    float64 // indicative acquisition price, used by the two-tier study
	MIGCapable  bool    // whether the device supports MIG partitioning
	MaxMIGSlice int     // number of MIG compute slices when capable
}

// V100 returns the specification of the Nvidia Volta V100 SXM2 32 GB, the
// GPU installed in all 224 Supercloud nodes (Table I).
func V100() Spec {
	return Spec{
		Name:      "V100",
		SMCount:   80,
		MemoryGB:  32,
		MemBWGBps: 900,
		PCIeGBps:  16,
		TDPWatts:  300,
		IdleWatts: 25,
		PerfScore: 1.0,
		PriceUSD:  10000,
	}
}

// A100 returns the specification of an Nvidia A100 80 GB, used by the
// two-tier and MIG extension studies as the "fast tier" device.
func A100() Spec {
	return Spec{
		Name:        "A100",
		SMCount:     108,
		MemoryGB:    80,
		MemBWGBps:   2039,
		PCIeGBps:    32,
		TDPWatts:    400,
		IdleWatts:   50,
		PerfScore:   2.5,
		PriceUSD:    16000,
		MIGCapable:  true,
		MaxMIGSlice: 7,
	}
}

// T4 returns the specification of an Nvidia T4, used by the two-tier study
// as the inexpensive "slow tier" device for exploratory/IDE jobs.
func T4() Spec {
	return Spec{
		Name:      "T4",
		SMCount:   40,
		MemoryGB:  16,
		MemBWGBps: 300,
		PCIeGBps:  16,
		TDPWatts:  70,
		IdleWatts: 10,
		PerfScore: 0.3,
		PriceUSD:  2500,
	}
}

// DeviceID identifies one physical GPU in the cluster.
type DeviceID struct {
	Node  int // node index in [0, NumNodes)
	Index int // GPU index within the node
}

// String renders the ID as node:gpu.
func (d DeviceID) String() string { return fmt.Sprintf("n%d:g%d", d.Node, d.Index) }

// Device is one physical GPU with allocation and power-cap state. Devices
// are not safe for concurrent mutation; the scheduler owns them.
type Device struct {
	ID   DeviceID
	Spec Spec

	allocatedTo int64   // job ID, or FreeDevice
	powerCap    float64 // watts; 0 means uncapped
}

// FreeDevice is the sentinel job ID of an unallocated device.
const FreeDevice int64 = -1

// NewDevice creates a free device with the given identity and spec.
func NewDevice(id DeviceID, spec Spec) *Device {
	return &Device{ID: id, Spec: spec, allocatedTo: FreeDevice}
}

// Free reports whether the device is unallocated.
func (d *Device) Free() bool { return d.allocatedTo == FreeDevice }

// AllocatedTo returns the owning job ID, or FreeDevice.
func (d *Device) AllocatedTo() int64 { return d.allocatedTo }

// Allocate assigns the device to jobID. It returns an error if the device is
// already allocated — the scheduler invariant "Supercloud does not co-locate
// jobs on the same GPU" is enforced here.
func (d *Device) Allocate(jobID int64) error {
	if jobID < 0 {
		return fmt.Errorf("gpu: invalid job id %d", jobID)
	}
	if !d.Free() {
		return fmt.Errorf("gpu: device %s already allocated to job %d", d.ID, d.allocatedTo)
	}
	d.allocatedTo = jobID
	return nil
}

// Release frees the device. Releasing a free device is an error because it
// indicates double-accounting in the scheduler.
func (d *Device) Release() error {
	if d.Free() {
		return fmt.Errorf("gpu: device %s released while free", d.ID)
	}
	d.allocatedTo = FreeDevice
	return nil
}

// SetPowerCap caps the device at watts (0 removes the cap). Caps below idle
// power are rejected: the hardware cannot go below its floor.
func (d *Device) SetPowerCap(watts float64) error {
	if watts != 0 && watts < d.Spec.IdleWatts {
		return fmt.Errorf("gpu: power cap %.0fW below idle floor %.0fW", watts, d.Spec.IdleWatts)
	}
	d.powerCap = watts
	return nil
}

// PowerCap returns the active cap in watts, or 0 when uncapped.
func (d *Device) PowerCap() float64 { return d.powerCap }

// EffectiveLimit returns the power the device may draw: the cap if set,
// otherwise TDP.
func (d *Device) EffectiveLimit() float64 {
	if d.powerCap > 0 {
		return d.powerCap
	}
	return d.Spec.TDPWatts
}

// MemoryUsedGB converts a memory-size utilization percentage into gigabytes
// on this device.
func (d *Device) MemoryUsedGB(memSizePct float64) float64 {
	return d.Spec.MemoryGB * memSizePct / 100
}

// PCIeUsedGBps converts a PCIe utilization percentage into GB/s.
func (d *Device) PCIeUsedGBps(pct float64) float64 {
	return d.Spec.PCIeGBps * pct / 100
}

// Observe converts an instantaneous utilization state into the full metric
// vector the monitor samples, applying the power model and the active cap.
func (d *Device) Observe(m PowerModel, u Utilization) [metrics.NumMetrics]float64 {
	var out [metrics.NumMetrics]float64
	out[metrics.SMUtil] = u.SMPct
	out[metrics.MemUtil] = u.MemPct
	out[metrics.MemSize] = u.MemSizePct
	out[metrics.PCIeTx] = u.PCIeTxPct
	out[metrics.PCIeRx] = u.PCIeRxPct
	p := m.Watts(d.Spec, u)
	if lim := d.EffectiveLimit(); p > lim {
		p = lim
	}
	out[metrics.Power] = p
	return out
}

// Utilization is an instantaneous utilization state of one GPU, all values
// percentages of the device's capacity.
type Utilization struct {
	SMPct      float64
	MemPct     float64
	MemSizePct float64
	PCIeTxPct  float64
	PCIeRxPct  float64
}

// Clamp bounds every field into [0, 100] in place and returns the receiver
// for chaining.
func (u *Utilization) Clamp() *Utilization {
	for _, f := range []*float64{&u.SMPct, &u.MemPct, &u.MemSizePct, &u.PCIeTxPct, &u.PCIeRxPct} {
		if *f < 0 {
			*f = 0
		}
		if *f > 100 {
			*f = 100
		}
	}
	return u
}
