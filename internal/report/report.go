// Package report renders characterization results as terminal-friendly
// text: aligned tables, ASCII CDF curves, horizontal bar charts, box plots
// and radar summaries — the presentation layer behind cmd/characterize and
// EXPERIMENTS.md.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/stats"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowF appends a row of formatted values: strings pass through, float64
// render with %.4g, ints with %d.
func (t *Table) AddRowF(cells ...any) {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			out[i] = v
		case float64:
			if math.IsNaN(v) {
				out[i] = "n/a"
			} else {
				out[i] = fmt.Sprintf("%.4g", v)
			}
		case int:
			out[i] = fmt.Sprintf("%d", v)
		default:
			out[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(out...)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CDFPlot renders an empirical CDF curve as an ASCII chart of the given
// width and height. A log-scaled x-axis is used when logX is set (the
// paper's run-time CDFs are log-x).
func CDFPlot(w io.Writer, title string, curve []stats.Point, width, height int, logX bool) error {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	if len(curve) == 0 {
		_, err := fmt.Fprintf(w, "%s\n  (no data)\n", title)
		return err
	}
	xmin, xmax := curve[0].X, curve[len(curve)-1].X
	tx := func(x float64) float64 { return x }
	if logX {
		if xmin <= 0 {
			xmin = 1e-3
		}
		tx = math.Log10
	}
	lo, hi := tx(xmin), tx(xmax)
	if hi <= lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range curve {
		x := p.X
		if logX && x <= 0 {
			x = xmin
		}
		col := int((tx(x) - lo) / (hi - lo) * float64(width-1))
		row := height - 1 - int(p.F*float64(height-1))
		if col < 0 {
			col = 0
		}
		if col >= width {
			col = width - 1
		}
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		grid[row][col] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for r, line := range grid {
		label := "    "
		switch r {
		case 0:
			label = "1.0 "
		case height - 1:
			label = "0.0 "
		}
		fmt.Fprintf(&b, "%s|%s|\n", label, string(line))
	}
	axis := fmt.Sprintf("    %-*.4g%*.4g", width/2, xmin, width-width/2, xmax)
	b.WriteString(axis)
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// BarChart renders labeled horizontal bars scaled to the maximum value.
func BarChart(w io.Writer, title string, labels []string, values []float64, width int) error {
	if width < 8 {
		width = 8
	}
	var max float64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for i, l := range labels {
		v := 0.0
		if i < len(values) {
			v = values[i]
		}
		n := 0
		if max > 0 {
			n = int(v / max * float64(width))
		}
		fmt.Fprintf(&b, "%-*s |%s%s %.4g\n", labelW, l,
			strings.Repeat("#", n), strings.Repeat(" ", width-n), v)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// BoxPlot renders one stats.BoxStats as a single text line within [lo, hi].
func BoxPlot(label string, box stats.BoxStats, lo, hi float64, width int) string {
	if width < 16 {
		width = 16
	}
	if hi <= lo {
		hi = lo + 1
	}
	line := []byte(strings.Repeat(" ", width))
	pos := func(v float64) int {
		p := int((v - lo) / (hi - lo) * float64(width-1))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	if box.N == 0 {
		return fmt.Sprintf("%-14s (no data)", label)
	}
	wl, q1, med, q3, wh := pos(box.WhiskerLow), pos(box.Q1), pos(box.Median), pos(box.Q3), pos(box.WhiskerHigh)
	for i := wl; i <= wh && i < width; i++ {
		line[i] = '-'
	}
	for i := q1; i <= q3 && i < width; i++ {
		line[i] = '='
	}
	line[med] = '|'
	return fmt.Sprintf("%-14s [%s] med=%.3g iqr=[%.3g,%.3g]", label, string(line), box.Median, box.Q1, box.Q3)
}

// Pct formats a fraction as a percentage string.
func Pct(frac float64) string {
	if math.IsNaN(frac) {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", frac*100)
}

// Radar renders a star-chart-like listing of axis values (Fig. 7b's radar
// reduced to text).
func Radar(w io.Writer, title string, axes []string, values []float64) error {
	return BarChart(w, title+" (radar axes)", axes, values, 30)
}
