package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// renderedReport builds one small report shared by the rendering tests.
var renderedCache struct {
	ds  *trace.Dataset
	rep *core.Report
}

func testReportData(t *testing.T) (*trace.Dataset, *core.Report) {
	t.Helper()
	if renderedCache.rep == nil {
		cfg := workload.ScaledConfig(0.02)
		cfg.Seed = 5
		g, err := workload.NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		renderedCache.ds = g.BuildDataset(g.GenerateSpecs())
		renderedCache.rep = core.Characterize(renderedCache.ds)
	}
	return renderedCache.ds, renderedCache.rep
}

func TestRenderTableI(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderTableI(&buf, cluster.SupercloudConfig()); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table I", "224", "448", "V100", "Omnipath"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("Table I missing %q", want)
		}
	}
}

func TestRenderReportCoversEveryFigure(t *testing.T) {
	_, rep := testReportData(t)
	var buf bytes.Buffer
	if err := RenderReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Fig 3a", "Fig 3:", "Sec V: median queue wait",
		"Fig 4a", "Fig 4b", "Fig 5", "Fig 6", "Fig 7a", "Fig 7b/8a", "Fig 8b",
		"Fig 9a", "Fig 10/11", "Fig 12", "Fig 13", "Fig 14",
		"Fig 15", "Fig 16", "Fig 17", "Sec IV/V: user population",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing section %q", want)
		}
	}
	if len(out) < 4000 {
		t.Fatalf("report suspiciously short: %d bytes", len(out))
	}
}

func TestRenderPaperComparison(t *testing.T) {
	_, rep := testReportData(t)
	var buf bytes.Buffer
	if err := RenderPaperComparison(&buf, rep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "paper vs measured") {
		t.Fatal("comparison header missing")
	}
	if !strings.Contains(out, "targets within shape bands") {
		t.Fatal("summary line missing")
	}
	// Every figure group appears.
	for _, fig := range []string{"Fig3a", "Fig9a", "Fig15a", "SecIV"} {
		if !strings.Contains(out, fig) {
			t.Errorf("comparison missing %s rows", fig)
		}
	}
}

func TestRenderArrivals(t *testing.T) {
	ds, _ := testReportData(t)
	var buf bytes.Buffer
	if err := RenderArrivals(&buf, core.Arrivals(ds, 0)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "submission process") || !strings.Contains(out, "weekday mean") {
		t.Fatalf("arrivals render malformed:\n%s", out)
	}
}
