package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestExportCSVDir(t *testing.T) {
	cfg := workload.ScaledConfig(0.01)
	cfg.Seed = 3
	g, err := workload.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := g.BuildDataset(g.GenerateSpecs())
	rep := core.Characterize(ds)

	dir := t.TempDir()
	if err := ExportCSVDir(dir, rep); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 17 {
		t.Fatalf("exported %d files, want 17", len(entries))
	}
	// Every file has a header plus at least one data row.
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) < 2 {
			t.Fatalf("%s has %d lines", e.Name(), len(lines))
		}
		if !strings.Contains(lines[0], ",") {
			t.Fatalf("%s header malformed: %q", e.Name(), lines[0])
		}
	}
	// Spot-check one curve file for long form.
	data, err := os.ReadFile(filepath.Join(dir, "fig03a_runtimes.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "series,x,cdf") {
		t.Fatalf("curve header: %q", strings.SplitN(string(data), "\n", 2)[0])
	}
	if !strings.Contains(string(data), "gpu_run_min") || !strings.Contains(string(data), "cpu_run_min") {
		t.Fatal("runtime series missing")
	}
}

func TestExportCSVDirBadPath(t *testing.T) {
	if err := ExportCSVDir("/proc/definitely/not/writable", &core.Report{}); err == nil {
		t.Fatal("unwritable dir accepted")
	}
}
