package report

import (
	"fmt"
	"io"

	"repro/internal/engine"
)

// ciResamples and ciLevel parameterize the across-replication bootstrap.
const (
	ciResamples = 2000
	ciLevel     = 0.95
)

// ReplicationSummary renders a replication batch: one row per metric with
// the across-replication mean, its standard error and bootstrap CI, and the
// replication-distribution extremes. Failed replications are listed after
// the table so a bad seed is visible without killing the report.
func ReplicationSummary(w io.Writer, title string, b *engine.Batch) error {
	t := NewTable(fmt.Sprintf("%s (%d replications, root seed %d)", title, b.Merged.N(), b.RootSeed),
		"metric", "mean", "stderr", "95% CI", "min", "median", "max")
	for _, r := range b.Merged.Rows(ciResamples, ciLevel, b.RootSeed) {
		t.AddRowF(r.Metric, r.Mean, r.StdErr,
			fmt.Sprintf("[%.4g, %.4g]", r.CI.Lo, r.CI.Hi), r.Min, r.Median, r.Max)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	if b.Canceled {
		if _, err := fmt.Fprintf(w, "batch canceled: %d of %d replications completed\n",
			b.Completed(), len(b.Results)); err != nil {
			return err
		}
	}
	for _, f := range b.Failed() {
		if _, err := fmt.Fprintf(w, "replication %d (seed %#x) failed: %v\n", f.Rep, f.Seed, f.Err); err != nil {
			return err
		}
	}
	return nil
}
