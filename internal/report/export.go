package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ExportCSVDir writes every figure of a report as CSV files under dir
// (created if absent), one file per figure, so the plots can be regenerated
// with any external plotting tool. File names follow the paper's figure
// numbering.
func ExportCSVDir(dir string, r *core.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("report: creating export dir: %w", err)
	}
	writers := []struct {
		name string
		fn   func(io.Writer, *core.Report) error
	}{
		{"fig03a_runtimes.csv", exportFig3a},
		{"fig03b_waits.csv", exportFig3b},
		{"fig04a_utilization.csv", exportFig4a},
		{"fig04b_pcie.csv", exportFig4b},
		{"fig05_interfaces.csv", exportFig5},
		{"fig06_phases.csv", exportFig6},
		{"fig07a_active_cov.csv", exportFig7a},
		{"fig08_bottlenecks.csv", exportFig8},
		{"fig09a_power.csv", exportFig9a},
		{"fig10_11_users.csv", exportFig10},
		{"fig12_trends.csv", exportFig12},
		{"fig13_gpu_counts.csv", exportFig13},
		{"fig14_multigpu.csv", exportFig14},
		{"fig15_16_lifecycle.csv", exportFig15},
		{"fig17_user_mix.csv", exportFig17},
		{"sec4_concentration.csv", exportConcentration},
		{"paper_comparison.csv", exportComparison},
	}
	for _, w := range writers {
		f, err := os.Create(filepath.Join(dir, w.name))
		if err != nil {
			return fmt.Errorf("report: creating %s: %w", w.name, err)
		}
		err = w.fn(f, r)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("report: writing %s: %w", w.name, err)
		}
	}
	return nil
}

// writeCurves writes labeled CDF curves in long form: series,x,f.
func writeCurves(w io.Writer, series map[string][]stats.Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "x", "cdf"}); err != nil {
		return err
	}
	// Stable output order.
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		for _, p := range series[name] {
			if err := cw.Write([]string{name, fmtG(p.X), fmtG(p.F)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// sortInts is the int sibling of sortStrings (this file keeps its tiny
// insertion sorts local rather than importing package sort for two calls).
func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func fmtG(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func exportFig3a(w io.Writer, r *core.Report) error {
	return writeCurves(w, map[string][]stats.Point{
		"gpu_run_min": r.Runtimes.GPU.Curve,
		"cpu_run_min": r.Runtimes.CPU.Curve,
	})
}

func exportFig3b(w io.Writer, r *core.Report) error {
	return writeCurves(w, map[string][]stats.Point{
		"gpu_wait_pct_of_service": r.Waits.GPUWaitPct.Curve,
		"cpu_wait_pct_of_service": r.Waits.CPUWaitPct.Curve,
	})
}

func exportFig4a(w io.Writer, r *core.Report) error {
	return writeCurves(w, map[string][]stats.Point{
		"sm":       r.Utilization.SM.Curve,
		"mem":      r.Utilization.Mem.Curve,
		"mem_size": r.Utilization.MemSize.Curve,
	})
}

func exportFig4b(w io.Writer, r *core.Report) error {
	return writeCurves(w, map[string][]stats.Point{
		"pcie_tx": r.PCIe.Tx.Curve,
		"pcie_rx": r.PCIe.Rx.Curve,
	})
}

func exportFig5(w io.Writer, r *core.Report) error {
	series := map[string][]stats.Point{}
	for i := trace.Interface(0); i < trace.NumInterfaces; i++ {
		series["sm_"+i.String()] = r.ByInterface.SM[i].Curve
		series["mem_"+i.String()] = r.ByInterface.Mem[i].Curve
	}
	return writeCurves(w, series)
}

func exportFig6(w io.Writer, r *core.Report) error {
	return writeCurves(w, map[string][]stats.Point{
		"active_time_pct": r.Phases.ActiveTimePct.Curve,
		"idle_cov_pct":    r.Phases.IdleCoV.Curve,
		"active_cov_pct":  r.Phases.ActiveCoVLen.Curve,
	})
}

func exportFig7a(w io.Writer, r *core.Report) error {
	return writeCurves(w, map[string][]stats.Point{
		"sm_cov":      r.ActiveCoV.SMCoV.Curve,
		"mem_cov":     r.ActiveCoV.MemCoV.Curve,
		"memsize_cov": r.ActiveCoV.MemSizeCoV.Curve,
	})
}

func exportFig8(w io.Writer, r *core.Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"resource", "bottleneck_frac"}); err != nil {
		return err
	}
	for _, m := range metrics.BottleneckMetrics {
		if err := cw.Write([]string{m.String(), fmtG(r.Bottlenecks.SingleFrac[m])}); err != nil {
			return err
		}
	}
	// CSV rows land in call order; walk the pair map sorted or the exported
	// figure shuffles between runs.
	for _, pair := range sortedPairKeys(r.Bottlenecks.PairFrac) {
		if err := cw.Write([]string{pair[0].String() + "+" + pair[1].String(), fmtG(r.Bottlenecks.PairFrac[pair])}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// sortedPairKeys returns the keys of a metric-pair map ordered by first then
// second metric — the deterministic row order for Fig. 8b in both the text
// and CSV renders.
func sortedPairKeys(m map[[2]metrics.Metric]float64) [][2]metrics.Metric {
	pairs := make([][2]metrics.Metric, 0, len(m))
	for pair := range m {
		pairs = append(pairs, pair)
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a][0] != pairs[b][0] {
			return pairs[a][0] < pairs[b][0]
		}
		return pairs[a][1] < pairs[b][1]
	})
	return pairs
}

func exportFig9a(w io.Writer, r *core.Report) error {
	return writeCurves(w, map[string][]stats.Point{
		"avg_power_w": r.Power.Avg.Curve,
		"max_power_w": r.Power.Max.Curve,
	})
}

func exportFig10(w io.Writer, r *core.Report) error {
	return writeCurves(w, map[string][]stats.Point{
		"user_avg_run_min": r.UserAverages.AvgRunMin.Curve,
		"user_avg_sm":      r.UserAverages.AvgSM.Curve,
		"user_avg_mem":     r.UserAverages.AvgMem.Curve,
		"user_run_cov":     r.UserCoV.RunCoV.Curve,
		"user_sm_cov":      r.UserCoV.SMCoV.Curve,
		"user_mem_cov":     r.UserCoV.MemCoV.Curve,
	})
}

func exportFig12(w io.Writer, r *core.Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"activity", "behavior", "rho", "p_value", "n"}); err != nil {
		return err
	}
	for _, p := range r.UserTrends.Pairs {
		row := []string{p.Activity, p.Behavior, fmtG(p.Result.Rho), fmtG(p.Result.PValue), strconv.Itoa(p.Result.N)}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func exportFig13(w io.Writer, r *core.Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"gpus", "job_frac"}); err != nil {
		return err
	}
	counts := make([]int, 0, len(r.GPUCounts.FracByCount))
	for k := range r.GPUCounts.FracByCount {
		counts = append(counts, k)
	}
	sortInts(counts)
	for _, k := range counts {
		if err := cw.Write([]string{strconv.Itoa(k), fmtG(r.GPUCounts.FracByCount[k])}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func exportFig14(w io.Writer, r *core.Report) error {
	names := []string{"sm", "mem", "memsize"}
	series := map[string][]stats.Point{}
	for i, n := range names {
		series["cov_all_gpus_"+n] = r.MultiGPU.CoVAllGPUs[i].Curve
		series["cov_active_gpus_"+n] = r.MultiGPU.CoVActiveGPUs[i].Curve
	}
	return writeCurves(w, series)
}

func exportFig15(w io.Writer, r *core.Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"category", "job_share", "hour_share", "median_run_min", "sm_median", "sm_q1", "sm_q3"}); err != nil {
		return err
	}
	for c := trace.Category(0); c < trace.NumCategories; c++ {
		box := r.Lifecycle.Boxes[c][0]
		row := []string{
			c.String(),
			fmtG(r.Lifecycle.JobShare[c]),
			fmtG(r.Lifecycle.HourShare[c]),
			fmtG(r.Lifecycle.MedianRunMin[c]),
			fmtG(box.Median), fmtG(box.Q1), fmtG(box.Q3),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func exportFig17(w io.Writer, r *core.Report) error {
	cw := csv.NewWriter(w)
	header := []string{"user_rank_frac"}
	for c := trace.Category(0); c < trace.NumCategories; c++ {
		header = append(header, "job_frac_"+c.String())
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	n := len(r.UserMix.ByJobs)
	for i, row := range r.UserMix.ByJobs {
		rec := []string{fmtG(float64(i) / maxF(float64(n-1), 1))}
		for c := trace.Category(0); c < trace.NumCategories; c++ {
			rec = append(rec, fmtG(row.JobFrac[c]))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func exportComparison(w io.Writer, r *core.Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"figure", "quantity", "paper", "measured", "band_lo", "band_hi", "in_band"}); err != nil {
		return err
	}
	for _, c := range core.ComparePaper(r) {
		row := []string{c.Figure, c.Quantity, fmtG(c.Paper), fmtG(c.Measured),
			fmtG(c.BandLo), fmtG(c.BandHi), fmt.Sprintf("%t", c.InBand)}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func exportConcentration(w io.Writer, r *core.Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"user_frac", "cumulative_job_share"}); err != nil {
		return err
	}
	for _, p := range r.Concentration.Lorenz {
		if err := cw.Write([]string{fmtG(p.X), fmtG(p.F)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
