package report

import (
	"io"

	"repro/internal/slurm"
)

// AvailabilitySummary renders one fault-injected run's availability and
// goodput accounting: what the failure process did (crashes, drains,
// fatals), what recovery did (requeues, abandonments, checkpoint credit),
// and what it cost (lost capacity-hours, lost work, availability and
// goodput fractions).
func AvailabilitySummary(w io.Writer, title string, st slurm.Stats) error {
	t := NewTable(title, "metric", "value")
	t.AddRowF("node crashes", st.NodeCrashes)
	t.AddRowF("node drains", st.NodeDrains)
	t.AddRowF("node repairs", st.NodeRepairs)
	t.AddRowF("gpu fatal errors", st.GPUFatals)
	t.AddRowF("job requeues", st.Requeues)
	t.AddRowF("jobs abandoned", st.JobsAbandoned)
	t.AddRowF("down GPU-hours", st.DownGPUHours)
	t.AddRowF("lost GPU-hours", st.LostGPUHours)
	t.AddRowF("recovered GPU-hours", st.RecoveredGPUHours)
	t.AddRowF("availability", Pct(st.Availability()))
	t.AddRowF("goodput fraction", Pct(st.GoodputFraction()))
	return t.Render(w)
}
