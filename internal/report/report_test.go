package report

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Specs", "item", "value")
	tb.AddRow("nodes", "224")
	tb.AddRowF("gpus", 448)
	tb.AddRowF("frac", 0.5, "extra-dropped")
	tb.AddRowF("nan", math.NaN())
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Specs", "item", "nodes", "448", "0.5", "n/a"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "extra-dropped") {
		t.Fatal("overflow cell rendered")
	}
}

func TestCDFPlot(t *testing.T) {
	curve := []stats.Point{{X: 1, F: 0.1}, {X: 10, F: 0.5}, {X: 100, F: 1}}
	var buf bytes.Buffer
	if err := CDFPlot(&buf, "runtimes", curve, 40, 8, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "runtimes") || !strings.Contains(out, "*") {
		t.Fatalf("plot malformed:\n%s", out)
	}
	if !strings.Contains(out, "1.0") || !strings.Contains(out, "0.0") {
		t.Fatal("y-axis labels missing")
	}
	// Empty curve degrades gracefully.
	buf.Reset()
	if err := CDFPlot(&buf, "empty", nil, 40, 8, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data") {
		t.Fatal("empty plot not marked")
	}
}

func TestBarChart(t *testing.T) {
	var buf bytes.Buffer
	err := BarChart(&buf, "bottlenecks", []string{"sm", "mem"}, []float64{0.22, 0.01}, 20)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sm") || !strings.Contains(out, "####") {
		t.Fatalf("bar chart malformed:\n%s", out)
	}
	// All-zero values should not panic or divide by zero.
	buf.Reset()
	if err := BarChart(&buf, "zeros", []string{"a"}, []float64{0}, 10); err != nil {
		t.Fatal(err)
	}
}

func TestBoxPlot(t *testing.T) {
	b := stats.Box([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	line := BoxPlot("sm", b, 0, 10, 30)
	if !strings.Contains(line, "sm") || !strings.Contains(line, "|") || !strings.Contains(line, "=") {
		t.Fatalf("box plot malformed: %s", line)
	}
	empty := BoxPlot("none", stats.Box(nil), 0, 10, 30)
	if !strings.Contains(empty, "no data") {
		t.Fatalf("empty box: %s", empty)
	}
}

func TestPct(t *testing.T) {
	if Pct(0.613) != "61.3%" {
		t.Fatalf("Pct = %s", Pct(0.613))
	}
	if Pct(math.NaN()) != "n/a" {
		t.Fatal("NaN pct")
	}
}

func TestRadar(t *testing.T) {
	var buf bytes.Buffer
	if err := Radar(&buf, "Fig7b", []string{"sm", "mem"}, []float64{0.22, 0}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "radar") {
		t.Fatal("radar title missing")
	}
}
