package report

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// RenderTableI writes the system-specification table (paper Table I).
func RenderTableI(w io.Writer, cfg cluster.Config) error {
	t := NewTable("Table I: system specifications",
		"item", "value")
	t.AddRowF("nodes", cfg.Nodes)
	t.AddRowF("CPU cores", cfg.TotalCores())
	t.AddRowF("node RAM (GB)", cfg.MemGBPerNode)
	t.AddRowF("GPUs", cfg.TotalGPUs())
	t.AddRow("GPU type", cfg.GPUSpec.Name)
	t.AddRowF("GPU RAM (GB)", cfg.GPUSpec.MemoryGB)
	t.AddRowF("GPUs per node", cfg.GPUsPerNode)
	t.AddRow("interconnect", cfg.Interconnect)
	t.AddRow("network", cfg.Network)
	t.AddRowF("local SSD (TB)", cfg.LocalSSDTB)
	t.AddRowF("local HDD (TB)", cfg.LocalHDDTB)
	t.AddRowF("shared SSD (TB)", cfg.SharedSSDTB)
	return t.Render(w)
}

// RenderReport writes every figure of a characterization report.
func RenderReport(w io.Writer, r *core.Report) error {
	sections := []func(io.Writer, *core.Report) error{
		renderFig3, renderFig4, renderFig5, renderFig6, renderFig7and8,
		renderFig9, renderFig10and11, renderFig12, renderFig13, renderFig14,
		renderFig15and16, renderFig17, renderConcentration,
	}
	for _, f := range sections {
		if err := f(w, r); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

func renderFig3(w io.Writer, r *core.Report) error {
	if err := CDFPlot(w, "Fig 3a: GPU job run times (minutes, log x)", r.Runtimes.GPU.Curve, 60, 10, true); err != nil {
		return err
	}
	if err := CDFPlot(w, "Fig 3a: CPU job run times (minutes, log x)", r.Runtimes.CPU.Curve, 60, 10, true); err != nil {
		return err
	}
	t := NewTable("Fig 3: service-time statistics", "quantity", "GPU jobs", "CPU jobs")
	t.AddRowF("run time p25 (min)", r.Runtimes.GPU.P25, r.Runtimes.CPU.P25)
	t.AddRowF("run time median (min)", r.Runtimes.GPU.P50, r.Runtimes.CPU.P50)
	t.AddRowF("run time p75 (min)", r.Runtimes.GPU.P75, r.Runtimes.CPU.P75)
	t.AddRow("wait <1 min", Pct(r.Waits.GPUWaitUnder1MinFrac), Pct(1-r.Waits.CPUWaitOver1MinFrac))
	t.AddRow("wait <2% of service", Pct(r.Waits.GPUWaitPctUnder2Frac), "-")
	if err := t.Render(w); err != nil {
		return err
	}
	t2 := NewTable("Sec V: median queue wait by job size", "size", "median wait (s)")
	for c := 0; c < 4; c++ {
		t2.AddRowF(core.SizeClassLabel(c), r.Waits.MedianWaitBySize[c])
	}
	return t2.Render(w)
}

func renderFig4(w io.Writer, r *core.Report) error {
	if err := CDFPlot(w, "Fig 4a: SM utilization (%)", r.Utilization.SM.Curve, 60, 10, false); err != nil {
		return err
	}
	t := NewTable("Fig 4a: GPU resource utilization", "metric", "median", ">50% jobs")
	t.AddRowF("SM (%)", r.Utilization.SM.P50, Pct(r.Utilization.SMOver50))
	t.AddRowF("memory BW (%)", r.Utilization.Mem.P50, Pct(r.Utilization.MemOver50))
	t.AddRowF("memory size (%)", r.Utilization.MemSize.P50, Pct(r.Utilization.SizeOver50))
	if err := t.Render(w); err != nil {
		return err
	}
	t2 := NewTable("Fig 4b: PCIe bandwidth utilization", "direction", "median", "KS-to-uniform")
	t2.AddRowF("Tx (%)", r.PCIe.Tx.P50, r.PCIe.TxUniformKS)
	t2.AddRowF("Rx (%)", r.PCIe.Rx.P50, r.PCIe.RxUniformKS)
	return t2.Render(w)
}

func renderFig5(w io.Writer, r *core.Report) error {
	t := NewTable("Fig 5: utilization by submission interface",
		"interface", "job share", "median SM (%)", "median mem (%)")
	for i := trace.Interface(0); i < trace.NumInterfaces; i++ {
		t.AddRowF(i.String(), Pct(r.ByInterface.Share[i]), r.ByInterface.SM[i].P50, r.ByInterface.Mem[i].P50)
	}
	return t.Render(w)
}

func renderFig6(w io.Writer, r *core.Report) error {
	if err := CDFPlot(w, "Fig 6a: time in active phases (% of run)", r.Phases.ActiveTimePct.Curve, 60, 10, false); err != nil {
		return err
	}
	t := NewTable(fmt.Sprintf("Fig 6: phase structure (%d detailed jobs)", r.Phases.JobsAnalyzed),
		"quantity", "p25", "median", "p75")
	t.AddRowF("active time (%)", r.Phases.ActiveTimePct.P25, r.Phases.ActiveTimePct.P50, r.Phases.ActiveTimePct.P75)
	t.AddRowF("idle-interval CoV (%)", r.Phases.IdleCoV.P25, r.Phases.IdleCoV.P50, r.Phases.IdleCoV.P75)
	t.AddRowF("active-interval CoV (%)", r.Phases.ActiveCoVLen.P25, r.Phases.ActiveCoVLen.P50, r.Phases.ActiveCoVLen.P75)
	return t.Render(w)
}

func renderFig7and8(w io.Writer, r *core.Report) error {
	t := NewTable("Fig 7a: utilization CoV during active phases", "metric", "median CoV (%)")
	t.AddRowF("SM", r.ActiveCoV.SMCoV.P50)
	t.AddRowF("memory BW", r.ActiveCoV.MemCoV.P50)
	t.AddRowF("memory size", r.ActiveCoV.MemSizeCoV.P50)
	if err := t.Render(w); err != nil {
		return err
	}
	axes := make([]string, 0, len(metrics.BottleneckMetrics))
	vals := make([]float64, 0, len(metrics.BottleneckMetrics))
	for _, m := range metrics.BottleneckMetrics {
		axes = append(axes, m.String())
		vals = append(vals, r.Bottlenecks.SingleFrac[m])
	}
	if err := Radar(w, "Fig 7b/8a: fraction of jobs bottlenecked per resource", axes, vals); err != nil {
		return err
	}
	t2 := NewTable("Fig 8b: pairwise bottlenecks", "pair", "job fraction")
	// Rows stream into the table, so the map must be walked in sorted key
	// order — a bare range would shuffle the figure between runs.
	for _, pair := range sortedPairKeys(r.Bottlenecks.PairFrac) {
		t2.AddRowF(pair[0].String()+"+"+pair[1].String(), Pct(r.Bottlenecks.PairFrac[pair]))
	}
	t2.AddRowF("any two or more", Pct(r.Bottlenecks.AnyTwoFrac))
	return t2.Render(w)
}

func renderFig9(w io.Writer, r *core.Report) error {
	if err := CDFPlot(w, "Fig 9a: average GPU power (W)", r.Power.Avg.Curve, 60, 10, false); err != nil {
		return err
	}
	t := NewTable("Fig 9a: GPU power draw", "quantity", "median (W)", "p75 (W)")
	t.AddRowF("average power", r.Power.Avg.P50, r.Power.Avg.P75)
	t.AddRowF("maximum power", r.Power.Max.P50, r.Power.Max.P75)
	t.AddRowF("device TDP", r.Power.TDPWatts, r.Power.TDPWatts)
	return t.Render(w)
}

func renderFig10and11(w io.Writer, r *core.Report) error {
	t := NewTable("Fig 10/11: per-user behavior", "quantity", "median across users")
	t.AddRowF("avg job run time (min)", r.UserAverages.AvgRunMin.P50)
	t.AddRowF("avg SM util (%)", r.UserAverages.AvgSM.P50)
	t.AddRowF("avg mem util (%)", r.UserAverages.AvgMem.P50)
	t.AddRowF("avg mem size (%)", r.UserAverages.AvgMemSize.P50)
	t.AddRowF("run-time CoV (%)", r.UserCoV.RunCoV.P50)
	t.AddRowF("SM CoV (%)", r.UserCoV.SMCoV.P50)
	t.AddRowF("mem CoV (%)", r.UserCoV.MemCoV.P50)
	return t.Render(w)
}

func renderFig12(w io.Writer, r *core.Report) error {
	t := NewTable("Fig 12: Spearman correlation of user activity vs behavior",
		"activity", "behavior", "rho", "p-value")
	for _, p := range r.UserTrends.Pairs {
		t.AddRowF(p.Activity, p.Behavior, p.Result.Rho, p.Result.PValue)
	}
	return t.Render(w)
}

func renderFig13(w io.Writer, r *core.Report) error {
	t := NewTable("Fig 13: job sizes", "quantity", "value")
	t.AddRow("single-GPU jobs", Pct(r.GPUCounts.SingleGPUFrac))
	t.AddRow("multi-GPU jobs", Pct(r.GPUCounts.MultiGPUFrac))
	t.AddRow(">2 GPU jobs", Pct(r.GPUCounts.Over2Frac))
	t.AddRow(">=9 GPU jobs", Pct(r.GPUCounts.NinePlusFrac))
	t.AddRow("multi-GPU share of GPU hours", Pct(r.GPUCounts.MultiGPUHourShare))
	if err := t.Render(w); err != nil {
		return err
	}
	labels := make([]string, 4)
	vals := make([]float64, 4)
	for c := 0; c < 4; c++ {
		labels[c] = core.SizeClassLabel(c)
		vals[c] = r.GPUCounts.HourShareBySizeClass[c]
	}
	return BarChart(w, "Fig 13b: GPU-hour share by job size", labels, vals, 30)
}

func renderFig14(w io.Writer, r *core.Report) error {
	t := NewTable("Fig 14: cross-GPU variability of multi-GPU jobs",
		"metric", "median CoV all GPUs (%)", "median CoV active GPUs (%)")
	names := []string{"SM", "memory BW", "memory size"}
	for i, n := range names {
		t.AddRowF(n, r.MultiGPU.CoVAllGPUs[i].P50, r.MultiGPU.CoVActiveGPUs[i].P50)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "multi-GPU jobs with half+ GPUs idle: %s\n", Pct(r.MultiGPU.HalfIdleJobFrac))
	return err
}

func renderFig15and16(w io.Writer, r *core.Report) error {
	t := NewTable("Fig 15: life-cycle breakdown", "category", "job share", "GPU-hour share", "median run (min)")
	for c := trace.Category(0); c < trace.NumCategories; c++ {
		t.AddRowF(c.String(), Pct(r.Lifecycle.JobShare[c]), Pct(r.Lifecycle.HourShare[c]), r.Lifecycle.MedianRunMin[c])
	}
	if err := t.Render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "Fig 16: SM utilization by category (box plots, 0-100%)"); err != nil {
		return err
	}
	for c := trace.Category(0); c < trace.NumCategories; c++ {
		if _, err := fmt.Fprintln(w, BoxPlot(c.String(), r.Lifecycle.Boxes[c][0], 0, 100, 40)); err != nil {
			return err
		}
	}
	return nil
}

func renderFig17(w io.Writer, r *core.Report) error {
	t := NewTable("Fig 17: per-user life-cycle mix", "quantity", "value")
	t.AddRow("users with <40% mature jobs", Pct(r.UserMix.UsersUnder40PctMatureJobs))
	t.AddRow("users with >60% non-mature GPU hours", Pct(r.UserMix.UsersOver60PctNonMatureHours))
	return t.Render(w)
}

// RenderPaperComparison writes the machine-generated paper-vs-measured
// table (the core of EXPERIMENTS.md).
func RenderPaperComparison(w io.Writer, r *core.Report) error {
	comps := core.ComparePaper(r)
	t := NewTable("paper vs measured (shape bands)",
		"figure", "quantity", "paper", "measured", "band", "ok")
	inBand := 0
	for _, c := range comps {
		mark := "MISS"
		if c.InBand {
			mark = "ok"
			inBand++
		}
		t.AddRowF(c.Figure, c.Quantity, c.Paper, c.Measured,
			fmt.Sprintf("[%g, %g]", c.BandLo, c.BandHi), mark)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%d of %d targets within shape bands\n", inBand, len(comps))
	return err
}

// RenderMarkdownComparison writes the paper-vs-measured table as GitHub
// markdown — the generator behind EXPERIMENTS.md's table.
func RenderMarkdownComparison(w io.Writer, r *core.Report) error {
	if _, err := fmt.Fprintln(w, "| Exp | Quantity | Paper | Measured | Band | In band |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|---|---|---|---|---|---|"); err != nil {
		return err
	}
	inBand, total := 0, 0
	for _, c := range core.ComparePaper(r) {
		total++
		mark := "no"
		if c.InBand {
			mark = "yes"
			inBand++
		}
		if _, err := fmt.Fprintf(w, "| %s | %s | %.4g | %.4g | [%g, %g] | %s |\n",
			c.Figure, c.Quantity, c.Paper, c.Measured, c.BandLo, c.BandHi, mark); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "\n%d of %d targets within shape bands\n", inBand, total)
	return err
}

// RenderArrivals writes the submission-process characterization.
func RenderArrivals(w io.Writer, a core.ArrivalResult) error {
	t := NewTable("submission process (Sec II)", "quantity", "value")
	t.AddRowF("weekday mean submissions/day", a.WeekdayMean)
	t.AddRowF("weekend mean submissions/day", a.WeekendMean)
	t.AddRowF("peak day", a.PeakDay)
	t.AddRowF("surge windows detected", len(a.SurgeWindows))
	if err := t.Render(w); err != nil {
		return err
	}
	for _, win := range a.SurgeWindows {
		if _, err := fmt.Fprintf(w, "  surge: days %d-%d (%.1fx median load)\n",
			win.StartDay, win.EndDay, win.MeanLoadFactor); err != nil {
			return err
		}
	}
	return nil
}

func renderConcentration(w io.Writer, r *core.Report) error {
	th := NewTable("Sec III: host-CPU usage (co-location rationale)",
		"population", "median host-CPU (%)", "p75 (%)")
	th.AddRowF("GPU jobs", r.HostCPUUse.GPUJobs.P50, r.HostCPUUse.GPUJobs.P75)
	th.AddRowF("CPU jobs", r.HostCPUUse.CPUJobs.P50, r.HostCPUUse.CPUJobs.P75)
	if err := th.Render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "GPU jobs using <50%% of their host cores: %s\n\n",
		Pct(r.HostCPUUse.GPUJobsUnder50Frac)); err != nil {
		return err
	}
	t := NewTable("Sec IV/V: user population", "quantity", "value")
	t.AddRowF("users", r.Concentration.Users)
	t.AddRowF("median user jobs", r.Concentration.MedianUserJobs)
	t.AddRow("top-5% user job share", Pct(r.Concentration.Top5PctShare))
	t.AddRow("top-20% user job share", Pct(r.Concentration.Top20PctShare))
	t.AddRowF("Gini coefficient", r.Concentration.Gini)
	t.AddRow("users with >=1 multi-GPU job", Pct(r.Concentration.UsersWithMultiFrac))
	t.AddRow("users with >=3 GPU jobs", Pct(r.Concentration.UsersWith3Frac))
	t.AddRow("users with >=9 GPU jobs", Pct(r.Concentration.UsersWith9Frac))
	return t.Render(w)
}
