package report_test

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/monitor"
	"repro/internal/slurm"
	"repro/internal/workload"
)

// The golden tests pin the characterization figures produced by a fixed-seed
// run of the full generator→scheduler→characterization pipeline. The numbers
// live in testdata/ so an unintended change to any layer — distributions,
// placement, monitoring, metric extraction — shows up as a diff. After an
// INTENDED change, regenerate with:
//
//	go test ./internal/report -run Golden -update
//
// and review the golden diff like any other code change.

var update = flag.Bool("update", false, "rewrite golden files")

const goldenSeed = 7

// goldenSample runs the pinned experiment once: 1% of the paper's population
// compressed into a 25-day window on a 4-node slice of the machine, with
// monitoring attached. The compressed window keeps the nodes contended
// enough that CPU jobs queue while most GPU jobs still start at once — the
// moderate-load regime in which Fig. 3b's ordering is visible.
func goldenSample(t *testing.T) engine.Sample {
	t.Helper()
	gcfg := workload.ScaledConfig(0.01)
	gcfg.DurationDays = 25
	scfg := slurm.DefaultConfig()
	scfg.Cluster.Nodes = 4
	mc := monitor.DefaultConfig()
	mc.GPUIntervalSec = 60
	scfg.Monitor = &mc
	exp := engine.Experiment{Gen: gcfg, Sim: scfg}
	sm, err := exp.Replicator()(context.Background(), 0, goldenSeed)
	if err != nil {
		t.Fatal(err)
	}
	return sm
}

func goldenPath(name string) string {
	return filepath.Join("testdata", name+".golden")
}

// writeGolden serializes the sample as sorted key=value lines with full
// round-trip float precision.
func writeGolden(t *testing.T, path string, sm engine.Sample) {
	t.Helper()
	keys := make([]string, 0, len(sm))
	for k := range sm {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "# golden characterization sample, seed=%d; regenerate with -update\n", goldenSeed)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s\n", k, strconv.FormatFloat(sm[k], 'g', -1, 64))
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// readGolden parses a golden file back into a sample.
func readGolden(t *testing.T, path string) engine.Sample {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	defer f.Close()
	sm := engine.Sample{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		k, vs, ok := strings.Cut(line, "=")
		if !ok {
			t.Fatalf("%s: malformed line %q", path, line)
		}
		v, err := strconv.ParseFloat(vs, 64)
		if err != nil {
			t.Fatalf("%s: bad value in %q: %v", path, line, err)
		}
		sm[k] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return sm
}

// close compares with a relative tolerance so a legitimate last-bit change in
// floating-point evaluation order does not fail the pin, while any real drift
// does. NaN matches NaN (an undefined metric staying undefined is a match).
func close(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	const tol = 1e-9
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestGoldenCharacterization(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	got := goldenSample(t)
	path := goldenPath("characterize_seed7")
	if *update {
		writeGolden(t, path, got)
	}
	want := readGolden(t, path)
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Errorf("metric %s in golden file but not produced (run -update after intended changes)", k)
			continue
		}
		if !close(g, w) {
			t.Errorf("metric %s = %v, golden %v", k, g, w)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("new metric %s not in golden file (run -update after intended changes)", k)
		}
	}
}

// TestGoldenFig3b pins the paper's headline scheduling result: GPU jobs wait
// less than CPU jobs (Fig. 3b), with most GPU waits under a minute.
func TestGoldenFig3b(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	sm := goldenSample(t)
	if gpu, cpu := sm["gpu_wait_median_s"], sm["cpu_wait_median_s"]; !(gpu < cpu) {
		t.Errorf("Fig 3b ordering violated: GPU median wait %v >= CPU median wait %v", gpu, cpu)
	}
	if f := sm["gpu_wait_under_1min_frac"]; !(f > 0.5) {
		t.Errorf("GPU waits under 1 min = %v, want majority", f)
	}
}

// TestGoldenLifecycleMix pins the four-way lifecycle decomposition (§VI):
// the job and GPU-hour shares each form a distribution over the categories.
func TestGoldenLifecycleMix(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	sm := goldenSample(t)
	for _, suffix := range []string{"job_frac", "hour_frac"} {
		sum := 0.0
		for k, v := range sm {
			if strings.HasPrefix(k, "lifecycle_") && strings.HasSuffix(k, suffix) {
				if v < 0 || v > 1 {
					t.Errorf("%s = %v outside [0,1]", k, v)
				}
				sum += v
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("lifecycle %s shares sum to %v, want 1", suffix, sum)
		}
	}
}

// TestGoldenUtilizationQuantiles sanity-bounds the Fig. 4 utilization
// medians: percentages in range and the low-utilization finding (median SM
// utilization well below saturation) present.
func TestGoldenUtilizationQuantiles(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	sm := goldenSample(t)
	for _, k := range []string{"sm_util_median_pct", "mem_util_median_pct", "memsize_median_pct"} {
		if v := sm[k]; math.IsNaN(v) || v < 0 || v > 100 {
			t.Errorf("%s = %v outside [0,100]", k, v)
		}
	}
	if v := sm["sm_util_median_pct"]; !(v < 80) {
		t.Errorf("median SM utilization %v%%; the paper's low-utilization finding should hold", v)
	}
}
