package predict

// The P² bugfix pins (ISSUE 7): before five observations the estimator used
// to index an unsorted bootstrap buffer with a truncated index — n=2 at
// p=0.5 returned the minimum instead of the midpoint — and on heavily tied
// streams the parabolic marker move could push an interior marker onto or
// past its neighbors. These tests sweep the n∈{0..6} boundary against the
// exact linear-interpolated quantile, hammer tied-value streams, and fuzz
// the small-sample path byte-for-byte against stats.QuantileSorted.

import (
	"math"
	"sort"
	"testing"

	"repro/internal/stats"
)

// TestP2BoundaryCounts checks Value at every bootstrap size n∈{0..6} and a
// spread of quantiles: for n<5 the answer must be the exact interpolated
// sample quantile; at n=5 and n=6 the P² markers take over and the estimate
// must stay inside the observed range.
func TestP2BoundaryCounts(t *testing.T) {
	// Deliberately unsorted arrivals, so the old unsorted-buffer bug cannot
	// hide behind monotone input.
	arrivals := []float64{40, 10, 50, 20, 60, 30}
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95} {
		q := NewP2Quantile(p)
		if _, ok := q.Value(); ok {
			t.Fatalf("p=%v: empty estimator produced a value", p)
		}
		for n := 1; n <= len(arrivals); n++ {
			q.Add(arrivals[n-1])
			got, ok := q.Value()
			if !ok {
				t.Fatalf("p=%v n=%d: no value", p, n)
			}
			if !q.validate() {
				t.Fatalf("p=%v n=%d: marker invariant broken", p, n)
			}
			seen := append([]float64(nil), arrivals[:n]...)
			sort.Float64s(seen)
			if n < 5 {
				want := stats.QuantileSorted(seen, p)
				if got != want {
					t.Fatalf("p=%v n=%d: Value=%v, exact quantile=%v", p, n, got, want)
				}
			} else if got < seen[0] || got > seen[n-1] {
				t.Fatalf("p=%v n=%d: Value=%v outside observed range [%v,%v]",
					p, n, got, seen[0], seen[n-1])
			}
		}
	}
}

// TestP2TiedValues drives the degenerate-marker hazard: long runs of
// identical observations (with occasional level shifts) used to let the
// parabolic update produce non-monotone or non-finite heights. The markers
// must stay ordered and finite and the estimate inside the observed range
// for every prefix.
func TestP2TiedValues(t *testing.T) {
	streams := [][]float64{
		{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7},
		{0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 1},
		{5, 5, 5, 5, 5, 5, 5, 5, 100, 5, 5, 5, 5, 5, 5, 5, 5, 5},
		{1, 1, 2, 2, 1, 1, 2, 2, 1, 1, 2, 2, 1, 1, 2, 2},
		{3, 3, 3, 1e-9, 3, 3, 3, 1e-9, 3, 3, 3},
	}
	for si, stream := range streams {
		for _, p := range []float64{0.25, 0.5, 0.9} {
			q := NewP2Quantile(p)
			lo, hi := math.Inf(1), math.Inf(-1)
			for i, v := range stream {
				q.Add(v)
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
				if !q.validate() {
					t.Fatalf("stream %d p=%v: markers broken after %d adds", si, p, i+1)
				}
				got, ok := q.Value()
				if !ok {
					t.Fatalf("stream %d p=%v: no value at n=%d", si, p, i+1)
				}
				if math.IsNaN(got) || got < lo-1e-9 || got > hi+1e-9 {
					t.Fatalf("stream %d p=%v n=%d: Value=%v outside [%v,%v]",
						si, p, i+1, got, lo, hi)
				}
			}
		}
	}
	// All-equal stream must converge to exactly that value.
	q := NewP2Quantile(0.5)
	for i := 0; i < 100; i++ {
		q.Add(42)
	}
	if v, _ := q.Value(); v != 42 {
		t.Fatalf("constant stream median = %v, want 42", v)
	}
}

// FuzzP2Quantile cross-checks the estimator against stats.QuantileSorted:
// exact equality on the n<5 bootstrap path, range-membership and marker
// monotonicity beyond it — for arbitrary byte-derived streams including
// heavy ties.
func FuzzP2Quantile(f *testing.F) {
	f.Add([]byte{1, 2, 3}, uint8(128))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0}, uint8(64))
	f.Add([]byte{255, 0, 255, 0, 255, 0, 255, 0}, uint8(230))
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 1}, uint8(13))
	f.Fuzz(func(t *testing.T, raw []byte, pb uint8) {
		p := (float64(pb) + 1) / 257 // p in (0,1)
		q := NewP2Quantile(p)
		var seen []float64
		for i, b := range raw {
			// Small alphabet on purpose: ties are the hazardous regime.
			v := float64(b % 16)
			q.Add(v)
			seen = append(seen, v)
			if !q.validate() {
				t.Fatalf("markers broken after %d adds (p=%v)", i+1, p)
			}
			got, ok := q.Value()
			if !ok {
				t.Fatalf("no value after %d adds", i+1)
			}
			sorted := append([]float64(nil), seen...)
			sort.Float64s(sorted)
			if len(seen) < 5 {
				if want := stats.QuantileSorted(sorted, p); got != want {
					t.Fatalf("n=%d p=%v: Value=%v, QuantileSorted=%v", len(seen), p, got, want)
				}
			} else if got < sorted[0] || got > sorted[len(sorted)-1] {
				t.Fatalf("n=%d p=%v: Value=%v outside [%v,%v]",
					len(seen), p, got, sorted[0], sorted[len(sorted)-1])
			}
		}
	})
}

// TestP2ValueAllocFree pins the other half of the small-sample fix: Value
// used to copy and sort the bootstrap buffer on every call, which would have
// put an allocation inside the scheduler's backfill decision loop.
func TestP2ValueAllocFree(t *testing.T) {
	q := NewP2Quantile(0.5)
	q.Add(3)
	q.Add(1)
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := q.Value(); !ok {
			t.Fatal("no value")
		}
	})
	if allocs != 0 {
		t.Fatalf("Value allocates %v per call on the small-sample path", allocs)
	}
}
