package predict

import (
	"testing"

	"repro/internal/trace"
)

func TestOnlineClassifierColdAndSeparable(t *testing.T) {
	var c OnlineClassifier
	if _, ok := c.Classify(Features{}); ok {
		t.Fatal("cold classifier produced a class")
	}
	// One category is still cold: nearest-centroid over a single class is
	// vacuous.
	ide := MakeFeatures(5, 1, 10, 0.1, true, false, 24)
	c.Observe(ide, trace.IDE)
	if _, ok := c.Classify(ide); ok {
		t.Fatal("single-category classifier produced a class")
	}
	mature := MakeFeatures(80, 16, 40, 0.9, false, true, 24)
	for i := 0; i < 5; i++ {
		c.Observe(ide, trace.IDE)
		c.Observe(mature, trace.Mature)
	}
	if got, ok := c.Classify(MakeFeatures(6, 1, 11, 0.12, true, false, 24)); !ok || got != trace.IDE {
		t.Fatalf("near-IDE features classified as %v (ok=%v)", got, ok)
	}
	if got, ok := c.Classify(MakeFeatures(75, 15, 38, 0.85, false, true, 24)); !ok || got != trace.Mature {
		t.Fatalf("near-mature features classified as %v (ok=%v)", got, ok)
	}
	if c.Observations() != 11 {
		t.Fatalf("observations = %d", c.Observations())
	}
	// Out-of-range categories are dropped, not stored.
	c.Observe(ide, trace.Category(-1))
	c.Observe(ide, trace.NumCategories)
	if c.Observations() != 11 {
		t.Fatal("out-of-range category absorbed")
	}
}

// Ties break toward the lower category index, so the decision is stable.
func TestOnlineClassifierTieBreak(t *testing.T) {
	var c OnlineClassifier
	f := MakeFeatures(50, 10, 20, 0.5, false, false, 24)
	c.Observe(f, trace.Exploratory)
	c.Observe(f, trace.Development)
	got, ok := c.Classify(f)
	if !ok || got != trace.Exploratory {
		t.Fatalf("tie broke to %v (ok=%v), want the lower index (Exploratory)", got, ok)
	}
}

func TestRuntimeForecasterCascade(t *testing.T) {
	f := NewRuntimeForecaster()
	if _, ok := f.Predict(0, 3600); ok {
		t.Fatal("cold forecaster predicted")
	}
	if _, ok := f.PredictClass(trace.Mature, 3600); ok {
		t.Fatal("cold class forecast predicted")
	}

	// Global and class priors from other users: mature jobs run 1000 s,
	// development jobs 100 s.
	for i := 0; i < 10; i++ {
		f.Observe(10, trace.Mature, 1000)
		f.Observe(11, trace.Development, 100)
	}

	// Unseen user: global median.
	got, ok := f.Predict(0, 1e9)
	if !ok {
		t.Fatal("warm forecaster declined")
	}
	if got < 100 || got > 1000 {
		t.Fatalf("global fallback = %v, want within observed range", got)
	}

	// Thin user with a pure development history: the class-mix blend should
	// sit near the development median, far below the global mix.
	f.Observe(0, trace.Development, 120)
	thin, ok := f.Predict(0, 1e9)
	if !ok {
		t.Fatal("thin user declined")
	}
	devMed, _ := f.PredictClass(trace.Development, 1e9)
	if thin != devMed {
		t.Fatalf("thin-user blend = %v, want the development class median %v", thin, devMed)
	}

	// Rich user history dominates everything.
	f.Observe(0, trace.Development, 50)
	f.Observe(0, trace.Development, 50)
	f.Observe(0, trace.Development, 50)
	rich, _ := f.Predict(0, 1e9)
	if rich > 120 {
		t.Fatalf("rich-user median = %v, want ~50s scale", rich)
	}

	// The limit clamp: no estimate may exceed the requested wall clock.
	if v, _ := f.Predict(10, 300); v > 300 {
		t.Fatalf("estimate %v exceeds limit 300", v)
	}
	if v, _ := f.Predict(10, 0); v < 1 {
		t.Fatalf("unlimited estimate %v below the 1s floor", v)
	}
}

func TestRuntimeForecasterKnobs(t *testing.T) {
	biased := NewRuntimeForecaster()
	biased.ObsScale = 4
	for i := 0; i < 8; i++ {
		biased.Observe(1, trace.Mature, 100)
	}
	if v, _ := biased.Predict(1, 1e9); v != 400 {
		t.Fatalf("ObsScale=4 estimate = %v, want 400", v)
	}

	frozen := NewRuntimeForecaster()
	frozen.FreezeAfterObs = 5
	for i := 0; i < 5; i++ {
		frozen.Observe(1, trace.Mature, 100)
	}
	for i := 0; i < 20; i++ {
		frozen.Observe(1, trace.Mature, 10000) // the workload shifted; the model must not follow
	}
	if v, _ := frozen.Predict(1, 1e9); v != 100 {
		t.Fatalf("frozen estimate = %v, want the pre-freeze 100", v)
	}
	if frozen.Observed() != 25 {
		t.Fatalf("observed = %d, want 25 offered", frozen.Observed())
	}
}
