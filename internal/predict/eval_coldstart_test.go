package predict

// Evaluation-harness audit (ISSUE 7): a predictor that declines a cold-start
// prediction — Predict returning (0, false) — must be excluded from the error
// scores, not charged for a zero guess; and the online replay must be a
// deterministic predict→observe→update sequence over the canonical
// (SubmitSec, JobID) order, whatever order the dataset was assembled in.

import (
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/trace"
)

// coldStartTrace is a cold-start-heavy population: nUsers users submitting
// two jobs each, where user u always runs base+u minutes. A per-user
// predictor is cold on every first job and exact on every second; a global
// predictor is warm almost immediately but never exact.
func coldStartTrace(nUsers int, baseMinutes float64) *trace.Dataset {
	ds := trace.NewDataset(1)
	id := int64(1)
	for round := 0; round < 2; round++ {
		for u := 0; u < nUsers; u++ {
			ds.Add(trace.JobRecord{
				JobID:     id,
				User:      u,
				SubmitSec: float64(round*nUsers+u) * 50,
				RunSec:    (baseMinutes + float64(u)) * 60,
				NumGPUs:   1,
				Exit:      trace.ExitSuccess,
			})
			id++
		}
	}
	return ds
}

// TestColdStartExclusionPreservesLeaderboard is the regression pin: on the
// cold-start-heavy trace, per-user-last is exact on every prediction it
// actually makes (MAE 0) and declines the rest. Scoring its 50% cold starts
// as zero guesses — the audited failure mode — would have charged it ~1000
// minutes of error per declined job and flipped the leaderboard under the
// global baseline.
func TestColdStartExclusionPreservesLeaderboard(t *testing.T) {
	const nUsers = 20
	ds := coldStartTrace(nUsers, 1000)
	scores, err := Evaluate(ds, TargetRunMinutes, []Predictor{&GlobalMean{}, NewLastValue()})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Score{}
	for _, s := range scores {
		byName[s.Predictor] = s
	}
	lv, gm := byName["per-user-last"], byName["global-mean"]
	if lv.ColdStarts != nUsers {
		t.Fatalf("per-user-last cold starts = %d, want %d (one per user)", lv.ColdStarts, nUsers)
	}
	if lv.N != nUsers {
		t.Fatalf("per-user-last scored %d predictions, want %d", lv.N, nUsers)
	}
	if lv.MAE != 0 {
		t.Fatalf("per-user-last MAE = %v; cold starts leaked into the score", lv.MAE)
	}
	if gm.MAE <= 0 {
		t.Fatalf("global-mean MAE = %v, want > 0 (user spread)", gm.MAE)
	}
	// The leaderboard: the exact-when-warm model must rank ahead of the
	// global baseline. Under zero-scored cold starts its MAE would have been
	// ~500 minutes and this ordering would invert.
	if lv.MAE >= gm.MAE {
		t.Fatalf("leaderboard flipped: per-user-last MAE %v >= global-mean %v", lv.MAE, gm.MAE)
	}
	if gm.ColdStarts != 1 {
		t.Fatalf("global-mean cold starts = %d, want 1 (first job only)", gm.ColdStarts)
	}
}

// replaySpy records the harness's call sequence: how many observations had
// been fed back at the moment of each Predict call.
type replaySpy struct {
	observed      int
	seenAtPredict []int
	users         []int
}

func (s *replaySpy) Name() string { return "replay-spy" }

func (s *replaySpy) Predict(user int) (float64, bool) {
	s.seenAtPredict = append(s.seenAtPredict, s.observed)
	s.users = append(s.users, user)
	return 0, false
}

func (s *replaySpy) Observe(int, float64) { s.observed++ }

// TestReplayNoLeakageProperty is the property test: for any insertion order
// of the records — including ties in SubmitSec, where the old unstable sort
// made the replay order run-dependent — Evaluate visits jobs in the
// canonical (SubmitSec, JobID) order and calls Predict for job k with
// exactly k prior observations (predict strictly before observe, no
// leakage), and every real predictor's scores are identical to the
// canonical-order run.
func TestReplayNoLeakageProperty(t *testing.T) {
	mkRecords := func() []trace.JobRecord {
		var recs []trace.JobRecord
		id := int64(1)
		for i := 0; i < 30; i++ {
			recs = append(recs, trace.JobRecord{
				JobID:     id,
				User:      i % 4,
				SubmitSec: float64((i / 3) * 100), // triples of tied submit times
				RunSec:    float64(60 * (1 + i%7)),
				NumGPUs:   1,
				Exit:      trace.ExitSuccess,
			})
			id++
		}
		return recs
	}
	canonical := mkRecords()
	evalWithOrder := func(order []int) ([]Score, *replaySpy, error) {
		ds := trace.NewDataset(1)
		for _, i := range order {
			ds.Add(canonical[i])
		}
		spy := &replaySpy{}
		scores, err := Evaluate(ds, TargetRunMinutes, []Predictor{
			spy, &GlobalMean{}, NewGlobalMedian(), NewLastValue(), NewUserEWMA(0.3),
		})
		return scores, spy, err
	}

	identity := make([]int, len(canonical))
	for i := range identity {
		identity[i] = i
	}
	baseScores, baseSpy, err := evalWithOrder(identity)
	if err != nil {
		t.Fatal(err)
	}
	for k, seen := range baseSpy.seenAtPredict {
		if seen != k {
			t.Fatalf("job %d predicted with %d prior observations; leakage or reordering", k, seen)
		}
	}

	f := func(permSeed uint64) bool {
		rng := dist.New(permSeed)
		order := append([]int(nil), identity...)
		for i := len(order) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		scores, spy, err := evalWithOrder(order)
		if err != nil {
			return false
		}
		for k, seen := range spy.seenAtPredict {
			if seen != k || spy.users[k] != baseSpy.users[k] {
				return false
			}
		}
		for i := range scores {
			if scores[i] != baseScores[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
