package predict

// Online prediction for the scheduler (ISSUE 7 tentpole): the pieces that
// turn this package's after-the-fact trace predictors into decision inputs
// for a live scheduling pass.
//
//   - Features/OnlineClassifier: classify a RUNNING job's life-cycle
//     category from its first-k monitor samples plus submit-time facts — the
//     partial-telemetry task of the MIT Supercloud Challenge (2204.05839).
//     The classifier is a streaming nearest-centroid model: per-category
//     feature centroids, normalized by global per-feature scale, updated
//     only at job completion (predict→observe, no leakage).
//   - RuntimeForecaster: forecast a job's runtime before it starts, QSSF-
//     style (Hu et al., 2109.01313), from a cascade of streaming priors —
//     per-user P² median when the user has history, the user's exit-history
//     class mix blended over per-class medians when the user is thin, the
//     global median otherwise — every estimate clamped to the requested
//     limit, which real Slurm enforces by killing the job.
//
// Everything is deterministic, allocation-light (per-user state is
// slice-indexed, matching the generator's dense user IDs), and O(1) per
// observation — "lightweight, suited for production" (§IV).

import (
	"math"

	"repro/internal/trace"
)

// Feature vector layout for the online classifier.
const (
	FeatSMMean = iota
	FeatMemMean
	FeatMemSizeMean
	FeatActiveFrac
	FeatInteractive
	FeatMultiGPU
	FeatLimitHours

	NumFeatures
)

// Features is one job's observable description at decision time: prefix
// telemetry means plus submit-time facts.
type Features [NumFeatures]float64

// MakeFeatures assembles the vector from prefix-digest means and the job's
// submit-time request shape.
func MakeFeatures(smMean, memMean, memSizeMean, activeFrac float64, interactive, multiGPU bool, limitHours float64) Features {
	var f Features
	f[FeatSMMean] = smMean
	f[FeatMemMean] = memMean
	f[FeatMemSizeMean] = memSizeMean
	f[FeatActiveFrac] = activeFrac
	if interactive {
		f[FeatInteractive] = 1
	}
	if multiGPU {
		f[FeatMultiGPU] = 1
	}
	f[FeatLimitHours] = limitHours
	return f
}

// OnlineClassifier is a streaming nearest-centroid life-cycle classifier.
// The zero value is ready to use and answers (0, false) until it has seen
// at least two completed jobs from at least two categories.
type OnlineClassifier struct {
	count [trace.NumCategories]float64
	sum   [trace.NumCategories]Features
	// Global per-feature scale (Welford), so distance is comparable across
	// percent-valued and hour-valued features.
	n    float64
	mean Features
	m2   Features
}

// Observe folds one completed job's features and true category in.
func (c *OnlineClassifier) Observe(f Features, cat trace.Category) {
	if cat < 0 || cat >= trace.NumCategories {
		return
	}
	c.count[cat]++
	for i := 0; i < NumFeatures; i++ {
		c.sum[cat][i] += f[i]
	}
	c.n++
	for i := 0; i < NumFeatures; i++ {
		d := f[i] - c.mean[i]
		c.mean[i] += d / c.n
		c.m2[i] += d * (f[i] - c.mean[i])
	}
}

// Observations reports how many completed jobs the classifier has seen.
func (c *OnlineClassifier) Observations() int { return int(c.n) }

// Classify returns the nearest category centroid under globally scaled
// Euclidean distance, or (0, false) while the model is cold (fewer than two
// observed categories). Ties break toward the lower category index, keeping
// the decision deterministic.
func (c *OnlineClassifier) Classify(f Features) (trace.Category, bool) {
	seen := 0
	for cat := trace.Category(0); cat < trace.NumCategories; cat++ {
		if c.count[cat] > 0 {
			seen++
		}
	}
	if seen < 2 {
		return 0, false
	}
	var scale Features
	for i := 0; i < NumFeatures; i++ {
		scale[i] = math.Sqrt(c.m2[i]/c.n) + 1e-9
	}
	best := trace.Category(0)
	bestD := math.Inf(1)
	for cat := trace.Category(0); cat < trace.NumCategories; cat++ {
		if c.count[cat] == 0 {
			continue
		}
		d := 0.0
		for i := 0; i < NumFeatures; i++ {
			diff := (f[i] - c.sum[cat][i]/c.count[cat]) / scale[i]
			d += diff * diff
		}
		if d < bestD {
			bestD = d
			best = cat
		}
	}
	return best, true
}

// RuntimeForecaster predicts job runtimes from streaming priors. The zero
// value works; NewRuntimeForecaster sets the production defaults.
type RuntimeForecaster struct {
	// MinUserObs gates the per-user median: below it the user's thin history
	// only contributes through the class-mix blend.
	MinUserObs int
	// ObsScale multiplies every observed runtime before it enters the
	// priors — the mispredict-robustness knob: <1 models users whose history
	// under-represents their future runtimes (the forecaster will
	// under-estimate), >1 the reverse. 0 means 1 (faithful observations).
	ObsScale float64
	// FreezeAfterObs stops learning after that many observations — the
	// stale-prior scenario. 0 means never freeze.
	FreezeAfterObs int

	observed int
	global   P2Quantile
	class    [trace.NumCategories]P2Quantile
	users    []userPrior
}

// userPrior is one user's streaming runtime state.
type userPrior struct {
	med P2Quantile
	n   int
	mix [trace.NumCategories]int // exit-history class mix
}

// NewRuntimeForecaster returns a forecaster with production defaults.
func NewRuntimeForecaster() *RuntimeForecaster {
	f := &RuntimeForecaster{MinUserObs: 3}
	f.initQuantiles()
	return f
}

// initQuantiles lazily sets up the P² targets; it makes the zero value safe.
func (f *RuntimeForecaster) initQuantiles() {
	if f.global.p == 0 {
		f.global = NewP2Quantile(0.5)
		for c := range f.class {
			f.class[c] = NewP2Quantile(0.5)
		}
	}
}

// Observed reports how many runtimes the forecaster has been offered
// (including any dropped after a freeze).
func (f *RuntimeForecaster) Observed() int { return f.observed }

// Observe feeds one completed job's true runtime and life-cycle category.
func (f *RuntimeForecaster) Observe(user int, cat trace.Category, runSec float64) {
	f.initQuantiles()
	f.observed++
	if f.FreezeAfterObs > 0 && f.observed > f.FreezeAfterObs {
		return // stale priors: the model stops tracking the workload
	}
	v := runSec
	if f.ObsScale > 0 {
		v = runSec * f.ObsScale
	}
	f.global.Add(v)
	if cat >= 0 && cat < trace.NumCategories {
		f.class[cat].Add(v)
	}
	if user >= 0 {
		for user >= len(f.users) {
			f.users = append(f.users, userPrior{med: NewP2Quantile(0.5)})
		}
		u := &f.users[user]
		u.med.Add(v)
		u.n++
		if cat >= 0 && cat < trace.NumCategories {
			u.mix[cat]++
		}
	}
}

// Predict forecasts the next runtime for user, clamped to (0, limitSec]
// when a positive limit is given. ok is false only while the forecaster has
// no observations at all.
func (f *RuntimeForecaster) Predict(user int, limitSec float64) (float64, bool) {
	f.initQuantiles()
	est, ok := 0.0, false
	minObs := f.MinUserObs
	if minObs < 1 {
		minObs = 1
	}
	if user >= 0 && user < len(f.users) {
		u := &f.users[user]
		if u.n >= minObs {
			est, ok = u.med.Value()
		} else if u.n > 0 {
			// Thin history: blend the per-class medians by the user's own
			// exit-history mix — the lifecycle prior.
			var wsum, vsum float64
			for cat := trace.Category(0); cat < trace.NumCategories; cat++ {
				if u.mix[cat] == 0 {
					continue
				}
				if cv, cok := f.class[cat].Value(); cok {
					w := float64(u.mix[cat])
					wsum += w
					vsum += w * cv
				}
			}
			if wsum > 0 {
				est, ok = vsum/wsum, true
			}
		}
	}
	if !ok {
		est, ok = f.global.Value()
	}
	if !ok {
		return 0, false
	}
	return clampRuntime(est, limitSec), true
}

// PredictClass forecasts the runtime of a job believed to be in category
// cat — the estimate the scheduler refines a running job with once its
// prefix telemetry has been classified.
func (f *RuntimeForecaster) PredictClass(cat trace.Category, limitSec float64) (float64, bool) {
	f.initQuantiles()
	if cat >= 0 && cat < trace.NumCategories {
		if v, ok := f.class[cat].Value(); ok {
			return clampRuntime(v, limitSec), true
		}
	}
	if v, ok := f.global.Value(); ok {
		return clampRuntime(v, limitSec), true
	}
	return 0, false
}

// clampRuntime bounds an estimate to at least one second and, with a
// positive limit, at most the requested wall-clock limit (Slurm kills past
// it, so no truthful estimate exceeds it).
func clampRuntime(est, limitSec float64) float64 {
	if est < 1 {
		est = 1
	}
	if limitSec > 0 && est > limitSec {
		est = limitSec
	}
	return est
}
