// Package predict implements the paper's §IV future-work takeaway: "This is
// an opportunity for designing new strategies to apply ML-based techniques
// to predict user behavior in a lightweight manner, suited for production
// AI-enabling supercomputers."
//
// It provides streaming per-user predictors for the next job's run time and
// utilization — the quantities a scheduler would use for backfill planning
// and co-location placement — plus an evaluation harness that replays a
// trace in submission order and scores each predictor online (predict, then
// observe, then update: no leakage).
//
// The headline negative result the paper motivates is reproduced here:
// because a user's jobs vary wildly (Fig. 11) and expert users are not more
// predictable (Fig. 12), per-user point predictors barely beat global
// baselines on run time, and only utilization — which is anchored by the
// user's project mix — predicts usefully.
package predict

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Predictor forecasts a scalar property of a user's next job and learns
// from each observed outcome. Implementations are streaming and O(1)-ish
// per update — "lightweight, suited for production".
type Predictor interface {
	// Predict returns the forecast for user's next job, and false when the
	// predictor has no basis yet (cold start).
	Predict(user int) (float64, bool)
	// Observe feeds the realized value after the job completes.
	Observe(user int, value float64)
	// Name identifies the predictor in evaluation tables.
	Name() string
}

// GlobalMean predicts the running mean over all users — the baseline any
// per-user model must beat.
type GlobalMean struct {
	n    float64
	mean float64
}

// Name implements Predictor.
func (g *GlobalMean) Name() string { return "global-mean" }

// Predict implements Predictor.
func (g *GlobalMean) Predict(int) (float64, bool) {
	if g.n == 0 {
		return 0, false
	}
	return g.mean, true
}

// Observe implements Predictor.
func (g *GlobalMean) Observe(_ int, v float64) {
	g.n++
	g.mean += (v - g.mean) / g.n
}

// GlobalMedian predicts the streaming median over all users, approximated
// by the P² quantile estimator (constant memory).
type GlobalMedian struct {
	p2 P2Quantile
}

// NewGlobalMedian builds the estimator.
func NewGlobalMedian() *GlobalMedian {
	return &GlobalMedian{p2: NewP2Quantile(0.5)}
}

// Name implements Predictor.
func (g *GlobalMedian) Name() string { return "global-median" }

// Predict implements Predictor.
func (g *GlobalMedian) Predict(int) (float64, bool) {
	return g.p2.Value()
}

// Observe implements Predictor.
func (g *GlobalMedian) Observe(_ int, v float64) { g.p2.Add(v) }

// LastValue predicts the user's previous observation — the strongest naive
// per-user model when behavior is sticky.
type LastValue struct {
	last map[int]float64
}

// NewLastValue builds the predictor.
func NewLastValue() *LastValue { return &LastValue{last: map[int]float64{}} }

// Name implements Predictor.
func (l *LastValue) Name() string { return "per-user-last" }

// Predict implements Predictor.
func (l *LastValue) Predict(user int) (float64, bool) {
	v, ok := l.last[user]
	return v, ok
}

// Observe implements Predictor.
func (l *LastValue) Observe(user int, v float64) { l.last[user] = v }

// UserEWMA predicts an exponentially weighted moving average per user.
type UserEWMA struct {
	Alpha float64
	state map[int]float64
	seen  map[int]bool
}

// NewUserEWMA builds the predictor with smoothing alpha in (0, 1].
func NewUserEWMA(alpha float64) *UserEWMA {
	return &UserEWMA{Alpha: alpha, state: map[int]float64{}, seen: map[int]bool{}}
}

// Name implements Predictor.
func (u *UserEWMA) Name() string { return fmt.Sprintf("per-user-ewma(%.2g)", u.Alpha) }

// Predict implements Predictor.
func (u *UserEWMA) Predict(user int) (float64, bool) {
	if !u.seen[user] {
		return 0, false
	}
	return u.state[user], true
}

// Observe implements Predictor.
func (u *UserEWMA) Observe(user int, v float64) {
	if !u.seen[user] {
		u.state[user] = v
		u.seen[user] = true
		return
	}
	u.state[user] += u.Alpha * (v - u.state[user])
}

// UserMedianKNN predicts the median of the user's last K observations — a
// tiny instance-based ("k-NN over one's own history") model, robust to the
// heavy run-time tail that wrecks mean-based predictors.
type UserMedianKNN struct {
	K      int
	window map[int][]float64
}

// NewUserMedianKNN builds the predictor over the last k observations.
func NewUserMedianKNN(k int) *UserMedianKNN {
	if k < 1 {
		k = 1
	}
	return &UserMedianKNN{K: k, window: map[int][]float64{}}
}

// Name implements Predictor.
func (u *UserMedianKNN) Name() string { return fmt.Sprintf("per-user-median(%d)", u.K) }

// Predict implements Predictor.
func (u *UserMedianKNN) Predict(user int) (float64, bool) {
	w := u.window[user]
	if len(w) == 0 {
		return 0, false
	}
	s := append([]float64(nil), w...)
	sort.Float64s(s)
	return s[len(s)/2], true
}

// Observe implements Predictor.
func (u *UserMedianKNN) Observe(user int, v float64) {
	w := append(u.window[user], v)
	if len(w) > u.K {
		w = w[len(w)-u.K:]
	}
	u.window[user] = w
}

// Target selects the job property to predict.
type Target int

// The evaluated targets.
const (
	TargetRunMinutes Target = iota
	TargetMeanSM
)

// String names the target.
func (t Target) String() string {
	if t == TargetMeanSM {
		return "mean-sm"
	}
	return "run-minutes"
}

// value extracts the target from a record.
func (t Target) value(j *trace.JobRecord) float64 {
	if t == TargetMeanSM {
		return j.GPU[metrics.SMUtil].Mean
	}
	return j.RunSec / 60
}

// Score is one predictor's online evaluation.
type Score struct {
	Predictor  string
	Target     string
	N          int     // scored predictions (cold starts excluded)
	ColdStarts int     // predictions declined for lack of basis — never scored
	MAE        float64 // mean absolute error
	MedAPE     float64 // median absolute percentage error (robust to tails)
	RMSLE      float64 // root mean squared log error (scale-free)
}

// Evaluate replays the dataset's GPU jobs in submission order through each
// predictor, scoring strictly online: for each job every predictor first
// predicts, then observes — never the reverse — so no predictor ever sees a
// job before guessing it. A cold start (Predict returning ok=false) is a
// declined prediction, not a zero guess: it is counted in ColdStarts and
// excluded from every error metric, so predictors that warm up slowly are
// scored only on the predictions they actually made. Targets with
// non-positive values skip the log-based metrics.
func Evaluate(ds *trace.Dataset, target Target, preds []Predictor) ([]Score, error) {
	jobs := ds.Columns().GPU
	if len(jobs) == 0 {
		return nil, fmt.Errorf("predict: no GPU jobs to evaluate")
	}
	ordered := append([]*trace.JobRecord(nil), jobs...)
	// Tied submit times are real (batch submissions land on the same second),
	// and sort.Slice is not stable — keying on SubmitSec alone made the
	// replay order, and with it every online score, depend on the sorter's
	// internal permutation. The job ID tie-break makes the order total and
	// the evaluation reproducible.
	sort.Slice(ordered, func(a, b int) bool {
		if ordered[a].SubmitSec != ordered[b].SubmitSec {
			return ordered[a].SubmitSec < ordered[b].SubmitSec
		}
		return ordered[a].JobID < ordered[b].JobID
	})

	type acc struct {
		n        int
		cold     int
		absSum   float64
		apes     []float64
		sqLogSum float64
		logN     int
	}
	accs := make([]acc, len(preds))
	for _, j := range ordered {
		truth := target.value(j)
		for pi, p := range preds {
			if guess, ok := p.Predict(j.User); ok {
				a := &accs[pi]
				a.n++
				err := math.Abs(guess - truth)
				a.absSum += err
				if truth > 1e-9 {
					a.apes = append(a.apes, err/truth*100)
				}
				if truth > 0 && guess > 0 {
					d := math.Log1p(guess) - math.Log1p(truth)
					a.sqLogSum += d * d
					a.logN++
				}
			} else {
				accs[pi].cold++
			}
		}
		for _, p := range preds {
			p.Observe(j.User, truth)
		}
	}
	out := make([]Score, len(preds))
	for pi, p := range preds {
		a := &accs[pi]
		s := Score{Predictor: p.Name(), Target: target.String(), N: a.n, ColdStarts: a.cold}
		if a.n > 0 {
			s.MAE = a.absSum / float64(a.n)
		}
		if len(a.apes) > 0 {
			sort.Float64s(a.apes)
			s.MedAPE = a.apes[len(a.apes)/2]
		}
		if a.logN > 0 {
			s.RMSLE = math.Sqrt(a.sqLogSum / float64(a.logN))
		}
		out[pi] = s
	}
	return out, nil
}

// StandardPredictors returns the evaluation lineup: two global baselines and
// three lightweight per-user models.
func StandardPredictors() []Predictor {
	return []Predictor{
		&GlobalMean{},
		NewGlobalMedian(),
		NewLastValue(),
		NewUserEWMA(0.3),
		NewUserMedianKNN(8),
	}
}
