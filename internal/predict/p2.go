package predict

import "math"

// P2Quantile is the Jain–Chlamtac P² streaming quantile estimator: it tracks
// an arbitrary quantile in O(1) memory using five markers, accurate to a few
// percent on smooth distributions — the right tool for a scheduler-side
// predictor that cannot buffer histories.
//
// Two classic hazards are handled explicitly. Before five observations the
// marker invariants do not exist yet, so the first observations are kept
// sorted in the heights array itself and Value returns the exact
// linearly-interpolated sample quantile (the same convention as
// stats.QuantileSorted — the fuzz harness cross-checks them). And on heavily
// tied data the parabolic marker move can land on or beyond a neighboring
// marker (zero-width cells make the formula degenerate, up to NaN/Inf);
// every move is therefore clamped into the closed neighbor interval and
// non-finite moves are discarded, so the marker monotonicity invariant holds
// for every input stream.
type P2Quantile struct {
	p       float64
	n       int
	heights [5]float64
	pos     [5]float64
	want    [5]float64
	inc     [5]float64
}

// NewP2Quantile tracks the p-quantile (p in (0,1)).
func NewP2Quantile(p float64) P2Quantile {
	if p <= 0 {
		p = 0.01
	}
	if p >= 1 {
		p = 0.99
	}
	q := P2Quantile{p: p}
	q.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	q.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return q
}

// Add folds one observation into the estimator.
func (q *P2Quantile) Add(x float64) {
	if q.n < 5 {
		// Insertion-sort the bootstrap sample into the heights array: once
		// the fifth observation lands, the array already is the sorted
		// marker initialization the algorithm requires, and until then
		// Value can read an exact small-sample quantile from it.
		i := q.n
		for i > 0 && q.heights[i-1] > x {
			q.heights[i] = q.heights[i-1]
			i--
		}
		q.heights[i] = x
		q.n++
		if q.n == 5 {
			q.pos = [5]float64{1, 2, 3, 4, 5}
		}
		return
	}
	q.n++
	// Find the cell k containing x and update extreme markers.
	var k int
	switch {
	case x < q.heights[0]:
		q.heights[0] = x
		k = 0
	case x >= q.heights[4]:
		q.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < q.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := 0; i < 5; i++ {
		q.want[i] += q.inc[i]
	}
	// Adjust interior markers with parabolic interpolation.
	for i := 1; i <= 3; i++ {
		d := q.want[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := q.parabolic(i, sign)
			if !(q.heights[i-1] < h && h < q.heights[i+1]) {
				h = q.linear(i, sign)
			}
			// Tied-value guard: with duplicated observations both moves can
			// still produce a height outside the neighbor interval (or a
			// NaN/Inf from a zero-width cell). Clamping into the closed
			// interval keeps the markers monotone; a non-finite move carries
			// no information and is dropped entirely.
			if !math.IsNaN(h) && !math.IsInf(h, 0) {
				if h < q.heights[i-1] {
					h = q.heights[i-1]
				}
				if h > q.heights[i+1] {
					h = q.heights[i+1]
				}
				q.heights[i] = h
			}
			q.pos[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic marker move.
func (q *P2Quantile) parabolic(i int, d float64) float64 {
	return q.heights[i] + d/(q.pos[i+1]-q.pos[i-1])*
		((q.pos[i]-q.pos[i-1]+d)*(q.heights[i+1]-q.heights[i])/(q.pos[i+1]-q.pos[i])+
			(q.pos[i+1]-q.pos[i]-d)*(q.heights[i]-q.heights[i-1])/(q.pos[i]-q.pos[i-1]))
}

// linear is the fallback marker move.
func (q *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return q.heights[i] + d*(q.heights[j]-q.heights[i])/(q.pos[j]-q.pos[i])
}

// Value returns the current estimate and whether any data has arrived. With
// fewer than five observations it is the exact sample quantile under linear
// interpolation (NumPy's default, matching stats.QuantileSorted), computed
// allocation-free from the sorted bootstrap prefix.
func (q *P2Quantile) Value() (float64, bool) {
	switch {
	case q.n == 0:
		return 0, false
	case q.n < 5:
		pos := q.p * float64(q.n-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		if lo < 0 {
			lo = 0
		}
		if hi >= q.n {
			hi = q.n - 1
		}
		if lo == hi {
			return q.heights[lo], true
		}
		frac := pos - float64(lo)
		return q.heights[lo]*(1-frac) + q.heights[hi]*frac, true
	default:
		return q.heights[2], true
	}
}

// N returns the number of observations.
func (q *P2Quantile) N() int { return q.n }

// validate is used by tests: markers must stay ordered and finite (for n<5,
// the sorted bootstrap prefix must be ordered).
func (q *P2Quantile) validate() bool {
	limit := 5
	if q.n < 5 {
		limit = q.n
	}
	for i := 0; i < limit; i++ {
		if math.IsNaN(q.heights[i]) {
			return false
		}
		if i > 0 && q.heights[i] < q.heights[i-1] {
			return false
		}
	}
	return true
}
