package predict

import (
	"math"
	"sort"
)

// P2Quantile is the Jain–Chlamtac P² streaming quantile estimator: it tracks
// an arbitrary quantile in O(1) memory using five markers, accurate to a few
// percent on smooth distributions — the right tool for a scheduler-side
// predictor that cannot buffer histories.
type P2Quantile struct {
	p       float64
	n       int
	heights [5]float64
	pos     [5]float64
	want    [5]float64
	inc     [5]float64
	init    []float64
}

// NewP2Quantile tracks the p-quantile (p in (0,1)).
func NewP2Quantile(p float64) P2Quantile {
	if p <= 0 {
		p = 0.01
	}
	if p >= 1 {
		p = 0.99
	}
	q := P2Quantile{p: p}
	q.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	q.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return q
}

// Add folds one observation into the estimator.
func (q *P2Quantile) Add(x float64) {
	if q.n < 5 {
		q.init = append(q.init, x)
		q.n++
		if q.n == 5 {
			sort.Float64s(q.init)
			copy(q.heights[:], q.init)
			q.pos = [5]float64{1, 2, 3, 4, 5}
			q.init = nil
		}
		return
	}
	q.n++
	// Find the cell k containing x and update extreme markers.
	var k int
	switch {
	case x < q.heights[0]:
		q.heights[0] = x
		k = 0
	case x >= q.heights[4]:
		q.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < q.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := 0; i < 5; i++ {
		q.want[i] += q.inc[i]
	}
	// Adjust interior markers with parabolic interpolation.
	for i := 1; i <= 3; i++ {
		d := q.want[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := q.parabolic(i, sign)
			if !(q.heights[i-1] < h && h < q.heights[i+1]) || math.IsNaN(h) || math.IsInf(h, 0) {
				h = q.linear(i, sign)
			}
			if !math.IsNaN(h) && !math.IsInf(h, 0) {
				q.heights[i] = h
			}
			q.pos[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic marker move.
func (q *P2Quantile) parabolic(i int, d float64) float64 {
	return q.heights[i] + d/(q.pos[i+1]-q.pos[i-1])*
		((q.pos[i]-q.pos[i-1]+d)*(q.heights[i+1]-q.heights[i])/(q.pos[i+1]-q.pos[i])+
			(q.pos[i+1]-q.pos[i]-d)*(q.heights[i]-q.heights[i-1])/(q.pos[i]-q.pos[i-1]))
}

// linear is the fallback marker move.
func (q *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return q.heights[i] + d*(q.heights[j]-q.heights[i])/(q.pos[j]-q.pos[i])
}

// Value returns the current estimate and whether enough data has arrived.
func (q *P2Quantile) Value() (float64, bool) {
	switch {
	case q.n == 0:
		return 0, false
	case q.n < 5:
		// Exact small-sample quantile.
		s := append([]float64(nil), q.init...)
		sort.Float64s(s)
		idx := int(q.p * float64(len(s)-1))
		return s[idx], true
	default:
		return q.heights[2], true
	}
}

// N returns the number of observations.
func (q *P2Quantile) N() int { return q.n }

// validate is used by tests: markers must stay ordered.
func (q *P2Quantile) validate() bool {
	if q.n < 5 {
		return true
	}
	for i := 1; i < 5; i++ {
		if q.heights[i] < q.heights[i-1] {
			return false
		}
		if math.IsNaN(q.heights[i]) {
			return false
		}
	}
	return true
}
