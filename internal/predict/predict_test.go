package predict

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestGlobalMean(t *testing.T) {
	g := &GlobalMean{}
	if _, ok := g.Predict(1); ok {
		t.Fatal("cold predictor produced a value")
	}
	g.Observe(1, 10)
	g.Observe(2, 20)
	v, ok := g.Predict(99)
	if !ok || v != 15 {
		t.Fatalf("mean = %v, %v", v, ok)
	}
}

func TestLastValueAndEWMA(t *testing.T) {
	l := NewLastValue()
	e := NewUserEWMA(0.5)
	for _, v := range []float64{10, 20, 30} {
		l.Observe(7, v)
		e.Observe(7, v)
	}
	if v, _ := l.Predict(7); v != 30 {
		t.Fatalf("last = %v", v)
	}
	// EWMA(0.5): 10 -> 15 -> 22.5.
	if v, _ := e.Predict(7); math.Abs(v-22.5) > 1e-12 {
		t.Fatalf("ewma = %v", v)
	}
	if _, ok := e.Predict(8); ok {
		t.Fatal("unseen user predicted")
	}
}

func TestUserMedianKNN(t *testing.T) {
	k := NewUserMedianKNN(3)
	for _, v := range []float64{100, 1, 2, 3} { // the 100 rolls out of the window
		k.Observe(5, v)
	}
	if v, _ := k.Predict(5); v != 2 {
		t.Fatalf("windowed median = %v, want 2", v)
	}
	if NewUserMedianKNN(0).K != 1 {
		t.Fatal("k floor missing")
	}
}

func TestP2QuantileAccuracy(t *testing.T) {
	rng := dist.New(5)
	q := NewP2Quantile(0.5)
	var all []float64
	for i := 0; i < 20000; i++ {
		v := math.Exp(rng.NormFloat64())
		q.Add(v)
		all = append(all, v)
		if !q.validate() {
			t.Fatalf("marker invariant broken at %d", i)
		}
	}
	sort.Float64s(all)
	exact := all[len(all)/2]
	got, ok := q.Value()
	if !ok {
		t.Fatal("no value")
	}
	if math.Abs(got-exact)/exact > 0.1 {
		t.Fatalf("P2 median %v vs exact %v", got, exact)
	}
}

func TestP2SmallSamples(t *testing.T) {
	q := NewP2Quantile(0.5)
	if _, ok := q.Value(); ok {
		t.Fatal("empty estimator produced value")
	}
	q.Add(3)
	q.Add(1)
	q.Add(2)
	v, ok := q.Value()
	if !ok || v != 2 {
		t.Fatalf("small-sample median = %v", v)
	}
}

// Property: P² stays within the observed range and keeps markers ordered for
// arbitrary inputs.
func TestP2Property(t *testing.T) {
	f := func(raw []float64) bool {
		q := NewP2Quantile(0.5)
		lo, hi := math.Inf(1), math.Inf(-1)
		n := 0
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				// Predictor inputs are run times and utilization percents;
				// restrict the property domain to physical magnitudes (the
				// estimator guards against overflow separately).
				continue
			}
			q.Add(v)
			n++
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			if !q.validate() {
				return false
			}
		}
		if n == 0 {
			return true
		}
		v, ok := q.Value()
		return ok && v >= lo-1e-9 && v <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateOnline(t *testing.T) {
	// Deterministic toy trace: user 0 always runs 10-minute jobs, user 1
	// alternates 5 and 500. Per-user models nail user 0; nobody nails user 1.
	ds := trace.NewDataset(1)
	id := int64(1)
	for i := 0; i < 40; i++ {
		run := 600.0
		user := 0
		if i%2 == 1 {
			user = 1
			if i%4 == 1 {
				run = 300
			} else {
				run = 30000
			}
		}
		ds.Add(trace.JobRecord{
			JobID: id, User: user, SubmitSec: float64(i) * 100, RunSec: run,
			NumGPUs: 1, Exit: trace.ExitSuccess,
		})
		id++
	}
	scores, err := Evaluate(ds, TargetRunMinutes, StandardPredictors())
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 5 {
		t.Fatalf("scores = %d", len(scores))
	}
	byName := map[string]Score{}
	for _, s := range scores {
		byName[s.Predictor] = s
		if s.N == 0 {
			t.Fatalf("%s scored nothing", s.Predictor)
		}
	}
	// Per-user EWMA must beat the global mean here: user 0 is perfectly
	// predictable and user 1 wrecks both equally.
	if byName["per-user-ewma(0.3)"].MAE >= byName["global-mean"].MAE {
		t.Fatalf("EWMA MAE %v >= global %v", byName["per-user-ewma(0.3)"].MAE, byName["global-mean"].MAE)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	if _, err := Evaluate(trace.NewDataset(1), TargetRunMinutes, StandardPredictors()); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

// TestPaperNegativeResult reproduces the §IV takeaway on a generated
// population: per-user run-time prediction barely improves on the global
// median (users are individually unpredictable), while utilization — pinned
// by each user's project mix — gains clearly from per-user state.
func TestPaperNegativeResult(t *testing.T) {
	cfg := workload.ScaledConfig(0.05)
	cfg.Seed = 41
	g, err := workload.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := g.BuildDataset(g.GenerateSpecs())

	run, err := Evaluate(ds, TargetRunMinutes, StandardPredictors())
	if err != nil {
		t.Fatal(err)
	}
	sm, err := Evaluate(ds, TargetMeanSM, StandardPredictors())
	if err != nil {
		t.Fatal(err)
	}
	get := func(scores []Score, name string) Score {
		for _, s := range scores {
			if s.Predictor == name {
				return s
			}
		}
		t.Fatalf("predictor %s missing", name)
		return Score{}
	}
	runGlobal := get(run, "global-median").MedAPE
	runUser := get(run, "per-user-median(8)").MedAPE
	smGlobal := get(sm, "global-median").MedAPE
	smUser := get(sm, "per-user-median(8)").MedAPE
	t.Logf("run-minutes MedAPE: global %.0f%% vs per-user %.0f%%", runGlobal, runUser)
	t.Logf("mean-SM     MedAPE: global %.0f%% vs per-user %.0f%%", smGlobal, smUser)

	// The paper's conclusion — "user-specific predictive resource
	// management strategies may not remain effective" — shows up as
	// marginal per-user gains on BOTH targets: knowing a user's full
	// history buys under 40 % relative improvement over a global baseline.
	runGain := 1 - runUser/runGlobal
	smGain := 1 - smUser/smGlobal
	if runGain > 0.4 {
		t.Errorf("run-time predictability too high: gain %.2f (paper: users unpredictable)", runGain)
	}
	if smGain > 0.4 {
		t.Errorf("utilization predictability too high: gain %.2f", smGain)
	}
	// Everything stays bad in absolute terms: even the best run-time
	// predictor misses by more than 60 % (median APE).
	if runUser < 60 {
		t.Errorf("per-user run-time MedAPE %.0f%% suspiciously good", runUser)
	}
}
