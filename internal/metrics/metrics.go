// Package metrics defines the shared measurement vocabulary of the
// repository: the GPU resource metrics the paper characterizes (SM
// utilization, memory-bandwidth utilization, memory-size utilization, PCIe
// Tx/Rx bandwidth, power draw), their units, and the per-metric summary
// record that both the monitoring pipeline and the trace dataset exchange.
package metrics

import (
	"fmt"
	"math"
)

// Metric identifies one monitored GPU resource. The enumeration order is
// stable and used as an array index throughout the pipeline.
type Metric int

// The monitored GPU metrics, matching the fields nvidia-smi reports and the
// paper analyzes.
const (
	// SMUtil is the streaming-multiprocessor utilization percentage
	// ("utilization.gpu" in nvidia-smi terms).
	SMUtil Metric = iota
	// MemUtil is the GPU memory-bandwidth utilization percentage
	// ("utilization.memory"); the paper calls it simply "memory utilization"
	// in keeping with Nvidia terminology.
	MemUtil
	// MemSize is the percentage of the GPU memory amount in use.
	MemSize
	// PCIeTx is the host-to-device transmit bandwidth utilization percentage
	// relative to the PCIe link maximum.
	PCIeTx
	// PCIeRx is the device-to-host receive bandwidth utilization percentage
	// relative to the PCIe link maximum.
	PCIeRx
	// Power is the board power draw in watts.
	Power

	// NumMetrics is the number of monitored metrics; valid metrics are in
	// [0, NumMetrics).
	NumMetrics
)

// UtilizationMetrics lists the percentage-valued metrics that the
// utilization analyses (Figs. 4, 5, 7, 10, 11, 14, 16) iterate over.
var UtilizationMetrics = []Metric{SMUtil, MemUtil, MemSize}

// BottleneckMetrics lists the metrics considered by the bottleneck analyses
// (Figs. 7b, 8): a job is bottlenecked on a metric when it touches the
// metric's capacity during its run.
var BottleneckMetrics = []Metric{SMUtil, MemUtil, MemSize, PCIeTx, PCIeRx}

// String returns the metric's short name as used in figure labels.
func (m Metric) String() string {
	switch m {
	case SMUtil:
		return "sm"
	case MemUtil:
		return "mem"
	case MemSize:
		return "memsize"
	case PCIeTx:
		return "pcie_tx"
	case PCIeRx:
		return "pcie_rx"
	case Power:
		return "power"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// Unit returns the metric's unit label.
func (m Metric) Unit() string {
	if m == Power {
		return "W"
	}
	return "%"
}

// Capacity returns the metric's saturation value in its own unit given the
// device's power limit in watts. Percent metrics saturate at 100.
func (m Metric) Capacity(powerLimitWatts float64) float64 {
	if m == Power {
		return powerLimitWatts
	}
	return 100
}

// Sample is one time-stamped observation of every metric on one GPU, the
// record the 100 ms monitoring stream is made of.
type Sample struct {
	TimeSec float64             // seconds since job start
	Values  [NumMetrics]float64 // indexed by Metric
}

// SummaryRecord is the per-metric min/mean/max digest that production
// monitoring stores for every job — the paper's dataset records exactly this
// ("for all jobs, the minimum, mean, and maximum resource utilization of a
// variety of CPU and GPU metrics are collected").
type SummaryRecord struct {
	Min, Mean, Max float64
}

// Valid reports whether the record is internally consistent
// (min <= mean <= max, no NaNs).
func (s SummaryRecord) Valid() bool {
	if math.IsNaN(s.Min) || math.IsNaN(s.Mean) || math.IsNaN(s.Max) {
		return false
	}
	return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9
}

// MetricSummaries digests all metrics of one GPU over one job.
type MetricSummaries [NumMetrics]SummaryRecord

// Averaged returns the element-wise average of several GPUs' summaries —
// the paper's stated methodology for multi-GPU jobs ("the average over
// multiple GPUs was computed to get a single number"). It returns a zero
// value when the input is empty.
func Averaged(per []MetricSummaries) MetricSummaries {
	var out MetricSummaries
	if len(per) == 0 {
		return out
	}
	n := float64(len(per))
	for m := Metric(0); m < NumMetrics; m++ {
		var lo, mean, hi float64
		for _, p := range per {
			lo += p[m].Min
			mean += p[m].Mean
			hi += p[m].Max
		}
		out[m] = SummaryRecord{Min: lo / n, Mean: mean / n, Max: hi / n}
	}
	return out
}
