package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMetricNamesAndUnits(t *testing.T) {
	cases := map[Metric]string{
		SMUtil: "sm", MemUtil: "mem", MemSize: "memsize",
		PCIeTx: "pcie_tx", PCIeRx: "pcie_rx", Power: "power",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", m, got, want)
		}
	}
	if Metric(42).String() != "metric(42)" {
		t.Error("unknown metric string")
	}
	if Power.Unit() != "W" || SMUtil.Unit() != "%" {
		t.Error("units wrong")
	}
}

func TestCapacity(t *testing.T) {
	if SMUtil.Capacity(300) != 100 {
		t.Error("percent capacity")
	}
	if Power.Capacity(250) != 250 {
		t.Error("power capacity")
	}
}

func TestMetricLists(t *testing.T) {
	if len(UtilizationMetrics) != 3 {
		t.Fatalf("utilization metrics = %d", len(UtilizationMetrics))
	}
	if len(BottleneckMetrics) != 5 {
		t.Fatalf("bottleneck metrics = %d", len(BottleneckMetrics))
	}
	for _, m := range BottleneckMetrics {
		if m < 0 || m >= NumMetrics {
			t.Fatalf("invalid metric %d in list", m)
		}
		if m == Power {
			t.Fatal("power is not a bottleneck metric (no 100% semantics)")
		}
	}
}

func TestSummaryRecordValid(t *testing.T) {
	good := SummaryRecord{Min: 1, Mean: 2, Max: 3}
	if !good.Valid() {
		t.Error("valid record rejected")
	}
	if (SummaryRecord{Min: 3, Mean: 2, Max: 1}).Valid() {
		t.Error("inverted record accepted")
	}
	if (SummaryRecord{Mean: math.NaN()}).Valid() {
		t.Error("NaN record accepted")
	}
	// Equal values are valid (constant metric).
	if !(SummaryRecord{Min: 5, Mean: 5, Max: 5}).Valid() {
		t.Error("constant record rejected")
	}
}

func TestAveragedLinearInInputs(t *testing.T) {
	var a, b MetricSummaries
	for m := Metric(0); m < NumMetrics; m++ {
		a[m] = SummaryRecord{Min: 1, Mean: 2, Max: 3}
		b[m] = SummaryRecord{Min: 3, Mean: 6, Max: 9}
	}
	avg := Averaged([]MetricSummaries{a, b})
	for m := Metric(0); m < NumMetrics; m++ {
		if avg[m].Min != 2 || avg[m].Mean != 4 || avg[m].Max != 6 {
			t.Fatalf("metric %v averaged wrong: %+v", m, avg[m])
		}
	}
	if z := Averaged(nil); z[SMUtil].Mean != 0 {
		t.Error("empty average not zero")
	}
}

// Property: averaging N identical summaries is the identity, and averaging
// preserves validity.
func TestAveragedProperty(t *testing.T) {
	f := func(lo, spanA, spanB float64, nRaw uint8) bool {
		if math.IsNaN(lo) || math.IsInf(lo, 0) || math.Abs(lo) > 1e12 {
			return true
		}
		a := math.Abs(math.Mod(spanA, 100))
		b := math.Abs(math.Mod(spanB, 100))
		rec := SummaryRecord{Min: lo, Mean: lo + a, Max: lo + a + b}
		var s MetricSummaries
		for m := Metric(0); m < NumMetrics; m++ {
			s[m] = rec
		}
		n := int(nRaw%5) + 1
		in := make([]MetricSummaries, n)
		for i := range in {
			in[i] = s
		}
		avg := Averaged(in)
		for m := Metric(0); m < NumMetrics; m++ {
			if math.Abs(avg[m].Mean-rec.Mean) > 1e-6*(1+math.Abs(rec.Mean)) {
				return false
			}
			if !avg[m].Valid() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleShape(t *testing.T) {
	var s Sample
	s.TimeSec = 1.5
	s.Values[Power] = 45
	if s.Values[Power] != 45 || s.Values[SMUtil] != 0 {
		t.Fatal("sample storage wrong")
	}
}
