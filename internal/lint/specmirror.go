package lint

import (
	"go/ast"
	"regexp"
	"strings"
	"unicode"
	"unicode/utf8"
)

// SpecMirror audits the naive.go reference-spec convention. Two packages
// (internal/cluster, internal/core) keep a verbatim, obviously-correct
// implementation of their hot paths in a file named naive.go; the optimized
// implementations are proven equivalent to it by randomized audit and
// equivalence tests. That proof only means something while three structural
// facts hold, which this analyzer checks for every `naive`-prefixed function
// declared in a naive.go file:
//
//  1. It has a matching optimized counterpart in the same package: a
//     function or method whose name is the spec name with the `naive`
//     prefix stripped (first-letter case-insensitive, optional `Cols`
//     suffix for the columnar variants) — or, when the optimized path has a
//     different shape, one named explicitly in the spec's doc comment with
//     a `Mirrors: <name>` line. A spec with no counterpart is dead weight
//     that will silently drift from the code it is supposed to check.
//  2. The named counterpart actually exists (a stale `Mirrors:` line is an
//     error).
//  3. It is anchored by the package's tests: reachable, through same-
//     package calls, from an identifier referenced in a *_test.go file.
//     An unreachable spec is one no equivalence test can be exercising —
//     the audit exists only on paper.
//
// Runtime backstop: the naive-equivalence tests themselves
// (TestColumnarMatchesNaive, the cluster audit tests) — which cannot notice
// that they stopped covering a spec function.
var SpecMirror = &Analyzer{
	Name:    "specmirror",
	Doc:     "every naive.go spec func needs an optimized counterpart and a test-reachable equivalence anchor",
	Default: true,
	Run:     runSpecMirror,
}

const naivePrefixLen = len("naive")

// mirrorsRe extracts the counterpart name from a "Mirrors: name" doc line.
var mirrorsRe = regexp.MustCompile(`(?m)^\s*Mirrors:\s*([A-Za-z_][A-Za-z_0-9]*)\s*\.?\s*$`)

func runSpecMirror(pass *Pass) error {
	// Gather every function declaration in the package, noting which come
	// from naive.go files.
	type fn struct {
		decl  *ast.FuncDecl
		naive bool
	}
	var fns []fn
	declared := make(map[string]bool)
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		isNaive := strings.HasSuffix(name, "/naive.go") || name == "naive.go"
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fns = append(fns, fn{decl: fd, naive: isNaive})
			declared[fd.Name.Name] = true
		}
	}
	hasNaive := false
	for _, f := range fns {
		if f.naive {
			hasNaive = true
			break
		}
	}
	if !hasNaive {
		return nil
	}

	decls := make([]*ast.FuncDecl, len(fns))
	for i, f := range fns {
		decls[i] = f.decl
	}
	reached := testReachable(pass, decls)

	for _, f := range fns {
		name := f.decl.Name.Name
		if !f.naive || !isNaiveName(name) {
			continue
		}
		// Counterpart check.
		if mirror := mirrorsDirective(f.decl); mirror != "" {
			if !declared[mirror] {
				pass.Reportf(f.decl.Name.Pos(),
					"spec %s declares \"Mirrors: %s\" but %s is not declared in this package", name, mirror, mirror)
			}
		} else if c, ok := counterpartName(name, declared); !ok {
			pass.Reportf(f.decl.Name.Pos(),
				"spec %s has no optimized counterpart %s in this package; add one or name it with a \"Mirrors: <name>\" doc line", name, c)
		}
		// Anchoring check.
		if !reached[name] {
			pass.Reportf(f.decl.Name.Pos(),
				"spec %s is not reachable from any *_test.go in this package; an equivalence test must anchor it", name)
		}
	}
	return nil
}

// isNaiveName reports whether name carries the spec prefix.
func isNaiveName(name string) bool {
	if len(name) <= naivePrefixLen {
		return false
	}
	return strings.EqualFold(name[:naivePrefixLen], "naive")
}

// counterpartName derives the expected optimized name(s) for a spec and
// reports whether any is declared. The returned string names the primary
// candidate for the diagnostic.
func counterpartName(name string, declared map[string]bool) (string, bool) {
	stripped := name[naivePrefixLen:]
	lower := lowerFirst(stripped)
	upper := upperFirst(stripped)
	for _, cand := range []string{upper, lower, upper + "Cols", lower + "Cols"} {
		if declared[cand] {
			return cand, true
		}
	}
	return upper + " (or " + lower + ", " + upper + "Cols)", false
}

func lowerFirst(s string) string {
	r, n := utf8.DecodeRuneInString(s)
	return string(unicode.ToLower(r)) + s[n:]
}

func upperFirst(s string) string {
	r, n := utf8.DecodeRuneInString(s)
	return string(unicode.ToUpper(r)) + s[n:]
}

// mirrorsDirective returns the counterpart named by a "Mirrors: x" doc-
// comment line, or "".
func mirrorsDirective(fd *ast.FuncDecl) string {
	if fd.Doc == nil {
		return ""
	}
	m := mirrorsRe.FindStringSubmatch(fd.Doc.Text())
	if m == nil {
		return ""
	}
	return m[1]
}

// testReachable computes, name-wise, which package functions are reachable
// from identifiers mentioned in the package's _test.go files: the seed set
// is every identifier in every test file; a function whose name is reached
// contributes every identifier in its body. Name-based resolution (rather
// than object-based) is deliberate — test files are parsed but not type-
// checked — and is sound for this purpose up to shadowing, which the
// naming convention (naiveX, allocateXJob) makes a non-issue.
func testReachable(pass *Pass, fns []*ast.FuncDecl) map[string]bool {
	bodies := make(map[string]map[string]bool, len(fns))
	for _, fd := range fns {
		refs := make(map[string]bool)
		if fd.Body != nil {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					refs[id.Name] = true
				}
				return true
			})
		}
		bodies[fd.Name.Name] = refs
	}

	reached := make(map[string]bool)
	var enqueue func(name string)
	enqueue = func(name string) {
		if reached[name] {
			return
		}
		refs, isFunc := bodies[name]
		if !isFunc {
			return
		}
		reached[name] = true
		for r := range refs {
			enqueue(r)
		}
	}
	for _, tf := range pass.TestFiles {
		ast.Inspect(tf, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				enqueue(id.Name)
			}
			return true
		})
	}
	return reached
}
