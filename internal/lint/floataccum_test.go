package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestFloatAccum(t *testing.T) {
	linttest.Run(t, "floataccum", lint.FloatAccum)
}
