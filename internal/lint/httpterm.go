package lint

// httpterm checks handler termination: once a function has written an
// error response through http.Error or WriteHeader, the remaining path
// must lead to a return without touching the ResponseWriter again — a
// fallthrough double-write is the classic "superfluous WriteHeader" bug,
// and in this repo it would corrupt JSON bodies behind a 4xx/5xx status.
//
// Concretely: a forward may-analysis over the CFG tracks "an error
// response has been written on some path reaching here". In that state,
//
//   - after http.Error: any further use of the writer (another
//     http.Error, WriteHeader, Write, or passing the writer to any call
//     other than w.Header()) is reported, and
//   - after a bare WriteHeader: only a second WriteHeader/http.Error is
//     reported — streaming a body after setting the status is normal.
//
// The equivalent formulation in the PR plan — "http.Error must
// postdominate into a return" — is checked path-sensitively, so a
// switch whose every case writes an error and then falls to one shared
// return is fine, while a loop that breaks after http.Error and then
// falls into the success path is not.

import (
	"go/ast"
	"go/token"
	"go/types"
)

var HTTPTerm = &Analyzer{
	Name:    "httpterm",
	Doc:     "an error response must be followed by return: no writer use after http.Error/WriteHeader",
	Default: true,
	Run:     runHTTPTerm,
}

// httpWriteFact is the dataflow state: the position of an error response
// already written on some path (NoPos = none), split by severity.
type httpWriteFact struct {
	errorAt  token.Pos // http.Error (terminal: body + status written)
	headerAt token.Pos // bare WriteHeader (status written, body may follow)
}

func meetHTTPFact(a, b httpWriteFact) httpWriteFact {
	pick := func(x, y token.Pos) token.Pos {
		if x != token.NoPos {
			return x
		}
		return y
	}
	return httpWriteFact{pick(a.errorAt, b.errorAt), pick(a.headerAt, b.headerAt)}
}

func runHTTPTerm(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					httpTermFunc(pass, fn.Type, fn.Body)
				}
			case *ast.FuncLit:
				httpTermFunc(pass, fn.Type, fn.Body)
			}
			return true
		})
	}
	return nil
}

// responseWriterParam returns the object of the first parameter whose
// type is net/http.ResponseWriter, or nil.
func responseWriterParam(pass *Pass, ftype *ast.FuncType) types.Object {
	if ftype.Params == nil {
		return nil
	}
	for _, f := range ftype.Params.List {
		for _, name := range f.Names {
			obj := pass.Info.Defs[name]
			if obj == nil {
				continue
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				continue
			}
			tn := named.Obj()
			if tn.Pkg() != nil && tn.Pkg().Path() == "net/http" && tn.Name() == "ResponseWriter" {
				return obj
			}
		}
	}
	return nil
}

// writerUse classifies one appearance of the writer in a call.
type writerUse struct {
	pos      token.Pos
	isError  bool // http.Error(w, …)
	isHeader bool // w.WriteHeader(…)
	desc     string
}

func httpTermFunc(pass *Pass, ftype *ast.FuncType, body *ast.BlockStmt) {
	w := responseWriterParam(pass, ftype)
	if w == nil {
		return
	}
	fi := NewFuncInfo(body, pass.Info)

	// usesIn collects writer uses in one block statement, in source order.
	usesIn := func(st ast.Node) []writerUse {
		var out []writerUse
		inspectBlockNode(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if u, ok := classifyWriterCall(pass, call, w); ok {
				out = append(out, u)
			}
			return true
		})
		return out
	}

	transfer := func(b *Block, s httpWriteFact) httpWriteFact {
		for _, st := range b.Stmts {
			for _, u := range usesIn(st) {
				if u.isError {
					s.errorAt = u.pos
				} else if u.isHeader {
					s.headerAt = u.pos
				}
			}
		}
		return s
	}
	in := Solve(fi, FlowSpec[httpWriteFact]{
		Forward:  true,
		Boundary: httpWriteFact{},
		Top:      httpWriteFact{},
		Meet:     meetHTTPFact,
		Transfer: transfer,
		Equal:    func(a, b httpWriteFact) bool { return a == b },
	})

	fset := pass.Fset
	for _, blk := range fi.G.Blocks {
		if !fi.Reachable(blk) {
			continue
		}
		s := in[blk.Index]
		for _, st := range blk.Stmts {
			for _, u := range usesIn(st) {
				switch {
				case s.errorAt != token.NoPos:
					pass.Reportf(u.pos, "%s after http.Error at line %d already wrote the error response: missing return?",
						u.desc, fset.Position(s.errorAt).Line)
				case s.headerAt != token.NoPos && (u.isError || u.isHeader):
					pass.Reportf(u.pos, "%s after WriteHeader at line %d: status already written, missing return?",
						u.desc, fset.Position(s.headerAt).Line)
				}
				if u.isError {
					s.errorAt = u.pos
				} else if u.isHeader {
					s.headerAt = u.pos
				}
			}
		}
	}
}

// classifyWriterCall decides whether call uses the writer w: a method
// call on w (except Header), http.Error with w as first argument, or any
// call receiving w as an argument.
func classifyWriterCall(pass *Pass, call *ast.CallExpr, w types.Object) (writerUse, bool) {
	isW := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && pass.Info.Uses[id] == w
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if isW(sel.X) {
			switch sel.Sel.Name {
			case "Header":
				return writerUse{}, false
			case "WriteHeader":
				return writerUse{pos: call.Pos(), isHeader: true, desc: "WriteHeader"}, true
			default:
				return writerUse{pos: call.Pos(), desc: "w." + sel.Sel.Name}, true
			}
		}
		if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok &&
			fn.Pkg() != nil && fn.Pkg().Path() == "net/http" && fn.Name() == "Error" &&
			len(call.Args) > 0 && isW(call.Args[0]) {
			return writerUse{pos: call.Pos(), isError: true, desc: "http.Error"}, true
		}
	}
	for _, arg := range call.Args {
		if isW(arg) {
			return writerUse{pos: call.Pos(), desc: "call passing the ResponseWriter"}, true
		}
	}
	return writerUse{}, false
}
