package lint_test

// Mutation tests: seed a realistic bug into the REAL production sources
// (copied to a temp dir, loaded through a resolver override) and prove
// the new CFG/dataflow analyzers catch it. This is the discriminating
// evidence the fixtures alone cannot give — the tree is clean, so each
// analyzer must (a) stay silent on the pristine copy and (b) fire on the
// seeded bug, in the very functions it was built to guard.

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/lint"
)

// moduleRoot locates the repo root relative to this file.
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate caller")
	}
	return filepath.Clean(filepath.Join(filepath.Dir(file), "..", ".."))
}

// loadMutated copies the non-test sources of pkgDir into a temp dir,
// applies each old→new replacement (every one must apply exactly once
// across the package), and loads importPath with the copy standing in
// for the real package. Dependencies still resolve to the real module.
func loadMutated(t *testing.T, pkgDir, importPath string, mutations map[string]string) *lint.Package {
	t.Helper()
	tmp := t.TempDir()
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		t.Fatalf("reading %s: %v", pkgDir, err)
	}
	applied := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(pkgDir, name))
		if err != nil {
			t.Fatal(err)
		}
		src := string(data)
		for old, new := range mutations {
			if n := strings.Count(src, old); n > 0 {
				if n > 1 || applied[old] {
					t.Fatalf("mutation anchor not unique in package: %q", old)
				}
				src = strings.Replace(src, old, new, 1)
				applied[old] = true
			}
		}
		if err := os.WriteFile(filepath.Join(tmp, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for old := range mutations {
		if !applied[old] {
			t.Fatalf("mutation anchor not found anywhere in %s: %q", pkgDir, old)
		}
	}
	// Resolve against the REAL module (not linttest's fixture-first loader:
	// testdata/src carries a fake repro/internal/trace that would shadow
	// the real one), with only the target package redirected to the copy.
	loader := lint.NewLoader(moduleRoot(t), "repro")
	orig := loader.Resolve
	loader.Resolve = func(path string) (string, bool) {
		if path == importPath {
			return tmp, true
		}
		return orig(path)
	}
	pkg, err := loader.Load(importPath)
	if err != nil {
		t.Fatalf("loading mutated %s: %v", importPath, err)
	}
	return pkg
}

// findings runs one analyzer and returns its surviving diagnostics.
func findings(t *testing.T, pkg *lint.Package, a *lint.Analyzer) []lint.Diagnostic {
	t.Helper()
	diags, err := lint.Run(pkg, []*lint.Analyzer{a}, lint.KnownNames())
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	var out []lint.Diagnostic
	for _, d := range diags {
		if d.Analyzer == a.Name {
			out = append(out, d)
		}
	}
	return out
}

func requireFinding(t *testing.T, pkg *lint.Package, a *lint.Analyzer, substr string) {
	t.Helper()
	got := findings(t, pkg, a)
	for _, d := range got {
		if strings.Contains(d.Message, substr) {
			return
		}
	}
	t.Errorf("%s: expected a finding containing %q, got %d finding(s): %v", a.Name, substr, len(got), got)
}

func requireClean(t *testing.T, pkg *lint.Package, a *lint.Analyzer) {
	t.Helper()
	if got := findings(t, pkg, a); len(got) != 0 {
		t.Errorf("%s: pristine copy must be clean, got: %v", a.Name, got)
	}
}

func TestMutationsDurable(t *testing.T) {
	root := moduleRoot(t)
	durableDir := filepath.Join(root, "internal", "durable")
	const durablePath = "repro/internal/durable"

	t.Run("pristine is clean", func(t *testing.T) {
		pkg := loadMutated(t, durableDir, durablePath, nil)
		requireClean(t, pkg, lint.CommitOrder)
		requireClean(t, pkg, lint.LockGuard)
	})

	t.Run("commitorder catches apply-before-append", func(t *testing.T) {
		pkg := loadMutated(t, durableDir, durablePath, map[string]string{
			"	seq, err := s.w.Append(KindBatch, payload)\n" +
				"	if err != nil {\n" +
				"		return Outcome{}, false, err\n" +
				"	}\n" +
				"	s.opts.Chaos.hit(\"apply\")\n" +
				"	s.seg.AppendDataset(ds)\n": "" +
				"	s.opts.Chaos.hit(\"apply\")\n" +
				"	s.seg.AppendDataset(ds)\n" +
				"	seq, err := s.w.Append(KindBatch, payload)\n" +
				"	if err != nil {\n" +
				"		return Outcome{}, false, err\n" +
				"	}\n",
		})
		requireFinding(t, pkg, lint.CommitOrder, "not dominated by a WAL Append")
	})

	t.Run("commitorder catches unchecked append error", func(t *testing.T) {
		pkg := loadMutated(t, durableDir, durablePath, map[string]string{
			"	seq, err := s.w.Append(KindBatch, payload)\n" +
				"	if err != nil {\n" +
				"		return Outcome{}, false, err\n" +
				"	}\n": "" +
				"	seq, err := s.w.Append(KindBatch, payload)\n" +
				"	_ = err\n",
		})
		requireFinding(t, pkg, lint.CommitOrder, "error is not checked by a terminating")
	})

	t.Run("commitorder catches rename without fsync", func(t *testing.T) {
		pkg := loadMutated(t, durableDir, durablePath, map[string]string{
			"	if err := f.Sync(); err != nil {\n" +
				"		f.Close()\n" +
				"		return err\n" +
				"	}\n" +
				"	if err := f.Close(); err != nil {\n" +
				"		return err\n" +
				"	}\n" +
				"	chaos.hit(\"snaptmp\")\n": "" +
				"	if err := f.Close(); err != nil {\n" +
				"		return err\n" +
				"	}\n" +
				"	chaos.hit(\"snaptmp\")\n",
		})
		requireFinding(t, pkg, lint.CommitOrder, "not dominated by an (*os.File).Sync")
	})

	t.Run("lockguard catches missing lock in IngestBatch", func(t *testing.T) {
		pkg := loadMutated(t, durableDir, durablePath, map[string]string{
			"func (s *Store) IngestBatch(id string, body []byte) (Outcome, bool, error) {\n" +
				"	s.mu.Lock()\n" +
				"	defer s.mu.Unlock()\n": "" +
				"func (s *Store) IngestBatch(id string, body []byte) (Outcome, bool, error) {\n",
		})
		requireFinding(t, pkg, lint.LockGuard, "without holding mu")
	})
}

func TestMutationsSimcloudd(t *testing.T) {
	root := moduleRoot(t)
	cmdDir := filepath.Join(root, "cmd", "simcloudd")
	const cmdPath = "repro/cmd/simcloudd"

	t.Run("pristine is clean", func(t *testing.T) {
		pkg := loadMutated(t, cmdDir, cmdPath, nil)
		requireClean(t, pkg, lint.HTTPTerm)
	})

	t.Run("httpterm catches missing return after http.Error", func(t *testing.T) {
		pkg := loadMutated(t, cmdDir, cmdPath, map[string]string{
			"			http.Error(w, \"GET only\", http.StatusMethodNotAllowed)\n" +
				"			return\n" +
				"		}\n" +
				"		h(w, r)\n": "" +
				"			http.Error(w, \"GET only\", http.StatusMethodNotAllowed)\n" +
				"		}\n" +
				"		h(w, r)\n",
		})
		requireFinding(t, pkg, lint.HTTPTerm, "after http.Error")
	})
}
