// Package copylocks exercises the by-value lock copy analyzer.
package copylocks

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func flaggedParam(g guarded) int { // want `passes lock by value: it contains sync\.Mutex`
	return g.n
}

func flaggedAssign(g *guarded) {
	cp := *g // want `assignment copies lock value`
	_ = cp.n
}

func flaggedRange(gs []guarded) int {
	total := 0
	for _, g := range gs { // want `range clause copies lock value`
		total += g.n
	}
	return total
}

func cleanPointer(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func flaggedResult() (g guarded) { // want `passes lock by value: it contains sync\.Mutex`
	return
}

func cleanFresh() *guarded {
	// Sharing via pointer is the correct shape; nothing is copied.
	return &guarded{n: 1}
}
