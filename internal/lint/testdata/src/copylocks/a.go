// Package copylocks exercises the by-value lock copy analyzer.
package copylocks

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func flaggedParam(g guarded) int { // want `passes lock by value: it contains sync\.Mutex`
	return g.n
}

func flaggedAssign(g *guarded) {
	cp := *g // want `assignment copies lock value`
	_ = cp.n
}

func flaggedRange(gs []guarded) int {
	total := 0
	for _, g := range gs { // want `range clause copies lock value`
		total += g.n
	}
	return total
}

func cleanPointer(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func flaggedResult() (g guarded) { // want `passes lock by value: it contains sync\.Mutex`
	return
}

func cleanFresh() *guarded {
	// Sharing via pointer is the correct shape; nothing is copied.
	return &guarded{n: 1}
}

// noCopy is the vet sentinel convention: niladic pointer-receiver
// Lock/Unlock methods and no state. Embedding it marks the container as
// do-not-copy even though no real lock is involved.
type noCopy struct{}

func (*noCopy) Lock()   {}
func (*noCopy) Unlock() {}

type memoized struct {
	noCopy noCopy
	cached []int
}

func flaggedSentinelParam(m memoized) int { // want `passes lock by value: it contains noCopy \(Lock/Unlock no-copy sentinel\)`
	return len(m.cached)
}

func flaggedSentinelAssign(m *memoized) {
	cp := *m // want `assignment copies lock value`
	_ = cp.cached
}

func cleanSentinelPointer(m *memoized) int {
	return len(m.cached)
}
