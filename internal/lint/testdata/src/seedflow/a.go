// Package seedflow exercises the RNG-provenance analyzer: global draws and
// raw generator construction are flagged outside internal/dist.
package seedflow

import "math/rand"

func flagged() {
	_ = rand.Intn(10)                  // want `global math/rand\.Intn draws from the shared process-wide source`
	_ = rand.Float64()                 // want `global math/rand\.Float64`
	rand.Shuffle(3, func(i, j int) {}) // want `global math/rand\.Shuffle`
	r := rand.New(rand.NewSource(42))  // want `raw math/rand\.New constructs` `raw math/rand\.NewSource constructs`
	_ = r.Intn(10)                     // methods on an already-built generator are not re-flagged
}

type fakeRNG struct{ state uint64 }

func (f *fakeRNG) Intn(n int) int { return int(f.state) % n }

func clean() {
	// Locally defined generators with rand-like method names are fine; only
	// math/rand package functions are provenance violations.
	f := &fakeRNG{state: 7}
	_ = f.Intn(3)
}
