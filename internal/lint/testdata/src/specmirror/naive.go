// Package specmirror exercises the naive.go spec-mirror analyzer.
package specmirror

// naiveSum is the reference spec for Sum: mechanical counterpart name,
// anchored by the equivalence test. Clean.
func naiveSum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// naiveScale is the reference spec for the scaling path.
//
// Mirrors: fastScale
func naiveScale(xs []int, k int) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = x * k
	}
	return out
}

// naiveOrphan has no optimized counterpart anywhere in the package.
func naiveOrphan(xs []int) int { // want `spec naiveOrphan has no optimized counterpart Orphan \(or orphan, OrphanCols\) in this package`
	if len(xs) == 0 {
		return 0
	}
	return xs[0]
}

// naiveGhost points its Mirrors directive at a function that is gone.
//
// Mirrors: vanishedImpl
func naiveGhost(xs []int) int { // want `spec naiveGhost declares "Mirrors: vanishedImpl" but vanishedImpl is not declared in this package`
	return len(xs)
}

// naiveLoose has a counterpart but no test ever reaches it, so no
// equivalence test can be auditing it.
func naiveLoose(xs []int) int { // want `spec naiveLoose is not reachable from any \*_test\.go in this package`
	n := 1
	for _, x := range xs {
		n *= x
	}
	return n
}
