package specmirror

import "testing"

// TestEquivalence anchors naiveSum, naiveScale, naiveOrphan, and naiveGhost
// (the latter two still fail the counterpart checks). naiveLoose is
// deliberately absent.
func TestEquivalence(t *testing.T) {
	xs := []int{3, 1, 2}
	if naiveSum(xs) != Sum(xs) {
		t.Fatal("sum mismatch")
	}
	a, b := naiveScale(xs, 2), fastScale(xs, 2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("scale mismatch")
		}
	}
	_ = naiveOrphan(xs)
	_ = naiveGhost(xs)
}
