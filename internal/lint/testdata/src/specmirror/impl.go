package specmirror

// Sum is the optimized counterpart of naiveSum.
func Sum(xs []int) int {
	n := 0
	for i := 0; i < len(xs); i++ {
		n += xs[i]
	}
	return n
}

// fastScale is the optimized counterpart named by naiveScale's Mirrors line.
func fastScale(xs []int, k int) []int {
	out := make([]int, len(xs))
	for i := range xs {
		out[i] = xs[i] * k
	}
	return out
}

// Loose is naiveLoose's counterpart; the pair is still unanchored because no
// test references the spec.
func Loose(xs []int) int {
	n := 1
	for i := range xs {
		n *= xs[i]
	}
	return n
}
