// Package errsink exercises the discarded-error analyzer for the trace codec
// and report renderer packages.
package errsink

import (
	"fmt"
	"io"

	"repro/internal/report"
	"repro/internal/trace"
)

func flagged(w io.Writer, d *trace.Dataset) {
	d.WriteCSV(w)               // want `discarded error from trace\.WriteCSV`
	_ = d.WriteJSON(w)          // want `error from trace\.WriteJSON assigned to _`
	defer d.WriteCSV(w)         // want `deferred and discarded error from trace\.WriteCSV`
	report.NewTable().Render(w) // want `discarded error from report\.Render`
	go report.RenderReport(w)   // want `discarded by go statement error from report\.RenderReport`
}

func clean(w io.Writer, d *trace.Dataset) error {
	if err := d.WriteCSV(w); err != nil {
		return err
	}
	err := report.RenderReport(w)
	if err != nil {
		return err
	}
	ds, err := trace.ParseCSV(nil)
	if err != nil {
		return err
	}
	_ = ds
	// Errors from packages outside the guarded set are not this analyzer's
	// business (go vet has its own checks).
	fmt.Fprintln(w, "done")
	return nil
}
