// Fixture for the httpterm analyzer: error responses must flow into a
// return without touching the writer again. Includes the switch-with-
// shared-return shape from simcloudd's handleIngest (clean — the check
// is path-sensitive, not block-local), a loop+break multi-block true
// positive, and //lint:allow suppression.
package httpterm

import (
	"fmt"
	"net/http"
)

func good(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	fmt.Fprintln(w, "ok")
}

func badFallthrough(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
	}
	fmt.Fprintln(w, "ok") // want `after http.Error at line \d+ already wrote the error response`
}

func doubleError(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "first", http.StatusInternalServerError)
	http.Error(w, "second", http.StatusBadGateway) // want `http.Error after http.Error at line \d+`
}

// headerThenBody is the normal streaming shape: a status line followed by
// a body is not a double write.
func headerThenBody(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintln(w, "streaming body")
}

func headerTwice(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	w.WriteHeader(http.StatusOK) // want `WriteHeader after WriteHeader at line \d+`
}

// headerCallsOK: w.Header() manipulation is never a write.
func headerCallsOK(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	http.Error(w, "nope", http.StatusTeapot)
}

// switchCommonReturn mirrors handleIngest: every case writes exactly one
// error, the paths merge, and the handler returns — clean.
func switchCommonReturn(w http.ResponseWriter, code int) {
	switch code {
	case 1:
		http.Error(w, "backpressure", http.StatusTooManyRequests)
	case 2:
		http.Error(w, "capacity", http.StatusInsufficientStorage)
	default:
		http.Error(w, "bad batch", http.StatusBadRequest)
	}
}

// loopBreak is the multi-block true positive: break (not return) after
// http.Error falls out of the loop into the success path.
func loopBreak(w http.ResponseWriter, xs []int) {
	for _, x := range xs {
		if x < 0 {
			http.Error(w, "negative", http.StatusBadRequest)
			break
		}
	}
	fmt.Fprintln(w, "done") // want `after http.Error at line \d+`
}

// loopReturn is the fixed version of loopBreak.
func loopReturn(w http.ResponseWriter, xs []int) {
	for _, x := range xs {
		if x < 0 {
			http.Error(w, "negative", http.StatusBadRequest)
			return
		}
	}
	fmt.Fprintln(w, "done")
}

func allowed(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "primary failure", http.StatusInternalServerError)
	//lint:allow httpterm best-effort plain-text detail appended to an already-failed response
	fmt.Fprintln(w, "details follow")
}
