// Fixture for the lockguard analyzer: documented and inferred guarded
// fields, the Locked-suffix convention, RWMutex read/write states, the
// mixed-state silence rule, a loop + early-return multi-block case, and
// //lint:allow suppression.
package lockguard

import "sync"

type S struct {
	mu    sync.Mutex
	count int    // guarded by mu
	name  string // unguarded: free to touch
}

func (s *S) Good() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count++
}

func (s *S) BadWrite() {
	s.count++ // want `write to S.count without holding mu`
}

func (s *S) BadRead() int {
	return s.count // want `read of S.count without holding mu`
}

func (s *S) UnguardedOK() {
	s.name = "free"
}

func (s *S) AfterUnlock() {
	s.mu.Lock()
	s.count++
	s.mu.Unlock()
	s.count++ // want `write to S.count without holding mu`
}

// Mixed paths (held on one branch only) stay silent by design: the
// analyzer only reports provably-unlocked access.
func (s *S) Mixed(b bool) {
	if b {
		s.mu.Lock()
	}
	s.count++
	if b {
		s.mu.Unlock()
	}
}

// LoopEarly is the multi-block CFG case: inside the loop the lock cycles
// correctly (with an early return before it), but the write after the
// loop runs unlocked.
func (s *S) LoopEarly(n int) {
	for i := 0; i < n; i++ {
		if i == 3 {
			return
		}
		s.mu.Lock()
		s.count++
		s.mu.Unlock()
	}
	s.count++ // want `write to S.count without holding mu`
}

// helperLocked follows the repo's *Locked naming convention: the caller
// holds mu, so the body starts in the held state.
func (s *S) helperLocked() {
	s.count++
}

func (s *S) Allowed() {
	//lint:allow lockguard fixture: value published before any other goroutine can see it
	s.count = 0
}

type R struct {
	mu  sync.RWMutex
	val int // guarded by mu
}

func (r *R) ReadOK() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.val
}

func (r *R) WriteUnderRLock() {
	r.mu.RLock()
	r.val++ // want `write to R.val without holding mu`
	r.mu.RUnlock()
}

// I exercises the inference rule: n carries no annotation, but A and B
// both write it under the lock, so C's unlocked write is reported.
type I struct {
	mu sync.Mutex
	n  int
}

func (s *I) A() { s.mu.Lock(); s.n++; s.mu.Unlock() }
func (s *I) B() { s.mu.Lock(); s.n = 2; s.mu.Unlock() }
func (s *I) C() { s.n++ } // want `write to I.n without holding mu`

// Lone has only one locked-writing method, so w is not inferred guarded:
// write-once-then-publish patterns stay legal.
type Lone struct {
	mu sync.Mutex
	w  int
}

func (l *Lone) Only()     { l.mu.Lock(); l.w++; l.mu.Unlock() }
func (l *Lone) Free() int { return l.w }

// BadNote has a `guarded by` annotation naming a non-mutex field, which
// is itself a finding (the annotation would otherwise silently do
// nothing).
type BadNote struct { // want `annotated .guarded by nosuch., but nosuch is not a sync.Mutex/RWMutex field`
	mu sync.Mutex
	x  int // guarded by nosuch
}

func (b *BadNote) Touch() { b.mu.Lock(); b.x++; b.mu.Unlock() }
