// Package allowfix exercises the //lint:allow suppression mechanism: an
// allow silences exactly the named analyzer on its own line or the next,
// and nothing else; unknown names and stale suppressions are findings.
package allowfix

import (
	"math/rand"
	"time"
)

func mixedLine() (time.Time, int) {
	// The allow names nowallclock only, so the seedflow finding on the same
	// line must survive.
	//lint:allow nowallclock fixture: proving only the named analyzer is silenced
	return time.Now(), rand.Intn(3) // want `global math/rand\.Intn draws from the shared process-wide source`
}

func inlineAllow() time.Time {
	return time.Now() //lint:allow nowallclock fixture: an inline allow covers its own line
}

func unknownName() time.Time {
	//lint:allow clockcheck typo of an analyzer name // want `unknown analyzer "clockcheck" in //lint:allow \(it would suppress nothing\)`
	return time.Now() // want `time\.Now reads the wall clock`
}

func staleAllow() int {
	//lint:allow seedflow nothing random happens below // want `stale //lint:allow seedflow: no finding on the covered line`
	return 4
}
