// Package allowbad holds malformed suppressions whose audit diagnostics land
// on the comment's own line, where a want comment cannot sit (anything after
// the analyzer name would become the reason). Its expectations live in
// allow_test.go instead of want comments.
package allowbad

import "time"

func missingEverything() time.Time {
	//lint:allow
	return time.Now()
}

func missingReason() time.Time {
	//lint:allow nowallclock
	return time.Now()
}
