// Package floataccum exercises the float-reduction-order analyzer.
package floataccum

import "sync"

func flaggedMapRange(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation into sum inside range over map folds in nondeterministic iteration order`
	}
	return sum
}

func flaggedGoroutine(vals []float64) float64 {
	var mu sync.Mutex
	var wg sync.WaitGroup
	var total float64
	for _, v := range vals {
		v := v
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			total += v // want `float accumulation into total into a captured variable folds in goroutine-completion order`
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}

func cleanIntMapRange(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v // ints are exact; order cannot change the result
	}
	return sum
}

func cleanKeyed(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] += v // keyed by loop key: each slot written independently
	}
	return out
}

func cleanSliceRange(vals []float64) float64 {
	var sum float64
	for _, v := range vals {
		sum += v // slice order is deterministic
	}
	return sum
}

// digest stands in for a mergeable moment accumulator (stats.Streaming,
// trace.SegSummary): Merge re-associates float sums, so fold order matters.
type digest struct{ sum float64 }

func (d *digest) Merge(o *digest) { d.sum += o.sum }

func flaggedMergeMapRange(parts map[string]*digest) digest {
	var out digest
	for _, p := range parts {
		out.Merge(p) // want `Merge into out inside range over map folds in nondeterministic iteration order`
	}
	return out
}

func flaggedMergeGoroutine(parts []*digest) digest {
	var mu sync.Mutex
	var wg sync.WaitGroup
	var out digest
	for _, p := range parts {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			out.Merge(p) // want `Merge into out into a captured variable folds in goroutine-completion order`
			mu.Unlock()
		}()
	}
	wg.Wait()
	return out
}

func cleanMergeSliceRange(parts []*digest) digest {
	var out digest
	for _, p := range parts {
		out.Merge(p) // slice range: segment-index order, the blessed fold
	}
	return out
}

func cleanMergeKeyed(parts map[string]*digest) map[string]*digest {
	out := make(map[string]*digest, len(parts))
	for k, p := range parts {
		out[k] = &digest{}
		out[k].Merge(p) // keyed by loop key: one cell per key
	}
	return out
}

func cleanMergeLocal(parts map[string]*digest) float64 {
	total := 0.0
	for _, p := range parts {
		var local digest
		local.Merge(p) // local accumulator: folded once per iteration
		total = total + local.sum // want `float accumulation into total inside range over map`
	}
	return total
}
