// Package floataccum exercises the float-reduction-order analyzer.
package floataccum

import "sync"

func flaggedMapRange(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation into sum inside range over map folds in nondeterministic iteration order`
	}
	return sum
}

func flaggedGoroutine(vals []float64) float64 {
	var mu sync.Mutex
	var wg sync.WaitGroup
	var total float64
	for _, v := range vals {
		v := v
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			total += v // want `float accumulation into total into a captured variable folds in goroutine-completion order`
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}

func cleanIntMapRange(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v // ints are exact; order cannot change the result
	}
	return sum
}

func cleanKeyed(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] += v // keyed by loop key: each slot written independently
	}
	return out
}

func cleanSliceRange(vals []float64) float64 {
	var sum float64
	for _, v := range vals {
		sum += v // slice order is deterministic
	}
	return sum
}
