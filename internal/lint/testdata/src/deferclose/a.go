// Fixture for the deferclose analyzer: deferred Close/Sync on
// write-opened *os.File variables discards the error that matters
// (ENOSPC and friends surface at close time). Read-only opens are clean;
// reaching definitions decide which open reaches the defer.
package deferclose

import "os"

func bad(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `deferred f.Close discards the error`
	_, err = f.Write([]byte("x"))
	return err
}

func badOpenFile(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Sync()  // want `deferred f.Sync discards the error`
	defer f.Close() // want `deferred f.Close discards the error`
	_, err = f.Write([]byte("x"))
	return err
}

func goodReadOnly(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	return buf[:n], err
}

func goodReadOnlyOpenFile(path string) error {
	f, err := os.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}

func goodExplicitClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("x")); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// reassigned: the variable starts read-only but may be rebound to a
// write-mode open on one path — the write-open definition reaches the
// defer, so it is reported.
func reassigned(path string, rewrite bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if rewrite {
		f.Close()
		f, err = os.Create(path)
		if err != nil {
			return err
		}
	}
	defer f.Close() // want `deferred f.Close discards the error`
	return nil
}

// loopEarly is the multi-block case: open + defer inside a loop body
// with an early return ahead of them.
func loopEarly(paths []string) error {
	for i, p := range paths {
		if i > 4 {
			return nil
		}
		f, err := os.Create(p)
		if err != nil {
			return err
		}
		defer f.Close() // want `deferred f.Close discards the error`
	}
	return nil
}

func allowed(path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	//lint:allow deferclose best-effort scratch file, losing it is acceptable
	defer f.Close()
	f.Write([]byte("scratch"))
}
