// Package dist stands in for the RNG substrate package, which is the one
// place allowed to build raw math/rand generators (it wraps them). A clean
// fixture: no want comments.
package dist

import "math/rand"

// NewWrapped builds the substrate's internal generator.
func NewWrapped(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
