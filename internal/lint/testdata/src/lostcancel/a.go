// Package lostcancel exercises the discarded/unused cancel-func analyzer.
package lostcancel

import (
	"context"
	"time"
)

// leakedCancel exists so the unused-cancel case type-checks: an unused local
// would not compile, but an assigned-and-forgotten package variable does.
var leakedCancel context.CancelFunc

func flaggedBlank(ctx context.Context) context.Context {
	ctx, _ = context.WithCancel(ctx) // want `the cancel function returned by context\.WithCancel is discarded`
	return ctx
}

func flaggedUnused(ctx context.Context) context.Context {
	ctx, leakedCancel = context.WithTimeout(ctx, time.Second) // want `the cancel function leakedCancel from context\.WithTimeout is never used; defer leakedCancel\(\)`
	return ctx
}

func cleanDeferred(ctx context.Context) context.Context {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	return ctx
}

func cleanPassedOn(ctx context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithDeadline(ctx, time.Unix(0, 0))
	return ctx, cancel
}
