// Package maporder exercises the map-iteration-order analyzer.
package maporder

import (
	"fmt"
	"io"
	"sort"
)

func flaggedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside range over map builds a nondeterministically ordered slice`
	}
	return keys
}

func flaggedWrite(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt\.Fprintf inside range over map emits output in nondeterministic order`
	}
}

func flaggedConcat(m map[string]int) string {
	out := ""
	for k := range m {
		out += k // want `string concatenation into out inside range over map is order-dependent`
	}
	return out
}

func cleanSortedAfter(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // exempt: keys is visibly sorted below
	}
	sort.Strings(keys)
	return keys
}

func cleanIndexedByKey(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2 // exempt: writes keyed by the loop key are order-independent
	}
	return out
}

func cleanCounter(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // int accumulation is commutative; not this analyzer's concern
	}
	return n
}
