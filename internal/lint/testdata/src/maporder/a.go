// Package maporder exercises the map-iteration-order analyzer.
package maporder

import (
	"fmt"
	"io"
	"sort"
)

func flaggedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside range over map builds a nondeterministically ordered slice`
	}
	return keys
}

func flaggedWrite(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt\.Fprintf inside range over map emits output in nondeterministic order`
	}
}

func flaggedConcat(m map[string]int) string {
	out := ""
	for k := range m {
		out += k // want `string concatenation into out inside range over map is order-dependent`
	}
	return out
}

func cleanSortedAfter(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // exempt: keys is visibly sorted below
	}
	sort.Strings(keys)
	return keys
}

func cleanIndexedByKey(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2 // exempt: writes keyed by the loop key are order-independent
	}
	return out
}

func cleanCounter(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // int accumulation is commutative; not this analyzer's concern
	}
	return n
}

// table stands in for a report table builder: each AddRow call appends a
// row, so call order is row order.
type table struct{ rows []string }

func (t *table) AddRow(cells ...string)          { t.rows = append(t.rows, cells...) }
func (t *table) AddRowF(label string, v float64) { _ = label; _ = v }
func (t *table) Lookup(k string) bool            { return len(t.rows) > 0 && t.rows[0] == k }

type builder struct{ out string }

func (b *builder) WriteString(s string) (int, error) { b.out += s; return len(s), nil }

func flaggedAddRow(t *table, m map[string]float64) {
	for k, v := range m {
		_ = k
		t.AddRowF(k, v) // want `AddRowF on t inside range over map appends rows/output in nondeterministic order`
	}
}

func flaggedBuilderWrite(m map[string]int) string {
	var b builder
	for k := range m {
		b.WriteString(k) // want `WriteString on b inside range over map appends rows/output in nondeterministic order`
	}
	return b.out
}

func cleanFreshBuilderPerIteration(m map[string]int) map[string]string {
	out := make(map[string]string, len(m))
	for k := range m {
		var b builder // declared inside the loop: one builder per iteration
		b.WriteString(k)
		out[k] = b.out
	}
	return out
}

func cleanNonSinkMethod(t *table, m map[string]int) int {
	n := 0
	for k := range m {
		if t.Lookup(k) { // reads don't order anything
			n++
		}
	}
	return n
}

func cleanSinkIndexedByKey(ts map[string]*table, m map[string]float64) {
	for k, v := range m {
		ts[k].AddRowF(k, v) // one table per key; visit order cannot matter
	}
}
