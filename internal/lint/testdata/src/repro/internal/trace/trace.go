// Package trace is a minimal stand-in for the real codec package so the
// errsink fixture can exercise suffix-based package matching without
// type-checking the full simulator tree.
package trace

import "io"

type Dataset struct{}

func (d *Dataset) WriteCSV(w io.Writer) error  { return nil }
func (d *Dataset) WriteJSON(w io.Writer) error { return nil }

func ParseCSV(r io.Reader) (*Dataset, error) { return &Dataset{}, nil }
