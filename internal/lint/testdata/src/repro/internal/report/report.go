// Package report is a minimal stand-in for the real renderer package used by
// the errsink fixture.
package report

import "io"

type Table struct{}

func NewTable() *Table { return &Table{} }

func (t *Table) Render(w io.Writer) error { return nil }

func RenderReport(w io.Writer) error { return nil }
