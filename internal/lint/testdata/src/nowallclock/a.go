// Package nowallclock exercises the wall-clock analyzer: both readers are
// flagged; duration arithmetic and conversions are not.
package nowallclock

import "time"

func flagged() time.Duration {
	start := time.Now() // want `time\.Now reads the wall clock`
	work()
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func clean(simNowSec float64) time.Duration {
	d := 3 * time.Second
	d += time.Duration(simNowSec * float64(time.Second))
	t := time.Unix(0, 0).Add(d)
	_ = t
	return d
}

func work() {}
