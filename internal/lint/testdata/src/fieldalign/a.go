// Package fieldalign exercises the padding analyzer (gc/amd64 layout).
package fieldalign

type wasteful struct { // want `struct wasteful is 24 bytes; reordering to \(b, a, c\) saves 8 bytes per value`
	a bool
	b int64
	c bool
}

type packed struct {
	b int64
	a bool
	c bool
}

type tiny struct {
	a byte
	b byte
}

var _ = wasteful{}
var _ = packed{}
var _ = tiny{}
