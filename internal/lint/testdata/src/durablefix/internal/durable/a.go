// Fixture for the commitorder analyzer, laid out so its import path ends
// in internal/durable (the package-suffix scope match, like the errsink
// fixture). The wal type mirrors the real one's commit-point shape:
// Append returning (uint64, error).
package durable

import "os"

type wal struct{ n uint64 }

func (w *wal) Append(kind byte, payload []byte) (uint64, error) {
	w.n++
	return w.n, nil
}

type Store struct {
	w       *wal
	applied map[string]int
	dirty   int
	closed  bool
}

// Good follows the contract: append, terminating err guard, then apply.
func (s *Store) Good(id string, payload []byte) error {
	seq, err := s.w.Append(1, payload)
	if err != nil {
		return err
	}
	s.applied[id] = int(seq)
	s.dirty++
	return nil
}

// GoodInitGuard uses the if-init form of the guard.
func (s *Store) GoodInitGuard(id string, payload []byte) error {
	if _, err := s.w.Append(1, payload); err != nil {
		return err
	}
	s.dirty++
	return nil
}

func (s *Store) BadNoAppend(id string) {
	s.applied[id] = 1 // want `not dominated by a WAL Append`
}

func (s *Store) BadUnchecked(id string, payload []byte) {
	s.w.Append(1, payload)
	s.applied[id] = 1 // want `error is not checked by a terminating`
}

// BadGuardedElsewhere checks a different error variable: the append's own
// error is never guarded, so the reaching-defs match rejects the decoy.
func (s *Store) BadGuardedElsewhere(id string, payload []byte) error {
	err := s.decode(payload)
	if err != nil {
		return err
	}
	_, err2 := s.w.Append(1, payload)
	_ = err2
	if err != nil {
		return err
	}
	s.applied[id] = 1 // want `error is not checked by a terminating`
	return nil
}

func (s *Store) decode(payload []byte) error { return nil }

// Close writes a bool lifecycle latch, which is exempt: closed-ness is
// not replayed state.
func (s *Store) Close() error {
	s.closed = true
	return nil
}

// LoopApply is the multi-block clean case: early return, then
// append+guard+apply inside the loop body — every path to the mutation
// passes through the checked append.
func (s *Store) LoopApply(ids []string, payload []byte) error {
	for _, id := range ids {
		if id == "" {
			return nil
		}
		seq, err := s.w.Append(1, payload)
		if err != nil {
			return err
		}
		s.applied[id] = int(seq)
	}
	return nil
}

// LoopBad applies before appending: on the first iteration nothing has
// been committed yet, so the mutation is not append-dominated.
func (s *Store) LoopBad(ids []string, payload []byte) {
	seq := uint64(0)
	for _, id := range ids {
		s.applied[id] = int(seq) // want `not dominated by a WAL Append`
		var err error
		seq, err = s.w.Append(1, payload)
		if err != nil {
			return
		}
	}
}

// Reset mutates with no append at all; the allow comment records the
// audited exception.
func (s *Store) Reset() {
	//lint:allow commitorder fixture: scratch counter is never persisted or replayed
	s.dirty = 0
}

// writeGood is the R2 clean shape: fsync dominates the rename.
func writeGood(path string, data []byte) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(path+".tmp", path)
}

// writeBad skips the fsync: a crash after the rename can publish an
// empty or torn file under the final name.
func writeBad(path string, data []byte) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(path+".tmp", path) // want `not dominated by an \(\*os\.File\)\.Sync`
}

// writeSyncOneBranch only fsyncs on one path, which is not domination.
func writeSyncOneBranch(path string, data []byte, sync bool) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(path+".tmp", path) // want `not dominated by an \(\*os\.File\)\.Sync`
}
