// Package nilness exercises the proven-nil dereference analyzer.
package nilness

type node struct {
	next *node
	val  int
}

func flaggedSelector(p *node) int {
	if p == nil {
		return p.val // want `p is nil on this branch; p\.val dereferences it`
	}
	return p.val
}

func flaggedStar(p *int) int {
	if nil == p {
		return *p // want `p is nil on this branch; \*p dereferences it`
	}
	return *p
}

func cleanReassigned(p *node) int {
	if p == nil {
		p = &node{}
		return p.val // reassigned above, no longer proven nil
	}
	return p.val
}

func cleanNotNil(p *node) int {
	if p != nil {
		return p.val
	}
	return 0
}

func cleanNilMapRead(m map[string]int) int {
	if m == nil {
		return m["missing"] // nil map reads are well-defined; only pointers panic
	}
	return len(m)
}
