package lint

// dataflow.go — a generic worklist dataflow solver over the CFGs built in
// cfg.go, plus the one concrete instance every analyzer wants off the
// shelf: reaching definitions. Together with FuncInfo's dominance queries
// this is the "facts" API from the PR plan — dominance, reaching defs,
// and must/may-hold-at-point state via Solve.

import (
	"go/ast"
	"go/types"
)

// FlowSpec describes one dataflow problem over states of type S.
// Forward problems propagate entry→exit along Succs; backward problems
// exit→entry along Preds. Top is the state of unvisited/unreachable
// paths and must be the identity of Meet. Transfer maps a block's
// in-state to its out-state and must be monotone for termination.
type FlowSpec[S any] struct {
	Forward  bool
	Boundary S // state at the root (Entry for forward, Exit for backward)
	Top      S
	Meet     func(S, S) S
	Transfer func(*Block, S) S
	Equal    func(S, S) bool
}

// Solve runs the iterative fixpoint and returns the in-state of every
// block (indexed by Block.Index). For forward problems "in" means state
// on entry to the block; for backward problems, state on exit from it.
func Solve[S any](fi *FuncInfo, spec FlowSpec[S]) []S {
	g := fi.G
	root, order := g.Entry, fi.rpo
	inEdges := func(b *Block) []*Block { return b.Preds }
	if !spec.Forward {
		root, order = g.Exit, fi.prpo
		inEdges = func(b *Block) []*Block { return b.Succs }
	}
	in := make([]S, len(g.Blocks))
	out := make([]S, len(g.Blocks))
	for i := range in {
		in[i], out[i] = spec.Top, spec.Top
	}
	in[root.Index] = spec.Boundary
	out[root.Index] = spec.Transfer(root, spec.Boundary)
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == root {
				continue
			}
			s := spec.Top
			for _, p := range inEdges(b) {
				s = spec.Meet(s, out[p.Index])
			}
			in[b.Index] = s
			ns := spec.Transfer(b, s)
			if !spec.Equal(ns, out[b.Index]) {
				out[b.Index] = ns
				changed = true
			}
		}
	}
	return in
}

// ---------------------------------------------------------------------------
// Reaching definitions.

// Def is one definition site of a variable: an assignment, declaration,
// range binding, ++/--, or (Node == nil) the function's own
// parameter/receiver/named-result binding at entry. Call is set when the
// defined value syntactically comes from a single call expression — the
// fact deferclose keys on.
type Def struct {
	Obj  types.Object
	Node ast.Node
	Call *ast.CallExpr
}

// bitset over def indices.
type defbits []uint64

func newDefbits(n int) defbits   { return make(defbits, (n+63)/64) }
func (d defbits) set(i int)      { d[i/64] |= 1 << (uint(i) % 64) }
func (d defbits) clear(i int)    { d[i/64] &^= 1 << (uint(i) % 64) }
func (d defbits) has(i int) bool { return d[i/64]&(1<<(uint(i)%64)) != 0 }
func (d defbits) clone() defbits { c := make(defbits, len(d)); copy(c, d); return c }
func (d defbits) equal(o defbits) bool {
	for i := range d {
		if d[i] != o[i] {
			return false
		}
	}
	return true
}
func (d defbits) union(o defbits) defbits {
	c := d.clone()
	for i := range c {
		c[i] |= o[i]
	}
	return c
}

// ReachingDefs answers "which definitions of variable v can reach this
// statement?" for one function.
type ReachingDefs struct {
	fi    *FuncInfo
	defs  []*Def
	byObj map[types.Object][]int
	// stmtDefs caches, per block statement, the defs that statement makes.
	stmtDefs map[ast.Node][]int
	in       []defbits
}

// BuildReachingDefs collects definition sites from the function's blocks
// (skipping nested function literals) and solves the forward union
// problem. recv and ftype contribute the entry-point bindings for the
// receiver, parameters and named results; either may be nil.
func BuildReachingDefs(fi *FuncInfo, recv *ast.FieldList, ftype *ast.FuncType) *ReachingDefs {
	rd := &ReachingDefs{
		fi:       fi,
		byObj:    make(map[types.Object][]int),
		stmtDefs: make(map[ast.Node][]int),
	}
	addDef := func(obj types.Object, node ast.Node, call *ast.CallExpr) int {
		i := len(rd.defs)
		rd.defs = append(rd.defs, &Def{Obj: obj, Node: node, Call: call})
		rd.byObj[obj] = append(rd.byObj[obj], i)
		return i
	}
	var entryDefs []int
	fieldDefs := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := fi.Info.Defs[name]; obj != nil {
					entryDefs = append(entryDefs, addDef(obj, nil, nil))
				}
			}
		}
	}
	fieldDefs(recv)
	if ftype != nil {
		fieldDefs(ftype.Params)
		fieldDefs(ftype.Results)
	}
	identObj := func(e ast.Expr) types.Object {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		if obj := fi.Info.Defs[id]; obj != nil {
			return obj
		}
		return fi.Info.Uses[id]
	}
	for _, blk := range fi.G.Blocks {
		for _, n := range blk.Stmts {
			var ds []int
			switch st := n.(type) {
			case *ast.AssignStmt:
				var call *ast.CallExpr
				if len(st.Rhs) == 1 {
					call, _ = st.Rhs[0].(*ast.CallExpr)
				}
				for _, lhs := range st.Lhs {
					if obj := identObj(lhs); obj != nil {
						ds = append(ds, addDef(obj, st, call))
					}
				}
			case *ast.IncDecStmt:
				if obj := identObj(st.X); obj != nil {
					ds = append(ds, addDef(obj, st, nil))
				}
			case *ast.DeclStmt:
				if gd, ok := st.Decl.(*ast.GenDecl); ok {
					for _, spec := range gd.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						var call *ast.CallExpr
						if len(vs.Values) == 1 {
							call, _ = vs.Values[0].(*ast.CallExpr)
						}
						for _, name := range vs.Names {
							if obj := fi.Info.Defs[name]; obj != nil {
								ds = append(ds, addDef(obj, st, call))
							}
						}
					}
				}
			case *ast.RangeStmt:
				if obj := identObj(st.Key); st.Key != nil && obj != nil {
					ds = append(ds, addDef(obj, st, nil))
				}
				if obj := identObj(st.Value); st.Value != nil && obj != nil {
					ds = append(ds, addDef(obj, st, nil))
				}
			}
			if ds != nil {
				rd.stmtDefs[n] = ds
			}
		}
	}
	n := len(rd.defs)
	boundary := newDefbits(n)
	for _, i := range entryDefs {
		boundary.set(i)
	}
	rd.in = Solve(fi, FlowSpec[defbits]{
		Forward:  true,
		Boundary: boundary,
		Top:      newDefbits(n),
		Meet:     func(a, b defbits) defbits { return a.union(b) },
		Transfer: func(b *Block, s defbits) defbits {
			cur := s.clone()
			for _, st := range b.Stmts {
				rd.apply(cur, st)
			}
			return cur
		},
		Equal: func(a, b defbits) bool { return a.equal(b) },
	})
	return rd
}

// apply mutates cur with the kill/gen effect of one block statement.
func (rd *ReachingDefs) apply(cur defbits, st ast.Node) {
	for _, di := range rd.stmtDefs[st] {
		for _, k := range rd.byObj[rd.defs[di].Obj] {
			cur.clear(k)
		}
	}
	for _, di := range rd.stmtDefs[st] {
		cur.set(di)
	}
}

// At returns the definitions of obj that may reach the start of the
// block statement containing node n. Returns nil if n cannot be located.
func (rd *ReachingDefs) At(n ast.Node, obj types.Object) []*Def {
	blk, idx, ok := rd.fi.Locate(n)
	if !ok {
		return nil
	}
	cur := rd.in[blk.Index].clone()
	for i := 0; i < idx; i++ {
		rd.apply(cur, blk.Stmts[i])
	}
	var out []*Def
	for _, di := range rd.byObj[obj] {
		if cur.has(di) {
			out = append(out, rd.defs[di])
		}
	}
	return out
}
