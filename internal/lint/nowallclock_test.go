package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestNoWallClock(t *testing.T) {
	linttest.Run(t, "nowallclock", lint.NoWallClock)
}
