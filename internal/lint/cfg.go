package lint

// cfg.go — per-function control-flow graphs over go/ast, plus dominance.
//
// This is the foundation the path-sensitive analyzers (lockguard,
// commitorder, httpterm, deferclose) share. It stays deliberately small:
// basic blocks of statement-level AST nodes, explicit edges for every Go
// control construct, calls that provably never return (panic, os.Exit,
// log.Fatal*) routed straight to the exit block, and iterative
// dominator/postdominator trees computed with the Cooper–Harvey–Kennedy
// algorithm. Function literals are NOT flattened into the enclosing
// graph — a FuncLit is an opaque value here, and analyzers build a
// separate CFG for its body if they care.
//
// The graph intentionally models defer as a plain statement in the block
// where it executes: a deferred unlock or close runs at function exit, so
// it must not change mid-function dataflow state. Analyzers that need the
// deferred calls themselves (deferclose) read CFG.Defers.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Block is a basic block: a maximal straight-line sequence of statement
// nodes with edges only at the end. Stmts holds the nodes in execution
// order; they are statements except for condition/tag expressions
// (IfStmt.Cond, ForStmt.Cond, SwitchStmt.Tag), which appear as bare
// ast.Expr nodes in the block that evaluates them.
type Block struct {
	Index int
	Stmts []ast.Node
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function body. Entry is always
// Blocks[0]; Exit is a synthetic empty block that every return, panic and
// fallen-off-the-end path feeds into.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	// Defers lists every defer statement in the body, in source order,
	// excluding those inside nested function literals.
	Defers []*ast.DeferStmt
}

type branchTarget struct {
	label string
	block *Block
	loop  bool // continue-able
}

type pendingGoto struct {
	from *Block
	name string
}

type cfgBuilder struct {
	g            *CFG
	info         *types.Info
	cur          *Block
	breaks       []branchTarget
	continues    []branchTarget
	labels       map[string]*Block
	gotos        []pendingGoto
	fallTarget   *Block // next case body during switch construction
	pendingLabel string
}

// NewCFG builds the control-flow graph for one function body. info is
// used only to recognize calls that never return; it may be nil, in which
// case only the panic builtin (matched syntactically) terminates a block.
func NewCFG(body *ast.BlockStmt, info *types.Info) *CFG {
	b := &cfgBuilder{
		g:      &CFG{},
		info:   info,
		labels: make(map[string]*Block),
	}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.stmt(body)
	b.edge(b.cur, b.g.Exit)
	for _, pg := range b.gotos {
		if t := b.labels[pg.name]; t != nil {
			b.edge(pg.from, t)
		}
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *cfgBuilder) add(n ast.Node) {
	b.cur.Stmts = append(b.cur.Stmts, n)
}

// seal ends the current block with no fallthrough successor (after a
// return, goto, break, …) and starts a fresh — initially unreachable —
// block for any trailing dead code.
func (b *cfgBuilder) seal() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) findBreak(label string) *Block {
	for i := len(b.breaks) - 1; i >= 0; i-- {
		if label == "" || b.breaks[i].label == label {
			return b.breaks[i].block
		}
	}
	return nil
}

func (b *cfgBuilder) findContinue(label string) *Block {
	for i := len(b.continues) - 1; i >= 0; i-- {
		if !b.continues[i].loop {
			continue
		}
		if label == "" || b.continues[i].label == label {
			return b.continues[i].block
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case nil:
		return
	case *ast.BlockStmt:
		for _, s2 := range st.List {
			b.stmt(s2)
		}
	case *ast.LabeledStmt:
		lb := b.newBlock()
		b.edge(b.cur, lb)
		b.cur = lb
		b.labels[st.Label.Name] = lb
		b.pendingLabel = st.Label.Name
		b.stmt(st.Stmt)
		b.pendingLabel = ""
	case *ast.IfStmt:
		b.stmt(st.Init)
		b.add(st.Cond)
		cond := b.cur
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmt(st.Body)
		thenEnd := b.cur
		join := b.newBlock()
		if st.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(st.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(cond, join)
		}
		b.edge(thenEnd, join)
		b.cur = join
	case *ast.ForStmt:
		label := b.takeLabel()
		b.stmt(st.Init)
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		if st.Cond != nil {
			b.add(st.Cond)
		}
		body := b.newBlock()
		b.edge(head, body)
		exit := b.newBlock()
		if st.Cond != nil {
			b.edge(head, exit)
		}
		post := b.newBlock()
		b.breaks = append(b.breaks, branchTarget{label, exit, true})
		b.continues = append(b.continues, branchTarget{label, post, true})
		b.cur = body
		b.stmt(st.Body)
		b.edge(b.cur, post)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = post
		b.stmt(st.Post)
		b.edge(b.cur, head)
		b.cur = exit
	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		b.add(st) // range expr eval + key/value assignment per iteration
		body := b.newBlock()
		b.edge(head, body)
		exit := b.newBlock()
		b.edge(head, exit)
		b.breaks = append(b.breaks, branchTarget{label, exit, true})
		b.continues = append(b.continues, branchTarget{label, head, true})
		b.cur = body
		b.stmt(st.Body)
		b.edge(b.cur, head)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = exit
	case *ast.SwitchStmt:
		label := b.takeLabel()
		b.stmt(st.Init)
		if st.Tag != nil {
			b.add(st.Tag)
		}
		b.caseClauses(label, st.Body, func(cc *ast.CaseClause) ([]ast.Stmt, bool) {
			return cc.Body, cc.List == nil
		})
	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		b.stmt(st.Init)
		b.add(st.Assign)
		b.caseClauses(label, st.Body, func(cc *ast.CaseClause) ([]ast.Stmt, bool) {
			return cc.Body, cc.List == nil
		})
	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		exit := b.newBlock()
		b.breaks = append(b.breaks, branchTarget{label, exit, false})
		for _, cl := range st.Body.List {
			cc := cl.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			b.stmt(cc.Comm)
			for _, s2 := range cc.Body {
				b.stmt(s2)
			}
			b.edge(b.cur, exit)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.cur = exit
	case *ast.BranchStmt:
		b.add(st)
		name := ""
		if st.Label != nil {
			name = st.Label.Name
		}
		switch st.Tok {
		case token.BREAK:
			if t := b.findBreak(name); t != nil {
				b.edge(b.cur, t)
			}
		case token.CONTINUE:
			if t := b.findContinue(name); t != nil {
				b.edge(b.cur, t)
			}
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{b.cur, name})
		case token.FALLTHROUGH:
			if b.fallTarget != nil {
				b.edge(b.cur, b.fallTarget)
			}
		}
		b.seal()
	case *ast.ReturnStmt:
		b.add(st)
		b.edge(b.cur, b.g.Exit)
		b.seal()
	case *ast.DeferStmt:
		b.add(st)
		b.g.Defers = append(b.g.Defers, st)
	case *ast.ExprStmt:
		b.add(st)
		if call, ok := st.X.(*ast.CallExpr); ok && terminalCall(b.info, call) {
			b.edge(b.cur, b.g.Exit)
			b.seal()
		}
	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt, EmptyStmt, …
		b.add(st)
	}
}

// caseClauses builds the shared switch/type-switch shape: the current
// block fans out to one block per case, fallthrough chains case i to case
// i+1, and a missing default adds a head→join edge.
func (b *cfgBuilder) caseClauses(label string, body *ast.BlockStmt, split func(*ast.CaseClause) ([]ast.Stmt, bool)) {
	head := b.cur
	exit := b.newBlock()
	b.breaks = append(b.breaks, branchTarget{label, exit, false})
	hasDefault := false
	caseBlocks := make([]*Block, len(body.List))
	for i, cl := range body.List {
		caseBlocks[i] = b.newBlock()
		b.edge(head, caseBlocks[i])
		if _, isDefault := split(cl.(*ast.CaseClause)); isDefault {
			hasDefault = true
		}
	}
	savedFall := b.fallTarget
	for i, cl := range body.List {
		stmts, _ := split(cl.(*ast.CaseClause))
		if i+1 < len(caseBlocks) {
			b.fallTarget = caseBlocks[i+1]
		} else {
			b.fallTarget = nil
		}
		b.cur = caseBlocks[i]
		for _, s2 := range stmts {
			b.stmt(s2)
		}
		b.edge(b.cur, exit)
	}
	b.fallTarget = savedFall
	if !hasDefault {
		b.edge(head, exit)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = exit
}

// terminalCall reports whether call provably never returns: the panic
// builtin, os.Exit, runtime.Goexit, or log.Fatal/Fatalf/Fatalln.
func terminalCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name != "panic" {
			return false
		}
		if info == nil {
			return true
		}
		_, isBuiltin := info.Uses[fun].(*types.Builtin)
		return isBuiltin
	case *ast.SelectorExpr:
		if info == nil {
			return false
		}
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() {
		case "os":
			return fn.Name() == "Exit"
		case "runtime":
			return fn.Name() == "Goexit"
		case "log":
			switch fn.Name() {
			case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
				return true
			}
		}
	}
	return false
}

// inspectBlockNode visits the AST under one block statement node the way
// statement-level scanners should: a *ast.RangeStmt node stands for the
// loop HEAD only (its body statements live in their own blocks), so only
// the range operands are visited; nested function literals are skipped.
func inspectBlockNode(n ast.Node, f func(ast.Node) bool) {
	walk := func(sub ast.Node) {
		if sub == nil {
			return
		}
		ast.Inspect(sub, func(d ast.Node) bool {
			if _, ok := d.(*ast.FuncLit); ok {
				return false
			}
			return f(d)
		})
	}
	if rs, ok := n.(*ast.RangeStmt); ok {
		walk(rs.Key)
		walk(rs.Value)
		walk(rs.X)
		return
	}
	walk(n)
}

// stmtLoc pins an AST node to the block statement that contains it.
type stmtLoc struct {
	b   *Block
	idx int
}

// FuncInfo bundles a CFG with its dominance facts and a node→block
// location index — the query surface analyzers build on.
type FuncInfo struct {
	G    *CFG
	Info *types.Info

	rpoNum  []int // block index → order in forward reverse-postorder; -1 if unreachable from entry
	rpo     []*Block
	idom    []int // block index → idom block index; root maps to itself; -1 undefined
	prpoNum []int // same, on the reverse graph rooted at Exit
	prpo    []*Block
	ipdom   []int

	loc map[ast.Node]stmtLoc
}

// NewFuncInfo computes dominators, postdominators and the location index
// for body.
func NewFuncInfo(body *ast.BlockStmt, info *types.Info) *FuncInfo {
	g := NewCFG(body, info)
	fi := &FuncInfo{G: g, Info: info, loc: make(map[ast.Node]stmtLoc)}
	fi.rpo, fi.rpoNum = postorderNumbering(g, g.Entry, func(b *Block) []*Block { return b.Succs })
	fi.idom = immediateDoms(g, g.Entry, func(b *Block) []*Block { return b.Preds }, fi.rpo, fi.rpoNum)
	fi.prpo, fi.prpoNum = postorderNumbering(g, g.Exit, func(b *Block) []*Block { return b.Preds })
	fi.ipdom = immediateDoms(g, g.Exit, func(b *Block) []*Block { return b.Succs }, fi.prpo, fi.prpoNum)
	for _, blk := range g.Blocks {
		for i, n := range blk.Stmts {
			l := stmtLoc{blk, i}
			ast.Inspect(n, func(d ast.Node) bool {
				if d != nil {
					fi.loc[d] = l
				}
				return true
			})
		}
	}
	return fi
}

// Reachable reports whether b is reachable from the function entry.
func (fi *FuncInfo) Reachable(b *Block) bool { return fi.rpoNum[b.Index] >= 0 }

// Locate returns the block and in-block statement position holding node
// n (or any statement n is nested inside). ok is false for nodes that
// never made it into a block — unreachable only for synthetic nodes.
func (fi *FuncInfo) Locate(n ast.Node) (b *Block, idx int, ok bool) {
	l, ok := fi.loc[n]
	return l.b, l.idx, ok
}

// Dominates reports whether every path from entry to b passes through a.
// Unreachable blocks dominate nothing and are dominated by nothing.
func (fi *FuncInfo) Dominates(a, b *Block) bool {
	return dominates(fi.idom, fi.rpoNum, a, b, fi.G)
}

// PostDominates reports whether every path from b to the function exit
// passes through a.
func (fi *FuncInfo) PostDominates(a, b *Block) bool {
	return dominates(fi.ipdom, fi.prpoNum, a, b, fi.G)
}

// StmtDominates reports whether the statement at (ab, ai) executes on
// every path before the statement at (bb, bi).
func (fi *FuncInfo) StmtDominates(ab *Block, ai int, bb *Block, bi int) bool {
	if ab == bb {
		return ai < bi
	}
	return fi.Dominates(ab, bb)
}

func dominates(idom, num []int, a, b *Block, g *CFG) bool {
	if num[a.Index] < 0 || num[b.Index] < 0 {
		return false
	}
	for {
		if a == b {
			return true
		}
		i := idom[b.Index]
		if i < 0 || i == b.Index {
			return false
		}
		b = g.Blocks[i]
	}
}

// postorderNumbering runs a DFS from root along succs and returns the
// visited blocks in reverse postorder plus a block-index→order table
// (-1 for blocks the DFS never reached).
func postorderNumbering(g *CFG, root *Block, succs func(*Block) []*Block) ([]*Block, []int) {
	num := make([]int, len(g.Blocks))
	for i := range num {
		num[i] = -1
	}
	seen := make([]bool, len(g.Blocks))
	var order []*Block
	var dfs func(*Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, s := range succs(b) {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(root)
	// reverse into RPO
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	for i, b := range order {
		num[b.Index] = i
	}
	return order, num
}

// immediateDoms is the Cooper–Harvey–Kennedy iterative dominator
// algorithm, generic over graph direction: pass preds+forward RPO for
// dominators, succs+reverse RPO for postdominators.
func immediateDoms(g *CFG, root *Block, preds func(*Block) []*Block, rpo []*Block, rpoNum []int) []int {
	idom := make([]int, len(g.Blocks))
	for i := range idom {
		idom[i] = -1
	}
	idom[root.Index] = root.Index
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == root {
				continue
			}
			newIdom := -1
			for _, p := range preds(b) {
				if rpoNum[p.Index] < 0 || idom[p.Index] < 0 {
					continue
				}
				if newIdom < 0 {
					newIdom = p.Index
				} else {
					newIdom = intersect(p.Index, newIdom)
				}
			}
			if newIdom >= 0 && idom[b.Index] != newIdom {
				idom[b.Index] = newIdom
				changed = true
			}
		}
	}
	return idom
}
