package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file holds lightweight re-implementations of three vet-family
// analyzers the simlint multichecker assembles alongside the project
// analyzers: copylocks, lostcancel and nilness. `go vet ./...` (which `make
// lint` runs first) carries the full-strength copylocks and lostcancel;
// these stdlib-only versions exist so simlint remains a complete, single
// binary — and because nilness is not in vet's default suite at all.
// The upstream nilness is built on SSA from golang.org/x/tools, which the
// offline build cannot vendor, so NilnessLite covers the highest-value
// subset syntactically: a dereference of a variable inside the very branch
// that just proved it nil.

// CopyLocks flags copies of lock-bearing values: a parameter, a plain
// assignment, or a range-clause value whose type contains a sync.Mutex,
// sync.RWMutex, sync.WaitGroup, sync.Once, sync.Cond, sync.Map or
// sync.Pool by value. A copied lock guards nothing — both copies start
// unlocked and diverge — which in this tree would quietly undo the
// telemetry and engine fan-in synchronization.
var CopyLocks = &Analyzer{
	Name:    "copylocks",
	Doc:     "flag by-value copies of types containing sync primitives",
	Default: true,
	Run:     runCopyLocks,
}

func runCopyLocks(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.FuncDecl:
				checkFieldListCopies(pass, st.Type.Params)
				checkFieldListCopies(pass, st.Type.Results)
			case *ast.FuncLit:
				checkFieldListCopies(pass, st.Type.Params)
				checkFieldListCopies(pass, st.Type.Results)
			case *ast.AssignStmt:
				for _, rhs := range st.Rhs {
					// Copying an existing lock-bearing value; composite
					// literals and calls construct fresh values and are fine.
					switch ast.Unparen(rhs).(type) {
					case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
						if t := pass.Info.TypeOf(rhs); t != nil && lockPath(t) != "" {
							pass.Reportf(rhs.Pos(), "assignment copies lock value: %s contains %s", t, lockPath(t))
						}
					}
				}
			case *ast.RangeStmt:
				if st.Value != nil {
					if t := pass.Info.TypeOf(st.Value); t != nil && lockPath(t) != "" {
						pass.Reportf(st.Value.Pos(), "range clause copies lock value: %s contains %s", t, lockPath(t))
					}
				}
			}
			return true
		})
	}
	return nil
}

func checkFieldListCopies(pass *Pass, fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		t := pass.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if lp := lockPath(t); lp != "" {
			pass.Reportf(field.Pos(), "%s passes lock by value: it contains %s; use a pointer", t, lp)
		}
	}
}

// lockPath returns a description of the sync primitive t contains by value,
// or "" if none. Pointers stop the search: sharing a lock via pointer is the
// correct shape. Besides the sync package's primitives, any named type with
// niladic pointer-receiver Lock and Unlock methods counts — the go vet
// noCopy-sentinel convention, which trace.Dataset and trace.SegStore embed
// to mark that copying them detaches the columnar memo or the segment state.
func lockPath(t types.Type) string {
	switch u := t.Underlying().(type) {
	case *types.Struct:
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
				switch obj.Name() {
				case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
					return "sync." + obj.Name()
				}
			}
			if isNoCopySentinel(named) {
				return obj.Name() + " (Lock/Unlock no-copy sentinel)"
			}
		}
		for i := 0; i < u.NumFields(); i++ {
			if lp := lockPath(u.Field(i).Type()); lp != "" {
				return lp
			}
		}
	case *types.Array:
		return lockPath(u.Elem())
	}
	return ""
}

// isNoCopySentinel reports whether named carries the vet noCopy convention:
// parameterless, resultless Lock and Unlock methods. Such a type exists only
// to make its container an implicit sync.Locker so copy checks flag it.
func isNoCopySentinel(named *types.Named) bool {
	var hasLock, hasUnlock bool
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		sig, ok := m.Type().(*types.Signature)
		if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 0 {
			continue
		}
		switch m.Name() {
		case "Lock":
			hasLock = true
		case "Unlock":
			hasUnlock = true
		}
	}
	return hasLock && hasUnlock
}

// LostCancel flags context cancel functions that are dropped: assigned to
// the blank identifier, or bound to a variable that is never mentioned
// again in the enclosing function. An unreleased cancel leaks the context's
// timer and goroutine — in the engine's RunContext plumbing that means a
// worker that can never be torn down.
var LostCancel = &Analyzer{
	Name:    "lostcancel",
	Doc:     "flag discarded or unused cancel functions from context.With{Cancel,Timeout,Deadline}",
	Default: true,
	Run:     runLostCancel,
}

func runLostCancel(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkLostCancel(pass, fd.Body)
			return false // checkLostCancel walks nested literals itself
		})
	}
	return nil
}

func checkLostCancel(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Rhs) != 1 {
			return true
		}
		call, ok := st.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		switch fn.Name() {
		case "WithCancel", "WithTimeout", "WithDeadline", "WithCancelCause", "WithTimeoutCause", "WithDeadlineCause":
		default:
			return true
		}
		if len(st.Lhs) != 2 {
			return true
		}
		id, ok := st.Lhs[1].(*ast.Ident)
		if !ok {
			return true
		}
		if id.Name == "_" {
			pass.Reportf(id.Pos(), "the cancel function returned by context.%s is discarded; the context can never be released", fn.Name())
			return true
		}
		obj := pass.Info.ObjectOf(id)
		if obj == nil {
			return true
		}
		// The variable must be mentioned again (deferred, called, or passed
		// on) somewhere in the surrounding body.
		used := false
		ast.Inspect(body, func(m ast.Node) bool {
			if u, ok := m.(*ast.Ident); ok && u != id && pass.Info.ObjectOf(u) == obj {
				used = true
				return false
			}
			return !used
		})
		if !used {
			pass.Reportf(id.Pos(), "the cancel function %s from context.%s is never used; defer %s()", id.Name, fn.Name(), id.Name)
		}
		return true
	})
}

// NilnessLite flags a dereference of a variable inside the branch that just
// established it is nil: `if x == nil { … x.Field … }` with no intervening
// reassignment of x. The upstream SSA-based nilness catches far more; this
// covers the shape that actually bites in review.
var NilnessLite = &Analyzer{
	Name:    "nilness",
	Doc:     "flag dereferences inside a branch that proved the value nil",
	Default: true,
	Run:     runNilnessLite,
}

func runNilnessLite(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifst, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			id := nilComparedIdent(pass, ifst.Cond)
			if id == nil {
				return true
			}
			obj := pass.Info.ObjectOf(id)
			if obj == nil {
				return true
			}
			checkNilDeref(pass, ifst.Body, obj, id.Name)
			return true
		})
	}
	return nil
}

// nilComparedIdent returns x when cond is exactly `x == nil`.
func nilComparedIdent(pass *Pass, cond ast.Expr) *ast.Ident {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op != token.EQL {
		return nil
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	if isNilIdent(pass, y) {
		if id, ok := x.(*ast.Ident); ok {
			return id
		}
	}
	if isNilIdent(pass, x) {
		if id, ok := y.(*ast.Ident); ok {
			return id
		}
	}
	return nil
}

func isNilIdent(pass *Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.Info.Uses[id].(*types.Nil)
	return isNil
}

// checkNilDeref reports pointer dereferences of obj within body, stopping at
// the first reassignment of obj.
func checkNilDeref(pass *Pass, body *ast.BlockStmt, obj types.Object, name string) {
	// Pointer-ish kinds that panic on deref; nil maps read fine and nil
	// slices range fine, so only pointers are flagged.
	if _, ok := obj.Type().Underlying().(*types.Pointer); !ok {
		return
	}
	reassigned := false
	ast.Inspect(body, func(n ast.Node) bool {
		if reassigned {
			return false
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
					reassigned = true
					return false
				}
			}
		case *ast.SelectorExpr:
			// x.F on a *T auto-derefs; x.M() on a nil *T is only safe for
			// methods that guard their receiver, so both shapes are worth a
			// report under a proven-nil guard.
			if id, ok := st.X.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
				pass.Reportf(st.Pos(), "%s is nil on this branch; %s.%s dereferences it", name, name, st.Sel.Name)
				return false
			}
		case *ast.StarExpr:
			if id, ok := st.X.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
				pass.Reportf(st.Pos(), "%s is nil on this branch; *%s dereferences it", name, name)
				return false
			}
		}
		return true
	})
}
