package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestHTTPTerm(t *testing.T) {
	linttest.Run(t, "httpterm", lint.HTTPTerm)
}
