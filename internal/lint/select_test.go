package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
)

func names(as []*lint.Analyzer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}

func TestSelectDefaults(t *testing.T) {
	got, err := lint.Select("", "")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range got {
		if !a.Default {
			t.Errorf("non-default analyzer %s selected with no -only filter", a.Name)
		}
	}
	has := map[string]bool{}
	for _, n := range names(got) {
		has[n] = true
	}
	if has["fieldalign"] {
		t.Error("opt-in fieldalign must not run by default")
	}
	for _, n := range []string{"nowallclock", "seedflow", "maporder", "floataccum", "errsink", "specmirror"} {
		if !has[n] {
			t.Errorf("default set is missing %s", n)
		}
	}
}

func TestSelectOnly(t *testing.T) {
	got, err := lint.Select("maporder, seedflow", "")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"seedflow", "maporder"} // registry order, not flag order
	if g := strings.Join(names(got), ","); g != strings.Join(want, ",") {
		t.Errorf("Select(only) = %s, want %s", g, strings.Join(want, ","))
	}
}

func TestSelectSkip(t *testing.T) {
	got, err := lint.Select("", "maporder")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names(got) {
		if n == "maporder" {
			t.Error("skipped analyzer still selected")
		}
	}
}

func TestSelectUnknown(t *testing.T) {
	if _, err := lint.Select("nosuchcheck", ""); err == nil || !strings.Contains(err.Error(), "unknown analyzer") {
		t.Errorf("Select with unknown -only name: err = %v, want unknown-analyzer error", err)
	}
	if _, err := lint.Select("", "nosuchcheck"); err == nil || !strings.Contains(err.Error(), "unknown analyzer") {
		t.Errorf("Select with unknown -skip name: err = %v, want unknown-analyzer error", err)
	}
}
