package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression comments take the form
//
//	//lint:allow <analyzer> <reason...>
//
// and silence that one analyzer — and only that one — on the same line or
// the line immediately below the comment. The reason is mandatory: a
// suppression that cannot say why it exists is a finding in its own right.
// So are an unknown analyzer name (usually a typo that would otherwise
// silently suppress nothing) and an allow-comment that matched no finding
// (a stale suppression left behind after the offending code was fixed).
const allowPrefix = "//lint:allow"

// allowComment is one parsed //lint:allow directive.
type allowComment struct {
	pos      token.Pos
	file     string
	line     int
	analyzer string
	reason   string
	used     bool
}

// parseAllows extracts every allow-comment from the package's non-test
// files. Findings only arise from non-test files, so that is where the
// suppressions live too.
func parseAllows(pkg *Package) []*allowComment {
	var out []*allowComment
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(c.Text, allowPrefix))
				pos := pkg.Fset.Position(c.Pos())
				a := &allowComment{pos: c.Pos(), file: pos.Filename, line: pos.Line}
				if len(fields) > 0 {
					a.analyzer = fields[0]
				}
				if len(fields) > 1 {
					a.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, a)
			}
		}
	}
	return out
}

// filterAllowed drops diagnostics covered by a well-formed allow-comment and
// appends audit diagnostics for malformed, unknown-name, or stale ones.
// known holds every analyzer name the driver knows about (so a filtered run
// does not mis-flag other analyzers' suppressions as unknown); executed
// holds the ones that actually ran this invocation (staleness is only
// auditable for those — under -only/-skip the rest report nothing, so their
// suppressions legitimately match nothing).
func filterAllowed(pkg *Package, diags []Diagnostic, known, executed map[string]bool) []Diagnostic {
	allows := parseAllows(pkg)
	if len(allows) == 0 {
		return diags
	}
	type key struct {
		file string
		line int
	}
	idx := make(map[key][]*allowComment)
	var audited []Diagnostic
	for _, a := range allows {
		switch {
		case a.analyzer == "":
			audited = append(audited, Diagnostic{Pos: a.pos, Analyzer: "allow",
				Message: "malformed suppression: want //lint:allow <analyzer> <reason>"})
			continue
		case !known[a.analyzer]:
			audited = append(audited, Diagnostic{Pos: a.pos, Analyzer: "allow",
				Message: "unknown analyzer \"" + a.analyzer + "\" in //lint:allow (it would suppress nothing)"})
			continue
		case a.reason == "":
			audited = append(audited, Diagnostic{Pos: a.pos, Analyzer: "allow",
				Message: "//lint:allow " + a.analyzer + " needs a reason"})
			continue
		}
		// An inline comment covers its own line; a standalone comment
		// covers the next line.
		idx[key{a.file, a.line}] = append(idx[key{a.file, a.line}], a)
		idx[key{a.file, a.line + 1}] = append(idx[key{a.file, a.line + 1}], a)
	}

	kept := diags[:0]
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		suppressed := false
		for _, a := range idx[key{pos.Filename, pos.Line}] {
			if a.analyzer == d.Analyzer {
				a.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, a := range allows {
		if a.analyzer != "" && known[a.analyzer] && a.reason != "" && !a.used && executed[a.analyzer] {
			audited = append(audited, Diagnostic{Pos: a.pos, Analyzer: "allow",
				Message: "stale //lint:allow " + a.analyzer + ": no finding on the covered line"})
		}
	}
	return append(kept, audited...)
}

// isPkgFunc reports whether the identifier resolves (via Uses) to one of the
// named functions of the named package; with no names, any function of that
// package matches. Several analyzers share it.
func isPkgFunc(pass *Pass, id *ast.Ident, pkgPath string, names ...string) bool {
	obj := pass.Info.Uses[id]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}
