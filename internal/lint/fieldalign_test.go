package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestFieldAlign(t *testing.T) {
	linttest.Run(t, "fieldalign", lint.FieldAlign)
}
