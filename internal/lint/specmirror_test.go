package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestSpecMirror(t *testing.T) {
	linttest.Run(t, "specmirror", lint.SpecMirror)
}
