package lint

// lockguard checks mutex discipline on struct fields: a field that is
// guarded by a sibling sync.Mutex/RWMutex must not be touched on paths
// where the lock is provably not held. A field is guarded if either
//
//   - its declaration comment says `guarded by <mutexField>`, or
//   - it is written while the write lock is held in at least two distinct
//     methods (the inference rule; the threshold keeps a single method's
//     missing Lock() detectable via the others, while write-once fields
//     published before sharing — set only in constructors — stay exempt).
//
// The analysis is a per-method forward dataflow over the CFG with a
// five-point lock-state lattice per mutex field: unreached, write-held,
// read-held, not-held, and mixed (held on some paths only). Only the
// not-held state is reported for reads, and not-held/read-held for
// writes — "mixed" paths stay silent, so conditional locking never
// false-positives. Methods whose name ends in "Locked" are callee-locked
// helpers by repo convention and start in the write-held state; function
// literals and non-method functions (constructors, replay before
// publication) are not analyzed.

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

var LockGuard = &Analyzer{
	Name:    "lockguard",
	Doc:     "guarded struct fields must not be accessed without their mutex held",
	Default: true,
	Run:     runLockGuard,
}

type lockState uint8

const (
	lsTop   lockState = iota // unreached
	lsWrite                  // write lock held on all paths
	lsRead                   // read lock (at least) held on all paths
	lsNone                   // provably not held
	lsMixed                  // held on some paths, not on others
)

func meetLock(a, b lockState) lockState {
	switch {
	case a == lsTop:
		return b
	case b == lsTop:
		return a
	case a == b:
		return a
	case (a == lsWrite && b == lsRead) || (a == lsRead && b == lsWrite):
		return lsRead
	default:
		return lsMixed
	}
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// lockedStruct is one analyzed struct type: its mutex fields and its
// guarded-field table.
type lockedStruct struct {
	named   *types.Named
	mutexes map[string]bool   // field name → is RWMutex-capable
	guarded map[string]string // field name → guarding mutex field
	// heldWriters counts distinct methods writing each unannotated field
	// under the write lock, for the inference rule.
	heldWriters map[string]map[string]bool
	inferred    map[string]bool
}

// fieldAccess is one receiver-field touch recorded during the first pass.
type fieldAccess struct {
	sel    *ast.SelectorExpr
	field  string
	write  bool
	state  lockState
	method string
}

func runLockGuard(pass *Pass) error {
	structs := lockGuardStructs(pass)
	if len(structs) == 0 {
		return nil
	}
	var accesses []*fieldAccess
	byStruct := map[*lockedStruct][]*fieldAccess{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) == 0 {
				continue
			}
			ls, recvObj := lockGuardMethodTarget(pass, structs, fd)
			if ls == nil || recvObj == nil {
				continue
			}
			acc := lockGuardMethod(pass, ls, fd, recvObj)
			accesses = append(accesses, acc...)
			byStruct[ls] = append(byStruct[ls], acc...)
			for _, a := range acc {
				if a.write && a.state == lsWrite {
					m := ls.heldWriters[a.field]
					if m == nil {
						m = map[string]bool{}
						ls.heldWriters[a.field] = m
					}
					m[a.method] = true
				}
			}
		}
	}
	// Inference: unannotated fields written under the write lock in ≥2
	// distinct methods are treated as guarded. Only unambiguous when the
	// struct has exactly one mutex field.
	for ls := range byStruct {
		if len(ls.mutexes) != 1 {
			continue
		}
		var mu string
		for m := range ls.mutexes {
			mu = m
		}
		for f, methods := range ls.heldWriters {
			if _, annotated := ls.guarded[f]; annotated {
				continue
			}
			if len(methods) >= 2 {
				ls.guarded[f] = mu
				ls.inferred[f] = true
			}
		}
	}
	for ls, acc := range byStruct {
		for _, a := range acc {
			mu, ok := ls.guarded[a.field]
			if !ok {
				continue
			}
			bad := a.state == lsNone || (a.write && a.state == lsRead)
			if !bad {
				continue
			}
			kind := "read of"
			if a.write {
				kind = "write to"
			}
			how := "documented guarded by " + mu
			if ls.inferred[a.field] {
				how = fmt.Sprintf("inferred guarded by %s: locked writes in %d methods", mu, len(ls.heldWriters[a.field]))
			}
			hold := mu + " is not held here"
			if a.state == lsRead {
				hold = "only the read lock is held here"
			}
			pass.Reportf(a.sel.Pos(), "%s %s.%s without holding %s (%s; %s)",
				kind, ls.named.Obj().Name(), a.field, mu, how, hold)
		}
	}
	return nil
}

// lockGuardStructs finds every struct in the package with a direct
// sync.Mutex/RWMutex field and parses its `guarded by` annotations.
func lockGuardStructs(pass *Pass) map[*types.Named]*lockedStruct {
	out := map[*types.Named]*lockedStruct{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj, ok := pass.Info.Defs[ts.Name]
			if !ok || obj == nil {
				return true
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				return true
			}
			ls := &lockedStruct{
				named:       named,
				mutexes:     map[string]bool{},
				guarded:     map[string]string{},
				heldWriters: map[string]map[string]bool{},
				inferred:    map[string]bool{},
			}
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					fobj := pass.Info.Defs[name]
					if fobj == nil {
						continue
					}
					if rw, isMu := mutexType(fobj.Type()); isMu {
						ls.mutexes[name.Name] = rw
						continue
					}
					for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
						if cg == nil {
							continue
						}
						if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
							ls.guarded[name.Name] = m[1]
						}
					}
				}
			}
			if len(ls.mutexes) == 0 {
				return true
			}
			// Audit annotations: `guarded by` must name a sibling mutex.
			for f, mu := range ls.guarded {
				if !ls.mutexes[mu] {
					if _, plain := ls.mutexes[mu]; !plain {
						pass.Reportf(ts.Pos(), "field %s.%s is annotated `guarded by %s`, but %s is not a sync.Mutex/RWMutex field of the struct", named.Obj().Name(), f, mu, mu)
						delete(ls.guarded, f)
					}
				}
			}
			out[named] = ls
			return true
		})
	}
	return out
}

// mutexType reports whether t is sync.Mutex or sync.RWMutex (and which).
func mutexType(t types.Type) (rw bool, ok bool) {
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

// lockGuardMethodTarget resolves which analyzed struct (if any) fd is a
// method of, and the receiver variable object.
func lockGuardMethodTarget(pass *Pass, structs map[*types.Named]*lockedStruct, fd *ast.FuncDecl) (*lockedStruct, types.Object) {
	recvField := fd.Recv.List[0]
	if len(recvField.Names) == 0 || recvField.Names[0].Name == "_" {
		return nil, nil
	}
	recvObj := pass.Info.Defs[recvField.Names[0]]
	if recvObj == nil {
		return nil, nil
	}
	t := recvObj.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	return structs[named], recvObj
}

// lockGuardMethod runs the lock-state dataflow over one method and
// returns every receiver-field access with the state it happens under.
func lockGuardMethod(pass *Pass, ls *lockedStruct, fd *ast.FuncDecl, recvObj types.Object) []*fieldAccess {
	fi := NewFuncInfo(fd.Body, pass.Info)
	initial := lsNone
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		initial = lsWrite
	}
	// One solved lattice per mutex field (almost always exactly one).
	states := map[string][]lockState{}
	for mu := range ls.mutexes {
		mu := mu
		states[mu] = Solve(fi, FlowSpec[lockState]{
			Forward:  true,
			Boundary: initial,
			Top:      lsTop,
			Meet:     meetLock,
			Transfer: func(b *Block, s lockState) lockState {
				for _, st := range b.Stmts {
					if op, ok := lockOp(pass, st, recvObj, mu); ok {
						s = op
					}
				}
				return s
			},
			Equal: func(a, b lockState) bool { return a == b },
		})
	}
	var out []*fieldAccess
	for _, blk := range fi.G.Blocks {
		if !fi.Reachable(blk) {
			continue
		}
		cur := map[string]lockState{}
		for mu := range states {
			cur[mu] = states[mu][blk.Index]
		}
		for _, st := range blk.Stmts {
			if _, isDefer := st.(*ast.DeferStmt); !isDefer {
				for _, a := range fieldAccesses(pass, st, recvObj, ls) {
					mu := ls.guarded[a.field]
					if mu == "" {
						// Not (yet) known guarded; record under the sole
						// mutex so inference can use the state.
						for m := range ls.mutexes {
							mu = m
						}
					}
					a.state = cur[mu]
					a.method = fd.Name.Name
					out = append(out, a)
				}
			}
			for mu := range cur {
				if op, ok := lockOp(pass, st, recvObj, mu); ok {
					cur[mu] = op
				}
			}
		}
	}
	return out
}

// lockOp reports the state effect of st on recv.<mu>: Lock→write-held,
// RLock→read-held, Unlock/RUnlock→not-held. Deferred unlocks run at
// return and deliberately have no mid-function effect.
func lockOp(pass *Pass, st ast.Node, recvObj types.Object, mu string) (lockState, bool) {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return 0, false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return 0, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0, false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != mu {
		return 0, false
	}
	base, ok := inner.X.(*ast.Ident)
	if !ok || pass.Info.Uses[base] != recvObj {
		return 0, false
	}
	switch sel.Sel.Name {
	case "Lock":
		return lsWrite, true
	case "RLock":
		return lsRead, true
	case "Unlock", "RUnlock":
		return lsNone, true
	}
	return 0, false
}

// fieldAccesses collects recv.<field> touches in one statement, with
// read/write classification. Nested function literals are skipped (their
// execution time is unknown), as are touches of the mutex fields
// themselves.
func fieldAccesses(pass *Pass, st ast.Node, recvObj types.Object, ls *lockedStruct) []*fieldAccess {
	var out []*fieldAccess
	var walk func(n ast.Node, write bool)
	walkAll := func(ns []ast.Expr, write bool) {
		for _, n := range ns {
			walk(n, write)
		}
	}
	walk = func(n ast.Node, write bool) {
		switch e := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			return
		case *ast.AssignStmt:
			walkAll(e.Lhs, true)
			walkAll(e.Rhs, false)
		case *ast.IncDecStmt:
			walk(e.X, true)
		case *ast.RangeStmt:
			// As a block node, a range statement is the loop head only:
			// its body statements live in their own blocks.
			walk(e.Key, true)
			walk(e.Value, true)
			walk(e.X, false)
		case *ast.CallExpr:
			if id, ok := e.Fun.(*ast.Ident); ok {
				if b, isB := pass.Info.Uses[id].(*types.Builtin); isB && b.Name() == "delete" && len(e.Args) == 2 {
					walk(e.Args[0], true)
					walk(e.Args[1], false)
					return
				}
			}
			walk(e.Fun, false)
			walkAll(e.Args, false)
		case *ast.SelectorExpr:
			if base, ok := e.X.(*ast.Ident); ok && pass.Info.Uses[base] == recvObj {
				name := e.Sel.Name
				if _, isMu := ls.mutexes[name]; !isMu && isStructField(ls.named, name) {
					out = append(out, &fieldAccess{sel: e, field: name, write: write})
				}
				return
			}
			walk(e.X, write)
			return
		case *ast.IndexExpr:
			walk(e.X, write)
			walk(e.Index, false)
		case *ast.SliceExpr:
			walk(e.X, write)
			walk(e.Low, false)
			walk(e.High, false)
			walk(e.Max, false)
		case *ast.StarExpr:
			walk(e.X, write)
		case *ast.UnaryExpr:
			walk(e.X, write)
		case *ast.ParenExpr:
			walk(e.X, write)
		default:
			ast.Inspect(n, func(d ast.Node) bool {
				if d == n {
					return true
				}
				switch d.(type) {
				case *ast.FuncLit:
					return false
				case *ast.AssignStmt, *ast.IncDecStmt, *ast.CallExpr, *ast.SelectorExpr,
					*ast.IndexExpr, *ast.SliceExpr, *ast.StarExpr, *ast.UnaryExpr, *ast.ParenExpr:
					walk(d, false)
					return false
				}
				return true
			})
		}
	}
	walk(st, false)
	return out
}

// isStructField reports whether named's underlying struct has a field
// called name.
func isStructField(named *types.Named, name string) bool {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return true
		}
	}
	return false
}
