package lint

// commitorder machine-checks PR 9's crash-recovery contract in
// internal/durable, where the WAL is the commit point:
//
//   R1 — append-before-apply: in every exported method of a struct that
//   owns a WAL (a field whose type has an `Append(...) (uint64, error)`
//   method), any mutation of applied state — a write to a non-bool
//   receiver field, or a call to a mutating method on a receiver field —
//   must be dominated by a WAL Append call whose error is checked by an
//   `if err != nil` guard that terminates (so no state is applied on a
//   failed append). Bool fields are exempt: lifecycle latches like
//   `s.closed = true` are not replayed state.
//
//   R2 — fsync-before-rename: anywhere in the package, an os.Rename call
//   must be dominated by an (*os.File).Sync call, so a crash can never
//   publish an unfsynced snapshot under its final name.
//
// Both rules are dominance queries over the cfg.go graphs: "dominated
// by" means on *every* path, which is exactly the durability claim the
// recovery tests rely on.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var CommitOrder = &Analyzer{
	Name:    "commitorder",
	Doc:     "internal/durable: state mutations must be dominated by a checked WAL Append; os.Rename by an fsync",
	Default: true,
	Run:     runCommitOrder,
}

// commitMutatorNames are the methods on receiver fields that apply
// replayable state when called (the trace.SegStore mutation surface plus
// the WAL-shaped appends themselves when made on a non-WAL field).
var commitMutatorNames = map[string]bool{
	"Append": true, "AppendBatch": true, "AppendDataset": true,
	"AppendDatasetMax": true, "AttachSeries": true, "StageTelemetry": true,
	"SealTail": true, "Compact": true,
}

func runCommitOrder(pass *Pass) error {
	if !pathHasSuffix(pass.Path, "internal/durable") {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fi := NewFuncInfo(fd.Body, pass.Info)
			commitOrderRename(pass, fi, fd)
			if fd.Recv != nil && ast.IsExported(fd.Name.Name) {
				commitOrderAppend(pass, fi, fd)
			}
		}
	}
	return nil
}

func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// walAppendCall matches recv.<walField>.Append(...) where the field's
// type has the WAL shape, returning the selector for reporting.
type appendSite struct {
	call *ast.CallExpr
	blk  *Block
	idx  int
	// guard is the location of a dominating terminating `if err != nil`
	// check of this call's error result; nil if the error is unchecked.
	guardBlk *Block
	guardIdx int
	guarded  bool
}

func commitOrderAppend(pass *Pass, fi *FuncInfo, fd *ast.FuncDecl) {
	recvObj := recvVar(pass, fd)
	if recvObj == nil {
		return
	}
	walFields := walShapedFields(recvObj.Type())
	if len(walFields) == 0 {
		return
	}

	var appends []*appendSite
	var mutations []struct {
		pos  token.Pos
		what string
		blk  *Block
		idx  int
	}
	addMutation := func(pos token.Pos, what string, n ast.Node) {
		blk, idx, ok := fi.Locate(n)
		if !ok || !fi.Reachable(blk) {
			return
		}
		mutations = append(mutations, struct {
			pos  token.Pos
			what string
			blk  *Block
			idx  int
		}{pos, what, blk, idx})
	}

	// recvField returns the field name when e is recv.<field> (possibly
	// deeper selectors return "").
	recvField := func(e ast.Expr) string {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return ""
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok || pass.Info.Uses[base] != recvObj {
			return ""
		}
		return sel.Sel.Name
	}
	fieldIsBool := func(name string) bool {
		st, ok := deref(recvObj.Type()).Underlying().(*types.Struct)
		if !ok {
			return false
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == name {
				b, isBasic := st.Field(i).Type().Underlying().(*types.Basic)
				return isBasic && b.Kind() == types.Bool
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			sel, ok := e.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if f := recvField(sel.X); f != "" {
				if walFields[f] && sel.Sel.Name == "Append" {
					blk, idx, ok := fi.Locate(e)
					if ok && fi.Reachable(blk) {
						appends = append(appends, &appendSite{call: e, blk: blk, idx: idx})
					}
					return true
				}
				if commitMutatorNames[sel.Sel.Name] {
					addMutation(e.Pos(), "call to "+f+"."+sel.Sel.Name, e)
				}
			}
			if id, ok := e.Fun.(*ast.Ident); ok {
				if b, isB := pass.Info.Uses[id].(*types.Builtin); isB && b.Name() == "delete" && len(e.Args) > 0 {
					if f := recvField(e.Args[0]); f != "" {
						addMutation(e.Pos(), "delete from "+f, e)
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range e.Lhs {
				root := lhs
				for {
					if ix, ok := root.(*ast.IndexExpr); ok {
						root = ix.X
						continue
					}
					if st, ok := root.(*ast.StarExpr); ok {
						root = st.X
						continue
					}
					break
				}
				if f := recvField(root); f != "" && !walFields[f] && !fieldIsBool(f) {
					addMutation(lhs.Pos(), "write to "+f, e)
				}
			}
		case *ast.IncDecStmt:
			root := e.X
			if ix, ok := root.(*ast.IndexExpr); ok {
				root = ix.X
			}
			if f := recvField(root); f != "" && !fieldIsBool(f) {
				addMutation(e.Pos(), "update of "+f, e)
			}
		}
		return true
	})

	if len(mutations) == 0 {
		return
	}
	rd := BuildReachingDefs(fi, fd.Recv, fd.Type)
	for _, a := range appends {
		resolveAppendGuard(pass, fi, rd, fd, a)
	}
	for _, m := range mutations {
		var dominatingUnguarded *appendSite
		ok := false
		for _, a := range appends {
			if !fi.StmtDominates(a.blk, a.idx, m.blk, m.idx) {
				continue
			}
			if a.guarded && fi.StmtDominates(a.guardBlk, a.guardIdx, m.blk, m.idx) {
				ok = true
				break
			}
			dominatingUnguarded = a
		}
		if ok {
			continue
		}
		if dominatingUnguarded != nil {
			pass.Reportf(m.pos, "%s in %s is dominated by a WAL Append whose error is not checked by a terminating `if err != nil` guard before the state is applied", m.what, fd.Name.Name)
		} else {
			pass.Reportf(m.pos, "%s in exported method %s is not dominated by a WAL Append: applied state would not be replayable after a crash", m.what, fd.Name.Name)
		}
	}
}

// resolveAppendGuard finds the `if err != nil { …terminate… }` guard for
// an Append call site: the call must be the RHS of an assignment with an
// error result, and some if-statement on that error object — reached by
// *this* assignment's definition, so a guard on an earlier or later
// reassignment of err does not count — whose then branch always
// terminates, must exist. Its condition location is recorded so callers
// can require it to dominate the mutation.
func resolveAppendGuard(pass *Pass, fi *FuncInfo, rd *ReachingDefs, fd *ast.FuncDecl, a *appendSite) {
	stmtNode := fi.G.Blocks[a.blk.Index].Stmts[a.idx]
	as, ok := stmtNode.(*ast.AssignStmt)
	if !ok || len(as.Rhs) != 1 || as.Rhs[0] != a.call {
		// Also accept the call nested directly, e.g. `if _, err := w.Append(…); err != nil`
		ifs, isIf := findInitAssign(stmtNode, a.call)
		if !isIf {
			return
		}
		as = ifs
	}
	var errObj types.Object
	for _, lhs := range as.Lhs {
		id, isIdent := lhs.(*ast.Ident)
		if !isIdent || id.Name == "_" {
			continue
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj != nil && isErrorType(obj.Type()) {
			errObj = obj
		}
	}
	if errObj == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if a.guarded {
			return false
		}
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if !isErrNotNil(pass, ifs.Cond, errObj) || !alwaysTerminates(ifs.Body.List) {
			return true
		}
		// The error value tested must come from this Append assignment.
		fromAppend := false
		for _, def := range rd.At(ifs.Cond, errObj) {
			if def.Node == as {
				fromAppend = true
			}
		}
		if !fromAppend {
			return true
		}
		blk, idx, ok := fi.Locate(ifs.Cond)
		if ok && fi.Reachable(blk) {
			a.guardBlk, a.guardIdx, a.guarded = blk, idx, true
		}
		return true
	})
}

// findInitAssign digs the assignment out of an if-init that contains call.
func findInitAssign(stmtNode ast.Node, call *ast.CallExpr) (*ast.AssignStmt, bool) {
	as, ok := stmtNode.(*ast.AssignStmt)
	if !ok || len(as.Rhs) != 1 {
		return nil, false
	}
	found := false
	ast.Inspect(as.Rhs[0], func(n ast.Node) bool {
		if n == call {
			found = true
		}
		return !found
	})
	return as, found
}

func isErrNotNil(pass *Pass, cond ast.Expr, errObj types.Object) bool {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return false
	}
	matches := func(x, y ast.Expr) bool {
		id, ok := x.(*ast.Ident)
		if !ok || pass.Info.Uses[id] != errObj {
			return false
		}
		nid, ok := y.(*ast.Ident)
		return ok && nid.Name == "nil"
	}
	return matches(be.X, be.Y) || matches(be.Y, be.X)
}

// alwaysTerminates reports whether a statement list cannot fall through:
// it ends in return, panic, or an if/else whose branches both terminate.
func alwaysTerminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	case *ast.IfStmt:
		eb, ok := last.Else.(*ast.BlockStmt)
		return ok && alwaysTerminates(last.Body.List) && alwaysTerminates(eb.List)
	case *ast.BlockStmt:
		return alwaysTerminates(last.List)
	}
	return false
}

// commitOrderRename enforces R2: every os.Rename call must be dominated
// by an (*os.File).Sync call.
func commitOrderRename(pass *Pass, fi *FuncInfo, fd *ast.FuncDecl) {
	var syncs []stmtLoc
	var renames []struct {
		call *ast.CallExpr
		loc  stmtLoc
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
			return true
		}
		blk, idx, located := fi.Locate(call)
		if !located || !fi.Reachable(blk) {
			return true
		}
		switch fn.Name() {
		case "Rename":
			renames = append(renames, struct {
				call *ast.CallExpr
				loc  stmtLoc
			}{call, stmtLoc{blk, idx}})
		case "Sync":
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
				if named, ok := deref(recv.Type()).(*types.Named); ok && named.Obj().Name() == "File" {
					syncs = append(syncs, stmtLoc{blk, idx})
				}
			}
		}
		return true
	})
	for _, r := range renames {
		ok := false
		for _, s := range syncs {
			if fi.StmtDominates(s.b, s.idx, r.loc.b, r.loc.idx) {
				ok = true
				break
			}
		}
		if !ok {
			pass.Reportf(r.call.Pos(), "os.Rename in %s is not dominated by an (*os.File).Sync: a crash could publish an unfsynced file", fd.Name.Name)
		}
	}
}

// recvVar returns the receiver variable object of a method, nil for
// unnamed/blank receivers.
func recvVar(pass *Pass, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	name := fd.Recv.List[0].Names[0]
	if name.Name == "_" {
		return nil
	}
	return pass.Info.Defs[name]
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// walShapedFields returns the receiver struct's fields whose type has an
// Append method returning (uint64, error) — the WAL commit-point shape.
func walShapedFields(recvType types.Type) map[string]bool {
	st, ok := deref(recvType).Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	out := map[string]bool{}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		named, ok := deref(f.Type()).(*types.Named)
		if !ok {
			continue
		}
		for m := 0; m < named.NumMethods(); m++ {
			fn := named.Method(m)
			if fn.Name() != "Append" {
				continue
			}
			res := fn.Type().(*types.Signature).Results()
			if res.Len() == 2 && isUint64(res.At(0).Type()) && isErrorType(res.At(1).Type()) {
				out[f.Name()] = true
			}
		}
	}
	return out
}

func isUint64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
