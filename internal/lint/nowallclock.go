package lint

import (
	"go/ast"
)

// NoWallClock forbids reading the wall clock from simulation code. The
// discrete-event simulator owns time: every timestamp a component sees must
// come from the DES clock (slurm.Simulator's event heap) or from the trace
// itself, or two runs of the same seed stop being bit-identical and the
// replication merge / golden-figure contracts break. time.Now and its
// convenience wrapper time.Since are the two ways wall time leaks in;
// time.Duration arithmetic and the time constants remain fine.
//
// Runtime backstop: the engine's worker-count bit-identity tests and the
// golden figures would eventually catch a wall-clock read, but only on a
// lucky diff; this makes it a build failure.
var NoWallClock = &Analyzer{
	Name:    "nowallclock",
	Doc:     "forbid time.Now/time.Since in simulation code; sim time comes from the DES clock",
	Default: true,
	Run:     runNoWallClock,
}

func runNoWallClock(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if isPkgFunc(pass, sel.Sel, "time", "Now", "Since") {
				pass.Reportf(call.Pos(),
					"%s reads the wall clock; simulation time must come from the DES clock (use the simulator's Now/event time)",
					"time."+sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
