// Package linttest is the fixture harness for simlint analyzers — the
// project's stdlib-only analogue of golang.org/x/tools/go/analysis/
// analysistest. A fixture is a package directory under
// internal/lint/testdata/src; expectations are written in the fixture
// source as comments of the form
//
//	code() // want `regexp`
//	code() // want `regexp1` `regexp2`
//
// where each back-quoted regexp must match the message of exactly one
// diagnostic reported on that line, every diagnostic must be matched by
// some expectation, and a fixture with no want-comments asserts the
// analyzer stays silent. The full driver pipeline runs, including
// //lint:allow filtering, so fixtures can also assert the suppression
// mechanism itself.
package linttest

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"

	"repro/internal/lint"
)

// srcRoot returns the testdata/src directory, located relative to this
// source file so tests work from any working directory.
func srcRoot() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		panic("linttest: cannot locate caller")
	}
	return filepath.Join(filepath.Dir(file), "..", "testdata", "src")
}

// NewLoader returns a loader that resolves import paths inside testdata/src
// first (so fixtures can model guarded packages like a fake internal/trace)
// and falls back to the real module for everything else.
func NewLoader(t *testing.T) *lint.Loader {
	t.Helper()
	root := srcRoot()
	modRoot, modPath := moduleInfo(t)
	l := lint.NewLoader(modRoot, modPath)
	module := l.Resolve
	l.Resolve = func(path string) (string, bool) {
		if dir := filepath.Join(root, filepath.FromSlash(path)); dirHasGo(dir) {
			return dir, true
		}
		return module(path)
	}
	return l
}

func moduleInfo(t *testing.T) (root, path string) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("linttest: cannot locate caller")
	}
	// internal/lint/linttest/linttest.go -> module root three levels up.
	return filepath.Join(filepath.Dir(file), "..", "..", ".."), "repro"
}

func dirHasGo(dir string) bool {
	m, err := filepath.Glob(filepath.Join(dir, "*.go"))
	return err == nil && len(m) > 0
}

// Run loads the fixture package (an import path under testdata/src), runs
// the given analyzers through the full pipeline, and diffs the resulting
// diagnostics against the fixture's want-comments.
func Run(t *testing.T, fixture string, analyzers ...*lint.Analyzer) {
	t.Helper()
	loader := NewLoader(t)
	pkg, err := loader.Load(fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	diags, err := lint.Run(pkg, analyzers, lint.KnownNames())
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", fixture, err)
	}

	wants := parseWants(t, pkg)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := posKey{filepath.Base(pos.Filename), pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic [%s] %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: expected a diagnostic matching %q, got none", k.file, k.line, w.re)
			}
		}
	}
}

type posKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

var wantRe = regexp.MustCompile("`([^`]*)`")

// parseWants extracts want-comments from every fixture file (including test
// files: specmirror fixtures carry equivalence tests).
func parseWants(t *testing.T, pkg *lint.Package) map[posKey][]*want {
	t.Helper()
	wants := make(map[posKey][]*want)
	for _, f := range append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...) {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				i := strings.Index(c.Text, "// want ")
				if i < 0 {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				ms := wantRe.FindAllStringSubmatch(c.Text[i:], -1)
				if len(ms) == 0 {
					t.Fatalf("%s: malformed want comment (no back-quoted regexp): %s", p, c.Text)
				}
				k := posKey{filepath.Base(p.Filename), p.Line}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", p, m[1], err)
					}
					wants[k] = append(wants[k], &want{re: re})
				}
			}
		}
	}
	return wants
}
