package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typecheckSrc parses and type-checks one import-free source string and
// returns the requested function plus the types.Info the CFG layer needs.
func typecheckSrc(t *testing.T, src, fnName string) (*ast.FuncDecl, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Types:      map[ast.Expr]types.TypeAndValue{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{}
	if _, err := conf.Check("t", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fnName {
			return fd, info
		}
	}
	t.Fatalf("function %s not found", fnName)
	return nil, nil
}

// markerCall finds the call to the named marker function inside fd.
func markerCall(t *testing.T, fd *ast.FuncDecl, name string) *ast.CallExpr {
	t.Helper()
	var out *ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
				out = call
			}
		}
		return true
	})
	if out == nil {
		t.Fatalf("marker %s not found", name)
	}
	return out
}

// locateMarker returns the block/index of a marker call.
func locateMarker(t *testing.T, fi *FuncInfo, fd *ast.FuncDecl, name string) (*Block, int) {
	t.Helper()
	b, i, ok := fi.Locate(markerCall(t, fd, name))
	if !ok {
		t.Fatalf("marker %s not located in any block", name)
	}
	return b, i
}

const cfgSrc = `package t

func m0()   {}
func m1()   {}
func m2()   {}
func m3()   {}
func m4()   {}
func cond() bool { return false }

func ifelse(b bool) {
	m0()
	if b {
		m1()
	} else {
		m2()
	}
	m3()
}

func earlyReturn(b bool) {
	m0()
	if b {
		m1()
		return
	}
	m2()
}

func loop(n int) {
	m0()
	for i := 0; i < n; i++ {
		if i == 3 {
			m1()
			break
		}
		m2()
	}
	m3()
}

func deadAfterPanic(b bool) {
	m0()
	if b {
		panic("boom")
	}
	m1()
}

func deadCode() {
	m0()
	return
	m1()
}

func switchFall(n int) {
	switch n {
	case 1:
		m1()
		fallthrough
	case 2:
		m2()
	default:
		m3()
	}
	m4()
}

func gotoLabel(n int) {
	m0()
	if n > 0 {
		goto done
	}
	m1()
done:
	m2()
}

func rangeLoop(xs []int) {
	m0()
	for _, x := range xs {
		if x < 0 {
			return
		}
		m1()
	}
	m2()
}
`

func TestCFGIfElseDominance(t *testing.T) {
	fd, info := typecheckSrc(t, cfgSrc, "ifelse")
	fi := NewFuncInfo(fd.Body, info)
	b0, i0 := locateMarker(t, fi, fd, "m0")
	b1, i1 := locateMarker(t, fi, fd, "m1")
	b2, _ := locateMarker(t, fi, fd, "m2")
	b3, i3 := locateMarker(t, fi, fd, "m3")
	if !fi.StmtDominates(b0, i0, b1, i1) {
		t.Error("m0 should dominate m1")
	}
	if !fi.StmtDominates(b0, i0, b3, i3) {
		t.Error("m0 should dominate m3")
	}
	if fi.StmtDominates(b1, i1, b3, i3) {
		t.Error("m1 (then branch) must not dominate m3 (join)")
	}
	if b1 == b2 {
		t.Error("then/else markers must be in different blocks")
	}
	if !fi.PostDominates(b3, b1) || !fi.PostDominates(b3, b2) {
		t.Error("join must postdominate both branches")
	}
	if fi.PostDominates(b1, b0) {
		t.Error("then branch must not postdominate the entry")
	}
}

func TestCFGEarlyReturn(t *testing.T) {
	fd, info := typecheckSrc(t, cfgSrc, "earlyReturn")
	fi := NewFuncInfo(fd.Body, info)
	b1, _ := locateMarker(t, fi, fd, "m1")
	b2, i2 := locateMarker(t, fi, fd, "m2")
	b0, i0 := locateMarker(t, fi, fd, "m0")
	if fi.StmtDominates(b1, 0, b2, i2) {
		t.Error("returned branch must not dominate the fallthrough path")
	}
	if !fi.StmtDominates(b0, i0, b2, i2) {
		t.Error("m0 dominates everything")
	}
	// m2 does not postdominate m1: m1's path returns first.
	if fi.PostDominates(b2, b1) {
		t.Error("m2 must not postdominate the early-returning branch")
	}
}

func TestCFGLoop(t *testing.T) {
	fd, info := typecheckSrc(t, cfgSrc, "loop")
	fi := NewFuncInfo(fd.Body, info)
	b1, _ := locateMarker(t, fi, fd, "m1") // break branch
	b2, _ := locateMarker(t, fi, fd, "m2") // loop body tail
	b3, _ := locateMarker(t, fi, fd, "m3") // after loop
	if !fi.Reachable(b1) || !fi.Reachable(b2) || !fi.Reachable(b3) {
		t.Fatal("all markers must be reachable")
	}
	if fi.Dominates(b2, b3) {
		t.Error("loop body tail must not dominate the code after the loop (break skips it)")
	}
	if fi.Dominates(b1, b3) {
		t.Error("break branch must not dominate the code after the loop (cond-false exits too)")
	}
	if !fi.PostDominates(b3, b2) {
		t.Error("code after the loop must postdominate the body tail")
	}
}

func TestCFGTerminalAndDeadCode(t *testing.T) {
	fd, info := typecheckSrc(t, cfgSrc, "deadAfterPanic")
	fi := NewFuncInfo(fd.Body, info)
	b1, _ := locateMarker(t, fi, fd, "m1")
	if !fi.Reachable(b1) {
		t.Error("m1 is reachable via the non-panicking path")
	}
	// A panic must feed the exit block, so m1 does NOT postdominate m0.
	b0, _ := locateMarker(t, fi, fd, "m0")
	if fi.PostDominates(b1, b0) {
		t.Error("m1 must not postdominate m0: the panic path bypasses it")
	}

	fd, info = typecheckSrc(t, cfgSrc, "deadCode")
	fi = NewFuncInfo(fd.Body, info)
	b1, _, ok := fi.Locate(markerCall(t, fd, "m1"))
	if !ok {
		t.Fatal("dead statement should still be located")
	}
	if fi.Reachable(b1) {
		t.Error("statement after return must be unreachable")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	fd, info := typecheckSrc(t, cfgSrc, "switchFall")
	fi := NewFuncInfo(fd.Body, info)
	b1, _ := locateMarker(t, fi, fd, "m1")
	b2, _ := locateMarker(t, fi, fd, "m2")
	b4, _ := locateMarker(t, fi, fd, "m4")
	// fallthrough: case-1 body must have an edge into case-2's body block.
	found := false
	for _, s := range b1.Succs {
		if s == b2 {
			found = true
		}
	}
	if !found {
		t.Error("fallthrough edge from case 1 to case 2 missing")
	}
	if !fi.PostDominates(b4, b1) {
		t.Error("statement after switch must postdominate every case")
	}
	if fi.Dominates(b2, b4) {
		t.Error("case 2 must not dominate the statement after the switch")
	}
}

func TestCFGGoto(t *testing.T) {
	fd, info := typecheckSrc(t, cfgSrc, "gotoLabel")
	fi := NewFuncInfo(fd.Body, info)
	b1, _ := locateMarker(t, fi, fd, "m1")
	b2, _ := locateMarker(t, fi, fd, "m2")
	if !fi.Reachable(b2) {
		t.Fatal("label target must be reachable")
	}
	if fi.Dominates(b1, b2) {
		t.Error("m1 must not dominate the label target: the goto path skips it")
	}
	if !fi.PostDominates(b2, b1) {
		t.Error("label target must postdominate m1")
	}
}

func TestCFGRangeLoop(t *testing.T) {
	fd, info := typecheckSrc(t, cfgSrc, "rangeLoop")
	fi := NewFuncInfo(fd.Body, info)
	b1, _ := locateMarker(t, fi, fd, "m1")
	b2, _ := locateMarker(t, fi, fd, "m2")
	if !fi.Reachable(b1) || !fi.Reachable(b2) {
		t.Fatal("loop body and post-loop code must be reachable")
	}
	if fi.Dominates(b1, b2) {
		t.Error("loop body must not dominate post-loop code (zero iterations)")
	}
	if fi.PostDominates(b1, b2) {
		t.Error("loop body must not postdominate post-loop code")
	}
}
