package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestCopyLocks(t *testing.T) {
	linttest.Run(t, "copylocks", lint.CopyLocks)
}

func TestLostCancel(t *testing.T) {
	linttest.Run(t, "lostcancel", lint.LostCancel)
}

func TestNilnessLite(t *testing.T) {
	linttest.Run(t, "nilness", lint.NilnessLite)
}
