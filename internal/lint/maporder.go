package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `range` loops over maps whose bodies produce order-
// dependent output: appending to a slice declared outside the loop, string-
// concatenating into an outer variable, writing formatted output to a
// stream, or calling an ordered-sink method (AddRow*/Append*/Write*/Print*/
// Emit*) on a builder declared outside the loop. Go randomizes map
// iteration order per run, so any of these makes golden figures and
// replication merges flap. Order-independent uses — a
// write into another map keyed by the loop key, a counter increment, a
// min/max fold — pass untouched.
//
// The fix is the sorted-keys idiom used throughout the tree:
//
//	keys := make([]K, 0, len(m))
//	for k := range m { keys = append(keys, k) }   // collecting keys is fine
//	sort/slices.Sort(keys)
//	for _, k := range keys { out = append(out, f(m[k])) }
//
// An append is exempt when the appended-to value is visibly re-sorted later
// in the same function — a call after the loop to anything in package sort
// or slices, or to a helper whose name contains "sort", taking the same
// expression — because the sort destroys whatever order the map produced.
// The exemption trusts the comparator to be a total order; a sort.Slice
// whose less function has no tie-break leaves equal elements in map order
// and is still nondeterministic, which is the reviewer's to catch.
//
// Float accumulation in map ranges is FloatAccum's beat, not this one's.
//
// Runtime backstop: the golden characterization figures and
// TestParallelWorkerEquivalence, which catch a nondeterministic order only
// when a run happens to draw an unlucky permutation.
var MapOrder = &Analyzer{
	Name:    "maporder",
	Doc:     "flag order-dependent writes (append/concat/stream output) inside range-over-map; use the sorted-keys idiom",
	Default: true,
	Run:     runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		// Enumerate function bodies so each map range knows its enclosing
		// function — the scope the sorted-later exemption scans.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			inFunction(body, func(rng *ast.RangeStmt) {
				if isMapRange(pass, rng) {
					checkMapRangeBody(pass, rng, body)
				}
			})
			return true
		})
	}
	return nil
}

// inFunction visits every range statement directly inside body, not
// descending into nested function literals (they are visited as functions
// of their own).
func inFunction(body *ast.BlockStmt, visit func(*ast.RangeStmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			visit(st)
		}
		return true
	})
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRangeBody scans one map-range body for order-dependent sinks.
// funcBody is the enclosing function, scanned for the sorted-later
// exemption.
func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt, funcBody *ast.BlockStmt) {
	keyObj := rangeVarObj(pass, rng.Key)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			return false // its own function; visited separately
		case *ast.RangeStmt:
			// Nested ranges are visited on their own by runMapOrder; their
			// bodies' sinks belong to them (still order-dependent through
			// the outer loop, but one report per site is enough).
			if st != rng && isMapRange(pass, st) {
				return false
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rng, st, keyObj, funcBody)
		case *ast.CallExpr:
			if name, ok := streamWriteCall(pass, st); ok {
				pass.Reportf(st.Pos(),
					"%s inside range over map emits output in nondeterministic order; range over sorted keys instead", name)
			} else if name, recv, ok := orderedSinkMethod(pass, st, rng, keyObj); ok {
				pass.Reportf(st.Pos(),
					"%s on %s inside range over map appends rows/output in nondeterministic order; range over sorted keys instead", name, recv)
			}
		}
		return true
	})
}

func isMapRange(pass *Pass, rng *ast.RangeStmt) bool {
	t := pass.Info.TypeOf(rng.X)
	return t != nil && isMap(t)
}

// checkMapRangeAssign flags `s = append(s, …)` into an outer slice and
// `s += expr` string concatenation into an outer variable.
func checkMapRangeAssign(pass *Pass, rng *ast.RangeStmt, st *ast.AssignStmt, keyObj types.Object, funcBody *ast.BlockStmt) {
	switch st.Tok {
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range st.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) || i >= len(st.Lhs) {
				continue
			}
			lhs := st.Lhs[i]
			if indexedByKey(pass, lhs, keyObj) {
				continue // one cell per key; visit order cannot matter
			}
			if target, ok := lhs.(*ast.Ident); ok {
				obj := pass.Info.ObjectOf(target)
				if obj == nil || !declaredOutside(pass, obj, rng) {
					continue
				}
			}
			if sortedAfter(pass, funcBody, rng, lhs) {
				continue // collect-then-sort idiom; the sort erases map order
			}
			pass.Reportf(st.Pos(),
				"append to %s inside range over map builds a nondeterministically ordered slice; sort the result or range over sorted keys",
				exprString(pass, lhs))
		}
	case token.ADD_ASSIGN:
		target, ok := st.Lhs[0].(*ast.Ident)
		if !ok {
			return
		}
		obj := pass.Info.ObjectOf(target)
		if obj == nil || !declaredOutside(pass, obj, rng) {
			return
		}
		if t := pass.Info.TypeOf(st.Lhs[0]); t != nil && isString(t) {
			pass.Reportf(st.Pos(),
				"string concatenation into %s inside range over map is order-dependent; range over sorted keys instead",
				target.Name)
		}
	}
}

// orderedSinkNamePrefixes are method-name prefixes that append to an ordered
// sink: table builders (AddRow/AddRowF — the shape behind a Fig. 8b render
// bug where rows flapped per process), buffer and stream writers, printers.
var orderedSinkNamePrefixes = []string{"AddRow", "Append", "Write", "Print", "Emit"}

// orderedSinkMethod reports method calls inside a map range that append a
// row, write bytes, or print through a receiver declared outside the loop —
// each call lands in sink order, which is the map's randomized visit order.
// A receiver created inside the loop (a fresh builder per iteration) or
// indexed by the loop key is exempt.
func orderedSinkMethod(pass *Pass, call *ast.CallExpr, rng *ast.RangeStmt, keyObj types.Object) (name, recv string, flagged bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || pass.Info.Selections[sel] == nil {
		return "", "", false // not a method call (e.g. a package function)
	}
	prefixed := false
	for _, p := range orderedSinkNamePrefixes {
		if strings.HasPrefix(sel.Sel.Name, p) {
			prefixed = true
			break
		}
	}
	if !prefixed || indexedByKey(pass, sel.X, keyObj) {
		return "", "", false
	}
	base := leftmostIdent(sel.X)
	if base == nil {
		return "", "", false
	}
	obj := pass.Info.ObjectOf(base)
	if obj == nil || !declaredOutside(pass, obj, rng) {
		return "", "", false
	}
	return sel.Sel.Name, exprString(pass, sel.X), true
}

// sortedAfter reports whether target is sorted after the range loop within
// the enclosing function: a call positioned past the loop's end, to a
// function in package sort or slices or to one whose name contains "sort"
// (local helpers like report.sortStrings), taking the same expression.
func sortedAfter(pass *Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt, target ast.Expr) bool {
	want := exprString(pass, target)
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if exprString(pass, arg) == want {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortCall recognizes sort-ish callees: package sort, package slices, or
// any function whose name contains "sort" case-insensitively.
func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		if isPkgFunc(pass, fun.Sel, "sort",
			"Sort", "Stable", "Slice", "SliceStable", "Ints", "Strings", "Float64s") ||
			isPkgFunc(pass, fun.Sel, "slices", "Sort", "SortFunc", "SortStableFunc") {
			return true
		}
		name = fun.Sel.Name
	default:
		return false
	}
	return strings.Contains(strings.ToLower(name), "sort")
}

// rangeVarObj returns the object bound by a range clause variable, or nil.
func rangeVarObj(pass *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.Info.ObjectOf(id)
}

// indexedByKey reports whether lhs is an index expression whose index is the
// range key (out[k] = … is deterministic: the written map/slice cell depends
// only on the key, not on visit order).
func indexedByKey(pass *Pass, lhs ast.Expr, keyObj types.Object) bool {
	ix, ok := lhs.(*ast.IndexExpr)
	if !ok || keyObj == nil {
		return false
	}
	id, ok := ix.Index.(*ast.Ident)
	return ok && pass.Info.ObjectOf(id) == keyObj
}

// declaredOutside reports whether obj's declaration lies outside the range
// statement's extent — i.e. the loop mutates state that survives it.
func declaredOutside(pass *Pass, obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// streamWriteCall reports fmt.Fprint/Fprintf/Fprintln and io.WriteString
// calls — formatted output is ordered by construction.
func streamWriteCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if isPkgFunc(pass, sel.Sel, "fmt", "Fprint", "Fprintf", "Fprintln") {
		return "fmt." + sel.Sel.Name, true
	}
	if isPkgFunc(pass, sel.Sel, "io", "WriteString") {
		return "io.WriteString", true
	}
	return "", false
}

// leftmostIdent returns the base identifier of a selector/index/deref
// chain, or nil (e.g. for a call result).
func leftmostIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// exprString renders a short source form of e for diagnostics.
func exprString(pass *Pass, e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(pass, x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(pass, x.X) + "[…]"
	default:
		return "expression"
	}
}
