package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestSeedFlow(t *testing.T) {
	linttest.Run(t, "seedflow", lint.SeedFlow)
}

// TestSeedFlowDistExempt loads a fixture whose import path ends in
// /internal/dist: the substrate package may construct raw generators, so the
// fixture has no want-comments and must stay silent.
func TestSeedFlowDistExempt(t *testing.T) {
	linttest.Run(t, "x/internal/dist", lint.SeedFlow)
}
