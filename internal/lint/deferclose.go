package lint

// deferclose flags `defer f.Close()` (and `defer f.Sync()`) on *os.File
// variables whose reaching definitions include a write-mode open
// (os.Create, or os.OpenFile with a writing flag): the deferred call
// discards the error, and for buffered writes Close is where ENOSPC and
// quota errors surface — exactly the failure a durability-focused repo
// cannot drop. Read-only opens are exempt (Close errors there are
// uninteresting), as are files whose open mode cannot be determined
// without whole-program analysis.
//
// This is the reaching-definitions client of the dataflow layer: the
// defer is reported only if a write-open definition actually reaches it,
// so reassignment (f = os.Open(...) on another path) is handled by the
// solver rather than by syntax.

import (
	"go/ast"
	"go/constant"
	"go/types"
)

var DeferClose = &Analyzer{
	Name:    "deferclose",
	Doc:     "deferred Close/Sync on a write-opened *os.File discards the error",
	Default: true,
	Run:     runDeferClose,
}

func runDeferClose(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					deferCloseFunc(pass, fn.Recv, fn.Type, fn.Body)
				}
			case *ast.FuncLit:
				deferCloseFunc(pass, nil, fn.Type, fn.Body)
			}
			return true
		})
	}
	return nil
}

func deferCloseFunc(pass *Pass, recv *ast.FieldList, ftype *ast.FuncType, body *ast.BlockStmt) {
	var fi *FuncInfo
	var rd *ReachingDefs
	for _, d := range collectDefers(body) {
		sel, ok := d.Call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Close" && sel.Sel.Name != "Sync") || len(d.Call.Args) != 0 {
			continue
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.Info.Uses[id]
		if obj == nil || !isOSFilePtr(obj.Type()) {
			continue
		}
		if fi == nil {
			fi = NewFuncInfo(body, pass.Info)
			rd = BuildReachingDefs(fi, recv, ftype)
		}
		for _, def := range rd.At(d, obj) {
			if def.Call != nil && isWriteOpen(pass, def.Call) {
				pass.Reportf(d.Pos(), "deferred %s.%s discards the error from a file opened for writing: close explicitly and check the error", id.Name, sel.Sel.Name)
				break
			}
		}
	}
}

// collectDefers returns the defer statements directly in body, skipping
// nested function literals (which get their own pass).
func collectDefers(body *ast.BlockStmt) []*ast.DeferStmt {
	var out []*ast.DeferStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			out = append(out, d)
		}
		return true
	})
	return out
}

func isOSFilePtr(t types.Type) bool {
	named, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File"
}

// isWriteOpen reports whether call opens a file for writing: os.Create,
// or os.OpenFile whose flag argument is a constant with O_WRONLY/O_RDWR
// set (the POSIX access-mode bits, identical on every Go port).
func isWriteOpen(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return false
	}
	switch fn.Name() {
	case "Create":
		return true
	case "OpenFile":
		if len(call.Args) < 2 {
			return false
		}
		tv, ok := pass.Info.Types[call.Args[1]]
		if !ok || tv.Value == nil {
			return false
		}
		flags, ok := constant.Int64Val(tv.Value)
		if !ok {
			return false
		}
		const oWronly, oRdwr = 1, 2 // syscall.O_WRONLY / O_RDWR on all ports
		return flags&(oWronly|oRdwr) != 0
	}
	return false
}
