package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrSink flags discarded error returns from the trace codec and the report
// renderers. Both packages funnel every figure and dataset through error-
// returning calls precisely so that a non-finite value or a short write
// fails loudly (the codecs reject NaN/±Inf identically on the CSV and JSON
// paths); calling WriteCSV or Table.Render as a bare statement throws that
// guarantee away and lets a truncated golden or a silently skipped figure
// masquerade as success. Reported shapes: a call used as an expression
// statement and a `defer`red call, when the callee belongs to
// internal/trace or internal/report and its final result is an error.
// Assigning the error to `_` is also reported — if the error is genuinely
// unactionable, say why with a //lint:allow instead.
//
// Runtime backstop: the codec fuzz targets and golden-figure tests, which
// can only notice a swallowed error when it corrupts bytes they happen to
// compare.
var ErrSink = &Analyzer{
	Name:    "errsink",
	Doc:     "forbid discarding errors from internal/trace codec and internal/report render calls",
	Default: true,
	Run:     runErrSink,
}

// errSinkPackages are the import-path suffixes whose error returns must be
// consumed.
var errSinkPackages = []string{"internal/trace", "internal/report"}

func errSinkTarget(path string) bool {
	for _, p := range errSinkPackages {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

func runErrSink(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					reportIfSunkError(pass, call, "discarded")
				}
			case *ast.DeferStmt:
				reportIfSunkError(pass, st.Call, "deferred and discarded")
			case *ast.GoStmt:
				reportIfSunkError(pass, st.Call, "discarded by go statement")
			case *ast.AssignStmt:
				reportBlankedErrors(pass, st)
			}
			return true
		})
	}
	return nil
}

// reportIfSunkError reports call if its callee is an error-returning
// function of a guarded package.
func reportIfSunkError(pass *Pass, call *ast.CallExpr, how string) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || !errSinkTarget(fn.Pkg().Path()) {
		return
	}
	if !lastResultIsError(fn) {
		return
	}
	pass.Reportf(call.Pos(), "%s error from %s.%s; handle it or justify with //lint:allow errsink",
		how, fn.Pkg().Name(), fn.Name())
}

// reportBlankedErrors reports `_ = call` and `v, _ := call` shapes that drop
// a guarded package's error result into the blank identifier.
func reportBlankedErrors(pass *Pass, st *ast.AssignStmt) {
	if len(st.Rhs) != 1 {
		return
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || !errSinkTarget(fn.Pkg().Path()) || !lastResultIsError(fn) {
		return
	}
	last, ok := st.Lhs[len(st.Lhs)-1].(*ast.Ident)
	if !ok || last.Name != "_" {
		return
	}
	pass.Reportf(st.Pos(), "error from %s.%s assigned to _; handle it or justify with //lint:allow errsink",
		fn.Pkg().Name(), fn.Name())
}

// calleeFunc resolves a call's static callee, unwrapping selector and
// parenthesized forms; nil for dynamic calls and builtins.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// lastResultIsError reports whether fn's final result is the error type.
func lastResultIsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}
