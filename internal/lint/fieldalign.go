package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FieldAlign reports structs whose declared field order wastes padding
// bytes under the gc/amd64 layout rules, together with the byte counts and
// a size-ordered suggestion. It is the project's offline stand-in for
// `fieldalignment` from x/tools.
//
// It is NOT in the default set: field order is an API in two ways this
// repository cares about — encoding/json emits object keys in declaration
// order, so reordering a marshalled struct (trace.JobRecord, the jsonDataset
// wire form, benchjson rows) changes codec output bytes; and several structs
// order fields for readability grouped by meaning rather than size. Run it
// deliberately with
//
//	go run ./cmd/simlint -only fieldalign ./...
//
// and apply only the reorderings whose structs never cross a wire. The
// hot-path reorderings applied in this tree are recorded in EXPERIMENTS.md.
var FieldAlign = &Analyzer{
	Name:    "fieldalign",
	Doc:     "report struct layouts that waste padding (opt-in; field order can be wire-visible)",
	Default: false,
	Run:     runFieldAlign,
}

func runFieldAlign(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			if _, ok := ts.Type.(*ast.StructType); !ok {
				return true
			}
			t, ok := pass.Info.TypeOf(ts.Type).(*types.Struct)
			if !ok || t.NumFields() < 2 {
				return true
			}
			cur := pass.Sizes.Sizeof(t)
			best, order := optimalStructSize(pass.Sizes, t)
			if best < cur {
				pass.Reportf(ts.Pos(), "struct %s is %d bytes; reordering to (%s) saves %d bytes per value",
					ts.Name.Name, cur, strings.Join(order, ", "), cur-best)
			}
			return true
		})
	}
	return nil
}

// optimalStructSize computes the size of the struct with fields sorted by
// decreasing alignment then decreasing size — the greedy order the gc
// layout packs without internal padding — and returns it with the field
// order that achieves it. Stable with respect to declaration order among
// ties, so the suggestion disturbs the source as little as possible.
func optimalStructSize(sizes types.Sizes, t *types.Struct) (int64, []string) {
	n := t.NumFields()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	key := func(i int) (align, size int64) {
		ft := t.Field(i).Type()
		return sizes.Alignof(ft), sizes.Sizeof(ft)
	}
	// Insertion sort keeps it stable without pulling in sort.SliceStable's
	// reflection for a hot loop that runs on tiny inputs.
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			aj, sj := key(idx[j])
			ak, sk := key(idx[j-1])
			if aj > ak || (aj == ak && sj > sk) {
				idx[j], idx[j-1] = idx[j-1], idx[j]
			} else {
				break
			}
		}
	}
	fields := make([]*types.Var, n)
	order := make([]string, n)
	for i, k := range idx {
		f := t.Field(k)
		fields[i] = types.NewField(token.NoPos, f.Pkg(), f.Name(), f.Type(), f.Embedded())
		order[i] = f.Name()
	}
	return sizes.Sizeof(types.NewStruct(fields, nil)), order
}
