package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestErrSink runs against a fixture importing stand-in repro/internal/trace
// and repro/internal/report packages (resolved from testdata/src ahead of the
// real module), exercising the suffix-based guarded-package match.
func TestErrSink(t *testing.T) {
	linttest.Run(t, "errsink", lint.ErrSink)
}
