package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestDeferClose(t *testing.T) {
	linttest.Run(t, "deferclose", lint.DeferClose)
}
