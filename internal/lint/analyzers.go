package lint

import (
	"fmt"
	"strings"
)

// All returns every registered analyzer in stable order: the six
// syntactic project invariant checks first, then the CFG/dataflow
// analyzers (PR 10), then the vet-family passes, then the opt-in
// informational ones.
func All() []*Analyzer {
	return []*Analyzer{
		NoWallClock,
		SeedFlow,
		MapOrder,
		FloatAccum,
		ErrSink,
		SpecMirror,
		LockGuard,
		CommitOrder,
		HTTPTerm,
		DeferClose,
		CopyLocks,
		LostCancel,
		NilnessLite,
		FieldAlign,
	}
}

// KnownNames returns the name set of every registered analyzer, for the
// allow-comment auditor.
func KnownNames() map[string]bool {
	names := make(map[string]bool)
	for _, a := range All() {
		names[a.Name] = true
	}
	return names
}

// Select filters the registry by the -only / -skip flag values (comma-
// separated analyzer names; empty means no filter). With no -only filter,
// the Default analyzers run. Unknown names are an error, reported in the
// order given — a typo must not silently select nothing.
func Select(only, skip string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	parse := func(list string) (map[string]bool, error) {
		set := map[string]bool{}
		if list == "" {
			return set, nil
		}
		for _, n := range strings.Split(list, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if byName[n] == nil {
				return nil, fmt.Errorf("unknown analyzer %q (run with -list to see the registry)", n)
			}
			set[n] = true
		}
		return set, nil
	}
	want, err := parse(only)
	if err != nil {
		return nil, err
	}
	drop, err := parse(skip)
	if err != nil {
		return nil, err
	}
	var selected []*Analyzer
	for _, a := range All() {
		switch {
		case drop[a.Name]:
		case len(want) > 0:
			if want[a.Name] {
				selected = append(selected, a)
			}
		case a.Default:
			selected = append(selected, a)
		}
	}
	return selected, nil
}
