package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Path  string // import path
	Dir   string
	Files []*ast.File // non-test files, type-checked
	// TestFiles are parsed (with comments) but not type-checked; see
	// Pass.TestFiles for why that is sufficient.
	TestFiles []*ast.File
	Types     *types.Package
	Info      *types.Info
	Sizes     types.Sizes
}

// Loader parses and type-checks packages without the go/packages machinery.
// Standard-library imports are resolved from $GOROOT source via the
// compiler-independent "source" importer; module-internal imports are mapped
// to directories by Resolve. Everything is cached, so a whole-tree lint run
// type-checks each package exactly once.
type Loader struct {
	Fset *token.FileSet
	// Resolve maps an import path to the directory holding its sources.
	// Returning ok=false defers the path to the standard-library importer.
	Resolve func(path string) (dir string, ok bool)

	std      types.ImporterFrom
	pkgs     map[string]*Package
	checking map[string]bool
	sizes    types.Sizes
}

// NewLoader returns a loader resolving the single module modPath rooted at
// modRoot — the shape the simlint driver and the analyzer unit tests use.
func NewLoader(modRoot, modPath string) *Loader {
	return newLoader(func(path string) (string, bool) {
		if path == modPath {
			return modRoot, true
		}
		if rel, ok := strings.CutPrefix(path, modPath+"/"); ok {
			return filepath.Join(modRoot, filepath.FromSlash(rel)), true
		}
		return "", false
	})
}

func newLoader(resolve func(string) (string, bool)) *Loader {
	fset := token.NewFileSet()
	l := &Loader{
		Fset:     fset,
		Resolve:  resolve,
		pkgs:     make(map[string]*Package),
		checking: make(map[string]bool),
		// The layout model the gc compiler uses on the platforms the
		// benchmarks run on; fieldalign's byte counts assume it.
		sizes: types.SizesFor("gc", "amd64"),
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l
}

// Import implements types.Importer so the loader can hand itself to
// types.Config: module-internal dependencies of the package under analysis
// are loaded (and analyzed later from cache) rather than stubbed.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	if _, ok := l.Resolve(path); !ok {
		return l.std.Import(path)
	}
	p, err := l.Load(path)
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}

// Load parses and type-checks the package at the given import path,
// returning the cached result on repeat calls.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	dir, ok := l.Resolve(path)
	if !ok {
		return nil, fmt.Errorf("lint: cannot resolve %q to a directory", path)
	}
	srcNames, testNames, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(srcNames) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	parse := func(names []string) ([]*ast.File, error) {
		files := make([]*ast.File, 0, len(names))
		for _, name := range names {
			f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		return files, nil
	}
	files, err := parse(srcNames)
	if err != nil {
		return nil, err
	}
	testFiles, err := parse(testNames)
	if err != nil {
		return nil, err
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l, Sizes: l.sizes}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{
		Fset:      l.Fset,
		Path:      path,
		Dir:       dir,
		Files:     files,
		TestFiles: testFiles,
		Types:     tpkg,
		Info:      info,
		Sizes:     l.sizes,
	}
	l.pkgs[path] = p
	return p, nil
}

// goFileNames splits a directory's Go files into sources and tests, sorted
// so parse order (and therefore diagnostic order) is deterministic.
func goFileNames(dir string) (src, test []string, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") {
			test = append(test, name)
		} else {
			src = append(src, name)
		}
	}
	sort.Strings(src)
	sort.Strings(test)
	return src, test, nil
}

// ModulePackages walks the module rooted at modRoot and returns the import
// paths of every package directory, skipping testdata trees and hidden
// directories. This is the "./..." of the simlint driver.
func ModulePackages(modRoot, modPath string) ([]string, error) {
	var paths []string
	err := filepath.WalkDir(modRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != modRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		src, _, err := goFileNames(p)
		if err != nil {
			return err
		}
		if len(src) == 0 {
			return nil
		}
		rel, err := filepath.Rel(modRoot, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, modPath)
		} else {
			paths = append(paths, modPath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}
