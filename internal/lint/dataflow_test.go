package lint

import (
	"go/ast"
	"go/types"
	"testing"
)

const flowSrc = `package t

func open1() int  { return 1 }
func open2() int  { return 2 }
func use(x int)   {}
func m0()         {}

func branchy(c bool) {
	f := open1()
	if c {
		f = open2()
	}
	use(f)
}

func shadowed(c bool) {
	f := open1()
	f = open2()
	use(f)
}

func looped(n int) {
	f := open1()
	for i := 0; i < n; i++ {
		use(f)
		f = open2()
	}
	m0()
}

func fromParam(f int) {
	use(f)
}
`

// objOf returns the types.Object of the variable named name inside fd.
func objOf(t *testing.T, info *types.Info, fd *ast.FuncDecl, name string) types.Object {
	t.Helper()
	var obj types.Object
	ast.Inspect(fd, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Name != name {
			return true
		}
		if o := info.Defs[id]; o != nil {
			obj = o
		}
		return true
	})
	if obj == nil {
		t.Fatalf("object %s not found", name)
	}
	return obj
}

// defCallNames maps the reaching defs to the names of their defining
// calls ("" for non-call defs such as parameters).
func defCallNames(defs []*Def) map[string]int {
	out := map[string]int{}
	for _, d := range defs {
		name := ""
		if d.Call != nil {
			if id, ok := d.Call.Fun.(*ast.Ident); ok {
				name = id.Name
			}
		}
		out[name]++
	}
	return out
}

func reachingAtMarker(t *testing.T, src, fn, marker, obj string) map[string]int {
	t.Helper()
	fd, info := typecheckSrc(t, src, fn)
	fi := NewFuncInfo(fd.Body, info)
	rd := BuildReachingDefs(fi, fd.Recv, fd.Type)
	use := markerCall(t, fd, marker)
	return defCallNames(rd.At(use, objOf(t, info, fd, obj)))
}

func TestReachingDefsBranch(t *testing.T) {
	got := reachingAtMarker(t, flowSrc, "branchy", "use", "f")
	if got["open1"] != 1 || got["open2"] != 1 {
		t.Errorf("both branch definitions should reach the use, got %v", got)
	}
}

func TestReachingDefsShadowed(t *testing.T) {
	got := reachingAtMarker(t, flowSrc, "shadowed", "use", "f")
	if got["open1"] != 0 || got["open2"] != 1 {
		t.Errorf("unconditional reassignment must kill the first def, got %v", got)
	}
}

func TestReachingDefsLoop(t *testing.T) {
	// Inside the loop, both the pre-loop def and the previous iteration's
	// reassignment reach the use.
	got := reachingAtMarker(t, flowSrc, "looped", "use", "f")
	if got["open1"] != 1 || got["open2"] != 1 {
		t.Errorf("loop-carried definition should reach the use, got %v", got)
	}
}

func TestReachingDefsParam(t *testing.T) {
	fd, info := typecheckSrc(t, flowSrc, "fromParam")
	fi := NewFuncInfo(fd.Body, info)
	rd := BuildReachingDefs(fi, fd.Recv, fd.Type)
	use := markerCall(t, fd, "use")
	defs := rd.At(use, objOf(t, info, fd, "f"))
	if len(defs) != 1 || defs[0].Node != nil || defs[0].Call != nil {
		t.Errorf("expected exactly the parameter entry definition, got %v", defs)
	}
}

// TestSolveBackward exercises the backward direction of the generic
// solver with a trivial liveness-style problem: a fact generated at the
// exit-adjacent marker must propagate backwards through the loop.
func TestSolveBackward(t *testing.T) {
	fd, info := typecheckSrc(t, flowSrc, "looped")
	fi := NewFuncInfo(fd.Body, info)
	bUse, _ := locateMarker(t, fi, fd, "use")
	bAfter, _ := locateMarker(t, fi, fd, "m0")
	// Fact: "this block eventually reaches m0's block" — trivially true
	// for every reachable block in a function whose exit is m0's path.
	out := Solve(fi, FlowSpec[bool]{
		Forward:  false,
		Boundary: true,
		Top:      false,
		Meet:     func(a, b bool) bool { return a || b },
		Transfer: func(blk *Block, s bool) bool { return s || blk == bAfter },
		Equal:    func(a, b bool) bool { return a == b },
	})
	if !out[bUse.Index] {
		t.Error("backward fact failed to propagate from the post-loop block into the loop body")
	}
}
