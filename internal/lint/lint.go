// Package lint is simlint's analysis framework: a deliberately small,
// dependency-free mirror of the golang.org/x/tools/go/analysis API shape.
//
// The repository's determinism and correctness invariants — seeded RNG
// substreams only, no wall-clock reads inside the simulation, deterministic
// iteration and accumulation order, finiteness-validated codecs, audited
// naive/optimized spec pairs — are enforced at runtime by golden-figure and
// bit-identity tests. Those tests only fire after a regression has already
// been written. The analyzers in this package move the same rules to build
// time: `make lint` (and therefore `make check`) fails on the first commit
// that reads the wall clock from a simulation package or appends to a slice
// while ranging over a map.
//
// x/tools itself is not vendored (the build must work fully offline, and the
// module tree is dependency-free by policy), so the framework re-implements
// the three pieces it needs on the standard library alone: a package loader
// built on go/parser + go/types with a source-based importer (load.go), the
// Analyzer/Pass/Diagnostic triple (this file), and an analysistest-style
// fixture runner driven by `// want` comments (linttest). The API shapes are
// kept close enough to x/tools that migrating an analyzer to a real
// *analysis.Analyzer is mechanical should the dependency ever land.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check. It mirrors analysis.Analyzer: a Name used in
// -only/-skip flags and //lint:allow comments, a one-line Doc, and a Run
// function invoked once per loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, command-line filters and
	// allow-comments. Lower-case, no spaces.
	Name string
	// Doc is the one-line invariant statement shown by `simlint -list`.
	Doc string
	// Default reports whether the analyzer runs when no -only filter is
	// given. Informational analyzers (fieldalign) are opt-in.
	Default bool
	// Run performs the check, reporting findings through pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package, mirroring
// analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Path is the package import path ("repro/internal/trace"). Analyzers
	// that exempt packages (seedflow exempts internal/dist) key off it.
	Path string
	// Files are the package's non-test files, fully type-checked.
	Files []*ast.File
	// TestFiles are the package's _test.go files, parsed but not
	// type-checked. Only specmirror reads them (to verify that every naive
	// reference function is anchored by an equivalence test); name-based
	// inspection is sufficient for that.
	TestFiles []*ast.File
	Pkg       *types.Package
	Info      *types.Info
	// Sizes is the gc/amd64 layout model, used by fieldalign.
	Sizes types.Sizes

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Run executes the given analyzers over one loaded package and returns the
// surviving diagnostics: findings suppressed by a matching //lint:allow
// comment are dropped, and the allow-comments themselves are audited (an
// unknown analyzer name, a missing reason, or a comment that suppresses
// nothing is itself a diagnostic — stale suppressions rot fast otherwise).
// known names the allow auditor accepts beyond the analyzers actually run
// (so `simlint -only seedflow` does not mis-report every other allow
// comment as unknown) come from knownNames.
func Run(pkg *Package, analyzers []*Analyzer, knownNames map[string]bool) ([]Diagnostic, error) {
	var diags []Diagnostic
	executed := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		executed[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Path:      pkg.Path,
			Files:     pkg.Files,
			TestFiles: pkg.TestFiles,
			Pkg:       pkg.Types,
			Info:      pkg.Info,
			Sizes:     pkg.Sizes,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	diags = filterAllowed(pkg, diags, knownNames, executed)
	sortDiagnostics(pkg.Fset, diags)
	return diags, nil
}

// sortDiagnostics orders findings by file position, then analyzer name, so
// output is stable across runs and analyzer registration order.
func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
