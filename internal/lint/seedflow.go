package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SeedFlow keeps every random draw on the seeded SplitMix64 substream
// substrate (internal/dist). Two rules:
//
//  1. No top-level math/rand (or math/rand/v2) functions that draw from the
//     package-global source — rand.Intn, rand.Float64, rand.Perm, … — in
//     non-test code. The global source is shared mutable state: a draw from
//     one component perturbs every other component's stream, and its
//     sequence is not stable across Go releases.
//  2. No raw generator construction (rand.New, rand.NewSource, rand.NewPCG,
//     rand.NewChaCha8) outside internal/dist. All RNGs must derive from
//     dist.StreamSeed/dist.Stream substreams, which is what makes the
//     parallel replication engine bit-identical for any worker count:
//     replication i always draws from Stream(root, i) no matter which
//     worker runs it.
//
// Runtime backstop: the engine's worker-count equivalence tests and the
// fault-run bit-identity tests, which only fail after a stray generator has
// already skewed a merge.
var SeedFlow = &Analyzer{
	Name:    "seedflow",
	Doc:     "forbid global math/rand and raw rand.New outside internal/dist; RNGs derive from dist.StreamSeed",
	Default: true,
	Run:     runSeedFlow,
}

// seedflowExempt reports whether the package may construct raw generators:
// internal/dist is the substrate itself.
func seedflowExempt(path string) bool {
	return path == "internal/dist" || strings.HasSuffix(path, "/internal/dist")
}

func runSeedFlow(pass *Pass) error {
	exempt := seedflowExempt(pass.Path)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pass.Info.Selections[sel] != nil {
				// A method or field selection (r.Intn on a local *rand.Rand,
				// caught at its construction site), not a qualified
				// package-level identifier.
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			switch fn.Name() {
			case "New", "NewSource", "NewPCG", "NewChaCha8", "NewZipf":
				if !exempt {
					pass.Reportf(sel.Pos(),
						"raw %s.%s constructs a generator outside internal/dist; derive streams from dist.StreamSeed/dist.Stream so replication merges stay bit-identical",
						path, fn.Name())
				}
			default:
				pass.Reportf(sel.Pos(),
					"global %s.%s draws from the shared process-wide source; use a dist.RNG substream instead",
					path, fn.Name())
			}
			return true
		})
	}
	return nil
}
