package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestAllowSuppression proves //lint:allow silences exactly the named
// analyzer on the covered line and nothing else, and that unknown names and
// stale suppressions are reported (via the fixture's want comments).
func TestAllowSuppression(t *testing.T) {
	linttest.Run(t, "allowfix", lint.NoWallClock, lint.SeedFlow)
}

// TestAllowMalformed covers the audit diagnostics that land on the allow
// comment's own line, where a want comment cannot sit: anything written after
// the analyzer name would parse as the suppression reason. A malformed or
// reasonless allow must be reported AND must not suppress the finding it
// covers.
func TestAllowMalformed(t *testing.T) {
	pkg, err := linttest.NewLoader(t).Load("allowbad")
	if err != nil {
		t.Fatalf("loading allowbad: %v", err)
	}
	diags, err := lint.Run(pkg, []*lint.Analyzer{lint.NoWallClock}, lint.KnownNames())
	if err != nil {
		t.Fatalf("running nowallclock on allowbad: %v", err)
	}
	want := []string{
		"malformed suppression: want //lint:allow <analyzer> <reason>",
		"time.Now reads the wall clock",
		"//lint:allow nowallclock needs a reason",
		"time.Now reads the wall clock",
	}
	if len(diags) != len(want) {
		for _, d := range diags {
			t.Logf("got: %s: [%s] %s", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(want))
	}
	for i, w := range want {
		if !strings.Contains(diags[i].Message, w) {
			t.Errorf("diagnostic %d = %q, want it to contain %q", i, diags[i].Message, w)
		}
	}
}
