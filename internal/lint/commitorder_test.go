package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestCommitOrder runs against a fixture whose import path ends in
// internal/durable, exercising the suffix-based package scope the same
// way the errsink fixture does.
func TestCommitOrder(t *testing.T) {
	linttest.Run(t, "durablefix/internal/durable", lint.CommitOrder)
}

// TestCommitOrderOutOfScope proves the analyzer ignores packages outside
// internal/durable: the lockguard fixture mutates state freely and must
// stay silent under commitorder.
func TestCommitOrderOutOfScope(t *testing.T) {
	loader := linttest.NewLoader(t)
	pkg, err := loader.Load("lockguard")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := lint.Run(pkg, []*lint.Analyzer{lint.CommitOrder}, lint.KnownNames())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		if d.Analyzer == "commitorder" {
			t.Errorf("unexpected commitorder finding outside internal/durable: %s", d.Message)
		}
	}
}
