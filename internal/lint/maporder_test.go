package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestMapOrder(t *testing.T) {
	linttest.Run(t, "maporder", lint.MapOrder)
}
