package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestLockGuard(t *testing.T) {
	linttest.Run(t, "lockguard", lint.LockGuard)
}
