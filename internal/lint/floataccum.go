package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatAccum flags floating-point reductions whose accumulation order is
// nondeterministic. Float addition is not associative — (a+b)+c and a+(b+c)
// differ in the last ulp — so a sum folded in map-iteration order or in
// goroutine-completion order produces run-to-run different bits, which is
// exactly what the golden figures and the bit-identical replication merge
// forbid. Two shapes are reported:
//
//  1. A compound float accumulation (`sum += x`, `sum -= x`, `prod *= x`,
//     or `sum = sum + x`) into a variable declared outside a range-over-map
//     loop: the fold order is the map's randomized iteration order.
//  2. The same accumulation into a variable captured from an enclosing
//     function inside a `go`-launched function literal: the fold order is
//     goroutine completion order. A mutex makes this race-free but not
//     order-stable — the fix is to write per-worker partials into distinct
//     slots and fold them in index order, the pattern internal/engine and
//     internal/core/parallel.go use.
//  3. A `Merge` method call on an accumulator declared outside the same two
//     extents: moment merges (stats.Streaming, trace.SegSummary) re-
//     associate float sums, so folding them in map-iteration or goroutine-
//     completion order is the same ulp hazard in digest form. Segment
//     summaries must fold in segment-index order, as SegStore.Summary does.
//
// Runtime backstop: TestParallelWorkerEquivalence and the engine's
// worker-count bit-identity tests.
var FloatAccum = &Analyzer{
	Name:    "floataccum",
	Doc:     "flag float reductions ordered by map iteration or goroutine completion; fold fixed-order partials instead",
	Default: true,
	Run:     runFloatAccum,
}

func runFloatAccum(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.RangeStmt:
				if isMapRange(pass, st) {
					reportFloatAccums(pass, st.Body, st, rangeVarObj(pass, st.Key),
						"inside range over map folds in nondeterministic iteration order; range over sorted keys")
				}
			case *ast.GoStmt:
				if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
					reportFloatAccums(pass, lit.Body, lit, nil,
						"into a captured variable folds in goroutine-completion order; accumulate per-worker partials and merge in index order")
				}
			}
			return true
		})
	}
	return nil
}

// reportFloatAccums walks body and reports float compound accumulations into
// variables declared outside the given extent (a range loop or a func
// literal). A map/slice cell indexed by the loop key is exempt — each cell
// is then touched by exactly one iteration, so visit order cannot matter.
// Nested map-ranges and nested go-literals are left to their own visits.
func reportFloatAccums(pass *Pass, body *ast.BlockStmt, extent ast.Node, keyObj types.Object, why string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			reportOrderedMerge(pass, call, extent, keyObj, why)
			return true
		}
		st, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch st.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
		case token.ASSIGN:
			// sum = sum + x
			if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
				return true
			}
			bin, ok := st.Rhs[0].(*ast.BinaryExpr)
			if !ok || (bin.Op != token.ADD && bin.Op != token.SUB && bin.Op != token.MUL) {
				return true
			}
			if !sameObject(pass, st.Lhs[0], bin.X) && !sameObject(pass, st.Lhs[0], bin.Y) {
				return true
			}
		default:
			return true
		}
		lhs := st.Lhs[0]
		t := pass.Info.TypeOf(lhs)
		if t == nil || !isFloat(t) {
			return true
		}
		if indexedByKey(pass, lhs, keyObj) {
			return true
		}
		base := leftmostIdent(lhs)
		if base == nil {
			pass.Reportf(st.Pos(), "float accumulation into %s %s", exprString(pass, lhs), why)
			return true
		}
		obj := pass.Info.ObjectOf(base)
		if obj == nil {
			return true
		}
		if obj.Pos() >= extent.Pos() && obj.Pos() <= extent.End() {
			return true // local accumulator; order within one iteration/goroutine is fixed
		}
		pass.Reportf(st.Pos(), "float accumulation into %s %s", exprString(pass, lhs), why)
		return true
	})
}

// reportOrderedMerge flags `acc.Merge(…)` calls whose receiver is declared
// outside the extent: a mergeable digest folded in map-iteration or
// goroutine-completion order re-associates its float moments run to run. A
// receiver cell indexed by the loop key is exempt for the usual reason.
func reportOrderedMerge(pass *Pass, call *ast.CallExpr, extent ast.Node, keyObj types.Object, why string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Merge" || len(call.Args) == 0 {
		return
	}
	// Only methods: a package-level Merge function has no accumulating
	// receiver to order.
	if _, isPkg := pass.Info.ObjectOf(sel.Sel).(*types.Func); !isPkg {
		return
	}
	if pass.Info.Selections[sel] == nil {
		return // qualified identifier (pkg.Merge), not a method call
	}
	if indexedByKey(pass, sel.X, keyObj) {
		return
	}
	base := leftmostIdent(sel.X)
	if base == nil {
		return
	}
	obj := pass.Info.ObjectOf(base)
	if obj == nil || (obj.Pos() >= extent.Pos() && obj.Pos() <= extent.End()) {
		return
	}
	pass.Reportf(call.Pos(), "Merge into %s %s", exprString(pass, sel.X), why)
}

// sameObject reports whether two expressions are the same identifier object.
func sameObject(pass *Pass, a, b ast.Expr) bool {
	ia, ok1 := a.(*ast.Ident)
	ib, ok2 := b.(*ast.Ident)
	if !ok1 || !ok2 {
		return false
	}
	oa := pass.Info.ObjectOf(ia)
	return oa != nil && oa == pass.Info.ObjectOf(ib)
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
