package monitor

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// TestEpilogSinkStreamsIntoSegStore pins the streaming hand-off: every
// epilog stages its telemetry into the attached store, and appending the
// scheduler-side record completes the §II join with the same digest the
// central store holds.
func TestEpilogSinkStreamsIntoSegStore(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RetainSeries = true
	p := newTestPipeline(t, cfg)
	st := trace.NewSegStore(trace.SegConfig{DurationDays: 1})
	p.SetSink(st)

	prof := testProfile(t, 600, 0.5, 80)
	m := p.Prolog(31, 0, gpu.V100(), gpu.DefaultPowerModel(), []Source{prof, prof}, true)
	if err := p.Epilog(m); err != nil {
		t.Fatal(err)
	}
	if n := st.StagedJobs(); n != 1 {
		t.Fatalf("staged = %d, want 1", n)
	}

	// The scheduler-side record arrives bare; Append joins it.
	st.Append(trace.JobRecord{
		JobID: 31, User: 1, NumGPUs: 2, Cores: 8, MemGB: 16,
		SubmitSec: 0, WaitSec: 5, RunSec: 600, LimitSec: 3600,
	})
	if n := st.StagedJobs(); n != 0 {
		t.Fatalf("staged = %d after join, want 0", n)
	}
	v := st.Snapshot()
	if len(v.Cols.GPU) != 1 {
		t.Fatalf("GPU population = %d, want 1", len(v.Cols.GPU))
	}
	j := v.Cols.GPU[0]
	if len(j.PerGPU) != 2 {
		t.Fatalf("PerGPU = %d digests, want 2", len(j.PerGPU))
	}
	central := p.Summaries(31)
	for g := range central {
		if j.PerGPU[g] != central[g] {
			t.Errorf("GPU %d digest differs from central store", g)
		}
	}
	if j.GPU == (metrics.MetricSummaries{}) {
		t.Error("averaged GPU summary not recomputed at join")
	}
	if v.Cols.Series(31) == nil {
		t.Error("retained series not attached at join")
	}

	// Detaching stops the flow.
	p.SetSink(nil)
	m2 := p.Prolog(32, 0, gpu.V100(), gpu.DefaultPowerModel(), []Source{prof}, false)
	if err := p.Epilog(m2); err != nil {
		t.Fatal(err)
	}
	if n := st.StagedJobs(); n != 0 {
		t.Fatalf("staged = %d after detach, want 0", n)
	}
}
