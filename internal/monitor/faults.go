package monitor

import "repro/internal/dist"

// Fault models a misbehaving monitoring node — the paper's operations
// section reports that vendor logging tools "can interfere, creating load
// imbalance among the processes of the same job due to the potential
// malfunction of one of the nodes". A fault drops a share of samples and
// perturbs the rest.
type Fault struct {
	// DropRate is the probability an individual sample is lost.
	DropRate float64
	// JitterFactor multiplies observation noise on surviving samples (1 =
	// nominal, 3 = badly mis-calibrated collector).
	JitterFactor float64
	// StallProb is the probability an entire job's collection silently
	// produces nothing (prolog launched, collector wedged) — the failure
	// mode that forces epilogs to tolerate empty digests.
	StallProb float64
}

// FaultPlan assigns faults to nodes.
type FaultPlan map[int]Fault

// InjectFaults installs the plan on the pipeline. It may be called before
// any prolog; installing mid-run affects only subsequently created monitors.
func (p *Pipeline) InjectFaults(plan FaultPlan) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.faults = make(FaultPlan, len(plan))
	for n, f := range plan {
		p.faults[n] = f
	}
}

// faultFor returns the active fault for a node, if any.
func (p *Pipeline) faultFor(node int) (Fault, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.faults[node]
	return f, ok
}

// DroppedSamples reports the cluster-wide count of samples lost to faults.
func (p *Pipeline) DroppedSamples() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped
}

// StalledJobs reports how many jobs produced no samples because their
// collector stalled.
func (p *Pipeline) StalledJobs() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stalled
}

// recordFaultEffects folds a finished monitor's fault accounting into the
// pipeline. Called with p.mu held by Epilog.
func (p *Pipeline) recordFaultEffects(m *JobMonitor) {
	p.dropped += m.droppedSamples
	if m.stalled {
		p.stalled++
	}
}

// applyFault configures a monitor according to its node's fault, deriving a
// deterministic per-job fault stream.
func (m *JobMonitor) applyFault(f Fault, seed uint64) {
	m.fault = f
	m.faultRNG = dist.New(seed ^ 0xFEEDFACECAFEBEEF ^ uint64(m.JobID)*0x9E3779B97F4A7C15)
	if f.StallProb > 0 && m.faultRNG.Bool(f.StallProb) {
		m.stalled = true
	}
}
