package monitor

import (
	"math"
	"testing"

	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func testProfile(t *testing.T, dur, activeFrac, sm float64) *workload.Profile {
	t.Helper()
	phases := []workload.Phase{}
	idle := dur * (1 - activeFrac)
	if idle > 0 {
		phases = append(phases, workload.Phase{DurSec: idle, Active: false, Level: gpu.Utilization{MemSizePct: 10}})
	}
	if dur-idle > 0 {
		phases = append(phases, workload.Phase{DurSec: dur - idle, Active: true,
			Level: gpu.Utilization{SMPct: sm, MemPct: sm / 5, MemSizePct: 10, PCIeTxPct: 20, PCIeRxPct: 30}})
	}
	p, err := workload.NewProfile(phases, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newTestPipeline(t *testing.T, cfg Config) *Pipeline {
	t.Helper()
	p, err := NewPipeline(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewPipeline(Config{GPUIntervalSec: 0, CPUIntervalSec: 10}, 1); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := NewPipeline(DefaultConfig(), 1); err != nil {
		t.Fatal(err)
	}
}

func TestMonitorSummariesMatchProfile(t *testing.T) {
	p := newTestPipeline(t, DefaultConfig())
	prof := testProfile(t, 1000, 0.6, 50)
	m := p.Prolog(1, 0, gpu.V100(), gpu.DefaultPowerModel(), []Source{prof}, false)
	if err := p.Epilog(m); err != nil {
		t.Fatal(err)
	}
	got := p.Summaries(1)
	if len(got) != 1 {
		t.Fatalf("summaries for %d GPUs", len(got))
	}
	want := prof.Summaries(gpu.V100(), gpu.DefaultPowerModel())
	for _, mi := range []metrics.Metric{metrics.SMUtil, metrics.MemUtil, metrics.Power} {
		if math.Abs(got[0][mi].Mean-want[mi].Mean) > 0.05*want[mi].Mean+0.5 {
			t.Fatalf("metric %v: sampled mean %v vs analytic %v", mi, got[0][mi].Mean, want[mi].Mean)
		}
		if !got[0][mi].Valid() {
			t.Fatalf("metric %v summary invalid: %+v", mi, got[0][mi])
		}
	}
	// Min must see the idle phase.
	if got[0][metrics.SMUtil].Min != 0 {
		t.Fatalf("SM min = %v, want 0", got[0][metrics.SMUtil].Min)
	}
}

func TestMultiGPUJobMonitored(t *testing.T) {
	p := newTestPipeline(t, DefaultConfig())
	sources := []Source{
		testProfile(t, 500, 0.8, 60),
		testProfile(t, 500, 0, 0), // idle GPU (the Fig. 14 pathology)
	}
	m := p.Prolog(2, 3, gpu.V100(), gpu.DefaultPowerModel(), sources, false)
	if err := p.Epilog(m); err != nil {
		t.Fatal(err)
	}
	got := p.Summaries(2)
	if len(got) != 2 {
		t.Fatalf("got %d GPU summaries", len(got))
	}
	if got[1][metrics.SMUtil].Max != 0 {
		t.Fatalf("idle GPU shows SM activity: %+v", got[1][metrics.SMUtil])
	}
	if got[0][metrics.SMUtil].Mean < 30 {
		t.Fatalf("active GPU mean SM = %v", got[0][metrics.SMUtil].Mean)
	}
}

func TestSeriesRetention(t *testing.T) {
	cfg := DefaultConfig()
	p := newTestPipeline(t, cfg)
	prof := testProfile(t, 300, 1, 40)
	m := p.Prolog(5, 0, gpu.V100(), gpu.DefaultPowerModel(), []Source{prof}, true)
	if err := p.Epilog(m); err != nil {
		t.Fatal(err)
	}
	ts := p.Series(5)
	if ts == nil {
		t.Fatal("series not retained")
	}
	if len(ts.PerGPU) != 1 || len(ts.PerGPU[0]) != 300 {
		t.Fatalf("series shape: %d GPUs × %d samples", len(ts.PerGPU), len(ts.PerGPU[0]))
	}
	// Non-detailed job retains nothing.
	m2 := p.Prolog(6, 0, gpu.V100(), gpu.DefaultPowerModel(), []Source{prof}, false)
	if err := p.Epilog(m2); err != nil {
		t.Fatal(err)
	}
	if p.Series(6) != nil {
		t.Fatal("series retained for non-detailed job")
	}
}

func TestSeriesCadenceStretchesForLongJobs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxSamplesPerGPU = 100
	p := newTestPipeline(t, cfg)
	prof := testProfile(t, 10000, 1, 30)
	m := p.Prolog(7, 0, gpu.V100(), gpu.DefaultPowerModel(), []Source{prof}, true)
	if err := p.Epilog(m); err != nil {
		t.Fatal(err)
	}
	ts := p.Series(7)
	if got := len(ts.PerGPU[0]); got > 100 {
		t.Fatalf("series has %d samples, cap 100", got)
	}
	if ts.IntervalSec < 99 {
		t.Fatalf("interval = %v, want ~100", ts.IntervalSec)
	}
}

func TestEpilogDuplicateRejected(t *testing.T) {
	p := newTestPipeline(t, DefaultConfig())
	prof := testProfile(t, 100, 1, 10)
	m := p.Prolog(9, 0, gpu.V100(), gpu.DefaultPowerModel(), []Source{prof}, false)
	if err := p.Epilog(m); err != nil {
		t.Fatal(err)
	}
	m2 := p.Prolog(9, 0, gpu.V100(), gpu.DefaultPowerModel(), []Source{prof}, false)
	if err := p.Epilog(m2); err == nil {
		t.Fatal("duplicate epilog accepted")
	}
}

func TestJobIDsSorted(t *testing.T) {
	p := newTestPipeline(t, DefaultConfig())
	prof := testProfile(t, 50, 1, 10)
	for _, id := range []int64{5, 1, 3} {
		m := p.Prolog(id, 0, gpu.V100(), gpu.DefaultPowerModel(), []Source{prof}, false)
		if err := p.Epilog(m); err != nil {
			t.Fatal(err)
		}
	}
	ids := p.JobIDs()
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 3 || ids[2] != 5 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestNodeBufferOverflowDetection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NodeBufferBytes = 100 // absurdly small: every detailed job overflows
	p := newTestPipeline(t, cfg)
	prof := testProfile(t, 1000, 1, 10)
	m := p.Prolog(1, 0, gpu.V100(), gpu.DefaultPowerModel(), []Source{prof}, true)
	if err := p.Epilog(m); err != nil {
		t.Fatal(err)
	}
	if p.Overflows() != 1 {
		t.Fatalf("overflows = %d, want 1", p.Overflows())
	}
}

func TestMonitorDeterminism(t *testing.T) {
	run := func() []metrics.MetricSummaries {
		p := newTestPipeline(t, DefaultConfig())
		prof := testProfile(t, 400, 0.7, 45)
		m := p.Prolog(1, 0, gpu.V100(), gpu.DefaultPowerModel(), []Source{prof}, false)
		if err := p.Epilog(m); err != nil {
			t.Fatal(err)
		}
		return p.Summaries(1)
	}
	a, b := run(), run()
	if a[0] != b[0] {
		t.Fatal("monitoring is not deterministic for a fixed seed")
	}
}
