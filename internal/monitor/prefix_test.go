package monitor

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/workload"
)

// TestPrefixDigestGridMatchesMonitor pins the prefix digest to the
// JobMonitor sampling grid: digesting k samples of a noise-free profile at
// the monitor cadence must reproduce the exact means of the first k grid
// samples — t = (i+0.5)·interval — no off-by-one, no endpoint sample.
func TestPrefixDigestGridMatchesMonitor(t *testing.T) {
	// 600 s profile, first 300 s idle then 50% SM: at a 60 s cadence the
	// first 5 samples (t=30..270) are idle, the next 5 active.
	prof := testProfile(t, 600, 0.5, 50)
	rng := PrefixRNG(7, 11)
	var d PrefixDigest
	d.Accumulate(prof, 5, 60, rng)
	if d.Samples != 5 {
		t.Fatalf("samples = %d, want 5", d.Samples)
	}
	if d.SMMean() != 0 || d.ActiveFrac() != 0 {
		t.Fatalf("idle prefix reports SM %v active %v", d.SMMean(), d.ActiveFrac())
	}
	var full PrefixDigest
	full.Accumulate(prof, 10, 60, PrefixRNG(7, 11))
	if full.Samples != 10 {
		t.Fatalf("samples = %d, want 10", full.Samples)
	}
	if full.SMMean() != 25 { // 5 idle + 5 at 50%
		t.Fatalf("full-prefix SM mean = %v, want 25", full.SMMean())
	}
	if full.ActiveFrac() != 0.5 {
		t.Fatalf("active frac = %v, want 0.5", full.ActiveFrac())
	}
}

// TestPrefixDigestBounds: k caps the sample count, a short profile yields
// its monitor floor of one sample, and degenerate arguments are no-ops.
func TestPrefixDigestBounds(t *testing.T) {
	prof := testProfile(t, 100, 1, 80)
	var d PrefixDigest
	d.Accumulate(prof, 1000, 30, PrefixRNG(1, 1))
	if d.Samples != 3 { // 100/30 = 3 grid samples
		t.Fatalf("samples = %d, want 3", d.Samples)
	}
	short := testProfile(t, 10, 1, 80)
	var d2 PrefixDigest
	d2.Accumulate(short, 4, 30, PrefixRNG(1, 2))
	if d2.Samples != 1 {
		t.Fatalf("sub-interval job samples = %d, want the floor of 1", d2.Samples)
	}
	var d3 PrefixDigest
	d3.Accumulate(prof, 0, 30, PrefixRNG(1, 3))
	d3.Accumulate(prof, 3, 0, PrefixRNG(1, 3))
	if d3.Samples != 0 {
		t.Fatalf("degenerate accumulate sampled %d", d3.Samples)
	}
	if d3.SMMean() != 0 || d3.MemMean() != 0 || d3.MemSizeMean() != 0 || d3.ActiveFrac() != 0 {
		t.Fatal("empty digest means not zero")
	}
}

// TestPrefixStreamIndependence: the prefix stream is salted differently from
// the pipeline's prolog stream, and digesting a prefix leaves a concurrent
// monitoring run byte-identical — the read-only contract.
func TestPrefixStreamIndependence(t *testing.T) {
	const seed, jobID = 42, 5
	prof := testProfile(t, 1000, 0.6, 50)

	run := func(alsoDigest bool) []float64 {
		p := newTestPipeline(t, DefaultConfig())
		m := p.Prolog(jobID, 0, gpu.V100(), gpu.DefaultPowerModel(), []Source{prof}, false)
		if alsoDigest {
			var d PrefixDigest
			d.Accumulate(prof, 8, 1, PrefixRNG(seed, jobID))
		}
		if err := p.Epilog(m); err != nil {
			t.Fatal(err)
		}
		sums := p.Summaries(jobID)
		var out []float64
		for _, s := range sums {
			for _, v := range s {
				out = append(out, v.Min, v.Mean, v.Max)
			}
		}
		return out
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("summary lengths diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pipeline output perturbed by prefix digest at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Distinct jobs draw distinct prefix streams under the same seed.
	if PrefixRNG(seed, 1).Float64() == PrefixRNG(seed, 2).Float64() {
		t.Fatal("prefix streams for different jobs coincide")
	}
	// Same job, same seed: deterministic.
	if PrefixRNG(seed, 1).Float64() != PrefixRNG(seed, 1).Float64() {
		t.Fatal("prefix stream not deterministic")
	}
}

// The digest accepts any Source; workload.Profile is the production one.
var _ Source = (*workload.Profile)(nil)
