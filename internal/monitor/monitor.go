// Package monitor reimplements the paper's telemetry pipeline (§II "System
// Monitoring"): a per-job GPU sampler started by the scheduler prolog
// (nvidia-smi at 100 ms in production), a coarser CPU sampler (10 s),
// per-node local buffering so the cluster-wide file system is not overloaded,
// and an epilog that stops collection and copies each job's data to the
// central store where the Slurm and GPU datasets are joined.
//
// The samplers run in simulated time: a JobMonitor walks its job's
// utilization profiles at the configured cadence and folds each observation
// into streaming min/mean/max accumulators — exactly the digest the
// production system stores for every job — optionally retaining the full
// series for the detailed-subset analyses.
package monitor

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/dist"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Source is a samplable utilization trajectory; workload.Profile implements
// it.
type Source interface {
	// SampleAt returns the observed utilization at tSec, drawing observation
	// noise from rng.
	SampleAt(tSec float64, rng *dist.RNG) gpu.Utilization
	// TotalSec is the trajectory's duration.
	TotalSec() float64
}

// Config parameterizes the pipeline.
type Config struct {
	// GPUIntervalSec is the GPU sampling cadence. Production uses 0.1 s; the
	// simulation default is coarser because summaries converge long before
	// that and wall-clock time matters.
	GPUIntervalSec float64
	// CPUIntervalSec is the CPU sampling cadence (production: 10 s).
	CPUIntervalSec float64
	// RetainSeries keeps full sample streams, not just digests.
	RetainSeries bool
	// MaxSamplesPerGPU bounds a retained stream; the cadence stretches for
	// longer jobs (the data-volume/usability compromise the paper mentions).
	MaxSamplesPerGPU int
	// NodeBufferBytes models the per-node local buffer; a zero value means
	// unbounded. Overflow is counted, not fatal — the paper's operational
	// lesson is precisely that naive logging overloads shared storage.
	NodeBufferBytes int64
}

// DefaultConfig returns the production-shaped configuration with a
// simulation-friendly GPU cadence.
func DefaultConfig() Config {
	return Config{
		GPUIntervalSec:   1,
		CPUIntervalSec:   10,
		RetainSeries:     false,
		MaxSamplesPerGPU: 20000,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.GPUIntervalSec <= 0 || c.CPUIntervalSec <= 0 {
		return fmt.Errorf("monitor: non-positive sampling interval")
	}
	return nil
}

// sampleBytes is the accounting size of one stored sample (six float64
// metrics plus a timestamp).
const sampleBytes = 56

// JobMonitor samples all GPUs of one job. It is created by Pipeline.Prolog
// and finalized by Pipeline.Epilog.
type JobMonitor struct {
	JobID int64
	Node  int

	cfg     Config
	spec    gpu.Spec
	pm      gpu.PowerModel
	sources []Source
	rng     *dist.RNG

	acc    [][metrics.NumMetrics]stats.Streaming
	series [][]metrics.Sample

	// fault state (see faults.go), then the two run flags packed together so
	// they share one padded word.
	fault          Fault
	faultRNG       *dist.RNG
	droppedSamples int64
	ran            bool
	stalled        bool
}

// Run executes the sampling loop over the job's full (simulated) duration.
// It is idempotent; the epilog calls it if the prolog's owner did not.
func (m *JobMonitor) Run() {
	if m.ran {
		return
	}
	m.ran = true
	if m.stalled {
		// Wedged collector: the job produces no telemetry at all.
		return
	}
	for gi, src := range m.sources {
		dur := src.TotalSec()
		interval := m.cfg.GPUIntervalSec
		if m.cfg.RetainSeries && m.cfg.MaxSamplesPerGPU > 0 {
			if n := dur / interval; n > float64(m.cfg.MaxSamplesPerGPU) {
				interval = dur / float64(m.cfg.MaxSamplesPerGPU)
			}
		}
		n := int(dur / interval)
		if n < 1 {
			n = 1
		}
		for k := 0; k < n; k++ {
			t := (float64(k) + 0.5) * interval
			if m.fault.DropRate > 0 && m.faultRNG.Bool(m.fault.DropRate) {
				m.droppedSamples++
				continue
			}
			u := src.SampleAt(t, m.rng)
			if jf := m.fault.JitterFactor; jf > 1 {
				extra := (jf - 1) * 0.05
				u.SMPct *= 1 + extra*m.faultRNG.NormFloat64()
				u.MemPct *= 1 + extra*m.faultRNG.NormFloat64()
				u.Clamp()
			}
			vals := [metrics.NumMetrics]float64{
				metrics.SMUtil:  u.SMPct,
				metrics.MemUtil: u.MemPct,
				metrics.MemSize: u.MemSizePct,
				metrics.PCIeTx:  u.PCIeTxPct,
				metrics.PCIeRx:  u.PCIeRxPct,
				metrics.Power:   m.pm.Watts(m.spec, u),
			}
			for mi := metrics.Metric(0); mi < metrics.NumMetrics; mi++ {
				m.acc[gi][mi].Add(vals[mi])
			}
			if m.cfg.RetainSeries {
				m.series[gi] = append(m.series[gi], metrics.Sample{TimeSec: t, Values: vals})
			}
		}
	}
}

// Summaries returns the per-GPU min/mean/max digests. A GPU that produced
// no samples (stalled collector) yields zero-valued records — "no data
// recorded" — rather than NaNs that would poison downstream aggregation.
func (m *JobMonitor) Summaries() []metrics.MetricSummaries {
	out := make([]metrics.MetricSummaries, len(m.acc))
	for gi := range m.acc {
		for mi := metrics.Metric(0); mi < metrics.NumMetrics; mi++ {
			a := &m.acc[gi][mi]
			if a.N() == 0 {
				continue
			}
			out[gi][mi] = metrics.SummaryRecord{Min: a.Min(), Mean: a.Mean(), Max: a.Max()}
		}
	}
	return out
}

// Series returns the retained time series, or nil when RetainSeries is off.
func (m *JobMonitor) Series() *trace.TimeSeries {
	if !m.cfg.RetainSeries || len(m.series) == 0 {
		return nil
	}
	interval := m.cfg.GPUIntervalSec
	if len(m.series[0]) > 1 {
		interval = m.series[0][1].TimeSec - m.series[0][0].TimeSec
	}
	return &trace.TimeSeries{JobID: m.JobID, IntervalSec: interval, PerGPU: m.series}
}

// storedBytes returns the buffer accounting size of this monitor's data.
func (m *JobMonitor) storedBytes() int64 {
	var n int64
	for _, s := range m.series {
		n += int64(len(s)) * sampleBytes
	}
	// Digests are negligible but non-zero.
	return n + int64(len(m.acc))*int64(metrics.NumMetrics)*24
}

// NodeBuffer models one node's local monitoring storage.
type NodeBuffer struct {
	CapacityBytes int64
	UsedBytes     int64
	Overflowed    int // count of jobs whose data exceeded remaining space
}

// store accounts bytes into the buffer, recording overflow.
func (b *NodeBuffer) store(n int64) {
	b.UsedBytes += n
	if b.CapacityBytes > 0 && b.UsedBytes > b.CapacityBytes {
		b.Overflowed++
	}
}

// drain empties the buffer (epilog copy-out to central storage).
func (b *NodeBuffer) drain() { b.UsedBytes = 0 }

// Pipeline is the cluster-wide monitoring fabric: prolog/epilog entry
// points, per-node buffers, and the central collector. It is safe for
// concurrent prolog/epilog calls.
type Pipeline struct {
	cfg Config

	mu        sync.Mutex
	buffers   map[int]*NodeBuffer
	summaries map[int64][]metrics.MetricSummaries
	series    map[int64]*trace.TimeSeries
	seed      uint64
	sink      EpilogSink

	faults  FaultPlan
	dropped int64
	stalled int
}

// EpilogSink receives each job's finalized telemetry as the epilog copies
// it to central storage — the streaming hand-off that replaces the batch
// "export everything at the end" join. trace.SegStore implements it: staged
// telemetry is joined to the scheduler-side record when that record is
// appended, mirroring the paper's §II job-ID join.
type EpilogSink interface {
	StageTelemetry(jobID int64, perGPU []metrics.MetricSummaries, ts *trace.TimeSeries)
}

// SetSink registers sink to receive the output of every subsequent Epilog
// (pass nil to detach). Safe for concurrent use with Epilog.
func (p *Pipeline) SetSink(sink EpilogSink) {
	p.mu.Lock()
	p.sink = sink
	p.mu.Unlock()
}

// NewPipeline builds a pipeline.
func NewPipeline(cfg Config, seed uint64) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Pipeline{
		cfg:       cfg,
		buffers:   make(map[int]*NodeBuffer),
		summaries: make(map[int64][]metrics.MetricSummaries),
		series:    make(map[int64]*trace.TimeSeries),
		seed:      seed,
	}, nil
}

// Prolog starts monitoring a job's GPUs on the given node, mirroring the
// Slurm prolog that launches nvidia-smi on every node assigned to a GPU job.
// retainSeries optionally overrides the pipeline default for this job (the
// detailed 2,149-job subset).
func (p *Pipeline) Prolog(jobID int64, node int, spec gpu.Spec, pm gpu.PowerModel, sources []Source, retainSeries bool) *JobMonitor {
	cfg := p.cfg
	cfg.RetainSeries = cfg.RetainSeries || retainSeries
	m := &JobMonitor{
		JobID:   jobID,
		Node:    node,
		cfg:     cfg,
		spec:    spec,
		pm:      pm,
		sources: sources,
		rng:     dist.New(p.seed ^ uint64(jobID)*0x9E3779B97F4A7C15),
		acc:     make([][metrics.NumMetrics]stats.Streaming, len(sources)),
	}
	if cfg.RetainSeries {
		m.series = make([][]metrics.Sample, len(sources))
	}
	if f, ok := p.faultFor(node); ok {
		m.applyFault(f, p.seed)
	}
	return m
}

// Epilog stops collection (running the sampler if it has not run), accounts
// the node buffer, and copies the job's data to the central store. It errors
// on duplicate job IDs — a job must not be finalized twice.
func (p *Pipeline) Epilog(m *JobMonitor) error {
	m.Run()
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.summaries[m.JobID]; dup {
		return fmt.Errorf("monitor: job %d finalized twice", m.JobID)
	}
	buf := p.buffers[m.Node]
	if buf == nil {
		buf = &NodeBuffer{CapacityBytes: p.cfg.NodeBufferBytes}
		p.buffers[m.Node] = buf
	}
	buf.store(m.storedBytes())
	sums := m.Summaries()
	p.summaries[m.JobID] = sums
	ts := m.Series()
	if ts != nil {
		p.series[m.JobID] = ts
	}
	p.recordFaultEffects(m)
	buf.drain()
	if p.sink != nil {
		p.sink.StageTelemetry(m.JobID, sums, ts)
	}
	return nil
}

// Summaries returns the central store's digest for a job, or nil.
func (p *Pipeline) Summaries(jobID int64) []metrics.MetricSummaries {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.summaries[jobID]
}

// Series returns the central store's retained series for a job, or nil.
func (p *Pipeline) Series(jobID int64) *trace.TimeSeries {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.series[jobID]
}

// JobIDs returns the finalized job IDs in ascending order.
func (p *Pipeline) JobIDs() []int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	ids := make([]int64, 0, len(p.summaries))
	for id := range p.summaries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

// Overflows reports the total node-buffer overflow count — the "logging can
// overload the shared file system" signal from the paper's operations
// lessons.
func (p *Pipeline) Overflows() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for _, b := range p.buffers {
		total += b.Overflowed
	}
	return total
}
