package monitor

// Prefix telemetry (ISSUE 7): the online prediction layer — the scheduler's
// prediction-aware backfill and the predictsched study — classifies RUNNING
// jobs from their first k monitor samples, the partial-telemetry task the
// MIT Supercloud Challenge (2204.05839) frames. PrefixDigest replays exactly
// the sampling grid JobMonitor.Run walks — t = (k+0.5)·interval per source —
// but stops after the prefix, folding the observations into a fixed-size
// digest of the features the classifier consumes.
//
// The digest is read-only with respect to the pipeline: it draws noise from
// its own RNG stream (PrefixRNG, salted differently from the prolog stream),
// so extracting a prefix never perturbs the full monitoring run's noise
// sequence, and a simulation with prediction enabled produces byte-identical
// telemetry to one without.

import "repro/internal/dist"

// prefixSalt decorrelates the prefix-observation stream from the monitoring
// pipeline's per-job prolog stream (which salts with 0x9E3779B97F4A7C15).
const prefixSalt = 0xA24BAED4963EE407

// PrefixRNG derives the deterministic noise stream for job jobID's prefix
// observations under the given monitor seed.
func PrefixRNG(seed uint64, jobID int64) *dist.RNG {
	return dist.New(seed ^ uint64(jobID)*prefixSalt)
}

// ActiveSMThresholdPct is the SM-utilization level above which a prefix
// sample counts as "active" — the same 5% floor the paper's activity
// analyses use to separate idle setup phases from computation.
const ActiveSMThresholdPct = 5.0

// PrefixDigest accumulates the first-k samples of a job's GPU sources into
// the feature means the online classifier reads. The zero value is ready to
// use; Accumulate may be called once per source (multi-GPU jobs fold every
// device into one digest, matching the per-job granularity of the
// scheduler's decision).
type PrefixDigest struct {
	Samples    int
	smSum      float64
	memSum     float64
	memSizeSum float64
	active     int
}

// Accumulate samples src on the monitor grid for at most k samples.
// Callers own the no-future-leakage contract: k must not exceed the samples
// available at the job's current elapsed time (elapsed/interval, rounded
// down) when digesting a still-running job.
func (d *PrefixDigest) Accumulate(src Source, k int, intervalSec float64, rng *dist.RNG) {
	if k <= 0 || intervalSec <= 0 {
		return
	}
	dur := src.TotalSec()
	n := int(dur / intervalSec)
	if n < 1 {
		n = 1 // JobMonitor.Run's floor: even a sub-interval job yields one sample
	}
	if n > k {
		n = k
	}
	for i := 0; i < n; i++ {
		t := (float64(i) + 0.5) * intervalSec
		u := src.SampleAt(t, rng)
		d.Samples++
		d.smSum += u.SMPct
		d.memSum += u.MemPct
		d.memSizeSum += u.MemSizePct
		if u.SMPct > ActiveSMThresholdPct {
			d.active++
		}
	}
}

// SMMean is the mean SM utilization over the prefix (0 with no samples).
func (d *PrefixDigest) SMMean() float64 {
	if d.Samples == 0 {
		return 0
	}
	return d.smSum / float64(d.Samples)
}

// MemMean is the mean memory-bandwidth utilization over the prefix.
func (d *PrefixDigest) MemMean() float64 {
	if d.Samples == 0 {
		return 0
	}
	return d.memSum / float64(d.Samples)
}

// MemSizeMean is the mean memory-footprint fraction over the prefix.
func (d *PrefixDigest) MemSizeMean() float64 {
	if d.Samples == 0 {
		return 0
	}
	return d.memSizeSum / float64(d.Samples)
}

// ActiveFrac is the fraction of prefix samples above the activity floor.
func (d *PrefixDigest) ActiveFrac() float64 {
	if d.Samples == 0 {
		return 0
	}
	return float64(d.active) / float64(d.Samples)
}
