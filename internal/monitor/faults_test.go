package monitor

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/metrics"
)

func TestFaultDropsSamples(t *testing.T) {
	p := newTestPipeline(t, DefaultConfig())
	p.InjectFaults(FaultPlan{3: {DropRate: 0.5}})
	prof := testProfile(t, 1000, 1, 40)
	m := p.Prolog(1, 3, gpu.V100(), gpu.DefaultPowerModel(), []Source{prof}, false)
	if err := p.Epilog(m); err != nil {
		t.Fatal(err)
	}
	dropped := p.DroppedSamples()
	if dropped < 300 || dropped > 700 {
		t.Fatalf("dropped = %d of 1000, want ~500", dropped)
	}
	// Surviving samples still produce a sane digest.
	s := p.Summaries(1)
	if got := s[0][metrics.SMUtil].Mean; got < 35 || got > 45 {
		t.Fatalf("mean SM under drops = %v, want ~40", got)
	}
}

func TestFaultHealthyNodesUnaffected(t *testing.T) {
	p := newTestPipeline(t, DefaultConfig())
	p.InjectFaults(FaultPlan{3: {DropRate: 0.9, StallProb: 1}})
	prof := testProfile(t, 500, 1, 40)
	m := p.Prolog(1, 0, gpu.V100(), gpu.DefaultPowerModel(), []Source{prof}, false) // node 0: healthy
	if err := p.Epilog(m); err != nil {
		t.Fatal(err)
	}
	if p.DroppedSamples() != 0 || p.StalledJobs() != 0 {
		t.Fatal("healthy node suffered fault effects")
	}
	if s := p.Summaries(1); s[0][metrics.SMUtil].Mean < 35 {
		t.Fatalf("healthy digest wrong: %+v", s[0][metrics.SMUtil])
	}
}

func TestFaultStalledCollector(t *testing.T) {
	p := newTestPipeline(t, DefaultConfig())
	p.InjectFaults(FaultPlan{5: {StallProb: 1}})
	prof := testProfile(t, 500, 1, 40)
	m := p.Prolog(9, 5, gpu.V100(), gpu.DefaultPowerModel(), []Source{prof}, false)
	if err := p.Epilog(m); err != nil {
		t.Fatal(err)
	}
	if p.StalledJobs() != 1 {
		t.Fatalf("stalled = %d", p.StalledJobs())
	}
	// No data recorded: zero-valued digest, not NaN.
	s := p.Summaries(9)
	rec := s[0][metrics.SMUtil]
	if rec.Min != 0 || rec.Mean != 0 || rec.Max != 0 {
		t.Fatalf("stalled digest = %+v, want zeros", rec)
	}
	if !rec.Valid() {
		t.Fatal("zero digest should validate")
	}
}

func TestFaultJitterWidensSpread(t *testing.T) {
	run := func(jitter float64) float64 {
		p := newTestPipeline(t, DefaultConfig())
		if jitter > 0 {
			p.InjectFaults(FaultPlan{0: {JitterFactor: jitter}})
		}
		prof := testProfile(t, 2000, 1, 50)
		m := p.Prolog(1, 0, gpu.V100(), gpu.DefaultPowerModel(), []Source{prof}, false)
		if err := p.Epilog(m); err != nil {
			t.Fatal(err)
		}
		s := p.Summaries(1)
		return s[0][metrics.SMUtil].Max - s[0][metrics.SMUtil].Min
	}
	clean := run(0)
	noisy := run(4)
	if noisy <= clean {
		t.Fatalf("jitter did not widen observed range: clean %v vs noisy %v", clean, noisy)
	}
}

func TestFaultDeterminism(t *testing.T) {
	run := func() (int64, float64) {
		p := newTestPipeline(t, DefaultConfig())
		p.InjectFaults(FaultPlan{2: {DropRate: 0.3, JitterFactor: 2}})
		prof := testProfile(t, 800, 0.7, 45)
		m := p.Prolog(4, 2, gpu.V100(), gpu.DefaultPowerModel(), []Source{prof}, false)
		if err := p.Epilog(m); err != nil {
			t.Fatal(err)
		}
		return p.DroppedSamples(), p.Summaries(4)[0][metrics.SMUtil].Mean
	}
	d1, m1 := run()
	d2, m2 := run()
	if d1 != d2 || m1 != m2 {
		t.Fatalf("fault injection not deterministic: (%d,%v) vs (%d,%v)", d1, m1, d2, m2)
	}
}

// TestInjectFaultsMidRunAffectsOnlyNewMonitors is the regression test for the
// InjectFaults documentation claim: a monitor created before the plan was
// installed keeps its healthy collector even though its sampling loop runs
// after injection (the epilog drives Run lazily), while a monitor created
// after injection on the same node is degraded.
func TestInjectFaultsMidRunAffectsOnlyNewMonitors(t *testing.T) {
	p := newTestPipeline(t, DefaultConfig())
	prof := testProfile(t, 1000, 1, 40)

	// Monitor A: prolog fires while node 3 is healthy. Its samples have not
	// been collected yet — Run happens at epilog time, after injection.
	ma := p.Prolog(1, 3, gpu.V100(), gpu.DefaultPowerModel(), []Source{prof}, false)

	p.InjectFaults(FaultPlan{3: {DropRate: 1, StallProb: 1}})

	// Monitor B: prolog fires on the now-faulty node.
	mb := p.Prolog(2, 3, gpu.V100(), gpu.DefaultPowerModel(), []Source{prof}, false)

	if err := p.Epilog(ma); err != nil {
		t.Fatal(err)
	}
	if err := p.Epilog(mb); err != nil {
		t.Fatal(err)
	}
	if p.DroppedSamples() != 0 {
		t.Fatalf("pre-injection monitor dropped %d samples", p.DroppedSamples())
	}
	if got := p.StalledJobs(); got != 1 {
		t.Fatalf("stalled jobs = %d, want exactly the post-injection monitor", got)
	}
	if s := p.Summaries(1); s[0][metrics.SMUtil].Mean < 35 {
		t.Fatalf("pre-injection digest degraded: %+v", s[0][metrics.SMUtil])
	}
	rec := p.Summaries(2)[0][metrics.SMUtil]
	if rec.Min != 0 || rec.Mean != 0 || rec.Max != 0 {
		t.Fatalf("post-injection monitor produced data: %+v", rec)
	}
}
