package workload

import (
	"math"

	"repro/internal/dist"
)

// ArrivalProcess samples job submission times over the trace window from an
// inhomogeneous density with three structures the paper's operations section
// describes: a diurnal cycle, lighter weekends, and load surges ahead of
// deep-learning conference deadlines.
type ArrivalProcess struct {
	durationDays float64
	weekend      float64
	surge        float64
	windowDays   float64
	deadlines    []float64
	maxDensity   float64
}

// NewArrivalProcess builds the process for a trace of durationDays.
func NewArrivalProcess(c Calibration, durationDays float64) *ArrivalProcess {
	a := &ArrivalProcess{
		durationDays: durationDays,
		weekend:      c.WeekendLoadFactor,
		surge:        c.DeadlineSurgeFactor,
		windowDays:   c.DeadlineWindowDays,
		deadlines:    append([]float64(nil), c.DeadlineDays...),
	}
	// The density maximum: weekday diurnal peak inside a surge window.
	a.maxDensity = 1.35 * a.surge
	return a
}

// Density returns the relative arrival density at day offset d (fractional
// days since trace start).
func (a *ArrivalProcess) Density(d float64) float64 {
	if d < 0 || d > a.durationDays {
		return 0
	}
	// Diurnal: peak mid-day, trough at night.
	frac := d - math.Floor(d)
	density := 1 + 0.35*math.Sin(2*math.Pi*(frac-0.25))
	// Weekly: days 5 and 6 of each week are weekend.
	if int(math.Floor(d))%7 >= 5 {
		density *= a.weekend
	}
	// Deadline surges: elevated load in the window before each deadline.
	for _, dl := range a.deadlines {
		if d >= dl-a.windowDays && d < dl {
			density *= a.surge
			break
		}
	}
	return density
}

// SampleDay draws one submission time (in fractional days) by rejection
// against the density envelope.
func (a *ArrivalProcess) SampleDay(rng *dist.RNG) float64 {
	for {
		d := rng.Float64() * a.durationDays
		if rng.Float64()*a.maxDensity <= a.Density(d) {
			return d
		}
	}
}

// SampleSec draws one submission time in seconds since trace start.
func (a *ArrivalProcess) SampleSec(rng *dist.RNG) float64 {
	return a.SampleDay(rng) * 86400
}
