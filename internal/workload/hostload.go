package workload

import (
	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Host-CPU load modeling (§II: "CPU time series data is collected at
// 10-second intervals"; §III: "GPU jobs do not tend to have high CPU
// resource requirements"). A job's host-CPU utilization is derived from its
// GPU activity rather than stored: while the GPUs compute, the host mostly
// feeds them (moderate load on its few requested cores); while the GPUs
// idle, the host is either preprocessing (higher load) or waiting on the
// user (interactive sessions, near zero).

// HostLoadModel converts a job's instantaneous GPU state into host-CPU
// utilization as a percentage of the job's *requested* cores.
type HostLoadModel struct {
	// GPUActivePct is the host load while GPUs compute (input pipelines).
	GPUActivePct float64
	// GPUIdlePct is the host load during GPU-idle phases of batch-style
	// jobs (preprocessing, data staging).
	GPUIdlePct float64
	// InteractiveIdlePct is the host load during GPU-idle phases of
	// interactive sessions (user think-time: almost nothing).
	InteractiveIdlePct float64
	// CPUJobPct is the load of CPU-only jobs (they requested those cores to
	// use them).
	CPUJobPct float64
	// NoiseRelPct is relative sampling noise in percent.
	NoiseRelPct float64
}

// DefaultHostLoadModel returns the calibrated model: GPU jobs keep their
// small core slice moderately busy, CPU jobs burn theirs.
func DefaultHostLoadModel() HostLoadModel {
	return HostLoadModel{
		GPUActivePct:       35,
		GPUIdlePct:         70,
		InteractiveIdlePct: 4,
		CPUJobPct:          88,
		NoiseRelPct:        10,
	}
}

// HostLoadAt returns the noiseless host-CPU utilization of spec at time t.
func (m HostLoadModel) HostLoadAt(spec *JobSpec, t float64) float64 {
	if !spec.IsGPU() {
		return m.CPUJobPct
	}
	// Any GPU active → the host is feeding it.
	active := false
	for _, p := range spec.Profiles {
		u := p.LevelAt(t)
		if u.SMPct > 1 || u.MemPct > 1 {
			active = true
			break
		}
	}
	if active {
		return m.GPUActivePct
	}
	if spec.Interface == trace.Interactive {
		return m.InteractiveIdlePct
	}
	return m.GPUIdlePct
}

// SampleHostLoad returns the observed host load at t with relative noise.
func (m HostLoadModel) SampleHostLoad(spec *JobSpec, t float64, rng *dist.RNG) float64 {
	v := m.HostLoadAt(spec, t)
	if m.NoiseRelPct > 0 && v > 0 {
		v *= 1 + m.NoiseRelPct/100*rng.NormFloat64()
	}
	if v < 0 {
		v = 0
	}
	if v > 100 {
		v = 100
	}
	return v
}

// HostLoadDigest computes the host-CPU digest analytically from the job's
// phase structure — the fast path used when building paper-scale datasets.
// The GPU-active share is the maximum active fraction across the job's GPUs
// (active devices run near-synchronously; idle devices never wake).
func (m HostLoadModel) HostLoadDigest(spec *JobSpec) metrics.SummaryRecord {
	if !spec.IsGPU() {
		return metrics.SummaryRecord{Min: m.CPUJobPct, Mean: m.CPUJobPct, Max: m.CPUJobPct}
	}
	var af float64
	for _, p := range spec.Profiles {
		if f := p.ActiveFraction(); f > af {
			af = f
		}
	}
	idle := m.GPUIdlePct
	if spec.Interface == trace.Interactive {
		idle = m.InteractiveIdlePct
	}
	rec := metrics.SummaryRecord{Mean: af*m.GPUActivePct + (1-af)*idle}
	lo, hi := m.GPUActivePct, idle
	if lo > hi {
		lo, hi = hi, lo
	}
	switch {
	case af >= 1:
		rec.Min, rec.Max = m.GPUActivePct, m.GPUActivePct
	case af <= 0:
		rec.Min, rec.Max = idle, idle
	default:
		rec.Min, rec.Max = lo, hi
	}
	return rec
}

// HostLoadSummary computes the 10-second-cadence host-CPU digest of a job
// by sampling — the §II collection path, used by tests to cross-check the
// analytic digest.
func (m HostLoadModel) HostLoadSummary(spec *JobSpec, intervalSec float64, rng *dist.RNG) (min, mean, max float64) {
	if intervalSec <= 0 {
		intervalSec = 10
	}
	n := int(spec.RunSec / intervalSec)
	if n < 1 {
		n = 1
	}
	first := true
	var sum float64
	for k := 0; k < n; k++ {
		t := (float64(k) + 0.5) * intervalSec
		v := m.SampleHostLoad(spec, t, rng)
		sum += v
		if first {
			min, max = v, v
			first = false
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, sum / float64(n), max
}
